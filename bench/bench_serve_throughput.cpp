// Serving-throughput benchmark (DESIGN.md S11): replays the synthetic
// mixed-tenant trace — RBD-scale fragments, Table-1 silicon cases, and
// water-scale interactive jobs, roughly two thirds of them duplicate
// submissions — through two service configurations:
//
//   fifo    1 worker, no stealing, no dedup cache: the naive sequential
//           baseline every submission pays for itself.
//   serve   the full service: work-stealing pool + content-addressed
//           displacement cache + weighted fair share.
//
// Reports throughput (nominal displacement tasks/s — both modes are
// credited with the same nominal work, so dedup shows up as speedup) and
// per-job latency percentiles. Acceptance: serve >= 2x fifo throughput
// with a non-zero cache hit ratio; --json writes the swraman-bench-v1
// serve records consumed by scripts/check_perf_json.py.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"

namespace {

using namespace swraman;
using namespace swraman::serve;

struct RunStats {
  std::string series;
  std::size_t jobs = 0;
  std::size_t nominal_tasks = 0;
  std::size_t executed_tasks = 0;
  double seconds = 0.0;
  double throughput_per_s = 0.0;  // nominal tasks / wall second
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double cache_hit_ratio = 0.0;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

RunStats run_mode(const std::string& series, const std::vector<JobSpec>& trace,
                  ServiceOptions options) {
  options.start_paused = true;
  RamanService service(options);
  std::vector<std::uint64_t> ids;
  ids.reserve(trace.size());
  for (const JobSpec& spec : trace) {
    const SubmitResult res = service.submit(spec);
    if (!res.accepted) {
      std::printf("  (rejected '%s': %s)\n", spec.name.c_str(),
                  res.reason.c_str());
      continue;
    }
    ids.push_back(res.job_id);
  }
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  std::vector<double> latencies;
  latencies.reserve(ids.size());
  for (std::uint64_t id : ids) {
    const JobResult result = service.wait(id);
    if (result.status != JobStatus::Completed) {
      std::printf("  job %llu FAILED: %s\n",
                  static_cast<unsigned long long>(id), result.error.c_str());
      continue;
    }
    latencies.push_back(result.latency_s);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const ServiceStats stats = service.stats();

  RunStats out;
  out.series = series;
  out.jobs = ids.size();
  out.nominal_tasks = trace_nominal_tasks(trace);
  out.executed_tasks = stats.tasks_executed;
  out.seconds = wall;
  out.throughput_per_s = static_cast<double>(out.nominal_tasks) / wall;
  out.p50_s = percentile(latencies, 0.50);
  out.p95_s = percentile(latencies, 0.95);
  out.p99_s = percentile(latencies, 0.99);
  out.cache_hit_ratio = stats.cache_hit_ratio;
  return out;
}

void write_json(const std::string& path, const std::vector<RunStats>& runs,
                double speedup) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"swraman-bench-v1\",\n"
      << "  \"bench\": \"serve_throughput\",\n  \"records\": [\n";
  for (const RunStats& r : runs) {
    out << "    {\"series\": \"" << r.series << "\", \"jobs\": " << r.jobs
        << ", \"tasks\": " << r.nominal_tasks
        << ", \"executed_tasks\": " << r.executed_tasks
        << ", \"seconds\": " << r.seconds
        << ", \"throughput_per_s\": " << r.throughput_per_s
        << ", \"p50_s\": " << r.p50_s << ", \"p95_s\": " << r.p95_s
        << ", \"p99_s\": " << r.p99_s
        << ", \"cache_hit_ratio\": " << r.cache_hit_ratio << "},\n";
  }
  out << "    {\"series\": \"speedup\", \"value\": " << speedup << "}\n"
      << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void print_stats(const RunStats& r) {
  std::printf(
      "%-6s  %3zu jobs  %4zu nominal / %4zu executed tasks  %7.3f s  "
      "%8.1f tasks/s  p50 %.3f  p95 %.3f  p99 %.3f  hit %.2f\n",
      r.series.c_str(), r.jobs, r.nominal_tasks, r.executed_tasks, r.seconds,
      r.throughput_per_s, r.p50_s, r.p95_s, r.p99_s, r.cache_hit_ratio);
}

}  // namespace

int main(int argc, char** argv) {
  log::set_level(log::Level::Warn);
  std::string json_path;
  std::size_t n_workers = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      n_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    }
  }

  const std::vector<JobSpec> trace = mixed_tenant_trace({});
  std::printf("bench_serve_throughput: %zu jobs, %zu nominal tasks\n\n",
              trace.size(), trace_nominal_tasks(trace));

  ServiceOptions fifo;
  fifo.n_workers = 1;
  fifo.work_stealing = false;
  fifo.use_cache = false;
  const RunStats base = run_mode("fifo", trace, fifo);
  print_stats(base);

  ServiceOptions full;
  full.n_workers = n_workers;
  const RunStats serve = run_mode("serve", trace, full);
  print_stats(serve);

  const double speedup = serve.throughput_per_s / base.throughput_per_s;
  std::printf("\nspeedup (serve/fifo): %.2fx, cache hit ratio %.2f\n",
              speedup, serve.cache_hit_ratio);

  if (!json_path.empty()) write_json(json_path, {base, serve}, speedup);

  // Acceptance: dedup + stealing must at least double throughput on the
  // duplicate-heavy trace, with a demonstrably non-trivial hit ratio.
  bool ok = true;
  if (speedup < 2.0) {
    std::printf("bench_serve_throughput: FAIL speedup %.2f < 2.0\n", speedup);
    ok = false;
  }
  if (serve.cache_hit_ratio <= 0.0) {
    std::printf("bench_serve_throughput: FAIL cache hit ratio is zero\n");
    ok = false;
  }
  if (serve.executed_tasks >= base.executed_tasks) {
    std::printf("bench_serve_throughput: FAIL dedup executed no fewer tasks\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
