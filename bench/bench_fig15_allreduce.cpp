// Figure 15: MPI Allreduce optimization during the response-potential
// calculation of the RBD protein — reduce-scatter + allgather with the
// local reduction on the MPE ("before") vs the CPE-offloaded pipelined
// reduction of Algorithm 3 ("after"), at 256 and 1024 MPI tasks.
//
// Paper: 2.22x at 256 tasks, 2.61x at 1024 (ratio grows with the process
// count because the reduction arithmetic (1 - 1/N) L grows and the MPE
// scheduling idles accumulate).
//
// Also validates the functional thread-rank implementations: all Allreduce
// algorithm variants must agree, and the pipelined local-reduce is
// exercised at the paper's payload.

#include <cmath>
#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  using namespace swraman::sunway;
  log::set_level(log::Level::Warn);

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());
  const ArchParams sw = sw26010pro();
  const auto& targets = core::paper_targets();

  AllreduceModel before;
  before.reduce_scatter = true;
  before.cpe_offload = false;
  AllreduceModel after;
  after.reduce_scatter = true;
  after.cpe_offload = true;

  std::printf("=== Fig. 15: Allreduce optimization (payload %.2f MB) ===\n",
              job.allreduce_bytes / 1e6);
  std::printf("%10s %14s %14s %10s %10s\n", "MPI tasks", "before (ms)",
              "after (ms)", "speedup", "paper");
  const double paper[] = {targets.fig15_speedup_at_256,
                          targets.fig15_speedup_at_1024};
  int k = 0;
  for (std::size_t p : {256, 1024}) {
    const double b = modeled_allreduce_time(job.allreduce_bytes, p, sw, before);
    const double a = modeled_allreduce_time(job.allreduce_bytes, p, sw, after);
    std::printf("%10zu %14.3f %14.3f %9.2fx %9.2fx\n", p, 1e3 * b, 1e3 * a,
                b / a, paper[k++]);
  }

  // Functional cross-check on the thread-rank runtime (small scale).
  std::printf("\nFunctional Allreduce agreement across algorithms "
              "(6 ranks, 4099 doubles):\n");
  const std::size_t n = 4099;
  std::vector<double> reference;
  for (auto [name, algo] :
       {std::pair{"linear", parallel::AllreduceAlgorithm::Linear},
        std::pair{"ring", parallel::AllreduceAlgorithm::Ring},
        std::pair{"recursive-doubling",
                  parallel::AllreduceAlgorithm::RecursiveDoubling},
        std::pair{"reduce-scatter+allgather",
                  parallel::AllreduceAlgorithm::ReduceScatterAllgather},
        std::pair{"cpe-pipelined",
                  parallel::AllreduceAlgorithm::CpePipelined}}) {
    std::vector<double> result;
    parallel::run_spmd(6, [&](parallel::Communicator& comm) {
      std::vector<double> data(n);
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = std::sin(static_cast<double>(i * (comm.rank() + 1)));
      }
      comm.allreduce(data, algo);
      if (comm.rank() == 0) result = data;
    });
    if (reference.empty()) reference = result;
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_diff = std::max(max_diff, std::abs(result[i] - reference[i]));
    }
    std::printf("  %-26s max |diff vs linear| = %.2e\n", name, max_diff);
  }
  return 0;
}
