// Figure 15: MPI Allreduce optimization during the response-potential
// calculation of the RBD protein — three modeled series over the group's
// task count:
//
//   flat-rsag    reduce-scatter + allgather, local reduce on the MPE, all
//                node members contending for the injection port ("before"),
//   hierarchical two-level: intra-node CPE RMA-mesh fold into one leader
//                per node, Rabenseifner across leaders at full port
//                bandwidth, intra-node broadcast,
//   overlapped   the hierarchical collective started as an iallreduce under
//                the DFPT grid-batch kernels; only the exposed remainder
//                max(t_comm - t_compute, 0) costs wall time.
//
// The run doubles as a regression gate: it exits non-zero unless the
// hierarchical algorithm is >= 1.5x faster than flat-rsag at every rank
// count >= 16 with the >= 1 MB RBD payload, and unless the compute window
// of one DFPT iteration hides >= 50% of the hierarchical collective.
//
// --json <file> writes the series in the swraman-bench-v1 schema consumed
// by scripts/check_perf_json.py.
//
// Paper: 2.22x at 256 tasks, 2.61x at 1024 (before/after MPI optimization;
// that ablation is reproduced at the end from the uncontended cost model).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/swraman.hpp"
#include "parallel/allreduce_select.hpp"

namespace {

struct Record {
  const char* series;
  std::size_t ranks;
  double bytes;
  double seconds;
  double cycles;
};

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"swraman-bench-v1\",\n"
      << "  \"bench\": \"fig15_allreduce\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "    {\"series\": \"" << r.series << "\", \"ranks\": " << r.ranks
        << ", \"bytes\": " << static_cast<long long>(r.bytes)
        << ", \"seconds\": " << r.seconds
        << ", \"cycles\": " << static_cast<long long>(r.cycles) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swraman;
  using namespace swraman::sunway;
  log::set_level(log::Level::Warn);

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());
  const ArchParams sw = sw26010pro();
  const std::size_t node_size = 4;
  const double bytes = job.allreduce_bytes;

  // Compute window that the non-blocking collective can hide under: the
  // three DFPT grid kernels of one iteration, split across the group.
  const auto compute_window = [&](std::size_t p) {
    auto scaled = [&](KernelWorkload w) {
      w.elements /= static_cast<double>(p);
      return w;
    };
    return modeled_time(scaled(job.n1), sw, Variant::CpeTiledDbSimd) +
           modeled_time(scaled(job.v1), sw, Variant::CpeTiledDbSimd) +
           modeled_time(scaled(job.h1), sw, Variant::CpeTiledDbSimd);
  };

  std::vector<Record> records;
  bool ok = true;
  std::printf("=== Fig. 15: hierarchical Allreduce + overlap "
              "(payload %.2f MB, node size %zu) ===\n",
              bytes / 1e6, node_size);
  std::printf("%8s %12s %12s %12s %9s %9s\n", "ranks", "flat (ms)",
              "hier (ms)", "exposed (ms)", "speedup", "hidden");
  for (const std::size_t p : {16ul, 64ul, 256ul, 1024ul}) {
    const double flat = parallel::modeled_allreduce_seconds(
        parallel::AllreduceAlgorithm::ReduceScatterAllgather, bytes, p,
        node_size, sw);
    const double hier = parallel::modeled_allreduce_seconds(
        parallel::AllreduceAlgorithm::Hierarchical, bytes, p, node_size, sw);
    const double window = compute_window(p);
    const double hidden = std::min(window, hier);
    const double exposed = hier - hidden;
    const double speedup = flat / hier;
    const double hidden_frac = hidden / hier;
    std::printf("%8zu %12.3f %12.3f %12.3f %8.2fx %8.0f%%\n", p, 1e3 * flat,
                1e3 * hier, 1e3 * exposed, speedup, 100.0 * hidden_frac);
    const double freq = sw.mpe_freq_ghz * 1e9;
    records.push_back(
        {"flat-rsag", p, bytes, flat, std::floor(flat * freq + 0.5)});
    records.push_back(
        {"hierarchical", p, bytes, hier, std::floor(hier * freq + 0.5)});
    records.push_back(
        {"overlapped", p, bytes, exposed, std::floor(exposed * freq + 0.5)});
    if (speedup < 1.5) {
      std::printf("FAIL: hierarchical speedup %.2fx < 1.5x at %zu ranks\n",
                  speedup, p);
      ok = false;
    }
    if (hidden_frac < 0.5) {
      std::printf("FAIL: overlap hides %.0f%% < 50%% at %zu ranks\n",
                  100.0 * hidden_frac, p);
      ok = false;
    }
  }

  // Paper ablation (uncontended model): local reduce on MPE vs CPE.
  const auto& targets = core::paper_targets();
  AllreduceModel before;
  before.reduce_scatter = true;
  before.cpe_offload = false;
  AllreduceModel after;
  after.reduce_scatter = true;
  after.cpe_offload = true;
  std::printf("\nMPI optimization ablation (before/after, paper Fig. 15):\n");
  const double paper[] = {targets.fig15_speedup_at_256,
                          targets.fig15_speedup_at_1024};
  int k = 0;
  for (const std::size_t p : {256ul, 1024ul}) {
    const double b = modeled_allreduce_time(bytes, p, sw, before);
    const double a = modeled_allreduce_time(bytes, p, sw, after);
    std::printf("  %4zu tasks: %.3f -> %.3f ms, %.2fx (paper %.2fx)\n", p,
                1e3 * b, 1e3 * a, b / a, paper[k++]);
  }

  // Functional cross-check on the thread-rank runtime (small scale): all
  // algorithms, including the hierarchical and auto-selected paths, must
  // agree with the linear reference.
  std::printf("\nFunctional Allreduce agreement across algorithms "
              "(6 ranks, 4099 doubles, node size 4):\n");
  const std::size_t n = 4099;
  parallel::CommConfig cfg;
  cfg.node_size = 4;
  std::vector<double> reference;
  for (auto [name, algo] :
       {std::pair{"linear", parallel::AllreduceAlgorithm::Linear},
        std::pair{"ring", parallel::AllreduceAlgorithm::Ring},
        std::pair{"recursive-doubling",
                  parallel::AllreduceAlgorithm::RecursiveDoubling},
        std::pair{"reduce-scatter+allgather",
                  parallel::AllreduceAlgorithm::ReduceScatterAllgather},
        std::pair{"cpe-pipelined",
                  parallel::AllreduceAlgorithm::CpePipelined},
        std::pair{"hierarchical", parallel::AllreduceAlgorithm::Hierarchical},
        std::pair{"auto", parallel::AllreduceAlgorithm::Auto}}) {
    std::vector<double> result;
    parallel::run_spmd(
        6,
        [&](parallel::Communicator& comm) {
          std::vector<double> data(n);
          for (std::size_t i = 0; i < n; ++i) {
            data[i] = std::sin(static_cast<double>(i * (comm.rank() + 1)));
          }
          comm.allreduce(data, algo);
          if (comm.rank() == 0) result = data;
        },
        cfg);
    if (reference.empty()) reference = result;
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_diff = std::max(max_diff, std::abs(result[i] - reference[i]));
    }
    std::printf("  %-26s max |diff vs linear| = %.2e\n", name, max_diff);
    if (!(max_diff < 1e-10)) {
      std::printf("FAIL: %s disagrees with the linear reference\n", name);
      ok = false;
    }
  }

  if (!json_path.empty()) write_json(json_path, records);
  if (!ok) {
    std::printf("\nbench_fig15_allreduce: FAILED acceptance checks\n");
    return 1;
  }
  return 0;
}
