// Ablation: integration batch size vs CPE efficiency — extends the paper's
// 100/200/300 points-per-batch observation (Fig. 13, cases #3/#5/#6) to a
// full sweep, for both the modeled Sunway kernels and the real cut-plane
// batcher on an actual molecular grid.

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  using namespace swraman::sunway;
  log::set_level(log::Level::Warn);

  const ArchParams sw = sw26010pro();
  std::printf("=== Ablation: batch size sweep (n1/H1 kernel model, "
              "Si case grid) ===\n");
  std::printf("%8s %12s %12s\n", "pts/bat", "n1 speedup", "H1 speedup");
  for (std::size_t pts : {50, 100, 150, 200, 250, 300, 400}) {
    core::SiCase c{"sweep", 35836, 36, pts};
    const auto speedup = [&](const KernelWorkload& w) {
      return modeled_time(w, sw, Variant::MpeScalar) /
             modeled_time(w, sw, Variant::CpeTiledDbSimd);
    };
    std::printf("%8zu %11.1fx %11.1fx\n", pts,
                speedup(core::si_case_n1(c)), speedup(core::si_case_h1(c)));
  }

  // Real batcher behavior on a real grid: batch statistics + Algorithm-1
  // balance quality across target sizes.
  std::printf("\nReal cut-plane batching of a water grid:\n");
  std::printf("%8s %10s %12s %22s\n", "target", "batches", "avg size",
              "imbalance @ 16 procs");
  const grid::MolecularGrid g =
      grid::build_molecular_grid(molecules::water(), {});
  for (std::size_t target : {50, 100, 200, 300}) {
    grid::BatchingOptions opt;
    opt.target_batch_size = target;
    const std::vector<grid::Batch> batches = grid::make_batches(g, opt);
    double avg = 0.0;
    for (const grid::Batch& b : batches) {
      avg += static_cast<double>(b.size());
    }
    avg /= static_cast<double>(batches.size());
    const grid::BatchAssignment assign = grid::balance_batches(batches, 16);
    std::printf("%8zu %10zu %12.1f %21.3f\n", target, batches.size(), avg,
                assign.imbalance());
  }
  return 0;
}
