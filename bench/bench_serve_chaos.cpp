// Chaos harness for the durable sharded serve tier (DESIGN.md S12).
//
// Replays the mixed-tenant trace twice through a ShardedRamanService:
//
//   fault-free   no injector armed; per-job result hashes recorded.
//   chaos        serve.shard.kill armed at two points mid-trace (the
//                routed-to shard is crashed under the submission and the
//                job fails over), serve.wal.torn_write wedges one WAL
//                mid-run, serve.cache.remote_timeout degrades a fraction
//                of cross-shard lookups; dead shards are restarted
//                mid-trace and at the end, replaying their logs.
//
// Acceptance gates (the durability contract, exit 1 on violation):
//   * at least one kill fired and at least one job was replayed from a WAL
//   * zero lost accepted jobs — every acknowledged submission reaches a
//     terminal Completed result after failover/replay
//   * every job's (dalpha, dmu) hash is bitwise identical to the
//     fault-free run
//
// The chaos pass also drives the observability plane end to end
// (DESIGN.md S13) and gates on its artifacts:
//   * jobtrace stitching — some chaos-pass job must carry spans from both
//     shard incarnations (pre-kill work, the replay marker, post-kill
//     work) on ONE gid timeline (--jobtrace FILE exports all of them);
//   * flight recorder — every injected shard kill dumps a postmortem
//     ring (flight-serve.shard.kill.json in the working directory);
//   * SLO monitor — with a deliberately unattainable latency SLO the
//     per-tenant burn rate must light up during the chaos window
//     (--health FILE exports the swraman-health-v1 history).
//
// --json writes the swraman-bench-v1 chaos record consumed by
// scripts/check_perf_json.py (dispatched on "recovered_jobs").

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"
#include "serve/sharded.hpp"
#include "serve/trace.hpp"

namespace {

using namespace swraman;
using namespace swraman::serve;

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

std::uint64_t result_hash(const JobResult& r) {
  Hash64 h;
  h.u64(r.dalpha.rows());
  h.u64(r.dalpha.cols());
  for (std::size_t i = 0; i < r.dalpha.rows(); ++i) {
    for (std::size_t j = 0; j < r.dalpha.cols(); ++j) {
      h.f64(r.dalpha(i, j));
    }
  }
  for (std::size_t i = 0; i < r.dmu.rows(); ++i) {
    for (std::size_t j = 0; j < r.dmu.cols(); ++j) h.f64(r.dmu(i, j));
  }
  return h.value();
}

ShardedOptions make_options(const std::string& wal_dir,
                            std::size_t n_shards) {
  ShardedOptions opts;
  opts.n_shards = n_shards;
  opts.wal_dir = wal_dir;
  // Effectively unbounded admission: the chaos gates measure durability,
  // not backpressure — a rejection would masquerade as a lost job.
  opts.service.admission.max_queued_tasks = 1u << 30;
  opts.service.admission.max_modeled_bytes = 1e15;
  opts.service.n_workers = 2;
  return opts;
}

struct RunOutcome {
  std::map<std::size_t, std::uint64_t> hashes;  // trace index -> hash
  std::size_t accepted = 0;
  std::size_t completed = 0;
  ShardedStats stats;
  std::string health_json;  // swraman-health-v1 from this run's monitor
  double max_burn = 0.0;    // worst max_burn_rate across its snapshots
};

// kill_at: trace indices whose submission is preceded by arming
// serve.shard.kill (fires on that submission's routing decision);
// restart_at: indices where every dead shard is recovered first.
RunOutcome run_trace(const std::vector<JobSpec>& trace,
                     const ShardedOptions& opts,
                     const std::vector<std::size_t>& kill_at,
                     const std::vector<std::size_t>& restart_at) {
  std::filesystem::create_directories(opts.wal_dir);
  ShardedRamanService svc(opts);
  std::map<std::size_t, std::uint64_t> gids;  // trace index -> gid
  RunOutcome out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (std::find(restart_at.begin(), restart_at.end(), i) !=
        restart_at.end()) {
      svc.recover_all();
    }
    if (std::find(kill_at.begin(), kill_at.end(), i) != kill_at.end()) {
      fault::FaultSpec spec;
      spec.fire_at = 1;  // the very next routing decision kills its shard
      fault::FaultInjector::instance().configure(kFaultShardKill, spec);
    }
    const SubmitResult res = svc.submit(trace[i]);
    if (!res.accepted) {
      std::printf("  (rejected '%s': %s, retry after %.3f s)\n",
                  trace[i].name.c_str(), res.reason.c_str(),
                  res.retry_after_s);
      continue;
    }
    gids[i] = res.job_id;
    ++out.accepted;
  }
  svc.recover_all();
  svc.drain();
  for (const auto& [idx, gid] : gids) {
    const JobResult r = svc.wait(gid);
    if (r.status == JobStatus::Completed) {
      ++out.completed;
      out.hashes[idx] = result_hash(r);
    } else {
      std::printf("  job %zu FAILED: %s\n", idx, r.error.c_str());
    }
  }
  out.stats = svc.stats();
  // Export the monitor's history before the service (and its registry
  // observations) go away with the run.
  out.health_json = svc.slo().export_json();
  for (const obs::HealthSnapshot& s : svc.slo().history()) {
    out.max_burn = std::max(out.max_burn, s.max_burn_rate);
  }
  return out;
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  if (!out.good()) {
    std::printf("bench_serve_chaos: FAIL cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// The stitched-timeline gate: at least one chaos-pass job whose single
// gid timeline shows work from incarnation 0, the replay marker, and
// resumed work from incarnation >= 1 — proof the trace context survived
// the WAL round-trip through the shard death.
bool any_stitched_timeline() {
  auto& jt = obs::JobTraceRegistry::instance();
  for (const std::uint64_t gid : jt.gids()) {
    if (jt.incarnation(gid) == 0) continue;
    bool pre_kill = false;
    bool replay = false;
    bool post_kill = false;
    for (const obs::JobSpan& s : jt.spans(gid)) {
      if (s.incarnation == 0 && s.id != 1) pre_kill = true;
      if (s.name == "replay" && s.incarnation >= 1) replay = true;
      if (s.incarnation >= 1 && !s.event && s.name != "replay" &&
          s.id != 1) {
        post_kill = true;
      }
    }
    if (pre_kill && replay && post_kill) return true;
  }
  return false;
}

void write_json(const std::string& path, std::size_t jobs,
                const ShardedStats& s, double replayed_fraction,
                std::size_t lost_jobs, std::size_t bitwise_mismatches) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"swraman-bench-v1\",\n"
      << "  \"bench\": \"serve_chaos\",\n  \"records\": [\n"
      << "    {\"series\": \"chaos\", \"jobs\": " << jobs
      << ", \"kills\": " << s.kills
      << ", \"recovered_jobs\": " << s.replayed_jobs
      << ", \"replayed_tasks\": " << s.replayed_tasks
      << ", \"replayed_fraction\": " << replayed_fraction
      << ", \"failovers\": " << s.failovers
      << ", \"failover_p50_s\": " << percentile(s.failover_latencies_s, 0.50)
      << ", \"failover_p95_s\": " << percentile(s.failover_latencies_s, 0.95)
      << ", \"failover_p99_s\": " << percentile(s.failover_latencies_s, 0.99)
      << ", \"lost_jobs\": " << lost_jobs
      << ", \"bitwise_mismatches\": " << bitwise_mismatches << "}\n"
      << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  log::set_level(log::Level::Error);
  std::string json_path;
  std::string jobtrace_path;
  std::string health_path;
  std::size_t n_shards = 3;
  bool short_trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--jobtrace") == 0 && i + 1 < argc) {
      jobtrace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--health") == 0 && i + 1 < argc) {
      health_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      n_shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--short") == 0) {
      short_trace = true;
    }
  }

  // The chaos harness always runs with the full observability plane on:
  // the acceptance gates below require its artifacts. Flight dumps land
  // in the working directory (flight-serve.shard.kill.json per kill).
  obs::set_enabled(true);
  obs::flight::set_enabled(true);

  TraceOptions topts;
  if (short_trace) {
    topts.rbd_submissions = 2;
    topts.silicon_submissions = 2;
    topts.water_submissions = 6;
  }
  const std::vector<JobSpec> trace = mixed_tenant_trace(topts);
  const std::size_t nominal = trace_nominal_tasks(trace);
  std::printf("bench_serve_chaos: %zu jobs, %zu nominal tasks, %zu shards\n",
              trace.size(), nominal, n_shards);

  fault::ScopedFaults guard;  // both passes start from a clean injector

  std::printf("\nfault-free pass...\n");
  const RunOutcome clean =
      run_trace(trace, make_options("bench_chaos_wal/clean", n_shards),
                {}, {});

  std::printf("chaos pass (kills + torn WAL + remote timeouts)...\n");
  // Jobtrace only now: both passes replay the same trace through fresh
  // services, so gids repeat — tracing the fault-free pass would merge
  // its spans into the chaos timelines the stitching gate inspects.
  obs::set_jobtrace_enabled(true);
  // Torn-write and remote-timeout sites stay armed for the whole pass;
  // the kill site is re-armed at each kill point inside run_trace.
  fault::reset();
  fault::FaultInjector::instance().configure_from_string(
      "serve.wal.torn_write:at=120;serve.cache.remote_timeout:p=0.3");
  const std::size_t k1 = trace.size() / 3;
  const std::size_t k2 = 2 * trace.size() / 3;
  const std::size_t r1 = (k1 + k2) / 2;  // restart between the kills
  ShardedOptions chaos_opts = make_options("bench_chaos_wal/chaos", n_shards);
  // An unattainable latency SLO: every modeled job misses it, so the SLO
  // monitor must show the error budget burning while the chaos window is
  // open — that the burn actually registers is one of the gates.
  chaos_opts.slo.latency_slo_s = 1e-6;
  chaos_opts.slo.min_period_s = 0.0;  // snapshot on every tier tick
  const RunOutcome chaos = run_trace(trace, chaos_opts, {k1, k2}, {r1});

  std::size_t mismatches = 0;
  for (const auto& [idx, h] : clean.hashes) {
    const auto it = chaos.hashes.find(idx);
    if (it == chaos.hashes.end() || it->second != h) ++mismatches;
  }
  const std::size_t lost = chaos.accepted - chaos.completed;
  const double replayed_fraction =
      nominal == 0 ? 0.0
                   : std::min(1.0, static_cast<double>(
                                       chaos.stats.replayed_tasks) /
                                       static_cast<double>(nominal));

  std::printf(
      "\nchaos: %zu accepted, %zu completed, %llu kills, %llu failovers, "
      "%llu jobs / %llu tasks replayed, %llu remote hits\n",
      chaos.accepted, chaos.completed,
      static_cast<unsigned long long>(chaos.stats.kills),
      static_cast<unsigned long long>(chaos.stats.failovers),
      static_cast<unsigned long long>(chaos.stats.replayed_jobs),
      static_cast<unsigned long long>(chaos.stats.replayed_tasks),
      static_cast<unsigned long long>(chaos.stats.remote_hits));
  std::printf("lost jobs: %zu, bitwise mismatches: %zu\n", lost, mismatches);
  std::printf(
      "obs plane: %llu flight dump(s), %zu traced jobs, "
      "max SLO burn %.1fx\n",
      static_cast<unsigned long long>(obs::flight::dump_count()),
      obs::JobTraceRegistry::instance().n_jobs(), chaos.max_burn);

  if (!json_path.empty()) {
    write_json(json_path, trace.size(), chaos.stats, replayed_fraction, lost,
               mismatches);
  }
  bool artifacts_ok = true;
  if (!jobtrace_path.empty()) {
    if (obs::write_jobtrace_file(jobtrace_path)) {
      std::printf("wrote %s\n", jobtrace_path.c_str());
    } else {
      std::printf("bench_serve_chaos: FAIL cannot write %s\n",
                  jobtrace_path.c_str());
      artifacts_ok = false;
    }
  }
  if (!health_path.empty()) {
    artifacts_ok = write_text(health_path, chaos.health_json) && artifacts_ok;
  }

  bool ok = artifacts_ok;
  if (chaos.stats.kills < 1) {
    std::printf("bench_serve_chaos: FAIL no shard kill fired\n");
    ok = false;
  }
  if (chaos.stats.replayed_jobs < 1) {
    std::printf("bench_serve_chaos: FAIL no job replayed from a WAL\n");
    ok = false;
  }
  if (chaos.accepted != clean.accepted) {
    std::printf("bench_serve_chaos: FAIL accepted %zu != fault-free %zu\n",
                chaos.accepted, clean.accepted);
    ok = false;
  }
  if (lost != 0) {
    std::printf("bench_serve_chaos: FAIL %zu accepted jobs lost\n", lost);
    ok = false;
  }
  if (mismatches != 0) {
    std::printf("bench_serve_chaos: FAIL %zu spectra differ bitwise\n",
                mismatches);
    ok = false;
  }
  if (!any_stitched_timeline()) {
    std::printf("bench_serve_chaos: FAIL no job timeline stitched across "
                "the kill/replay boundary\n");
    ok = false;
  }
  if (obs::flight::dump_count() < 1) {
    std::printf("bench_serve_chaos: FAIL no flight-recorder dump for the "
                "injected kills\n");
    ok = false;
  }
  if (!(chaos.max_burn > 0.0)) {
    std::printf("bench_serve_chaos: FAIL SLO burn never registered during "
                "the chaos window\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
