// Figure 14: total time per DFPT iteration for the RBD protein
// (3006 atoms) — new-generation Sunway vs Intel Xeon E5-2692v2
// (Tianhe-2) at equal MPI task counts (64 / 128 / 256).
//
// Paper: 9.70x / 8.38x / 7.84x, declining as per-process work shrinks and
// the Sunway-side fixed costs (MPE-serial phases, collectives, kernel
// launches) gain weight.
//
// --json PATH emits a swraman-bench-v1 report (one record per machine
// per task count, plus a "speedup" series) for scripts/check_perf_json.py.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/swraman.hpp"

namespace {

struct Record {
  std::string series;
  std::size_t ranks;
  double bytes;
  double seconds;
};

void write_json(const std::string& path, const std::vector<Record>& records) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"swraman-bench-v1\",\n"
      << "  \"bench\": \"fig14_rbd_dfpt\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out << "    {\"series\": \"" << r.series << "\", \"ranks\": " << r.ranks
        << ", \"bytes\": " << static_cast<long long>(r.bytes)
        << ", \"seconds\": " << r.seconds << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swraman;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());

  scaling::MachineModel sunway;
  sunway.node = sunway::sw26010pro();

  scaling::MachineModel xeon;
  xeon.cpu = true;
  xeon.node = sunway::xeon_e5_2692v2();
  xeon.node.n_pes = 1;                 // one MPI task = one core
  xeon.node.node_mem_bw_gbs /= 12.0;   // sharing the socket bandwidth
  xeon.cores_per_process = 1;

  const auto& targets = core::paper_targets();
  const double paper[] = {targets.fig14_speedup_at_64,
                          targets.fig14_speedup_at_128,
                          targets.fig14_speedup_at_256};

  std::vector<Record> records;
  std::printf("=== Fig. 14: RBD (3006 atoms) DFPT time per iteration ===\n");
  std::printf("%10s %14s %14s %10s %10s\n", "MPI tasks", "Xeon (s)",
              "Sunway (s)", "speedup", "paper");
  int k = 0;
  for (std::size_t p : {64, 128, 256}) {
    const scaling::ScalabilitySimulator sw_sim(job, sunway, p);
    const scaling::ScalabilitySimulator xe_sim(job, xeon, p);
    const double t_sw = sw_sim.dfpt_iteration_time(p);
    const double t_xe = xe_sim.dfpt_iteration_time(p);
    std::printf("%10zu %14.4f %14.4f %9.2fx %9.2fx\n", p, t_xe, t_sw,
                t_xe / t_sw, paper[k++]);
    records.push_back({"xeon_e5_2692v2", p, job.allreduce_bytes, t_xe});
    records.push_back({"sw26010pro", p, job.allreduce_bytes, t_sw});
    records.push_back({"speedup", p, 0.0, t_xe / t_sw});
  }

  std::printf("\nPer-kernel share of the Sunway iteration at 256 tasks:\n");
  const sunway::ArchParams sw = sunway::sw26010pro();
  const double p = 256.0;
  for (const sunway::KernelWorkload* w : {&job.v1, &job.n1, &job.h1}) {
    sunway::KernelWorkload share = *w;
    share.elements /= p;
    std::printf("  %-3s %9.4f s\n", share.name.c_str(),
                modeled_time(share, sw, sunway::Variant::CpeTiledDbSimd));
  }
  std::printf("  allreduce %7.4f s   MPE-serial %7.4f s\n",
              modeled_allreduce_time(job.allreduce_bytes, 256, sw, {}),
              job.mpe_serial_seconds);

  if (!json_path.empty()) write_json(json_path, records);
  return 0;
}
