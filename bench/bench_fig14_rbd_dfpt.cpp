// Figure 14: total time per DFPT iteration for the RBD protein
// (3006 atoms) — new-generation Sunway vs Intel Xeon E5-2692v2
// (Tianhe-2) at equal MPI task counts (64 / 128 / 256).
//
// Paper: 9.70x / 8.38x / 7.84x, declining as per-process work shrinks and
// the Sunway-side fixed costs (MPE-serial phases, collectives, kernel
// launches) gain weight.

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());

  scaling::MachineModel sunway;
  sunway.node = sunway::sw26010pro();

  scaling::MachineModel xeon;
  xeon.cpu = true;
  xeon.node = sunway::xeon_e5_2692v2();
  xeon.node.n_pes = 1;                 // one MPI task = one core
  xeon.node.node_mem_bw_gbs /= 12.0;   // sharing the socket bandwidth
  xeon.cores_per_process = 1;

  const auto& targets = core::paper_targets();
  const double paper[] = {targets.fig14_speedup_at_64,
                          targets.fig14_speedup_at_128,
                          targets.fig14_speedup_at_256};

  std::printf("=== Fig. 14: RBD (3006 atoms) DFPT time per iteration ===\n");
  std::printf("%10s %14s %14s %10s %10s\n", "MPI tasks", "Xeon (s)",
              "Sunway (s)", "speedup", "paper");
  int k = 0;
  for (std::size_t p : {64, 128, 256}) {
    const scaling::ScalabilitySimulator sw_sim(job, sunway, p);
    const scaling::ScalabilitySimulator xe_sim(job, xeon, p);
    const double t_sw = sw_sim.dfpt_iteration_time(p);
    const double t_xe = xe_sim.dfpt_iteration_time(p);
    std::printf("%10zu %14.4f %14.4f %9.2fx %9.2fx\n", p, t_xe, t_sw,
                t_xe / t_sw, paper[k++]);
  }

  std::printf("\nPer-kernel share of the Sunway iteration at 256 tasks:\n");
  const sunway::ArchParams sw = sunway::sw26010pro();
  const double p = 256.0;
  for (const sunway::KernelWorkload* w : {&job.v1, &job.n1, &job.h1}) {
    sunway::KernelWorkload share = *w;
    share.elements /= p;
    std::printf("  %-3s %9.4f s\n", share.name.c_str(),
                modeled_time(share, sw, sunway::Variant::CpeTiledDbSimd));
  }
  std::printf("  allreduce %7.4f s   MPE-serial %7.4f s\n",
              modeled_allreduce_time(job.allreduce_bytes, 256, sw, {}),
              job.mpe_serial_seconds);
  return 0;
}
