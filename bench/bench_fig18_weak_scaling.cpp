// Figure 18: weak scaling of the RBD Raman computation — the number of
// polarizabilities grows with the machine, 2,560 to 300,800 processes
// (166,400 to 19,552,000 cores).
//
// Paper: times 22,345 / 22,375 / 23,235 / 26,085 / 26,472 s, parallel
// efficiency 100% -> 99.9% -> 96.2% -> 85.7% -> 84.4%.
// Absolute times differ (our synthesized per-geometry workload is lighter
// than the authors' production setup); the efficiency decay is the
// reproduced quantity.

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());
  scaling::MachineModel machine;
  machine.node = sunway::sw26010pro();
  const scaling::ScalabilitySimulator sim(job, machine, 256);
  const auto& targets = core::paper_targets();

  std::printf("=== Fig. 18: weak scaling (polarizabilities grow with "
              "cores) ===\n");
  std::printf("%10s %12s %12s %8s %14s\n", "processes", "cores", "time (s)",
              "eff", "paper t (s)/eff");
  const std::vector<std::size_t> sweep{2560, 10240, 48640, 138240, 300800};
  const double paper_eff[] = {1.0, 0.999, 0.962, 0.857, 0.844};
  std::size_t k = 0;
  for (const scaling::ScalingPoint& p : sim.weak_scaling(sweep)) {
    std::printf("%10zu %12zu %12.1f %7.1f%% %9.0f / %.1f%%\n", p.n_processes,
                p.n_cores, p.time_seconds, 100.0 * p.efficiency,
                targets.fig18_times[k], 100.0 * paper_eff[k]);
    ++k;
  }
  return 0;
}
