// Figure 13: speedups of the three DFPT kernels — response Hamiltonian
// (H1), response density (n1), response potential (V1) — on one Sunway
// core group relative to one MPE, for the six Table-1 silicon cases.
//
// Paper observations reproduced here:
//   * V1 depends only on the grid (no basis dependence); the denser-grid
//     cases #2/#4 accelerate ~7% better,
//   * n1/H1 depend on both basis count and grid,
//   * 200 points per batch (#5) accelerates best among #3/#5/#6.

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  using namespace swraman::sunway;

  const ArchParams sw = sw26010pro();
  const auto speedup = [&](const KernelWorkload& w) {
    return modeled_time(w, sw, Variant::MpeScalar) /
           modeled_time(w, sw, Variant::CpeTiledDbSimd);
  };

  std::printf("=== Fig. 13: DFPT kernel speedups on one SW26010Pro CG ===\n");
  std::printf("%-5s %8s %8s %8s   grid/basis/batch\n", "case", "H1", "n1",
              "V1");
  for (const core::SiCase& c : core::table1_cases()) {
    std::printf("%-5s %7.1fx %7.1fx %7.1fx   %zu / %zu / %zu\n", c.name,
                speedup(core::si_case_h1(c)), speedup(core::si_case_n1(c)),
                speedup(core::si_case_v1(c)), c.grid_points, c.n_basis,
                c.points_per_batch);
  }

  std::printf("\nChecks against the paper's qualitative claims:\n");
  const auto& cases = core::table1_cases();
  // The denser-grid benefit is a DMA-reuse effect, visible in the tiled
  // (bandwidth-sensitive) variant.
  const auto tiled_speedup = [&](const KernelWorkload& w) {
    return modeled_time(w, sw, Variant::MpeScalar) /
           modeled_time(w, sw, Variant::CpeTiled);
  };
  const double v1_sparse = tiled_speedup(core::si_case_v1(cases[0]));
  const double v1_dense = tiled_speedup(core::si_case_v1(cases[1]));
  std::printf("  V1 denser grid (#2 vs #1): %+.1f%% (paper: ~+7%%)\n",
              100.0 * (v1_dense / v1_sparse - 1.0));
  const double n1_100 = speedup(core::si_case_n1(cases[2]));
  const double n1_200 = speedup(core::si_case_n1(cases[4]));
  const double n1_300 = speedup(core::si_case_n1(cases[5]));
  std::printf("  n1 batch-size sweep 100/200/300: %.1f / %.1f / %.1f "
              "(paper: 200 highest)\n",
              n1_100, n1_200, n1_300);
  const double h1_18 = speedup(core::si_case_h1(cases[0]));
  const double h1_50 = speedup(core::si_case_h1(cases[3]));
  std::printf("  H1 basis growth 18 -> 50 fns: %.1f -> %.1f "
              "(paper: speedup grows with basis)\n",
              h1_18, h1_50);

  // Functional batch kernels on the CPE model (operation counting).
  std::printf("\nFunctional batch-kernel execution (case #5 shapes):\n");
  CpeCluster cluster(sw);
  const std::vector<BatchShape> batches(
      cases[4].grid_points / cases[4].points_per_batch,
      {cases[4].n_basis, cases[4].points_per_batch});
  const KernelWorkload n1w = run_density_batches(cluster, batches);
  std::printf("  n1: %.2e flops, %.1f MB DMA across %d CPEs\n",
              n1w.total_flops(), cluster.total().dma_bytes / 1e6, sw.n_pes);
  CpeCluster cluster2(sw);
  const KernelWorkload h1w = run_hamiltonian_batches(cluster2, batches);
  std::printf("  H1: %.2e flops, %.1f MB DMA, %.1f MB RMA scatter-add\n",
              h1w.total_flops(), cluster2.total().dma_bytes / 1e6,
              cluster2.total().rma_bytes / 1e6);
  return 0;
}
