// Accuracy-tier capacity benchmark (DESIGN.md S15): the same water-scale
// Raman job priced through both accuracy tiers.
//
//   dfpt   the full tier: 6N displaced-geometry SCF+DFPT tasks per job.
//   bec    the Born-effective-charge tier: 13 finite-field force tasks
//          per job, whatever the atom count.
//
// Two measurements, one JSON artifact:
//
//   capacity   (modeled) a batch of identical water-scale jobs is pushed
//              through the service once per tier, dedup disabled so every
//              job pays its own cost; speedup = bec jobs/s over dfpt
//              jobs/s — the capacity multiplier admission control gets to
//              sell.
//   golden     (real engine) the golden water case from DESIGN.md S15:
//              the bec tier's derivative tensors and activities against
//              full DFPT on the golden grid, with the engine-evaluation
//              counts read from the obs counters. Gates the paper claim:
//              >= 5x fewer evaluations, activities within 5%.
//
// --json writes swraman-bench-v1 records (two serve-shaped capacity
// records plus one tiers record) consumed by scripts/check_perf_json.py;
// --skip-real skips the golden stage for quick local runs (the tiers
// record then carries the analytic stencil counts, flagged measured=0).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "raman/bec.hpp"
#include "serve/service.hpp"

namespace {

using namespace swraman;
using namespace swraman::serve;

struct RunStats {
  std::string series;
  std::size_t jobs = 0;
  std::size_t nominal_tasks = 0;
  std::size_t executed_tasks = 0;
  double seconds = 0.0;
  double throughput_per_s = 0.0;  // jobs / wall second
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double cache_hit_ratio = 0.0;
};

// Golden-water accuracy + cost numbers for the tiers record.
struct TierProof {
  bool measured = false;
  double dfpt_evals = 0.0;
  double bec_evals = 0.0;
  double max_activity_rel_err = 0.0;
  double max_dmu_err = 0.0;
  double max_dalpha_err = 0.0;
  double max_freq_abs_err_cm = 0.0;
  std::size_t active_modes = 0;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

JobSpec tier_spec(Tier tier, std::size_t n_atoms, int i) {
  JobSpec spec;
  spec.client = "bench";
  spec.name = std::string(tier == Tier::Bec ? "bec" : "dfpt") + "-" +
              std::to_string(i);
  spec.engine = EngineKind::Modeled;
  spec.scale.n_atoms = n_atoms;
  spec.tier = tier;
  return spec;
}

RunStats run_tier(const std::string& series, Tier tier, std::size_t n_jobs,
                  std::size_t n_workers) {
  ServiceOptions options;
  options.n_workers = n_workers;
  options.use_cache = false;  // capacity, not dedup: every job pays
  options.start_paused = true;
  RamanService service(options);
  std::vector<std::uint64_t> ids;
  ids.reserve(n_jobs);
  std::size_t nominal = 0;
  for (std::size_t i = 0; i < n_jobs; ++i) {
    const JobSpec spec = tier_spec(tier, 3, static_cast<int>(i));
    nominal += estimate_job(spec).n_tasks;
    const SubmitResult res = service.submit(spec);
    if (!res.accepted) {
      std::printf("  (rejected '%s': %s)\n", spec.name.c_str(),
                  res.reason.c_str());
      continue;
    }
    ids.push_back(res.job_id);
  }
  const auto t0 = std::chrono::steady_clock::now();
  service.start();
  std::vector<double> latencies;
  latencies.reserve(ids.size());
  for (std::uint64_t id : ids) {
    const JobResult result = service.wait(id);
    if (result.status != JobStatus::Completed) {
      std::printf("  job %llu FAILED: %s\n",
                  static_cast<unsigned long long>(id), result.error.c_str());
      continue;
    }
    latencies.push_back(result.latency_s);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const ServiceStats stats = service.stats();

  RunStats out;
  out.series = series;
  out.jobs = latencies.size();
  out.nominal_tasks = nominal;
  out.executed_tasks = stats.tasks_executed;
  out.seconds = wall;
  out.throughput_per_s = static_cast<double>(out.jobs) / wall;
  out.p50_s = percentile(latencies, 0.50);
  out.p95_s = percentile(latencies, 0.95);
  out.p99_s = percentile(latencies, 0.99);
  out.cache_hit_ratio = stats.cache_hit_ratio;
  return out;
}

// The golden water case (DESIGN.md S15): real engines, golden grid,
// obs-counted evaluations. Mirrors tests/raman/test_bec.cpp BecGolden but
// reports numbers instead of asserting, so the JSON record carries the
// measured margins.
TierProof run_golden() {
  const std::vector<grid::AtomSite> atoms = {
      {8, {0.0, 0.0, 0.3268247149}},
      {1, {1.2518316921, 0.0, 0.9437281316}},
      {1, {-1.2518316921, 0.0, 0.9437281316}}};
  raman::RamanOptions ropt;
  ropt.vibrations.scf.grid.n_radial = 28;
  ropt.vibrations.scf.grid.angular_order = 13;
  raman::BecOptions bopt;
  bopt.vibrations = ropt.vibrations;

  obs::set_enabled(true);
  obs::Registry::instance().reset_for_testing();
  const auto solves = [] {
    const auto counters = obs::Registry::instance().counter_values();
    double n = 0.0;
    for (const char* name : {"scf.solves", "dfpt.response.solves"}) {
      const auto it = counters.find(name);
      if (it != counters.end()) n += it->second;
    }
    return n;
  };

  TierProof proof;
  proof.measured = true;

  raman::BecCalculator bec(atoms, bopt);
  const std::vector<raman::GeometryRecord> records = bec.field_records();
  proof.bec_evals = solves();
  linalg::Matrix da_bec;
  linalg::Matrix dm_bec;
  raman::bec_derivatives(records, bopt.field_strength, 9, true, &da_bec,
                         &dm_bec);

  obs::Registry::instance().reset_for_testing();
  raman::RamanCalculator full(atoms, ropt);
  const linalg::Matrix da_dfpt = full.polarizability_derivatives();
  const linalg::Matrix& dm_dfpt = full.dipole_derivatives();
  proof.dfpt_evals = solves();
  obs::set_enabled(false);

  for (std::size_t k = 0; k < 9; ++k) {
    for (std::size_t j = 0; j < 3; ++j) {
      proof.max_dmu_err =
          std::max(proof.max_dmu_err, std::abs(dm_bec(k, j) - dm_dfpt(k, j)));
    }
    for (std::size_t j = 0; j < 9; ++j) {
      proof.max_dalpha_err = std::max(
          proof.max_dalpha_err, std::abs(da_bec(k, j) - da_dfpt(k, j)));
    }
  }

  const linalg::Matrix hess = raman::energy_hessian(atoms, ropt.vibrations);
  const raman::NormalModes modes = raman::normal_modes(
      atoms, hess, ropt.vibrations.project_rigid_body);
  const raman::RamanSpectrum spec_bec = raman::assemble_spectrum(
      atoms, modes, da_bec, dm_bec, ropt.mode_floor_cm);
  const raman::RamanSpectrum spec_dfpt = raman::assemble_spectrum(
      atoms, modes, da_dfpt, dm_dfpt, ropt.mode_floor_cm);
  const std::size_t n_modes =
      std::min(spec_bec.modes.size(), spec_dfpt.modes.size());
  for (std::size_t m = 0; m < n_modes; ++m) {
    const raman::RamanMode& b = spec_bec.modes[m];
    const raman::RamanMode& d = spec_dfpt.modes[m];
    proof.max_freq_abs_err_cm = std::max(
        proof.max_freq_abs_err_cm, std::abs(b.frequency_cm - d.frequency_cm));
    if (d.activity < 1.0) continue;  // silent modes: no relative gate
    ++proof.active_modes;
    proof.max_activity_rel_err = std::max(
        proof.max_activity_rel_err, std::abs(b.activity / d.activity - 1.0));
  }
  return proof;
}

void write_json(const std::string& path, const std::vector<RunStats>& runs,
                double speedup, const TierProof& proof) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"swraman-bench-v1\",\n"
      << "  \"bench\": \"serve_tiers\",\n  \"records\": [\n";
  for (const RunStats& r : runs) {
    out << "    {\"series\": \"" << r.series << "\", \"jobs\": " << r.jobs
        << ", \"tasks\": " << r.nominal_tasks
        << ", \"executed_tasks\": " << r.executed_tasks
        << ", \"seconds\": " << r.seconds
        << ", \"throughput_per_s\": " << r.throughput_per_s
        << ", \"p50_s\": " << r.p50_s << ", \"p95_s\": " << r.p95_s
        << ", \"p99_s\": " << r.p99_s
        << ", \"cache_hit_ratio\": " << r.cache_hit_ratio << "},\n";
  }
  out << "    {\"series\": \"tiers\", \"speedup\": " << speedup
      << ", \"dfpt_evals\": " << proof.dfpt_evals
      << ", \"bec_evals\": " << proof.bec_evals
      << ", \"measured\": " << (proof.measured ? 1 : 0)
      << ", \"max_activity_rel_err\": " << proof.max_activity_rel_err
      << ", \"max_dmu_err\": " << proof.max_dmu_err
      << ", \"max_dalpha_err\": " << proof.max_dalpha_err
      << ", \"max_freq_abs_err_cm\": " << proof.max_freq_abs_err_cm
      << ", \"active_modes\": " << proof.active_modes << "}\n"
      << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

void print_stats(const RunStats& r) {
  std::printf(
      "%-6s  %3zu jobs  %4zu nominal / %4zu executed tasks  %7.3f s  "
      "%6.1f jobs/s  p50 %.3f  p95 %.3f  p99 %.3f\n",
      r.series.c_str(), r.jobs, r.nominal_tasks, r.executed_tasks, r.seconds,
      r.throughput_per_s, r.p50_s, r.p95_s, r.p99_s);
}

}  // namespace

int main(int argc, char** argv) {
  log::set_level(log::Level::Warn);
  std::string json_path;
  std::size_t n_workers = 4;
  std::size_t n_jobs = 32;
  bool skip_real = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      n_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      n_jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--skip-real") == 0) {
      skip_real = true;
    }
  }

  std::printf("bench_serve_tiers: %zu water-scale jobs per tier, %zu workers\n",
              n_jobs, n_workers);
  const RunStats dfpt = run_tier("modeled-dfpt", Tier::Dfpt, n_jobs, n_workers);
  print_stats(dfpt);
  const RunStats bec = run_tier("modeled-bec", Tier::Bec, n_jobs, n_workers);
  print_stats(bec);
  const double speedup = bec.throughput_per_s / dfpt.throughput_per_s;
  std::printf("capacity speedup (bec/dfpt): %.2fx\n\n", speedup);

  TierProof proof;
  if (skip_real) {
    // Analytic stencil counts for the water case (13 field solves vs
    // 18 displaced SCF + 54 DFPT responses), flagged as unmeasured.
    proof.bec_evals = static_cast<double>(raman::n_field_points());
    proof.dfpt_evals = 72.0;
    std::printf("golden water stage skipped (--skip-real)\n");
  } else {
    std::printf("golden water case (real engine, grid 28/13)...\n");
    proof = run_golden();
    std::printf(
        "  evals dfpt %.0f / bec %.0f (%.2fx)  dmu %.4f  dalpha %.4f  "
        "freq %.2e cm-1  activity rel %.4f over %zu active modes\n",
        proof.dfpt_evals, proof.bec_evals, proof.dfpt_evals / proof.bec_evals,
        proof.max_dmu_err, proof.max_dalpha_err, proof.max_freq_abs_err_cm,
        proof.max_activity_rel_err, proof.active_modes);
  }

  if (!json_path.empty()) write_json(json_path, {dfpt, bec}, speedup, proof);

  // Acceptance. Capacity: the 13-point tier must beat 6N displacements on
  // wall clock, not just task count. Accuracy (measured runs): the
  // DESIGN.md S15 golden tolerances with the >=5x evaluation claim.
  bool ok = true;
  if (speedup < 1.2) {
    std::printf("bench_serve_tiers: FAIL capacity speedup %.2f < 1.2\n",
                speedup);
    ok = false;
  }
  if (proof.dfpt_evals < 5.0 * proof.bec_evals) {
    std::printf("bench_serve_tiers: FAIL eval ratio %.2f < 5\n",
                proof.dfpt_evals / proof.bec_evals);
    ok = false;
  }
  if (proof.measured) {
    if (proof.active_modes == 0) {
      std::printf("bench_serve_tiers: FAIL no Raman-active mode\n");
      ok = false;
    }
    if (proof.max_activity_rel_err > 0.05) {
      std::printf("bench_serve_tiers: FAIL activity rel err %.4f > 0.05\n",
                  proof.max_activity_rel_err);
      ok = false;
    }
    if (proof.max_freq_abs_err_cm != 0.0) {
      std::printf("bench_serve_tiers: FAIL shared-Hessian frequencies differ\n");
      ok = false;
    }
    if (proof.max_dmu_err > 0.03 || proof.max_dalpha_err > 0.08) {
      std::printf("bench_serve_tiers: FAIL tensor errors %.4f / %.4f exceed "
                  "0.03 / 0.08\n",
                  proof.max_dmu_err, proof.max_dalpha_err);
      ok = false;
    }
  }
  std::printf("bench_serve_tiers: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
