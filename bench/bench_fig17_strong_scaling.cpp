// Figure 17: strong scaling of the RBD-complex Raman computation — 1175
// polarizabilities over 256-process sub-groups, 10,240 to 300,800 Sunway
// processes (665,600 to 19,552,000 cores).
//
// Paper: parallel efficiency >= 80% throughout, 84.5% (25x speedup) at
// 300,800 processes. Efficiency losses emerge from geometry-count
// quantization over sub-groups, per-geometry DFPT iteration variance, and
// machine-size-dependent synchronization (see scaling/simulator.hpp).

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());
  scaling::MachineModel machine;
  machine.node = sunway::sw26010pro();
  const scaling::ScalabilitySimulator sim(job, machine, 256);
  const auto& targets = core::paper_targets();

  std::printf("=== Fig. 17: strong scaling, %zu polarizabilities, "
              "256-process groups ===\n",
              job.n_polarizabilities);
  std::printf("%10s %12s %12s %10s %10s %8s\n", "processes", "cores",
              "time (s)", "speedup", "ideal", "eff");
  const std::vector<std::size_t> sweep{10240, 20480, 51200, 153600, 300800};
  for (const scaling::ScalingPoint& p : sim.strong_scaling(sweep)) {
    std::printf("%10zu %12zu %12.1f %9.1fx %9.1fx %7.1f%%\n", p.n_processes,
                p.n_cores, p.time_seconds, p.speedup,
                static_cast<double>(p.n_processes) /
                    static_cast<double>(sweep.front()),
                100.0 * p.efficiency);
  }
  std::printf("\npaper endpoint: %.0fx speedup, %.1f%% efficiency at "
              "300,800 processes / 19,552,000 cores\n",
              targets.fig17_speedup, 100.0 * targets.fig17_efficiency);
  return 0;
}
