// Microbenchmarks (google-benchmark): wall-clock timings of the hot inner
// kernels on this host — the vectorized CSI polynomial evaluation (paper
// Fig. 7), the Allreduce algorithm variants on the thread-rank runtime,
// and the RMA distributed array reduction vs the serial baseline.
//
// --json <file> writes the results as google-benchmark JSON (shorthand for
// --benchmark_out=<file> --benchmark_out_format=json).

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/swraman.hpp"
#include "simd/vec8d.hpp"

namespace {

using namespace swraman;

void BM_CsiScalar(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> s0(n, 1.0), s1(n, 0.5), s2(n, 0.25), s3(n, 0.125);
  std::vector<double> out(n);
  const double t = 0.37;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = s0[i] + t * (s1[i] + t * (s2[i] + t * s3[i]));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_CsiScalar)->Arg(49)->Arg(512)->Arg(8192);

void BM_CsiSimd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> s0(n, 1.0), s1(n, 0.5), s2(n, 0.25), s3(n, 0.125);
  std::vector<double> out(n);
  for (auto _ : state) {
    simd::poly3_eval(s0.data(), s1.data(), s2.data(), s3.data(), 0.37,
                     out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(n));
}
BENCHMARK(BM_CsiSimd)->Arg(49)->Arg(512)->Arg(8192);

void BM_Allreduce(benchmark::State& state) {
  const auto algo =
      static_cast<parallel::AllreduceAlgorithm>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  parallel::CommConfig cfg;
  cfg.node_size = 2;  // 4 ranks -> two node groups on the hierarchical path
  for (auto _ : state) {
    parallel::run_spmd(
        4,
        [&](parallel::Communicator& comm) {
          std::vector<double> data(n, static_cast<double>(comm.rank()));
          comm.allreduce(data, algo);
          benchmark::DoNotOptimize(data.data());
        },
        cfg);
  }
}
// All AllreduceAlgorithm values: Linear, Ring, RecursiveDoubling,
// ReduceScatterAllgather, CpePipelined, Hierarchical, Auto.
BENCHMARK(BM_Allreduce)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {1024, 65536}})
    ->Unit(benchmark::kMicrosecond);

void BM_RmaReduction(benchmark::State& state) {
  const std::size_t per_cpe = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> idx(0, 99999);
  std::vector<std::vector<sunway::Contribution>> contributions(64);
  for (auto& list : contributions) {
    list.resize(per_cpe);
    for (auto& c : list) c = {idx(rng), 1.0};
  }
  for (auto _ : state) {
    std::vector<double> arr(100000, 0.0);
    const sunway::RmaReduceStats stats =
        sunway::rma_array_reduction(contributions, arr);
    benchmark::DoNotOptimize(arr.data());
    benchmark::DoNotOptimize(&stats);
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<long>(per_cpe));
}
BENCHMARK(BM_RmaReduction)->Arg(1000)->Arg(10000);

void BM_SerialReduction(benchmark::State& state) {
  const std::size_t per_cpe = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::size_t> idx(0, 99999);
  std::vector<std::vector<sunway::Contribution>> contributions(64);
  for (auto& list : contributions) {
    list.resize(per_cpe);
    for (auto& c : list) c = {idx(rng), 1.0};
  }
  for (auto _ : state) {
    std::vector<double> arr(100000, 0.0);
    sunway::serial_array_reduction(contributions, arr);
    benchmark::DoNotOptimize(arr.data());
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<long>(per_cpe));
}
BENCHMARK(BM_SerialReduction)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  // Translate --json <file> into google-benchmark's output flags before
  // Initialize() consumes the argument vector.
  std::vector<char*> args;
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int n_args = static_cast<int>(args.size());
  benchmark::Initialize(&n_args, args.data());
  if (benchmark::ReportUnrecognizedArguments(n_args, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
