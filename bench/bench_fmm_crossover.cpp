// FMM crossover benchmark (DESIGN.md S16): growing water clusters priced
// through both Hartree evaluation paths.
//
//   direct   MultipolePotential::value per grid point — every atom's
//            spline channels / analytic multipoles, O(points x atoms).
//   fmm      HartreeContext::fmm_on_grid — octree far field (P2M/M2M/
//            M2L/L2L/L2P) plus exact near field (P2P), O(points + atoms)
//            for bounded density.
//
// The Poisson solve itself (linear in system size) is shared: each size
// solves once and times only the evaluation phase — the quadratic term the
// FMM exists to remove, and the one that dominates every SCF iteration at
// cluster scale. The FMM geometry (trees + interaction lists) is built on
// an untimed warm call, matching its amortization across the tens of
// solves of a real SCF/DFPT run on a fixed geometry.
//
// The bench regime is the coarse production mesh (n_radial 6, angular
// order 3, Hirshfeld partition): the atoms' outer shell radius — the
// spline validity reach that bounds the near field — is ~4 bohr, so
// well-separated cell pairs appear from a few dozen molecules up. The
// acceptance gate is the paper-shaped claim: a crossover must exist below
// the largest size, and the largest cluster must run >= 1.5x faster
// under FMM.
//
// --json writes swraman-bench-v1 records (one per cluster size plus a
// crossover summary) consumed by scripts/check_perf_json.py.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/constants.hpp"
#include "common/logging.hpp"
#include "core/molecules.hpp"
#include "fmm/backend.hpp"

namespace {

using namespace swraman;
using Clock = std::chrono::steady_clock;

struct SizeResult {
  std::size_t molecules = 0;
  std::size_t atoms = 0;
  std::size_t points = 0;
  double direct_s = 0.0;
  double fmm_s = 0.0;
  double speedup = 0.0;
  std::size_t m2l_pairs = 0;
  std::size_t p2p_pairs = 0;
  double max_rel_err = 0.0;
};

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Superposition of per-atom Gaussians scaled by Z: a smooth, neutral-ish
// stand-in for an SCF density, cheap enough to fill at 648 atoms.
std::vector<double> model_density(const grid::MolecularGrid& g) {
  std::vector<double> n(g.size(), 0.0);
  for (std::size_t p = 0; p < g.size(); ++p) {
    for (const grid::AtomSite& a : g.atoms) {
      const double ex = (a.z > 1) ? 1.8 : 0.9;
      const double r2 = (g.points[p] - a.pos).norm2();
      if (ex * r2 > 30.0) continue;  // exp(-30) ~ 1e-13: below grid noise
      n[p] += static_cast<double>(a.z) * std::pow(ex / kPi, 1.5) *
              std::exp(-ex * r2);
    }
  }
  return n;
}

SizeResult run_size(std::size_t n_molecules, int lmax,
                    const fmm::FmmOptions& fopt) {
  grid::GridSettings gs;
  gs.level = grid::GridLevel::Light;
  gs.n_radial = 6;
  gs.angular_order = 3;
  gs.partition = grid::PartitionScheme::Hirshfeld;
  const std::vector<grid::AtomSite> atoms =
      molecules::water_cluster(n_molecules);
  const grid::MolecularGrid g = grid::build_molecular_grid(atoms, gs);
  const std::vector<double> density = model_density(g);

  const fmm::HartreeContext ctx(g, lmax, fmm::HartreeBackend::Fmm, fopt);
  const hartree::MultipolePotential pot = ctx.solver().solve(density);

  // Direct: the per-point dense evaluation, workspace hoisted exactly as
  // MultipoleSolver::solve_on_grid does it.
  std::vector<double> direct(g.size());
  const auto td = Clock::now();
  {
    hartree::MultipolePotential::Workspace ws;
    for (std::size_t p = 0; p < g.size(); ++p) {
      direct[p] = pot.value(g.points[p], ws);
    }
  }
  const double direct_s = seconds_since(td);

  // FMM: one untimed call builds the geometry, the timed call is the
  // steady-state evaluation every subsequent solve pays.
  (void)ctx.fmm_on_grid(pot);
  const auto tf = Clock::now();
  const std::vector<double> fast = ctx.fmm_on_grid(pot);
  const double fmm_s = seconds_since(tf);

  double err = 0.0;
  double vmax = 0.0;
  for (std::size_t p = 0; p < g.size(); ++p) {
    err = std::max(err, std::abs(fast[p] - direct[p]));
    vmax = std::max(vmax, std::abs(direct[p]));
  }

  SizeResult r;
  r.molecules = n_molecules;
  r.atoms = atoms.size();
  r.points = g.size();
  r.direct_s = direct_s;
  r.fmm_s = fmm_s;
  r.speedup = direct_s / fmm_s;
  r.m2l_pairs = ctx.stats().n_m2l_pairs;
  r.p2p_pairs = ctx.stats().n_p2p_pairs;
  r.max_rel_err = (vmax > 0.0) ? err / vmax : 0.0;
  return r;
}

void write_json(const std::string& path, const std::vector<SizeResult>& runs,
                std::size_t crossover_atoms, double speedup_at_max) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"swraman-bench-v1\",\n"
      << "  \"bench\": \"fmm_crossover\",\n  \"records\": [\n";
  for (const SizeResult& r : runs) {
    out << "    {\"series\": \"cluster\", \"molecules\": " << r.molecules
        << ", \"atoms\": " << r.atoms << ", \"points\": " << r.points
        << ", \"direct_s\": " << r.direct_s << ", \"fmm_s\": " << r.fmm_s
        << ", \"speedup\": " << r.speedup
        << ", \"m2l_pairs\": " << r.m2l_pairs
        << ", \"p2p_pairs\": " << r.p2p_pairs
        << ", \"max_rel_err\": " << r.max_rel_err << "},\n";
  }
  out << "    {\"series\": \"crossover\", \"crossover_atoms\": "
      << crossover_atoms << ", \"speedup_at_max\": " << speedup_at_max
      << ", \"max_atoms\": " << runs.back().atoms << "}\n  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  log::set_level(log::Level::Warn);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // Production-shaped far-field numerics: lmax 4 atom moments, expansion
  // order matching, theta 0.6. tests/fmm covers the accuracy ladder; the
  // bench runs the configuration a cluster-scale SCF would.
  const int lmax = 4;
  fmm::FmmOptions fopt;
  fopt.order = 4;
  fopt.theta = 0.6;

  std::printf(
      "bench_fmm_crossover: water clusters, grid 6/3 Hirshfeld, lmax %d, "
      "p %d, theta %.2f\n",
      lmax, fopt.order, fopt.theta);
  std::printf(
      "%9s %6s %7s %10s %10s %8s %9s %9s %11s\n", "molecules", "atoms",
      "points", "direct_s", "fmm_s", "speedup", "m2l", "p2p", "max_rel_err");

  std::vector<SizeResult> runs;
  for (std::size_t m : {27u, 64u, 125u, 216u}) {
    const SizeResult r = run_size(m, lmax, fopt);
    std::printf("%9zu %6zu %7zu %10.4f %10.4f %7.2fx %9zu %9zu %11.2e\n",
                r.molecules, r.atoms, r.points, r.direct_s, r.fmm_s,
                r.speedup, r.m2l_pairs, r.p2p_pairs, r.max_rel_err);
    runs.push_back(r);
  }

  std::size_t crossover_atoms = 0;
  for (const SizeResult& r : runs) {
    if (r.speedup > 1.0) {
      crossover_atoms = r.atoms;
      break;
    }
  }
  const double speedup_at_max = runs.back().speedup;
  if (crossover_atoms > 0) {
    std::printf("crossover at %zu atoms; %.2fx at %zu atoms\n",
                crossover_atoms, speedup_at_max, runs.back().atoms);
  }

  if (!json_path.empty()) {
    write_json(json_path, runs, crossover_atoms, speedup_at_max);
  }

  // Acceptance: the O(N) claim must be visible — a crossover below the
  // largest size, >= 1.5x at the largest, and the far field still sane.
  bool ok = true;
  if (crossover_atoms == 0 || crossover_atoms >= runs.back().atoms) {
    std::printf("bench_fmm_crossover: FAIL no crossover below %zu atoms\n",
                runs.back().atoms);
    ok = false;
  }
  if (speedup_at_max < 1.5) {
    std::printf("bench_fmm_crossover: FAIL speedup %.2f < 1.5 at %zu atoms\n",
                speedup_at_max, runs.back().atoms);
    ok = false;
  }
  for (const SizeResult& r : runs) {
    if (r.max_rel_err > 0.05) {
      std::printf("bench_fmm_crossover: FAIL rel err %.2e at %zu atoms\n",
                  r.max_rel_err, r.atoms);
      ok = false;
    }
    if (r.m2l_pairs == 0) {
      std::printf("bench_fmm_crossover: FAIL no M2L pairs at %zu atoms\n",
                  r.atoms);
      ok = false;
    }
  }
  std::printf("bench_fmm_crossover: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
