// Figure 10: high-frequency dielectric constants of zinc-blende
// semiconductors — the all-electron approach vs the pseudopotential
// approach (the paper compares FHI-aims against Quantum ESPRESSO; here
// both are variants of this engine, per the DESIGN.md substitution).
//
// Protocol: X4Y4 cluster per material, DFPT polarizability, dielectric
// constant from Eq. 11 with the zinc-blende conventional-cell volume.
// Default runs a light-element subset; pass --full for all 19 materials
// (minutes; heavy-Z atomic solves included).
//
// Paper: mean relative error ~1% between all-electron and pseudopotential
// (carefully constructed norm-conserving potentials, s/p valences). Our
// single-channel local pseudopotential is cruder — expect ~5-10% MRE with
// the same qualitative diagonal correlation (see EXPERIMENTS.md).

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/swraman.hpp"

namespace {

// Dielectric constant of a material cluster under the given species
// options; returns < 0 on SCF/DFPT failure.
double dielectric(const swraman::core::ZincBlendeMaterial& m,
                  bool pseudized) {
  using namespace swraman;
  try {
    const auto cluster =
        molecules::zinc_blende_cluster(m.z_cation, m.z_anion, m.bond_angstrom);
    scf::ScfOptions opt;
    opt.species.tier = basis::Tier::Minimal;
    opt.species.pseudized = pseudized;
    opt.max_iterations = 150;
    scf::ScfEngine engine(cluster, opt);
    const scf::GroundState gs = engine.solve();
    // A vanishing cluster gap makes the electric-field response ill-defined.
    if (!gs.converged || gs.homo_lumo_gap < 0.005) return -1.0;
    dfpt::DfptEngine dfpt(engine, gs);
    const linalg::Matrix alpha = dfpt.polarizability();
    // Conventional zinc-blende cell: a = 4 d / sqrt(3), 8 atoms — matching
    // the cluster's atom count.
    const double a = 4.0 * m.bond_angstrom * kBohrPerAngstrom / std::sqrt(3.0);
    const double volume = a * a * a;
    const linalg::Matrix eps =
        dfpt::DfptEngine::dielectric_tensor(alpha, volume);
    return eps.trace() / 3.0;
  } catch (const Error&) {
    return -1.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swraman;
  log::set_level(log::Level::Warn);
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  std::printf("=== Fig. 10: dielectric constants, all-electron vs "
              "pseudopotential ===\n");
  std::printf("(X4Y4 cluster substitution; %s set — use --full for all 19)\n",
              full ? "full" : "light-element");
  std::printf("%-6s %12s %14s %10s\n", "mat", "all-elec", "pseudopot",
              "rel err");

  double mre = 0.0;
  int counted = 0;
  for (const core::ZincBlendeMaterial& m : core::fig10_materials()) {
    const bool light = m.z_cation <= 16 && m.z_anion <= 16;
    if (!full && !light) continue;
    Timer timer;
    const double eps_ae = dielectric(m, false);
    const double eps_ps = dielectric(m, true);
    if (eps_ae < 0.0 || eps_ps < 0.0) {
      std::printf("%-6s %12s %14s %10s (SCF/DFPT did not converge)\n",
                  m.name.c_str(), "-", "-", "-");
      continue;
    }
    const double rel = std::abs(eps_ps - eps_ae) / eps_ae;
    mre += rel;
    ++counted;
    std::printf("%-6s %12.3f %14.3f %9.1f%%   (%.0f s)\n", m.name.c_str(),
                eps_ae, eps_ps, 100.0 * rel, timer.seconds());
  }
  if (counted > 0) {
    std::printf("\nmean relative error: %.1f%% over %d materials "
                "(paper: ~%.0f%% with norm-conserving potentials; the local "
                "single-channel pseudization here is cruder)\n",
                100.0 * mre / counted, counted,
                100.0 * core::paper_targets().fig10_mre);
  }
  return 0;
}
