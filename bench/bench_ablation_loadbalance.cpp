// Ablation: the paper's Algorithm-1 greedy point balancer vs round-robin
// and random batch assignment, on synthetic RBD-scale batch distributions
// and on a real molecular grid.

#include <cstdio>
#include <random>

#include "core/swraman.hpp"

namespace {

std::vector<swraman::grid::Batch> synthetic_batches(std::size_t n,
                                                    unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::size_t> size_dist(100, 300);
  std::vector<swraman::grid::Batch> batches(n);
  std::size_t id = 0;
  for (auto& b : batches) {
    const std::size_t s = size_dist(rng);
    for (std::size_t k = 0; k < s; ++k) b.point_ids.push_back(id++);
  }
  return batches;
}

}  // namespace

int main() {
  using namespace swraman;
  using namespace swraman::grid;
  log::set_level(log::Level::Warn);

  std::printf("=== Ablation: batch load balancing (max/mean point load) ===\n");
  std::printf("%8s %12s %14s %12s\n", "procs", "Algorithm 1", "round-robin",
              "random");
  const std::vector<Batch> batches = synthetic_batches(21042, 3);
  for (std::size_t procs : {16, 64, 256, 1024}) {
    std::printf("%8zu %12.4f %14.4f %12.4f\n", procs,
                balance_batches(batches, procs).imbalance(),
                round_robin_batches(batches, procs).imbalance(),
                random_batches(batches, procs, 11).imbalance());
  }

  std::printf("\nReal grid (water, light settings):\n");
  const MolecularGrid g =
      build_molecular_grid(molecules::water(), {});
  const std::vector<Batch> real = make_batches(g, {});
  std::printf("%zu points in %zu batches\n", g.size(), real.size());
  for (std::size_t procs : {2, 4, 8}) {
    std::printf("  %2zu procs: Algorithm 1 %.4f, round-robin %.4f\n", procs,
                balance_batches(real, procs).imbalance(),
                round_robin_batches(real, procs).imbalance());
  }
  return 0;
}
