// Figure 19: simulated vs experimental Raman spectrum of the RBD protein.
//
// The 3006-atom protein itself is replaced by full-QM Raman calculations
// of representative fragments (DESIGN.md substitution): the S-S bridge
// model H2S2 (500-550 cm^-1 band) and the carbonyl/amide model H2CO
// (amide-I region ~1650 cm^-1 and amide-III-adjacent bends); pass --full
// to add the C=C model (C2H4, ~1600-1650 cm^-1). The composed spectrum is
// compared band-by-band against the experimental table the paper's Fig. 19
// discussion provides.
//
// Runtime: ~4 min default, ~6 min with --full.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/swraman.hpp"

namespace {

swraman::raman::RamanSpectrum fragment(const char* name,
                                       const std::vector<swraman::grid::AtomSite>& mol) {
  using namespace swraman;
  Timer timer;
  // Relax to the fragment's own LDA minimum first — harmonic analysis away
  // from a stationary point contaminates the low-frequency bands.
  const raman::RelaxResult eq = raman::relax_geometry(mol, {});
  raman::RamanOptions options;
  // 0.025-Bohr displacements average over the light grid's egg-box noise,
  // which otherwise softens the low-frequency S-S band by ~100 cm^-1.
  options.vibrations.displacement = 0.025;
  options.alpha_displacement = 0.02;
  raman::RamanCalculator calc(eq.atoms, options);
  raman::RamanSpectrum spec = calc.compute();
  std::printf("  %-6s: relaxed in %d steps, %zu modes, "
              "%d polarizability evaluations, %.0f s\n",
              name, eq.iterations, spec.modes.size(),
              spec.n_polarizabilities, timer.seconds());
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swraman;
  log::set_level(log::Level::Warn);
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;

  std::printf("=== Fig. 19: RBD Raman spectrum via protein fragments ===\n");
  std::printf("Computing fragment spectra (full QM: FD Hessian + 6N DFPT "
              "polarizabilities each):\n");

  std::vector<raman::RamanMode> all_modes;
  {
    const raman::RamanSpectrum s =
        fragment("H2S2", molecules::hydrogen_disulfide());
    all_modes.insert(all_modes.end(), s.modes.begin(), s.modes.end());
  }
  {
    const raman::RamanSpectrum s =
        fragment("H2CO", molecules::formaldehyde());
    all_modes.insert(all_modes.end(), s.modes.begin(), s.modes.end());
  }
  if (full) {
    const raman::RamanSpectrum s = fragment("C2H4", molecules::ethylene());
    all_modes.insert(all_modes.end(), s.modes.begin(), s.modes.end());
  }

  // Composed spectrum with the paper's 5 cm^-1 smearing.
  const raman::BroadenedSpectrum composed =
      raman::broaden(all_modes, 5.0, 300.0, 2100.0, 5.0);

  std::printf("\nComputed fragment bands (activity-weighted):\n");
  for (const raman::RamanMode& m : all_modes) {
    if (m.activity < 1.0) continue;
    std::printf("  %8.1f cm^-1   activity %8.2f\n", m.frequency_cm,
                m.activity);
  }

  std::printf("\nExperimental RBD bands vs closest computed fragment "
              "band:\n%10s  %-44s %s\n", "exp cm^-1", "assignment",
              "computed");
  int matched = 0;
  int covered = 0;
  for (const core::RamanBand& band : core::rbd_experimental_bands()) {
    double best = -1.0;
    for (const raman::RamanMode& m : all_modes) {
      if (m.activity < 0.5) continue;
      if (best < 0.0 || std::abs(m.frequency_cm - band.position_cm) <
                            std::abs(best - band.position_cm)) {
        best = m.frequency_cm;
      }
    }
    const bool in_set = band.fragment != "(aromatic)";
    if (in_set) ++covered;
    if (in_set && best > 0.0 &&
        std::abs(best - band.position_cm) < 0.15 * band.position_cm + 60.0) {
      ++matched;
      std::printf("%10.0f  %-44s %.0f cm^-1 (delta %+.0f)\n",
                  band.position_cm, band.assignment.c_str(), best,
                  best - band.position_cm);
    } else if (in_set) {
      std::printf("%10.0f  %-44s nearest %.0f cm^-1\n", band.position_cm,
                  band.assignment.c_str(), best);
    } else {
      std::printf("%10.0f  %-44s (aromatic ring: outside the default "
                  "fragment set)\n",
                  band.position_cm, band.assignment.c_str());
    }
  }
  std::printf("\nMatched %d of %d covered bands.\n", matched, covered);

  // ASCII spectrum.
  double peak = 1e-12;
  for (double v : composed.intensity) peak = std::max(peak, v);
  std::printf("\nComposed theoretical spectrum (5 cm^-1 smearing):\n");
  for (std::size_t i = 0; i < composed.wavenumber_cm.size(); i += 8) {
    const int bars = static_cast<int>(56.0 * composed.intensity[i] / peak);
    if (bars == 0) continue;
    std::printf("%7.0f | ", composed.wavenumber_cm[i]);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
