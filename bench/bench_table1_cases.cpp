// Table 1: the six silicon-solid benchmark configurations (grid points,
// basis counts, average points per batch) used by Figs. 12-13, printed
// alongside the kernel workload statistics each case generates.

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;

  std::printf("=== Table 1: silicon-solid case configurations ===\n");
  std::printf("%-5s %10s %8s %18s\n", "case", "grid", "basis",
              "avg points/batch");
  for (const core::SiCase& c : core::table1_cases()) {
    std::printf("%-5s %10zu %8zu %18zu\n", c.name, c.grid_points, c.n_basis,
                c.points_per_batch);
  }

  std::printf("\nDerived per-case kernel workloads:\n");
  std::printf("%-5s %14s %14s %14s\n", "case", "V1 Gflop", "n1 Gflop",
              "H1 Gflop");
  for (const core::SiCase& c : core::table1_cases()) {
    std::printf("%-5s %14.3f %14.3f %14.3f\n", c.name,
                core::si_case_v1(c).total_flops() / 1e9,
                core::si_case_n1(c).total_flops() / 1e9,
                core::si_case_h1(c).total_flops() / 1e9);
  }

  // A real Ewald silicon-cell workload backing the synthetic cases
  // (kernel2 of the Fig. 12 benchmark).
  const hartree::EwaldSystem sys = hartree::zinc_blende_cell(10.26, 0.2);
  const hartree::Ewald ewald(sys, 1.0, 10.0, 8.0);
  std::printf("\nSi conventional cell Ewald: %zu G vectors, "
              "volume %.1f Bohr^3, Madelung potential at ion 0: %.6f\n",
              ewald.n_g_vectors(), ewald.cell_volume(),
              ewald.potential_at_ion(0));
  return 0;
}
