// Figure 16: time per DFPT iteration for H(C2H4)nH chains, 14 -> 50 atoms
// — the NAO engine vs the GTO engine (the FHI-aims-vs-Gaussian comparison
// of the paper, 12 MPI tasks on Tianhe-2).
//
// Paper: FHI-aims 2.27x faster at 14 atoms, 1.25x at 50. The NAO
// advantage comes from fewer, more compact basis functions per atom; the
// split-valence GTO set carries more functions and larger reach. Both
// engines here share every other component, isolating exactly that
// variable. Measured single-process on this host; the paper's 12-task
// parallelization divides both sides equally.

#include <cstdio>

#include "core/swraman.hpp"

namespace {

struct Timing {
  double dfpt_iter_seconds = 0.0;
  std::size_t n_basis = 0;
  int cycles = 0;
};

Timing chain_dfpt(std::size_t units, swraman::basis::Backend backend) {
  using namespace swraman;
  const auto mol = molecules::polyethylene_chain(units);
  scf::ScfOptions opt;
  opt.species.backend = backend;
  opt.species.tier = basis::Tier::Minimal;  // light settings, as the paper
  scf::ScfEngine engine(mol, opt);
  const scf::GroundState gs = engine.solve();
  Timing t;
  t.n_basis = engine.basis().size();
  if (!gs.converged) return t;
  dfpt::DfptEngine dfpt(engine, gs);
  Timer timer;
  (void)dfpt.solve_response(2);
  const double elapsed = timer.seconds();
  t.cycles = dfpt.kernel_times().cycles;
  t.dfpt_iter_seconds = elapsed / std::max(1, t.cycles);
  return t;
}

}  // namespace

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  std::printf("=== Fig. 16: time per DFPT iteration, NAO vs GTO, "
              "H(C2H4)nH chains ===\n");
  std::printf("%8s %8s %10s %10s %12s %12s %8s\n", "units", "atoms",
              "NAO fns", "GTO fns", "NAO (s)", "GTO (s)", "ratio");

  double first_ratio = 0.0;
  double last_ratio = 0.0;
  for (std::size_t units : {2, 4, 6, 8}) {  // 14, 26, 38, 50 atoms
    const Timing nao = chain_dfpt(units, basis::Backend::Nao);
    const Timing gto = chain_dfpt(units, basis::Backend::Gto);
    if (nao.dfpt_iter_seconds <= 0.0 || gto.dfpt_iter_seconds <= 0.0) {
      std::printf("%8zu: SCF did not converge, skipping\n", units);
      continue;
    }
    const double ratio = gto.dfpt_iter_seconds / nao.dfpt_iter_seconds;
    if (first_ratio == 0.0) first_ratio = ratio;
    last_ratio = ratio;
    std::printf("%8zu %8zu %10zu %10zu %12.3f %12.3f %7.2fx\n", units,
                6 * units + 2, nao.n_basis, gto.n_basis,
                nao.dfpt_iter_seconds, gto.dfpt_iter_seconds, ratio);
  }
  std::printf("\nNAO-vs-GTO ratio across the sweep: %.2fx -> %.2fx "
              "(paper: %.2fx -> %.2fx, decreasing with system size)\n",
              first_ratio, last_ratio,
              core::paper_targets().fig16_ratio_small,
              core::paper_targets().fig16_ratio_large);
  std::printf("(For RBD-sized systems the GTO engine exhausts memory — the "
              "paper reports the same for Gaussian.)\n");
  return 0;
}
