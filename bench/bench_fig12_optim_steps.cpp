// Figure 12: performance of the response-potential (V1) calculation under
// the successive Sunway optimizations — DMA loop tiling, double buffering,
// 512-bit SIMD — relative to the original MPE version, for the six
// silicon-solid cases of Table 1.
//
// Paper: tiling 10-15x, +DB ~16x, +SIMD ~20x. The speedups here emerge
// from the calibrated SW26010Pro cost model driven by the operation counts
// of the implemented CSI/Ewald kernels (see DESIGN.md).
//
// Additionally cross-checks the *functional* kernels: the CPE-cluster
// execution must reproduce the host reference bit-for-bit, and the real
// (host-measured) SIMD speedup of the CSI inner loop is reported.

#include <cstdio>
#include <vector>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  using namespace swraman::sunway;
  log::set_level(log::Level::Warn);

  const ArchParams sw = sw26010pro();
  const auto& targets = core::paper_targets();

  std::printf("=== Fig. 12: response potential (V1) optimization steps ===\n");
  std::printf("%-5s %14s %14s %14s   (paper: %.0f-%.0fx / %.0fx / %.0fx)\n",
              "case", "Tiling", "Tiling+DB", "Tiling+DB+SIMD",
              targets.tiling_speedup_lo, targets.tiling_speedup_hi,
              targets.tiling_db_speedup, targets.tiling_db_simd_speedup);
  for (const core::SiCase& c : core::table1_cases()) {
    const KernelWorkload w = core::si_case_v1(c);
    const double mpe = modeled_time(w, sw, Variant::MpeScalar);
    std::printf("%-5s %13.1fx %13.1fx %13.1fx\n", c.name,
                mpe / modeled_time(w, sw, Variant::CpeTiled),
                mpe / modeled_time(w, sw, Variant::CpeTiledDb),
                mpe / modeled_time(w, sw, Variant::CpeTiledDbSimd));
  }

  // Functional cross-check on a real multipole potential.
  std::printf("\nFunctional kernel validation (real two-center density):\n");
  const std::vector<grid::AtomSite> atoms = {{8, {0, 0, 0}},
                                             {1, {0, 0, 1.8}}};
  grid::GridSettings gs;
  gs.level = grid::GridLevel::Tight;
  const grid::MolecularGrid g = grid::build_molecular_grid(atoms, gs);
  const hartree::MultipoleSolver solver(g, 6);
  std::vector<double> density(g.size());
  for (std::size_t p = 0; p < g.size(); ++p) {
    density[p] = std::exp(-g.points[p].norm2());
  }
  const hartree::MultipolePotential pot = solver.solve(density);
  const CsiTables tables = build_csi_tables(pot);

  const std::size_t n = 20000;
  std::vector<Vec3> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {0.01 * static_cast<double>(i % 173) - 0.9,
              0.013 * static_cast<double>(i % 131) - 0.8,
              0.007 * static_cast<double>(i % 311)};
  }
  std::vector<double> out_scalar(n);
  std::vector<double> out_simd(n);
  Timer timer;
  real_space_potential(tables, pts.data(), n, out_scalar.data(),
                       ExecMode::Scalar);
  const double t_scalar = timer.seconds();
  timer.reset();
  real_space_potential(tables, pts.data(), n, out_simd.data(),
                       ExecMode::Simd);
  const double t_simd = timer.seconds();
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::abs(out_scalar[i] - out_simd[i]));
  }
  std::printf("  scalar CSI: %7.1f ms   8-lane CSI: %7.1f ms   "
              "host speedup %.2fx   max |diff| %.2e\n",
              1e3 * t_scalar, 1e3 * t_simd, t_scalar / t_simd, max_diff);

  CpeCluster cluster(sw);
  std::vector<double> out_cpe(n);
  real_space_potential_cpe(cluster, tables, pts.data(), n, out_cpe.data(),
                           ExecMode::Simd);
  double cpe_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cpe_diff = std::max(cpe_diff, std::abs(out_cpe[i] - out_simd[i]));
  }
  std::printf("  CPE-cluster execution matches host: max |diff| %.2e "
              "(LDM peak %zu B, %.1f MB DMA)\n",
              cpe_diff, cluster.per_cpe()[0].ldm_peak,
              cluster.total().dma_bytes / 1e6);
  return 0;
}
