// Figure 11: harmonic Raman frequencies and intensities of the H2O
// molecule — the NAO backend (FHI-aims stand-in) vs the GTO backend
// (Gaussian stand-in), both at LDA.
//
// Paper: relative errors within 0.5% in the O-H stretching region between
// FHI-aims (tight/tier2) and Gaussian (aug-cc-pVDZ). Our two backends
// share grids and differ only in radial representation; agreement at the
// few-percent level in frequencies demonstrates the same cross-code check.
//
// Runtime: ~1-2 min (two full Raman pipelines).

#include <cmath>
#include <cstdio>

#include "core/swraman.hpp"

namespace {

// Each backend is relaxed to its own PES minimum first (harmonic analysis
// is only valid at a stationary point), then the full Raman pipeline runs
// at tight grid settings; the 0.02-Bohr displacement averages over the
// residual grid egg-box of the sharp refitted GTO cores.
swraman::raman::RamanSpectrum water_raman(swraman::basis::Backend backend) {
  using namespace swraman;
  raman::RelaxOptions relax;
  relax.scf.species.backend = backend;
  relax.scf.grid.level = grid::GridLevel::Tight;
  const raman::RelaxResult eq =
      raman::relax_geometry(molecules::water(), relax);
  std::printf("  relaxed: E = %.6f Ha, max|F| = %.4f (%d steps)\n",
              eq.energy, eq.max_force, eq.iterations);
  raman::RamanOptions options;
  options.vibrations.scf = relax.scf;
  options.vibrations.displacement = 0.02;
  options.alpha_displacement = 0.02;
  raman::RamanCalculator calc(eq.atoms, options);
  return calc.compute();
}

}  // namespace

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  std::printf("=== Fig. 11: H2O Raman spectrum, NAO vs GTO backend ===\n");
  Timer timer;
  const raman::RamanSpectrum nao = water_raman(basis::Backend::Nao);
  std::printf("NAO  backend done (%.0f s)\n", timer.seconds());
  timer.reset();
  const raman::RamanSpectrum gto = water_raman(basis::Backend::Gto);
  std::printf("GTO  backend done (%.0f s)\n\n", timer.seconds());

  std::printf("%22s %12s %12s %10s %10s\n", "mode", "NAO cm^-1", "GTO cm^-1",
              "dfreq", "dact");
  const char* labels[] = {"bend", "sym O-H stretch", "asym O-H stretch"};
  const std::size_t n = std::min(nao.modes.size(), gto.modes.size());
  double max_stretch_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double fn = nao.modes[i].frequency_cm;
    const double fg = gto.modes[i].frequency_cm;
    const double rel = std::abs(fg - fn) / fn;
    if (fn > 2500.0) max_stretch_err = std::max(max_stretch_err, rel);
    std::printf("%22s %12.1f %12.1f %9.1f%% %9.1f%%\n",
                i < 3 ? labels[i] : "mode", fn, fg, 100.0 * rel,
                100.0 * std::abs(gto.modes[i].activity -
                                 nao.modes[i].activity) /
                    std::max(nao.modes[i].activity, 1e-12));
  }
  std::printf("\nO-H stretching-region frequency deviation: %.1f%% "
              "(paper: <%.1f%% between FHI-aims and Gaussian)\n",
              100.0 * max_stretch_err,
              100.0 * core::paper_targets().fig11_rel_err);

  // Broadened overlay for visual comparison, 5 cm^-1 smearing.
  const raman::BroadenedSpectrum sn =
      raman::broaden(nao.modes, 15.0, 3200.0, 4600.0, 25.0);
  const raman::BroadenedSpectrum sg =
      raman::broaden(gto.modes, 15.0, 3200.0, 4600.0, 25.0);
  double peak = 1e-12;
  for (double v : sn.intensity) peak = std::max(peak, v);
  for (double v : sg.intensity) peak = std::max(peak, v);
  std::printf("\nO-H stretch region (N = NAO, G = GTO):\n");
  for (std::size_t i = 0; i < sn.wavenumber_cm.size(); ++i) {
    const int bn = static_cast<int>(40.0 * sn.intensity[i] / peak);
    const int bg = static_cast<int>(40.0 * sg.intensity[i] / peak);
    if (bn == 0 && bg == 0) continue;
    std::printf("%7.0f |", sn.wavenumber_cm[i]);
    for (int b = 0; b < bn; ++b) std::printf("N");
    std::printf("\n        |");
    for (int b = 0; b < bg; ++b) std::printf("G");
    std::printf("\n");
  }
  return 0;
}
