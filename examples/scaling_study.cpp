// Machine-scale what-if study: drives the 3-level-parallelization
// scalability model (paper Fig. 4) for the RBD-protein Raman job across
// group sizes and machine sizes, and exercises the thread-rank SPMD
// runtime with the five Allreduce algorithms.
//
//   $ ./scaling_study

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  const scaling::RamanJob job = core::make_dfpt_job(core::rbd_protein());
  scaling::MachineModel machine;
  machine.node = sunway::sw26010pro();

  std::printf("RBD Raman job: %zu polarizabilities, %zu batches/geometry\n\n",
              job.n_polarizabilities, job.n_batches);

  std::printf("DFPT iteration time vs sub-group size (one geometry):\n");
  const scaling::ScalabilitySimulator sim(job, machine, 256);
  for (std::size_t group : {32, 64, 128, 256, 512}) {
    std::printf("  %4zu processes: %8.3f ms\n", group,
                1e3 * sim.dfpt_iteration_time(group));
  }

  std::printf("\nStrong scaling of the full job (group size 256):\n");
  for (const scaling::ScalingPoint& p :
       sim.strong_scaling({10240, 20480, 51200, 153600, 300800})) {
    std::printf("  %7zu procs (%9zu cores): %8.1f s  speedup %5.1fx  "
                "eff %5.1f%%\n",
                p.n_processes, p.n_cores, p.time_seconds, p.speedup,
                100.0 * p.efficiency);
  }

  // Functional SPMD runtime: all five Allreduce algorithms agree.
  std::printf("\nThread-rank Allreduce cross-check (8 ranks, 4096 doubles):\n");
  for (auto [name, algo] :
       {std::pair{"linear", parallel::AllreduceAlgorithm::Linear},
        std::pair{"ring", parallel::AllreduceAlgorithm::Ring},
        std::pair{"recursive-doubling",
                  parallel::AllreduceAlgorithm::RecursiveDoubling},
        std::pair{"reduce-scatter+allgather",
                  parallel::AllreduceAlgorithm::ReduceScatterAllgather},
        std::pair{"cpe-pipelined",
                  parallel::AllreduceAlgorithm::CpePipelined}}) {
    double checksum = 0.0;
    parallel::run_spmd(8, [&](parallel::Communicator& comm) {
      std::vector<double> data(4096,
                               static_cast<double>(comm.rank() + 1));
      comm.allreduce(data, algo);
      if (comm.rank() == 0) checksum = data[0];
    });
    std::printf("  %-26s sum = %.1f (expect 36)\n", name, checksum);
  }
  return 0;
}
