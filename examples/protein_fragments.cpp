// Fragment-based protein Raman fingerprint (the Fig. 19 workflow at
// laptop scale): the characteristic bands of a protein spectrum are
// computed from full-QM Raman calculations of representative fragments —
// the S-S bridge (H2S2) and the C=O carbonyl / amide-I model (H2CO) —
// composed into one spectrum and compared against the experimental RBD
// band table.
//
//   $ ./protein_fragments            # two fragments, ~4 min
//   $ ./protein_fragments --ethylene # adds the C=C model (C2H4), ~+2 min

#include <cstdio>
#include <cstring>

#include "core/swraman.hpp"

namespace {

swraman::raman::RamanSpectrum run_fragment(
    const char* name, const std::vector<swraman::grid::AtomSite>& mol) {
  using namespace swraman;
  Timer timer;
  const raman::RelaxResult eq = raman::relax_geometry(mol, {});
  raman::RamanOptions options;
  options.vibrations.displacement = 0.025;
  options.alpha_displacement = 0.02;
  raman::RamanCalculator calc(eq.atoms, options);
  const raman::RamanSpectrum spec = calc.compute();
  std::printf("%-12s (%zu atoms, %.0f s):\n", name, mol.size(),
              timer.seconds());
  for (const raman::RamanMode& m : spec.modes) {
    std::printf("    %8.1f cm^-1  activity %8.2f\n", m.frequency_cm,
                m.activity);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace swraman;
  log::set_level(log::Level::Warn);
  const bool with_ethylene =
      argc > 1 && std::strcmp(argv[1], "--ethylene") == 0;

  std::printf("Computing fragment Raman spectra (full QM, LDA)...\n\n");
  std::vector<std::pair<raman::BroadenedSpectrum, double>> parts;
  const double lo = 200.0;
  const double hi = 2200.0;

  const raman::RamanSpectrum ss =
      run_fragment("H2S2", molecules::hydrogen_disulfide());
  parts.push_back({raman::broaden(ss.modes, 5.0, lo, hi), 1.0});

  const raman::RamanSpectrum co =
      run_fragment("H2CO", molecules::formaldehyde());
  parts.push_back({raman::broaden(co.modes, 5.0, lo, hi), 1.0});

  if (with_ethylene) {
    const raman::RamanSpectrum cc =
        run_fragment("C2H4", molecules::ethylene());
    parts.push_back({raman::broaden(cc.modes, 5.0, lo, hi), 1.0});
  }

  const raman::BroadenedSpectrum composed = raman::compose(parts);

  // Compare the composed bands against the experimental table.
  std::printf("\nExperimental RBD bands vs fragment-model bands:\n");
  std::printf("%10s  %-42s %s\n", "exp cm^-1", "assignment", "fragment band");
  for (const core::RamanBand& band : core::rbd_experimental_bands()) {
    // Closest computed mode across fragments.
    double best = -1.0;
    for (const auto& part : parts) {
      for (std::size_t i = 0; i < part.first.wavenumber_cm.size(); ++i) {
        // find local peaks
        if (i == 0 || i + 1 == part.first.wavenumber_cm.size()) continue;
        if (part.first.intensity[i] > part.first.intensity[i - 1] &&
            part.first.intensity[i] > part.first.intensity[i + 1]) {
          const double w = part.first.wavenumber_cm[i];
          if (best < 0.0 || std::abs(w - band.position_cm) <
                                std::abs(best - band.position_cm)) {
            best = w;
          }
        }
      }
    }
    if (best > 0.0 && std::abs(best - band.position_cm) < 250.0) {
      std::printf("%10.0f  %-42s %.0f cm^-1 (delta %+.0f)\n",
                  band.position_cm, band.assignment.c_str(), best,
                  best - band.position_cm);
    } else {
      std::printf("%10.0f  %-42s (outside fragment set: %s)\n",
                  band.position_cm, band.assignment.c_str(),
                  band.fragment.c_str());
    }
  }
  (void)composed;
  return 0;
}
