// swraman_cli — command-line driver over the library for downstream users:
//
//   swraman_cli scf    molecule.xyz [options]   ground-state DFT
//   swraman_cli polar  molecule.xyz [options]   DFPT polarizability
//   swraman_cli relax  molecule.xyz [options]   BFGS geometry relaxation
//   swraman_cli raman  molecule.xyz [options]   full Raman spectrum
//
// Options:
//   --backend nao|gto      radial basis backend        (default nao)
//   --tier minimal|standard|extended                   (default standard)
//   --grid light|tight|really-tight                    (default light)
//   --pseudized            valence-only pseudopotential variant
//   --hartree direct|fmm|auto   Hartree evaluation backend  (default direct)
//   --fmm-order <p>        FMM multipole order             (default 8)
//   --fmm-theta <t>        FMM opening angle in (0,1)      (default 0.55)
//   --relax-first          relax before raman/polar
//   --freq <Hartree>       dynamic polarizability frequency (polar only)
//   --checkpoint <file>    raman 6N-geometry checkpoint/restart file
//   --fault <spec>         arm fault injection, e.g.
//                          "sunway.dma.fail:p=0.01;sunway.cpe.death:at=1"
//   --fault-seed <n>       fault-injection RNG seed (reproducible runs)

#include <cstdio>
#include <cstring>
#include <string>

#include "core/swraman.hpp"
#include "core/xyz.hpp"

namespace {

using namespace swraman;

struct CliOptions {
  std::string command;
  std::string path;
  scf::ScfOptions scf;
  bool relax_first = false;
  double frequency = 0.0;
  std::string checkpoint;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: swraman_cli <scf|polar|relax|raman> <file.xyz> "
               "[--backend nao|gto] [--tier minimal|standard|extended] "
               "[--grid light|tight|really-tight] [--pseudized] "
               "[--hartree direct|fmm|auto] [--fmm-order p] [--fmm-theta t] "
               "[--relax-first] [--freq w] [--checkpoint file] "
               "[--fault spec] [--fault-seed n]\n");
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  if (argc < 3) usage();
  CliOptions opt;
  opt.command = argv[1];
  opt.path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "--backend") {
      const std::string v = next();
      opt.scf.species.backend =
          v == "gto" ? basis::Backend::Gto : basis::Backend::Nao;
    } else if (flag == "--tier") {
      const std::string v = next();
      opt.scf.species.tier = v == "minimal"    ? basis::Tier::Minimal
                             : v == "extended" ? basis::Tier::Extended
                                               : basis::Tier::Standard;
    } else if (flag == "--grid") {
      const std::string v = next();
      opt.scf.grid.level = v == "tight"          ? grid::GridLevel::Tight
                           : v == "really-tight" ? grid::GridLevel::ReallyTight
                                                 : grid::GridLevel::Light;
    } else if (flag == "--pseudized") {
      opt.scf.species.pseudized = true;
    } else if (flag == "--hartree") {
      const std::string v = next();
      if (v == "fmm") {
        opt.scf.hartree_backend = fmm::HartreeBackend::Fmm;
      } else if (v == "auto") {
        opt.scf.hartree_backend = fmm::HartreeBackend::Auto;
      } else if (v == "direct") {
        opt.scf.hartree_backend = fmm::HartreeBackend::Direct;
      } else {
        usage();
      }
    } else if (flag == "--fmm-order") {
      opt.scf.fmm.order = std::stoi(next());
    } else if (flag == "--fmm-theta") {
      opt.scf.fmm.theta = std::stod(next());
    } else if (flag == "--relax-first") {
      opt.relax_first = true;
    } else if (flag == "--freq") {
      opt.frequency = std::stod(next());
    } else if (flag == "--checkpoint") {
      opt.checkpoint = next();
    } else if (flag == "--fault") {
      fault::FaultInjector::instance().configure_from_string(next());
    } else if (flag == "--fault-seed") {
      const std::string seed = next();
      try {
        fault::FaultInjector::instance().set_seed(std::stoull(seed));
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: --fault-seed expects an integer, got '%s'\n",
                     seed.c_str());
        std::exit(2);
      }
    } else {
      usage();
    }
  }
  return opt;
}

int run(const CliOptions& opt) {
  std::vector<grid::AtomSite> atoms = core::load_xyz(opt.path);
  std::printf("Loaded %zu atoms (%.0f electrons) from %s\n", atoms.size(),
              molecules::electron_count(atoms), opt.path.c_str());

  if (opt.relax_first || opt.command == "relax") {
    raman::RelaxOptions ro;
    ro.scf = opt.scf;
    Timer t;
    const raman::RelaxResult res = raman::relax_geometry(atoms, ro);
    std::printf("relaxed in %d steps (%.1f s): E = %.8f Ha, max|F| = %.5f "
                "Ha/Bohr, converged = %s\n",
                res.iterations, t.seconds(), res.energy, res.max_force,
                res.converged ? "yes" : "no");
    atoms = res.atoms;
    if (opt.command == "relax") {
      std::printf("%s", core::write_xyz(atoms, "relaxed by swraman_cli").c_str());
      return res.converged ? 0 : 1;
    }
  }

  scf::ScfEngine engine(atoms, opt.scf);
  std::printf("basis %zu fns, grid %zu points, %zu batches\n",
              engine.basis().size(), engine.grid().size(),
              engine.batches().size());
  Timer t;
  const scf::GroundState gs = engine.solve();
  std::printf("SCF: E = %.8f Ha in %d iterations (%.1f s), gap %.4f Ha, "
              "|mu| = %.4f a.u.\n",
              gs.total_energy, gs.iterations, t.seconds(), gs.homo_lumo_gap,
              gs.dipole.norm());
  if (!gs.converged) {
    std::fprintf(stderr, "SCF did not converge\n");
    return 1;
  }
  if (opt.command == "scf") {
    const scf::MullikenAnalysis m = scf::mulliken(engine, gs);
    std::printf("Mulliken charges:");
    for (std::size_t a = 0; a < m.charges.size(); ++a) {
      std::printf(" %s%+.3f", element(atoms[a].z).symbol.c_str(),
                  m.charges[a]);
    }
    std::printf("\n");
    return 0;
  }

  if (opt.command == "polar") {
    dfpt::DfptEngine dfpt(engine, gs);
    t.reset();
    const linalg::Matrix alpha =
        opt.frequency > 0.0 ? dfpt.polarizability_at_frequency(opt.frequency)
                            : dfpt.polarizability();
    std::printf("polarizability (omega = %.4f Ha, %.1f s):\n", opt.frequency,
                t.seconds());
    for (int i = 0; i < 3; ++i) {
      std::printf("  %10.4f %10.4f %10.4f\n", alpha(i, 0), alpha(i, 1),
                  alpha(i, 2));
    }
    std::printf("isotropic: %.4f Bohr^3\n",
                dfpt::DfptEngine::isotropic(alpha));
    return 0;
  }

  if (opt.command == "raman") {
    raman::RamanOptions ro;
    ro.vibrations.scf = opt.scf;
    ro.checkpoint_path = opt.checkpoint;
    t.reset();
    raman::RamanCalculator calc(atoms, ro);
    const raman::RamanSpectrum spec = calc.compute();
    std::printf("Raman pipeline: %.1f s, %d polarizability evaluations\n",
                t.seconds(), spec.n_polarizabilities);
    std::printf("%12s %16s %8s %14s\n", "freq (cm^-1)", "activity(A^4/amu)",
                "depol", "IR (km/mol)");
    for (const raman::RamanMode& m : spec.modes) {
      std::printf("%12.1f %16.3f %8.3f %14.2f\n", m.frequency_cm, m.activity,
                  m.depolarization, m.ir_intensity);
    }
    const raman::Thermochemistry th = raman::harmonic_thermochemistry(spec);
    std::printf("ZPE %.6f Ha   G_vib(298K) %.6f Ha   S_vib %.3e Ha/K\n",
                th.zero_point_energy, th.free_energy,
                th.vibrational_entropy);
    return 0;
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  swraman::log::set_level(swraman::log::Level::Warn);
  try {
    return run(parse(argc, argv));
  } catch (const swraman::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
