// The paper's three-level parallelization (Fig. 4), end to end and
// functional:
//
//   level 1 — geometry sub-groups: the communicator splits into
//             sub-communicators, each computing the polarizability of one
//             displaced geometry (embarrassingly parallel);
//   level 2 — batch distribution: within a group, integration batches are
//             assigned by Algorithm 1 and every grid-reduced quantity goes
//             through the group Allreduce;
//   level 3 — CPE acceleration: the CSI response-potential kernel of one
//             batch set executes on the functional CPE-cluster model.
//
//   $ ./three_level_parallel

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  // Level 1 + 2: 4 ranks, 2 geometry groups, distributed SCF + DFPT.
  std::printf("Levels 1+2: 4 ranks -> 2 geometry groups x 2 ranks each\n");
  double alphas[2] = {};
  parallel::run_spmd(4, [&](parallel::Communicator& world) {
    const int geometry = static_cast<int>(world.rank() / 2);
    parallel::Communicator group = world.split(geometry);

    // Two displaced H2 geometries (the 6N displacement pattern of Eq. 5).
    const auto mol = molecules::h2(geometry == 0 ? 1.43 : 1.47);

    scf::GridPartition part;
    part.rank = group.rank();
    part.n_ranks = group.size();
    part.allreduce = [&group](double* data, std::size_t n) {
      std::vector<double> buf(data, data + n);
      group.allreduce(buf,
                      parallel::AllreduceAlgorithm::ReduceScatterAllgather);
      std::copy(buf.begin(), buf.end(), data);
    };

    scf::ScfEngine engine(mol, {}, part);
    const scf::GroundState gs = engine.solve();
    dfpt::DfptEngine dfpt(engine, gs);
    const double a_zz = dfpt.polarizability()(2, 2);
    if (group.rank() == 0) alphas[geometry] = a_zz;
  });
  std::printf("  geometry 0 (1.43 Bohr): alpha_zz = %.4f\n", alphas[0]);
  std::printf("  geometry 1 (1.47 Bohr): alpha_zz = %.4f\n", alphas[1]);
  std::printf("  d(alpha_zz)/dR ~ %.3f Bohr^2 (enters Eq. 5)\n\n",
              (alphas[1] - alphas[0]) / 0.04);

  // Level 3: the same response-potential evaluation, executed through the
  // CPE-cluster model with LDM tiling (operation counts -> cost model).
  std::printf("Level 3: CSI kernel on the 64-CPE model\n");
  const auto mol = molecules::h2();
  scf::ScfEngine engine(mol, {});
  const scf::GroundState gs = engine.solve();
  const std::vector<double> n = engine.density_on_grid(gs.density);
  const hartree::MultipolePotential pot = engine.poisson().solve(n);
  const sunway::CsiTables tables = sunway::build_csi_tables(pot);

  sunway::CpeCluster cluster(sunway::sw26010pro());
  std::vector<double> v(engine.grid().size());
  sunway::real_space_potential_cpe(cluster, tables,
                                   engine.grid().points.data(),
                                   engine.grid().size(), v.data(),
                                   sunway::ExecMode::Simd);
  const sunway::KernelWorkload w = cluster.workload(
      "V_H", static_cast<double>(engine.grid().size()), 0.5);
  std::printf("  %zu grid points on %d CPEs: %.1f Mflop, %.1f MB DMA\n",
              engine.grid().size(), cluster.arch().n_pes,
              w.total_flops() / 1e6, cluster.total().dma_bytes / 1e6);
  std::printf("  modeled CG time: MPE %.3f ms -> Tiling+DB+SIMD %.3f ms "
              "(%.1fx)\n",
              1e3 * modeled_time(w, cluster.arch(),
                                 sunway::Variant::MpeScalar),
              1e3 * modeled_time(w, cluster.arch(),
                                 sunway::Variant::CpeTiledDbSimd),
              modeled_time(w, cluster.arch(), sunway::Variant::MpeScalar) /
                  modeled_time(w, cluster.arch(),
                               sunway::Variant::CpeTiledDbSimd));
  return 0;
}
