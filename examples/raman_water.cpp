// Full ab initio Raman spectrum of water: finite-difference Hessian,
// normal modes, 6N displaced DFPT polarizabilities (paper Eq. 5), Raman
// activities and a Lorentzian-broadened spectrum rendered as ASCII art.
//
//   $ ./raman_water
//
// Runtime: ~30 s (163 SCF solutions for the Hessian + 18 DFPT
// polarizability calculations).

#include <algorithm>
#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  const auto mol = molecules::water();
  raman::RamanOptions options;

  Timer timer;
  raman::RamanCalculator calc(mol, options);
  const raman::RamanSpectrum spectrum = calc.compute();
  std::printf("Raman pipeline finished in %.1f s "
              "(%d DFPT polarizability evaluations)\n\n",
              timer.seconds(), spectrum.n_polarizabilities);

  std::printf("%12s %16s %8s   assignment\n", "freq (cm^-1)",
              "activity (A^4/amu)", "depol");
  for (const raman::RamanMode& m : spectrum.modes) {
    const char* label = m.frequency_cm < 2000.0 ? "H-O-H bend"
                        : (m.depolarization < 0.4 ? "symmetric O-H stretch"
                                                  : "asymmetric O-H stretch");
    std::printf("%12.1f %16.3f %8.3f   %s\n", m.frequency_cm, m.activity,
                m.depolarization, label);
  }

  // Broadened spectrum, 5 cm^-1 smearing as in the paper's Fig. 19.
  const raman::BroadenedSpectrum broad =
      raman::broaden(spectrum.modes, 5.0, 500.0, 4500.0, 10.0);
  const double peak =
      *std::max_element(broad.intensity.begin(), broad.intensity.end());
  std::printf("\nBroadened spectrum (5 cm^-1 Lorentzian):\n");
  for (std::size_t i = 0; i < broad.wavenumber_cm.size(); i += 5) {
    const int bars = static_cast<int>(60.0 * broad.intensity[i] / peak);
    if (bars == 0 && broad.intensity[i] < 0.01 * peak) continue;
    std::printf("%7.0f | ", broad.wavenumber_cm[i]);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
