// Quickstart: ground-state DFT and a DFPT polarizability for water.
//
//   $ ./quickstart
//
// Demonstrates the core public API: molecule builders, ScfEngine,
// DfptEngine, and the dielectric helper (paper Eqs. 1-4, 11).

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  const auto mol = molecules::water();
  std::printf("Water: %zu atoms, %.0f electrons\n", mol.size(),
              molecules::electron_count(mol));

  // Ground state (all-electron NAO basis, LDA, light grid).
  scf::ScfOptions options;
  scf::ScfEngine scf(mol, options);
  std::printf("Basis functions: %zu   grid points: %zu   batches: %zu\n",
              scf.basis().size(), scf.grid().size(), scf.batches().size());

  Timer timer;
  const scf::GroundState gs = scf.solve();
  std::printf("SCF converged in %d iterations (%.2f s)\n", gs.iterations,
              timer.seconds());
  std::printf("  total energy   %12.6f Ha\n", gs.total_energy);
  std::printf("  HOMO-LUMO gap  %12.4f Ha\n", gs.homo_lumo_gap);
  std::printf("  dipole moment  %12.4f a.u. (along the C2 axis)\n",
              gs.dipole.z);

  // Self-consistent response to an electric field (Sternheimer/DFPT).
  timer.reset();
  dfpt::DfptEngine dfpt(scf, gs);
  const linalg::Matrix alpha = dfpt.polarizability();
  std::printf("DFPT polarizability (%.2f s, %d total cycles):\n",
              timer.seconds(), dfpt.kernel_times().cycles);
  for (int i = 0; i < 3; ++i) {
    std::printf("  %10.4f %10.4f %10.4f\n", alpha(i, 0), alpha(i, 1),
                alpha(i, 2));
  }
  std::printf("isotropic alpha: %.4f Bohr^3\n",
              dfpt::DfptEngine::isotropic(alpha));
  return 0;
}
