// The Raman job service end-to-end on real molecules (DESIGN.md S11):
// three tenants submit overlapping work —
//
//   alice  water with normal modes: the full spectrum job,
//   bob    the *same* water geometry, derivatives only — every one of its
//          6N displaced DFPT evaluations is deduplicated against alice's
//          in-flight tasks through the content-addressed cache,
//   carol  silane (SiH4), an independent silicon-chemistry job.
//
// The service decomposes each job into its displacement DAG, runs the
// tasks on the work-stealing pool, and assembles derivatives/spectra; the
// final stats show the cross-tenant dedup.
//
//   $ ./serve_jobs
//
// Runtime: ~30 s (dominated by alice's Hessian; bob's job is nearly free
// and carol's tetrahedral silane collapses to a handful of unique
// displacements under the symmetry canonicalization).

#include <cstdio>

#include "core/swraman.hpp"

int main() {
  using namespace swraman;
  log::set_level(log::Level::Warn);

  serve::ServiceOptions options;
  options.n_workers = 2;
  serve::RamanService service(options);

  serve::JobSpec full;
  full.client = "alice";
  full.name = "water/full-spectrum";
  full.engine = serve::EngineKind::Real;
  full.atoms = molecules::water();
  full.with_modes = true;

  serve::JobSpec dedup;
  dedup.client = "bob";
  dedup.name = "water/derivatives";
  dedup.engine = serve::EngineKind::Real;
  dedup.atoms = molecules::water();

  serve::JobSpec silicon;
  silicon.client = "carol";
  silicon.name = "silane/derivatives";
  silicon.engine = serve::EngineKind::Real;
  silicon.atoms = molecules::silane();

  Timer timer;
  const auto a = service.submit(full);
  const auto b = service.submit(dedup);
  const auto c = service.submit(silicon);
  std::printf("submitted %s%s%s\n", a.accepted ? "alice " : "",
              b.accepted ? "bob " : "", c.accepted ? "carol" : "");

  for (const auto& [name, id] : {std::pair<const char*, std::uint64_t>
           {"alice", a.job_id}, {"bob", b.job_id}, {"carol", c.job_id}}) {
    const serve::JobResult r = service.wait(id);
    std::printf("%-6s %-22s %s  %2d evaluations  %6.1f s\n", name,
                name[0] == 'a' ? "water/full-spectrum"
                : name[0] == 'b' ? "water/derivatives" : "silane/derivatives",
                serve::job_status_name(r.status), r.tasks_executed,
                r.latency_s);
    if (r.status != serve::JobStatus::Completed) return 1;
    if (!r.spectrum.modes.empty()) {
      std::printf("       spectrum:");
      for (const raman::RamanMode& m : r.spectrum.modes) {
        std::printf("  %.0f cm^-1 (%.1f A^4/amu)", m.frequency_cm,
                    m.activity);
      }
      std::printf("\n");
    }
  }

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "\ntotal %.1f s — %llu evaluations run, %llu served from cache "
      "(hit ratio %.2f), %llu jobs completed\n",
      timer.seconds(), static_cast<unsigned long long>(stats.tasks_executed),
      static_cast<unsigned long long>(stats.cache_hits),
      stats.cache_hit_ratio,
      static_cast<unsigned long long>(stats.jobs_completed));
  // bob's 18 displaced geometries must all have been deduplicated against
  // alice's identical submissions.
  return stats.cache_hits >= 18 ? 0 : 1;
}
