#!/usr/bin/env python3
"""Rank kernel hotspots in a swraman-perf-v1 report by modeled cycles.

Usage:
  hotspots.py PERF_JSON [--top K] [--json [FILE]]
  hotspots.py --selftest

Wall-clock on a workstation says nothing about what the same run costs on
the target machine; the sunway kernels therefore charge *modeled* cycles
(the arch cost model of src/sunway/cost_model.cpp) onto their spans, and
the perf report sums those per phase. This tool reads the report and
answers the operator question "which kernels dominate the modeled
machine-time budget, and under which pipeline phase do they burn it":

  * top-K table of phases ranked by modeled cycles — each row shows the
    cycle total, its share of the whole report, call count, per-call
    cycles, and the host wall time of the same phase;
  * per-root rollup — the same cycles re-attributed to the top-level
    pipeline phase (scf, dfpt, comm, serve, ...) under which they ran, so
    a fat kernel that fires from three phases shows where it actually
    hurts.

A phase's cycles are the first of its "modeled_cycles_cpe",
"modeled_cycles_mpe", or "modeled_cycles" attribute sums (the CPE-tiled
variant is the paper's shipping configuration, so it wins when both were
modeled). Attribution is per-phase-path: a parent's own charge excludes
its children's (they are separate report rows), so the rollup never
double-counts a child under its parent's root.

--json emits the same ranking as a "swraman-hotspots-v1" document.
--selftest runs the ranking against scripts/testdata/hotspots_fixture.json
and verifies the expected order, totals, and rollup (used by tier1.sh).
"""

import json
import math
import os
import sys

# Preference order of the per-span cycle attributes (report sums them per
# phase). CPE-tiled first: it is the configuration the paper ships.
CYCLE_ATTRS = ("modeled_cycles_cpe", "modeled_cycles_mpe", "modeled_cycles")

SCHEMA_IN = "swraman-perf-v1"
SCHEMA_OUT = "swraman-hotspots-v1"


def fail(msg: str) -> None:
    print(f"hotspots: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def phase_cycles(phase: dict):
    """(cycles, attr_name) of a phase, or (0.0, None) when unmodeled."""
    attrs = phase.get("attrs") or {}
    for key in CYCLE_ATTRS:
        v = attrs.get(key)
        if isinstance(v, (int, float)) and not isinstance(v, bool) \
                and math.isfinite(v) and v > 0:
            return float(v), key
    return 0.0, None


def analyze(doc: dict) -> dict:
    """Pure ranking core (selftest and CLI share it)."""
    if doc.get("schema") != SCHEMA_IN:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA_IN!r}")
    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail("phases must be a non-empty array")

    hotspots = []
    rollup = {}
    total = 0.0
    for p in phases:
        cycles, attr = phase_cycles(p)
        if attr is None:
            continue
        count = max(1, int(p.get("count", 1)))
        hotspots.append({
            "path": p["path"],
            "name": p.get("name", p["path"].rsplit("/", 1)[-1]),
            "cycles": cycles,
            "source": attr,
            "count": count,
            "cycles_per_call": cycles / count,
            "wall_s": float(p.get("wall_s", 0.0)),
        })
        root = p["path"].split("/", 1)[0]
        rollup[root] = rollup.get(root, 0.0) + cycles
        total += cycles

    hotspots.sort(key=lambda h: (-h["cycles"], h["path"]))
    for h in hotspots:
        h["share"] = h["cycles"] / total if total > 0 else 0.0
    rollup_rows = [{"root": r, "cycles": c,
                    "share": c / total if total > 0 else 0.0}
                   for r, c in sorted(rollup.items(),
                                      key=lambda kv: (-kv[1], kv[0]))]
    return {
        "schema": SCHEMA_OUT,
        "total_modeled_cycles": total,
        "modeled_phases": len(hotspots),
        "hotspots": hotspots,
        "rollup": rollup_rows,
    }


def human(cycles: float) -> str:
    for unit, div in (("Tcy", 1e12), ("Gcy", 1e9), ("Mcy", 1e6),
                      ("kcy", 1e3)):
        if cycles >= div:
            return f"{cycles / div:8.2f} {unit}"
    return f"{cycles:8.0f}  cy"


def print_report(result: dict, top: int) -> None:
    total = result["total_modeled_cycles"]
    spots = result["hotspots"]
    print(f"hotspots: {result['modeled_phases']} modeled phases, "
          f"{total:.3e} modeled cycles total")
    if not spots:
        print("hotspots: no phase carries a modeled-cycles attribute "
              "(run with SWRAMAN_TRACE=1 through the sunway kernels)")
        return

    shown = spots[:top]
    print(f"\n  top {len(shown)} phases by modeled cycles:")
    print(f"  {'#':>2} {'cycles':>12} {'share':>6} {'calls':>7} "
          f"{'cy/call':>10} {'wall_s':>9}  path")
    for i, h in enumerate(shown, 1):
        print(f"  {i:>2} {human(h['cycles'])} {h['share']:6.1%} "
              f"{h['count']:>7} {h['cycles_per_call']:>10.3g} "
              f"{h['wall_s']:>9.4f}  {h['path']}")
    if len(spots) > top:
        rest = sum(h["cycles"] for h in spots[top:])
        print(f"     ({len(spots) - top} more phases, "
              f"{rest / total:.1%} of cycles)")

    print("\n  per-root attribution:")
    for r in result["rollup"]:
        bar = "#" * max(1, round(40 * r["share"]))
        print(f"  {r['share']:6.1%} {human(r['cycles'])}  "
              f"{r['root']:<24} {bar}")


def selftest() -> None:
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "testdata", "hotspots_fixture.json")
    with open(fixture, encoding="utf-8") as fh:
        doc = json.load(fh)
    r = analyze(doc)

    def expect(cond: bool, what: str) -> None:
        if not cond:
            fail(f"selftest: {what} (got {json.dumps(r, indent=2)[:800]})")

    expect(r["schema"] == SCHEMA_OUT, "output schema wrong")
    # The fixture charges: scf/hpsi 6e9 cpe, dfpt/sternheimer 3e9 cpe,
    # hartree.fmm.traversal 2e9 cpe, hartree.fmm.p2p 1.2e9 cpe,
    # comm.allreduce 1e9 plain, scf/rho 0.5e9 mpe; "serve.submit",
    # "hartree.poisson" and "hartree.fmm.downward" carry no cycle attrs
    # and must not appear.
    expect(r["modeled_phases"] == 6, "expected 6 modeled phases")
    expect(abs(r["total_modeled_cycles"] - 13.7e9) < 1.0,
           "total cycles wrong")
    order = [h["path"] for h in r["hotspots"]]
    expect(order == ["scf/hpsi", "dfpt/sternheimer",
                     "hartree.poisson/hartree.fmm.traversal",
                     "hartree.poisson/hartree.fmm.downward/hartree.fmm.p2p",
                     "comm.allreduce", "scf/rho"],
           f"ranking order wrong: {order}")
    expect(r["hotspots"][0]["source"] == "modeled_cycles_cpe",
           "cpe attr must win over mpe")
    # The FMM kernels model both engines; the CPE-tiled cycles must rank.
    expect(r["hotspots"][2]["source"] == "modeled_cycles_cpe",
           "fmm traversal must rank by its cpe cycles")
    expect(r["hotspots"][3]["source"] == "modeled_cycles_cpe",
           "fmm p2p must rank by its cpe cycles")
    expect(r["hotspots"][5]["source"] == "modeled_cycles_mpe",
           "mpe fallback not used")
    expect(abs(r["hotspots"][0]["share"] - 6.0 / 13.7) < 1e-12,
           "share wrong")
    # hpsi ran 3 times in the fixture: per-call = 2e9.
    expect(abs(r["hotspots"][0]["cycles_per_call"] - 2e9) < 1.0,
           "cycles_per_call wrong")
    roots = {row["root"]: row["cycles"] for row in r["rollup"]}
    expect(abs(roots.get("scf", 0.0) - 6.5e9) < 1.0,
           "scf rollup must combine hpsi + rho")
    expect(abs(roots.get("dfpt", 0.0) - 3e9) < 1.0, "dfpt rollup wrong")
    expect(abs(roots.get("hartree.poisson", 0.0) - 3.2e9) < 1.0,
           "hartree.poisson rollup must combine traversal + p2p")
    expect(r["rollup"][0]["root"] == "scf", "rollup order wrong")
    expect(r["rollup"][1]["root"] == "hartree.poisson",
           "hartree.poisson must outrank dfpt in the rollup")
    print("hotspots: selftest OK "
          f"(6 modeled phases, total {r['total_modeled_cycles']:.3e} cy)")


def main() -> None:
    args = sys.argv[1:]
    if "--selftest" in args:
        selftest()
        return
    top = 10
    json_out = None
    path = None
    i = 0
    while i < len(args):
        a = args[i]
        if a == "--top" and i + 1 < len(args):
            top = int(args[i + 1])
            i += 2
        elif a == "--json":
            if i + 1 < len(args) and not args[i + 1].startswith("--"):
                json_out = args[i + 1]
                i += 2
            else:
                json_out = "-"
                i += 1
        elif a.startswith("--"):
            fail(f"unknown flag {a!r}")
        else:
            path = a
            i += 1
    if path is None:
        fail("usage: hotspots.py PERF_JSON [--top K] [--json [FILE]] | "
             "--selftest")

    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    result = analyze(doc)
    if json_out is not None:
        text = json.dumps(result, indent=2) + "\n"
        if json_out == "-":
            sys.stdout.write(text)
        else:
            with open(json_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"hotspots: wrote {json_out}")
    else:
        print_report(result, top)


if __name__ == "__main__":
    main()
