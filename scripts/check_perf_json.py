#!/usr/bin/env python3
"""Validate a swraman perf/bench/observability JSON report.

Usage: check_perf_json.py JSON_FILE [CHROME_TRACE_JSON]

The schema is autodetected from the top-level "schema" field:
  swraman-perf-v1      the tracing report emitted by src/obs/report.cpp
  swraman-bench-v1     benchmark series emitted by bench/*.cpp --json
  swraman-jobtrace-v1  per-job cross-shard timelines (src/obs/jobtrace.cpp)
  swraman-health-v1    SLO monitor snapshots (src/obs/slo.cpp)
  swraman-flight-v1    flight-recorder postmortem dumps (src/obs/flight.cpp)
  swraman-check-v1     swcheck exit summary (src/sunway/check/check.cpp)
  swraman-lockcheck-v1 host-concurrency checker summary
                       (src/common/lockcheck.cpp)

A SWRAMAN_CHECK_FILE is a JSON-lines file (one summary line per
checker); every line is validated against its own schema.

Exits non-zero with a diagnostic on any violation.  Used by
scripts/tier1.sh after the traced smoke run, the bench smoke runs, and
the chaos run's observability-plane artifacts.
"""

import json
import math
import sys


def fail(msg: str) -> None:
    print(f"check_perf_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _finite_nonneg(path: str, where: str, r: dict, key: str) -> float:
    v = r.get(key)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        fail(f"{path}: {where} {key} must be a number")
    if not math.isfinite(v):
        fail(f"{path}: {where} {key} must be finite (got {v!r})")
    if v < 0:
        fail(f"{path}: {where} {key} must be non-negative (got {v!r})")
    return float(v)


def check_serve_record(path: str, i: int, r: dict) -> None:
    """One record of the serve-throughput bench: job counts plus wall time,
    throughput, latency percentiles, and the dedup-cache hit ratio."""
    where = f"records[{i}]"
    for key in ("jobs", "tasks", "executed_tasks"):
        if isinstance(r.get(key), bool) or not isinstance(r.get(key), int) \
                or r[key] < 0:
            fail(f"{path}: {where} {key} must be a non-negative integer")
    for key in ("seconds", "throughput_per_s", "p50_s", "p95_s", "p99_s"):
        _finite_nonneg(path, where, r, key)
    if not (r["p50_s"] <= r["p95_s"] <= r["p99_s"]):
        fail(f"{path}: {where} latency percentiles must be ordered "
             f"p50 <= p95 <= p99 (got {r['p50_s']}, {r['p95_s']}, "
             f"{r['p99_s']})")
    ratio = _finite_nonneg(path, where, r, "cache_hit_ratio")
    if ratio > 1.0:
        fail(f"{path}: {where} cache_hit_ratio must be <= 1 (got {ratio})")
    if r["executed_tasks"] > r["tasks"]:
        fail(f"{path}: {where} executed_tasks exceeds tasks")


def check_chaos_record(path: str, i: int, r: dict) -> None:
    """One record of the serve-chaos bench: recovered-job counts, failover
    latency percentiles, and the two hard durability gates (no lost
    accepted jobs, no bitwise spectrum drift vs the fault-free run)."""
    where = f"records[{i}]"
    for key in ("jobs", "kills", "recovered_jobs", "replayed_tasks",
                "failovers", "lost_jobs", "bitwise_mismatches"):
        if isinstance(r.get(key), bool) or not isinstance(r.get(key), int) \
                or r[key] < 0:
            fail(f"{path}: {where} {key} must be a non-negative integer")
    for key in ("failover_p50_s", "failover_p95_s", "failover_p99_s"):
        _finite_nonneg(path, where, r, key)
    if not (r["failover_p50_s"] <= r["failover_p95_s"]
            <= r["failover_p99_s"]):
        fail(f"{path}: {where} failover percentiles must be ordered "
             f"p50 <= p95 <= p99")
    frac = _finite_nonneg(path, where, r, "replayed_fraction")
    if frac > 1.0:
        fail(f"{path}: {where} replayed_fraction must be <= 1 (got {frac})")
    if r["kills"] < 1 or r["recovered_jobs"] < 1:
        fail(f"{path}: {where} chaos run must kill at least one shard and "
             f"replay at least one job (kills={r['kills']}, "
             f"recovered_jobs={r['recovered_jobs']})")
    if r["lost_jobs"] != 0:
        fail(f"{path}: {where} {r['lost_jobs']} accepted job(s) lost — "
             f"the WAL durability contract is broken")
    if r["bitwise_mismatches"] != 0:
        fail(f"{path}: {where} {r['bitwise_mismatches']} spectra differ "
             f"bitwise from the fault-free run")


def check_tiers_record(path: str, i: int, r: dict) -> None:
    """The accuracy-tier record of bench_serve_tiers: the bec tier must be
    a capacity win (speedup >= 1) bought with strictly fewer engine
    evaluations than full DFPT, and the golden-water error margins must be
    finite."""
    where = f"records[{i}]"
    speedup = _finite_nonneg(path, where, r, "speedup")
    if speedup < 1.0:
        fail(f"{path}: {where} tier speedup must be >= 1 (got {speedup})")
    dfpt = _finite_nonneg(path, where, r, "dfpt_evals")
    bec = _finite_nonneg(path, where, r, "bec_evals")
    if bec < 1:
        fail(f"{path}: {where} bec_evals must be >= 1 (got {bec})")
    if dfpt <= bec:
        fail(f"{path}: {where} evaluation counts must be ordered "
             f"dfpt_evals > bec_evals (got {dfpt} vs {bec})")
    for key in ("max_activity_rel_err", "max_dmu_err", "max_dalpha_err",
                "max_freq_abs_err_cm"):
        if key in r:
            _finite_nonneg(path, where, r, key)


def check_fmm_cluster_record(path: str, i: int, r: dict,
                             prev_atoms: int) -> int:
    """One cluster-size row of bench_fmm_crossover: positive sizes that
    strictly grow across the series, finite timings, a speedup consistent
    with them, a live far field (M2L pairs), and a sane relative error."""
    where = f"records[{i}]"
    for key in ("molecules", "atoms", "points", "m2l_pairs", "p2p_pairs"):
        v = r.get(key)
        if isinstance(v, bool) or not isinstance(v, int) or v < 0:
            fail(f"{path}: {where} {key} must be a non-negative integer")
    if r["atoms"] <= prev_atoms:
        fail(f"{path}: {where} cluster sizes must be strictly increasing "
             f"(got {r['atoms']} after {prev_atoms})")
    direct_s = _finite_nonneg(path, where, r, "direct_s")
    fmm_s = _finite_nonneg(path, where, r, "fmm_s")
    if direct_s <= 0 or fmm_s <= 0:
        fail(f"{path}: {where} timings must be positive")
    speedup = _finite_nonneg(path, where, r, "speedup")
    if abs(speedup - direct_s / fmm_s) > 1e-3 * max(1.0, speedup):
        fail(f"{path}: {where} speedup {speedup} inconsistent with "
             f"direct_s/fmm_s ({direct_s / fmm_s})")
    if r["m2l_pairs"] < 1:
        fail(f"{path}: {where} a cluster row with no M2L pairs means the "
             f"far field never engaged")
    err = _finite_nonneg(path, where, r, "max_rel_err")
    if err > 1.0:
        fail(f"{path}: {where} max_rel_err must be <= 1 (got {err})")
    return r["atoms"]


def check_fmm_crossover_record(path: str, i: int, r: dict,
                               max_cluster_atoms: int) -> None:
    """The crossover summary of bench_fmm_crossover: a crossover must
    exist (the O(N) claim), the largest cluster must win under FMM, and
    the summary must agree with the cluster rows it summarizes."""
    where = f"records[{i}]"
    for key in ("crossover_atoms", "max_atoms"):
        v = r.get(key)
        if isinstance(v, bool) or not isinstance(v, int) or v < 0:
            fail(f"{path}: {where} {key} must be a non-negative integer")
    if r["crossover_atoms"] < 1:
        fail(f"{path}: {where} crossover_atoms must be positive — no "
             f"crossover means direct summation never lost")
    if r["crossover_atoms"] > r["max_atoms"]:
        fail(f"{path}: {where} crossover_atoms exceeds max_atoms")
    if max_cluster_atoms and r["max_atoms"] != max_cluster_atoms:
        fail(f"{path}: {where} max_atoms {r['max_atoms']} disagrees with "
             f"the largest cluster row ({max_cluster_atoms})")
    speedup = _finite_nonneg(path, where, r, "speedup_at_max")
    if speedup < 1.0:
        fail(f"{path}: {where} speedup_at_max must be >= 1 "
             f"(got {speedup})")


def check_bench(path: str, doc: dict) -> None:
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(f"{path}: bench must be a non-empty string")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records must be a non-empty array")
    series = set()
    prev_cluster_atoms = 0
    for i, r in enumerate(records):
        if not isinstance(r.get("series"), str) or not r["series"]:
            fail(f"{path}: records[{i}] series must be a non-empty string")
        series.add(r["series"])
        if "fmm_s" in r:
            # fmm-crossover cluster row (bench_fmm_crossover --json)
            prev_cluster_atoms = check_fmm_cluster_record(
                path, i, r, prev_cluster_atoms)
            continue
        if "crossover_atoms" in r:
            # fmm-crossover summary (bench_fmm_crossover --json)
            check_fmm_crossover_record(path, i, r, prev_cluster_atoms)
            continue
        if "recovered_jobs" in r:
            # serve-chaos shape (bench_serve_chaos --json)
            check_chaos_record(path, i, r)
            continue
        if "dfpt_evals" in r:
            # accuracy-tier shape (bench_serve_tiers --json)
            check_tiers_record(path, i, r)
            continue
        if "throughput_per_s" in r:
            # serve-throughput shape (bench_serve_throughput --json)
            check_serve_record(path, i, r)
            continue
        if "value" in r and "ranks" not in r:
            # scalar summary record, e.g. the serve bench's speedup line
            _finite_nonneg(path, f"records[{i}]", r, "value")
            continue
        if not isinstance(r.get("ranks"), int) or r["ranks"] < 1:
            fail(f"{path}: records[{i}] ranks must be a positive integer")
        for key in ("bytes", "seconds"):
            _finite_nonneg(path, f"records[{i}]", r, key)
        if "cycles" in r:
            _finite_nonneg(path, f"records[{i}]", r, "cycles")
    print(f"check_perf_json: {path}: OK "
          f"(bench {doc['bench']!r}, {len(records)} records, "
          f"{len(series)} series)")


def _finite_num(path: str, where: str, obj: dict, key: str) -> float:
    v = obj.get(key)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        fail(f"{path}: {where} {key} must be a number")
    if not math.isfinite(v):
        fail(f"{path}: {where} {key} must be finite (got {v!r})")
    return float(v)


def check_jobtrace(path: str, doc: dict) -> None:
    """swraman-jobtrace-v1: every job is one causal timeline.  Span ids
    are unique and ascending, the root is span 1, parents exist and start
    no later than their children (monotone nesting), events are
    zero-width, and a span may legitimately be open (end_ns == 0) — that
    is the footprint of work interrupted by a shard death."""
    jobs = doc.get("jobs")
    if not isinstance(jobs, list):
        fail(f"{path}: jobs must be an array")
    n_spans = 0
    n_open = 0
    n_replayed = 0
    for j, job in enumerate(jobs):
        where = f"jobs[{j}]"
        gid = job.get("gid")
        if isinstance(gid, bool) or not isinstance(gid, int) or gid < 1:
            fail(f"{path}: {where} gid must be a positive integer")
        incs = job.get("incarnations")
        if isinstance(incs, bool) or not isinstance(incs, int) or incs < 1:
            fail(f"{path}: {where} incarnations must be >= 1")
        if incs > 1:
            n_replayed += 1
        spans = job.get("spans")
        if not isinstance(spans, list) or not spans:
            fail(f"{path}: {where} spans must be a non-empty array")
        by_id = {}
        prev_id = 0
        for k, s in enumerate(spans):
            w = f"{where}.spans[{k}]"
            for key in ("id", "parent", "name", "shard", "incarnation",
                        "start_ns", "end_ns", "event", "attrs"):
                if key not in s:
                    fail(f"{path}: {w} missing {key!r}")
            if s["id"] <= prev_id:
                fail(f"{path}: {w} span ids must be unique and ascending "
                     f"(got {s['id']} after {prev_id})")
            prev_id = s["id"]
            if k == 0 and (s["id"] != 1 or s["parent"] != 0):
                fail(f"{path}: {w} the first span must be the root "
                     f"(id 1, parent 0)")
            if not (0 <= s["incarnation"] < incs):
                fail(f"{path}: {w} incarnation {s['incarnation']} outside "
                     f"[0, {incs})")
            if s["parent"] != 0:
                parent = by_id.get(s["parent"])
                if parent is None:
                    fail(f"{path}: {w} parent {s['parent']} does not exist "
                         f"(or follows its child)")
                # Monotone nesting: a child never starts before its
                # parent.  (A replayed child under the original root is
                # still later — the root predates the crash.)
                if s["start_ns"] < parent["start_ns"]:
                    fail(f"{path}: {w} starts before its parent "
                         f"({s['start_ns']} < {parent['start_ns']})")
            if s["end_ns"] == 0:
                n_open += 1
                if s["event"]:
                    fail(f"{path}: {w} an event cannot be open")
            else:
                if s["event"]:
                    if s["end_ns"] != s["start_ns"]:
                        fail(f"{path}: {w} events must be zero-width")
                elif s["end_ns"] < s["start_ns"]:
                    fail(f"{path}: {w} ends before it starts")
            by_id[s["id"]] = s
            n_spans += 1
    print(f"check_perf_json: {path}: OK ({len(jobs)} job timelines, "
          f"{n_spans} spans, {n_replayed} replayed, "
          f"{n_open} open across shard deaths)")


def check_health(path: str, doc: dict) -> None:
    """swraman-health-v1: SLO monitor history.  Snapshot times ascend,
    ratios stay in [0, 1], percentiles are finite and ordered, per-tenant
    counters never run backwards, and every burn rate obeys
    burn = (1 - window_attainment) / (1 - objective) within float slack."""
    slo = _finite_num(path, "top-level", doc, "latency_slo_s")
    if slo <= 0:
        fail(f"{path}: latency_slo_s must be positive")
    objective = _finite_num(path, "top-level", doc, "objective")
    if not (0.0 <= objective < 1.0):
        fail(f"{path}: objective must lie in [0, 1) (got {objective})")
    budget = 1.0 - objective
    full_burn = 1.0 / budget
    snaps = doc.get("snapshots")
    if not isinstance(snaps, list) or not snaps:
        fail(f"{path}: snapshots must be a non-empty array")
    prev_t = 0
    prev_finished = {}
    max_burn_seen = 0.0
    tenants = set()
    for i, s in enumerate(snaps):
        where = f"snapshots[{i}]"
        t = s.get("t_ns")
        if isinstance(t, bool) or not isinstance(t, int) or t < prev_t:
            fail(f"{path}: {where} t_ns must be a non-decreasing integer")
        prev_t = t
        if _finite_num(path, where, s, "queue_depth") < 0:
            fail(f"{path}: {where} queue_depth must be non-negative")
        ratio = _finite_num(path, where, s, "cache_hit_ratio")
        if not (0.0 <= ratio <= 1.0):
            fail(f"{path}: {where} cache_hit_ratio outside [0, 1]")
        p99 = _finite_num(path, where, s, "wal_fsync_p99_s")
        fmax = _finite_num(path, where, s, "wal_fsync_max_s")
        if p99 < 0 or fmax < 0 or p99 > fmax * (1 + 1e-9):
            fail(f"{path}: {where} wal fsync percentiles must satisfy "
                 f"0 <= p99 <= max (got {p99}, {fmax})")
        max_burn = _finite_num(path, where, s, "max_burn_rate")
        if max_burn < 0 or max_burn > full_burn * (1 + 1e-9):
            fail(f"{path}: {where} max_burn_rate outside [0, 1/(1-obj)] "
                 f"(got {max_burn}, full burn {full_burn})")
        max_burn_seen = max(max_burn_seen, max_burn)
        worst = 0.0
        for k, ten in enumerate(s.get("tenants", [])):
            w = f"{where}.tenants[{k}]"
            name = ten.get("tenant")
            if not isinstance(name, str) or not name:
                fail(f"{path}: {w} tenant must be a non-empty string")
            tenants.add(name)
            finished = ten.get("finished")
            if isinstance(finished, bool) or not isinstance(finished, int) \
                    or finished < prev_finished.get(name, 0):
                fail(f"{path}: {w} finished count ran backwards")
            prev_finished[name] = finished
            wf = ten.get("window_finished")
            if isinstance(wf, bool) or not isinstance(wf, int) or wf < 0 \
                    or wf > finished:
                fail(f"{path}: {w} window_finished outside [0, finished]")
            att = _finite_num(path, w, ten, "attainment")
            watt = _finite_num(path, w, ten, "window_attainment")
            if not (0.0 <= att <= 1.0) or not (0.0 <= watt <= 1.0):
                fail(f"{path}: {w} attainment outside [0, 1]")
            burn = _finite_num(path, w, ten, "burn_rate")
            want = (1.0 - watt) / budget
            if abs(burn - want) > 1e-6 * max(1.0, want):
                fail(f"{path}: {w} burn_rate {burn} inconsistent with "
                     f"window_attainment (want {want})")
            worst = max(worst, burn)
            p50 = _finite_num(path, w, ten, "p50_s")
            p99t = _finite_num(path, w, ten, "p99_s")
            if p50 < 0 or p99t < 0 or p50 > p99t * (1 + 1e-9):
                fail(f"{path}: {w} latency percentiles must satisfy "
                     f"0 <= p50 <= p99 (got {p50}, {p99t})")
        if worst > max_burn * (1 + 1e-9):
            fail(f"{path}: {where} max_burn_rate {max_burn} below worst "
                 f"tenant burn {worst}")
    print(f"check_perf_json: {path}: OK ({len(snaps)} snapshots, "
          f"{len(tenants)} tenants, worst burn {max_burn_seen:.2f}x)")


def check_flight(path: str, doc: dict) -> None:
    """swraman-flight-v1: postmortem ring dump — a reason, decoded ring
    events with per-thread ordinals, and counter values with deltas since
    the previous dump."""
    if not isinstance(doc.get("reason"), str) or not doc["reason"]:
        fail(f"{path}: reason must be a non-empty string")
    seq = doc.get("dump_seq")
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 1:
        fail(f"{path}: dump_seq must be a positive integer")
    events = doc.get("events")
    if not isinstance(events, list):
        fail(f"{path}: events must be an array")
    per_thread = {}
    for i, e in enumerate(events):
        where = f"events[{i}]"
        for key in ("t_ns", "tid", "seq", "tag"):
            if key not in e:
                fail(f"{path}: {where} missing {key!r}")
        if not isinstance(e["tag"], str) or not e["tag"]:
            fail(f"{path}: {where} tag must be a non-empty string")
        _finite_num(path, where, e, "a")
        _finite_num(path, where, e, "b")
        # Per-thread ordinals are unique: the seqlock may drop slots but
        # must never duplicate one.
        tid_seqs = per_thread.setdefault(e["tid"], set())
        if e["seq"] in tid_seqs:
            fail(f"{path}: {where} duplicate ring ordinal {e['seq']} for "
                 f"tid {e['tid']}")
        tid_seqs.add(e["seq"])
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(f"{path}: counters must be an object")
    for name, c in counters.items():
        _finite_num(path, f"counters[{name!r}]", c, "value")
        _finite_num(path, f"counters[{name!r}]", c, "delta")
    print(f"check_perf_json: {path}: OK (flight dump "
          f"{doc['reason']!r}, {len(events)} events, "
          f"{len(counters)} counters)")


def check_perf_histograms(path: str, hists: dict) -> None:
    """Histogram summary audit: every exported histogram must have
    ordered, finite percentiles bracketed by min/max, and a mean
    consistent with count and sum (the edge cases the C++ side
    regression-tests: empty -> all zero, single sample -> min == max)."""
    for name, h in hists.items():
        where = f"histograms[{name!r}]"
        count = h.get("count")
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            fail(f"{path}: {where} count must be a non-negative integer")
        for key in ("sum", "min", "max", "mean", "p50", "p95", "p99"):
            _finite_num(path, where, h, key)
        if count == 0:
            if any(h[k] != 0 for k in ("sum", "min", "max", "mean",
                                       "p50", "p95", "p99")):
                fail(f"{path}: {where} empty histogram must report zeros")
            continue
        if h["min"] > h["max"]:
            fail(f"{path}: {where} min exceeds max")
        eps = 1e-9 * max(1.0, abs(h["max"]))
        if not (h["min"] - eps <= h["p50"] <= h["p95"] <= h["p99"]
                <= h["max"] + eps):
            fail(f"{path}: {where} percentiles must satisfy "
                 f"min <= p50 <= p95 <= p99 <= max (got {h['p50']}, "
                 f"{h['p95']}, {h['p99']} in [{h['min']}, {h['max']}])")
        if not (h["min"] - eps <= h["mean"] <= h["max"] + eps):
            fail(f"{path}: {where} mean outside [min, max]")
        if abs(h["mean"] * count - h["sum"]) > 1e-6 * max(1.0, abs(h["sum"])):
            fail(f"{path}: {where} mean * count != sum")


# Every violation rule a checker summary may tally.  The lockcheck
# summary carries both its own lock.* rules and the commcheck p2p.*
# rules (one tally for the whole host tier); the swcheck summary
# carries the accelerator-model rules.
LOCKCHECK_RULES = {
    "lock.order_cycle",
    "lock.blocking_under_lock",
    "lock.condvar_no_predicate",
    "lock.guard_unheld",
    "p2p.orphaned_message",
    "p2p.tag_mismatch",
    "p2p.recv_cycle",
}

SWCHECK_RULES = {
    "ldm.bounds",
    "ldm.use_after_reset",
    "dma.inflight_access",
    "dma.overlap",
    "dma.wait_unreachable",
    "dma.reply_overrun",
    "dma.unwaited_at_finish",
    "rma.unconsumed",
    "rma.deadlock",
    "coll.abandoned_request",
}


def check_checker_summary(path: str, doc: dict, schema: str,
                          known_rules: set) -> None:
    """Shared shape of the swraman-check-v1 / swraman-lockcheck-v1 exit
    summaries: enabled flag, total, per-rule tally drawn from the
    enumerated rule set with the counts summing to the total, and (for
    lockcheck) a well-formed lock-class site table.  A disabled run must
    emit an empty report."""
    enabled = doc.get("enabled")
    if not isinstance(enabled, bool):
        fail(f"{path}: {schema} enabled must be a boolean")
    total = doc.get("violations")
    if isinstance(total, bool) or not isinstance(total, int) or total < 0:
        fail(f"{path}: {schema} violations must be a non-negative integer")
    rules = doc.get("rules")
    if not isinstance(rules, dict):
        fail(f"{path}: {schema} rules must be an object")
    tallied = 0
    for rule, n in rules.items():
        if rule not in known_rules:
            fail(f"{path}: {schema} unknown rule {rule!r} (known: "
                 f"{sorted(known_rules)})")
        if isinstance(n, bool) or not isinstance(n, int) or n < 1:
            fail(f"{path}: {schema} rules[{rule!r}] must be a positive "
                 f"integer (a rule that never fired is omitted)")
        tallied += n
    if tallied != total:
        fail(f"{path}: {schema} rule counts sum to {tallied} but "
             f"violations is {total}")
    if not enabled and (total != 0 or rules):
        fail(f"{path}: {schema} disabled run must emit an empty report "
             f"(got violations={total}, {len(rules)} rules)")
    n_sites = 0
    if schema == "swraman-lockcheck-v1":
        sites = doc.get("sites")
        if not isinstance(sites, list):
            fail(f"{path}: {schema} sites must be an array")
        seen_ids = set()
        for i, s in enumerate(sites):
            where = f"sites[{i}]"
            sid = s.get("id")
            if isinstance(sid, bool) or not isinstance(sid, int) or sid < 1:
                fail(f"{path}: {where} id must be a positive integer")
            if sid in seen_ids:
                fail(f"{path}: {where} duplicate lock-class id {sid}")
            seen_ids.add(sid)
            for key in ("name", "file"):
                if not isinstance(s.get(key), str) or not s[key]:
                    fail(f"{path}: {where} {key} must be a non-empty "
                         f"string")
            line = s.get("line")
            if isinstance(line, bool) or not isinstance(line, int) \
                    or line < 1:
                fail(f"{path}: {where} line must be a positive integer")
        n_sites = len(sites)
    state = "enabled" if enabled else "disabled"
    print(f"check_perf_json: {path}: OK ({schema} {state}, "
          f"{total} violations, {len(rules)} rules fired"
          + (f", {n_sites} lock classes" if n_sites else "") + ")")


def check_one_doc(path: str, doc: dict) -> bool:
    """Dispatches one parsed JSON document; returns False when the schema
    is not one of the self-describing side schemas (i.e. the caller
    should run the swraman-perf-v1 validation)."""
    schema = doc.get("schema")
    if schema == "swraman-check-v1":
        check_checker_summary(path, doc, schema, SWCHECK_RULES)
        return True
    if schema == "swraman-lockcheck-v1":
        check_checker_summary(path, doc, schema, LOCKCHECK_RULES)
        return True
    return False


def check_perf(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()

    # A whole-file parse wins: most artifacts are one (possibly
    # pretty-printed, multi-line) JSON document. Only when that fails is
    # the file treated as JSON-lines (a shared SWRAMAN_CHECK_FILE, one
    # compact summary document per line).
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        lines = [ln for ln in text.splitlines() if ln.strip()]
        try:
            docs = [json.loads(ln) for ln in lines]
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON or JSON-lines: {e}")
        for doc in docs:
            if not check_one_doc(path, doc):
                fail(f"{path}: JSON-lines entry with schema "
                     f"{doc.get('schema')!r} — only checker summaries "
                     f"may share a file")
        return
    if check_one_doc(path, doc):
        return

    schema = doc.get("schema")
    if schema == "swraman-bench-v1":
        check_bench(path, doc)
        return
    if schema == "swraman-jobtrace-v1":
        check_jobtrace(path, doc)
        return
    if schema == "swraman-health-v1":
        check_health(path, doc)
        return
    if schema == "swraman-flight-v1":
        check_flight(path, doc)
        return
    if schema != "swraman-perf-v1":
        fail(f"{path}: schema is {schema!r}, expected one of "
             f"'swraman-perf-v1', 'swraman-bench-v1', "
             f"'swraman-jobtrace-v1', 'swraman-health-v1', "
             f"'swraman-flight-v1', 'swraman-check-v1', "
             f"'swraman-lockcheck-v1'")
    if not isinstance(doc.get("total_wall_s"), (int, float)) or doc["total_wall_s"] <= 0:
        fail(f"{path}: total_wall_s must be a positive number")
    if not isinstance(doc.get("spans"), int) or doc["spans"] <= 0:
        fail(f"{path}: spans must be a positive integer")

    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(f"{path}: phases must be a non-empty array")
    for i, p in enumerate(phases):
        for key in ("path", "name", "depth", "count", "wall_s", "self_s"):
            if key not in p:
                fail(f"{path}: phases[{i}] missing {key!r}")
        if p["wall_s"] < 0 or p["self_s"] < 0:
            fail(f"{path}: phases[{i}] has negative wall_s/self_s")
        if p["self_s"] > p["wall_s"] + 1e-9:
            fail(f"{path}: phases[{i}] self_s exceeds wall_s")
        if p["count"] < 1:
            fail(f"{path}: phases[{i}] count must be >= 1")
        # Non-root phases must appear after their parent (DFS order).
        parent = p["path"].rsplit("/", 1)[0] if "/" in p["path"] else None
        if parent is not None:
            earlier = {q["path"] for q in phases[:i]}
            if parent not in earlier:
                fail(f"{path}: phases[{i}] parent {parent!r} not listed before it")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: metrics must be an object")
    for group in ("counters", "gauges", "histograms"):
        if group not in metrics:
            fail(f"{path}: metrics missing {group!r}")
    check_perf_histograms(path, metrics["histograms"])

    print(f"check_perf_json: {path}: OK "
          f"({len(phases)} phases, {doc['spans']} spans, "
          f"{len(metrics['counters'])} counters, "
          f"{len(metrics['histograms'])} histograms audited)")


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{path}: traceEvents[{i}] missing {key!r}")
        if e["ph"] not in ("X", "i"):
            fail(f"{path}: traceEvents[{i}] unexpected ph {e['ph']!r}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: traceEvents[{i}] complete event missing 'dur'")
    print(f"check_perf_json: {path}: OK ({len(events)} trace events)")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_perf_json.py PERF_JSON [CHROME_TRACE_JSON]")
    check_perf(sys.argv[1])
    if len(sys.argv) > 2:
        check_trace(sys.argv[2])


if __name__ == "__main__":
    main()
