#!/usr/bin/env python3
"""Validate a swraman perf/bench JSON report (and optionally a Chrome trace).

Usage: check_perf_json.py JSON_FILE [CHROME_TRACE_JSON]

The schema is autodetected from the top-level "schema" field:
  swraman-perf-v1    the tracing report emitted by src/obs/report.cpp
  swraman-bench-v1   benchmark series emitted by bench/*.cpp --json

Exits non-zero with a diagnostic on any violation.  Used by
scripts/tier1.sh after the traced smoke run and the bench smoke run.
"""

import json
import math
import sys


def fail(msg: str) -> None:
    print(f"check_perf_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _finite_nonneg(path: str, where: str, r: dict, key: str) -> float:
    v = r.get(key)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        fail(f"{path}: {where} {key} must be a number")
    if not math.isfinite(v):
        fail(f"{path}: {where} {key} must be finite (got {v!r})")
    if v < 0:
        fail(f"{path}: {where} {key} must be non-negative (got {v!r})")
    return float(v)


def check_serve_record(path: str, i: int, r: dict) -> None:
    """One record of the serve-throughput bench: job counts plus wall time,
    throughput, latency percentiles, and the dedup-cache hit ratio."""
    where = f"records[{i}]"
    for key in ("jobs", "tasks", "executed_tasks"):
        if isinstance(r.get(key), bool) or not isinstance(r.get(key), int) \
                or r[key] < 0:
            fail(f"{path}: {where} {key} must be a non-negative integer")
    for key in ("seconds", "throughput_per_s", "p50_s", "p95_s", "p99_s"):
        _finite_nonneg(path, where, r, key)
    if not (r["p50_s"] <= r["p95_s"] <= r["p99_s"]):
        fail(f"{path}: {where} latency percentiles must be ordered "
             f"p50 <= p95 <= p99 (got {r['p50_s']}, {r['p95_s']}, "
             f"{r['p99_s']})")
    ratio = _finite_nonneg(path, where, r, "cache_hit_ratio")
    if ratio > 1.0:
        fail(f"{path}: {where} cache_hit_ratio must be <= 1 (got {ratio})")
    if r["executed_tasks"] > r["tasks"]:
        fail(f"{path}: {where} executed_tasks exceeds tasks")


def check_chaos_record(path: str, i: int, r: dict) -> None:
    """One record of the serve-chaos bench: recovered-job counts, failover
    latency percentiles, and the two hard durability gates (no lost
    accepted jobs, no bitwise spectrum drift vs the fault-free run)."""
    where = f"records[{i}]"
    for key in ("jobs", "kills", "recovered_jobs", "replayed_tasks",
                "failovers", "lost_jobs", "bitwise_mismatches"):
        if isinstance(r.get(key), bool) or not isinstance(r.get(key), int) \
                or r[key] < 0:
            fail(f"{path}: {where} {key} must be a non-negative integer")
    for key in ("failover_p50_s", "failover_p95_s", "failover_p99_s"):
        _finite_nonneg(path, where, r, key)
    if not (r["failover_p50_s"] <= r["failover_p95_s"]
            <= r["failover_p99_s"]):
        fail(f"{path}: {where} failover percentiles must be ordered "
             f"p50 <= p95 <= p99")
    frac = _finite_nonneg(path, where, r, "replayed_fraction")
    if frac > 1.0:
        fail(f"{path}: {where} replayed_fraction must be <= 1 (got {frac})")
    if r["kills"] < 1 or r["recovered_jobs"] < 1:
        fail(f"{path}: {where} chaos run must kill at least one shard and "
             f"replay at least one job (kills={r['kills']}, "
             f"recovered_jobs={r['recovered_jobs']})")
    if r["lost_jobs"] != 0:
        fail(f"{path}: {where} {r['lost_jobs']} accepted job(s) lost — "
             f"the WAL durability contract is broken")
    if r["bitwise_mismatches"] != 0:
        fail(f"{path}: {where} {r['bitwise_mismatches']} spectra differ "
             f"bitwise from the fault-free run")


def check_bench(path: str, doc: dict) -> None:
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(f"{path}: bench must be a non-empty string")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        fail(f"{path}: records must be a non-empty array")
    series = set()
    for i, r in enumerate(records):
        if not isinstance(r.get("series"), str) or not r["series"]:
            fail(f"{path}: records[{i}] series must be a non-empty string")
        series.add(r["series"])
        if "recovered_jobs" in r:
            # serve-chaos shape (bench_serve_chaos --json)
            check_chaos_record(path, i, r)
            continue
        if "throughput_per_s" in r:
            # serve-throughput shape (bench_serve_throughput --json)
            check_serve_record(path, i, r)
            continue
        if "value" in r and "ranks" not in r:
            # scalar summary record, e.g. the serve bench's speedup line
            _finite_nonneg(path, f"records[{i}]", r, "value")
            continue
        if not isinstance(r.get("ranks"), int) or r["ranks"] < 1:
            fail(f"{path}: records[{i}] ranks must be a positive integer")
        for key in ("bytes", "seconds"):
            _finite_nonneg(path, f"records[{i}]", r, key)
        if "cycles" in r:
            _finite_nonneg(path, f"records[{i}]", r, "cycles")
    print(f"check_perf_json: {path}: OK "
          f"(bench {doc['bench']!r}, {len(records)} records, "
          f"{len(series)} series)")


def check_perf(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)

    if doc.get("schema") == "swraman-bench-v1":
        check_bench(path, doc)
        return
    if doc.get("schema") != "swraman-perf-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}, expected "
             f"'swraman-perf-v1' or 'swraman-bench-v1'")
    if not isinstance(doc.get("total_wall_s"), (int, float)) or doc["total_wall_s"] <= 0:
        fail(f"{path}: total_wall_s must be a positive number")
    if not isinstance(doc.get("spans"), int) or doc["spans"] <= 0:
        fail(f"{path}: spans must be a positive integer")

    phases = doc.get("phases")
    if not isinstance(phases, list) or not phases:
        fail(f"{path}: phases must be a non-empty array")
    for i, p in enumerate(phases):
        for key in ("path", "name", "depth", "count", "wall_s", "self_s"):
            if key not in p:
                fail(f"{path}: phases[{i}] missing {key!r}")
        if p["wall_s"] < 0 or p["self_s"] < 0:
            fail(f"{path}: phases[{i}] has negative wall_s/self_s")
        if p["self_s"] > p["wall_s"] + 1e-9:
            fail(f"{path}: phases[{i}] self_s exceeds wall_s")
        if p["count"] < 1:
            fail(f"{path}: phases[{i}] count must be >= 1")
        # Non-root phases must appear after their parent (DFS order).
        parent = p["path"].rsplit("/", 1)[0] if "/" in p["path"] else None
        if parent is not None:
            earlier = {q["path"] for q in phases[:i]}
            if parent not in earlier:
                fail(f"{path}: phases[{i}] parent {parent!r} not listed before it")

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail(f"{path}: metrics must be an object")
    for group in ("counters", "gauges", "histograms"):
        if group not in metrics:
            fail(f"{path}: metrics missing {group!r}")

    print(f"check_perf_json: {path}: OK "
          f"({len(phases)} phases, {doc['spans']} spans, "
          f"{len(metrics['counters'])} counters)")


def check_trace(path: str) -> None:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{path}: traceEvents[{i}] missing {key!r}")
        if e["ph"] not in ("X", "i"):
            fail(f"{path}: traceEvents[{i}] unexpected ph {e['ph']!r}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: traceEvents[{i}] complete event missing 'dur'")
    print(f"check_perf_json: {path}: OK ({len(events)} trace events)")


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: check_perf_json.py PERF_JSON [CHROME_TRACE_JSON]")
    check_perf(sys.argv[1])
    if len(sys.argv) > 2:
        check_trace(sys.argv[2])


if __name__ == "__main__":
    main()
