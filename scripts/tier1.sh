#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): full build + ctest, the repo lint
# gate, fully checked (SWRAMAN_CHECK=1) runs of the sunway suites AND
# the serve/obs/parallel suites (the host concurrency checker: lock
# order graph, blocking-under-lock audit, p2p protocol verifier — zero
# violations tolerated), the serve throughput gate (>= 2x over naive
# FIFO with dedup hits), the serve chaos gate (shard kills + WAL
# replay, zero lost jobs, bitwise spectra, lockcheck-clean), then
# instrumented passes — the robustness/fault-injection suite under
# ASan/UBSan, the obs + parallel + serve suites under TSan (the
# metrics registry claims lock-free counters and the serve pool claims
# race-free work stealing; this is where we prove both), and the serve
# + obs suites under UBSan.
# Set SWRAMAN_SANITIZE=undefined to swap the robustness pass to UBSan,
# or SWRAMAN_SANITIZE=none to skip every instrumented pass.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${SWRAMAN_SANITIZE:-address}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1: repo lint gate (scripts/lint.py) =="
python3 scripts/lint.py build

echo "== tier-1: checked execution (SWRAMAN_CHECK=1) =="
# SWRAMAN_CHECK_FILE is JSON-lines: one summary line per checker
# (swraman-check-v1 from swcheck, swraman-lockcheck-v1 from the host
# concurrency checker).  Each line is structurally validated, then the
# expected lines are asserted here.
CHECK_DIR="build/check-smoke"
mkdir -p "${CHECK_DIR}"
SWRAMAN_CHECK=1 \
  SWRAMAN_CHECK_FILE="${CHECK_DIR}/swraman_check.json" \
  ./build/tests/test_sunway_check
SWRAMAN_CHECK=1 ./build/tests/test_sunway >/dev/null
python3 scripts/check_perf_json.py "${CHECK_DIR}/swraman_check.json"
python3 - "${CHECK_DIR}/swraman_check.json" <<'EOF'
import json, sys
docs = {}
with open(sys.argv[1]) as f:
    for line in f:
        if line.strip():
            d = json.loads(line)
            docs[d["schema"]] = d
s = docs["swraman-check-v1"]
assert s["enabled"] is True, s
print(f"checked run: {s['violations']} swcheck violation(s) "
      f"(all seeded and caught)")
EOF

echo "== tier-1: fmm suite + golden Fmm water under the checkers =="
# The octree Hartree backend's CPE offload (M2L / P2P staging) runs with
# the accelerator shadow checker live, both on the unit/property suite
# and on the end-to-end golden water spectrum under HartreeBackend::Fmm.
# Unlike test_sunway_check there are no seeded violations here: any
# nonzero tally is a real LDM/DMA contract breach in the FMM kernels.
for run in "test_fmm:./build/tests/test_fmm" \
           "golden-fmm-water:./build/tests/test_golden --gtest_filter=GoldenSpectrum.WaterRamanUnderFmmBackendMatchesSnapshot"; do
  name="${run%%:*}"
  cmd="${run#*:}"
  SWRAMAN_CHECK=1 \
    SWRAMAN_CHECK_FILE="${CHECK_DIR}/${name}_check.json" \
    ${cmd} >/dev/null
  python3 scripts/check_perf_json.py "${CHECK_DIR}/${name}_check.json"
  python3 - "${CHECK_DIR}/${name}_check.json" "${name}" <<'EOF'
import json, sys
docs = {}
with open(sys.argv[1]) as f:
    for line in f:
        if line.strip():
            docs[json.loads(line)["schema"]] = json.loads(line)
for schema in ("swraman-check-v1", "swraman-lockcheck-v1"):
    s = docs[schema]
    assert s["enabled"] is True, s
    assert s["violations"] == 0, \
        f"{sys.argv[2]}: {schema} violations under SWRAMAN_CHECK=1: {s}"
print(f"{sys.argv[2]}: swcheck + lockcheck clean")
EOF
done

echo "== tier-1: serve + obs suites under the concurrency checker =="
# The whole serve tier and obs plane run with the lock-order graph,
# blocking-under-lock audit and p2p verifier live; both suites must be
# violation-free (the seeded-violation tests clean up after themselves
# via ScopedChecking, so any nonzero tally is a real contract breach).
for suite in test_serve test_obs test_parallel; do
  SWRAMAN_CHECK=1 \
    SWRAMAN_CHECK_FILE="${CHECK_DIR}/${suite}_check.json" \
    "./build/tests/${suite}" >/dev/null
  python3 scripts/check_perf_json.py "${CHECK_DIR}/${suite}_check.json"
  python3 - "${CHECK_DIR}/${suite}_check.json" "${suite}" <<'EOF'
import json, sys
docs = {}
with open(sys.argv[1]) as f:
    for line in f:
        if line.strip():
            d = json.loads(line)
            docs[d["schema"]] = d
s = docs["swraman-lockcheck-v1"]
assert s["enabled"] is True, s
assert s["violations"] == 0, \
    f"{sys.argv[2]}: lockcheck violations under SWRAMAN_CHECK=1: {s}"
print(f"{sys.argv[2]}: lockcheck clean "
      f"({len(s['sites'])} lock classes in the order graph)")
EOF
done

echo "== tier-1: traced smoke run (SWRAMAN_TRACE=1) =="
SMOKE_DIR="build/trace-smoke"
mkdir -p "${SMOKE_DIR}"
SWRAMAN_TRACE=1 \
  SWRAMAN_PERF_FILE="${SMOKE_DIR}/swraman_perf.json" \
  SWRAMAN_TRACE_FILE="${SMOKE_DIR}/swraman_trace.json" \
  ./build/bench/bench_fig15_allreduce >/dev/null
python3 scripts/check_perf_json.py \
  "${SMOKE_DIR}/swraman_perf.json" "${SMOKE_DIR}/swraman_trace.json"

echo "== tier-1: bench smoke (fig15 acceptance gate + JSON) =="
# The bench itself enforces the hierarchical-allreduce acceptance criteria
# (>= 1.5x over flat RSAG, >= 50% overlap-hidden) and exits non-zero on
# regression; the emitted swraman-bench-v1 series is validated and kept as
# the repo's reference curve.
./build/bench/bench_fig15_allreduce --json "${SMOKE_DIR}/BENCH_fig15.json" \
  >/dev/null
python3 scripts/check_perf_json.py "${SMOKE_DIR}/BENCH_fig15.json"
cp "${SMOKE_DIR}/BENCH_fig15.json" BENCH_fig15.json

echo "== tier-1: serve smoke + throughput gate (SWRAMAN_CHECK=1) =="
# The serve bench runs the mixed-tenant trace twice (naive FIFO vs the
# full scheduler) and exits non-zero unless the DAG/dedup path is >= 2x
# faster with a non-zero cache hit ratio; running it under SWRAMAN_CHECK=1
# keeps the shadow-state checker live across the whole service stack.
SWRAMAN_CHECK=1 ./build/bench/bench_serve_throughput \
  --json "${SMOKE_DIR}/BENCH_serve.json" >/dev/null
python3 scripts/check_perf_json.py "${SMOKE_DIR}/BENCH_serve.json"
cp "${SMOKE_DIR}/BENCH_serve.json" BENCH_serve.json

echo "== tier-1: accuracy-tier gate (bec vs dfpt, golden water) =="
# The tiers bench pushes the same water-scale job batch through both
# accuracy tiers (modeled, dedup off — capacity not caching) and then
# runs the golden water case on the real engine: it exits non-zero unless
# the bec tier is a wall-clock capacity win, performs >= 5x fewer engine
# evaluations than full DFPT, and lands inside the DESIGN.md S15 golden
# tolerances (activities within 5% on shared-Hessian modes).
SWRAMAN_CHECK=1 ./build/bench/bench_serve_tiers \
  --json "${SMOKE_DIR}/BENCH_tiers.json" >/dev/null
python3 scripts/check_perf_json.py "${SMOKE_DIR}/BENCH_tiers.json"
cp "${SMOKE_DIR}/BENCH_tiers.json" BENCH_tiers.json

echo "== tier-1: fmm crossover gate (octree Hartree backend) =="
# Growing water clusters priced through both Hartree evaluation paths.
# The bench exits non-zero unless FMM crosses below direct summation
# before the largest cluster and wins >= 1.5x at the largest; the
# emitted swraman-bench-v1 series is validated and kept as the repo's
# reference crossover curve.
./build/bench/bench_fmm_crossover --json "${SMOKE_DIR}/BENCH_fmm.json"
python3 scripts/check_perf_json.py "${SMOKE_DIR}/BENCH_fmm.json"
cp "${SMOKE_DIR}/BENCH_fmm.json" BENCH_fmm.json

echo "== tier-1: hotspots pipeline (selftest + smoke report) =="
# The ranking core is pinned by its checked-in fixture, then run over the
# traced smoke report it will see in production (modeled allreduce cycles).
python3 scripts/hotspots.py --selftest
python3 scripts/hotspots.py "${SMOKE_DIR}/swraman_perf.json" --top 5
python3 scripts/hotspots.py "${SMOKE_DIR}/swraman_perf.json" \
  --json "${SMOKE_DIR}/hotspots.json" >/dev/null

echo "== tier-1: serve chaos gate (kills + WAL replay, SWRAMAN_CHECK=1) =="
# The chaos harness replays the short mixed-tenant trace through the
# sharded tier twice (fault-free vs shard kills + torn WAL + remote-cache
# timeouts) and exits non-zero unless every accepted job survives with a
# bitwise-identical spectrum. The same run drives the observability plane
# end to end: the bench itself gates on a jobtrace stitched across the
# kill/replay boundary, a flight-recorder dump per injected kill, and a
# non-zero SLO burn during the chaos window; the exported artifacts
# (chaos record, jobtrace, health history, kill postmortem) are then
# validated structurally here.
(cd "${SMOKE_DIR}" && SWRAMAN_CHECK=1 SWRAMAN_CHECK_FILE=chaos_check.json \
  ../../build/bench/bench_serve_chaos \
  --short --json BENCH_chaos.json --jobtrace chaos_jobtrace.json \
  --health chaos_health.json >/dev/null)
python3 scripts/check_perf_json.py "${SMOKE_DIR}/BENCH_chaos.json"
# The chaos run is the concurrency checker's hardest gate: shard kills,
# WAL replay, failover and remote-cache timeouts, all with the lock
# graph and the p2p verifier live — and zero violations tolerated.
python3 scripts/check_perf_json.py "${SMOKE_DIR}/chaos_check.json"
python3 - "${SMOKE_DIR}/chaos_check.json" <<'EOF'
import json, sys
docs = {}
with open(sys.argv[1]) as f:
    for line in f:
        if line.strip():
            d = json.loads(line)
            docs[d["schema"]] = d
s = docs["swraman-lockcheck-v1"]
assert s["enabled"] is True, s
assert s["violations"] == 0, \
    f"chaos run: lockcheck violations: {s}"
print(f"chaos run: lockcheck clean ({len(s['sites'])} lock classes)")
EOF
python3 scripts/check_perf_json.py "${SMOKE_DIR}/chaos_jobtrace.json"
python3 scripts/check_perf_json.py "${SMOKE_DIR}/chaos_health.json"
test -f "${SMOKE_DIR}/flight-serve.shard.kill.json" || {
  echo "tier-1: FAIL: no flight-recorder dump for the injected shard kills"
  exit 1
}
python3 scripts/check_perf_json.py "${SMOKE_DIR}/flight-serve.shard.kill.json"
cp "${SMOKE_DIR}/BENCH_chaos.json" BENCH_chaos.json

if [ "${SANITIZER}" != "none" ]; then
  echo "== tier-1: robustness suite under -fsanitize=${SANITIZER} =="
  cmake -B "build-${SANITIZER}" -S . \
        -DSWRAMAN_SANITIZE="${SANITIZER}" \
        -DSWRAMAN_BUILD_BENCH=OFF -DSWRAMAN_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "build-${SANITIZER}" -j "${JOBS}" --target \
        test_robustness
  "./build-${SANITIZER}/tests/test_robustness"

  echo "== tier-1: obs + parallel + serve suites under -fsanitize=thread =="
  # Bench stays ON here (only the chaos target is built): the sharded
  # tier's kill/replay interleavings are exactly what TSan must see.
  cmake -B build-thread -S . \
        -DSWRAMAN_SANITIZE=thread \
        -DSWRAMAN_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-thread -j "${JOBS}" --target test_obs test_parallel \
        test_serve test_fmm bench_serve_chaos
  ./build-thread/tests/test_obs
  ./build-thread/tests/test_parallel
  # The FMM backend claims its CPE model fan-out is race-free; the
  # backend suite (M2L/P2P offload vs host path) runs under TSan.
  ./build-thread/tests/test_fmm
  # The serve pool/cache/scheduler run their full modeled-engine suite
  # under TSan; the RealEngine end-to-end tests are excluded only for
  # time (SCF under TSan is ~20x slower), not correctness.
  ./build-thread/tests/test_serve --gtest_filter=-ServeRealEngine.*
  (cd build-thread && ./bench/bench_serve_chaos --short --shards 2)

  echo "== tier-1: serve + obs suites under -fsanitize=undefined =="
  # UBSan complements the concurrency checker: lockcheck proves lock
  # discipline, UBSan proves the code under those locks is free of
  # undefined behavior (the remote-cache wire format bit-casts, the
  # histogram bucket math, the seqlock ring arithmetic).
  cmake -B build-undefined -S . \
        -DSWRAMAN_SANITIZE=undefined \
        -DSWRAMAN_BUILD_BENCH=OFF -DSWRAMAN_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build-undefined -j "${JOBS}" --target test_obs test_serve
  ./build-undefined/tests/test_obs
  ./build-undefined/tests/test_serve --gtest_filter=-ServeRealEngine.*
fi

echo "tier-1: OK"
