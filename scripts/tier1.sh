#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): full build + ctest, then the
# robustness/fault-injection suite rebuilt and re-run under a sanitizer
# (address by default; set SWRAMAN_SANITIZE=undefined for UBSan, or
# SWRAMAN_SANITIZE=none to skip the instrumented pass).
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${SWRAMAN_SANITIZE:-address}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

if [ "${SANITIZER}" != "none" ]; then
  echo "== tier-1: robustness suite under -fsanitize=${SANITIZER} =="
  cmake -B "build-${SANITIZER}" -S . \
        -DSWRAMAN_SANITIZE="${SANITIZER}" \
        -DSWRAMAN_BUILD_BENCH=OFF -DSWRAMAN_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "build-${SANITIZER}" -j "${JOBS}" --target \
        test_robustness
  "./build-${SANITIZER}/tests/test_robustness"
fi

echo "tier-1: OK"
