#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): full build + ctest, then the
# robustness/fault-injection suite rebuilt and re-run under a sanitizer
# (address by default; set SWRAMAN_SANITIZE=undefined for UBSan, or
# SWRAMAN_SANITIZE=none to skip the instrumented pass).
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${SWRAMAN_SANITIZE:-address}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: plain build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1: traced smoke run (SWRAMAN_TRACE=1) =="
SMOKE_DIR="build/trace-smoke"
mkdir -p "${SMOKE_DIR}"
SWRAMAN_TRACE=1 \
  SWRAMAN_PERF_FILE="${SMOKE_DIR}/swraman_perf.json" \
  SWRAMAN_TRACE_FILE="${SMOKE_DIR}/swraman_trace.json" \
  ./build/bench/bench_fig15_allreduce >/dev/null
python3 scripts/check_perf_json.py \
  "${SMOKE_DIR}/swraman_perf.json" "${SMOKE_DIR}/swraman_trace.json"

if [ "${SANITIZER}" != "none" ]; then
  echo "== tier-1: robustness suite under -fsanitize=${SANITIZER} =="
  cmake -B "build-${SANITIZER}" -S . \
        -DSWRAMAN_SANITIZE="${SANITIZER}" \
        -DSWRAMAN_BUILD_BENCH=OFF -DSWRAMAN_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "build-${SANITIZER}" -j "${JOBS}" --target \
        test_robustness
  "./build-${SANITIZER}/tests/test_robustness"
fi

echo "tier-1: OK"
