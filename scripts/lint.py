#!/usr/bin/env python3
"""Repo lint gate for swraman (tier-1 stage).

Five repo-specific rules that clang-tidy cannot express, plus an
optional clang-tidy pass over compile_commands.json when the binary is
available (the gate skips that stage gracefully when it is not):

  1. Every CpeCluster.run(...) kernel lambda in src/sunway must call
     ctx.charge_flops(...) before the context is finished — a kernel
     that forgets to charge flops silently corrupts the cost model the
     paper's scaling figures are built on.
  2. No raw memcpy outside src/sunway/. Host-side code must go through
     typed copies/std::copy; raw memcpy is reserved for the DMA engine
     model where the checker can see it.
  3. No std::endl in src/ — it flushes, and the obs/trace hot paths are
     called per-DMA. Use '\\n'.
  4. No detached or ad-hoc threads in src/. Calling .detach() on a
     thread orphans work the serve shutdown path and the sanitizer
     runs cannot see; constructing std::thread directly is reserved
     for the sanctioned homes (the serve worker pool, the SPMD comm
     runtime, and the remote-cache server threads), everything else
     must submit to the serve pool.
  5. No unflushed durability writes in src/serve/. The write-ahead job
     log's log-before-ack contract only holds if every byte it promises
     is fsync'd before the acknowledgment, so file *output* in the
     serve tier is confined to the WAL writer (serve/wal.cpp), which in
     turn must pair its writes with fflush + fsync. An ofstream or bare
     fwrite elsewhere in serve/ is a durability promise nobody keeps.

Exit status: 0 clean, 1 violations, 2 usage/setup error.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SUNWAY = SRC / "sunway"


def fail(violations: list[str]) -> None:
    for v in violations:
        print(f"lint: {v}", file=sys.stderr)


def cpp_sources(root: Path) -> list[Path]:
    return sorted(
        p for p in root.rglob("*")
        if p.suffix in {".cpp", ".hpp", ".h", ".cc"} and p.is_file()
    )


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments, preserving newlines for line numbers."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' and (i == 0 or text[i - 1] != "\\"):
            # String literal: copy verbatim until the closing quote.
            j = i + 1
            while j < n and not (text[j] == '"' and text[j - 1] != "\\"):
                j += 1
            out.append(text[i:j + 1])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lambda_body(text: str, open_brace: int) -> str:
    """Return the brace-balanced body starting at text[open_brace] == '{'."""
    depth = 0
    for j in range(open_brace, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace:j + 1]
    return text[open_brace:]


RUN_CALL = re.compile(r"\.run\s*\(")


def check_charge_flops() -> list[str]:
    """Rule 1: every .run(...) kernel body in src/sunway charges flops."""
    violations: list[str] = []
    for path in cpp_sources(SUNWAY):
        text = strip_comments(path.read_text())
        for m in RUN_CALL.finditer(text):
            # Find the lambda introducer within the call's argument list.
            lam = text.find("[", m.end())
            if lam < 0:
                continue
            brace = text.find("{", lam)
            if brace < 0:
                continue
            body = lambda_body(text, brace)
            if "charge_flops" not in body:
                line = text.count("\n", 0, m.start()) + 1
                rel = path.relative_to(REPO)
                violations.append(
                    f"{rel}:{line}: kernel run() lambda never calls "
                    "ctx.charge_flops(...) — the cost model will "
                    "undercount this kernel")
    return violations


def check_raw_memcpy() -> list[str]:
    """Rule 2: no raw memcpy in src/ outside src/sunway/."""
    violations: list[str] = []
    pat = re.compile(r"\bmemcpy\s*\(")
    for path in cpp_sources(SRC):
        if SUNWAY in path.parents or path.parent == SUNWAY:
            continue
        text = strip_comments(path.read_text())
        for m in pat.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            rel = path.relative_to(REPO)
            violations.append(
                f"{rel}:{line}: raw memcpy outside src/sunway/ — use a "
                "typed copy (std::copy) so the type system and the "
                "checker can see it")
    return violations


def check_std_endl() -> list[str]:
    """Rule 3: no std::endl in src/ (it flushes; hot paths log per-DMA)."""
    violations: list[str] = []
    pat = re.compile(r"std::endl\b")
    for path in cpp_sources(SRC):
        text = strip_comments(path.read_text())
        for m in pat.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            rel = path.relative_to(REPO)
            violations.append(
                f"{rel}:{line}: std::endl flushes on every call — "
                "use '\\n'")
    return violations


# The only files allowed to construct std::thread directly: the serve
# worker pool (owns lifecycle, joins in stop()) and the SPMD comm
# runtime (rank threads joined by the harness).
THREAD_HOMES = {
    SRC / "serve" / "pool.cpp",
    SRC / "serve" / "pool.hpp",
    SRC / "parallel" / "comm.cpp",
    # Cross-shard cache server threads: owned by RemoteCacheFabric,
    # joined in stop()/the destructor, covered by the TSan pass.
    SRC / "serve" / "remote_cache.cpp",
    SRC / "serve" / "remote_cache.hpp",
}


def check_threads() -> list[str]:
    """Rule 4: no .detach(), and std::thread construction only in the
    sanctioned homes (serve pool, SPMD comm runtime)."""
    violations: list[str] = []
    detach = re.compile(r"\.\s*detach\s*\(")
    ctor = re.compile(r"\bstd::(?:jthread|thread)\b(?!\s*(?:&|\*|>|::))")
    for path in cpp_sources(SRC):
        text = strip_comments(path.read_text())
        rel = path.relative_to(REPO)
        for m in detach.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            violations.append(
                f"{rel}:{line}: thread .detach() — detached threads "
                "outlive shutdown and escape TSan; join them (see "
                "serve/pool.cpp)")
        if path in THREAD_HOMES:
            continue
        for m in ctor.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            violations.append(
                f"{rel}:{line}: raw std::thread outside the sanctioned "
                "homes (src/serve/pool.*, src/parallel/comm.cpp, "
                "src/serve/remote_cache.cpp) — submit work to the serve "
                "worker pool instead")
    return violations


# The one file allowed to write files in the serve tier: the fsync'd
# WAL writer. Everything durable must go through it.
WAL_WRITER = SRC / "serve" / "wal.cpp"

FILE_OUTPUT = re.compile(
    r"\bstd::ofstream\b|\bstd::fstream\b|\bfwrite\s*\(|"
    r"\bfopen\s*\(|\bfprintf\s*\(")


def check_wal_durability() -> list[str]:
    """Rule 5: file output in src/serve only via the fsync'd WAL writer."""
    violations: list[str] = []
    for path in cpp_sources(SRC / "serve"):
        text = strip_comments(path.read_text())
        rel = path.relative_to(REPO)
        if path == WAL_WRITER:
            # The writer itself must keep the durability pairing: a WAL
            # that writes without flushing + fsyncing acknowledges jobs
            # it cannot replay.
            if "fwrite" in text and ("fsync" not in text
                                     or "fflush" not in text):
                violations.append(
                    f"{rel}: WAL writer writes without fflush + fsync — "
                    "log-before-ack is broken")
            continue
        for m in FILE_OUTPUT.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            violations.append(
                f"{rel}:{line}: file output outside the WAL writer "
                "(serve/wal.cpp) — durability writes must go through "
                "the fsync'd JobLog, everything else is an unkept "
                "durability promise")
    return violations


def run_clang_tidy(build_dir: Path) -> int:
    """Optional clang-tidy pass; returns violation count. Skips when the
    binary or compile_commands.json is unavailable."""
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("lint: clang-tidy not found — skipping static-analysis "
              "stage (repo rules still enforced)")
        return 0
    ccdb = build_dir / "compile_commands.json"
    if not ccdb.exists():
        print(f"lint: {ccdb} missing — configure with CMake first; "
              "skipping clang-tidy stage")
        return 0
    entries = json.loads(ccdb.read_text())
    files = sorted({e["file"] for e in entries
                    if str(SRC) in e["file"] and e["file"].endswith(".cpp")})
    if not files:
        return 0
    print(f"lint: clang-tidy over {len(files)} translation units")
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", *files],
        capture_output=True, text=True, check=False)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return 1
    # clang-tidy exits 0 even with warnings; count them explicitly.
    warnings = proc.stdout.count(" warning: ")
    return warnings


def main(argv: list[str]) -> int:
    build_dir = Path(argv[1]) if len(argv) > 1 else REPO / "build"
    if not SRC.is_dir():
        print(f"lint: source tree {SRC} not found", file=sys.stderr)
        return 2
    violations = (check_charge_flops() + check_raw_memcpy()
                  + check_std_endl() + check_threads()
                  + check_wal_durability())
    fail(violations)
    tidy_count = run_clang_tidy(build_dir)
    total = len(violations) + tidy_count
    if total:
        print(f"lint: FAILED ({total} violation(s))", file=sys.stderr)
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
