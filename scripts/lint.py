#!/usr/bin/env python3
"""Repo lint gate for swraman (tier-1 stage).

Six repo-specific rules that clang-tidy cannot express, plus an
optional clang-tidy pass over compile_commands.json when the binary is
available (the gate skips that stage gracefully when it is not). The
clang-tidy stage diffs its findings against a committed baseline
(scripts/clang_tidy_baseline.json): only *new* findings fail the gate,
so enabling a stricter check set never blocks on historical debt.
Refresh the baseline with --update-tidy-baseline after triaging.

  1. Every CpeCluster.run(...) kernel lambda in src/sunway must call
     ctx.charge_flops(...) before the context is finished — a kernel
     that forgets to charge flops silently corrupts the cost model the
     paper's scaling figures are built on.
  2. No raw memcpy outside src/sunway/. Host-side code must go through
     typed copies/std::copy; raw memcpy is reserved for the DMA engine
     model where the checker can see it.
  3. No std::endl in src/ — it flushes, and the obs/trace hot paths are
     called per-DMA. Use '\\n'.
  4. No detached or ad-hoc threads in src/. Calling .detach() on a
     thread orphans work the serve shutdown path and the sanitizer
     runs cannot see; constructing std::thread directly is reserved
     for the sanctioned homes (the serve worker pool, the SPMD comm
     runtime, and the remote-cache server threads), everything else
     must submit to the serve pool.
  5. No unflushed durability writes in src/serve/. The write-ahead job
     log's log-before-ack contract only holds if every byte it promises
     is fsync'd before the acknowledgment, so file *output* in the
     serve tier is confined to the WAL writer (serve/wal.cpp), which in
     turn must pair its writes with fflush + fsync. An ofstream or bare
     fwrite elsewhere in serve/ is a durability promise nobody keeps.
  6. No raw locking primitives in src/serve or src/obs. std::mutex,
     the std lock guards, std::condition_variable and explicit
     .lock()/.unlock()/.try_lock() calls bypass the lockcheck
     acquisition-order graph, the blocking-under-lock audit and the
     condvar-predicate rule — a raw mutex is a lock the deadlock
     checker cannot see. Use lockcheck::CheckedMutex / CheckedLock /
     CheckedCondVar (scope-ended, never manually unlocked). Sanctioned
     homes: the checker's own implementation (src/common/lockcheck.*,
     src/parallel/commcheck.*) and the seqlock flight recorder
     (src/obs/flight.cpp), which is lock-free by design and must stay
     dumpable from crash paths that may hold arbitrary locks.

Exit status: 0 clean, 1 violations, 2 usage/setup error.

Usage: lint.py [build_dir] [--update-tidy-baseline]
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SUNWAY = SRC / "sunway"


def fail(violations: list[str]) -> None:
    for v in violations:
        print(f"lint: {v}", file=sys.stderr)


def cpp_sources(root: Path) -> list[Path]:
    return sorted(
        p for p in root.rglob("*")
        if p.suffix in {".cpp", ".hpp", ".h", ".cc"} and p.is_file()
    )


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments, preserving newlines for line numbers."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' and (i == 0 or text[i - 1] != "\\"):
            # String literal: copy verbatim until the closing quote.
            j = i + 1
            while j < n and not (text[j] == '"' and text[j - 1] != "\\"):
                j += 1
            out.append(text[i:j + 1])
            i = j + 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lambda_body(text: str, open_brace: int) -> str:
    """Return the brace-balanced body starting at text[open_brace] == '{'."""
    depth = 0
    for j in range(open_brace, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace:j + 1]
    return text[open_brace:]


RUN_CALL = re.compile(r"\.run\s*\(")


def check_charge_flops() -> list[str]:
    """Rule 1: every .run(...) kernel body in src/sunway charges flops."""
    violations: list[str] = []
    for path in cpp_sources(SUNWAY):
        text = strip_comments(path.read_text())
        for m in RUN_CALL.finditer(text):
            # Find the lambda introducer within the call's argument list.
            lam = text.find("[", m.end())
            if lam < 0:
                continue
            brace = text.find("{", lam)
            if brace < 0:
                continue
            body = lambda_body(text, brace)
            if "charge_flops" not in body:
                line = text.count("\n", 0, m.start()) + 1
                rel = path.relative_to(REPO)
                violations.append(
                    f"{rel}:{line}: kernel run() lambda never calls "
                    "ctx.charge_flops(...) — the cost model will "
                    "undercount this kernel")
    return violations


def check_raw_memcpy() -> list[str]:
    """Rule 2: no raw memcpy in src/ outside src/sunway/."""
    violations: list[str] = []
    pat = re.compile(r"\bmemcpy\s*\(")
    for path in cpp_sources(SRC):
        if SUNWAY in path.parents or path.parent == SUNWAY:
            continue
        text = strip_comments(path.read_text())
        for m in pat.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            rel = path.relative_to(REPO)
            violations.append(
                f"{rel}:{line}: raw memcpy outside src/sunway/ — use a "
                "typed copy (std::copy) so the type system and the "
                "checker can see it")
    return violations


def check_std_endl() -> list[str]:
    """Rule 3: no std::endl in src/ (it flushes; hot paths log per-DMA)."""
    violations: list[str] = []
    pat = re.compile(r"std::endl\b")
    for path in cpp_sources(SRC):
        text = strip_comments(path.read_text())
        for m in pat.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            rel = path.relative_to(REPO)
            violations.append(
                f"{rel}:{line}: std::endl flushes on every call — "
                "use '\\n'")
    return violations


# The only files allowed to construct std::thread directly: the serve
# worker pool (owns lifecycle, joins in stop()) and the SPMD comm
# runtime (rank threads joined by the harness).
THREAD_HOMES = {
    SRC / "serve" / "pool.cpp",
    SRC / "serve" / "pool.hpp",
    SRC / "parallel" / "comm.cpp",
    # Cross-shard cache server threads: owned by RemoteCacheFabric,
    # joined in stop()/the destructor, covered by the TSan pass.
    SRC / "serve" / "remote_cache.cpp",
    SRC / "serve" / "remote_cache.hpp",
}


def check_threads() -> list[str]:
    """Rule 4: no .detach(), and std::thread construction only in the
    sanctioned homes (serve pool, SPMD comm runtime)."""
    violations: list[str] = []
    detach = re.compile(r"\.\s*detach\s*\(")
    ctor = re.compile(r"\bstd::(?:jthread|thread)\b(?!\s*(?:&|\*|>|::))")
    for path in cpp_sources(SRC):
        text = strip_comments(path.read_text())
        rel = path.relative_to(REPO)
        for m in detach.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            violations.append(
                f"{rel}:{line}: thread .detach() — detached threads "
                "outlive shutdown and escape TSan; join them (see "
                "serve/pool.cpp)")
        if path in THREAD_HOMES:
            continue
        for m in ctor.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            violations.append(
                f"{rel}:{line}: raw std::thread outside the sanctioned "
                "homes (src/serve/pool.*, src/parallel/comm.cpp, "
                "src/serve/remote_cache.cpp) — submit work to the serve "
                "worker pool instead")
    return violations


# The one file allowed to write files in the serve tier: the fsync'd
# WAL writer. Everything durable must go through it.
WAL_WRITER = SRC / "serve" / "wal.cpp"

FILE_OUTPUT = re.compile(
    r"\bstd::ofstream\b|\bstd::fstream\b|\bfwrite\s*\(|"
    r"\bfopen\s*\(|\bfprintf\s*\(")


def check_wal_durability() -> list[str]:
    """Rule 5: file output in src/serve only via the fsync'd WAL writer."""
    violations: list[str] = []
    for path in cpp_sources(SRC / "serve"):
        text = strip_comments(path.read_text())
        rel = path.relative_to(REPO)
        if path == WAL_WRITER:
            # The writer itself must keep the durability pairing: a WAL
            # that writes without flushing + fsyncing acknowledges jobs
            # it cannot replay.
            if "fwrite" in text and ("fsync" not in text
                                     or "fflush" not in text):
                violations.append(
                    f"{rel}: WAL writer writes without fflush + fsync — "
                    "log-before-ack is broken")
            continue
        for m in FILE_OUTPUT.finditer(text):
            line = text.count("\n", 0, m.start()) + 1
            violations.append(
                f"{rel}:{line}: file output outside the WAL writer "
                "(serve/wal.cpp) — durability writes must go through "
                "the fsync'd JobLog, everything else is an unkept "
                "durability promise")
    return violations


# Rule 6: the lockcheck-migrated tiers. Everything here synchronizes
# through the checked primitives so the acquisition-order graph covers
# the whole tier; one raw mutex is a hole in the deadlock proof.
CHECKED_TIERS = (SRC / "serve", SRC / "obs")

# The checker's own implementation (it wraps the raw primitives) and the
# lock-free flight recorder (seqlock by design; must stay acquirable
# from crash paths holding arbitrary locks).
LOCK_HOMES = {
    SRC / "common" / "lockcheck.hpp",
    SRC / "common" / "lockcheck.cpp",
    SRC / "parallel" / "commcheck.hpp",
    SRC / "parallel" / "commcheck.cpp",
    SRC / "obs" / "flight.cpp",
}

RAW_LOCK = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"recursive_timed_mutex|scoped_lock|lock_guard|unique_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
    r"|\.\s*(?:lock|unlock|try_lock)\s*\(")


def check_lock_primitives() -> list[str]:
    """Rule 6: serve + obs synchronize only through lockcheck wrappers."""
    violations: list[str] = []
    for tier in CHECKED_TIERS:
        for path in cpp_sources(tier):
            if path in LOCK_HOMES:
                continue
            text = strip_comments(path.read_text())
            rel = path.relative_to(REPO)
            for m in RAW_LOCK.finditer(text):
                line = text.count("\n", 0, m.start()) + 1
                violations.append(
                    f"{rel}:{line}: raw locking primitive "
                    f"'{m.group(0).strip()}' in a lockcheck-migrated "
                    "tier — use lockcheck::CheckedMutex/CheckedLock/"
                    "CheckedCondVar (scope-ended) so the deadlock "
                    "checker sees the acquisition")
    return violations


BASELINE_PATH = REPO / "scripts" / "clang_tidy_baseline.json"

# One clang-tidy finding line: /abs/path.cpp:LINE:COL: warning: ... [check]
TIDY_FINDING = re.compile(
    r"^(/[^:\n]+):\d+:\d+: warning: .*\[([\w.,-]+)\]\s*$", re.M)


def tidy_finding_counts(stdout: str) -> dict[str, int]:
    """Findings keyed by 'relpath:check-name' (line numbers drift with
    every edit; file+check is stable enough to diff against)."""
    counts: dict[str, int] = {}
    for m in TIDY_FINDING.finditer(stdout):
        try:
            rel = str(Path(m.group(1)).resolve().relative_to(REPO))
        except ValueError:
            continue  # a system header's finding — not this repo's debt
        for check in m.group(2).split(","):
            key = f"{rel}:{check}"
            counts[key] = counts.get(key, 0) + 1
    return counts


def run_clang_tidy(build_dir: Path, update_baseline: bool) -> int:
    """Optional clang-tidy pass; returns the count of findings NOT
    explained by the committed baseline. Skips gracefully when the
    binary or compile_commands.json is unavailable."""
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("lint: clang-tidy not found — skipping static-analysis "
              "stage (repo rules still enforced)")
        return 0
    ccdb = build_dir / "compile_commands.json"
    if not ccdb.exists():
        print(f"lint: {ccdb} missing — configure with CMake first; "
              "skipping clang-tidy stage")
        return 0
    entries = json.loads(ccdb.read_text())
    files = sorted({e["file"] for e in entries
                    if str(SRC) in e["file"] and e["file"].endswith(".cpp")})
    if not files:
        return 0
    print(f"lint: clang-tidy over {len(files)} translation units")
    proc = subprocess.run(
        [tidy, "-p", str(build_dir), "--quiet", *files],
        capture_output=True, text=True, check=False)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return 1
    findings = tidy_finding_counts(proc.stdout)
    if update_baseline:
        BASELINE_PATH.write_text(
            json.dumps(findings, indent=2, sort_keys=True) + "\n")
        print(f"lint: baseline updated — {sum(findings.values())} "
              f"finding(s) across {len(findings)} (file, check) pairs "
              f"recorded in {BASELINE_PATH.relative_to(REPO)}")
        return 0
    baseline: dict[str, int] = {}
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
    new_total = 0
    for key in sorted(findings):
        extra = findings[key] - int(baseline.get(key, 0))
        if extra > 0:
            new_total += extra
            print(f"lint: clang-tidy: {extra} new finding(s) of {key} "
                  "(beyond the committed baseline — fix, or triage and "
                  "re-run with --update-tidy-baseline)", file=sys.stderr)
    stale = sorted(k for k in baseline if k not in findings)
    if stale:
        print(f"lint: note: {len(stale)} baseline entr(ies) no longer "
              "fire — consider --update-tidy-baseline to shrink the "
              "debt ledger")
    return new_total


def main(argv: list[str]) -> int:
    update_baseline = "--update-tidy-baseline" in argv
    args = [a for a in argv[1:] if a != "--update-tidy-baseline"]
    build_dir = Path(args[0]) if args else REPO / "build"
    if not SRC.is_dir():
        print(f"lint: source tree {SRC} not found", file=sys.stderr)
        return 2
    violations = (check_charge_flops() + check_raw_memcpy()
                  + check_std_endl() + check_threads()
                  + check_wal_durability() + check_lock_primitives())
    fail(violations)
    tidy_count = run_clang_tidy(build_dir, update_baseline)
    total = len(violations) + tidy_count
    if total:
        print(f"lint: FAILED ({total} violation(s))", file=sys.stderr)
        return 1
    print("lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
