#include "core/xyz.hpp"

#include <fstream>
#include <sstream>

#include "common/constants.hpp"
#include "common/elements.hpp"
#include "common/error.hpp"

namespace swraman::core {

std::vector<grid::AtomSite> read_xyz(std::istream& in) {
  std::string line;
  SWRAMAN_REQUIRE(static_cast<bool>(std::getline(in, line)),
                  "read_xyz: empty input");
  std::size_t n = 0;
  {
    std::istringstream is(line);
    SWRAMAN_REQUIRE(static_cast<bool>(is >> n) && n >= 1,
                    "read_xyz: first line must be the atom count");
  }
  SWRAMAN_REQUIRE(static_cast<bool>(std::getline(in, line)),
                  "read_xyz: missing comment line");

  std::vector<grid::AtomSite> atoms;
  atoms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SWRAMAN_REQUIRE(static_cast<bool>(std::getline(in, line)),
                    "read_xyz: truncated coordinate block");
    std::istringstream is(line);
    std::string symbol;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
    SWRAMAN_REQUIRE(static_cast<bool>(is >> symbol >> x >> y >> z),
                    "read_xyz: malformed coordinate line: " + line);
    grid::AtomSite site;
    site.z = atomic_number(symbol);
    site.pos = {x * kBohrPerAngstrom, y * kBohrPerAngstrom,
                z * kBohrPerAngstrom};
    atoms.push_back(site);
  }
  return atoms;
}

std::vector<grid::AtomSite> parse_xyz(const std::string& text) {
  std::istringstream is(text);
  return read_xyz(is);
}

std::vector<grid::AtomSite> load_xyz(const std::string& path) {
  std::ifstream f(path);
  SWRAMAN_REQUIRE(f.good(), "load_xyz: cannot open '" + path + "'");
  return read_xyz(f);
}

std::string write_xyz(const std::vector<grid::AtomSite>& atoms,
                      const std::string& comment) {
  std::ostringstream os;
  os << atoms.size() << "\n" << comment << "\n";
  os.setf(std::ios::fixed);
  os.precision(8);
  for (const grid::AtomSite& a : atoms) {
    os << element(a.z).symbol << "  " << a.pos.x * kAngstromPerBohr << "  "
       << a.pos.y * kAngstromPerBohr << "  " << a.pos.z * kAngstromPerBohr
       << "\n";
  }
  return os.str();
}

}  // namespace swraman::core
