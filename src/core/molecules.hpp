#pragma once

#include <cstddef>
#include <vector>

#include "grid/atom_grid.hpp"

// Geometry builders for the systems used across examples, tests, and the
// benchmark harness. All coordinates in Bohr; experimental equilibrium
// geometries unless noted.

namespace swraman::molecules {

using grid::AtomSite;

// H2 at the given bond length (default near the LDA minimum of this basis).
std::vector<AtomSite> h2(double bond_bohr = 1.45);

// Water, C2v, O-H 0.9572 A, H-O-H 104.5 deg; C2 axis along +z.
std::vector<AtomSite> water();

// Dihydrogen disulfide H-S-S-H (the protein S-S bridge model of Fig. 19):
// S-S 2.055 A, S-H 1.342 A, S-S-H 98 deg, dihedral 90.6 deg.
std::vector<AtomSite> hydrogen_disulfide();

// Ethylene C2H4 (C=C stretch model): C=C 1.339 A, C-H 1.087 A, HCC 121.3.
std::vector<AtomSite> ethylene();

// Formaldehyde H2CO (carbonyl / amide-I model): C=O 1.205 A, C-H 1.111 A.
std::vector<AtomSite> formaldehyde();

// Methane CH4, C-H 1.087 A (tetrahedral).
std::vector<AtomSite> methane();

// Silane SiH4, Si-H 1.480 A (tetrahedral).
std::vector<AtomSite> silane();

// n_molecules water monomers on a simple-cubic lattice (O-O spacing near
// the liquid-water 2.8 A), orientations alternated to cancel the bulk
// dipole — the growing-cluster workload of the FMM crossover bench and the
// stand-in for solvated-biomolecule system sizes.
std::vector<AtomSite> water_cluster(std::size_t n_molecules);

// All-trans polyethylene chain H(C2H4)_n H — the Fig. 16 workload.
// n repeat units -> 2n carbons + (4n + 2) hydrogens = 6n + 2 atoms.
std::vector<AtomSite> polyethylene_chain(std::size_t n_units);

// X4Y4 zinc-blende fragment: eight alternating atoms on a cube, bond along
// the body diagonals, nearest-neighbor distance = bond_angstrom (the
// cluster stand-in for the Fig. 10 semiconductors).
std::vector<AtomSite> zinc_blende_cluster(int z_cation, int z_anion,
                                          double bond_angstrom);

// Number of electrons of a neutral geometry.
double electron_count(const std::vector<AtomSite>& atoms);

}  // namespace swraman::molecules
