#include "core/molecules.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::molecules {

namespace {
constexpr double kA = kBohrPerAngstrom;
}

std::vector<AtomSite> h2(double bond_bohr) {
  return {{1, {0.0, 0.0, 0.0}}, {1, {0.0, 0.0, bond_bohr}}};
}

std::vector<AtomSite> water() {
  const double oh = 0.9572 * kA;
  const double half = 0.5 * 104.5 * kPi / 180.0;
  return {{8, {0.0, 0.0, 0.0}},
          {1, {oh * std::sin(half), 0.0, oh * std::cos(half)}},
          {1, {-oh * std::sin(half), 0.0, oh * std::cos(half)}}};
}

std::vector<AtomSite> hydrogen_disulfide() {
  const double ss = 2.055 * kA;
  const double sh = 1.342 * kA;
  const double ang = 98.0 * kPi / 180.0;
  const double dih = 90.6 * kPi / 180.0;
  // S-S along z; hydrogens off each sulfur at the SSH angle, twisted by the
  // dihedral around z.
  const double hx = sh * std::sin(ang);
  const double hz = -sh * std::cos(ang);
  return {{16, {0.0, 0.0, 0.0}},
          {16, {0.0, 0.0, ss}},
          {1, {hx, 0.0, hz}},
          {1, {hx * std::cos(dih), hx * std::sin(dih), ss - hz}}};
}

std::vector<AtomSite> ethylene() {
  const double cc = 1.339 * kA;
  const double ch = 1.087 * kA;
  const double ang = 121.3 * kPi / 180.0;  // H-C=C
  const double hx = ch * std::sin(ang);
  const double hz = ch * std::cos(ang);
  const double zc = 0.5 * cc;
  return {{6, {0.0, 0.0, zc}},     {6, {0.0, 0.0, -zc}},
          {1, {hx, 0.0, zc - hz}}, {1, {-hx, 0.0, zc - hz}},
          {1, {hx, 0.0, -zc + hz}}, {1, {-hx, 0.0, -zc + hz}}};
}

std::vector<AtomSite> formaldehyde() {
  const double co = 1.205 * kA;
  const double ch = 1.111 * kA;
  const double ang = 121.9 * kPi / 180.0;  // H-C=O
  const double hx = ch * std::sin(ang);
  const double hz = -ch * std::cos(ang);
  return {{6, {0.0, 0.0, 0.0}},
          {8, {0.0, 0.0, co}},
          {1, {hx, 0.0, hz}},
          {1, {-hx, 0.0, hz}}};
}

namespace {

std::vector<AtomSite> tetrahedral(int z_center, double bond_bohr) {
  const double c = bond_bohr / std::sqrt(3.0);
  return {{z_center, {0.0, 0.0, 0.0}},
          {1, {c, c, c}},
          {1, {c, -c, -c}},
          {1, {-c, c, -c}},
          {1, {-c, -c, c}}};
}

}  // namespace

std::vector<AtomSite> methane() { return tetrahedral(6, 1.087 * kA); }

std::vector<AtomSite> silane() { return tetrahedral(14, 1.480 * kA); }

std::vector<AtomSite> water_cluster(std::size_t n_molecules) {
  SWRAMAN_REQUIRE(n_molecules >= 1, "water_cluster: need >= 1 molecule");
  const std::vector<AtomSite> mono = water();
  // Cubic lattice with the liquid-water O-O spacing; enough cells along
  // each axis to hold the requested count.
  const double spacing = 2.8 * kA;
  std::size_t side = 1;
  while (side * side * side < n_molecules) ++side;
  std::vector<AtomSite> cluster;
  cluster.reserve(3 * n_molecules);
  std::size_t placed = 0;
  for (std::size_t i = 0; i < side && placed < n_molecules; ++i) {
    for (std::size_t j = 0; j < side && placed < n_molecules; ++j) {
      for (std::size_t k = 0; k < side && placed < n_molecules; ++k) {
        const Vec3 origin{static_cast<double>(i) * spacing,
                          static_cast<double>(j) * spacing,
                          static_cast<double>(k) * spacing};
        // Alternate orientation checkerboard-style: flipping z cancels the
        // monomer dipoles pairwise across the lattice.
        const double flip = ((i + j + k) % 2 == 0) ? 1.0 : -1.0;
        for (const AtomSite& a : mono) {
          cluster.push_back(
              {a.z, {origin.x + a.pos.x, origin.y + a.pos.y,
                     origin.z + flip * a.pos.z}});
        }
        ++placed;
      }
    }
  }
  return cluster;
}

std::vector<AtomSite> polyethylene_chain(std::size_t n_units) {
  SWRAMAN_REQUIRE(n_units >= 1, "polyethylene_chain: need >= 1 unit");
  // All-trans zigzag backbone in the xz plane: C-C 1.54 A, CCC 113.5 deg,
  // C-H 1.09 A with the H pair in the plane perpendicular to the backbone.
  const double cc = 1.54 * kA;
  const double ccc = 113.5 * kPi / 180.0;
  const double ch = 1.09 * kA;
  const double dz = cc * std::sin(ccc / 2.0);
  const double dx = cc * std::cos(ccc / 2.0);
  const double hch_half = 0.5 * 107.0 * kPi / 180.0;

  std::vector<AtomSite> atoms;
  const std::size_t n_carbon = 2 * n_units;
  std::vector<Vec3> carbons(n_carbon);
  for (std::size_t i = 0; i < n_carbon; ++i) {
    carbons[i] = {(i % 2 == 0) ? 0.0 : dx, 0.0,
                  dz * static_cast<double>(i)};
  }
  for (std::size_t i = 0; i < n_carbon; ++i) {
    atoms.push_back({6, carbons[i]});
    // Two hydrogens per carbon, in the plane bisecting the backbone angle:
    // mostly +-y with a slight x tilt away from the chain.
    const double tilt = (i % 2 == 0) ? -1.0 : 1.0;
    const Vec3 hy{tilt * ch * std::cos(hch_half) * 0.55,
                  ch * std::sin(hch_half), 0.0};
    const Vec3 hy2{tilt * ch * std::cos(hch_half) * 0.55,
                   -ch * std::sin(hch_half), 0.0};
    atoms.push_back({1, carbons[i] + hy});
    atoms.push_back({1, carbons[i] + hy2});
  }
  // Terminal hydrogens extend the backbone direction.
  const Vec3 cap0 = carbons[0] + Vec3{dx * 0.7, 0.0, -ch * 0.8};
  const Vec3 capN =
      carbons[n_carbon - 1] +
      Vec3{(n_carbon % 2 == 0 ? -1.0 : 1.0) * dx * 0.7, 0.0, ch * 0.8};
  atoms.push_back({1, cap0});
  atoms.push_back({1, capN});
  return atoms;
}

std::vector<AtomSite> zinc_blende_cluster(int z_cation, int z_anion,
                                          double bond_angstrom) {
  // Cubane-like X4Y4 fragment: alternating species on cube corners, edge
  // length = the zinc-blende bond length (unlike nearest neighbors).
  const double d = 0.5 * bond_angstrom * kA;
  std::vector<AtomSite> atoms;
  // Alternating cube corners: cations where x*y*z parity even.
  for (int sx : {-1, 1})
    for (int sy : {-1, 1})
      for (int sz : {-1, 1}) {
        const bool cation = (sx * sy * sz) > 0;
        atoms.push_back(
            {cation ? z_cation : z_anion,
             {sx * d, sy * d, sz * d}});
      }
  return atoms;
}

double electron_count(const std::vector<AtomSite>& atoms) {
  double n = 0.0;
  for (const AtomSite& a : atoms) n += static_cast<double>(a.z);
  return n;
}

}  // namespace swraman::molecules
