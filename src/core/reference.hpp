#pragma once

#include <string>
#include <vector>

// Reference data for the evaluation benchmarks: the experimental Raman
// band table of the RBD protein (positions/assignments as read from the
// paper's Fig. 19 discussion) and the paper's reported performance numbers
// (so each bench can print paper-vs-measured side by side).

namespace swraman::core {

struct RamanBand {
  double position_cm = 0.0;        // experimental band center
  double calculated_cm = 0.0;      // value the paper reports (0 = n/a)
  std::string assignment;
  std::string fragment;            // which model fragment reproduces it
};

// Fig. 19 band table: S-S, Tyr ring, Phe breathing, Trp, amide III, C=C,
// amide I.
const std::vector<RamanBand>& rbd_experimental_bands();

// Paper-reported performance targets used in EXPERIMENTS.md comparisons.
struct PaperTargets {
  // Fig. 12 (response potential on the CPE cluster vs MPE).
  double tiling_speedup_lo = 10.0;
  double tiling_speedup_hi = 15.0;
  double tiling_db_speedup = 16.0;
  double tiling_db_simd_speedup = 20.0;
  // Fig. 14 (RBD DFPT / iteration, Sunway vs Xeon per process).
  double fig14_speedup_at_64 = 9.70;
  double fig14_speedup_at_128 = 8.38;
  double fig14_speedup_at_256 = 7.80;
  // Fig. 15 (Allreduce optimization).
  double fig15_speedup_at_256 = 2.22;
  double fig15_speedup_at_1024 = 2.61;
  // Fig. 16 (FHI-aims vs Gaussian, chains 14 -> 50 atoms).
  double fig16_ratio_small = 2.27;
  double fig16_ratio_large = 1.25;
  // Fig. 17 (strong scaling 10,240 -> 300,800 processes).
  double fig17_speedup = 25.0;
  double fig17_efficiency = 0.845;
  // Fig. 18 (weak scaling).
  double fig18_efficiency = 0.844;
  std::vector<double> fig18_times = {22345, 22375, 23235, 26085, 26472};
  // Fig. 10 (dielectric constants): mean relative error all-electron vs
  // pseudopotential across the 19 materials.
  double fig10_mre = 0.01;
  // Fig. 11 (H2O Raman, NAO vs GTO backend): relative error in the O-H
  // stretching region.
  double fig11_rel_err = 0.005;
};

const PaperTargets& paper_targets();

// The 19 zinc-blende materials of Fig. 10 with experimental-ish bond
// lengths (Angstrom) for the cluster substitution.
struct ZincBlendeMaterial {
  std::string name;
  int z_cation = 0;
  int z_anion = 0;
  double bond_angstrom = 0.0;
};

const std::vector<ZincBlendeMaterial>& fig10_materials();

}  // namespace swraman::core
