#include "core/reference.hpp"

namespace swraman::core {

const std::vector<RamanBand>& rbd_experimental_bands() {
  static const std::vector<RamanBand> bands{
      {525.0, 0.0, "S-S bridge stretching (500-550 region)", "H2S2"},
      {800.0, 0.0, "tyrosine phenol-ring in-plane breathing", "(aromatic)"},
      {1001.0, 1003.0, "Trp/Phe ring breathing", "(aromatic)"},
      {1112.0, 1117.0, "Trp band", "(aromatic)"},
      {1280.0, 0.0, "amide III (1200-1360 region)", "H2CO"},
      {1604.0, 0.0, "C=C stretching", "C2H4"},
      {1650.0, 0.0, "amide I (C=O stretching)", "H2CO"},
  };
  return bands;
}

const PaperTargets& paper_targets() {
  static const PaperTargets t;
  return t;
}

const std::vector<ZincBlendeMaterial>& fig10_materials() {
  // Nearest-neighbor bond lengths from zinc-blende lattice constants
  // (d = sqrt(3)/4 a); names as labeled in the paper's Fig. 10.
  static const std::vector<ZincBlendeMaterial> m{
      {"CC", 6, 6, 1.545},    {"BN", 5, 7, 1.567},   {"BeO", 4, 8, 1.65},
      {"SiC", 14, 6, 1.888},  {"BP", 5, 15, 1.965},  {"AlN", 13, 7, 1.90},
      {"BeS", 4, 16, 2.10},   {"BAs", 5, 33, 2.069}, {"AlP", 13, 15, 2.367},
      {"SiSi", 14, 14, 2.352},{"GeC", 32, 6, 2.03},  {"AlAs", 13, 33, 2.451},
      {"BeSe", 4, 34, 2.20},  {"SiGe", 14, 32, 2.385},{"BSb", 5, 51, 2.27},
      {"BeTe", 4, 52, 2.40},  {"AlSb", 13, 51, 2.656},{"SnC", 50, 6, 2.05},
      {"SiSn", 14, 50, 2.52},
  };
  return m;
}

}  // namespace swraman::core
