#pragma once

#include <cstddef>

#include "scaling/simulator.hpp"

// Workload synthesis: DFPT kernel statistics at RBD-protein scale
// (3006 atoms) and the Table-1 silicon cases, derived from the real
// per-point / per-basis-function operation counts of the implemented
// kernels. This is what drives the performance figures (12-15, 17, 18)
// at scales the QM engine itself cannot run on this machine
// (DESIGN.md Sec. 1, RBD substitution).

namespace swraman::core {

struct SystemScale {
  std::size_t n_atoms = 3006;
  double points_per_atom = 1400.0;   // light-grid average
  double basis_per_atom = 9.0;       // light NAO (biological element mix)
  double points_per_batch = 200.0;
  double local_fns_per_batch = 140.0;  // basis functions reaching a batch
  int multipole_lmax = 6;
  double radial_shells_per_atom = 40.0;
};

// The receptor-binding-domain protein of the paper (PDB 6LZG + H): 3006
// atoms, roughly C:H:N:O:S biological composition.
SystemScale rbd_protein();

// Table 1 silicon-solid benchmark cases (#1..#6): grid points, basis count,
// average points per batch — encoded verbatim from the paper.
struct SiCase {
  const char* name;
  std::size_t grid_points;
  std::size_t n_basis;
  std::size_t points_per_batch;
};
const std::vector<SiCase>& table1_cases();

// DFPT polarizability evaluations of one full Raman job at N atoms: the
// 6N displaced geometries of the central-difference d(alpha)/dR loop plus
// the equilibrium reference (paper Sec. 2.3).
constexpr std::size_t n_raman_polarizabilities(std::size_t n_atoms) {
  return 6 * n_atoms + 1;
}

// Builds the three DFPT kernel workloads (n1, v1, h1) for one geometry of
// the given system scale, with per-element costs matching the implemented
// kernels' operation counts.
scaling::RamanJob make_dfpt_job(const SystemScale& scale);

// Kernel workloads for one Table-1 case (used by Figs. 12-13).
sunway::KernelWorkload si_case_v1(const SiCase& c);
sunway::KernelWorkload si_case_n1(const SiCase& c);
sunway::KernelWorkload si_case_h1(const SiCase& c);

}  // namespace swraman::core
