#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "grid/atom_grid.hpp"

// XYZ-format geometry I/O (coordinates in Angstrom, converted to Bohr
// internally) — the interchange format the CLI and downstream users speak.

namespace swraman::core {

// Parses XYZ text: first line atom count, second line comment, then
// "Symbol x y z" rows. Throws swraman::Error on malformed input.
std::vector<grid::AtomSite> read_xyz(std::istream& in);

// Convenience: parse from a string.
std::vector<grid::AtomSite> parse_xyz(const std::string& text);

// Loads from a file path.
std::vector<grid::AtomSite> load_xyz(const std::string& path);

// Serializes a geometry back to XYZ text (Angstrom).
std::string write_xyz(const std::vector<grid::AtomSite>& atoms,
                      const std::string& comment = "");

}  // namespace swraman::core
