#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

#include "grid/ylm.hpp"

namespace swraman::core {

namespace {

// Operation-count constants matching the implemented kernels
// (sunway/kernels.cpp): the CSI inner loop costs ~12 flops per (point,
// channel) plus Y_lm recurrences; density/Hamiltonian batch contractions
// cost 2 flops per (point, fn, fn).
constexpr double kCsiFlopsPerChannel = 12.0;
constexpr double kCsiOverheadFlops = 30.0;
constexpr double kCoeffReuse = 2.0;   // interval blocks rarely shared across
                                      // scattered points

// Atoms whose multipole field a point actually evaluates (interaction
// range of the real-space sum in a dense molecular system).
constexpr double kNeighborAtoms = 30.0;

double n_lm(int lmax) { return static_cast<double>(grid::n_lm(lmax)); }

// Basis functions whose cutoff reaches a batch, given batch size: compact
// batches see fewer functions; the reach grows slowly (~cube root of the
// batch volume).
double local_fns(const SystemScale& s, double points_per_batch) {
  return s.local_fns_per_batch *
         std::pow(points_per_batch / s.points_per_batch, 0.33);
}

// LDM re-fetch traffic for batches whose value tiles exceed the
// double-buffered scratchpad sweet spot (~240 points x 3 arrays): the
// spilled fraction of the tile streams twice. Applies to the scratchpad
// machine only; caches absorb it on the CPU/MPE.
double refetch_bytes(double points_per_batch, double bytes_per_element) {
  const double sweet = 240.0;
  if (points_per_batch <= sweet) return 0.0;
  return bytes_per_element * (points_per_batch - sweet) / points_per_batch;
}

sunway::KernelWorkload v1_workload(double points, int lmax,
                                   double neighbor_atoms) {
  sunway::KernelWorkload w;
  w.name = "V1";
  w.elements = points;
  const double channels = n_lm(lmax);
  w.flops_per_element =
      neighbor_atoms * (kCsiFlopsPerChannel * channels + kCsiOverheadFlops);
  // Coordinates + output + the per-interval coefficient blocks (amortized
  // across the points sharing an interval).
  w.stream_bytes_per_element =
      32.0 + neighbor_atoms * 4.0 * channels * 8.0 / kCoeffReuse;
  w.irregular_bytes_per_element = 0.0;
  w.vectorizable_fraction = 0.35;  // the poly3/dot inner loops
  return w;
}

sunway::KernelWorkload nh_workload(const char* name, double points,
                                   double nloc, double points_per_batch,
                                   bool scatter) {
  sunway::KernelWorkload w;
  w.name = name;
  w.elements = points;
  w.flops_per_element = 2.0 * nloc * nloc;
  // Basis-value tiles + the per-batch density-matrix block share; the
  // Hamiltonian path additionally writes the scatter-add contributions
  // (the RMA-reduced large array).
  w.stream_bytes_per_element =
      nloc * 8.0 + nloc * nloc * 8.0 / points_per_batch;
  if (scatter) {
    w.irregular_bytes_per_element =
        1.5 * nloc * nloc * 8.0 / points_per_batch;
  }
  w.ldm_refetch_bytes_per_element =
      refetch_bytes(points_per_batch, w.stream_bytes_per_element);
  // Dense fma loops; very small batches leave vector lanes underfilled,
  // and LDM-spilling batches interleave loads into the vector pipeline.
  double vf = 0.9 * (1.0 - 12.0 / points_per_batch);
  if (points_per_batch > 240.0) {
    vf *= 1.0 - 0.35 * (points_per_batch - 240.0) / points_per_batch;
  }
  w.vectorizable_fraction = vf;
  return w;
}

}  // namespace

SystemScale rbd_protein() { return SystemScale{}; }

const std::vector<SiCase>& table1_cases() {
  static const std::vector<SiCase> cases{
      {"#1", 35836, 18, 100}, {"#2", 56860, 18, 100},
      {"#3", 35836, 36, 100}, {"#4", 56860, 50, 100},
      {"#5", 35836, 36, 200}, {"#6", 35836, 36, 300},
  };
  return cases;
}

scaling::RamanJob make_dfpt_job(const SystemScale& scale) {
  scaling::RamanJob job;
  const double points =
      static_cast<double>(scale.n_atoms) * scale.points_per_atom;
  job.n_batches = static_cast<std::size_t>(points / scale.points_per_batch);
  job.points_per_batch = scale.points_per_batch;

  job.v1 = v1_workload(points, scale.multipole_lmax, kNeighborAtoms);
  const double nloc = local_fns(scale, scale.points_per_batch);
  job.n1 = nh_workload("n1", points, nloc, scale.points_per_batch, false);
  job.h1 = nh_workload("H1", points, nloc, scale.points_per_batch, true);

  // Allreduce payload per DFPT iteration: the multipole moment array
  // (atoms x channels).
  job.allreduce_bytes = static_cast<double>(scale.n_atoms) *
                        n_lm(scale.multipole_lmax) * 8.0;
  // Per-iteration MPE-serial bookkeeping (mixing, DIIS, orchestration) that
  // the CPE port does not touch — grows with system size, independent of
  // the group's process count.
  job.mpe_serial_seconds = 1.4e-6 * static_cast<double>(scale.n_atoms);
  return job;
}

sunway::KernelWorkload si_case_v1(const SiCase& c) {
  // Periodic silicon: real-space CSI plus the reciprocal (Ewald) update;
  // the basis count does not enter (Fig. 13's observation). Denser grids
  // share spline intervals between more points, improving coefficient
  // reuse — the origin of the ~7% higher speedup of cases #2/#4.
  sunway::KernelWorkload w =
      v1_workload(static_cast<double>(c.grid_points), 6, 8.0);
  w.cpe_reuse_factor = static_cast<double>(c.grid_points) / 35836.0;
  w.name = std::string("V1 ") + c.name;
  // kernel2 contribution: ~300 G vectors x 40 flops, structure factors
  // streamed after the cross-host-kernel tiling.
  w.flops_per_element += 300.0 * 40.0;
  w.stream_bytes_per_element += 300.0 * 6.0 * 8.0 / 64.0;
  w.vectorizable_fraction = 0.35;  // sincos-heavy reciprocal part
  return w;
}

sunway::KernelWorkload si_case_n1(const SiCase& c) {
  sunway::KernelWorkload w =
      nh_workload("n1", static_cast<double>(c.grid_points),
                  static_cast<double>(c.n_basis),
                  static_cast<double>(c.points_per_batch), false);
  w.name = std::string("n1 ") + c.name;
  return w;
}

sunway::KernelWorkload si_case_h1(const SiCase& c) {
  sunway::KernelWorkload w =
      nh_workload("H1", static_cast<double>(c.grid_points),
                  static_cast<double>(c.n_basis),
                  static_cast<double>(c.points_per_batch), true);
  w.name = std::string("H1 ") + c.name;
  return w;
}

}  // namespace swraman::core
