#pragma once

// swraman — all-electron ab initio Raman spectra for large systems, with a
// Sunway SW26010Pro many-core execution model. Umbrella header: pulls in
// the public API of every subsystem.
//
// Quick start:
//
//   #include "core/swraman.hpp"
//   using namespace swraman;
//
//   auto mol = molecules::water();
//   scf::ScfEngine scf(mol, {});
//   auto gs = scf.solve();                   // ground-state DFT
//   dfpt::DfptEngine dfpt(scf, gs);
//   auto alpha = dfpt.polarizability();      // DFPT response (Eq. 4)
//   raman::RamanCalculator raman(mol, {});
//   auto spectrum = raman.compute();         // full Raman pipeline (Eq. 5)

#include "common/constants.hpp"
#include "common/elements.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/molecules.hpp"
#include "core/reference.hpp"
#include "core/workload.hpp"
#include "core/xyz.hpp"
#include "dfpt/dfpt_engine.hpp"
#include "grid/atom_grid.hpp"
#include "grid/batch.hpp"
#include "grid/loadbalance.hpp"
#include "hartree/ewald.hpp"
#include "hartree/multipole.hpp"
#include "parallel/comm.hpp"
#include "raman/checkpoint.hpp"
#include "raman/raman.hpp"
#include "raman/relax.hpp"
#include "robustness/fault.hpp"
#include "raman/thermochemistry.hpp"
#include "scaling/simulator.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"
#include "scf/analysis.hpp"
#include "scf/scf_engine.hpp"
#include "sunway/cost_model.hpp"
#include "sunway/kernels.hpp"
#include "sunway/rma_reduce.hpp"
