#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/lockcheck.hpp"
#include "obs/jobtrace.hpp"
#include "parallel/comm.hpp"
#include "raman/checkpoint.hpp"

// Cross-shard displacement-cache fabric (DESIGN.md S12). Every shard of
// the durable serve tier publishes its locally computed canonical-frame
// GeometryRecords into a per-shard table; peers query those tables over
// the p2p comm layer (one request/response round trip per lookup) before
// falling back to local compute.
//
// Consistency model: bounded staleness over immutable data. Records are
// content-addressed — a canonical key fully determines its record — so a
// response computed against an older table can only miss, never return a
// wrong value; any hit is exact and bitwise identical to what local
// compute would have produced. Lookups are bounded by lookup_timeout_s
// (a dead peer, a slow server sweep, or the injected
// serve.cache.remote_timeout fault all degrade to a miss), so the serve
// path never blocks on a remote shard.
//
// Threading: each started shard runs one server thread sweeping its
// peers' request mailboxes. Requests and responses ride distinct tags of
// one shared comm group — point-to-point operations are context-locked,
// so a shard's worker threads may issue lookups while its server thread
// answers peers on the same endpoint.

namespace swraman::serve {

// Fault site: one remote lookup times out (response dropped on the floor)
// and the caller falls back to local compute.
inline constexpr const char* kFaultRemoteTimeout =
    "serve.cache.remote_timeout";

class RemoteCacheFabric {
 public:
  struct Options {
    std::size_t n_shards = 1;
    double poll_s = 0.002;           // server-side per-peer poll slice
    double lookup_timeout_s = 0.05;  // requester budget before fallback
    parallel::CommConfig comm;       // transport policy of the group
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t timeouts = 0;  // expired waits + injected timeouts
    std::uint64_t served = 0;    // requests answered by server threads
    std::uint64_t published = 0;
  };

  explicit RemoteCacheFabric(Options options);
  ~RemoteCacheFabric();
  RemoteCacheFabric(const RemoteCacheFabric&) = delete;
  RemoteCacheFabric& operator=(const RemoteCacheFabric&) = delete;

  // Starts/stops shard's server thread. stop() also clears the shard's
  // table — a killed shard's incarnation takes its published results with
  // it, exactly like a crashed process would. Both are idempotent.
  void start(std::size_t shard);
  void stop(std::size_t shard);
  [[nodiscard]] bool running(std::size_t shard) const;

  // Inserts a canonical-frame record into shard's own table (never
  // blocks on the network; must not throw — serve worker threads call it
  // after every locally computed displacement).
  void publish(std::size_t shard, std::uint64_t key,
               const raman::GeometryRecord& rec);

  // Asks `peer` for `key` from `shard`'s endpoint; true + *out on a hit.
  // Misses, timeouts, dead peers and the injected timeout fault all
  // return false — the caller computes locally. `ctx` is the requesting
  // job's trace context: it rides the request frame so the serving shard
  // stamps a "remote.serve" event onto the same cross-shard timeline
  // (the default inactive context traces nothing). `n_forces` is the
  // expected force-vector length of the record: 0 for displacement
  // records, 3N for the bec tier's field-force records — it sizes the
  // response frame, and a stored record whose force vector disagrees
  // answers as a miss.
  bool lookup(std::size_t shard, std::size_t peer, std::uint64_t key,
              raman::GeometryRecord* out,
              const obs::TraceContext& ctx = {}, std::size_t n_forces = 0);

  [[nodiscard]] std::size_t n_shards() const { return nodes_.size(); }
  [[nodiscard]] Stats stats() const;

 private:
  struct Node {
    lockcheck::CheckedMutex mutex{"serve.remote_cache.node"};
    std::map<std::uint64_t, raman::GeometryRecord> table;
    std::thread server;
    std::atomic<bool> run{false};
  };

  void serve_loop(std::size_t shard);

  Options options_;
  std::vector<parallel::Communicator> comms_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<int> next_resp_tag_{1};  // tag 0 carries requests
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace swraman::serve
