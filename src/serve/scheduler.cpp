#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace swraman::serve {

FairShareScheduler::FairShareScheduler(AdmissionLimits limits)
    : limits_(limits) {}

AdmissionDecision FairShareScheduler::admit(const JobSpec& spec,
                                            const JobEstimate& est,
                                            bool force) {
  lockcheck::assert_held(guard_, "FairShareScheduler::admit");
  AdmissionDecision d;
  d.outstanding_seconds = outstanding_seconds_;
  if (!force &&
      outstanding_tasks_ + est.n_tasks > limits_.max_queued_tasks) {
    d.admitted = false;
    d.reason = "queue-depth";
    return d;
  }
  if (!force && modeled_bytes_ + est.modeled_bytes > limits_.max_modeled_bytes) {
    d.admitted = false;
    d.reason = "modeled-memory";
    return d;
  }
  outstanding_tasks_ += est.n_tasks;
  outstanding_seconds_ += est.total_seconds;
  modeled_bytes_ += est.modeled_bytes;
  Tenant& t = tenants_[spec.client];
  t.weight = std::max(t.weight, spec.weight);
  obs::gauge_set("serve.memory.modeled_bytes", modeled_bytes_);
  obs::gauge_set("serve.admission.outstanding_tasks",
                 static_cast<double>(outstanding_tasks_));
  return d;
}

void FairShareScheduler::release(const JobEstimate& est) {
  lockcheck::assert_held(guard_, "FairShareScheduler::release");
  SWRAMAN_ASSERT(outstanding_tasks_ >= est.n_tasks,
                 "FairShareScheduler::release: task underflow");
  outstanding_tasks_ -= est.n_tasks;
  outstanding_seconds_ = std::max(0.0, outstanding_seconds_ -
                                           est.total_seconds);
  modeled_bytes_ = std::max(0.0, modeled_bytes_ - est.modeled_bytes);
  obs::gauge_set("serve.memory.modeled_bytes", modeled_bytes_);
  obs::gauge_set("serve.admission.outstanding_tasks",
                 static_cast<double>(outstanding_tasks_));
}

void FairShareScheduler::push(const std::string& tenant, int priority,
                              double cost_seconds, TaskRef ref) {
  lockcheck::assert_held(guard_, "FairShareScheduler::push");
  Tenant& t = tenants_[tenant];
  if (t.idle()) {
    // Returning tenant: fast-forward its clock to the active minimum so
    // idle time is neither banked as credit nor counted as lag.
    double vmin = t.virtual_seconds;
    bool any = false;
    for (const auto& [name, other] : tenants_) {
      if (!other.idle()) {
        vmin = any ? std::min(vmin, other.virtual_seconds)
                   : other.virtual_seconds;
        any = true;
      }
    }
    if (any) t.virtual_seconds = std::max(t.virtual_seconds, vmin);
  }
  t.ready[priority].push_back({ref, cost_seconds});
  ++n_ready_;
  obs::gauge_set("serve.queue.depth", static_cast<double>(n_ready_));
}

std::size_t FairShareScheduler::take(std::vector<TaskRef>* out,
                                     double target_seconds,
                                     std::size_t max_tasks) {
  lockcheck::assert_held(guard_, "FairShareScheduler::take");
  if (n_ready_ == 0 || max_tasks == 0) return 0;
  Tenant* pick = nullptr;
  for (auto& [name, t] : tenants_) {
    if (t.idle()) continue;
    if (pick == nullptr || t.virtual_seconds < pick->virtual_seconds) {
      pick = &t;
    }
  }
  SWRAMAN_ASSERT(pick != nullptr, "FairShareScheduler: ready count drifted");
  std::size_t taken = 0;
  double cost = 0.0;
  while (taken < max_tasks && !pick->idle()) {
    auto bucket = pick->ready.begin();
    ReadyTask task = bucket->second.front();
    if (taken > 0 && cost + task.cost_seconds > target_seconds) break;
    bucket->second.pop_front();
    if (bucket->second.empty()) pick->ready.erase(bucket);
    --n_ready_;
    cost += task.cost_seconds;
    pick->virtual_seconds += task.cost_seconds / pick->weight;
    out->push_back(task.ref);
    ++taken;
  }
  obs::gauge_set("serve.queue.depth", static_cast<double>(n_ready_));
  return taken;
}

double FairShareScheduler::virtual_time(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.virtual_seconds;
}

}  // namespace swraman::serve
