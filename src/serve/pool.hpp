#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lockcheck.hpp"
#include "serve/scheduler.hpp"

// Work-stealing worker pool (DESIGN.md S11). Each worker owns a deque:
// continuations (row/assembly tasks unlocked by a completion) are pushed
// to the *front* of the finishing worker's deque and popped from the
// front — depth-first, cache-warm. Idle workers first steal from the
// *back* of a victim's deque (oldest, widest work), then pull a
// cost-model-sized batch from the central fair-share scheduler through
// the refill callback, and finally park on a condition variable with a
// short timed wait.
//
// This file is the repo's only sanctioned home for raw std::thread
// construction outside the SPMD runtime (scripts/lint.py enforces it):
// every thread is joined in the destructor, and a simulated worker death
// (fault site serve.worker.death) exits the loop only after handing the
// worker's entire deque back through the orphan callback — the adoption
// path the robustness layer's CPE-death recovery established.

namespace swraman::serve {

// Fault site: a worker thread dies before starting its next task. The
// last surviving worker ignores the fault (the service must keep making
// progress), mirroring the balancer's surviving-CPE guarantee.
inline constexpr const char* kFaultWorkerDeath = "serve.worker.death";

class WorkerPool {
 public:
  struct Options {
    std::size_t n_workers = 2;
    bool steal = true;             // disable -> strict per-worker FIFO
    double pull_target_seconds = 0.05;  // refill batch size, modeled
    std::size_t pull_max_tasks = 64;
    // Log-context prefix of the worker threads: worker i tags its log
    // lines "<log_prefix>/w<i>" ("w<i>" when empty), so a shard's worker
    // output is grep-able by shard and worker id.
    std::string log_prefix;
  };

  // run: execute one task (must not throw — the service owns retries).
  // refill: fetch up to (target_seconds, max_tasks) of central work;
  //         returns the number of tasks appended to the vector.
  // orphan: tasks abandoned by a dying worker, to be re-queued centrally.
  using RunFn = std::function<void(std::size_t worker, TaskRef ref)>;
  using RefillFn =
      std::function<std::size_t(double target_seconds, std::size_t max_tasks,
                                std::vector<TaskRef>* out)>;
  using OrphanFn = std::function<void(const std::vector<TaskRef>& tasks)>;

  WorkerPool(Options options, RunFn run, RefillFn refill, OrphanFn orphan);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Launches the worker threads (idempotent). A pool can be constructed
  // paused, jobs submitted deterministically, then started.
  void start();

  // Asks workers to finish and joins them. Outstanding local tasks are
  // still executed before a worker exits.
  void stop();

  // Push a continuation onto `worker`'s deque front (any thread).
  void push_local(std::size_t worker, TaskRef ref);

  // Wake idle workers: new central work is available.
  void notify();

  [[nodiscard]] std::size_t n_workers() const { return deques_.size(); }
  [[nodiscard]] std::size_t alive() const {
    return alive_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool started() const {
    return started_.load(std::memory_order_relaxed);
  }

 private:
  struct Deque {
    lockcheck::CheckedMutex mutex{"serve.pool.deque"};
    std::deque<TaskRef> tasks;
  };

  void worker_loop(std::size_t id);
  bool pop_local(std::size_t id, TaskRef* out);
  bool steal(std::size_t thief, TaskRef* out);
  // True when the worker should simulate death; drains the deque into the
  // orphan callback (including `pending` if any).
  bool die(std::size_t id, const TaskRef* pending);

  Options options_;
  RunFn run_;
  RefillFn refill_;
  OrphanFn orphan_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> alive_{0};
  lockcheck::CheckedMutex idle_mutex_{"serve.pool.idle"};
  lockcheck::CheckedCondVar idle_cv_;
};

}  // namespace swraman::serve
