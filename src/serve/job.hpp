#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/workload.hpp"
#include "grid/atom_grid.hpp"
#include "linalg/matrix.hpp"
#include "raman/raman.hpp"

// Job model of the serving layer (DESIGN.md S11). A JobSpec is one Raman
// request from one tenant: a molecule (or a modeled system scale for
// machine-size workloads the QM engine cannot run here), the engine
// settings, a priority inside the tenant's share, and the tenant's
// fair-share weight. The service decomposes a job into its 6N displaced
// DFPT geometry tasks (paper Sec. 2.3) plus the per-coordinate
// derivative rows and the final assembly — the dependency DAG in
// dag.hpp — and deduplicates displacement evaluations across jobs and
// tenants through a content-addressed cache keyed by the canonical form
// defined here.

namespace swraman::serve {

enum class EngineKind {
  Real,     // SCF + DFPT on the actual molecule (scf/, dfpt/)
  Modeled,  // cost-model-calibrated synthetic evaluation (core/workload)
};

// Accuracy tier of one job (DESIGN.md S15). Dfpt is the full pipeline:
// 6N displaced-geometry DFPT polarizabilities. Bec is the RASCBEC fast
// tier: a fixed 13-point finite-field force stencil at the equilibrium
// geometry (raman/bec.hpp), O(1) in the atom count, priced and admitted
// accordingly.
enum class Tier : std::uint8_t { Dfpt, Bec };

const char* tier_name(Tier t);

struct JobSpec {
  std::string client = "default";  // tenant id (fair-share accounting unit)
  std::string name;                // label for traces and reports
  int priority = 0;                // higher runs earlier within the tenant
  double weight = 1.0;             // tenant fair-share weight (>= weight
                                   // seen on earlier jobs of the tenant)
  EngineKind engine = EngineKind::Modeled;

  // Real engine: molecule + the full Raman option set (displacement step,
  // SCF/DFPT settings, checkpoint_path for the displaced-geometry loop).
  std::vector<grid::AtomSite> atoms;
  raman::RamanOptions options;
  // Also compute the Hessian/normal modes and return activities + a
  // broadened spectrum (Real only; adds one heavy Hessian task).
  bool with_modes = false;

  // Modeled engine: the system scale that core::make_dfpt_job turns into
  // kernel workloads; per-task cost and results are deterministic
  // functions of (scale, seed, coordinate, sign).
  core::SystemScale scale;

  // Bounded retry per task on transient failures (comm timeouts, injected
  // worker faults) — mirrors RamanOptions::geometry_attempts.
  int attempts = 2;

  // Accuracy tier: Dfpt decomposes into 6N displacement tasks, Bec into
  // the 13 field-force tasks of raman/bec.hpp. Part of the settings
  // fingerprint — the two tiers never share cache entries.
  Tier tier = Tier::Dfpt;
  // Finite field strength of the bec stencil (atomic units); result-
  // determining, so fingerprinted and WAL-encoded.
  double bec_field = 1e-2;

  [[nodiscard]] std::size_t n_atoms() const {
    return engine == EngineKind::Real ? atoms.size() : scale.n_atoms;
  }
};

enum class JobStatus { Queued, Running, Completed, Failed, Rejected };

const char* job_status_name(JobStatus s);

struct JobResult {
  JobStatus status = JobStatus::Queued;
  std::string error;
  linalg::Matrix dalpha;  // (3N x 9) d(alpha)/dR, as in RamanCalculator
  linalg::Matrix dmu;     // (3N x 3) dipole derivatives
  raman::RamanSpectrum spectrum;      // with_modes only
  raman::BroadenedSpectrum broadened;  // with_modes only
  int tasks_executed = 0;  // engine evaluations this job itself performed
  double latency_s = 0.0;  // submit -> completion wall time
};

// 64-bit FNV-1a over raw bytes; the content-address of cache keys and the
// checksum tests use for bitwise-determinism assertions.
class Hash64 {
 public:
  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void f64(double v);  // bit pattern; -0.0 normalized to +0.0
  void str(const std::string& s);
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

// Signed axis permutation (one of the 48 orthogonal cube symmetries):
// transformed[i] = sign[i] * original[perm[i]]. The cache canonicalizes
// displaced geometries under this group, so symmetry-equivalent
// displacements (water's +y / -y oxygen steps, H2's +x / -x) share one
// evaluation; the stored tensor lives in the canonical frame and is
// rotated back exactly (a signed permutation moves bit patterns, it does
// no arithmetic).
struct AxisTransform {
  std::array<int, 3> perm{0, 1, 2};
  std::array<int, 3> sign{1, 1, 1};

  [[nodiscard]] bool identity() const {
    return perm == std::array<int, 3>{0, 1, 2} &&
           sign == std::array<int, 3>{1, 1, 1};
  }
};

// All 48 signed axis permutations (24 rotations x optional inversion).
const std::vector<AxisTransform>& axis_transforms();

// p' = T p  /  inverse  /  alpha' = T alpha T^t  /  d' = T d. Tensor and
// vector entries are permuted and sign-flipped only — exact in floating
// point.
Vec3 apply(const AxisTransform& t, const Vec3& p);
AxisTransform inverse(const AxisTransform& t);
std::array<double, 9> apply_tensor(const AxisTransform& t,
                                   const std::array<double, 9>& alpha);
std::array<double, 3> apply_vector(const AxisTransform& t,
                                   const std::array<double, 3>& d);

// Canonical content-address of one displacement evaluation: the geometry
// is mapped through every axis transform, atoms sorted by (z, x, y, z),
// and the lexicographically smallest byte image (plus the settings
// fingerprint) is hashed. Returns the key and the transform that
// produced it (identity when symmetry is off).
struct CanonicalKey {
  std::uint64_t key = 0;
  AxisTransform to_canonical;  // canonical = T(original)
};

CanonicalKey canonical_key(const std::vector<grid::AtomSite>& geometry,
                           std::uint64_t settings_fp, bool use_symmetry);

// Canonical content-address of one finite-field force task: the shared
// equilibrium geometry plus the integer field direction of the stencil
// point, both mapped through the SAME transform — a field task may only
// fold onto another field task whose rotated field matches, so +E e_x and
// +E e_y never collide unless a symmetry really maps one onto the other.
// Unlike canonical_key the atoms are NOT sorted: the cached record is a
// per-atom force vector, and sorting would silently permute atom rows
// between submissions. A domain-separation tag keeps field keys disjoint
// from displacement keys even on hash collision inputs.
CanonicalKey canonical_field_key(const std::vector<grid::AtomSite>& geometry,
                                 const std::array<int, 3>& field_dir,
                                 std::uint64_t settings_fp,
                                 bool use_symmetry);

// Force vector (flat 3N, atom-major) through a signed axis permutation:
// out[3a + i] = sign_i * forces[3a + perm_i]. Exact (bit moves only),
// like apply_tensor / apply_vector; -0.0 is folded onto +0.0.
std::vector<double> apply_forces(const AxisTransform& t,
                                 const std::vector<double>& forces);

// Fingerprint of every engine setting that changes a displacement result:
// two jobs share cache entries iff their fingerprints (and geometries)
// match.
std::uint64_t settings_fingerprint(const JobSpec& spec);

// Cost/memory estimate driving fair-share charging, pull granularity, and
// admission control — built from core::make_dfpt_job + sunway cost model
// so heavy systems are charged what the machine model says they cost.
struct JobEstimate {
  double per_task_seconds = 0.0;   // one displacement evaluation, modeled
  double total_seconds = 0.0;      // all tasks of the job
  double modeled_bytes = 0.0;      // resident footprint while in flight
  std::size_t n_tasks = 0;         // DAG node count
};

JobEstimate estimate_job(const JobSpec& spec);

}  // namespace swraman::serve
