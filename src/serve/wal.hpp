#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/lockcheck.hpp"
#include "raman/checkpoint.hpp"
#include "serve/job.hpp"

// Per-shard write-ahead job log (DESIGN.md S12). Every externally visible
// serve-tier transition is appended — and fsync'd — *before* it is
// acknowledged:
//
//   job   <gid> <spec...>         accepted submission (before the ack)
//   task  <gid> <coord> <sign> .. displacement result, durable before the
//                                 DAG sees the completion (the checkpoint
//                                 ordering of service.cpp, now shard-wide).
//                                 Bec field tasks use sign '0' with coord =
//                                 stencil index and append their 3N force
//                                 vector as " f <n> <F_0> ..."
//   done  <gid> <completed|failed> terminal job status
//   trace <gid> <root-span-id>    jobtrace root of the accepted job, so a
//                                 recovered shard re-attaches its replay
//                                 spans to the same cross-shard timeline
//
// File format (text, one record per line, same %.17g round-trip contract
// as raman::Checkpoint):
//
//   swraman-wal-v1 <shard>
//   <record...> crc <fnv1a-hex16>
//
// Every record line carries a trailing FNV-1a checksum over the bytes
// before " crc"; replay validates line by line and treats the first bad
// line (torn tail — the crash signature) as end-of-log, recovering
// exactly the acknowledged prefix. Replay never throws on torn/truncated
// tails; it throws CheckpointError only on header/fingerprint mismatch,
// i.e. a file that belongs to a different shard layout or format version.
//
// Failure model: the writer simulates a dying disk through the seeded
// fault site serve.wal.torn_write — a firing append writes a partial line
// and wedges the log (later appends are dropped and counted). A wedged
// log means the shard can no longer make durability promises; the sharded
// tier treats it as a crashed shard and fails submissions over.

namespace swraman::serve {

// Fault site: one WAL append is torn mid-record and the log wedges.
inline constexpr const char* kFaultWalTornWrite = "serve.wal.torn_write";

// One job reconstructed from a shard log.
struct LoggedJob {
  std::uint64_t gid = 0;  // durable global id (sharded tier's key space)
  JobSpec spec;
  std::uint64_t settings_fp = 0;  // fingerprint logged at submit
  // Durable displacement results keyed (coord, sign), in the job's own
  // frame — the warm-start set replay feeds back into submit(). Bec
  // field-force records are keyed (stencil index, 0).
  std::map<std::pair<std::size_t, int>, raman::GeometryRecord> tasks;
  bool finished = false;
  JobStatus final_status = JobStatus::Queued;
  // Jobtrace root span id from a "trace" record (0: job was not traced).
  std::uint64_t trace_root = 0;
};

struct WalReplay {
  std::vector<LoggedJob> jobs;  // submission order
  std::size_t records = 0;      // intact records parsed
  std::size_t task_records = 0;
  bool torn_tail = false;  // a trailing record failed its checksum/parse
};

class JobLog {
 public:
  // Inactive log: appends are no-ops (single-shard/testing convenience).
  JobLog() = default;

  // Truncates `path` and writes a fresh header: one JobLog instance is
  // one shard incarnation, and replay of the *previous* incarnation goes
  // through the static replay() below before the new log is opened.
  JobLog(std::string path, std::size_t shard);
  ~JobLog();
  JobLog(const JobLog&) = delete;
  JobLog& operator=(const JobLog&) = delete;

  // Tolerant read of a (possibly torn) shard log. Drops everything from
  // the first checksum/parse failure on and compacts nothing — the next
  // incarnation starts a fresh log and re-records the recovered state.
  static WalReplay replay(const std::string& path);

  [[nodiscard]] bool active() const { return file_ != nullptr; }

  // True once a torn write fired: the "disk" is gone, nothing appended
  // after that point is durable, and the shard must be treated as dead.
  [[nodiscard]] bool wedged() const {
    const lockcheck::CheckedLock lock(mutex_);
    return wedged_;
  }

  // Log-before-ack append of an accepted job. Throws CheckpointError when
  // the log is wedged or the write fails — the submission must then be
  // rejected/failed over, never acknowledged.
  void append_job(std::uint64_t gid, const JobSpec& spec);

  // Durable-before-visible append of a finished displacement (own-frame
  // record). Called from worker threads; never throws — on a wedged log
  // the append is dropped and counted (serve.wal.lost_appends), and the
  // loss only costs recomputation on replay, never an acknowledged job.
  void append_task(std::uint64_t gid, std::size_t coord, int sign,
                   const raman::GeometryRecord& rec);

  // Terminal status append; never throws (same contract as append_task).
  void append_done(std::uint64_t gid, JobStatus status);

  // Jobtrace root of an accepted job; never throws. Best-effort — losing
  // it only costs the stitched timeline a fresh root on replay, never
  // durability.
  void append_trace(std::uint64_t gid, std::uint64_t root_span);

  [[nodiscard]] std::uint64_t records() const {
    const lockcheck::CheckedLock lock(mutex_);
    return records_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    const lockcheck::CheckedLock lock(mutex_);
    return bytes_;
  }
  [[nodiscard]] std::uint64_t fsyncs() const {
    const lockcheck::CheckedLock lock(mutex_);
    return fsyncs_;
  }

 private:
  // Appends one checksummed line (fwrite + fflush + fsync) under the
  // internal mutex — worker threads and the submit path interleave here,
  // honouring the torn-write fault site. Returns false if the log is (or
  // became) wedged.
  bool append_line(const std::string& body);

  // kAllowsBlocking: the fsync happens *under* this mutex by design —
  // it is the WAL's own serialization point, not a foreign lock held
  // across I/O. The blocking audit instead polices the callers: nobody
  // may reach append_line while holding a strict serve/obs lock.
  mutable lockcheck::CheckedMutex mutex_{
      "serve.wal", lockcheck::CheckedMutex::kAllowsBlocking};
  std::string path_;
  std::FILE* file_ = nullptr;
  bool wedged_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
};

}  // namespace swraman::serve
