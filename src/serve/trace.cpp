#include "serve/trace.hpp"

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "core/workload.hpp"

namespace swraman::serve {

std::vector<JobSpec> mixed_tenant_trace(const TraceOptions& options) {
  SWRAMAN_REQUIRE(options.water_unique > 0 && options.rbd_atoms > 0,
                  "mixed_tenant_trace: degenerate options");
  std::vector<JobSpec> trace;

  // Tenant "screening-a": heavy RBD-fragment re-submissions, double
  // fair-share weight (it paid for the big allocation).
  core::SystemScale rbd = core::rbd_protein();
  rbd.n_atoms = options.rbd_atoms;
  for (std::size_t k = 0; k < options.rbd_submissions; ++k) {
    JobSpec spec;
    spec.client = "screening-a";
    spec.name = "rbd-fragment/" + std::to_string(k);
    spec.weight = 2.0;
    spec.engine = EngineKind::Modeled;
    spec.scale = rbd;  // identical scale: duplicates after the first
    trace.push_back(std::move(spec));
  }

  // Tenant "screening-b": the Table-1 silicon cases, each submitted
  // several times (parameter-sweep restarts).
  const auto& cases = core::table1_cases();
  const std::size_t n_cases = std::min(options.silicon_cases, cases.size());
  for (std::size_t c = 0; c < n_cases; ++c) {
    core::SystemScale si;
    si.n_atoms = std::max<std::size_t>(2, cases[c].n_basis / 13);
    si.points_per_atom = static_cast<double>(cases[c].grid_points) /
                         static_cast<double>(si.n_atoms);
    si.basis_per_atom = static_cast<double>(cases[c].n_basis) /
                        static_cast<double>(si.n_atoms);
    si.points_per_batch = static_cast<double>(cases[c].points_per_batch);
    si.local_fns_per_batch = static_cast<double>(cases[c].n_basis);
    for (std::size_t k = 0; k < options.silicon_submissions; ++k) {
      JobSpec spec;
      spec.client = "screening-b";
      spec.name = std::string("si-") + cases[c].name + "/" +
                  std::to_string(k);
      spec.engine = EngineKind::Modeled;
      spec.scale = si;
      trace.push_back(std::move(spec));
    }
  }

  // Tenant "interactive": small water-scale jobs at high priority —
  // water_unique distinct variants cycled over water_submissions, so
  // later submissions duplicate earlier ones.
  for (std::size_t k = 0; k < options.water_submissions; ++k) {
    const std::size_t variant = k % options.water_unique;
    JobSpec spec;
    spec.client = "interactive";
    spec.name = "water-scan/" + std::to_string(variant) + "/" +
                std::to_string(k);
    spec.priority = 5;
    spec.engine = EngineKind::Modeled;
    spec.scale.n_atoms = 3;
    spec.scale.points_per_atom = 1400.0 + 25.0 * static_cast<double>(variant);
    spec.scale.basis_per_atom = 8.0;
    spec.scale.points_per_batch = 100.0;
    spec.scale.local_fns_per_batch = 24.0;
    trace.push_back(std::move(spec));
  }

  // Interleave tenants the way independent clients would arrive.
  std::mt19937_64 rng(options.seed);
  std::shuffle(trace.begin(), trace.end(), rng);
  return trace;
}

std::size_t trace_nominal_tasks(const std::vector<JobSpec>& trace) {
  std::size_t n = 0;
  for (const JobSpec& spec : trace) n += 6 * spec.n_atoms();
  return n;
}

}  // namespace swraman::serve
