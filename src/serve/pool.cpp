#include "serve/pool.hpp"

#include <chrono>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"

namespace swraman::serve {

WorkerPool::WorkerPool(Options options, RunFn run, RefillFn refill,
                       OrphanFn orphan)
    : options_(options),
      run_(std::move(run)),
      refill_(std::move(refill)),
      orphan_(std::move(orphan)) {
  SWRAMAN_REQUIRE(options_.n_workers >= 1, "WorkerPool: need >= 1 worker");
  SWRAMAN_REQUIRE(run_ && refill_ && orphan_, "WorkerPool: null callback");
  deques_.reserve(options_.n_workers);
  for (std::size_t i = 0; i < options_.n_workers; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  alive_.store(options_.n_workers, std::memory_order_relaxed);
  threads_.reserve(options_.n_workers);
  for (std::size_t i = 0; i < options_.n_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void WorkerPool::stop() {
  stop_.store(true, std::memory_order_relaxed);
  idle_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void WorkerPool::push_local(std::size_t worker, TaskRef ref) {
  SWRAMAN_ASSERT(worker < deques_.size(), "WorkerPool: bad worker id");
  {
    const lockcheck::CheckedLock lock(deques_[worker]->mutex);
    deques_[worker]->tasks.push_front(ref);
  }
  idle_cv_.notify_all();
}

void WorkerPool::notify() { idle_cv_.notify_all(); }

bool WorkerPool::pop_local(std::size_t id, TaskRef* out) {
  const lockcheck::CheckedLock lock(deques_[id]->mutex);
  if (deques_[id]->tasks.empty()) return false;
  *out = deques_[id]->tasks.front();
  deques_[id]->tasks.pop_front();
  return true;
}

bool WorkerPool::steal(std::size_t thief, TaskRef* out) {
  if (!options_.steal) return false;
  const std::size_t n = deques_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t victim = (thief + k) % n;
    const lockcheck::CheckedLock lock(deques_[victim]->mutex);
    if (deques_[victim]->tasks.empty()) continue;
    *out = deques_[victim]->tasks.back();
    deques_[victim]->tasks.pop_back();
    obs::count("serve.steals");
    return true;
  }
  return false;
}

bool WorkerPool::die(std::size_t id, const TaskRef* pending) {
  if (!fault::should_fire(kFaultWorkerDeath)) return false;
  // The last surviving worker shrugs the fault off: the service must keep
  // draining (the balancer's surviving-CPE rule).
  std::size_t cur = alive_.load(std::memory_order_relaxed);
  do {
    if (cur <= 1) return false;
  } while (!alive_.compare_exchange_weak(cur, cur - 1,
                                         std::memory_order_relaxed));
  std::vector<TaskRef> orphans;
  if (pending != nullptr) orphans.push_back(*pending);
  {
    const lockcheck::CheckedLock lock(deques_[id]->mutex);
    orphans.insert(orphans.end(), deques_[id]->tasks.begin(),
                   deques_[id]->tasks.end());
    deques_[id]->tasks.clear();
  }
  obs::count("serve.worker.deaths");
  obs::instant("serve.worker.death", "orphans",
               static_cast<double>(orphans.size()));
  log::warn("serve: worker ", id, " died (injected), ", orphans.size(),
            " task(s) adopted");
  orphan_(orphans);
  notify();  // survivors must pick the adopted work up
  return true;
}

void WorkerPool::worker_loop(std::size_t id) {
  log::set_thread_context(
      (options_.log_prefix.empty() ? std::string()
                                   : options_.log_prefix + "/") +
      "w" + std::to_string(id));
  std::vector<TaskRef> batch;
  while (!stop_.load(std::memory_order_relaxed)) {
    TaskRef task;
    bool have = pop_local(id, &task);
    if (!have) have = steal(id, &task);
    if (!have) {
      batch.clear();
      const std::size_t n = refill_(options_.pull_target_seconds,
                                    options_.pull_max_tasks, &batch);
      if (n > 0) {
        obs::count("serve.pool.pulls");
        task = batch.front();
        have = true;
        if (n > 1) {
          const lockcheck::CheckedLock lock(deques_[id]->mutex);
          for (std::size_t i = 1; i < n; ++i) {
            deques_[id]->tasks.push_back(batch[i]);
          }
        }
        if (n > 1) idle_cv_.notify_all();
      }
    }
    if (!have) {
      // Timed, predicate-less park: legal under the condvar audit (only
      // the *untimed* predicate-less wait() is a lost-wakeup hazard).
      lockcheck::CheckedLock lock(idle_mutex_);
      idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    if (die(id, &task)) return;
    run_(id, task);
  }
}

}  // namespace swraman::serve
