#include "serve/wal.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"

namespace swraman::serve {

namespace {

constexpr const char* kHeaderTag = "swraman-wal-v1";

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// FNV-1a over the record body — the same hash the cache keys use, so a
// single primitive covers content addressing and corruption detection.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Tenant/name strings are hex-encoded so record tokenization never
// depends on their content; "-" stands for the empty string.
std::string encode_string(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(2 * s.size());
  static const char* hex = "0123456789abcdef";
  for (const unsigned char c : s) {
    out.push_back(hex[c >> 4]);
    out.push_back(hex[c & 0xF]);
  }
  return out;
}

bool decode_string(const std::string& in, std::string* out) {
  out->clear();
  if (in == "-") return true;
  if (in.size() % 2 != 0) return false;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const int hi = nibble(in[i]);
    const int lo = nibble(in[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

bool parse_hex64(const std::string& s, std::uint64_t* out) {
  return std::sscanf(s.c_str(), "%" SCNx64, out) == 1;
}

// Job-record payload: every field settings_fingerprint() covers, so the
// replayed spec reproduces the fingerprint (and with it every cache key)
// exactly. Modeled specs round-trip completely; Real specs round-trip
// the geometry plus the result-determining options — auxiliary knobs not
// in the fingerprint (batching, DIIS depths, recovery attempts) revert
// to defaults, which by the fingerprint contract cannot change results.
std::string encode_spec(const JobSpec& spec) {
  std::ostringstream body;
  body << encode_string(spec.client) << " " << encode_string(spec.name)
       << " " << spec.priority << " " << format_double(spec.weight) << " "
       << (spec.engine == EngineKind::Modeled ? 'm' : 'r') << " "
       << spec.attempts << " " << (spec.with_modes ? 1 : 0) << " "
       << (spec.tier == Tier::Bec ? 'b' : 'd') << " "
       << format_double(spec.bec_field);
  if (spec.engine == EngineKind::Modeled) {
    const core::SystemScale& sc = spec.scale;
    body << " scale " << sc.n_atoms << " "
         << format_double(sc.points_per_atom) << " "
         << format_double(sc.basis_per_atom) << " "
         << format_double(sc.points_per_batch) << " "
         << format_double(sc.local_fns_per_batch) << " "
         << sc.multipole_lmax << " "
         << format_double(sc.radial_shells_per_atom);
    return body.str();
  }
  const raman::RamanOptions& o = spec.options;
  const scf::ScfOptions& scf = o.vibrations.scf;
  body << " opts " << format_double(o.alpha_displacement) << " "
       << format_double(o.mode_floor_cm) << " " << o.geometry_attempts << " "
       << format_double(o.vibrations.displacement) << " "
       << (o.vibrations.project_rigid_body ? 1 : 0) << " "
       << static_cast<int>(scf.functional) << " "
       << static_cast<int>(scf.grid.level) << " " << scf.multipole_lmax
       << " " << format_double(scf.density_tol) << " "
       << format_double(scf.energy_tol) << " " << scf.max_iterations << " "
       << format_double(scf.smearing) << " " << format_double(scf.mixing)
       << " " << format_double(o.dfpt.tol) << " " << o.dfpt.max_iterations;
  body << " atoms " << spec.atoms.size();
  for (const grid::AtomSite& a : spec.atoms) {
    body << " " << a.z;
    for (int k = 0; k < 3; ++k) body << " " << format_double(a.pos[k]);
  }
  return body.str();
}

bool decode_spec(std::istringstream& in, JobSpec* spec) {
  std::string client_hex;
  std::string name_hex;
  char engine_ch = 0;
  int with_modes = 0;
  char tier_ch = 0;
  if (!(in >> client_hex >> name_hex >> spec->priority >> spec->weight >>
        engine_ch >> spec->attempts >> with_modes >> tier_ch >>
        spec->bec_field)) {
    return false;
  }
  if (!decode_string(client_hex, &spec->client) ||
      !decode_string(name_hex, &spec->name)) {
    return false;
  }
  if (engine_ch != 'm' && engine_ch != 'r') return false;
  spec->engine = engine_ch == 'm' ? EngineKind::Modeled : EngineKind::Real;
  spec->with_modes = with_modes != 0;
  if (tier_ch != 'd' && tier_ch != 'b') return false;
  spec->tier = tier_ch == 'b' ? Tier::Bec : Tier::Dfpt;
  std::string section;
  if (!(in >> section)) return false;
  if (spec->engine == EngineKind::Modeled) {
    if (section != "scale") return false;
    core::SystemScale& sc = spec->scale;
    return static_cast<bool>(in >> sc.n_atoms >> sc.points_per_atom >>
                             sc.basis_per_atom >> sc.points_per_batch >>
                             sc.local_fns_per_batch >> sc.multipole_lmax >>
                             sc.radial_shells_per_atom);
  }
  if (section != "opts") return false;
  raman::RamanOptions& o = spec->options;
  scf::ScfOptions& scf = o.vibrations.scf;
  int project = 0;
  int functional = 0;
  int grid_level = 0;
  if (!(in >> o.alpha_displacement >> o.mode_floor_cm >>
        o.geometry_attempts >> o.vibrations.displacement >> project >>
        functional >> grid_level >> scf.multipole_lmax >> scf.density_tol >>
        scf.energy_tol >> scf.max_iterations >> scf.smearing >> scf.mixing >>
        o.dfpt.tol >> o.dfpt.max_iterations)) {
    return false;
  }
  o.vibrations.project_rigid_body = project != 0;
  scf.functional = static_cast<xc::Functional>(functional);
  scf.grid.level = static_cast<decltype(scf.grid.level)>(grid_level);
  std::size_t n_atoms = 0;
  if (!(in >> section >> n_atoms) || section != "atoms") return false;
  spec->atoms.resize(n_atoms);
  for (grid::AtomSite& a : spec->atoms) {
    if (!(in >> a.z >> a.pos[0] >> a.pos[1] >> a.pos[2])) return false;
  }
  return true;
}

}  // namespace

JobLog::JobLog(std::string path, std::size_t shard)
    : path_(std::move(path)) {
  SWRAMAN_REQUIRE(!path_.empty(), "JobLog: empty path");
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) {
    throw CheckpointError("JobLog: cannot create " + path_);
  }
  const std::string header =
      std::string(kHeaderTag) + " " + std::to_string(shard) + "\n";
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    throw CheckpointError("JobLog: header write to " + path_ + " failed");
  }
  bytes_ += header.size();
  ++fsyncs_;
}

JobLog::~JobLog() {
  if (file_ != nullptr) std::fclose(file_);
}

bool JobLog::append_line(const std::string& body) {
  // Announce the fsync *before* taking our own (kAllowsBlocking) mutex:
  // the audit then sees exactly the caller-held locks, and an append
  // reached from under a strict service/obs lock is the
  // lock.blocking_under_lock hazard that feeds wal_fsync_p99_s.
  lockcheck::blocking_call("wal.append_fsync");
  const lockcheck::CheckedLock lock(mutex_);
  if (file_ == nullptr) return true;  // inactive log: appends are no-ops
  if (wedged_) {
    obs::count("serve.wal.lost_appends");
    return false;
  }
  const std::string line = body + " crc " + format_hex64(fnv1a(body)) + "\n";
  if (fault::should_fire(kFaultWalTornWrite)) {
    // A crash mid-write: half the record reaches the platter, then the
    // device is gone. Later appends are dropped — nothing this shard
    // acknowledges from here on is durable, so the sharded tier must
    // treat it as dead.
    const std::size_t torn = line.size() / 2;
    std::fwrite(line.data(), 1, torn, file_);
    std::fflush(file_);
    ::fsync(fileno(file_));
    wedged_ = true;
    obs::count("serve.wal.torn_writes");
    obs::instant("serve.wal.torn_write", "bytes",
                 static_cast<double>(torn));
    log::warn("wal: injected torn write on ", path_, " — log wedged");
    obs::flight::dump("wal.wedged");
    return false;
  }
  const std::uint64_t t0 = obs::now_ns();
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    wedged_ = true;
    obs::count("serve.wal.write_errors");
    log::warn("wal: write to ", path_, " failed — log wedged");
    obs::flight::dump("wal.wedged");
    return false;
  }
  ++records_;
  bytes_ += line.size();
  ++fsyncs_;
  obs::count("serve.wal.appends");
  obs::count("serve.wal.bytes", static_cast<double>(line.size()));
  // Fsync lag feeds the SLO monitor's wal_fsync_p99_s.
  obs::observe("serve.wal.fsync_s",
               static_cast<double>(obs::now_ns() - t0) * 1e-9);
  return true;
}

void JobLog::append_job(std::uint64_t gid, const JobSpec& spec) {
  std::ostringstream body;
  body << "job " << gid << " " << format_hex64(settings_fingerprint(spec))
       << " " << encode_spec(spec);
  if (!append_line(body.str())) {
    throw CheckpointError(
        "JobLog: " + path_ +
        " is wedged — job " + std::to_string(gid) +
        " cannot be made durable and must not be acknowledged");
  }
}

void JobLog::append_task(std::uint64_t gid, std::size_t coord, int sign,
                         const raman::GeometryRecord& rec) {
  std::ostringstream body;
  body << "task " << gid << " " << coord << " "
       << (sign > 0 ? '+' : sign < 0 ? '-' : '0');
  for (const double v : rec.alpha) body << " " << format_double(v);
  for (const double v : rec.dipole) body << " " << format_double(v);
  // Bec field-force records append their 3N force vector; displacement
  // records stay byte-identical to the v1 task layout.
  if (!rec.forces.empty()) {
    body << " f " << rec.forces.size();
    for (const double v : rec.forces) body << " " << format_double(v);
  }
  append_line(body.str());
}

void JobLog::append_done(std::uint64_t gid, JobStatus status) {
  std::ostringstream body;
  body << "done " << gid << " " << job_status_name(status);
  append_line(body.str());
}

void JobLog::append_trace(std::uint64_t gid, std::uint64_t root_span) {
  std::ostringstream body;
  body << "trace " << gid << " " << root_span;
  append_line(body.str());
}

WalReplay JobLog::replay(const std::string& path) {
  SWRAMAN_TRACE_SPAN(span, "serve.wal.replay");
  WalReplay out;
  std::ifstream in(path);
  if (!in) {
    // No log — nothing was ever acknowledged by this shard.
    return out;
  }
  std::string line;
  if (!std::getline(in, line)) return out;
  {
    std::istringstream header(line);
    std::string tag;
    std::size_t shard = 0;
    if (!(header >> tag >> shard) || tag != kHeaderTag) {
      throw CheckpointError("JobLog: " + path +
                            " is not a swraman-wal-v1 shard log");
    }
  }

  std::map<std::uint64_t, std::size_t> index;  // gid -> jobs[] position
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Layout: <body> crc <hex16>. Validate the checksum before parsing;
    // the first bad line is the torn tail and ends the acknowledged
    // prefix (records after a torn record were never fsync-ordered).
    const std::size_t marker = line.rfind(" crc ");
    bool ok = marker != std::string::npos;
    std::uint64_t crc = 0;
    if (ok) ok = parse_hex64(line.substr(marker + 5), &crc);
    if (ok) ok = fnv1a(line.substr(0, marker)) == crc;
    if (ok) {
      std::istringstream rec(line.substr(0, marker));
      std::string kind;
      std::uint64_t gid = 0;
      ok = static_cast<bool>(rec >> kind >> gid);
      if (ok && kind == "job") {
        std::string fp_hex;
        LoggedJob job;
        job.gid = gid;
        ok = static_cast<bool>(rec >> fp_hex) &&
             parse_hex64(fp_hex, &job.settings_fp) &&
             decode_spec(rec, &job.spec);
        if (ok) {
          // A fingerprint mismatch is not a torn tail: the record is
          // checksum-intact but does not reproduce the logged settings —
          // a serialization/compatibility bug that must fail loudly
          // instead of silently recomputing under different settings.
          if (settings_fingerprint(job.spec) != job.settings_fp) {
            throw CheckpointError(
                "JobLog: " + path + " job " + std::to_string(gid) +
                " replays to a different settings fingerprint — "
                "incompatible spec serialization");
          }
          index[gid] = out.jobs.size();
          out.jobs.push_back(std::move(job));
        }
      } else if (ok && kind == "task") {
        std::size_t coord = 0;
        char sign_ch = 0;
        raman::GeometryRecord r;
        ok = static_cast<bool>(rec >> coord >> sign_ch) &&
             (sign_ch == '+' || sign_ch == '-' || sign_ch == '0');
        for (double& v : r.alpha) ok = ok && static_cast<bool>(rec >> v);
        for (double& v : r.dipole) ok = ok && static_cast<bool>(rec >> v);
        // Optional force tail (field-force records): " f <n> <F_0> ...".
        if (ok) {
          std::string tail;
          if (rec >> tail) {
            std::size_t n_forces = 0;
            ok = tail == "f" && static_cast<bool>(rec >> n_forces);
            if (ok) {
              r.forces.resize(n_forces);
              for (double& v : r.forces) {
                ok = ok && static_cast<bool>(rec >> v);
              }
            }
          }
        }
        const auto it = index.find(gid);
        ok = ok && it != index.end();
        if (ok) {
          const int sign = sign_ch == '+' ? +1 : sign_ch == '-' ? -1 : 0;
          out.jobs[it->second].tasks[{coord, sign}] = r;
          ++out.task_records;
        }
      } else if (ok && kind == "done") {
        std::string status;
        const auto it = index.find(gid);
        ok = static_cast<bool>(rec >> status) && it != index.end() &&
             (status == "completed" || status == "failed");
        if (ok) {
          out.jobs[it->second].finished = true;
          out.jobs[it->second].final_status = status == "completed"
                                                  ? JobStatus::Completed
                                                  : JobStatus::Failed;
        }
      } else if (ok && kind == "trace") {
        std::uint64_t root_span = 0;
        const auto it = index.find(gid);
        ok = static_cast<bool>(rec >> root_span) && it != index.end();
        if (ok) out.jobs[it->second].trace_root = root_span;
      } else {
        ok = false;
      }
    }
    if (!ok) {
      log::warn("wal: dropping torn tail of ", path, " (\"",
                line.substr(0, 40), "\")");
      out.torn_tail = true;
      obs::count("serve.wal.replay.torn_tails");
      break;
    }
    ++out.records;
  }
  obs::count("serve.wal.replay.records", static_cast<double>(out.records));
  obs::count("serve.wal.replay.jobs", static_cast<double>(out.jobs.size()));
  obs::count("serve.wal.replay.tasks",
             static_cast<double>(out.task_records));
  if (span.active()) {
    span.attr("records", static_cast<double>(out.records));
    span.attr("jobs", static_cast<double>(out.jobs.size()));
    span.attr("torn", out.torn_tail ? 1.0 : 0.0);
  }
  return out;
}

}  // namespace swraman::serve
