#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/lockcheck.hpp"
#include "obs/jobtrace.hpp"
#include "serve/cache.hpp"
#include "serve/dag.hpp"
#include "serve/engine.hpp"
#include "serve/pool.hpp"
#include "serve/scheduler.hpp"

// RamanService (DESIGN.md S11): the multi-tenant job service over the
// existing Raman stack. submit() admits or rejects a JobSpec (bounded
// queues + modeled-memory backpressure), decomposes admitted jobs into
// the displacement DAG, deduplicates displacement evaluations through
// the content-addressed cache, and lets the work-stealing pool drain the
// weighted fair-share scheduler. wait()/drain() deliver results.
//
// Determinism contract: submissions are serialized end to end by the
// submit serial lock (the service mutex itself is dropped for the
// blocking middle phase — WAL fsync, content hashing, checkpoint
// replay), cache ownership and admission decisions are made at submit
// time,
// and every derivative/spectrum is assembled from per-node result slots
// in fixed index order — so a fixed (trace, seed, limits) produces
// bitwise-identical job results and dedup/admission counters regardless
// of worker count or interleaving. Only timing-shaped metrics (latency
// histograms, steal counts) vary.

namespace swraman::serve {

// Fault site: one displacement/Hessian evaluation fails transiently
// (thrown as TimeoutError, consumed by the bounded per-task retry).
inline constexpr const char* kFaultTaskFail = "serve.task.fail";

// Durability/federation hooks of the sharded tier (DESIGN.md S12). All
// hooks are optional; `tag` is the caller-supplied durable id passed in
// SubmitOptions (the sharded tier's global job id), not the service-local
// job id.
struct ServiceHooks {
  // Called OFF the service mutex (submissions stay serialized by the
  // submit serial lock) after the admission decision and BEFORE any job
  // state exists or the submission is acknowledged. A throwing hook
  // (wedged WAL) aborts the submission with no state change — the
  // log-before-ack contract. The blocking audit relies on this: the WAL
  // fsync behind this hook must never run under a strict lock.
  std::function<void(std::uint64_t tag, const JobSpec& spec)> on_accept;
  // Computed results: called on the worker thread, off-lock, before the
  // DAG sees the completion (durable-before-visible). Warm/checkpoint/
  // dedup completions: deferred through the hook outbox and drained
  // off-lock before the enclosing submit()/execute() returns — the WAL
  // task records are best-effort (a loss costs recomputation on replay,
  // never an acknowledged job), so the deferral is safe. Must not throw.
  std::function<void(std::uint64_t tag, std::size_t coord, int sign,
                     const raman::GeometryRecord& rec)>
      on_task_durable;
  // Called off-lock from the hook drain after the terminal transition;
  // wait() may observe the result before this ran (the WAL "done" record
  // is best-effort). Must not throw.
  std::function<void(std::uint64_t tag, const JobResult& result)> on_finish;
  // Cross-shard displacement cache: consulted (off-lock, worker threads)
  // before a local owner evaluation; fills the *canonical-frame* record
  // and returns true on a hit. Must bound its own latency (timeout
  // fallback to local compute). The job's trace context rides along so
  // the serving shard can stamp its side of the round trip onto the same
  // cross-shard timeline. `n_forces` is the expected force-vector length
  // of the record: 0 for displacement tasks, 3N for bec field tasks.
  std::function<bool(std::uint64_t key, raman::GeometryRecord* canonical,
                     const obs::TraceContext& ctx, std::size_t n_forces)>
      remote_lookup;
  // Publishes a locally computed canonical record for peer shards
  // (off-lock, worker threads; must not throw).
  std::function<void(std::uint64_t key, const raman::GeometryRecord& rec)>
      publish;
};

// Per-submission options of the sharded/replay paths. Plain submit(spec)
// keeps the PR-5 behaviour bit for bit.
struct SubmitOptions {
  // Durable global id forwarded to every hook; 0 outside the sharded tier.
  std::uint64_t tag = 0;
  // WAL replay warm set: displacement results (own frame, keyed
  // (coord, sign)) that complete their nodes at submit, exactly like
  // checkpoint hits. Not owned; must outlive the submit() call.
  const std::map<std::pair<std::size_t, int>, raman::GeometryRecord>*
      warm = nullptr;
  // Replay of an already-acknowledged job: admission limits are charged
  // but never reject — accepted work must survive a shard death even if
  // the survivor is momentarily over its admission budget.
  bool force_admit = false;
  // Cross-shard trace context: which job timeline (gid) and which span
  // (the router's route/replay span) this submission nests under. The
  // default inactive context keeps plain submissions untraced.
  obs::TraceContext trace;
};

struct ServiceOptions {
  std::size_t n_workers = 2;
  bool work_stealing = true;   // false: no stealing between deques
  bool use_cache = true;       // content-addressed displacement dedup
  bool use_symmetry = true;    // canonicalize under the 48 axis transforms
  // Construct paused: submissions queue deterministically, start() (or
  // the first wait()/drain()) launches the workers.
  bool start_paused = false;
  AdmissionLimits admission;
  ModeledEngineOptions modeled;        // seed of the modeled engine
  double pull_target_seconds = 0.05;   // central-pull batch, modeled cost
  std::size_t pull_max_tasks = 64;
  // Shard id stamped onto jobtrace spans and per-shard gauge/log names
  // (-1: unsharded service — no suffix, tier-level spans).
  int shard_id = -1;
  // Live-health backpressure hint in [0, 1] (the SLO monitor's burn-rate
  // signal); rejected submissions stretch retry_after_s by (1 + hint) so
  // clients back off harder while the error budget is burning.
  std::function<double()> backpressure;
  // Durability/remote-cache hooks of the sharded tier (all optional).
  ServiceHooks hooks;
};

struct SubmitResult {
  bool accepted = false;
  std::uint64_t job_id = 0;     // valid when accepted
  std::string reason;           // "queue-depth" / "modeled-memory"
  double retry_after_s = 0.0;   // backpressure hint when rejected
};

struct ServiceStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t tasks_executed = 0;   // engine evaluations actually run
  std::uint64_t field_tasks_executed = 0;  // bec field evaluations (subset
                                           // of tasks_executed)
  std::uint64_t task_retries = 0;
  std::uint64_t checkpoint_hits = 0;
  std::uint64_t warm_hits = 0;    // WAL-replay records applied at submit
  std::uint64_t remote_hits = 0;  // cross-shard cache hits
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double cache_hit_ratio = 0.0;
  std::size_t queue_depth = 0;
  double modeled_bytes = 0.0;
  std::size_t workers_alive = 0;
};

class RamanService {
 public:
  explicit RamanService(ServiceOptions options = {});
  ~RamanService();
  RamanService(const RamanService&) = delete;
  RamanService& operator=(const RamanService&) = delete;

  // Admission-controlled, non-blocking. Rejected jobs are not queued; the
  // caller should retry after retry_after_s. SubmitOptions carries the
  // sharded tier's durable id, WAL-replay warm records, and the
  // force-admit flag; the default keeps plain submissions unchanged.
  SubmitResult submit(const JobSpec& spec, const SubmitOptions& sub = {});

  // Launches the worker pool (idempotent; no-op when not start_paused).
  void start();

  // Blocks until the job completed or failed; returns its result.
  JobResult wait(std::uint64_t job_id);

  // Blocks until every accepted job completed or failed.
  void drain();

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct NodeKey {
    std::uint64_t key = 0;
    AxisTransform to_canonical;
    bool owner = false;
  };
  struct JobState;
  static constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

  void execute(std::size_t worker, TaskRef ref);
  void run_displacement(std::size_t worker, JobState& job, std::size_t node);
  void run_field_force(std::size_t worker, JobState& job, std::size_t node);
  // Shared evaluate/dedup/durability path of the two root task kinds.
  void run_evaluation(std::size_t worker, JobState& job, std::size_t node,
                      bool field_force);
  void run_hessian(std::size_t worker, JobState& job, std::size_t node);
  void run_row(std::size_t worker, JobState& job, std::size_t node);
  void run_assemble(std::size_t worker, JobState& job, std::size_t node);
  // Evaluation with bounded retry; returns false after failing the job.
  bool evaluate_with_retry(JobState& job, const TaskContext& ctx,
                           raman::GeometryRecord* rec);

  // All four below require mutex_ held.
  double node_cost(const JobState& job, std::size_t node) const;
  void dispatch_ready(std::size_t worker, JobState& job, std::size_t node);
  void complete_node(std::size_t worker, JobState& job, std::size_t node);
  void finish_job(JobState& job, JobStatus status, const std::string& error);
  void fail_job_locked(std::uint64_t job_id, const std::string& error);

  // Queues a durability notification (and optional checkpoint append)
  // discovered under mutex_ for the off-lock hook drain. Requires mutex_.
  void defer_durable_locked(std::uint64_t tag, std::size_t coord, int sign,
                            const raman::GeometryRecord& rec,
                            raman::Checkpoint* ckpt);
  // Drains the hook outboxes off-lock (fsync-backed WAL appends,
  // checkpoint writes, finish notifications). Called at the end of
  // submit() and execute(); serialized so hook order is stable.
  void drain_hooks();

  // Refresh the per-shard health gauges (queue depth, dedup hit ratio)
  // the SLO monitor snapshots; requires mutex_ held.
  void update_health_gauges_locked();

  ServiceOptions options_;
  std::unique_ptr<DisplacementEngine> real_engine_;
  std::unique_ptr<DisplacementEngine> modeled_engine_;
  // Gauge/log names are shard-suffixed ("serve.queue.depth.s0"); built
  // once so hot paths never concatenate.
  std::string queue_gauge_name_;
  std::string ratio_gauge_name_;
  std::string log_prefix_;

  mutable lockcheck::CheckedMutex mutex_{"serve.service"};
  lockcheck::CheckedCondVar cv_;
  std::map<std::uint64_t, std::unique_ptr<JobState>> jobs_;
  std::uint64_t next_job_id_ = 1;
  DisplacementCache cache_;
  FairShareScheduler scheduler_;
  ServiceStats tallies_;

  // Serializes whole submissions end to end while mutex_ is released for
  // the blocking middle phase (WAL fsync, key hashing, checkpoint
  // replay) — the determinism contract's serialization point.
  // kAllowsBlocking: holding it across the fsync is the design.
  lockcheck::CheckedMutex submit_serial_mutex_{
      "serve.submit_serial", lockcheck::CheckedMutex::kAllowsBlocking};

  // Serializes checkpoint file appends. kAllowsBlocking: the append's
  // fwrite happens under it by design; the audit polices that no strict
  // lock is held *around* it.
  lockcheck::CheckedMutex checkpoint_mutex_{
      "serve.ckpt", lockcheck::CheckedMutex::kAllowsBlocking};

  // Hook outboxes: durability/finish notifications discovered while
  // holding mutex_ (warm hits, dedup releases, terminal transitions) are
  // queued here and drained off-lock — the blocking audit's fix for
  // fsync-under-the-service-lock. Entries reference JobState-owned
  // checkpoints; jobs_ entries are never erased, so the pointers stay
  // valid for the service's lifetime.
  struct PendingDurable {
    std::uint64_t tag = 0;
    std::size_t coord = 0;
    int sign = 0;
    raman::GeometryRecord rec;
    raman::Checkpoint* ckpt = nullptr;  // also append to this checkpoint
  };
  struct PendingFinish {
    std::uint64_t tag = 0;
    JobResult result;
  };
  std::vector<PendingDurable> pending_durable_;  // guarded by mutex_
  std::vector<PendingFinish> pending_finish_;    // guarded by mutex_
  std::atomic<std::size_t> pending_hooks_{0};    // fast-path drain gate
  lockcheck::CheckedMutex hook_drain_mutex_{
      "serve.hook_drain", lockcheck::CheckedMutex::kAllowsBlocking};

  std::unique_ptr<WorkerPool> pool_;  // constructed last, stopped first
};

}  // namespace swraman::serve
