#include "serve/router.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace swraman::serve {

namespace {

// splitmix64 finalizer — the mixing function behind the rendezvous
// scores; full-avalanche so per-shard score orderings of distinct keys
// are effectively independent (balanced placement).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options)
    : options_(options), alive_(options.n_shards, true) {
  SWRAMAN_REQUIRE(options_.n_shards >= 1,
                  "ShardRouter: need at least one shard");
  probe_.reserve(options_.n_shards);
  for (std::size_t s = 0; s < options_.n_shards; ++s) {
    BackoffOptions b = options_.probe;
    b.seed = mix64(options_.seed ^ (0xa5a5a5a5ull + s));
    probe_.emplace_back(b);
  }
}

std::uint64_t ShardRouter::job_key(const JobSpec& spec) {
  Hash64 h;
  h.str(spec.client);
  h.u64(settings_fingerprint(spec));
  if (spec.engine == EngineKind::Real) {
    // Content, not name: resubmissions of one geometry co-locate even
    // when labelled differently, keeping dedup shard-local.
    for (const grid::AtomSite& a : spec.atoms) {
      h.u64(static_cast<std::uint64_t>(a.z));
      for (int k = 0; k < 3; ++k) h.f64(a.pos[k]);
    }
  }
  return h.value();
}

std::uint64_t ShardRouter::score(std::uint64_t key, std::size_t shard,
                                 std::uint64_t seed) {
  return mix64(key ^ mix64(seed ^ (shard + 1)));
}

std::uint64_t ShardRouter::score(std::uint64_t key,
                                 std::size_t shard) const {
  return score(key, shard, options_.seed);
}

std::size_t ShardRouter::route(std::uint64_t key) const {
  std::size_t best = kNoShard;
  std::uint64_t best_score = 0;
  for (std::size_t s = 0; s < alive_.size(); ++s) {
    if (!alive_[s]) continue;
    const std::uint64_t sc = score(key, s);
    if (best == kNoShard || sc > best_score) {
      best = s;
      best_score = sc;
    }
  }
  return best;
}

std::size_t ShardRouter::home(std::uint64_t key) const {
  std::size_t best = 0;
  std::uint64_t best_score = 0;
  for (std::size_t s = 0; s < alive_.size(); ++s) {
    const std::uint64_t sc = score(key, s);
    if (s == 0 || sc > best_score) {
      best = s;
      best_score = sc;
    }
  }
  return best;
}

std::size_t ShardRouter::n_live() const {
  std::size_t n = 0;
  for (const bool a : alive_) n += a ? 1 : 0;
  return n;
}

bool ShardRouter::alive(std::size_t shard) const {
  SWRAMAN_REQUIRE(shard < alive_.size(), "ShardRouter: shard out of range");
  return alive_[shard];
}

void ShardRouter::mark_dead(std::size_t shard) {
  SWRAMAN_REQUIRE(shard < alive_.size(), "ShardRouter: shard out of range");
  if (!alive_[shard]) return;
  alive_[shard] = false;
  ++deaths_;
  obs::count("serve.router.deaths");
  obs::instant("serve.router.shard_dead", "shard",
               static_cast<double>(shard));
  log::warn("router: shard ", shard, " marked dead (", n_live(), "/",
            alive_.size(), " live)");
}

void ShardRouter::mark_alive(std::size_t shard) {
  SWRAMAN_REQUIRE(shard < alive_.size(), "ShardRouter: shard out of range");
  if (alive_[shard]) return;
  alive_[shard] = true;
  ++recoveries_;
  probe_[shard].reset();
  obs::count("serve.router.recoveries");
  obs::instant("serve.router.shard_recovered", "shard",
               static_cast<double>(shard));
}

double ShardRouter::retry_after_hint(std::size_t shard) {
  SWRAMAN_REQUIRE(shard < alive_.size(), "ShardRouter: shard out of range");
  return probe_[shard].next();
}

}  // namespace swraman::serve
