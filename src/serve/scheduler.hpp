#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/lockcheck.hpp"
#include "serve/job.hpp"

// Weighted fair-share scheduling + admission control (DESIGN.md S11).
//
// Fair share is stride scheduling over *modeled seconds*: every tenant
// carries a virtual time; dispatching a task advances the tenant's clock
// by cost / weight, and the scheduler always serves the tenant with the
// smallest clock among those with ready work. A tenant that goes idle and
// returns is fast-forwarded to the current minimum so it can neither
// starve (bounded lag) nor monopolize (no banked credit). Within one
// tenant, higher job priority drains first, FIFO inside a priority.
//
// Admission control bounds what a submission may add: the total number of
// outstanding tasks (queue depth) and the modeled resident footprint of
// in-flight jobs (sum of JobEstimate::modeled_bytes). A rejected job
// reports a retry-after hint derived from the outstanding modeled work —
// the backpressure contract of RamanService::submit.
//
// The scheduler does no locking; the service calls it under its mutex.
// That contract is checkable: set_guard() names the mutex, and in
// SWRAMAN_CHECK mode every mutating call verifies the calling thread
// holds it (lock.guard_unheld).

namespace swraman::serve {

struct TaskRef {
  std::uint64_t job = 0;
  std::size_t node = 0;
};

struct AdmissionLimits {
  std::size_t max_queued_tasks = 200000;  // outstanding DAG nodes
  double max_modeled_bytes = 4e9;         // modeled in-flight footprint
};

struct AdmissionDecision {
  bool admitted = true;
  std::string reason;               // "queue-depth" / "modeled-memory"
  double outstanding_seconds = 0.0; // modeled backlog at decision time
};

class FairShareScheduler {
 public:
  explicit FairShareScheduler(AdmissionLimits limits = {});

  // Installs the mutex the caller promises to hold around every mutating
  // call (nullptr: unchecked — standalone/unit-test use).
  void set_guard(const lockcheck::CheckedMutex* guard) { guard_ = guard; }

  // Charges the job against the limits or rejects it (nothing charged).
  // force: charge unconditionally (WAL replay of already-acknowledged
  // work — the limits still see the load, but cannot reject it).
  AdmissionDecision admit(const JobSpec& spec, const JobEstimate& est,
                          bool force = false);

  // Job left the system (completed or failed): releases its admission
  // charge.
  void release(const JobEstimate& est);

  // Ready task of `tenant` with the given modeled cost enters the pool.
  void push(const std::string& tenant, int priority, double cost_seconds,
            TaskRef ref);

  // Fair-share pick: fills `out` with up to max_tasks tasks of ONE tenant
  // (the one with the smallest virtual time), stopping once their summed
  // modeled cost exceeds target_seconds — expensive tasks move singly,
  // cheap ones in batches (the cost model setting the pull granularity).
  // Returns the number of tasks taken (0 when idle).
  std::size_t take(std::vector<TaskRef>* out, double target_seconds,
                   std::size_t max_tasks);

  [[nodiscard]] std::size_t queued() const { return n_ready_; }
  [[nodiscard]] std::size_t outstanding_tasks() const {
    return outstanding_tasks_;
  }
  [[nodiscard]] double outstanding_seconds() const {
    return outstanding_seconds_;
  }
  [[nodiscard]] double modeled_bytes() const { return modeled_bytes_; }
  [[nodiscard]] double virtual_time(const std::string& tenant) const;

 private:
  struct ReadyTask {
    TaskRef ref;
    double cost_seconds = 0.0;
  };
  struct Tenant {
    double weight = 1.0;
    double virtual_seconds = 0.0;
    // Highest priority first (std::greater key order), FIFO within.
    std::map<int, std::deque<ReadyTask>, std::greater<>> ready;
    [[nodiscard]] bool idle() const { return ready.empty(); }
  };

  AdmissionLimits limits_;
  const lockcheck::CheckedMutex* guard_ = nullptr;
  std::map<std::string, Tenant> tenants_;
  std::size_t n_ready_ = 0;
  std::size_t outstanding_tasks_ = 0;
  double outstanding_seconds_ = 0.0;
  double modeled_bytes_ = 0.0;
};

}  // namespace swraman::serve
