#pragma once

#include <cstdint>
#include <vector>

#include "serve/job.hpp"

// Synthetic mixed-tenant submission trace for the serving bench and the
// determinism tests: a seeded, shuffled stream of modeled jobs shaped
// like the paper's workloads —
//
//   * RBD-scale fragments (the protein substitution of Sec. 4), repeated
//     submissions of one geometry (screening re-runs),
//   * Table-1 silicon cases, each submitted several times,
//   * small water-scale jobs, a few unique variants with duplicates
//     (interactive parameter scans).
//
// About two thirds of the stream duplicates an earlier submission, so a
// dedup-enabled service should evaluate roughly one third of the
// displacement tasks the trace nominally contains — the effect the
// throughput bench measures against the naive FIFO baseline.

namespace swraman::serve {

struct TraceOptions {
  std::uint64_t seed = 2026;
  // RBD fragment: rbd_protein() densities at a reduced atom count so the
  // modeled evaluations stay bench-sized.
  std::size_t rbd_atoms = 24;
  std::size_t rbd_submissions = 3;
  std::size_t silicon_submissions = 3;  // per Table-1 case
  std::size_t silicon_cases = 3;        // first K of Table 1
  std::size_t water_submissions = 12;
  std::size_t water_unique = 4;  // distinct water-scale variants
};

// The full shuffled trace. Deterministic for a fixed options struct.
std::vector<JobSpec> mixed_tenant_trace(const TraceOptions& options = {});

// Nominal displacement-task count of the trace (before dedup).
std::size_t trace_nominal_tasks(const std::vector<JobSpec>& trace);

}  // namespace swraman::serve
