#pragma once

#include <atomic>
#include <cstdint>

#include "serve/job.hpp"

// Displacement-task execution backends. The service hands a backend one
// task at a time:
//
//   RealEngine     SCF + DFPT on the actual displaced molecule — the same
//                  solve RamanCalculator::polarizability_at performs, so a
//                  served job reproduces the single-job pipeline.
//   ModeledEngine  deterministic synthetic evaluation for machine-scale
//                  systems (RBD, Table-1 silicon): the result is a pure
//                  function of (canonical key, seed) and the engine burns
//                  a calibrated amount of CPU proportional to the task's
//                  sunway-cost-model seconds, so scheduler benchmarks
//                  exercise real contention with paper-shaped costs.

namespace swraman::serve {

struct TaskContext {
  const JobSpec* spec = nullptr;
  std::size_t coord = 0;
  int sign = +1;
  std::uint64_t canonical_key = 0;
  AxisTransform to_canonical;    // canonical frame = T(own frame)
  double cost_seconds = 0.0;     // modeled cost of this evaluation
};

class DisplacementEngine {
 public:
  virtual ~DisplacementEngine() = default;
  // Polarizability + dipole of the displaced geometry, in the task's own
  // frame. May throw (ConvergenceError, TimeoutError, injected faults);
  // the service owns the bounded retry.
  virtual raman::GeometryRecord evaluate(const TaskContext& ctx) = 0;
};

class RealEngine : public DisplacementEngine {
 public:
  raman::GeometryRecord evaluate(const TaskContext& ctx) override;
};

struct ModeledEngineOptions {
  std::uint64_t seed = 12345;
  // Spin iterations burned per modeled second. Trace jobs model at
  // roughly 1-2.5 s/task, so the default maps a displacement to ~1 ms of
  // real CPU (the xorshift loop retires ~1e9 iterations/s): long enough
  // to dominate scheduling overhead, short enough for second-scale
  // benches. Clamped to keep outliers bounded.
  double iterations_per_modeled_second = 400000.0;
  std::uint64_t min_iterations = 2000;
  std::uint64_t max_iterations = 5000000;
};

class ModeledEngine : public DisplacementEngine {
 public:
  explicit ModeledEngine(ModeledEngineOptions options = {});
  raman::GeometryRecord evaluate(const TaskContext& ctx) override;

 private:
  ModeledEngineOptions options_;
  // Spin-kernel results land here so the work cannot be optimized away.
  std::atomic<double> sink_{0.0};
};

// splitmix64: the deterministic stream behind modeled results.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace swraman::serve
