#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/lockcheck.hpp"
#include "scf/forces.hpp"
#include "serve/job.hpp"

// Displacement-task execution backends. The service hands a backend one
// task at a time:
//
//   RealEngine     SCF + DFPT on the actual displaced molecule — the same
//                  solve RamanCalculator::polarizability_at performs, so a
//                  served job reproduces the single-job pipeline.
//   ModeledEngine  deterministic synthetic evaluation for machine-scale
//                  systems (RBD, Table-1 silicon): the result is a pure
//                  function of (canonical key, seed) and the engine burns
//                  a calibrated amount of CPU proportional to the task's
//                  sunway-cost-model seconds, so scheduler benchmarks
//                  exercise real contention with paper-shaped costs.

namespace swraman::serve {

struct TaskContext {
  const JobSpec* spec = nullptr;
  std::size_t coord = 0;  // displacement coordinate, or field stencil index
  int sign = +1;          // 0 for field-force tasks
  std::uint64_t canonical_key = 0;
  AxisTransform to_canonical;    // canonical frame = T(own frame)
  double cost_seconds = 0.0;     // modeled cost of this evaluation
  bool field_force = false;      // bec tier: coord is the stencil index
  std::size_t n_forces = 0;      // 3N force components (field tasks only)
};

class DisplacementEngine {
 public:
  virtual ~DisplacementEngine() = default;
  // Polarizability + dipole of the displaced geometry — or, for a
  // field-force task, the 3N force vector at one field stencil point —
  // in the task's own frame. May throw (ConvergenceError, TimeoutError,
  // injected faults); the service owns the bounded retry.
  virtual raman::GeometryRecord evaluate(const TaskContext& ctx) = 0;
};

class RealEngine : public DisplacementEngine {
 public:
  raman::GeometryRecord evaluate(const TaskContext& ctx) override;

 private:
  raman::GeometryRecord evaluate_field(const TaskContext& ctx);

  // The 13 field stencil points of one bec job share the equilibrium
  // displaced-sibling engines, so the evaluator (a 6N engine build, no
  // SCF) is cached across tasks keyed by (geometry, settings). forces()
  // is const and safe to call concurrently; the shared_ptr keeps an old
  // evaluator alive for in-flight tasks while a new job swaps it out.
  lockcheck::CheckedMutex forces_mutex_{"serve.real.forces"};
  std::uint64_t forces_key_ = 0;
  std::shared_ptr<const scf::ForceEvaluator> forces_;
};

struct ModeledEngineOptions {
  std::uint64_t seed = 12345;
  // Spin iterations burned per modeled second. Trace jobs model at
  // roughly 1-2.5 s/task, so the default maps a displacement to ~1 ms of
  // real CPU (the xorshift loop retires ~1e9 iterations/s): long enough
  // to dominate scheduling overhead, short enough for second-scale
  // benches. Clamped to keep outliers bounded.
  double iterations_per_modeled_second = 400000.0;
  std::uint64_t min_iterations = 2000;
  std::uint64_t max_iterations = 5000000;
};

class ModeledEngine : public DisplacementEngine {
 public:
  explicit ModeledEngine(ModeledEngineOptions options = {});
  raman::GeometryRecord evaluate(const TaskContext& ctx) override;

 private:
  ModeledEngineOptions options_;
  // Spin-kernel results land here so the work cannot be optimized away.
  std::atomic<double> sink_{0.0};
};

// splitmix64: the deterministic stream behind modeled results.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace swraman::serve
