#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/lockcheck.hpp"
#include "obs/slo.hpp"
#include "serve/remote_cache.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/wal.hpp"

// Durable sharded serve tier (DESIGN.md S12): N RamanService shards, each
// with its own write-ahead job log, behind a rendezvous-hash router.
//
// Durability invariants:
//   1. Log-before-ack — submit() returns accepted only after the shard's
//      WAL holds the fsync'd job record. An accepted job survives any
//      single-shard crash: recover_shard() replays the log and resubmits
//      every unfinished job with its durable displacement results as the
//      warm set (force-admitted — acknowledged work is never re-rejected).
//   2. Durable-before-visible — displacement results are appended to the
//      WAL before the DAG sees them, so replay never re-runs a task whose
//      result was already made durable.
//   3. Wedged log = dead shard — a torn write (serve.wal.torn_write)
//      wedges the log; the tier treats the shard as crashed, fails the
//      submission over to the rendezvous runner-up, and routes around it
//      until recover_shard() brings it back.
//
// Failover is deterministic and stateless: placement is
// argmax_{s live} score(key, s), so every kill moves exactly the dead
// shard's keys (each to its runner-up) and every recovery moves them
// home. Rejections caused by shard health hint the dead shard's
// recovery-probe backoff through retry_after_s instead of 0.0.
//
// Results are delivered tier-side (keyed by durable gid, not by shard-
// local job id) so wait()/drain() span shard deaths: a job accepted
// before a kill is waited on across its replay on the recovered shard.

namespace swraman::serve {

// Fault site: the submission path kills the target shard first (simulated
// crash: workers torn down, WAL left as-is on disk, published cache
// entries dropped) and the job fails over to a survivor.
inline constexpr const char* kFaultShardKill = "serve.shard.kill";

struct ShardedOptions {
  std::size_t n_shards = 2;
  // WAL location: shard k logs to <wal_dir>/shard-<k>.wal.
  std::string wal_dir = ".";
  // Template for every shard's service (hooks and start_paused are
  // overwritten by the tier; everything else applies per shard).
  ServiceOptions service;
  RouterOptions router;  // n_shards is overridden with the value above
  // Cross-shard displacement cache (the remote-lookup fast path engages
  // only once a failover has happened — before that every key is home
  // and a remote probe could only miss).
  bool remote_cache = true;
  double remote_lookup_timeout_s = 0.05;
  // Live health/SLO monitor: tier submit/finish/recover paths drive its
  // throttled ticks, and its backpressure hint stretches the shards'
  // retry_after_s while the error budget burns.
  obs::SloOptions slo;
};

struct ShardedStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_accepted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t kills = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t failovers = 0;       // submissions rerouted off a dead shard
  std::uint64_t replayed_jobs = 0;   // resubmitted from a WAL on recovery
  std::uint64_t replayed_tasks = 0;  // durable results fed back as warm set
  std::uint64_t remote_hits = 0;     // cross-shard cache hits (all shards)
  std::uint64_t wal_records = 0;     // live incarnations only
  std::vector<double> failover_latencies_s;  // kill -> recovered, per kill
};

class ShardedRamanService {
 public:
  explicit ShardedRamanService(ShardedOptions options);
  ~ShardedRamanService();
  ShardedRamanService(const ShardedRamanService&) = delete;
  ShardedRamanService& operator=(const ShardedRamanService&) = delete;

  // Routes by tenant/content key, logs before acknowledging, fails over
  // when the target shard is dead or dies underneath the submission. On
  // success job_id is the durable gid (pass it to wait()). A rejection
  // with no live shard (or by admission control) reports retry_after_s
  // from the responsible shard's health/backlog.
  SubmitResult submit(const JobSpec& spec);

  // Blocks until the job's terminal result is delivered — across shard
  // deaths, provided the owning shard is eventually recovered.
  JobResult wait(std::uint64_t gid);

  // Blocks until every accepted job has delivered a terminal result.
  void drain();

  // Simulated shard crash: tears down the service (joining its workers),
  // closes the log, drops the shard's published cache entries, and marks
  // it dead in the router. The WAL file stays on disk for recovery.
  void kill_shard(std::size_t shard);

  // Crash recovery: replays the on-disk WAL, rebuilds the shard with a
  // fresh log incarnation, resubmits every unfinished logged job with its
  // durable task records as the warm set, and marks the shard alive.
  void recover_shard(std::size_t shard);
  void recover_all();

  [[nodiscard]] std::size_t n_shards() const;
  [[nodiscard]] std::size_t n_live() const;
  [[nodiscard]] bool alive(std::size_t shard) const;
  [[nodiscard]] std::string wal_path(std::size_t shard) const;
  [[nodiscard]] ShardedStats stats() const;
  [[nodiscard]] RemoteCacheFabric::Stats cache_stats() const;

  // The tier's live health monitor (snapshots, burn rates, backpressure
  // hint, swraman-health-v1 export).
  [[nodiscard]] obs::SloMonitor& slo() { return slo_; }
  [[nodiscard]] const obs::SloMonitor& slo() const { return slo_; }

 private:
  struct Shard {
    std::unique_ptr<JobLog> log;        // outlives service (hooks append)
    std::unique_ptr<RamanService> service;
    double kill_time = 0.0;
  };

  void make_shard(std::size_t shard);
  void kill_locked(std::size_t shard);
  // Submission into one shard; false when the shard died underneath it
  // (wedged WAL) and the caller must fail over.
  bool try_submit_locked(std::size_t shard, const JobSpec& spec,
                         const SubmitOptions& sub, SubmitResult* out);

  ShardedOptions options_;
  ShardRouter router_;
  obs::SloMonitor slo_;  // internally synchronized; ticked off-lock too
  std::unique_ptr<RemoteCacheFabric> fabric_;

  // Lock order: shards_mutex_ -> (per-shard service mutex) ->
  // results_mutex_. Worker-thread hooks take results_mutex_ only, so
  // kill_locked may join workers while holding shards_mutex_ — which is
  // why it is kAllowsBlocking (held across joins, WAL replay and shard
  // reconstruction by design; the lockcheck audit verifies nothing
  // *stricter* blocks).
  mutable lockcheck::CheckedMutex shards_mutex_{
      "serve.tier.shards", lockcheck::CheckedMutex::kAllowsBlocking};
  std::vector<Shard> shards_;
  std::uint64_t next_gid_ = 1;
  std::uint64_t kills_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t replayed_jobs_ = 0;
  std::uint64_t replayed_tasks_ = 0;
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::vector<double> failover_latencies_s_;
  // Remote lookups stay disabled until the first kill (reads on worker
  // threads, written under shards_mutex_).
  std::atomic<bool> ever_killed_{false};

  mutable lockcheck::CheckedMutex results_mutex_{"serve.tier.results"};
  lockcheck::CheckedCondVar results_cv_;
  std::map<std::uint64_t, JobResult> results_;  // by gid, terminal only
  std::set<std::uint64_t> accepted_gids_;
};

}  // namespace swraman::serve
