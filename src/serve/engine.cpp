#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dfpt/dfpt_engine.hpp"
#include "obs/obs.hpp"
#include "raman/bec.hpp"
#include "scf/scf_engine.hpp"

namespace swraman::serve {

raman::GeometryRecord RealEngine::evaluate(const TaskContext& ctx) {
  if (ctx.field_force) return evaluate_field(ctx);
  const JobSpec& spec = *ctx.spec;
  SWRAMAN_REQUIRE(ctx.coord < 3 * spec.atoms.size(),
                  "RealEngine: coordinate out of range");
  std::vector<grid::AtomSite> geometry = spec.atoms;
  geometry[ctx.coord / 3].pos[static_cast<int>(ctx.coord % 3)] +=
      ctx.sign * spec.options.alpha_displacement;

  scf::ScfEngine engine(geometry, spec.options.vibrations.scf);
  const scf::GroundState gs = engine.solve();
  if (!gs.converged) {
    throw ConvergenceError("serve: displaced SCF did not converge");
  }
  dfpt::DfptEngine dfpt(engine, gs, spec.options.dfpt);
  const linalg::Matrix alpha = dfpt.polarizability();

  raman::GeometryRecord rec;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) rec.alpha[3 * i + j] = alpha(i, j);
    rec.dipole[i] = gs.dipole[static_cast<int>(i)];
  }
  return rec;
}

raman::GeometryRecord RealEngine::evaluate_field(const TaskContext& ctx) {
  const JobSpec& spec = *ctx.spec;
  SWRAMAN_REQUIRE(
      ctx.coord < static_cast<std::size_t>(raman::n_field_points()),
      "RealEngine: field stencil index out of range");

  // Finite-field SCF at the equilibrium geometry (the per-task solve).
  scf::ScfOptions field_opts = spec.options.vibrations.scf;
  const Vec3 field =
      raman::field_vector(static_cast<int>(ctx.coord), spec.bec_field);
  field_opts.electric_field = field;
  scf::ScfEngine engine(spec.atoms, field_opts);
  const scf::GroundState gs = engine.solve();
  if (!gs.converged) {
    throw ConvergenceError("serve: finite-field SCF did not converge");
  }

  // Shared field-free displaced-sibling evaluator (see engine.hpp).
  std::shared_ptr<const scf::ForceEvaluator> evaluator;
  {
    Hash64 h;
    h.str("force-evaluator");
    h.u64(settings_fingerprint(spec));
    for (const auto& a : spec.atoms) {
      h.u64(static_cast<std::uint64_t>(a.z));
      h.f64(a.pos.x);
      h.f64(a.pos.y);
      h.f64(a.pos.z);
    }
    const std::uint64_t key = h.value();
    lockcheck::CheckedLock guard(forces_mutex_);
    if (!forces_ || forces_key_ != key) {
      forces_ = std::make_shared<const scf::ForceEvaluator>(
          spec.atoms, spec.options.vibrations.scf);
      forces_key_ = key;
    }
    evaluator = forces_;
  }

  raman::GeometryRecord rec;
  rec.forces = evaluator->forces(gs, field);
  for (std::size_t i = 0; i < 3; ++i) {
    rec.dipole[i] = gs.dipole[static_cast<int>(i)];
  }
  return rec;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

double unit_double(std::uint64_t bits) {
  // [0, 1) from the top 53 bits.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

ModeledEngine::ModeledEngine(ModeledEngineOptions options)
    : options_(options) {}

raman::GeometryRecord ModeledEngine::evaluate(const TaskContext& ctx) {
  // The synthetic record is a pure function of (canonical key, seed): two
  // evaluations of the same content — whatever job, tenant, or schedule
  // asked for them — agree bitwise, which is what lets the bench assert
  // dedup changes nothing.
  std::uint64_t state = ctx.canonical_key ^ options_.seed;
  raman::GeometryRecord canonical;
  if (ctx.field_force) {
    // Field-force task: the record is a 3N force vector (plus the field
    // dipole), same deterministic-stream contract as displacements.
    canonical.forces.resize(ctx.n_forces);
    for (auto& f : canonical.forces) {
      f = 0.1 * (unit_double(splitmix64(state)) - 0.5);
    }
    for (int i = 0; i < 3; ++i) {
      canonical.dipole[i] = 0.2 * (unit_double(splitmix64(state)) - 0.5);
    }
  } else {
    for (int i = 0; i < 3; ++i) {
      for (int j = i; j < 3; ++j) {
        const double v = i == j
                             ? 4.0 + 2.0 * unit_double(splitmix64(state))
                             : 0.4 * (unit_double(splitmix64(state)) - 0.5);
        canonical.alpha[3 * i + j] = v;
        canonical.alpha[3 * j + i] = v;  // symmetric, like the real tensor
      }
      canonical.dipole[i] = 0.2 * (unit_double(splitmix64(state)) - 0.5);
    }
  }

  // Burn CPU proportional to the task's modeled cost so the scheduler
  // bench contends over paper-shaped work. Iteration-counted (not
  // wall-clocked): the amount of work is deterministic.
  const double target =
      ctx.cost_seconds * options_.iterations_per_modeled_second;
  const std::uint64_t iters = std::clamp(
      static_cast<std::uint64_t>(target), options_.min_iterations,
      options_.max_iterations);
  double acc = 0.0;
  std::uint64_t x = state | 1u;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    acc += static_cast<double>(x & 0xffff);
  }
  sink_.store(acc, std::memory_order_relaxed);

  // Own frame = inverse(to_canonical) applied to the canonical tensor, so
  // the service's map back to the canonical frame is an exact round trip.
  const AxisTransform from = inverse(ctx.to_canonical);
  raman::GeometryRecord rec;
  rec.alpha = apply_tensor(from, canonical.alpha);
  rec.dipole = apply_vector(from, canonical.dipole);
  if (!canonical.forces.empty()) {
    rec.forces = apply_forces(from, canonical.forces);
  }
  return rec;
}

}  // namespace swraman::serve
