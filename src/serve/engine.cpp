#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dfpt/dfpt_engine.hpp"
#include "obs/obs.hpp"
#include "scf/scf_engine.hpp"

namespace swraman::serve {

raman::GeometryRecord RealEngine::evaluate(const TaskContext& ctx) {
  const JobSpec& spec = *ctx.spec;
  SWRAMAN_REQUIRE(ctx.coord < 3 * spec.atoms.size(),
                  "RealEngine: coordinate out of range");
  std::vector<grid::AtomSite> geometry = spec.atoms;
  geometry[ctx.coord / 3].pos[static_cast<int>(ctx.coord % 3)] +=
      ctx.sign * spec.options.alpha_displacement;

  scf::ScfEngine engine(geometry, spec.options.vibrations.scf);
  const scf::GroundState gs = engine.solve();
  if (!gs.converged) {
    throw ConvergenceError("serve: displaced SCF did not converge");
  }
  dfpt::DfptEngine dfpt(engine, gs, spec.options.dfpt);
  const linalg::Matrix alpha = dfpt.polarizability();

  raman::GeometryRecord rec;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) rec.alpha[3 * i + j] = alpha(i, j);
    rec.dipole[i] = gs.dipole[static_cast<int>(i)];
  }
  return rec;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

double unit_double(std::uint64_t bits) {
  // [0, 1) from the top 53 bits.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

ModeledEngine::ModeledEngine(ModeledEngineOptions options)
    : options_(options) {}

raman::GeometryRecord ModeledEngine::evaluate(const TaskContext& ctx) {
  // The synthetic record is a pure function of (canonical key, seed): two
  // evaluations of the same content — whatever job, tenant, or schedule
  // asked for them — agree bitwise, which is what lets the bench assert
  // dedup changes nothing.
  std::uint64_t state = ctx.canonical_key ^ options_.seed;
  raman::GeometryRecord canonical;
  for (int i = 0; i < 3; ++i) {
    for (int j = i; j < 3; ++j) {
      const double v = i == j ? 4.0 + 2.0 * unit_double(splitmix64(state))
                              : 0.4 * (unit_double(splitmix64(state)) - 0.5);
      canonical.alpha[3 * i + j] = v;
      canonical.alpha[3 * j + i] = v;  // symmetric, like the real tensor
    }
    canonical.dipole[i] = 0.2 * (unit_double(splitmix64(state)) - 0.5);
  }

  // Burn CPU proportional to the task's modeled cost so the scheduler
  // bench contends over paper-shaped work. Iteration-counted (not
  // wall-clocked): the amount of work is deterministic.
  const double target =
      ctx.cost_seconds * options_.iterations_per_modeled_second;
  const std::uint64_t iters = std::clamp(
      static_cast<std::uint64_t>(target), options_.min_iterations,
      options_.max_iterations);
  double acc = 0.0;
  std::uint64_t x = state | 1u;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    acc += static_cast<double>(x & 0xffff);
  }
  sink_.store(acc, std::memory_order_relaxed);

  // Own frame = inverse(to_canonical) applied to the canonical tensor, so
  // the service's map back to the canonical frame is an exact round trip.
  const AxisTransform from = inverse(ctx.to_canonical);
  raman::GeometryRecord rec;
  rec.alpha = apply_tensor(from, canonical.alpha);
  rec.dipole = apply_vector(from, canonical.dipole);
  return rec;
}

}  // namespace swraman::serve
