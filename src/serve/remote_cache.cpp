#include "serve/remote_cache.hpp"

#include <bit>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "parallel/commcheck.hpp"
#include "robustness/fault.hpp"

namespace swraman::serve {

namespace {

// Wire format of the request/response round trip. Requests ride tag 0 of
// the fabric's private comm group; each request names the (unique)
// response tag its answer must come back on, so concurrent lookups from
// one shard never collide in the mailbox.
constexpr int kRequestTag = 0;

// request  = [key bits, response tag, trace gid bits, trace parent bits,
//             n_forces]  (gid 0: untraced request)
// response = [found, alpha[0..8], dipole[0..2], forces[0..n_forces-1]]
//            (found = 0: miss)
// n_forces is 0 for displacement records; bec field-force records carry
// their 3N force vector behind the fixed 13-double head. The requester
// knows n_forces up front and binds its per-call response tag to the
// exact frame length, overriding the 13-double default binding.
constexpr std::size_t kRequestLen = 5;
constexpr std::size_t kResponseLen = 13;

double key_bits(std::uint64_t key) { return std::bit_cast<double>(key); }
std::uint64_t bits_key(double d) { return std::bit_cast<std::uint64_t>(d); }

}  // namespace

RemoteCacheFabric::RemoteCacheFabric(Options options)
    : options_(std::move(options)) {
  SWRAMAN_REQUIRE(options_.n_shards >= 1,
                  "RemoteCacheFabric: need at least one shard");
  comms_ = parallel::make_comm_group(options_.n_shards, options_.comm);
  // Bind the fabric's wire types in the p2p verifier: requests ride
  // tag 0, every other (caller-drawn) tag carries a response frame. A
  // send/recv whose length disagrees is p2p.tag_mismatch.
  const std::uint64_t check_ctx = comms_[0].context_id();
  parallel::commcheck::bind_tag(check_ctx, kRequestTag, kRequestLen,
                                "cache.request");
  parallel::commcheck::bind_default(check_ctx, kResponseLen,
                                    "cache.response");
  nodes_.reserve(options_.n_shards);
  for (std::size_t s = 0; s < options_.n_shards; ++s) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

RemoteCacheFabric::~RemoteCacheFabric() {
  for (std::size_t s = 0; s < nodes_.size(); ++s) stop(s);
}

void RemoteCacheFabric::start(std::size_t shard) {
  SWRAMAN_REQUIRE(shard < nodes_.size(),
                  "RemoteCacheFabric: shard out of range");
  Node& node = *nodes_[shard];
  if (node.run.load(std::memory_order_acquire)) return;
  node.run.store(true, std::memory_order_release);
  node.server = std::thread([this, shard] { serve_loop(shard); });
}

void RemoteCacheFabric::stop(std::size_t shard) {
  SWRAMAN_REQUIRE(shard < nodes_.size(),
                  "RemoteCacheFabric: shard out of range");
  Node& node = *nodes_[shard];
  node.run.store(false, std::memory_order_release);
  if (node.server.joinable()) node.server.join();
  // The incarnation's published results die with it: a restarted shard
  // republishes what it recomputes, and stale requests still in the
  // mailbox are drained unanswered (the requester's timeout handles it).
  const lockcheck::CheckedLock lock(node.mutex);
  node.table.clear();
}

bool RemoteCacheFabric::running(std::size_t shard) const {
  SWRAMAN_REQUIRE(shard < nodes_.size(),
                  "RemoteCacheFabric: shard out of range");
  return nodes_[shard]->run.load(std::memory_order_acquire);
}

void RemoteCacheFabric::publish(std::size_t shard, std::uint64_t key,
                                const raman::GeometryRecord& rec) {
  SWRAMAN_REQUIRE(shard < nodes_.size(),
                  "RemoteCacheFabric: shard out of range");
  Node& node = *nodes_[shard];
  const lockcheck::CheckedLock lock(node.mutex);
  node.table[key] = rec;
  published_.fetch_add(1, std::memory_order_relaxed);
}

bool RemoteCacheFabric::lookup(std::size_t shard, std::size_t peer,
                               std::uint64_t key,
                               raman::GeometryRecord* out,
                               const obs::TraceContext& ctx,
                               std::size_t n_forces) {
  SWRAMAN_REQUIRE(shard < nodes_.size() && peer < nodes_.size(),
                  "RemoteCacheFabric: shard out of range");
  SWRAMAN_REQUIRE(peer != shard, "RemoteCacheFabric: lookup on self");
  lookups_.fetch_add(1, std::memory_order_relaxed);
  auto& jt = obs::JobTraceRegistry::instance();
  const std::uint64_t lspan =
      jt.begin(ctx, "remote.lookup", static_cast<int>(shard));
  jt.attr(ctx.gid, lspan, "peer", static_cast<double>(peer));
  if (fault::should_fire(kFaultRemoteTimeout)) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.cache.remote_timeouts");
    log::warn("fault ", kFaultRemoteTimeout, ": shard ", shard, " -> ",
              peer, " lookup dropped, falling back to local compute");
    jt.attr(ctx.gid, lspan, "timeout", 1.0);
    jt.end(ctx.gid, lspan);
    return false;
  }
  const int resp_tag = next_resp_tag_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t resp_len = kResponseLen + n_forces;
  if (n_forces != 0) {
    // Field-force responses outgrow the default 13-double binding; the
    // per-call tag is fresh (monotonic counter), so this explicit bind
    // never rebinds a live tag.
    parallel::commcheck::bind_tag(comms_[shard].context_id(), resp_tag,
                                  resp_len, "cache.response.forces");
  }
  // The trace context travels in the request frame: the serving shard's
  // side of this round trip lands on the same per-job timeline.
  comms_[shard].send(peer,
                     {key_bits(key), static_cast<double>(resp_tag),
                      key_bits(ctx.gid),
                      key_bits(lspan != 0 ? lspan : ctx.parent_span),
                      static_cast<double>(n_forces)},
                     kRequestTag);
  std::vector<double> resp;
  if (!comms_[shard].try_recv(peer, resp_tag, options_.lookup_timeout_s,
                              &resp)) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.cache.remote_timeouts");
    // Walking away from the round trip: the un-consumed request (the
    // peer may be dead) and the late response (the peer may still
    // answer) are both declared abandoned so the p2p verifier does not
    // flag them as orphans at context destruction.
    const std::uint64_t check_ctx = comms_[shard].context_id();
    parallel::commcheck::abandon(check_ctx, shard, peer, kRequestTag);
    parallel::commcheck::abandon(check_ctx, peer, shard, resp_tag);
    jt.attr(ctx.gid, lspan, "timeout", 1.0);
    jt.end(ctx.gid, lspan);
    return false;
  }
  if (resp.size() != resp_len || resp[0] == 0.0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    jt.attr(ctx.gid, lspan, "hit", 0.0);
    jt.end(ctx.gid, lspan);
    return false;
  }
  for (std::size_t i = 0; i < 9; ++i) out->alpha[i] = resp[1 + i];
  for (std::size_t i = 0; i < 3; ++i) out->dipole[i] = resp[10 + i];
  out->forces.assign(resp.begin() + static_cast<std::ptrdiff_t>(kResponseLen),
                     resp.end());
  hits_.fetch_add(1, std::memory_order_relaxed);
  jt.attr(ctx.gid, lspan, "hit", 1.0);
  jt.end(ctx.gid, lspan);
  return true;
}

void RemoteCacheFabric::serve_loop(std::size_t shard) {
  Node& node = *nodes_[shard];
  const std::size_t n = nodes_.size();
  std::vector<double> req;
  while (node.run.load(std::memory_order_acquire)) {
    for (std::size_t src = 0; src < n; ++src) {
      if (src == shard) continue;
      if (!node.run.load(std::memory_order_acquire)) return;
      if (!comms_[shard].try_recv(src, kRequestTag, options_.poll_s, &req)) {
        continue;
      }
      if (req.size() != kRequestLen) continue;  // malformed: drop
      const std::uint64_t key = bits_key(req[0]);
      const int resp_tag = static_cast<int>(req[1]);
      const obs::TraceContext req_ctx{bits_key(req[2]), bits_key(req[3])};
      const std::size_t n_forces = static_cast<std::size_t>(req[4]);
      // Miss and hit share one wire type (found flag up front): the
      // response tag is bound to a single frame length of
      // 13 + n_forces doubles, so a short miss frame would be a tag
      // mismatch. A stored record whose force vector disagrees with the
      // requested length answers as a miss — the content address should
      // make that impossible, but a mismatch must degrade, not corrupt.
      std::vector<double> resp(kResponseLen + n_forces, 0.0);
      {
        const lockcheck::CheckedLock lock(node.mutex);
        const auto it = node.table.find(key);
        if (it != node.table.end() &&
            it->second.forces.size() == n_forces) {
          resp[0] = 1.0;
          for (std::size_t i = 0; i < 9; ++i) {
            resp[1 + i] = it->second.alpha[i];
          }
          for (std::size_t i = 0; i < 3; ++i) {
            resp[10 + i] = it->second.dipole[i];
          }
          for (std::size_t i = 0; i < n_forces; ++i) {
            resp[kResponseLen + i] = it->second.forces[i];
          }
        }
      }
      // The serving shard's footprint on the requesting job's timeline —
      // the cross-shard half of the jobtrace stitch.
      auto& jt = obs::JobTraceRegistry::instance();
      const std::uint64_t ev =
          jt.event(req_ctx, "remote.serve", static_cast<int>(shard));
      jt.attr(req_ctx.gid, ev, "hit", resp[0]);
      try {
        comms_[shard].send(src, resp, resp_tag);
        served_.fetch_add(1, std::memory_order_relaxed);
      } catch (const Error&) {
        // Injected send drops exhausting their retry budget must not take
        // the server thread down; the requester's timeout covers it.
      }
    }
  }
}

RemoteCacheFabric::Stats RemoteCacheFabric::stats() const {
  Stats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.published = published_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace swraman::serve
