#include "serve/sharded.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"

namespace swraman::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardedRamanService::ShardedRamanService(ShardedOptions options)
    : options_(std::move(options)),
      router_([this] {
        RouterOptions r = options_.router;
        r.n_shards = options_.n_shards;
        return r;
      }()),
      slo_(options_.slo) {
  SWRAMAN_REQUIRE(options_.n_shards >= 1,
                  "sharded: need at least one shard");
  SWRAMAN_REQUIRE(!options_.wal_dir.empty(), "sharded: empty WAL directory");
  if (options_.remote_cache && options_.n_shards > 1) {
    RemoteCacheFabric::Options fo;
    fo.n_shards = options_.n_shards;
    fo.lookup_timeout_s = options_.remote_lookup_timeout_s;
    fabric_ = std::make_unique<RemoteCacheFabric>(fo);
  }
  const lockcheck::CheckedLock lock(shards_mutex_);
  shards_.resize(options_.n_shards);
  for (std::size_t s = 0; s < options_.n_shards; ++s) make_shard(s);
}

ShardedRamanService::~ShardedRamanService() {
  const lockcheck::CheckedLock lock(shards_mutex_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (fabric_ != nullptr) fabric_->stop(s);
    shards_[s].service.reset();
    shards_[s].log.reset();
  }
}

std::string ShardedRamanService::wal_path(std::size_t shard) const {
  return options_.wal_dir + "/shard-" + std::to_string(shard) + ".wal";
}

void ShardedRamanService::make_shard(std::size_t shard) {
  Shard& sh = shards_[shard];
  sh.log = std::make_unique<JobLog>(wal_path(shard), shard);
  ServiceOptions so = options_.service;
  // Results flow tier-side through on_finish; the pool must run so warm
  // replays and failover submissions drain without an explicit start().
  so.start_paused = false;
  so.shard_id = static_cast<int>(shard);
  // Admission backs clients off harder while the error budget burns.
  so.backpressure = [this] { return slo_.backpressure_hint(); };
  JobLog* logp = sh.log.get();  // outlives the service (teardown order)
  so.hooks.on_accept = [logp](std::uint64_t gid, const JobSpec& spec) {
    logp->append_job(gid, spec);
  };
  so.hooks.on_task_durable = [logp](std::uint64_t gid, std::size_t coord,
                                    int sign,
                                    const raman::GeometryRecord& rec) {
    logp->append_task(gid, coord, sign, rec);
  };
  so.hooks.on_finish = [this, logp](std::uint64_t gid,
                                    const JobResult& result) {
    // Terminal status durable before the waiter can observe it.
    logp->append_done(gid, result.status);
    // The job's cross-shard timeline closes with its root span (id 1 by
    // convention), however many incarnations it took to get here.
    obs::JobTraceRegistry::instance().end(gid, 1);
    {
      const lockcheck::CheckedLock lock(results_mutex_);
      results_[gid] = result;
      results_cv_.notify_all();
    }
    // Finishes move tenant latency histograms — refresh the health view.
    slo_.maybe_tick();
  };
  if (fabric_ != nullptr) {
    so.hooks.publish = [this, shard](std::uint64_t key,
                                     const raman::GeometryRecord& rec) {
      fabric_->publish(shard, key, rec);
    };
    so.hooks.remote_lookup = [this, shard](std::uint64_t key,
                                           raman::GeometryRecord* out,
                                           const obs::TraceContext& ctx,
                                           std::size_t n_forces) {
      // Engages only once some shard has died: before that every key is
      // home and a remote probe could only miss. Peer pick is the highest
      // rendezvous score among running fabric nodes — after a failover
      // that is exactly the shard hosting (or having hosted) this key
      // while its home was down. Lock-free: router state is untouched.
      if (!ever_killed_.load(std::memory_order_acquire)) return false;
      std::size_t best = ShardRouter::kNoShard;
      std::uint64_t best_score = 0;
      for (std::size_t t = 0; t < fabric_->n_shards(); ++t) {
        if (t == shard || !fabric_->running(t)) continue;
        const std::uint64_t sc =
            ShardRouter::score(key, t, options_.router.seed);
        if (best == ShardRouter::kNoShard || sc > best_score) {
          best = t;
          best_score = sc;
        }
      }
      if (best == ShardRouter::kNoShard) return false;
      return fabric_->lookup(shard, best, key, out, ctx, n_forces);
    };
  }
  sh.service = std::make_unique<RamanService>(std::move(so));
  if (fabric_ != nullptr) fabric_->start(shard);
}

void ShardedRamanService::kill_locked(std::size_t shard) {
  if (!router_.alive(shard)) return;
  Shard& sh = shards_[shard];
  sh.kill_time = now_seconds();
  ever_killed_.store(true, std::memory_order_release);
  if (fabric_ != nullptr) fabric_->stop(shard);
  // Simulated process death. The service teardown joins the shard's
  // workers; whatever they append in their last instants is a valid WAL
  // prefix, which replay treats like any other crash point. The log file
  // itself stays on disk — it IS the crashed shard's recoverable state.
  sh.service.reset();
  sh.log.reset();
  ++kills_;
  obs::count("serve.shard.kills");
  obs::instant("serve.shard.killed", "shard", static_cast<double>(shard));
  // Postmortem forensics: what every thread was doing in its last moments
  // before the kill (the instant above put the kill itself in the rings).
  obs::flight::dump("serve.shard.kill");
  router_.mark_dead(shard);
}

void ShardedRamanService::kill_shard(std::size_t shard) {
  const lockcheck::CheckedLock lock(shards_mutex_);
  SWRAMAN_REQUIRE(shard < shards_.size(), "sharded: shard out of range");
  kill_locked(shard);
}

bool ShardedRamanService::try_submit_locked(std::size_t shard,
                                            const JobSpec& spec,
                                            const SubmitOptions& sub,
                                            SubmitResult* out) {
  try {
    *out = shards_[shard].service->submit(spec, sub);
    return true;
  } catch (const CheckpointError& e) {
    // The WAL wedged underneath the log-before-ack append: the shard can
    // no longer make durability promises. Treat it as crashed and let the
    // caller fail the submission over.
    log::warn("sharded: shard ", shard, " lost its WAL mid-submit (",
              e.what(), ")");
    kill_locked(shard);
    return false;
  }
}

SubmitResult ShardedRamanService::submit(const JobSpec& spec) {
  SWRAMAN_TRACE_SPAN(span, "serve.router.submit");
  slo_.maybe_tick();
  const lockcheck::CheckedLock lock(shards_mutex_);
  ++submitted_;
  // Optimistic job timeline for the gid this submission gets on
  // acceptance; a terminal rejection drops it again so the reused gid
  // starts clean.
  auto& jt = obs::JobTraceRegistry::instance();
  const obs::TraceContext root_ctx = jt.root(next_gid_, "job");
  const std::uint64_t route_span = jt.begin(root_ctx, "route");
  obs::TraceContext trace = root_ctx;
  if (route_span != 0) trace.parent_span = route_span;
  const std::uint64_t key = ShardRouter::job_key(spec);
  // Injected crash: the routed-to shard dies before the submission
  // reaches it — kill plus failover exercised in one call.
  if (fault::should_fire(kFaultShardKill)) {
    const std::size_t victim = router_.route(key);
    if (victim != ShardRouter::kNoShard) {
      log::warn("fault ", kFaultShardKill, ": killing shard ", victim);
      const std::uint64_t ev = jt.event(trace, "shard.kill");
      jt.attr(root_ctx.gid, ev, "victim", static_cast<double>(victim));
      kill_locked(victim);
    }
  }
  const std::size_t home = router_.home(key);
  bool failed_over = false;
  for (;;) {
    const std::size_t s = router_.route(key);
    if (s == ShardRouter::kNoShard) {
      ++rejected_;
      obs::count("serve.router.rejected_no_shard");
      SubmitResult res;
      res.accepted = false;
      res.reason = "no-live-shard";
      // Shard-health-aware hint: the dead home shard's next recovery
      // probe, not 0.0 — repeated rejections back clients off.
      res.retry_after_s = router_.retry_after_hint(home);
      if (span.active()) span.attr("rejected", 1.0);
      jt.end(root_ctx.gid, route_span);
      jt.drop_job(root_ctx.gid);
      return res;
    }
    failed_over = failed_over || s != home;
    Shard& sh = shards_[s];
    if (sh.log != nullptr && sh.log->wedged()) {
      log::warn("sharded: shard ", s, " WAL wedged; treating as dead");
      kill_locked(s);
      continue;
    }
    SubmitOptions sub;
    sub.tag = next_gid_;
    sub.trace = trace;
    SubmitResult res;
    if (!try_submit_locked(s, spec, sub, &res)) continue;
    if (res.accepted) {
      const std::uint64_t gid = next_gid_++;
      ++accepted_;
      if (failed_over) {
        ++failovers_;
        obs::count("serve.router.failovers");
      }
      {
        const lockcheck::CheckedLock rlock(results_mutex_);
        accepted_gids_.insert(gid);
      }
      res.job_id = gid;
      if (span.active()) span.attr("shard", static_cast<double>(s));
      jt.attr(gid, route_span, "shard", static_cast<double>(s));
      if (failed_over) jt.attr(gid, route_span, "failover", 1.0);
      jt.end(gid, route_span);
      // Best-effort durable pointer from WAL to timeline: replay re-
      // attaches the recovered incarnation's spans to this root.
      if (root_ctx.gid != 0) sh.log->append_trace(gid, 1);
    } else {
      // Admission backpressure from a healthy shard: not a failover case
      // (the key's owner said "later"), the hint already carries its
      // backlog estimate.
      ++rejected_;
      jt.end(root_ctx.gid, route_span);
      jt.drop_job(root_ctx.gid);
    }
    return res;
  }
}

JobResult ShardedRamanService::wait(std::uint64_t gid) {
  lockcheck::CheckedLock lock(results_mutex_);
  SWRAMAN_REQUIRE(accepted_gids_.count(gid) != 0,
                  "sharded: wait on unknown job id");
  results_cv_.wait(lock, [&] { return results_.count(gid) != 0; });
  return results_.at(gid);
}

void ShardedRamanService::drain() {
  lockcheck::CheckedLock lock(results_mutex_);
  results_cv_.wait(lock, [&] {
    for (const std::uint64_t gid : accepted_gids_) {
      if (results_.count(gid) == 0) return false;
    }
    return true;
  });
}

void ShardedRamanService::recover_shard(std::size_t shard) {
  const lockcheck::CheckedLock lock(shards_mutex_);
  SWRAMAN_REQUIRE(shard < shards_.size(), "sharded: shard out of range");
  if (router_.alive(shard)) return;
  SWRAMAN_TRACE_SPAN(span, "serve.router.recover");
  // Recovery reads ONLY the on-disk log — the crashed incarnation's
  // memory is gone. Everything acknowledged is in the durable prefix.
  const WalReplay rep = JobLog::replay(wal_path(shard));
  auto& jt = obs::JobTraceRegistry::instance();
  std::size_t resubmitted = 0;
  // make_shard() truncates the on-disk log, so from here until the
  // replay completes the undelivered jobs exist only in `rep`. If the
  // fresh incarnation's WAL wedges mid-replay (injected torn write on
  // a resubmission's log-before-ack append), the incarnation is dead on
  // arrival: tear it down and replay `rep` onto another one instead of
  // unwinding — unwinding would abandon the in-memory copy. Jobs that
  // finished under a wedged incarnation are in results_ and are skipped
  // by the retry, so nothing runs twice to completion.
  for (int attempt = 0;; ++attempt) {
    SWRAMAN_REQUIRE(attempt < 100,
                    "sharded: replay WAL keeps wedging; giving up");
    make_shard(shard);
    bool wedged = false;
    resubmitted = 0;
    for (const LoggedJob& j : rep.jobs) {
      {
        const lockcheck::CheckedLock rlock(results_mutex_);
        if (results_.count(j.gid) != 0) continue;  // delivered before death
      }
      // Stitch the new incarnation onto the job's pre-crash timeline: the
      // WAL's trace record names the root to re-attach to, and the replay
      // span bumps the incarnation so both sides of the kill stay visible.
      const obs::TraceContext rctx =
          jt.restore_root(j.gid, j.trace_root, "job");
      obs::TraceContext trace = rctx;
      const std::uint64_t replay_span =
          jt.begin(rctx, "replay", static_cast<int>(shard));
      jt.attr(j.gid, replay_span, "warm_tasks",
              static_cast<double>(j.tasks.size()));
      if (replay_span != 0) trace.parent_span = replay_span;
      SubmitOptions sub;
      sub.tag = j.gid;
      sub.warm = &j.tasks;
      sub.force_admit = true;  // acknowledged work is never re-rejected
      sub.trace = trace;
      try {
        const SubmitResult res = shards_[shard].service->submit(j.spec, sub);
        SWRAMAN_REQUIRE(res.accepted, "sharded: replay resubmission rejected");
      } catch (const CheckpointError& e) {
        log::warn("sharded: shard ", shard, " WAL wedged during replay (",
                  e.what(), "); retrying with a fresh incarnation");
        jt.end(j.gid, replay_span);
        obs::count("serve.shard.replay_wedges");
        // Same teardown order as a kill: joining the workers first lets
        // in-flight resubmissions finish into results_.
        if (fabric_ != nullptr) fabric_->stop(shard);
        shards_[shard].service.reset();
        shards_[shard].log.reset();
        wedged = true;
        break;
      }
      jt.end(j.gid, replay_span);
      // Replay-of-replay safety: the fresh incarnation's log carries the
      // trace pointer too.
      if (rctx.gid != 0) shards_[shard].log->append_trace(j.gid, 1);
      ++replayed_jobs_;
      replayed_tasks_ += j.tasks.size();
      ++resubmitted;
    }
    if (!wedged) break;
  }
  ++recoveries_;
  router_.mark_alive(shard);
  const double latency = now_seconds() - shards_[shard].kill_time;
  failover_latencies_s_.push_back(latency);
  obs::observe("serve.router.failover_s", latency);
  obs::count("serve.shard.recoveries");
  slo_.maybe_tick();
  if (span.active()) {
    span.attr("shard", static_cast<double>(shard));
    span.attr("replayed_jobs", static_cast<double>(resubmitted));
    span.attr("torn_tail", rep.torn_tail ? 1.0 : 0.0);
  }
  log::warn("sharded: shard ", shard, " recovered (", resubmitted,
            " jobs replayed, ", rep.task_records, " durable tasks, ",
            rep.torn_tail ? "torn tail)" : "clean tail)");
}

void ShardedRamanService::recover_all() {
  for (std::size_t s = 0; s < n_shards(); ++s) recover_shard(s);
}

std::size_t ShardedRamanService::n_shards() const {
  const lockcheck::CheckedLock lock(shards_mutex_);
  return shards_.size();
}

std::size_t ShardedRamanService::n_live() const {
  const lockcheck::CheckedLock lock(shards_mutex_);
  return router_.n_live();
}

bool ShardedRamanService::alive(std::size_t shard) const {
  const lockcheck::CheckedLock lock(shards_mutex_);
  return router_.alive(shard);
}

ShardedStats ShardedRamanService::stats() const {
  const lockcheck::CheckedLock lock(shards_mutex_);
  ShardedStats s;
  s.jobs_submitted = submitted_;
  s.jobs_accepted = accepted_;
  s.jobs_rejected = rejected_;
  s.kills = kills_;
  s.recoveries = recoveries_;
  s.failovers = failovers_;
  s.replayed_jobs = replayed_jobs_;
  s.replayed_tasks = replayed_tasks_;
  s.failover_latencies_s = failover_latencies_s_;
  for (const Shard& sh : shards_) {
    if (sh.service != nullptr) {
      s.remote_hits += sh.service->stats().remote_hits;
    }
    if (sh.log != nullptr) s.wal_records += sh.log->records();
  }
  {
    const lockcheck::CheckedLock rlock(results_mutex_);
    for (const auto& [gid, r] : results_) {
      if (r.status == JobStatus::Completed) {
        ++s.jobs_completed;
      } else {
        ++s.jobs_failed;
      }
    }
  }
  return s;
}

RemoteCacheFabric::Stats ShardedRamanService::cache_stats() const {
  return fabric_ != nullptr ? fabric_->stats() : RemoteCacheFabric::Stats{};
}

}  // namespace swraman::serve
