#pragma once

#include <cstdint>
#include <vector>

#include "common/backoff.hpp"
#include "serve/job.hpp"

// Shard router of the durable serve tier (DESIGN.md S12). Jobs are
// hashed by tenant + content key and placed by rendezvous (highest-
// random-weight) hashing over the *live* shards:
//
//   route(key) = argmax_{s live} mix(key, salt_s)
//
// Rendezvous hashing gives deterministic minimal movement — when a shard
// dies, only the keys it owned move (each to the survivor with the next-
// highest score), and when it recovers they all come home; keys owned by
// healthy shards never migrate. That is the failover protocol: no ring
// state, no token exchange, every participant computes the same placement
// from (key, liveness bitmap) alone.
//
// Health tracking is driven by the sharded service: submissions that
// throw (wedged WAL, injected shard kill) mark the shard dead; recovery
// marks it alive. Each shard carries a deterministic decorrelated-jitter
// Backoff whose schedule spaces recovery probes and supplies the
// retry_after_s hint for submissions that cannot be placed — a rejection
// caused by a dead shard hints the dead shard's next-probe estimate
// instead of 0.0 (the retry_after fix of ISSUE 6).

namespace swraman::serve {

struct RouterOptions {
  std::size_t n_shards = 1;
  std::uint64_t seed = 2026;  // salts the score mix + probe jitter
  BackoffOptions probe;       // recovery-probe spacing per dead shard
  RouterOptions() {
    probe.base_s = 0.05;
    probe.cap_s = 2.0;
    probe.decorrelated = true;
  }
};

class ShardRouter {
 public:
  // Sentinel returned by route() when no shard is live.
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  explicit ShardRouter(RouterOptions options);

  // Stable routing key of a job: tenant id + content fingerprint (the
  // settings fingerprint plus, for Real jobs, the geometry image), so a
  // tenant's resubmissions of one system always land on one shard and
  // its displacement dedup stays shard-local on the common path.
  static std::uint64_t job_key(const JobSpec& spec);

  [[nodiscard]] std::size_t n_shards() const { return alive_.size(); }
  [[nodiscard]] std::size_t n_live() const;
  [[nodiscard]] bool alive(std::size_t shard) const;

  // Owner of `key` among live shards (kNoShard when none live).
  [[nodiscard]] std::size_t route(std::uint64_t key) const;

  // Owner ignoring liveness — the key's home shard.
  [[nodiscard]] std::size_t home(std::uint64_t key) const;

  void mark_dead(std::size_t shard);
  void mark_alive(std::size_t shard);

  // Seconds until the dead shard's next recovery probe — the
  // retry_after_s hint for submissions that could not be placed.
  // Advances the shard's deterministic backoff schedule.
  [[nodiscard]] double retry_after_hint(std::size_t shard);

  [[nodiscard]] std::uint64_t deaths() const { return deaths_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

  // The rendezvous score itself — public and static so lock-free readers
  // (the remote-cache peer pick on worker threads) can rank shards for a
  // key without touching router state.
  [[nodiscard]] static std::uint64_t score(std::uint64_t key,
                                           std::size_t shard,
                                           std::uint64_t seed);

 private:
  [[nodiscard]] std::uint64_t score(std::uint64_t key,
                                    std::size_t shard) const;

  RouterOptions options_;
  std::vector<bool> alive_;
  std::vector<Backoff> probe_;
  std::uint64_t deaths_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace swraman::serve
