#include "serve/cache.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace swraman::serve {

namespace {

raman::GeometryRecord map_record(const raman::GeometryRecord& canonical,
                                 const AxisTransform& from_canonical) {
  raman::GeometryRecord out;
  out.alpha = apply_tensor(from_canonical, canonical.alpha);
  out.dipole = apply_vector(from_canonical, canonical.dipole);
  if (!canonical.forces.empty()) {
    out.forces = apply_forces(from_canonical, canonical.forces);
  }
  return out;
}

}  // namespace

DisplacementCache::Ref DisplacementCache::reference(
    std::uint64_t key, const CacheWaiter& waiter,
    raman::GeometryRecord* record) {
  lockcheck::assert_held(guard_, "DisplacementCache::reference");
  auto [it, inserted] = entries_.try_emplace(key);
  if (inserted) {
    ++misses_;
    obs::count("serve.cache.misses");
    return Ref::Owner;
  }
  ++hits_;
  obs::count("serve.cache.hits");
  if (it->second.done) {
    if (record != nullptr) {
      *record = map_record(it->second.canonical, waiter.from_canonical);
    }
    return Ref::Hit;
  }
  it->second.waiters.push_back(waiter);
  return Ref::Wait;
}

std::vector<CacheWaiter> DisplacementCache::complete(
    std::uint64_t key, const raman::GeometryRecord& canonical,
    std::vector<raman::GeometryRecord>* records) {
  // Lenient on a missing or finished entry: when an owner's job fails
  // while its displacement is still in flight, fail() already dropped the
  // entry — and a resubmission may even have re-created (and finished) it.
  // The late result is then simply recorded (or ignored) with no waiters.
  lockcheck::assert_held(guard_, "DisplacementCache::complete");
  auto it = entries_.try_emplace(key).first;
  if (it->second.done) {
    if (records != nullptr) records->clear();
    return {};
  }
  it->second.done = true;
  it->second.canonical = canonical;
  std::vector<CacheWaiter> waiters = std::move(it->second.waiters);
  it->second.waiters.clear();
  if (records != nullptr) {
    records->clear();
    records->reserve(waiters.size());
    for (const CacheWaiter& w : waiters) {
      records->push_back(map_record(canonical, w.from_canonical));
    }
  }
  return waiters;
}

std::vector<CacheWaiter> DisplacementCache::fail(std::uint64_t key) {
  lockcheck::assert_held(guard_, "DisplacementCache::fail");
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  std::vector<CacheWaiter> waiters = std::move(it->second.waiters);
  entries_.erase(it);
  return waiters;
}

}  // namespace swraman::serve
