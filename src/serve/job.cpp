#include "serve/job.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "raman/bec.hpp"
#include "sunway/arch.hpp"
#include "sunway/cost_model.hpp"

namespace swraman::serve {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::Dfpt: return "dfpt";
    case Tier::Bec: return "bec";
  }
  return "?";
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Completed: return "completed";
    case JobStatus::Failed: return "failed";
    case JobStatus::Rejected: return "rejected";
  }
  return "?";
}

void Hash64::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ull;
  }
}

void Hash64::u64(std::uint64_t v) { bytes(&v, sizeof v); }

void Hash64::f64(double v) {
  if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
  u64(std::bit_cast<std::uint64_t>(v));
}

void Hash64::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

const std::vector<AxisTransform>& axis_transforms() {
  static const std::vector<AxisTransform> all = [] {
    std::vector<AxisTransform> v;
    const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                             {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    for (const auto& p : perms) {
      for (int s = 0; s < 8; ++s) {
        AxisTransform t;
        t.perm = {p[0], p[1], p[2]};
        t.sign = {(s & 1) ? -1 : 1, (s & 2) ? -1 : 1, (s & 4) ? -1 : 1};
        v.push_back(t);
      }
    }
    return v;
  }();
  return all;
}

Vec3 apply(const AxisTransform& t, const Vec3& p) {
  Vec3 out;
  for (int i = 0; i < 3; ++i) {
    double v = t.sign[i] * p[t.perm[i]];
    if (v == 0.0) v = 0.0;
    out[i] = v;
  }
  return out;
}

AxisTransform inverse(const AxisTransform& t) {
  AxisTransform inv;
  for (int i = 0; i < 3; ++i) {
    inv.perm[t.perm[i]] = i;
    inv.sign[t.perm[i]] = t.sign[i];
  }
  return inv;
}

std::array<double, 9> apply_tensor(const AxisTransform& t,
                                   const std::array<double, 9>& alpha) {
  // (T alpha T^t)_{ij} = sign_i sign_j alpha_{perm_i perm_j}: pure entry
  // shuffling with sign flips, no rounding.
  std::array<double, 9> out{};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double v = t.sign[i] * t.sign[j] * alpha[3 * t.perm[i] + t.perm[j]];
      if (v == 0.0) v = 0.0;
      out[3 * i + j] = v;
    }
  }
  return out;
}

std::array<double, 3> apply_vector(const AxisTransform& t,
                                   const std::array<double, 3>& d) {
  std::array<double, 3> out{};
  for (int i = 0; i < 3; ++i) {
    double v = t.sign[i] * d[t.perm[i]];
    if (v == 0.0) v = 0.0;
    out[i] = v;
  }
  return out;
}

namespace {

// Byte image of a geometry under one transform: atoms transformed, sorted
// by (z, x, y, z), positions serialized as bit patterns (-0.0 folded).
std::vector<std::uint64_t> geometry_image(
    const std::vector<grid::AtomSite>& geometry, const AxisTransform& t) {
  std::vector<std::array<std::uint64_t, 4>> rows;
  rows.reserve(geometry.size());
  for (const grid::AtomSite& a : geometry) {
    const Vec3 p = apply(t, a.pos);
    std::array<std::uint64_t, 4> row;
    row[0] = static_cast<std::uint64_t>(a.z);
    for (int i = 0; i < 3; ++i) {
      double v = p[i];
      if (v == 0.0) v = 0.0;
      row[1 + i] = std::bit_cast<std::uint64_t>(v);
    }
    rows.push_back(row);
  }
  // Sort by (z, then position bit patterns): the polarizability does not
  // depend on atom order, so permuted submissions collapse too. Bit
  // patterns of doubles sort consistently (we only need *a* total order).
  std::sort(rows.begin(), rows.end());
  std::vector<std::uint64_t> flat;
  flat.reserve(4 * rows.size());
  for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());
  return flat;
}

}  // namespace

CanonicalKey canonical_key(const std::vector<grid::AtomSite>& geometry,
                           std::uint64_t settings_fp, bool use_symmetry) {
  SWRAMAN_REQUIRE(!geometry.empty(), "canonical_key: empty geometry");
  CanonicalKey out;
  std::vector<std::uint64_t> best;
  if (!use_symmetry) {
    best = geometry_image(geometry, AxisTransform{});
  } else {
    for (const AxisTransform& t : axis_transforms()) {
      std::vector<std::uint64_t> img = geometry_image(geometry, t);
      if (best.empty() || img < best) {
        best = std::move(img);
        out.to_canonical = t;
      }
    }
  }
  Hash64 h;
  h.u64(settings_fp);
  h.u64(best.size());
  for (std::uint64_t v : best) h.u64(v);
  out.key = h.value();
  return out;
}

std::vector<double> apply_forces(const AxisTransform& t,
                                 const std::vector<double>& forces) {
  SWRAMAN_REQUIRE(forces.size() % 3 == 0, "apply_forces: not a 3N vector");
  std::vector<double> out(forces.size());
  for (std::size_t a = 0; a < forces.size() / 3; ++a) {
    for (int i = 0; i < 3; ++i) {
      double v = t.sign[i] * forces[3 * a + static_cast<std::size_t>(t.perm[i])];
      if (v == 0.0) v = 0.0;
      out[3 * a + static_cast<std::size_t>(i)] = v;
    }
  }
  return out;
}

CanonicalKey canonical_field_key(const std::vector<grid::AtomSite>& geometry,
                                 const std::array<int, 3>& field_dir,
                                 std::uint64_t settings_fp,
                                 bool use_symmetry) {
  SWRAMAN_REQUIRE(!geometry.empty(), "canonical_field_key: empty geometry");
  // Image = [field ints, atom rows in submission order]: the same
  // transform rotates geometry and field together, so two stencil points
  // collide only when a cube symmetry maps one (geometry, field) pair
  // exactly onto the other.
  const auto image = [&](const AxisTransform& t) {
    std::vector<std::uint64_t> img;
    img.reserve(3 + 4 * geometry.size());
    for (int i = 0; i < 3; ++i) {
      img.push_back(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(t.sign[i] * field_dir[static_cast<std::size_t>(t.perm[i])])));
    }
    for (const grid::AtomSite& a : geometry) {
      const Vec3 p = apply(t, a.pos);
      img.push_back(static_cast<std::uint64_t>(a.z));
      for (int i = 0; i < 3; ++i) {
        double v = p[i];
        if (v == 0.0) v = 0.0;
        img.push_back(std::bit_cast<std::uint64_t>(v));
      }
    }
    return img;
  };
  CanonicalKey out;
  std::vector<std::uint64_t> best;
  if (!use_symmetry) {
    best = image(AxisTransform{});
  } else {
    for (const AxisTransform& t : axis_transforms()) {
      std::vector<std::uint64_t> img = image(t);
      if (best.empty() || img < best) {
        best = std::move(img);
        out.to_canonical = t;
      }
    }
  }
  Hash64 h;
  h.str("field-force");  // domain separation from displacement keys
  h.u64(settings_fp);
  h.u64(best.size());
  for (std::uint64_t v : best) h.u64(v);
  out.key = h.value();
  return out;
}

std::uint64_t settings_fingerprint(const JobSpec& spec) {
  Hash64 h;
  h.u64(static_cast<std::uint64_t>(spec.engine));
  h.u64(static_cast<std::uint64_t>(spec.tier));
  if (spec.tier == Tier::Bec) h.f64(spec.bec_field);
  if (spec.engine == EngineKind::Modeled) {
    // Modeled results depend on the scale only (geometry is synthetic).
    h.u64(spec.scale.n_atoms);
    h.f64(spec.scale.points_per_atom);
    h.f64(spec.scale.basis_per_atom);
    h.f64(spec.scale.points_per_batch);
    h.f64(spec.scale.local_fns_per_batch);
    h.u64(static_cast<std::uint64_t>(spec.scale.multipole_lmax));
    h.f64(spec.scale.radial_shells_per_atom);
    return h.value();
  }
  const scf::ScfOptions& scf = spec.options.vibrations.scf;
  h.f64(spec.options.alpha_displacement);
  h.u64(static_cast<std::uint64_t>(scf.functional));
  h.u64(static_cast<std::uint64_t>(scf.grid.level));
  h.u64(static_cast<std::uint64_t>(scf.multipole_lmax));
  h.f64(scf.density_tol);
  h.f64(scf.energy_tol);
  h.u64(static_cast<std::uint64_t>(scf.max_iterations));
  h.f64(scf.smearing);
  h.f64(scf.mixing);
  h.f64(spec.options.dfpt.tol);
  h.u64(static_cast<std::uint64_t>(spec.options.dfpt.max_iterations));
  return h.value();
}

JobEstimate estimate_job(const JobSpec& spec) {
  // Map both engines onto a SystemScale so every job is charged through
  // the same machine model (DESIGN.md S11): real molecules get the light
  // grid/basis densities of core::SystemScale at their own atom count.
  core::SystemScale scale = spec.scale;
  if (spec.engine == EngineKind::Real) {
    scale = core::SystemScale{};
    scale.n_atoms = spec.atoms.size();
  }
  SWRAMAN_REQUIRE(scale.n_atoms > 0, "estimate_job: empty system");
  const scaling::RamanJob model = core::make_dfpt_job(scale);
  const sunway::ArchParams arch = sunway::sw26010pro();
  const auto kernel_s = [&](const sunway::KernelWorkload& w) {
    return modeled_time(w, arch, sunway::Variant::CpeTiledDbSimd);
  };
  // One displacement task = one polarizability: scf + 3 response
  // directions of dfpt_iterations DFPT cycles over the three grid kernels.
  const double iter_s =
      kernel_s(model.n1) + kernel_s(model.v1) + kernel_s(model.h1);
  const std::size_t n_coords = 3 * scale.n_atoms;

  JobEstimate est;
  if (spec.tier == Tier::Bec) {
    // One field-force task = one SCF solve at fixed geometry plus the
    // 6N frozen-state Lagrangian grid passes of the force stencil (two
    // of the three kernels each — no eigensolve). The task count is a
    // constant 13 + assembly (+ Hessian): the paper's O(1)-in-N field
    // loop, which is what admission control gets to exploit.
    const double field_tasks = static_cast<double>(raman::n_field_points());
    est.per_task_seconds =
        iter_s * model.scf_iterations +
        (kernel_s(model.n1) + kernel_s(model.v1)) *
            static_cast<double>(2 * n_coords);
    est.n_tasks = static_cast<std::size_t>(field_tasks) + 1 +
                  (spec.engine == EngineKind::Real && spec.with_modes ? 1 : 0);
    est.total_seconds = est.per_task_seconds * field_tasks;
  } else {
    const double cycles =
        model.scf_iterations +
        model.response_directions * model.dfpt_iterations;
    est.per_task_seconds = iter_s * cycles;
    // DAG: 6N displacements + 3N rows + 1 assembly (+ 1 Hessian task).
    est.n_tasks = 2 * n_coords + n_coords + 1 +
                  (spec.engine == EngineKind::Real && spec.with_modes ? 1 : 0);
    est.total_seconds =
        est.per_task_seconds * static_cast<double>(2 * n_coords);
  }
  // Resident footprint while the job is in flight: one GeometryRecord per
  // displacement node, the derivative matrices, and (real engine) the
  // basis-sized work arrays of the heaviest concurrent SCF.
  const double n_basis =
      static_cast<double>(scale.n_atoms) * scale.basis_per_atom;
  est.modeled_bytes =
      static_cast<double>(est.n_tasks) * 14 * 8.0 +            // records
      static_cast<double>(n_coords) * 12 * 8.0 +               // dalpha+dmu
      (spec.engine == EngineKind::Real ? 4.0 * n_basis * n_basis * 8.0 : 0.0);
  return est;
}

}  // namespace swraman::serve
