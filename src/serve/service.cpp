#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "raman/bec.hpp"
#include "raman/vibrations.hpp"
#include "robustness/fault.hpp"

namespace swraman::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

struct RamanService::JobState {
  std::uint64_t id = 0;
  std::uint64_t tag = 0;  // durable global id (sharded tier); 0 unused
  JobSpec spec;
  JobEstimate est;
  std::uint64_t settings_fp = 0;
  JobDag dag;
  // Per root node (displacement ids 0..6N-1, or field ids 0..12):
  // content address + ownership.
  std::vector<NodeKey> keys;
  std::unique_ptr<raman::Checkpoint> checkpoint;
  JobStatus status = JobStatus::Queued;
  JobResult result;
  double submit_time = 0.0;
  bool released = false;  // admission charge given back exactly once
  // Cross-shard trace context of this job's spans (gid + the submit span
  // they nest under). Written once at submit before the job is published;
  // immutable afterwards, so worker threads read it off-lock.
  obs::TraceContext trace;
};

RamanService::RamanService(ServiceOptions options)
    : options_(std::move(options)),
      real_engine_(std::make_unique<RealEngine>()),
      modeled_engine_(std::make_unique<ModeledEngine>(options_.modeled)),
      scheduler_(options_.admission) {
  // Make the "caller locks for us" contracts checkable: every mutating
  // scheduler/cache call must hold mutex_ (lock.guard_unheld otherwise).
  scheduler_.set_guard(&mutex_);
  cache_.set_guard(&mutex_);
  const std::string suffix =
      options_.shard_id >= 0 ? "." + std::to_string(options_.shard_id) : "";
  queue_gauge_name_ = "serve.queue.depth" + suffix;
  ratio_gauge_name_ = "serve.cache.hit_ratio" + suffix;
  log_prefix_ =
      options_.shard_id >= 0 ? "s" + std::to_string(options_.shard_id) : "";
  WorkerPool::Options pool_opts;
  pool_opts.n_workers = std::max<std::size_t>(1, options_.n_workers);
  pool_opts.steal = options_.work_stealing;
  pool_opts.pull_target_seconds = options_.pull_target_seconds;
  pool_opts.pull_max_tasks = options_.pull_max_tasks;
  pool_opts.log_prefix = log_prefix_;
  pool_ = std::make_unique<WorkerPool>(
      pool_opts,
      [this](std::size_t worker, TaskRef ref) { execute(worker, ref); },
      [this](double target, std::size_t max_tasks, std::vector<TaskRef>* out) {
        const lockcheck::CheckedLock lock(mutex_);
        return scheduler_.take(out, target, max_tasks);
      },
      [this](const std::vector<TaskRef>& orphans) {
        // A dying worker's deque is re-queued centrally: the tasks run
        // again on a surviving worker (work adoption, DESIGN.md S7/S11).
        const lockcheck::CheckedLock lock(mutex_);
        for (const TaskRef& ref : orphans) {
          auto it = jobs_.find(ref.job);
          if (it == jobs_.end()) continue;
          JobState& job = *it->second;
          if (job.status != JobStatus::Running) continue;
          scheduler_.push(job.spec.client, job.spec.priority,
                          node_cost(job, ref.node), ref);
        }
      });
  if (!options_.start_paused) pool_->start();
}

RamanService::~RamanService() { pool_->stop(); }

void RamanService::start() { pool_->start(); }

SubmitResult RamanService::submit(const JobSpec& spec,
                                  const SubmitOptions& sub) {
  SWRAMAN_TRACE_SPAN(span, "serve.submit");
  if (spec.engine == EngineKind::Real) {
    SWRAMAN_REQUIRE(!spec.atoms.empty(), "serve: Real job without atoms");
  } else {
    SWRAMAN_REQUIRE(spec.scale.n_atoms > 0,
                    "serve: Modeled job without a system scale");
    SWRAMAN_REQUIRE(!spec.with_modes,
                    "serve: with_modes requires the Real engine");
  }
  SWRAMAN_REQUIRE(spec.weight > 0.0, "serve: non-positive tenant weight");

  const JobEstimate est = estimate_job(spec);
  if (span.active()) {
    span.attr("tasks", static_cast<double>(est.n_tasks));
    span.attr("modeled_seconds", est.total_seconds);
  }

  // Cross-shard timeline: the submission nests under the router's
  // route/replay span carried in by sub.trace (no-op outside the sharded
  // tier, where the context is inactive).
  auto& jt = obs::JobTraceRegistry::instance();
  const std::uint64_t submit_span =
      jt.begin(sub.trace, "submit", options_.shard_id);
  jt.attr(sub.trace.gid, submit_span, "tenant", spec.client);
  jt.attr(sub.trace.gid, submit_span, "tier",
          std::string(tier_name(spec.tier)));
  jt.attr(sub.trace.gid, submit_span, "tasks",
          static_cast<double>(est.n_tasks));

  // One submission at a time, end to end: admission order, cache
  // ownership and job ids stay deterministic even though the service
  // mutex is released for the blocking middle phase below.
  const lockcheck::CheckedLock serial(submit_serial_mutex_);

  // Phase 1 (service lock): the admission decision — the only state a
  // rejected submission ever touches.
  {
    const lockcheck::CheckedLock lock(mutex_);
    ++tallies_.jobs_submitted;

    const AdmissionDecision decision =
        scheduler_.admit(spec, est, sub.force_admit);
    if (!decision.admitted) {
      ++tallies_.jobs_rejected;
      obs::count("serve.jobs.rejected");
      SubmitResult res;
      res.accepted = false;
      res.reason = decision.reason;
      // Retry-after hint: the modeled backlog divided over live workers
      // is roughly when today's queue has drained; a burning error
      // budget (the SLO monitor's backpressure hint) stretches it
      // further.
      const double workers =
          static_cast<double>(std::max<std::size_t>(1, pool_->alive()));
      res.retry_after_s =
          (decision.outstanding_seconds + est.per_task_seconds) / workers;
      if (options_.backpressure) {
        res.retry_after_s *= 1.0 + options_.backpressure();
      }
      jt.attr(sub.trace.gid, submit_span, "rejected", decision.reason);
      jt.end(sub.trace.gid, submit_span);
      log::warn("serve: rejected job '", spec.name, "' of tenant '",
                spec.client, "' (", decision.reason, "), retry after ",
                res.retry_after_s, " s");
      return res;
    }
  }

  // Phase 2 (no service lock): everything blocking or expensive — the
  // WAL fsync behind on_accept, content-address hashing, checkpoint
  // replay reads. The admission charge is the only shared state this
  // phase owns; any throw gives it back under a fresh lock.
  // Log-before-ack still holds: the durable append finishes before any
  // job state exists or the submission is acknowledged. A throwing hook
  // (wedged WAL) aborts the submission with nothing queued — the job
  // was never acknowledged, so nothing can be lost.
  const std::uint64_t settings_fp = settings_fingerprint(spec);
  const std::size_t n = 3 * spec.n_atoms();
  const bool with_hessian = spec.engine == EngineKind::Real && spec.with_modes;
  const bool bec = spec.tier == Tier::Bec;
  const std::size_t n_field =
      bec ? static_cast<std::size_t>(raman::n_field_points()) : 0;
  JobDag dag;
  std::vector<NodeKey> keys;
  std::unique_ptr<raman::Checkpoint> checkpoint;
  try {
    if (options_.hooks.on_accept) {
      options_.hooks.on_accept(sub.tag, spec);
    }

    dag = bec ? JobDag(n, with_hessian, n_field) : JobDag(n, with_hessian);

    if (bec) {
      // Content addresses for the 13 field-force tasks. Real jobs hash
      // the equilibrium geometry plus the integer field direction under
      // one shared transform (canonical_field_key); modeled jobs hash
      // (scale fingerprint, stencil index) — symmetry-blind but still
      // dedup-identical across repeated submissions.
      keys.resize(n_field);
      for (std::size_t idx = 0; idx < n_field; ++idx) {
        if (spec.engine == EngineKind::Real) {
          const CanonicalKey ck = canonical_field_key(
              spec.atoms, raman::field_direction(static_cast<int>(idx)),
              settings_fp, options_.use_symmetry);
          keys[idx].key = ck.key;
          keys[idx].to_canonical = ck.to_canonical;
        } else {
          Hash64 h;
          h.u64(settings_fp);
          h.str("field");
          h.u64(idx);
          keys[idx].key = h.value();
        }
      }
    } else {
      // Content addresses for every displacement node. Real jobs hash the
      // actual displaced geometry (canonicalized under the axis group);
      // modeled jobs hash (scale fingerprint, coord, sign) —
      // symmetry-blind but still dedup-identical across repeated
      // submissions.
      keys.resize(2 * n);
      for (std::size_t coord = 0; coord < n; ++coord) {
        for (int s = 0; s < 2; ++s) {
          const int sign = s == 0 ? +1 : -1;
          const std::size_t node = dag.displacement_id(coord, sign);
          if (spec.engine == EngineKind::Real) {
            std::vector<grid::AtomSite> geometry = spec.atoms;
            geometry[coord / 3].pos[static_cast<int>(coord % 3)] +=
                sign * spec.options.alpha_displacement;
            const CanonicalKey ck =
                canonical_key(geometry, settings_fp, options_.use_symmetry);
            keys[node].key = ck.key;
            keys[node].to_canonical = ck.to_canonical;
          } else {
            Hash64 h;
            h.u64(settings_fp);
            h.u64(coord);
            h.u64(static_cast<std::uint64_t>(sign + 2));
            keys[node].key = h.value();
          }
        }
      }
    }

    // Checkpoint restart: records finished by a previous incarnation of
    // this job complete their nodes before anything is queued. The bec
    // tier keys its field records (stencil index, sign 0) and stamps the
    // field strength into the header's displacement slot.
    if (spec.engine == EngineKind::Real &&
        !spec.options.checkpoint_path.empty()) {
      lockcheck::blocking_call("checkpoint.replay");
      checkpoint = std::make_unique<raman::Checkpoint>(
          spec.options.checkpoint_path, spec.atoms,
          bec ? spec.bec_field : spec.options.alpha_displacement);
    }
  } catch (...) {
    {
      const lockcheck::CheckedLock lock(mutex_);
      scheduler_.release(est);
    }
    jt.attr(sub.trace.gid, submit_span, "aborted", "wal");
    jt.end(sub.trace.gid, submit_span);
    throw;
  }

  // Phase 3 (service lock): publish the job — id assignment, state,
  // warm/checkpoint/dedup completions (their durability notifications
  // deferred to the off-lock hook drain), dispatch.
  SubmitResult res;
  {
    const lockcheck::CheckedLock lock(mutex_);
    ++tallies_.jobs_accepted;
    obs::count("serve.jobs.accepted");
    const std::uint64_t id = next_job_id_++;
    auto owned = std::make_unique<JobState>();
    JobState& job = *owned;
    job.id = id;
    job.tag = sub.tag;
    // Task spans of this job nest under its submit span (falling back to
    // the caller's parent when jobtrace was toggled mid-flight).
    job.trace = sub.trace;
    if (submit_span != 0) job.trace.parent_span = submit_span;
    job.spec = spec;
    job.est = est;
    job.settings_fp = settings_fp;
    job.submit_time = now_seconds();
    job.status = JobStatus::Running;
    job.result.status = JobStatus::Running;
    job.dag = std::move(dag);
    job.result.dalpha = linalg::Matrix(n, 9);
    job.result.dmu = linalg::Matrix(n, 3);
    job.keys = std::move(keys);
    job.checkpoint = std::move(checkpoint);

    jobs_.emplace(id, std::move(owned));

    std::size_t n_warm = 0;
    std::size_t n_ckpt = 0;
    std::size_t n_dedup_hits = 0;
    std::size_t n_dedup_waits = 0;
    std::vector<std::size_t> pending_roots;
    for (std::size_t node_id : job.dag.roots()) {
      const TaskNode& node = job.dag.node(node_id);
      if (node.kind == TaskKind::Displacement ||
          node.kind == TaskKind::FieldForce) {
        // WAL-replay warm set first, then the per-job checkpoint: either
        // way the record is re-notified to the durability hook so the new
        // shard incarnation's log carries it (replay-of-replay safety).
        const raman::GeometryRecord* warm_rec = nullptr;
        if (sub.warm != nullptr) {
          const auto it = sub.warm->find({node.coord, node.sign});
          if (it != sub.warm->end()) warm_rec = &it->second;
        }
        if (warm_rec == nullptr && job.checkpoint != nullptr) {
          if (const raman::GeometryRecord* rec =
                  job.checkpoint->lookup(node.coord, node.sign)) {
            warm_rec = rec;
            ++n_ckpt;
            ++tallies_.checkpoint_hits;
            obs::count("serve.checkpoint.hits");
          }
        } else if (warm_rec != nullptr) {
          ++n_warm;
          ++tallies_.warm_hits;
          obs::count("serve.warm.hits");
        }
        if (warm_rec != nullptr) {
          job.dag.records[node_id] = *warm_rec;
          defer_durable_locked(job.tag, node.coord, node.sign, *warm_rec,
                               nullptr);
          complete_node(kNoWorker, job, node_id);
          continue;
        }
      }
      pending_roots.push_back(node_id);
    }

    for (std::size_t node_id : pending_roots) {
      const TaskNode& node = job.dag.node(node_id);
      if ((node.kind == TaskKind::Displacement ||
           node.kind == TaskKind::FieldForce) &&
          options_.use_cache) {
        raman::GeometryRecord rec;
        CacheWaiter waiter;
        waiter.job = id;
        waiter.node = node_id;
        waiter.from_canonical = inverse(job.keys[node_id].to_canonical);
        switch (cache_.reference(job.keys[node_id].key, waiter, &rec)) {
          case DisplacementCache::Ref::Owner:
            job.keys[node_id].owner = true;
            dispatch_ready(kNoWorker, job, node_id);
            break;
          case DisplacementCache::Ref::Hit:
            ++n_dedup_hits;
            job.dag.records[node_id] = rec;
            defer_durable_locked(job.tag, node.coord, node.sign, rec, nullptr);
            complete_node(kNoWorker, job, node_id);
            break;
          case DisplacementCache::Ref::Wait:
            ++n_dedup_waits;
            break;  // released when the owner completes
        }
      } else {
        dispatch_ready(kNoWorker, job, node_id);
      }
    }
    pool_->notify();

    if (submit_span != 0) {
      if (n_warm != 0) {
        jt.attr(job.trace.gid, submit_span, "warm_hits",
                static_cast<double>(n_warm));
      }
      if (n_ckpt != 0) {
        jt.attr(job.trace.gid, submit_span, "checkpoint_hits",
                static_cast<double>(n_ckpt));
      }
      if (n_dedup_hits + n_dedup_waits != 0) {
        const std::uint64_t ev =
            jt.event(job.trace, "dedup", options_.shard_id);
        jt.attr(job.trace.gid, ev, "hits",
                static_cast<double>(n_dedup_hits));
        jt.attr(job.trace.gid, ev, "waits",
                static_cast<double>(n_dedup_waits));
      }
      jt.end(job.trace.gid, submit_span);
    }
    update_health_gauges_locked();

    res.accepted = true;
    res.job_id = id;
  }
  drain_hooks();
  return res;
}

void RamanService::defer_durable_locked(std::uint64_t tag, std::size_t coord,
                                        int sign,
                                        const raman::GeometryRecord& rec,
                                        raman::Checkpoint* ckpt) {
  if (!options_.hooks.on_task_durable && ckpt == nullptr) return;
  pending_durable_.push_back({tag, coord, sign, rec, ckpt});
  pending_hooks_.fetch_add(1, std::memory_order_release);
}

void RamanService::drain_hooks() {
  // Fast path: nothing queued (the common case — computed results notify
  // their hooks directly on the worker thread, off-lock).
  if (pending_hooks_.load(std::memory_order_acquire) == 0) return;
  // Serialize drains so checkpoint/WAL record order is stable; the lock
  // is kAllowsBlocking because the whole point is to fsync under it.
  const lockcheck::CheckedLock serial(hook_drain_mutex_);
  while (true) {
    std::vector<PendingDurable> durable;
    std::vector<PendingFinish> finish;
    {
      const lockcheck::CheckedLock lock(mutex_);
      durable.swap(pending_durable_);
      finish.swap(pending_finish_);
      pending_hooks_.store(0, std::memory_order_release);
    }
    if (durable.empty() && finish.empty()) return;
    for (const PendingDurable& d : durable) {
      if (d.ckpt != nullptr) {
        lockcheck::blocking_call("checkpoint.append");
        const lockcheck::CheckedLock ckpt_lock(checkpoint_mutex_);
        d.ckpt->record(d.coord, d.sign, d.rec);
      }
      if (options_.hooks.on_task_durable) {
        options_.hooks.on_task_durable(d.tag, d.coord, d.sign, d.rec);
      }
    }
    for (const PendingFinish& f : finish) {
      if (options_.hooks.on_finish) {
        options_.hooks.on_finish(f.tag, f.result);
      }
    }
    // Hooks may themselves complete waiters (a published record releasing
    // a dedup wait) and enqueue more work — loop until the outboxes stay
    // empty.
  }
}

void RamanService::update_health_gauges_locked() {
  obs::gauge_set(queue_gauge_name_.c_str(),
                 static_cast<double>(scheduler_.queued()));
  obs::gauge_set(ratio_gauge_name_.c_str(), cache_.hit_ratio());
}

double RamanService::node_cost(const JobState& job, std::size_t node) const {
  switch (job.dag.node(node).kind) {
    case TaskKind::Displacement:
    case TaskKind::FieldForce:
      return job.est.per_task_seconds;
    case TaskKind::Hessian:
      // (1 + 6N + O(N^2)) extra SCF solves; charge quadratically in the
      // coordinate count relative to one displacement.
      return job.est.per_task_seconds *
             static_cast<double>(job.dag.n_coords() * job.dag.n_coords()) /
             6.0;
    case TaskKind::Row:
    case TaskKind::Assemble:
      return job.est.per_task_seconds * 0.01;  // bookkeeping-sized
  }
  return job.est.per_task_seconds;
}

void RamanService::dispatch_ready(std::size_t worker, JobState& job,
                                  std::size_t node) {
  const TaskRef ref{job.id, node};
  if (worker != kNoWorker && pool_->started()) {
    // Continuation: depth-first onto the finishing worker's own deque.
    pool_->push_local(worker, ref);
  } else {
    scheduler_.push(job.spec.client, job.spec.priority, node_cost(job, node),
                    ref);
  }
}

void RamanService::complete_node(std::size_t worker, JobState& job,
                                 std::size_t node) {
  for (std::size_t succ : job.dag.complete(node)) {
    dispatch_ready(worker, job, succ);
  }
  if (job.dag.all_done()) {
    finish_job(job, JobStatus::Completed, {});
  }
}

void RamanService::finish_job(JobState& job, JobStatus status,
                              const std::string& error) {
  job.status = status;
  job.result.status = status;
  job.result.error = error;
  job.result.latency_s = now_seconds() - job.submit_time;
  if (!job.released) {
    job.released = true;
    scheduler_.release(job.est);
  }
  if (status == JobStatus::Completed) {
    ++tallies_.jobs_completed;
    obs::count("serve.jobs.completed");
  } else {
    ++tallies_.jobs_failed;
    obs::count("serve.jobs.failed");
  }
  obs::observe(("serve.latency." + job.spec.client).c_str(),
               job.result.latency_s);
  obs::observe(
      ("serve.latency.tier." + std::string(tier_name(job.spec.tier)))
          .c_str(),
      job.result.latency_s);
  obs::observe("serve.latency", job.result.latency_s);
  auto& jt = obs::JobTraceRegistry::instance();
  const std::uint64_t ev = jt.event(job.trace, "finish", options_.shard_id);
  jt.attr(job.trace.gid, ev, "status",
          std::string(job_status_name(status)));
  jt.attr(job.trace.gid, ev, "latency_s", job.result.latency_s);
  update_health_gauges_locked();
  // The finish hook (WAL "done" record) is deferred to the off-lock
  // drain; the record is best-effort by the WAL's contract, so waking
  // waiters first loses nothing durable.
  if (options_.hooks.on_finish) {
    pending_finish_.push_back({job.tag, job.result});
    pending_hooks_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_all();
}

void RamanService::fail_job_locked(std::uint64_t job_id,
                                   const std::string& error) {
  // Failure cascades along dedup edges: waiters of this job's unfinished
  // owned keys fail with it (their entries are dropped so a resubmission
  // can retry cleanly).
  std::vector<std::pair<std::uint64_t, std::string>> worklist;
  worklist.emplace_back(job_id, error);
  while (!worklist.empty()) {
    auto [id, why] = std::move(worklist.back());
    worklist.pop_back();
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    JobState& job = *it->second;
    if (job.status != JobStatus::Running) continue;
    log::warn("serve: job '", job.spec.name, "' (tenant '", job.spec.client,
              "') failed: ", why);
    finish_job(job, JobStatus::Failed, why);
    if (!options_.use_cache) continue;
    for (std::size_t node = 0; node < job.keys.size(); ++node) {
      if (!job.keys[node].owner || job.dag.node(node).done) continue;
      for (const CacheWaiter& w : cache_.fail(job.keys[node].key)) {
        if (w.job == id) continue;
        worklist.emplace_back(
            w.job, "dedup owner job " + std::to_string(id) + " failed: " + why);
      }
    }
  }
}

bool RamanService::evaluate_with_retry(JobState& job, const TaskContext& ctx,
                                       raman::GeometryRecord* rec) {
  DisplacementEngine& engine = job.spec.engine == EngineKind::Real
                                   ? *real_engine_
                                   : *modeled_engine_;
  const int attempts = std::max(1, job.spec.attempts);
  for (int attempt = 1;; ++attempt) {
    try {
      if (fault::should_fire(kFaultTaskFail)) {
        throw TimeoutError("serve: injected displacement-task failure");
      }
      *rec = engine.evaluate(ctx);
      return true;
    } catch (const FaultInjected&) {
      throw;  // simulated hard process death must propagate
    } catch (const Error& e) {
      if (attempt >= attempts) {
        const lockcheck::CheckedLock lock(mutex_);
        fail_job_locked(job.id, e.what());
        return false;
      }
      ++tallies_.task_retries;
      obs::count("serve.tasks.retried");
      log::warn("serve: task of job '", job.spec.name, "' failed on attempt ",
                attempt, "/", attempts, " (", e.what(), ") — retrying");
    }
  }
}

void RamanService::execute(std::size_t worker, TaskRef ref) {
  JobState* job = nullptr;
  TaskNode node;
  {
    const lockcheck::CheckedLock lock(mutex_);
    auto it = jobs_.find(ref.job);
    if (it == jobs_.end()) return;
    if (it->second->status != JobStatus::Running) return;  // failed: skip
    job = it->second.get();
    node = job->dag.node(ref.node);
  }
  // Log lines of this task carry "s<shard>/w<worker>/g<gid>" — one grep
  // recovers everything a job touched across shards and workers.
  const std::uint64_t gid = job->tag != 0 ? job->tag : ref.job;
  const log::ScopedContext log_ctx(log::thread_context() + "/g" +
                                   std::to_string(gid));
  SWRAMAN_TRACE_SPAN(span, "serve.task");
  if (span.active()) {
    span.attr("job", static_cast<double>(ref.job));
    span.attr("node", static_cast<double>(ref.node));
  }
  switch (node.kind) {
    case TaskKind::Displacement:
      run_displacement(worker, *job, ref.node);
      break;
    case TaskKind::FieldForce:
      run_field_force(worker, *job, ref.node);
      break;
    case TaskKind::Hessian:
      run_hessian(worker, *job, ref.node);
      break;
    case TaskKind::Row:
      run_row(worker, *job, ref.node);
      break;
    case TaskKind::Assemble:
      run_assemble(worker, *job, ref.node);
      break;
  }
  // Durability/finish notifications the task deferred while holding the
  // service lock (dedup releases, terminal transitions) run now,
  // off-lock, before the worker picks its next task.
  drain_hooks();
}

void RamanService::run_displacement(std::size_t worker, JobState& job,
                                    std::size_t node_id) {
  run_evaluation(worker, job, node_id, /*field_force=*/false);
}

void RamanService::run_field_force(std::size_t worker, JobState& job,
                                   std::size_t node_id) {
  run_evaluation(worker, job, node_id, /*field_force=*/true);
}

void RamanService::run_evaluation(std::size_t worker, JobState& job,
                                  std::size_t node_id, bool field_force) {
  const TaskNode node = job.dag.node(node_id);
  TaskContext ctx;
  ctx.spec = &job.spec;
  ctx.coord = node.coord;
  ctx.sign = node.sign;
  ctx.canonical_key = job.keys[node_id].key;
  ctx.to_canonical = job.keys[node_id].to_canonical;
  ctx.cost_seconds = job.est.per_task_seconds;
  ctx.field_force = field_force;
  ctx.n_forces = field_force ? 3 * job.spec.n_atoms() : 0;

  // Records cross frames as pure bit moves, forces included, so remote /
  // dedup / local completions stay bitwise equal.
  const AxisTransform& to_c = job.keys[node_id].to_canonical;
  const auto to_canonical_rec = [&to_c](const raman::GeometryRecord& r) {
    raman::GeometryRecord c;
    c.alpha = apply_tensor(to_c, r.alpha);
    c.dipole = apply_vector(to_c, r.dipole);
    if (!r.forces.empty()) c.forces = apply_forces(to_c, r.forces);
    return c;
  };

  // The job timeline's evaluation span. Deliberately left open on the
  // FaultInjected propagation path: an open span in the stitched timeline
  // is the footprint of work cut down by a shard death.
  auto& jt = obs::JobTraceRegistry::instance();
  const std::uint64_t dspan = jt.begin(
      job.trace, field_force ? "field-force" : "displacement",
      options_.shard_id);
  jt.attr(job.trace.gid, dspan, "coord", static_cast<double>(node.coord));
  jt.attr(job.trace.gid, dspan, "sign", static_cast<double>(node.sign));

  // Cross-shard cache first (off-lock, bounded latency): a peer shard may
  // already own this canonical key. The hit arrives in the canonical
  // frame and is rotated back, exactly like a local dedup wait release —
  // bit moves only, so remote and local completions are bitwise equal.
  const double t0 = now_seconds();
  raman::GeometryRecord rec;
  bool remote_hit = false;
  if (options_.hooks.remote_lookup) {
    raman::GeometryRecord canonical;
    obs::TraceContext lookup_ctx = job.trace;
    if (dspan != 0) lookup_ctx.parent_span = dspan;
    if (options_.hooks.remote_lookup(job.keys[node_id].key, &canonical,
                                     lookup_ctx, ctx.n_forces)) {
      const AxisTransform from =
          inverse(job.keys[node_id].to_canonical);
      rec.alpha = apply_tensor(from, canonical.alpha);
      rec.dipole = apply_vector(from, canonical.dipole);
      if (!canonical.forces.empty()) {
        rec.forces = apply_forces(from, canonical.forces);
      }
      remote_hit = true;
      obs::count("serve.cache.remote_hits");
      jt.attr(job.trace.gid, dspan, "remote_hit", 1.0);
    }
  }
  if (!remote_hit) {
    if (!evaluate_with_retry(job, ctx, &rec)) {
      jt.attr(job.trace.gid, dspan, "failed", 1.0);
      jt.end(job.trace.gid, dspan);
      return;
    }
    obs::observe("serve.task.seconds", now_seconds() - t0);
    if (options_.hooks.publish) {
      options_.hooks.publish(job.keys[node_id].key, to_canonical_rec(rec));
    }
  }

  // Durable before visible: the checkpoint append happens before the DAG
  // learns of the completion, so a crash never loses an acknowledged
  // geometry (same ordering the raman pipeline uses). Off the service
  // lock: only checkpoint_mutex_ (kAllowsBlocking by design) is held
  // across the file append.
  if (job.checkpoint != nullptr) {
    lockcheck::blocking_call("checkpoint.append");
    const lockcheck::CheckedLock ckpt_lock(checkpoint_mutex_);
    job.checkpoint->record(node.coord, node.sign, rec);
  }
  if (options_.hooks.on_task_durable) {
    options_.hooks.on_task_durable(job.tag, node.coord, node.sign, rec);
  }
  jt.end(job.trace.gid, dspan);

  const lockcheck::CheckedLock lock(mutex_);
  if (job.status != JobStatus::Running) {
    // The job failed while this task was in flight; still publish the
    // result so cross-job waiters of an owned key are not stranded.
    if (options_.use_cache && job.keys[node_id].owner) {
      std::vector<raman::GeometryRecord> waiter_records;
      const std::vector<CacheWaiter> waiters = cache_.complete(
          job.keys[node_id].key, to_canonical_rec(rec), &waiter_records);
      for (std::size_t i = 0; i < waiters.size(); ++i) {
        auto it = jobs_.find(waiters[i].job);
        if (it == jobs_.end() || it->second->status != JobStatus::Running) {
          continue;
        }
        JobState& wjob = *it->second;
        wjob.dag.records[waiters[i].node] = waiter_records[i];
        const TaskNode& wnode = wjob.dag.node(waiters[i].node);
        defer_durable_locked(wjob.tag, wnode.coord, wnode.sign,
                             waiter_records[i], nullptr);
        complete_node(worker, wjob, waiters[i].node);
      }
    }
    return;
  }

  if (remote_hit) {
    ++tallies_.remote_hits;
  } else {
    ++tallies_.tasks_executed;
    if (field_force) ++tallies_.field_tasks_executed;
    ++job.result.tasks_executed;
  }
  job.dag.records[node_id] = rec;

  if (options_.use_cache && job.keys[node_id].owner) {
    std::vector<raman::GeometryRecord> waiter_records;
    const std::vector<CacheWaiter> waiters = cache_.complete(
        job.keys[node_id].key, to_canonical_rec(rec), &waiter_records);
    for (std::size_t i = 0; i < waiters.size(); ++i) {
      auto it = jobs_.find(waiters[i].job);
      if (it == jobs_.end()) continue;
      JobState& wjob = *it->second;
      if (wjob.status != JobStatus::Running) continue;
      wjob.dag.records[waiters[i].node] = waiter_records[i];
      const TaskNode& wnode = wjob.dag.node(waiters[i].node);
      // The waiter job's checkpoint append and durability notification
      // are deferred to the off-lock hook drain: a task record is
      // best-effort (its loss only costs recomputation on replay), and
      // an fsync under the service lock would stall every worker.
      defer_durable_locked(wjob.tag, wnode.coord, wnode.sign,
                           waiter_records[i], wjob.checkpoint.get());
      // The waiter's timeline shows where its deduped result came from.
      const std::uint64_t rel =
          jt.event(wjob.trace, "dedup.release", options_.shard_id);
      jt.attr(wjob.trace.gid, rel, "owner_gid",
              static_cast<double>(job.tag != 0 ? job.tag : job.id));
      complete_node(worker, wjob, waiters[i].node);
    }
  }
  complete_node(worker, job, node_id);
}

void RamanService::run_hessian(std::size_t worker, JobState& job,
                               std::size_t node_id) {
  auto& jt = obs::JobTraceRegistry::instance();
  const std::uint64_t hspan =
      jt.begin(job.trace, "hessian", options_.shard_id);
  linalg::Matrix hess;
  try {
    if (fault::should_fire(kFaultTaskFail)) {
      throw TimeoutError("serve: injected Hessian-task failure");
    }
    SWRAMAN_TRACE_SCOPE("serve.hessian");
    hess = raman::energy_hessian(job.spec.atoms, job.spec.options.vibrations);
  } catch (const FaultInjected&) {
    throw;  // span stays open: the kill's footprint on the timeline
  } catch (const Error& e) {
    jt.attr(job.trace.gid, hspan, "failed", 1.0);
    jt.end(job.trace.gid, hspan);
    const lockcheck::CheckedLock lock(mutex_);
    fail_job_locked(job.id, e.what());
    return;
  }
  jt.end(job.trace.gid, hspan);
  const lockcheck::CheckedLock lock(mutex_);
  if (job.status != JobStatus::Running) return;
  ++tallies_.tasks_executed;
  ++job.result.tasks_executed;
  job.dag.hessian = std::move(hess);
  complete_node(worker, job, node_id);
}

void RamanService::run_row(std::size_t worker, JobState& job,
                           std::size_t node_id) {
  const lockcheck::CheckedLock lock(mutex_);
  if (job.status != JobStatus::Running) return;
  const TaskNode node = job.dag.node(node_id);
  const std::size_t coord = node.coord;
  const raman::GeometryRecord& plus =
      job.dag.records[job.dag.displacement_id(coord, +1)];
  const raman::GeometryRecord& minus =
      job.dag.records[job.dag.displacement_id(coord, -1)];
  const double d = job.spec.options.alpha_displacement;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      job.result.dalpha(coord, 3 * i + j) =
          (plus.alpha[3 * i + j] - minus.alpha[3 * i + j]) / (2.0 * d);
    }
    job.result.dmu(coord, i) = (plus.dipole[i] - minus.dipole[i]) / (2.0 * d);
  }
  complete_node(worker, job, node_id);
}

void RamanService::run_assemble(std::size_t worker, JobState& job,
                                std::size_t node_id) {
  auto& jt = obs::JobTraceRegistry::instance();
  const std::uint64_t aspan =
      jt.begin(job.trace, "assemble", options_.shard_id);
  // Spectrum assembly happens outside the lock on copies: the inputs are
  // frozen (every dependency is done) and potentially expensive to
  // contract for large molecules.
  raman::RamanSpectrum spectrum;
  raman::BroadenedSpectrum broadened;
  if (job.dag.bec()) {
    // Bec tier: the derivative rows come out of the 13-point field
    // stencil here (the dfpt tier computed them incrementally in its row
    // tasks). Same fixed-index-order contract: records[] is read in
    // stencil order regardless of completion order.
    std::vector<raman::GeometryRecord> records;
    {
      const lockcheck::CheckedLock lock(mutex_);
      if (job.status != JobStatus::Running) return;
      records = job.dag.records;
    }
    linalg::Matrix dalpha;
    linalg::Matrix dmu;
    try {
      SWRAMAN_TRACE_SCOPE("serve.assemble.bec");
      raman::bec_derivatives(records, job.spec.bec_field,
                             job.dag.n_coords(), /*enforce_sum_rule=*/true,
                             &dalpha, &dmu);
    } catch (const Error& e) {
      jt.attr(job.trace.gid, aspan, "failed", 1.0);
      jt.end(job.trace.gid, aspan);
      const lockcheck::CheckedLock lock(mutex_);
      fail_job_locked(job.id, e.what());
      return;
    }
    const lockcheck::CheckedLock lock(mutex_);
    if (job.status != JobStatus::Running) return;
    job.result.dalpha = std::move(dalpha);
    job.result.dmu = std::move(dmu);
  }
  if (job.dag.with_hessian()) {
    linalg::Matrix hess;
    linalg::Matrix dalpha;
    linalg::Matrix dmu;
    {
      const lockcheck::CheckedLock lock(mutex_);
      if (job.status != JobStatus::Running) return;
      hess = job.dag.hessian;
      dalpha = job.result.dalpha;
      dmu = job.result.dmu;
    }
    try {
      SWRAMAN_TRACE_SCOPE("serve.assemble");
      const raman::NormalModes modes = raman::normal_modes(
          job.spec.atoms, hess, job.spec.options.vibrations.project_rigid_body);
      spectrum = raman::assemble_spectrum(job.spec.atoms, modes, dalpha, dmu,
                                          job.spec.options.mode_floor_cm);
      // 5 cm^-1 Lorentzian on the paper's Fig. 19 plotting grid.
      broadened = raman::broaden(spectrum.modes, 5.0, 100.0, 4500.0, 2.0);
    } catch (const Error& e) {
      jt.attr(job.trace.gid, aspan, "failed", 1.0);
      jt.end(job.trace.gid, aspan);
      const lockcheck::CheckedLock lock(mutex_);
      fail_job_locked(job.id, e.what());
      return;
    }
  }
  jt.end(job.trace.gid, aspan);
  const lockcheck::CheckedLock lock(mutex_);
  if (job.status != JobStatus::Running) return;
  job.result.spectrum = std::move(spectrum);
  job.result.broadened = std::move(broadened);
  complete_node(worker, job, node_id);
}

JobResult RamanService::wait(std::uint64_t job_id) {
  if (options_.start_paused) pool_->start();
  lockcheck::CheckedLock lock(mutex_);
  auto it = jobs_.find(job_id);
  SWRAMAN_REQUIRE(it != jobs_.end(), "serve: wait on unknown job id");
  JobState& job = *it->second;
  cv_.wait(lock, [&job] {
    return job.status == JobStatus::Completed ||
           job.status == JobStatus::Failed;
  });
  return job.result;
}

void RamanService::drain() {
  if (options_.start_paused) pool_->start();
  lockcheck::CheckedLock lock(mutex_);
  cv_.wait(lock, [this] {
    for (const auto& [id, job] : jobs_) {
      if (job->status == JobStatus::Running ||
          job->status == JobStatus::Queued) {
        return false;
      }
    }
    return true;
  });
}

ServiceStats RamanService::stats() const {
  const lockcheck::CheckedLock lock(mutex_);
  ServiceStats s = tallies_;
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_hit_ratio = cache_.hit_ratio();
  s.queue_depth = scheduler_.queued();
  s.modeled_bytes = scheduler_.modeled_bytes();
  s.workers_alive = pool_->alive();
  return s;
}

}  // namespace swraman::serve
