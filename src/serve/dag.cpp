#include "serve/dag.hpp"

#include "common/error.hpp"

namespace swraman::serve {

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::Displacement: return "displacement";
    case TaskKind::Row: return "row";
    case TaskKind::FieldForce: return "field-force";
    case TaskKind::Hessian: return "hessian";
    case TaskKind::Assemble: return "assemble";
  }
  return "?";
}

JobDag::JobDag(std::size_t n_coords, bool with_hessian)
    : n_coords_(n_coords), with_hessian_(with_hessian) {
  SWRAMAN_REQUIRE(n_coords > 0 && n_coords % 3 == 0,
                  "JobDag: n_coords must be a positive multiple of 3");
  nodes_.resize(3 * n_coords + (with_hessian ? 1 : 0) + 1);
  records.resize(2 * n_coords);
  for (std::size_t c = 0; c < n_coords; ++c) {
    nodes_[displacement_id(c, +1)] = {TaskKind::Displacement, c, +1, 0, false};
    nodes_[displacement_id(c, -1)] = {TaskKind::Displacement, c, -1, 0, false};
    nodes_[row_id(c)] = {TaskKind::Row, c, +1, 2, false};
  }
  if (with_hessian) {
    nodes_[hessian_id()] = {TaskKind::Hessian, 0, +1, 0, false};
  }
  nodes_[assemble_id()] = {
      TaskKind::Assemble, 0, +1,
      static_cast<int>(n_coords + (with_hessian ? 1 : 0)), false};
}

JobDag::JobDag(std::size_t n_coords, bool with_hessian, std::size_t n_field)
    : n_coords_(n_coords), with_hessian_(with_hessian), n_field_(n_field) {
  SWRAMAN_REQUIRE(n_coords > 0 && n_coords % 3 == 0,
                  "JobDag: n_coords must be a positive multiple of 3");
  SWRAMAN_REQUIRE(n_field > 0, "JobDag: bec layout needs field tasks");
  nodes_.resize(n_field + (with_hessian ? 1 : 0) + 1);
  records.resize(n_field);
  for (std::size_t idx = 0; idx < n_field; ++idx) {
    nodes_[field_id(idx)] = {TaskKind::FieldForce, idx, 0, 0, false};
  }
  if (with_hessian) {
    nodes_[hessian_id()] = {TaskKind::Hessian, 0, +1, 0, false};
  }
  nodes_[assemble_id()] = {
      TaskKind::Assemble, 0, +1,
      static_cast<int>(n_field + (with_hessian ? 1 : 0)), false};
}

std::vector<std::size_t> JobDag::roots() const {
  std::vector<std::size_t> out;
  out.reserve(2 * n_coords_ + 1);
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].deps_pending == 0 && !nodes_[id].done) out.push_back(id);
  }
  return out;
}

std::vector<std::size_t> JobDag::successors(std::size_t id) const {
  const TaskNode& n = nodes_[id];
  switch (n.kind) {
    case TaskKind::Displacement:
      return {row_id(n.coord)};
    case TaskKind::Row:
    case TaskKind::FieldForce:
    case TaskKind::Hessian:
      return {assemble_id()};
    case TaskKind::Assemble:
      return {};
  }
  return {};
}

std::vector<std::size_t> JobDag::complete(std::size_t id) {
  TaskNode& n = nodes_[id];
  SWRAMAN_REQUIRE(!n.done && n.deps_pending == 0,
                  "JobDag::complete: node not runnable");
  n.done = true;
  ++n_done_;
  std::vector<std::size_t> ready;
  for (std::size_t s : successors(id)) {
    TaskNode& succ = nodes_[s];
    SWRAMAN_ASSERT(succ.deps_pending > 0, "JobDag: dependency underflow");
    if (--succ.deps_pending == 0) ready.push_back(s);
  }
  return ready;
}

}  // namespace swraman::serve
