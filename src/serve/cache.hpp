#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/lockcheck.hpp"
#include "raman/checkpoint.hpp"
#include "serve/job.hpp"

// Content-addressed displacement-result cache (DESIGN.md S11). Entries
// are keyed by canonical_key(geometry, settings): the first submission
// that references a key becomes the entry's *owner* and will evaluate it;
// every later reference — a duplicate submission from any tenant, or a
// symmetry-equivalent displacement of the same job — attaches as a waiter
// and receives the owner's result mapped through its own axis transform.
//
// Ownership is assigned at submission time (submissions are serialized by
// the service lock), so the set of evaluated keys — and with it the
// serve.cache.* counters and every job's spectrum — is independent of
// worker timing: a fixed trace always executes the same evaluations.
//
// The cache is bookkeeping only and does no locking itself; the service
// calls it under its own mutex. set_guard() makes that contract
// checkable: with SWRAMAN_CHECK=1 every mutating call verifies the
// guard mutex is held (lock.guard_unheld).

namespace swraman::serve {

// A waiter: node `node` of job `job` wants the entry's canonical record
// mapped back through from_canonical.
struct CacheWaiter {
  std::uint64_t job = 0;
  std::size_t node = 0;
  AxisTransform from_canonical;  // inverse of the waiter's to_canonical
};

class DisplacementCache {
 public:
  enum class Ref {
    Owner,  // caller must evaluate and complete() the key
    Hit,    // record already available (record() output filled)
    Wait,   // owner still in flight; caller was attached as waiter
  };

  // Installs the mutex the caller promises to hold around every mutating
  // call (nullptr: unchecked — standalone/unit-test use).
  void set_guard(const lockcheck::CheckedMutex* guard) { guard_ = guard; }

  // References `key` on behalf of (job, node). For Hit, `record` receives
  // the canonical result mapped through from_canonical.
  Ref reference(std::uint64_t key, const CacheWaiter& waiter,
                raman::GeometryRecord* record);

  // Stores the owner's result (already mapped *to* the canonical frame)
  // and returns the waiters to release; each waiter's record is mapped
  // into its own frame in `records` (same order). Tolerates a key that
  // fail() dropped while the owner was still evaluating.
  std::vector<CacheWaiter> complete(std::uint64_t key,
                                    const raman::GeometryRecord& canonical,
                                    std::vector<raman::GeometryRecord>* records);

  // Owner failed permanently: drop the entry so a later submission can
  // retry, and return the waiters to fail alongside it.
  std::vector<CacheWaiter> fail(std::uint64_t key);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_ratio() const {
    const double total = static_cast<double>(hits_ + misses_);
    return total == 0.0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  struct Entry {
    bool done = false;
    raman::GeometryRecord canonical;
    std::vector<CacheWaiter> waiters;
  };

  const lockcheck::CheckedMutex* guard_ = nullptr;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t hits_ = 0;    // references served without a new evaluation
  std::uint64_t misses_ = 0;  // references that created an owner
};

}  // namespace swraman::serve
