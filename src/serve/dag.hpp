#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "raman/checkpoint.hpp"
#include "serve/job.hpp"

// Per-job dependency DAG (DESIGN.md S11). One Raman job decomposes into
//
//   6N displacement tasks   (independent DFPT polarizabilities, paper
//                            Sec. 2.3 — the geometry level of Fig. 4)
//   3N row tasks            (central-difference d(alpha)/dR_c from the
//                            +d / -d pair of coordinate c)
//   1 optional Hessian task (with_modes: finite-difference normal modes,
//                            independent of every displacement)
//   1 assembly task         (rows [+ modes] -> derivatives / spectrum)
//
// Node ids are dense and deterministic: displacement (coord, sign) at
// 2*coord + (sign < 0), rows at 6N + coord, then Hessian, then assembly.
// The graph only tracks dependency counts; results live beside it so the
// assembly task reads them in fixed index order regardless of the order
// workers finished in — that is what makes job output bitwise independent
// of scheduling.
//
// The bec tier (DESIGN.md S15) swaps the displacement/row layers for a
// constant-width field layer:
//
//   13 field-force tasks    (finite-field SCF + force stencil points of
//                            raman/bec.hpp; node id = stencil index)
//   1 optional Hessian task
//   1 assembly task         (bec_derivatives over the 13 records, then
//                            modes/spectrum as in the dfpt tier)
//
// Field node ids are the stencil indices 0..12, then Hessian, then
// assembly; records[idx] holds stencil point idx.

namespace swraman::serve {

enum class TaskKind : std::uint8_t {
  Displacement,
  Row,
  FieldForce,
  Hessian,
  Assemble,
};

const char* task_kind_name(TaskKind k);

struct TaskNode {
  TaskKind kind = TaskKind::Displacement;
  std::size_t coord = 0;  // Displacement / Row; stencil idx for FieldForce
  int sign = +1;          // Displacement; 0 for FieldForce
  int deps_pending = 0;   // remaining unfinished dependencies
  bool done = false;
};

class JobDag {
 public:
  // n_coords = 3N; with_hessian adds the normal-mode task.
  JobDag() = default;
  JobDag(std::size_t n_coords, bool with_hessian);
  // Bec-tier shape: n_field field-force roots feeding the assembly.
  JobDag(std::size_t n_coords, bool with_hessian, std::size_t n_field);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::size_t n_coords() const { return n_coords_; }
  [[nodiscard]] bool with_hessian() const { return with_hessian_; }
  [[nodiscard]] bool bec() const { return n_field_ != 0; }
  [[nodiscard]] std::size_t n_field() const { return n_field_; }
  [[nodiscard]] const TaskNode& node(std::size_t id) const {
    return nodes_[id];
  }

  [[nodiscard]] std::size_t displacement_id(std::size_t coord,
                                            int sign) const {
    return 2 * coord + (sign < 0 ? 1 : 0);
  }
  [[nodiscard]] std::size_t row_id(std::size_t coord) const {
    return 2 * n_coords_ + coord;
  }
  [[nodiscard]] std::size_t field_id(std::size_t idx) const {
    return idx;  // valid only when bec()
  }
  [[nodiscard]] std::size_t hessian_id() const {
    // Valid only when with_hessian().
    return bec() ? n_field_ : 3 * n_coords_;
  }
  [[nodiscard]] std::size_t assemble_id() const {
    return (bec() ? n_field_ : 3 * n_coords_) + (with_hessian_ ? 1 : 0);
  }

  // Roots: every node with no dependencies (displacements + Hessian).
  [[nodiscard]] std::vector<std::size_t> roots() const;

  // Marks `id` done and returns the successors that became ready.
  std::vector<std::size_t> complete(std::size_t id);

  [[nodiscard]] std::size_t n_done() const { return n_done_; }
  [[nodiscard]] bool all_done() const { return n_done_ == nodes_.size(); }

  // Result slots, written by task execution, read by later tasks in fixed
  // index order.
  std::vector<raman::GeometryRecord> records;  // per displacement node
  linalg::Matrix hessian;                      // Hessian task output

 private:
  [[nodiscard]] std::vector<std::size_t> successors(std::size_t id) const;

  std::size_t n_coords_ = 0;
  bool with_hessian_ = false;
  std::size_t n_field_ = 0;  // 0: dfpt layout; >0: bec layout
  std::vector<TaskNode> nodes_;
  std::size_t n_done_ = 0;
};

}  // namespace swraman::serve
