#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/cholesky.hpp"

namespace swraman::linalg {

namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

// Householder reduction of symmetric a (modified in place into the
// accumulated orthogonal transform) to tridiagonal form; d receives the
// diagonal, e the sub-diagonal in e[1..n-1] (e[0] = 0). Classic tred2.
void tred2(Matrix& a, std::vector<double>& d, std::vector<double>& e) {
  const std::size_t n = a.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  if (n == 0) return;

  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k)
            a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += a(i, k) * a(k, j);
        for (std::size_t k = 0; k < i; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

}  // namespace

void tql2(std::vector<double>& d, std::vector<double>& e, Matrix* vectors) {
  const std::size_t n = d.size();
  if (n == 0) return;
  SWRAMAN_REQUIRE(e.size() == n - 1 || e.size() == n,
                  "tql2: subdiagonal size must be n-1 or n");
  // Internal convention: f[i] couples d[i-1], d[i]; shift input accordingly.
  std::vector<double> f(n, 0.0);
  if (e.size() == n - 1) {
    for (std::size_t i = 1; i < n; ++i) f[i] = e[i - 1];
  } else {
    f = e;
  }
  for (std::size_t i = 1; i < n; ++i) f[i - 1] = f[i];
  f[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m = l;
    for (;;) {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(f[m]) <= 1e-300 ||
            std::abs(f[m]) <= 1e-15 * dd)
          break;
      }
      if (m == l) break;
      SWRAMAN_REQUIRE(++iter <= 50, "tql2: too many iterations");
      double g = (d[l + 1] - d[l]) / (2.0 * f[l]);
      double r = hypot2(g, 1.0);
      g = d[m] - d[l] + f[l] / (g + (g >= 0.0 ? std::abs(r) : -std::abs(r)));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      for (std::size_t i = m; i-- > l;) {
        double fi = s * f[i];
        const double b = c * f[i];
        r = hypot2(fi, g);
        f[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          f[m] = 0.0;
          break;
        }
        s = fi / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        if (vectors != nullptr) {
          Matrix& z = *vectors;
          for (std::size_t k = 0; k < z.rows(); ++k) {
            fi = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * fi;
            z(k, i) = c * z(k, i) - s * fi;
          }
        }
      }
      if (r == 0.0 && m > l + 1) continue;
      d[l] -= p;
      f[l] = g;
      f[m] = 0.0;
    }
  }

  // Sort ascending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });
  std::vector<double> ds(n);
  for (std::size_t j = 0; j < n; ++j) ds[j] = d[order[j]];
  d = ds;
  if (vectors != nullptr) {
    Matrix sorted(vectors->rows(), n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < vectors->rows(); ++k)
        sorted(k, j) = (*vectors)(k, order[j]);
    *vectors = std::move(sorted);
  }
}

EigenResult eigh(const Matrix& a) {
  SWRAMAN_REQUIRE(a.rows() == a.cols(), "eigh: square matrix required");
  const std::size_t n = a.rows();
  EigenResult res;
  if (n == 0) return res;

  Matrix z = a;
  z.symmetrize();
  std::vector<double> d;
  std::vector<double> e;
  tred2(z, d, e);
  // tred2 produces e with e[0]=0, couplings at e[1..n-1]; convert to the
  // (n-1)-length convention expected by tql2.
  std::vector<double> sub(e.begin() + 1, e.end());
  tql2(d, sub, &z);
  res.values = std::move(d);
  res.vectors = std::move(z);
  return res;
}

EigenResult eigh_generalized(const Matrix& a, const Matrix& b) {
  SWRAMAN_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols() &&
                      a.rows() == b.rows(),
                  "eigh_generalized: shape mismatch");
  // B = L L^T; solve (L^-1 A L^-T) y = lambda y, then x = L^-T y.
  const Cholesky chol(b);
  Matrix c = chol.solve_lower(a);       // L^-1 A
  c = chol.solve_lower(c.transposed()); // L^-1 (L^-1 A)^T = L^-1 A^T L^-T
  EigenResult res = eigh(c);
  res.vectors = chol.solve_lower_transposed(res.vectors);
  return res;
}

}  // namespace swraman::linalg
