#pragma once

#include <vector>

#include "linalg/matrix.hpp"

// LU factorization with partial pivoting; used for general linear solves
// (e.g. the DIIS extrapolation system, which is symmetric indefinite).

namespace swraman::linalg {

class Lu {
 public:
  explicit Lu(Matrix a);

  [[nodiscard]] bool singular() const { return singular_; }
  [[nodiscard]] double determinant() const;

  // Solves A x = b. Throws swraman::Error when the factorization is singular.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;
  [[nodiscard]] Matrix solve(const Matrix& b) const;
  [[nodiscard]] Matrix inverse() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
  bool singular_ = false;
};

// Convenience: x = A^-1 b.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

}  // namespace swraman::linalg
