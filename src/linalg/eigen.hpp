#pragma once

#include <vector>

#include "linalg/matrix.hpp"

// Dense symmetric eigensolvers: Householder tridiagonalization followed by
// the implicit-shift QL algorithm (the classical EISPACK tred2/tql2 pair,
// reimplemented). Suitable for the basis dimensions of this project
// (n up to a few thousand).

namespace swraman::linalg {

struct EigenResult {
  std::vector<double> values;  // ascending
  Matrix vectors;              // column j is the eigenvector of values[j]
};

// Solves A v = lambda v for symmetric A. Only the lower triangle is read.
EigenResult eigh(const Matrix& a);

// Solves the generalized problem A v = lambda B v for symmetric A and
// symmetric positive-definite B (the KS secular equation H C = S C eps).
// Returned vectors are B-orthonormal: V^T B V = I.
EigenResult eigh_generalized(const Matrix& a, const Matrix& b);

// Eigen decomposition of a symmetric tridiagonal matrix given by its
// diagonal d and sub-diagonal e (e has size n-1); if vectors is non-null it
// must be initialized (typically to identity or a transformation matrix) and
// is rotated in place. Used directly by the radial atomic solver.
void tql2(std::vector<double>& d, std::vector<double>& e, Matrix* vectors);

}  // namespace swraman::linalg
