#pragma once

#include <vector>

#include "linalg/matrix.hpp"

// Cholesky factorization B = L L^T of a symmetric positive-definite matrix,
// with the triangular solves needed to reduce the generalized symmetric
// eigenproblem (H C = S C eps) to standard form.

namespace swraman::linalg {

class Cholesky {
 public:
  // Factorizes b (reads the lower triangle). Throws swraman::Error if b is
  // not positive definite.
  explicit Cholesky(const Matrix& b);

  [[nodiscard]] const Matrix& lower() const { return l_; }

  // Returns L^-1 X (forward substitution applied to each column of X).
  [[nodiscard]] Matrix solve_lower(const Matrix& x) const;

  // Returns L^-T X (back substitution applied to each column of X).
  [[nodiscard]] Matrix solve_lower_transposed(const Matrix& x) const;

  // Solves B y = x.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& x) const;

 private:
  Matrix l_;
};

}  // namespace swraman::linalg
