#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/error.hpp"

// Dense row-major matrix of doubles. Sized for quantum-chemistry problems
// (basis dimensions up to a few thousand); operations are straightforward
// cache-friendly triple loops, not a BLAS replacement.

namespace swraman::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  // Row-major initializer: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    SWRAMAN_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    SWRAMAN_ASSERT(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] double* row(std::size_t i) { return data_.data() + i * cols_; }
  [[nodiscard]] const double* row(std::size_t i) const {
    return data_.data() + i * cols_;
  }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] double trace() const;
  // Frobenius norm.
  [[nodiscard]] double norm() const;
  [[nodiscard]] double max_abs() const;

  void fill(double value);
  // Symmetrizes in place: A <- (A + A^T)/2. Requires square.
  void symmetrize();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);
Matrix operator*(const Matrix& a, const Matrix& b);

// y = A x.
std::vector<double> matvec(const Matrix& a, const std::vector<double>& x);

// tr(A B) for equally-shaped matrices with B used transposed-free, i.e.
// sum_ij A_ij B_ji. For symmetric B this equals sum_ij A_ij B_ij.
double trace_product(const Matrix& a, const Matrix& b);

// C = A^T B and C = A B^T helpers (avoid explicit transposes in hot paths).
Matrix at_b(const Matrix& a, const Matrix& b);
Matrix a_bt(const Matrix& a, const Matrix& b);

}  // namespace swraman::linalg
