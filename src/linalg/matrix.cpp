#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace swraman::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SWRAMAN_REQUIRE(r.size() == cols_, "Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  SWRAMAN_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "matrix shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  SWRAMAN_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "matrix shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

double Matrix::trace() const {
  SWRAMAN_REQUIRE(rows_ == cols_, "trace: square matrix required");
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::symmetrize() {
  SWRAMAN_REQUIRE(rows_ == cols_, "symmetrize: square matrix required");
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  SWRAMAN_REQUIRE(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order: streams through rows of b, cache friendly row-major.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* ci = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* bk = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aik * bk[j];
    }
  }
  return c;
}

std::vector<double> matvec(const Matrix& a, const std::vector<double>& x) {
  SWRAMAN_REQUIRE(a.cols() == x.size(), "matvec: dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += ai[j] * x[j];
    y[i] = s;
  }
  return y;
}

double trace_product(const Matrix& a, const Matrix& b) {
  SWRAMAN_REQUIRE(a.rows() == b.cols() && a.cols() == b.rows(),
                  "trace_product: shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * b(j, i);
  return s;
}

Matrix at_b(const Matrix& a, const Matrix& b) {
  SWRAMAN_REQUIRE(a.rows() == b.rows(), "at_b: dimension mismatch");
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* ak = a.row(k);
    const double* bk = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = ak[i];
      if (aki == 0.0) continue;
      double* ci = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += aki * bk[j];
    }
  }
  return c;
}

Matrix a_bt(const Matrix& a, const Matrix& b) {
  SWRAMAN_REQUIRE(a.cols() == b.cols(), "a_bt: dimension mismatch");
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* bj = b.row(j);
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += ai[k] * bj[k];
      c(i, j) = s;
    }
  }
  return c;
}

}  // namespace swraman::linalg
