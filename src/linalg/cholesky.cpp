#include "linalg/cholesky.hpp"

#include <cmath>

namespace swraman::linalg {

Cholesky::Cholesky(const Matrix& b) : l_(b.rows(), b.cols()) {
  SWRAMAN_REQUIRE(b.rows() == b.cols(), "Cholesky: square matrix required");
  const std::size_t n = b.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double djj = b(j, j);
    for (std::size_t k = 0; k < j; ++k) djj -= l_(j, k) * l_(j, k);
    SWRAMAN_REQUIRE(djj > 0.0, "Cholesky: matrix not positive definite");
    l_(j, j) = std::sqrt(djj);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = b(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Matrix Cholesky::solve_lower(const Matrix& x) const {
  const std::size_t n = l_.rows();
  SWRAMAN_REQUIRE(x.rows() == n, "solve_lower: dimension mismatch");
  Matrix y = x;
  for (std::size_t j = 0; j < y.cols(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double s = y(i, j);
      for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y(k, j);
      y(i, j) = s / l_(i, i);
    }
  }
  return y;
}

Matrix Cholesky::solve_lower_transposed(const Matrix& x) const {
  const std::size_t n = l_.rows();
  SWRAMAN_REQUIRE(x.rows() == n, "solve_lower_transposed: dimension mismatch");
  Matrix y = x;
  for (std::size_t j = 0; j < y.cols(); ++j) {
    for (std::size_t i = n; i-- > 0;) {
      double s = y(i, j);
      for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * y(k, j);
      y(i, j) = s / l_(i, i);
    }
  }
  return y;
}

std::vector<double> Cholesky::solve(const std::vector<double>& x) const {
  const std::size_t n = l_.rows();
  SWRAMAN_REQUIRE(x.size() == n, "Cholesky::solve: dimension mismatch");
  std::vector<double> y = x;
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

}  // namespace swraman::linalg
