#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

namespace swraman::linalg {

Lu::Lu(Matrix a) : lu_(std::move(a)) {
  SWRAMAN_REQUIRE(lu_.rows() == lu_.cols(), "Lu: square matrix required");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0);

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(p, j), lu_(k, j));
      std::swap(perm_[p], perm_[k]);
      sign_ = -sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double m = lu_(i, k);
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

double Lu::determinant() const {
  if (singular_) return 0.0;
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> Lu::solve(const std::vector<double>& b) const {
  SWRAMAN_REQUIRE(!singular_, "Lu::solve: singular matrix");
  const std::size_t n = lu_.rows();
  SWRAMAN_REQUIRE(b.size() == n, "Lu::solve: dimension mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * x[k];
    x[i] = s;
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= lu_(i, k) * x[k];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  SWRAMAN_REQUIRE(b.rows() == lu_.rows(), "Lu::solve: dimension mismatch");
  Matrix x(b.rows(), b.cols());
  std::vector<double> col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const std::vector<double> sol = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(lu_.rows())); }

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  return Lu(a).solve(b);
}

}  // namespace swraman::linalg
