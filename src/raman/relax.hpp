#pragma once

#include <vector>

#include "scf/scf_engine.hpp"

// Geometry relaxation by BFGS over finite-difference gradients of the SCF
// total energy. Harmonic analysis (and hence Raman frequencies) is only
// meaningful at a stationary point of the *calculated* potential-energy
// surface — each basis backend has its own minimum, so the paper's
// cross-code comparisons (Figs. 11, 19) relax per backend before the
// Hessian, exactly as production codes do.

namespace swraman::raman {

struct RelaxOptions {
  scf::ScfOptions scf;
  double gradient_step = 0.005;   // Bohr, central-difference step
  double force_tol = 2e-3;        // Ha/Bohr, max |gradient component|
  int max_iterations = 60;
  double max_displacement = 0.25; // Bohr, trust-radius cap per step
};

struct RelaxResult {
  std::vector<grid::AtomSite> atoms;
  double energy = 0.0;            // Ha at the final geometry
  double max_force = 0.0;         // Ha/Bohr
  int iterations = 0;
  bool converged = false;
};

// Finite-difference gradient of the SCF energy (3N components, Ha/Bohr).
std::vector<double> energy_gradient(const std::vector<grid::AtomSite>& atoms,
                                    const scf::ScfOptions& options,
                                    double step);

// BFGS relaxation from the given starting structure.
RelaxResult relax_geometry(std::vector<grid::AtomSite> atoms,
                           const RelaxOptions& options = {});

}  // namespace swraman::raman
