#pragma once

#include <vector>

#include "raman/raman.hpp"

// Harmonic vibrational thermochemistry from the computed frequencies: zero-
// point energy, vibrational internal energy / entropy / heat capacity and
// free-energy contributions in the harmonic-oscillator partition function.

namespace swraman::raman {

struct Thermochemistry {
  double zero_point_energy = 0.0;     // Hartree
  double vibrational_energy = 0.0;    // Hartree, thermal part (excl. ZPE)
  double vibrational_entropy = 0.0;   // Hartree / K
  double heat_capacity = 0.0;         // Hartree / K (Cv, vibrational)
  double free_energy = 0.0;           // ZPE + U_vib - T S_vib, Hartree
  double temperature = 298.15;        // K
};

// Computes harmonic thermochemistry from vibrational frequencies (cm^-1);
// frequencies below `floor_cm` (rigid-body residue / imaginary modes) are
// skipped, as is conventional.
Thermochemistry harmonic_thermochemistry(
    const std::vector<double>& frequencies_cm, double temperature_k = 298.15,
    double floor_cm = 20.0);

// Convenience overload on a computed Raman spectrum.
Thermochemistry harmonic_thermochemistry(const RamanSpectrum& spectrum,
                                         double temperature_k = 298.15);

}  // namespace swraman::raman
