#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "scf/scf_engine.hpp"

// Harmonic vibrational analysis: Hessian by central finite differences of
// the SCF total energy, mass-weighted normal modes with rigid-body
// projection. Frequencies in cm^-1 feed the Raman pipeline (paper Eq. 5:
// polarizability derivatives are contracted with these phonon/normal-mode
// eigenvectors).

namespace swraman::raman {

struct VibrationOptions {
  scf::ScfOptions scf;
  double displacement = 0.01;  // Bohr, central-difference step
  bool project_rigid_body = true;
};

// 3N x 3N Cartesian Hessian (Hartree / Bohr^2) by central finite
// differences of the total energy: 1 + 6N + 4*C(3N,2) SCF solutions. Every
// displaced SCF restarts from the equilibrium density matrix.
linalg::Matrix energy_hessian(const std::vector<grid::AtomSite>& atoms,
                              const VibrationOptions& options);

struct NormalModes {
  // All 3N frequencies ascending; rigid-body modes near zero (imaginary
  // frequencies reported as negative values).
  std::vector<double> frequencies_cm;
  // Cartesian displacement vectors (3N x 3N, column p = mode p), normalized
  // in mass-weighted coordinates.
  linalg::Matrix cartesian_modes;
  // Reduced mass of each mode, amu.
  std::vector<double> reduced_masses_amu;
};

// Diagonalizes the mass-weighted Hessian; optionally projects out the three
// translations and three (two for linear molecules) rotations first.
NormalModes normal_modes(const std::vector<grid::AtomSite>& atoms,
                         const linalg::Matrix& hessian,
                         bool project_rigid_body = true);

}  // namespace swraman::raman
