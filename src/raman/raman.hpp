#pragma once

#include <string>
#include <vector>

#include "dfpt/dfpt_engine.hpp"
#include "raman/checkpoint.hpp"
#include "raman/vibrations.hpp"

// Full ab initio Raman pipeline (paper Sec. 2.3, Eq. 5):
//
//   1. harmonic normal modes from the finite-difference Hessian,
//   2. polarizability derivatives d(alpha)/dR_I from DFPT polarizabilities
//      at 6N displaced geometries (3N forward + 3N backward, exactly the
//      paper's scheme — this is the embarrassingly parallel "geometry"
//      level of the 3-level parallelization),
//   3. contraction with the mode eigenvectors to (alpha')_p,
//   4. Raman activities S_p = 45 a'^2 + 7 gamma'^2 and broadened spectra.

namespace swraman::raman {

struct RamanOptions {
  VibrationOptions vibrations;
  dfpt::DfptOptions dfpt;
  double alpha_displacement = 0.01;  // Bohr, step for d(alpha)/dR
  double mode_floor_cm = 100.0;      // drop rigid-body / noise modes
  // Checkpoint file for the 6N displaced-geometry loop (see
  // raman/checkpoint.hpp). Empty = no checkpointing. A resumed run with
  // the same geometry re-evaluates only the missing geometries and
  // reproduces the uninterrupted spectrum exactly.
  std::string checkpoint_path;
  // Bounded retry per displaced geometry: a transient failure (comm
  // timeout, recovered-then-exhausted divergence) is retried this many
  // times before the pipeline gives up and rethrows.
  int geometry_attempts = 2;
};

struct RamanMode {
  double frequency_cm = 0.0;
  double activity = 0.0;          // A^4 / amu
  double depolarization = 0.0;    // 3 g^2 / (45 a^2 + 4 g^2)
  double ir_intensity = 0.0;      // km/mol, from the dipole derivative
  std::vector<double> cartesian;  // displacement pattern (3N)
};

struct RamanSpectrum {
  std::vector<RamanMode> modes;
  // Number of DFPT polarizability evaluations performed (6N + ...).
  // Strictly the displaced-geometry count: the bec tier's finite-field
  // force evaluations are accounted separately in n_field_forces so the
  // two tiers' costs stay comparable.
  int n_polarizabilities = 0;
  // Number of finite-field force evaluations (bec tier only; zero for
  // the full DFPT pipeline).
  int n_field_forces = 0;
};

struct BroadenedSpectrum {
  std::vector<double> wavenumber_cm;
  std::vector<double> intensity;
};

class RamanCalculator {
 public:
  RamanCalculator(std::vector<grid::AtomSite> atoms, RamanOptions options);

  // Runs the full pipeline: Hessian, modes, 6N displaced polarizabilities.
  [[nodiscard]] RamanSpectrum compute();

  // d(alpha)/dR as a (3N x 9) matrix of Cartesian-displacement derivatives
  // of the flattened 3x3 polarizability (step 2 alone, exposed for tests
  // and for the geometry-parallel scaling model). Also accumulates the
  // dipole derivatives d(mu)/dR from the same displaced SCF solutions,
  // giving IR intensities for free.
  [[nodiscard]] linalg::Matrix polarizability_derivatives();

  // d(mu)/dR (3N x 3), valid after polarizability_derivatives()/compute().
  [[nodiscard]] const linalg::Matrix& dipole_derivatives() const {
    return dmu_;
  }

  // DFPT polarizability evaluations actually performed by this calculator
  // (checkpointed geometries that were skipped on resume do not count).
  [[nodiscard]] int n_polarizabilities() const {
    return n_polarizabilities_;
  }

 private:
  linalg::Matrix polarizability_at(
      const std::vector<grid::AtomSite>& geometry, Vec3* dipole);

  // One displaced geometry (coordinate + sign), with bounded retry on
  // transient failures per RamanOptions::geometry_attempts.
  GeometryRecord evaluate_geometry(std::size_t coord, int sign);

  std::vector<grid::AtomSite> atoms_;
  RamanOptions options_;
  linalg::Matrix dmu_;
  int n_polarizabilities_ = 0;
};

// Steps 3 + 4 of the pipeline as a free function: contract d(alpha)/dR
// (3N x 9) and d(mu)/dR (3N x 3) with the normal modes into activities,
// depolarization ratios, and IR intensities. RamanCalculator::compute
// uses it after its own displacement loop; the serve subsystem's assembly
// task feeds it the DAG-collected derivatives — both paths share one
// implementation of the paper's Eq. 5 contraction.
RamanSpectrum assemble_spectrum(const std::vector<grid::AtomSite>& atoms,
                                const NormalModes& modes,
                                const linalg::Matrix& dalpha,
                                const linalg::Matrix& dmu,
                                double mode_floor_cm);

// Observed Stokes Raman intensity from the activity: the standard
// (nu0 - nu)^4 / nu frequency factor with the thermal Boltzmann
// population, for laser wavenumber nu0 (default 532 nm) at temperature T.
double observed_raman_intensity(double activity, double frequency_cm,
                                double laser_cm = 18796.99,
                                double temperature_k = 298.15);

// Lorentzian broadening of stick modes onto a wavenumber grid (the paper
// uses 5 cm^-1 smearing for Fig. 19).
BroadenedSpectrum broaden(const std::vector<RamanMode>& modes,
                          double sigma_cm, double min_cm, double max_cm,
                          double step_cm = 1.0);

// Weighted superposition of spectra (fragment composition for the
// protein-scale Fig. 19 substitution).
BroadenedSpectrum compose(
    const std::vector<std::pair<BroadenedSpectrum, double>>& parts);

}  // namespace swraman::raman
