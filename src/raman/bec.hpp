#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "raman/raman.hpp"
#include "raman/vibrations.hpp"
#include "scf/forces.hpp"

// Born-effective-charge fast tier (RASCBEC, Zhang et al., arXiv
// 2303.10228): Raman activities from finite-field Hellmann-Feynman
// forces instead of 6N displaced-geometry DFPT runs. Expanding the force
// on coordinate k in the applied field,
//
//   F_k(E) = F_k(0) + sum_a Z*_{k,a} E_a
//          + 1/2 sum_ab (d alpha_ab / dR_k) E_a E_b + O(E^3),
//
// the Maxwell relations of U(R, E) give Z*_{k,a} = dF_k/dE_a = dmu_a/dR_k
// (the Born effective charge) and d^2 F_k / dE_a dE_b = d alpha_ab / dR_k
// — exactly the derivative tensors the paper's Eq. 5 contraction needs,
// from O(1) field calculations instead of O(N) displacements.
//
// The stencil is 13 SCF solves at fixed geometry: the zero field, +/- E
// along each axis (first derivatives + diagonal second derivatives), and
// +/- E along each axis pair (cross second derivatives):
//
//   idx 0        : E = 0
//   idx 1+2a     : +E e_a          (a = 0, 1, 2)
//   idx 2+2a     : -E e_a
//   idx 7, 8     : +/- E (e_x+e_y)
//   idx 9, 10    : +/- E (e_y+e_z)
//   idx 11, 12   : +/- E (e_z+e_x)
//
// Directions are stored as integer triples scaled by the field strength,
// so symmetry transforms of a field map exactly onto another stencil
// vector (the serve tier's cache-key folding relies on this).
//
// Accuracy envelope: the forces are displaced-Lagrangian central
// differences (scf/forces.hpp) — exact for the implemented energy
// surface, Pulay and quadrature-motion terms included, up to one caveat:
// the multipole Hartree kernel is not self-adjoint (source-side Becke
// partition + angular projection vs plain field-side evaluation), so the
// SCF fixed point is stationary only up to the kernel's truncation
// error. That error vanishes with grid/lmax refinement: on the golden
// water grid (n_radial 28, angular_order 13) the derivative tensors
// agree with full DFPT at the 1-3% level; coarse plumbing-test grids are
// qualitative only. The translation sum rule (sum_A d alpha/dR_{A,c} = 0,
// sum_A dmu/dR_{A,c} = 0 for a neutral molecule) removes the rigid part
// of the residual; BecOptions::enforce_sum_rule projects it out by
// subtracting the per-direction atomic mean. Frequencies come from the
// same energy Hessian as the full pipeline and match it near-exactly;
// activity tolerances are documented in DESIGN.md §15.

namespace swraman::raman {

struct BecOptions {
  VibrationOptions vibrations;
  // Finite field strength, atomic units. 1e-2 balances the quadratic
  // stencil's truncation error against the force noise floor set by
  // ScfOptions::density_tol.
  double field_strength = 1e-2;
  double mode_floor_cm = 100.0;
  // Translation-sum-rule projection of the derivative tensors (removes
  // the rigid part of the missing Pulay terms). On by default; exposed
  // so tests can measure the raw Hellmann-Feynman error.
  bool enforce_sum_rule = true;
  // Checkpoint file for the field loop (same format as the displacement
  // checkpoint; field records are keyed (stencil index, sign 0) and the
  // header displacement slot carries the field strength).
  std::string checkpoint_path;
  // Bounded retry per field point, mirroring RamanOptions::geometry_attempts.
  int field_attempts = 2;
};

// Number of field points in the stencil (13).
int n_field_points();

// Integer direction triple of stencil point idx (entries in {-1, 0, +1}).
std::array<int, 3> field_direction(int idx);

// Physical field vector of stencil point idx at the given strength.
Vec3 field_vector(int idx, double strength);

// Differentiates the 13 field records (records[i] = stencil point i, with
// .forces of length n_coords and .dipole filled) into the paper's Eq. 5
// inputs: dalpha (n_coords x 9, d alpha_ab / dR_k) and dmu (n_coords x 3,
// dmu_a/dR_k = Z*_{k,a}). Pure arithmetic on the records — the serve
// tier's assemble task and BecCalculator share this one implementation so
// the two paths agree bitwise.
void bec_derivatives(const std::vector<GeometryRecord>& records,
                     double field_strength, std::size_t n_coords,
                     bool enforce_sum_rule, linalg::Matrix* dalpha,
                     linalg::Matrix* dmu);

// Equilibrium polarizability from the axis field records alone:
// alpha_ab = [mu_a(+E e_b) - mu_a(-E e_b)] / 2E. Pulay-free (the dipole
// is a pure density expectation value), so it validates the field
// machinery against DFPT independently of the force approximation.
linalg::Matrix finite_field_polarizability(
    const std::vector<GeometryRecord>& records, double field_strength);

// The bec-tier calculator: same external contract as RamanCalculator
// (compute() returns a RamanSpectrum reusing the vibrations + assembly +
// broadening pipeline) but step 2 costs 13 SCF solves total instead of
// 6N SCF+DFPT runs.
class BecCalculator {
 public:
  BecCalculator(std::vector<grid::AtomSite> atoms, BecOptions options);

  // Full pipeline: Hessian, modes, 13-point field loop, Eq. 5 assembly.
  [[nodiscard]] RamanSpectrum compute();

  // d(alpha)/dR (3N x 9) from the field stencil (step 2 alone). Also
  // fills dipole_derivatives().
  [[nodiscard]] linalg::Matrix polarizability_derivatives();

  // d(mu)/dR = Z* (3N x 3), valid after polarizability_derivatives().
  [[nodiscard]] const linalg::Matrix& dipole_derivatives() const {
    return dmu_;
  }

  // Evaluates (or replays from the checkpoint) all 13 field records.
  [[nodiscard]] std::vector<GeometryRecord> field_records();

  // Equilibrium polarizability via the finite-field dipole derivative.
  [[nodiscard]] linalg::Matrix finite_field_polarizability();

  // Finite-field force evaluations actually performed by this calculator
  // (checkpointed field points skipped on resume do not count).
  [[nodiscard]] int n_field_forces() const { return n_field_forces_; }

 private:
  // One field point, with bounded retry on transient failures.
  GeometryRecord evaluate_field(int idx);

  std::vector<grid::AtomSite> atoms_;
  BecOptions options_;
  linalg::Matrix dmu_;
  // Built lazily on the first fresh field evaluation (a fully
  // checkpointed resume never pays for the displaced engines) and shared
  // by all 13 stencil points — the displaced geometries are
  // field-independent.
  std::unique_ptr<scf::ForceEvaluator> forces_;
  int n_field_forces_ = 0;
};

}  // namespace swraman::raman
