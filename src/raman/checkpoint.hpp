#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "grid/atom_grid.hpp"

// Checkpoint/restart for the 6N displaced-geometry polarizability loop —
// the longest stage of the Raman pipeline (paper Sec. 2.3) and the one a
// node failure is most likely to interrupt on a large system. Every
// finished geometry (coordinate index + displacement sign) is appended to
// a versioned text file together with its polarizability tensor and
// dipole, flushed immediately; a resumed run replays the file and
// re-evaluates only the geometries that are missing, reproducing the
// fault-free spectrum bit-for-bit because the stored values round-trip at
// full double precision (%.17g).
//
// File format (one record per line, whitespace-separated):
//
//   swraman-raman-checkpoint <version>
//   system <n_coords> <displacement> <geometry-fingerprint-hex>
//   geom <coord> <+|-|0> <alpha(0,0)..alpha(2,2)> <mu_x> <mu_y> <mu_z>
//        [f <n> <F_0> ... <F_{n-1}>]   (tail on the same geom line)
//
// The bec tier reuses the same file: finite-field force records are keyed
// (field-stencil index, sign '0') — the index is a stencil slot rather
// than a coordinate, so it is bounded by kMaxFieldRecords instead of
// n_coords — and carry an optional flat-forces tail after the dipole.
// The header's displacement slot holds the field strength there, so the
// fingerprint still refuses cross-configuration resumes.
//
// A truncated trailing record (the signature of a crash mid-write) is
// dropped silently; a header or fingerprint mismatch — the file belongs
// to a different molecule, displacement, or format version — throws
// CheckpointError rather than silently mixing incompatible data.

namespace swraman::raman {

struct GeometryRecord {
  std::array<double, 9> alpha{};  // row-major 3x3 polarizability
  std::array<double, 3> dipole{};
  // Flat 3N forces; empty for displacement records, filled for the bec
  // tier's finite-field records.
  std::vector<double> forces;
};

class Checkpoint {
 public:
  static constexpr int kVersion = 1;
  // Upper bound on the stencil index of a sign-'0' (field) record; loose
  // on purpose so the file format survives a larger stencil.
  static constexpr std::size_t kMaxFieldRecords = 64;

  // Inactive checkpoint: lookups miss, records are no-ops.
  Checkpoint() = default;

  // Binds to `path`, validating any existing file against the geometry
  // (atom count, elements, positions) and displacement step and loading
  // its finished records. Creates the file (with header) when absent.
  Checkpoint(std::string path, const std::vector<grid::AtomSite>& atoms,
             double displacement);

  [[nodiscard]] bool active() const { return !path_.empty(); }

  // Number of finished geometry records currently known.
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  // Returns the stored record for (coord, sign) or nullptr.
  [[nodiscard]] const GeometryRecord* lookup(std::size_t coord,
                                             int sign) const;

  // Appends a finished geometry and flushes it to disk immediately so a
  // crash never loses more than the geometry in flight.
  void record(std::size_t coord, int sign, const GeometryRecord& rec);

 private:
  void write_header(std::size_t n_coords, double displacement,
                    std::uint64_t fp) const;
  void append_record(const std::pair<std::size_t, int>& key,
                     const GeometryRecord& rec) const;

  std::string path_;
  std::map<std::pair<std::size_t, int>, GeometryRecord> records_;
};

}  // namespace swraman::raman
