#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "grid/atom_grid.hpp"

// Checkpoint/restart for the 6N displaced-geometry polarizability loop —
// the longest stage of the Raman pipeline (paper Sec. 2.3) and the one a
// node failure is most likely to interrupt on a large system. Every
// finished geometry (coordinate index + displacement sign) is appended to
// a versioned text file together with its polarizability tensor and
// dipole, flushed immediately; a resumed run replays the file and
// re-evaluates only the geometries that are missing, reproducing the
// fault-free spectrum bit-for-bit because the stored values round-trip at
// full double precision (%.17g).
//
// File format (one record per line, whitespace-separated):
//
//   swraman-raman-checkpoint <version>
//   system <n_coords> <displacement> <geometry-fingerprint-hex>
//   geom <coord> <+|-> <alpha(0,0)..alpha(2,2)> <mu_x> <mu_y> <mu_z>
//
// A truncated trailing record (the signature of a crash mid-write) is
// dropped silently; a header or fingerprint mismatch — the file belongs
// to a different molecule, displacement, or format version — throws
// CheckpointError rather than silently mixing incompatible data.

namespace swraman::raman {

struct GeometryRecord {
  std::array<double, 9> alpha{};  // row-major 3x3 polarizability
  std::array<double, 3> dipole{};
};

class Checkpoint {
 public:
  static constexpr int kVersion = 1;

  // Inactive checkpoint: lookups miss, records are no-ops.
  Checkpoint() = default;

  // Binds to `path`, validating any existing file against the geometry
  // (atom count, elements, positions) and displacement step and loading
  // its finished records. Creates the file (with header) when absent.
  Checkpoint(std::string path, const std::vector<grid::AtomSite>& atoms,
             double displacement);

  [[nodiscard]] bool active() const { return !path_.empty(); }

  // Number of finished geometry records currently known.
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  // Returns the stored record for (coord, sign) or nullptr.
  [[nodiscard]] const GeometryRecord* lookup(std::size_t coord,
                                             int sign) const;

  // Appends a finished geometry and flushes it to disk immediately so a
  // crash never loses more than the geometry in flight.
  void record(std::size_t coord, int sign, const GeometryRecord& rec);

 private:
  void write_header(std::size_t n_coords, double displacement,
                    std::uint64_t fp) const;
  void append_record(const std::pair<std::size_t, int>& key,
                     const GeometryRecord& rec) const;

  std::string path_;
  std::map<std::pair<std::size_t, int>, GeometryRecord> records_;
};

}  // namespace swraman::raman
