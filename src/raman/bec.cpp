#include "raman/bec.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "raman/checkpoint.hpp"
#include "robustness/fault.hpp"
#include "scf/scf_engine.hpp"

namespace swraman::raman {

namespace {

// Stencil table: idx 0 zero field, 1..6 signed axes, 7..12 signed axis
// pairs (see bec.hpp). Order is load-bearing — checkpoint records and
// serve cache keys are keyed by the index.
constexpr std::array<std::array<int, 3>, 13> kStencil = {{
    {0, 0, 0},
    {+1, 0, 0},
    {-1, 0, 0},
    {0, +1, 0},
    {0, -1, 0},
    {0, 0, +1},
    {0, 0, -1},
    {+1, +1, 0},
    {-1, -1, 0},
    {0, +1, +1},
    {0, -1, -1},
    {+1, 0, +1},
    {-1, 0, -1},
}};

// Stencil indices of +/- E e_a and +/- E (e_a + e_b).
constexpr int axis_plus(int a) { return 1 + 2 * a; }
constexpr int axis_minus(int a) { return 2 + 2 * a; }
constexpr int pair_plus(int a, int b) {
  // (0,1) -> 7, (1,2) -> 9, (0,2) -> 11, symmetric in (a, b).
  const int lo = a < b ? a : b;
  const int hi = a < b ? b : a;
  return lo == 0 ? (hi == 1 ? 7 : 11) : 9;
}
constexpr int pair_minus(int a, int b) { return pair_plus(a, b) + 1; }

}  // namespace

int n_field_points() { return static_cast<int>(kStencil.size()); }

std::array<int, 3> field_direction(int idx) {
  SWRAMAN_REQUIRE(idx >= 0 && idx < n_field_points(),
                  "field_direction: stencil index out of range");
  return kStencil[static_cast<std::size_t>(idx)];
}

Vec3 field_vector(int idx, double strength) {
  const std::array<int, 3> d = field_direction(idx);
  return {strength * d[0], strength * d[1], strength * d[2]};
}

void bec_derivatives(const std::vector<GeometryRecord>& records,
                     double field_strength, std::size_t n_coords,
                     bool enforce_sum_rule, linalg::Matrix* dalpha,
                     linalg::Matrix* dmu) {
  SWRAMAN_REQUIRE(records.size() == static_cast<std::size_t>(n_field_points()),
                  "bec_derivatives: expected one record per stencil point");
  SWRAMAN_REQUIRE(field_strength > 0.0,
                  "bec_derivatives: field strength must be positive");
  for (const GeometryRecord& r : records) {
    SWRAMAN_REQUIRE(r.forces.size() == n_coords,
                    "bec_derivatives: record forces have wrong length");
  }
  const double e = field_strength;
  linalg::Matrix da(n_coords, 9);
  linalg::Matrix dm(n_coords, 3);
  for (std::size_t k = 0; k < n_coords; ++k) {
    const double f0 = records[0].forces[k];
    for (int a = 0; a < 3; ++a) {
      const double fp = records[static_cast<std::size_t>(axis_plus(a))].forces[k];
      const double fm =
          records[static_cast<std::size_t>(axis_minus(a))].forces[k];
      // Z*_{k,a} = dF_k/dE_a = dmu_a/dR_k.
      dm(k, static_cast<std::size_t>(a)) = (fp - fm) / (2.0 * e);
      // d alpha_aa / dR_k = d^2 F_k / dE_a^2.
      da(k, static_cast<std::size_t>(4 * a)) = (fp + fm - 2.0 * f0) / (e * e);
    }
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        const double fpp =
            records[static_cast<std::size_t>(pair_plus(a, b))].forces[k];
        const double fmm =
            records[static_cast<std::size_t>(pair_minus(a, b))].forces[k];
        const double fa_p =
            records[static_cast<std::size_t>(axis_plus(a))].forces[k];
        const double fa_m =
            records[static_cast<std::size_t>(axis_minus(a))].forces[k];
        const double fb_p =
            records[static_cast<std::size_t>(axis_plus(b))].forces[k];
        const double fb_m =
            records[static_cast<std::size_t>(axis_minus(b))].forces[k];
        // d alpha_ab / dR_k = d^2 F_k / dE_a dE_b from the diagonal-pair
        // stencil: [F(+ab) + F(-ab) - F(+-a) - F(+-b) + 2 F(0)] / 2 E^2.
        const double cross =
            (fpp + fmm - fa_p - fa_m - fb_p - fb_m + 2.0 * f0) /
            (2.0 * e * e);
        da(k, static_cast<std::size_t>(3 * a + b)) = cross;
        da(k, static_cast<std::size_t>(3 * b + a)) = cross;
      }
    }
  }
  if (enforce_sum_rule) {
    // Translation sum rule: displacing every atom together changes
    // neither mu nor alpha, so each column must sum to zero over atoms
    // per Cartesian direction. Subtracting the atomic mean removes the
    // rigid part of the missing Pulay contribution.
    const std::size_t n_atoms = n_coords / 3;
    if (n_atoms > 0) {
      for (int c = 0; c < 3; ++c) {
        for (std::size_t j = 0; j < 9; ++j) {
          double mean = 0.0;
          for (std::size_t at = 0; at < n_atoms; ++at) {
            mean += da(3 * at + static_cast<std::size_t>(c), j);
          }
          mean /= static_cast<double>(n_atoms);
          for (std::size_t at = 0; at < n_atoms; ++at) {
            da(3 * at + static_cast<std::size_t>(c), j) -= mean;
          }
        }
        for (std::size_t j = 0; j < 3; ++j) {
          double mean = 0.0;
          for (std::size_t at = 0; at < n_atoms; ++at) {
            mean += dm(3 * at + static_cast<std::size_t>(c), j);
          }
          mean /= static_cast<double>(n_atoms);
          for (std::size_t at = 0; at < n_atoms; ++at) {
            dm(3 * at + static_cast<std::size_t>(c), j) -= mean;
          }
        }
      }
    }
  }
  if (dalpha != nullptr) *dalpha = std::move(da);
  if (dmu != nullptr) *dmu = std::move(dm);
}

linalg::Matrix finite_field_polarizability(
    const std::vector<GeometryRecord>& records, double field_strength) {
  SWRAMAN_REQUIRE(records.size() == static_cast<std::size_t>(n_field_points()),
                  "finite_field_polarizability: expected 13 records");
  SWRAMAN_REQUIRE(field_strength > 0.0,
                  "finite_field_polarizability: positive field required");
  linalg::Matrix alpha(3, 3);
  for (int b = 0; b < 3; ++b) {
    const GeometryRecord& plus = records[static_cast<std::size_t>(axis_plus(b))];
    const GeometryRecord& minus =
        records[static_cast<std::size_t>(axis_minus(b))];
    for (int a = 0; a < 3; ++a) {
      // alpha_ab = dmu_a/dE_b; the sign convention matches gs.dipole
      // (nuclei minus electrons) with v_field = +E.r in solve_attempt.
      alpha(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) =
          (plus.dipole[static_cast<std::size_t>(a)] -
           minus.dipole[static_cast<std::size_t>(a)]) /
          (2.0 * field_strength);
    }
  }
  return alpha;
}

BecCalculator::BecCalculator(std::vector<grid::AtomSite> atoms,
                             BecOptions options)
    : atoms_(std::move(atoms)), options_(std::move(options)) {
  SWRAMAN_REQUIRE(!atoms_.empty(), "BecCalculator: no atoms");
  SWRAMAN_REQUIRE(options_.field_strength > 0.0,
                  "BecCalculator: field strength must be positive");
}

GeometryRecord BecCalculator::evaluate_field(int idx) {
  SWRAMAN_TRACE_SPAN(span, "raman.bec.field");
  if (span.active()) span.attr("field", static_cast<double>(idx));
  scf::ScfOptions opts = options_.vibrations.scf;
  const Vec3 field = field_vector(idx, options_.field_strength);
  opts.electric_field = field;
  if (!forces_) {
    forces_ = std::make_unique<scf::ForceEvaluator>(atoms_,
                                                    options_.vibrations.scf);
  }
  const int attempts = std::max(1, options_.field_attempts);
  for (int attempt = 1;; ++attempt) {
    try {
      scf::ScfEngine engine(atoms_, opts);
      const scf::GroundState gs = engine.solve();
      SWRAMAN_REQUIRE(gs.converged, "BecCalculator: SCF did not converge");
      GeometryRecord rec;
      rec.forces = forces_->forces(gs, field);
      for (int i = 0; i < 3; ++i) {
        rec.dipole[static_cast<std::size_t>(i)] = gs.dipole[i];
      }
      ++n_field_forces_;
      return rec;
    } catch (const FaultInjected&) {
      throw;  // a simulated hard failure (process kill) must propagate
    } catch (const Error& e) {
      if (attempt >= attempts) throw;
      log::warn("raman.bec.field: stencil point ", idx,
                " failed on attempt ", attempt, "/", attempts, " (",
                e.what(), ") — retrying");
    }
  }
}

std::vector<GeometryRecord> BecCalculator::field_records() {
  SWRAMAN_TRACE_SPAN(span, "raman.bec.fields");
  const int n = n_field_points();
  if (span.active()) span.attr("points", static_cast<double>(n));
  Checkpoint ckpt;
  if (!options_.checkpoint_path.empty()) {
    // The header's displacement slot carries the field strength, so a
    // resume with a different field refuses to mix records.
    ckpt = Checkpoint(options_.checkpoint_path, atoms_,
                      options_.field_strength);
  }
  std::vector<GeometryRecord> records(static_cast<std::size_t>(n));
  for (int idx = 0; idx < n; ++idx) {
    if (const GeometryRecord* stored =
            ckpt.lookup(static_cast<std::size_t>(idx), 0)) {
      records[static_cast<std::size_t>(idx)] = *stored;
      obs::count("checkpoint.hits");
      continue;
    }
    obs::count("checkpoint.misses");
    records[static_cast<std::size_t>(idx)] = evaluate_field(idx);
    ckpt.record(static_cast<std::size_t>(idx), 0,
                records[static_cast<std::size_t>(idx)]);
    // Simulated mid-loop process death: fires only on freshly computed
    // field points, after their checkpoint record is durable — the same
    // crash window the displacement pipeline's kRamanKill covers.
    if (fault::should_fire(fault::kBecKill)) {
      fault::FaultInjector::raise(fault::kBecKill);
    }
  }
  return records;
}

linalg::Matrix BecCalculator::polarizability_derivatives() {
  SWRAMAN_TRACE_SPAN(span, "raman.bec.dalpha");
  const std::size_t n_coords = 3 * atoms_.size();
  if (span.active()) span.attr("coords", static_cast<double>(n_coords));
  const std::vector<GeometryRecord> records = field_records();
  linalg::Matrix dalpha;
  bec_derivatives(records, options_.field_strength, n_coords,
                  options_.enforce_sum_rule, &dalpha, &dmu_);
  return dalpha;
}

linalg::Matrix BecCalculator::finite_field_polarizability() {
  return raman::finite_field_polarizability(field_records(),
                                            options_.field_strength);
}

RamanSpectrum BecCalculator::compute() {
  SWRAMAN_TRACE_SPAN(span, "raman.bec.compute");
  if (span.active()) span.attr("atoms", static_cast<double>(atoms_.size()));

  // Step 1: Hessian and normal modes — identical to the full pipeline,
  // so frequencies agree near-exactly between the tiers.
  linalg::Matrix hess;
  {
    SWRAMAN_TRACE_SCOPE("raman.hessian");
    hess = energy_hessian(atoms_, options_.vibrations);
  }
  const NormalModes modes =
      normal_modes(atoms_, hess, options_.vibrations.project_rigid_body);

  // Step 2: derivative tensors from the 13-point field stencil.
  const linalg::Matrix dalpha = polarizability_derivatives();

  // Steps 3 + 4: the shared Eq. 5 contraction and mode table.
  RamanSpectrum spec = assemble_spectrum(atoms_, modes, dalpha, dmu_,
                                         options_.mode_floor_cm);
  spec.n_polarizabilities = 0;
  spec.n_field_forces = n_field_forces_;
  return spec;
}

}  // namespace swraman::raman
