#include "raman/relax.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "linalg/matrix.hpp"
#include "obs/obs.hpp"

namespace swraman::raman {

namespace {

double scf_energy(const std::vector<grid::AtomSite>& atoms,
                  const scf::ScfOptions& options) {
  scf::ScfEngine engine(atoms, options);
  const scf::GroundState gs = engine.solve();
  SWRAMAN_REQUIRE(gs.converged, "relax_geometry: SCF did not converge");
  return gs.total_energy;
}

std::vector<grid::AtomSite> displaced_all(
    const std::vector<grid::AtomSite>& atoms, const std::vector<double>& dx) {
  std::vector<grid::AtomSite> moved = atoms;
  for (std::size_t c = 0; c < dx.size(); ++c) {
    moved[c / 3].pos[static_cast<int>(c % 3)] += dx[c];
  }
  return moved;
}

}  // namespace

std::vector<double> energy_gradient(const std::vector<grid::AtomSite>& atoms,
                                    const scf::ScfOptions& options,
                                    double step) {
  SWRAMAN_TRACE_SCOPE("relax.gradient");
  const std::size_t n = 3 * atoms.size();
  std::vector<double> g(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<grid::AtomSite> plus = atoms;
    std::vector<grid::AtomSite> minus = atoms;
    plus[c / 3].pos[static_cast<int>(c % 3)] += step;
    minus[c / 3].pos[static_cast<int>(c % 3)] -= step;
    g[c] = (scf_energy(plus, options) - scf_energy(minus, options)) /
           (2.0 * step);
  }
  return g;
}

RelaxResult relax_geometry(std::vector<grid::AtomSite> atoms,
                           const RelaxOptions& options) {
  SWRAMAN_REQUIRE(!atoms.empty(), "relax_geometry: no atoms");
  SWRAMAN_TRACE_SPAN(span, "relax");
  if (span.active()) span.attr("atoms", static_cast<double>(atoms.size()));
  const std::size_t n = 3 * atoms.size();

  RelaxResult res;
  res.atoms = std::move(atoms);
  res.energy = scf_energy(res.atoms, options.scf);

  // Inverse-Hessian estimate, started from a typical stretch stiffness.
  linalg::Matrix h_inv = linalg::Matrix::identity(n);
  h_inv *= 1.0 / 0.6;

  std::vector<double> g =
      energy_gradient(res.atoms, options.scf, options.gradient_step);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    SWRAMAN_TRACE_SPAN(iter_span, "relax.iter");
    res.iterations = iter;
    obs::count("relax.iterations");
    res.max_force = 0.0;
    for (double v : g) res.max_force = std::max(res.max_force, std::abs(v));
    if (res.max_force < options.force_tol) {
      res.converged = true;
      break;
    }

    // Step p = -H_inv g, capped to the trust radius.
    std::vector<double> p = linalg::matvec(h_inv, g);
    double pmax = 0.0;
    for (double& v : p) {
      v = -v;
      pmax = std::max(pmax, std::abs(v));
    }
    if (pmax > options.max_displacement) {
      const double scale = options.max_displacement / pmax;
      for (double& v : p) v *= scale;
    }

    // Backtracking: halve until the energy decreases.
    double e_new = 0.0;
    std::vector<grid::AtomSite> trial;
    double scale = 1.0;
    for (int bt = 0; bt < 6; ++bt) {
      std::vector<double> step(n);
      for (std::size_t c = 0; c < n; ++c) step[c] = scale * p[c];
      trial = displaced_all(res.atoms, step);
      e_new = scf_energy(trial, options.scf);
      if (e_new < res.energy + 1e-10) break;
      scale *= 0.5;
    }
    if (e_new >= res.energy + 1e-10) {
      // No descent direction found: accept convergence at current forces.
      break;
    }
    std::vector<double> s(n);
    for (std::size_t c = 0; c < n; ++c) s[c] = scale * p[c];

    const std::vector<double> g_new =
        energy_gradient(trial, options.scf, options.gradient_step);

    // BFGS update of the inverse Hessian: standard two-rank formula with
    // curvature guard.
    std::vector<double> y(n);
    double sy = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      y[c] = g_new[c] - g[c];
      sy += s[c] * y[c];
    }
    if (sy > 1e-10) {
      const std::vector<double> hy = linalg::matvec(h_inv, y);
      double yhy = 0.0;
      for (std::size_t c = 0; c < n; ++c) yhy += y[c] * hy[c];
      const double f1 = (sy + yhy) / (sy * sy);
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
          h_inv(a, b) += f1 * s[a] * s[b] -
                         (hy[a] * s[b] + s[a] * hy[b]) / sy;
        }
      }
    }

    res.atoms = std::move(trial);
    res.energy = e_new;
    g = g_new;
    if (iter_span.active()) iter_span.attr("max_force", res.max_force);
    log::debug("relax iter ", iter, ": E = ", res.energy,
               " max|F| = ", res.max_force);
  }

  res.max_force = 0.0;
  for (double v : g) res.max_force = std::max(res.max_force, std::abs(v));
  if (res.max_force < options.force_tol) res.converged = true;
  return res;
}

}  // namespace swraman::raman
