#include "raman/thermochemistry.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::raman {

Thermochemistry harmonic_thermochemistry(
    const std::vector<double>& frequencies_cm, double temperature_k,
    double floor_cm) {
  SWRAMAN_REQUIRE(temperature_k > 0.0,
                  "harmonic_thermochemistry: temperature > 0");
  Thermochemistry t;
  t.temperature = temperature_k;
  const double kt = kBoltzmannHa * temperature_k;

  for (double nu : frequencies_cm) {
    if (nu < floor_cm) continue;
    const double hw = nu / kCmInvPerAu;  // Hartree
    const double x = hw / kt;
    t.zero_point_energy += 0.5 * hw;
    // Thermal part of the harmonic oscillator.
    const double expm = std::expm1(x);  // e^x - 1, stable for small x
    t.vibrational_energy += hw / expm;
    // S = kB [x/(e^x - 1) - ln(1 - e^{-x})].
    t.vibrational_entropy +=
        kBoltzmannHa * (x / expm - std::log1p(-std::exp(-x)));
    // Cv = kB x^2 e^x / (e^x - 1)^2.
    const double ex = std::exp(x);
    t.heat_capacity += kBoltzmannHa * x * x * ex / (expm * expm);
  }
  t.free_energy = t.zero_point_energy + t.vibrational_energy -
                  temperature_k * t.vibrational_entropy;
  return t;
}

Thermochemistry harmonic_thermochemistry(const RamanSpectrum& spectrum,
                                         double temperature_k) {
  std::vector<double> freqs;
  freqs.reserve(spectrum.modes.size());
  for (const RamanMode& m : spectrum.modes) {
    freqs.push_back(m.frequency_cm);
  }
  return harmonic_thermochemistry(freqs, temperature_k);
}

}  // namespace swraman::raman
