#include "raman/checkpoint.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace swraman::raman {

namespace {

// Geometry fingerprint: FNV-1a over the exact bit patterns of every
// element number and coordinate, so a checkpoint can never be resumed
// against a different molecule (or the same molecule moved).
std::uint64_t fingerprint(const std::vector<grid::AtomSite>& atoms,
                          double displacement) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  mix(&displacement, sizeof(displacement));
  for (const grid::AtomSite& a : atoms) {
    mix(&a.z, sizeof(a.z));
    for (int k = 0; k < 3; ++k) {
      const double x = a.pos[k];
      mix(&x, sizeof(x));
    }
  }
  return h;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Checkpoint::Checkpoint(std::string path,
                       const std::vector<grid::AtomSite>& atoms,
                       double displacement)
    : path_(std::move(path)) {
  SWRAMAN_REQUIRE(!path_.empty(), "Checkpoint: empty path");
  const std::size_t n_coords = 3 * atoms.size();
  const std::uint64_t fp = fingerprint(atoms, displacement);

  std::ifstream in(path_);
  if (in) {
    // Validate header lines; any mismatch means the file belongs to a
    // different run configuration and must not be mixed in.
    std::string tag;
    int version = 0;
    if (!(in >> tag >> version) || tag != "swraman-raman-checkpoint") {
      throw CheckpointError("Checkpoint: " + path_ +
                            " is not a swraman checkpoint file");
    }
    if (version != kVersion) {
      throw CheckpointError("Checkpoint: " + path_ + " has version " +
                            std::to_string(version) + ", expected " +
                            std::to_string(kVersion));
    }
    std::size_t file_coords = 0;
    double file_disp = 0.0;
    std::string fp_hex;
    if (!(in >> tag >> file_coords >> file_disp >> fp_hex) ||
        tag != "system") {
      throw CheckpointError("Checkpoint: " + path_ +
                            " has a malformed system header");
    }
    std::uint64_t file_fp = 0;
    std::sscanf(fp_hex.c_str(), "%" SCNx64, &file_fp);
    if (file_coords != n_coords || file_fp != fp) {
      throw CheckpointError(
          "Checkpoint: " + path_ +
          " was written for a different geometry or displacement (" +
          std::to_string(file_coords) + " coords vs " +
          std::to_string(n_coords) + " expected)");
    }
    // Load finished geometry records. A truncated trailing line — the
    // crash signature checkpointing exists to survive — ends the parse;
    // everything before it is intact because records are flushed whole.
    bool truncated = false;
    std::string line;
    std::getline(in, line);  // consume remainder of the header line
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream rec(line);
      std::size_t coord = 0;
      std::string kind;
      char sign_ch = 0;
      GeometryRecord r;
      bool ok = static_cast<bool>(rec >> kind >> coord >> sign_ch) &&
                kind == "geom" &&
                (sign_ch == '+' || sign_ch == '-' || sign_ch == '0') &&
                (sign_ch == '0' ? coord < kMaxFieldRecords : coord < n_coords);
      for (double& v : r.alpha) ok = ok && static_cast<bool>(rec >> v);
      for (double& v : r.dipole) ok = ok && static_cast<bool>(rec >> v);
      // Optional forces tail: "f <n> <values...>" (bec field records).
      std::string tail;
      if (ok && (rec >> tail)) {
        std::size_t n_f = 0;
        ok = tail == "f" && static_cast<bool>(rec >> n_f) && n_f <= n_coords;
        if (ok) {
          r.forces.resize(n_f);
          for (double& v : r.forces) ok = ok && static_cast<bool>(rec >> v);
        }
      }
      if (!ok) {
        log::warn("checkpoint: dropping truncated record in ", path_,
                  " (\"", line.substr(0, 40), "\")");
        truncated = true;
        break;
      }
      records_[{coord, sign_ch == '+' ? +1 : (sign_ch == '-' ? -1 : 0)}] =
          std::move(r);
    }
    in.close();
    if (truncated) {
      // Compact the file so later appends never land on a partial line.
      write_header(n_coords, displacement, fp);
      for (const auto& [key, r] : records_) append_record(key, r);
    }
    log::info("checkpoint: resuming from ", path_, " with ",
              records_.size(), " of ", 2 * n_coords,
              " geometries finished");
    return;
  }

  // Fresh run: write the header now so even a crash before the first
  // geometry leaves a well-formed (empty) checkpoint.
  write_header(n_coords, displacement, fp);
}

void Checkpoint::write_header(std::size_t n_coords, double displacement,
                              std::uint64_t fp) const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw CheckpointError("Checkpoint: cannot create " + path_);
  }
  char fp_hex[24];
  std::snprintf(fp_hex, sizeof(fp_hex), "%016" PRIx64, fp);
  out << "swraman-raman-checkpoint " << kVersion << "\n"
      << "system " << n_coords << " " << format_double(displacement) << " "
      << fp_hex << "\n";
  out.flush();
  if (!out) {
    throw CheckpointError("Checkpoint: write to " + path_ + " failed");
  }
}

void Checkpoint::append_record(const std::pair<std::size_t, int>& key,
                               const GeometryRecord& rec) const {
  std::ofstream out(path_, std::ios::app);
  if (!out) {
    throw CheckpointError("Checkpoint: cannot append to " + path_);
  }
  std::ostringstream line;
  line << "geom " << key.first << " "
       << (key.second > 0 ? '+' : (key.second < 0 ? '-' : '0'));
  for (const double v : rec.alpha) line << " " << format_double(v);
  for (const double v : rec.dipole) line << " " << format_double(v);
  if (!rec.forces.empty()) {
    line << " f " << rec.forces.size();
    for (const double v : rec.forces) line << " " << format_double(v);
  }
  line << "\n";
  const std::string text = line.str();
  out << text;
  out.flush();
  if (!out) {
    throw CheckpointError("Checkpoint: write to " + path_ + " failed");
  }
  obs::count("checkpoint.bytes_written", static_cast<double>(text.size()));
  obs::instant("checkpoint.write", "bytes", static_cast<double>(text.size()));
}

const GeometryRecord* Checkpoint::lookup(std::size_t coord,
                                         int sign) const {
  const auto it = records_.find({coord, sign});
  return it == records_.end() ? nullptr : &it->second;
}

void Checkpoint::record(std::size_t coord, int sign,
                        const GeometryRecord& rec) {
  if (!active()) return;
  records_[{coord, sign}] = rec;
  append_record({coord, sign}, rec);
}

}  // namespace swraman::raman
