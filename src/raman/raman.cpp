#include "raman/raman.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/elements.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "raman/checkpoint.hpp"
#include "robustness/fault.hpp"

namespace swraman::raman {

RamanCalculator::RamanCalculator(std::vector<grid::AtomSite> atoms,
                                 RamanOptions options)
    : atoms_(std::move(atoms)), options_(std::move(options)) {
  SWRAMAN_REQUIRE(!atoms_.empty(), "RamanCalculator: no atoms");
}

linalg::Matrix RamanCalculator::polarizability_at(
    const std::vector<grid::AtomSite>& geometry, Vec3* dipole) {
  scf::ScfEngine engine(geometry, options_.vibrations.scf);
  const scf::GroundState gs = engine.solve();
  SWRAMAN_REQUIRE(gs.converged, "RamanCalculator: SCF did not converge");
  if (dipole != nullptr) *dipole = gs.dipole;
  dfpt::DfptEngine dfpt(engine, gs, options_.dfpt);
  ++n_polarizabilities_;
  return dfpt.polarizability();
}

GeometryRecord RamanCalculator::evaluate_geometry(std::size_t coord,
                                                  int sign) {
  SWRAMAN_TRACE_SPAN(span, "raman.geometry");
  if (span.active()) {
    span.attr("coord", static_cast<double>(coord));
    span.attr("sign", static_cast<double>(sign));
  }
  std::vector<grid::AtomSite> geometry = atoms_;
  geometry[coord / 3].pos[static_cast<int>(coord % 3)] +=
      sign * options_.alpha_displacement;
  const int attempts = std::max(1, options_.geometry_attempts);
  for (int attempt = 1;; ++attempt) {
    try {
      Vec3 mu;
      const linalg::Matrix alpha = polarizability_at(geometry, &mu);
      GeometryRecord rec;
      for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) rec.alpha[3 * i + j] = alpha(i, j);
        rec.dipole[i] = mu[static_cast<int>(i)];
      }
      return rec;
    } catch (const FaultInjected&) {
      throw;  // a simulated hard failure (process kill) must propagate
    } catch (const Error& e) {
      if (attempt >= attempts) throw;
      log::warn("raman.geometry: coordinate ", coord, " sign ",
                sign > 0 ? "+" : "-", " failed on attempt ", attempt, "/",
                attempts, " (", e.what(), ") — retrying");
    }
  }
}

linalg::Matrix RamanCalculator::polarizability_derivatives() {
  SWRAMAN_TRACE_SPAN(span, "raman.dalpha");
  const std::size_t n = 3 * atoms_.size();
  if (span.active()) span.attr("coords", static_cast<double>(n));
  const double d = options_.alpha_displacement;
  linalg::Matrix deriv(n, 9);
  dmu_ = linalg::Matrix(n, 3);
  Checkpoint ckpt;
  if (!options_.checkpoint_path.empty()) {
    ckpt = Checkpoint(options_.checkpoint_path, atoms_, d);
  }
  for (std::size_t coord = 0; coord < n; ++coord) {
    GeometryRecord rec[2];  // index 0: +d, index 1: -d
    for (int s = 0; s < 2; ++s) {
      const int sign = s == 0 ? +1 : -1;
      if (const GeometryRecord* stored = ckpt.lookup(coord, sign)) {
        rec[s] = *stored;
        obs::count("checkpoint.hits");
        continue;
      }
      obs::count("checkpoint.misses");
      rec[s] = evaluate_geometry(coord, sign);
      ckpt.record(coord, sign, rec[s]);
      // Simulated mid-pipeline process death: fires only on freshly
      // computed geometries, after their checkpoint record is durable —
      // exactly the crash window restart is designed for.
      if (fault::should_fire(fault::kRamanKill)) {
        fault::FaultInjector::raise(fault::kRamanKill);
      }
    }
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        deriv(coord, 3 * i + j) =
            (rec[0].alpha[3 * i + j] - rec[1].alpha[3 * i + j]) / (2.0 * d);
      }
      dmu_(coord, i) = (rec[0].dipole[i] - rec[1].dipole[i]) / (2.0 * d);
    }
  }
  return deriv;
}

RamanSpectrum RamanCalculator::compute() {
  SWRAMAN_TRACE_SPAN(span, "raman.compute");
  if (span.active()) span.attr("atoms", static_cast<double>(atoms_.size()));

  // Step 1: Hessian and normal modes.
  linalg::Matrix hess;
  {
    SWRAMAN_TRACE_SCOPE("raman.hessian");
    hess = energy_hessian(atoms_, options_.vibrations);
  }
  const NormalModes modes = normal_modes(
      atoms_, hess, options_.vibrations.project_rigid_body);

  // Step 2: d(alpha)/dR at 6N displaced geometries (paper Eq. 5).
  const linalg::Matrix dalpha = polarizability_derivatives();

  // Step 3 + 4: contract with mode eigenvectors, form activities.
  SWRAMAN_TRACE_SCOPE("raman.spectrum");
  RamanSpectrum spec = assemble_spectrum(atoms_, modes, dalpha, dmu_,
                                         options_.mode_floor_cm);
  spec.n_polarizabilities = n_polarizabilities_;
  return spec;
}

RamanSpectrum assemble_spectrum(const std::vector<grid::AtomSite>& atoms,
                                const NormalModes& modes,
                                const linalg::Matrix& dalpha,
                                const linalg::Matrix& dmu,
                                double mode_floor_cm) {
  const std::size_t n = 3 * atoms.size();
  SWRAMAN_REQUIRE(dalpha.rows() == n && dalpha.cols() == 9,
                  "assemble_spectrum: dalpha must be 3N x 9");
  SWRAMAN_REQUIRE(dmu.rows() == n && dmu.cols() == 3,
                  "assemble_spectrum: dmu must be 3N x 3");
  RamanSpectrum spec;

  // Unit conversions: d(alpha)/dQ in Bohr^2/sqrt(amu) -> A^2/sqrt(amu)
  // wait: alpha [Bohr^3], dQ [sqrt(amu) Bohr] -> Bohr^2/sqrt(amu);
  // activities conventionally in A^4/amu: scale by (A/Bohr)^4.
  const double unit = std::pow(kAngstromPerBohr, 4);

  for (std::size_t p = 0; p < n; ++p) {
    if (modes.frequencies_cm[p] < mode_floor_cm) continue;

    // dalpha/dQ_p = sum_I (dalpha/dx_I) e_{I,p} / sqrt(m_I); the stored
    // cartesian_modes are already x = q / sqrt(m) with q normalized, so
    // dalpha/dQ_p = sum_coord dalpha_coord * cart(coord, p) * sqrt(m_me)
    // ... in mass-weighted a.u.; convert masses to amu at the end.
    double aprime[3][3] = {};
    for (std::size_t coord = 0; coord < n; ++coord) {
      const double e = modes.cartesian_modes(coord, p);
      if (e == 0.0) continue;
      for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
          aprime[i][j] += dalpha(coord, 3 * i + j) * e;
    }
    // cartesian_modes columns are normalized in mass-weighted coordinates
    // with masses in electron-mass units; rescale to amu^{-1/2}.
    const double to_amu = std::sqrt(kMeAmu);
    for (auto& row : aprime) {
      for (double& v : row) v *= to_amu;
    }

    const double a_mean =
        (aprime[0][0] + aprime[1][1] + aprime[2][2]) / 3.0;
    double gamma2 = 0.0;
    gamma2 += 0.5 * ((aprime[0][0] - aprime[1][1]) *
                         (aprime[0][0] - aprime[1][1]) +
                     (aprime[1][1] - aprime[2][2]) *
                         (aprime[1][1] - aprime[2][2]) +
                     (aprime[2][2] - aprime[0][0]) *
                         (aprime[2][2] - aprime[0][0]));
    gamma2 += 3.0 * (aprime[0][1] * aprime[0][1] +
                     aprime[1][2] * aprime[1][2] +
                     aprime[0][2] * aprime[0][2]);

    // IR intensity: d(mu)/dQ_p in atomic units (e bohr per sqrt(me) bohr),
    // converted to D/(A sqrt(amu)) — 1 au = 2.541746/(0.529177/42.6953)
    // = 205.07 — then the standard 42.2561 (D/A)^-2 amu km/mol factor.
    double dmu_q2 = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      double v = 0.0;
      for (std::size_t coord = 0; coord < n; ++coord) {
        v += dmu(coord, i) * modes.cartesian_modes(coord, p);
      }
      dmu_q2 += v * v;
    }
    const double au_to_d_per_ang_sqrt_amu =
        2.541746 / (kAngstromPerBohr / std::sqrt(kMeAmu));

    RamanMode mode;
    mode.frequency_cm = modes.frequencies_cm[p];
    mode.ir_intensity = 42.2561 * au_to_d_per_ang_sqrt_amu *
                        au_to_d_per_ang_sqrt_amu * dmu_q2;
    mode.activity = (45.0 * a_mean * a_mean + 7.0 * gamma2) * unit;
    const double denom = 45.0 * a_mean * a_mean + 4.0 * gamma2;
    mode.depolarization = denom > 0.0 ? 3.0 * gamma2 / denom : 0.0;
    mode.cartesian.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      mode.cartesian[i] = modes.cartesian_modes(i, p);
    }
    spec.modes.push_back(std::move(mode));
  }
  return spec;
}

double observed_raman_intensity(double activity, double frequency_cm,
                                double laser_cm, double temperature_k) {
  SWRAMAN_REQUIRE(frequency_cm > 0.0 && laser_cm > frequency_cm,
                  "observed_raman_intensity: need 0 < nu < nu0");
  SWRAMAN_REQUIRE(temperature_k > 0.0,
                  "observed_raman_intensity: temperature > 0");
  // hc/kB = 1.438777 cm K.
  const double x = 1.4387769 * frequency_cm / temperature_k;
  const double boltzmann = 1.0 - std::exp(-x);
  const double shift = laser_cm - frequency_cm;
  return shift * shift * shift * shift / frequency_cm / boltzmann * activity;
}

BroadenedSpectrum broaden(const std::vector<RamanMode>& modes,
                          double sigma_cm, double min_cm, double max_cm,
                          double step_cm) {
  SWRAMAN_REQUIRE(sigma_cm > 0.0 && step_cm > 0.0 && max_cm > min_cm,
                  "broaden: invalid parameters");
  BroadenedSpectrum out;
  for (double w = min_cm; w <= max_cm; w += step_cm) {
    double s = 0.0;
    for (const RamanMode& m : modes) {
      const double d = w - m.frequency_cm;
      // Lorentzian with HWHM sigma.
      s += m.activity * (sigma_cm * sigma_cm) /
           (d * d + sigma_cm * sigma_cm) / (kPi * sigma_cm);
    }
    out.wavenumber_cm.push_back(w);
    out.intensity.push_back(s);
  }
  return out;
}

BroadenedSpectrum compose(
    const std::vector<std::pair<BroadenedSpectrum, double>>& parts) {
  SWRAMAN_REQUIRE(!parts.empty(), "compose: no spectra");
  BroadenedSpectrum out = parts.front().first;
  for (double& v : out.intensity) v *= parts.front().second;
  for (std::size_t k = 1; k < parts.size(); ++k) {
    const BroadenedSpectrum& s = parts[k].first;
    SWRAMAN_REQUIRE(s.wavenumber_cm.size() == out.wavenumber_cm.size(),
                    "compose: spectra must share the wavenumber grid");
    for (std::size_t i = 0; i < out.intensity.size(); ++i) {
      out.intensity[i] += parts[k].second * s.intensity[i];
    }
  }
  return out;
}

}  // namespace swraman::raman
