#include "raman/vibrations.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/elements.hpp"
#include "common/error.hpp"
#include "linalg/eigen.hpp"

namespace swraman::raman {

namespace {

double scf_energy(std::vector<grid::AtomSite> atoms,
                  const scf::ScfOptions& options,
                  const linalg::Matrix* restart = nullptr) {
  scf::ScfEngine engine(std::move(atoms), options);
  const scf::GroundState gs = engine.solve(restart);
  SWRAMAN_REQUIRE(gs.converged, "energy_hessian: SCF did not converge");
  return gs.total_energy;
}

std::vector<grid::AtomSite> displaced(const std::vector<grid::AtomSite>& atoms,
                                      std::size_t coord, double step) {
  std::vector<grid::AtomSite> moved = atoms;
  moved[coord / 3].pos[static_cast<int>(coord % 3)] += step;
  return moved;
}

}  // namespace

linalg::Matrix energy_hessian(const std::vector<grid::AtomSite>& atoms,
                              const VibrationOptions& options) {
  const std::size_t n = 3 * atoms.size();
  const double d = options.displacement;
  SWRAMAN_REQUIRE(d > 0.0, "energy_hessian: displacement > 0");
  linalg::Matrix h(n, n);

  // Equilibrium solution; its density matrix seeds every displaced SCF.
  scf::ScfEngine eq_engine(atoms, options.scf);
  const scf::GroundState eq = eq_engine.solve();
  SWRAMAN_REQUIRE(eq.converged, "energy_hessian: SCF did not converge");
  const double e0 = eq.total_energy;
  const linalg::Matrix* restart = &eq.density;

  // Diagonal: E(+d) + E(-d) - 2 E0.
  std::vector<double> e_plus(n);
  std::vector<double> e_minus(n);
  for (std::size_t i = 0; i < n; ++i) {
    e_plus[i] = scf_energy(displaced(atoms, i, d), options.scf, restart);
    e_minus[i] = scf_energy(displaced(atoms, i, -d), options.scf, restart);
    h(i, i) = (e_plus[i] + e_minus[i] - 2.0 * e0) / (d * d);
  }

  // Off-diagonal: 4-point formula.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double epp = scf_energy(
          displaced(displaced(atoms, i, d), j, d), options.scf, restart);
      const double emm = scf_energy(
          displaced(displaced(atoms, i, -d), j, -d), options.scf, restart);
      const double epm = scf_energy(
          displaced(displaced(atoms, i, d), j, -d), options.scf, restart);
      const double emp = scf_energy(
          displaced(displaced(atoms, i, -d), j, d), options.scf, restart);
      const double v = (epp + emm - epm - emp) / (4.0 * d * d);
      h(i, j) = v;
      h(j, i) = v;
    }
  }
  return h;
}

NormalModes normal_modes(const std::vector<grid::AtomSite>& atoms,
                         const linalg::Matrix& hessian,
                         bool project_rigid_body) {
  const std::size_t n = 3 * atoms.size();
  SWRAMAN_REQUIRE(hessian.rows() == n && hessian.cols() == n,
                  "normal_modes: Hessian size mismatch");

  // Mass-weighted Hessian: Hm_ij = H_ij / sqrt(m_i m_j) (masses in
  // electron-mass atomic units so frequencies come out in a.u.).
  std::vector<double> sqrt_m(n);
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    const double m = element(atoms[a].z).mass_amu * kMeAmu;
    for (int k = 0; k < 3; ++k) sqrt_m[3 * a + k] = std::sqrt(m);
  }
  linalg::Matrix hm(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      hm(i, j) = hessian(i, j) / (sqrt_m[i] * sqrt_m[j]);
  hm.symmetrize();

  if (project_rigid_body) {
    // Build mass-weighted translation and rotation vectors, orthonormalize,
    // and project them out of the Hessian: Hm <- Q Hm Q, Q = 1 - sum vv^T.
    Vec3 com;
    double mtot = 0.0;
    for (const grid::AtomSite& a : atoms) {
      const double m = element(a.z).mass_amu;
      com += m * a.pos;
      mtot += m;
    }
    com *= 1.0 / mtot;

    std::vector<std::vector<double>> rigid;
    for (int k = 0; k < 3; ++k) {
      std::vector<double> t(n, 0.0);
      for (std::size_t a = 0; a < atoms.size(); ++a) {
        t[3 * a + static_cast<std::size_t>(k)] = sqrt_m[3 * a];
      }
      rigid.push_back(std::move(t));
    }
    for (int k = 0; k < 3; ++k) {
      Vec3 axis;
      axis[k] = 1.0;
      std::vector<double> r(n, 0.0);
      for (std::size_t a = 0; a < atoms.size(); ++a) {
        const Vec3 arm = cross(axis, atoms[a].pos - com);
        for (int c = 0; c < 3; ++c) {
          r[3 * a + static_cast<std::size_t>(c)] = sqrt_m[3 * a] * arm[c];
        }
      }
      rigid.push_back(std::move(r));
    }
    // Gram-Schmidt; drop near-zero vectors (linear molecules).
    std::vector<std::vector<double>> ortho;
    for (std::vector<double>& v : rigid) {
      for (const std::vector<double>& u : ortho) {
        double proj = 0.0;
        for (std::size_t i = 0; i < n; ++i) proj += u[i] * v[i];
        for (std::size_t i = 0; i < n; ++i) v[i] -= proj * u[i];
      }
      double norm = 0.0;
      for (double x : v) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-8) continue;
      for (double& x : v) x /= norm;
      ortho.push_back(v);
    }
    // Hm <- Q Hm Q with Q = 1 - sum_u u u^T, applied via two passes.
    const auto project = [&](linalg::Matrix& m) {
      for (const std::vector<double>& u : ortho) {
        // m <- (1 - u u^T) m: row update m -= u (u^T m).
        std::vector<double> utm(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) utm[j] += u[i] * m(i, j);
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) m(i, j) -= u[i] * utm[j];
      }
    };
    project(hm);
    linalg::Matrix hmt = hm.transposed();
    project(hmt);
    hm = hmt.transposed();
    hm.symmetrize();
  }

  const linalg::EigenResult eig = linalg::eigh(hm);

  NormalModes modes;
  modes.frequencies_cm.resize(n);
  modes.reduced_masses_amu.resize(n);
  modes.cartesian_modes = linalg::Matrix(n, n);
  for (std::size_t p = 0; p < n; ++p) {
    const double lambda = eig.values[p];
    const double omega = std::sqrt(std::abs(lambda));
    modes.frequencies_cm[p] =
        (lambda >= 0.0 ? omega : -omega) * kCmInvPerAu;
    // Cartesian displacement: x_i = q_i / sqrt(m_i).
    double mu_inv = 0.0;
    double cart_norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = eig.vectors(i, p) / sqrt_m[i];
      modes.cartesian_modes(i, p) = x;
      cart_norm2 += x * x;
    }
    // Reduced mass: 1 / sum(cart^2 over modes normalized in mass-weighted
    // coords), converted to amu.
    mu_inv = cart_norm2;
    modes.reduced_masses_amu[p] =
        (mu_inv > 0.0) ? 1.0 / (mu_inv * kMeAmu) : 0.0;
  }
  return modes;
}

}  // namespace swraman::raman
