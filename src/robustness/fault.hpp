#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>

// Deterministic fault-injection framework (the robustness layer's test
// harness). Code under test declares named fault points; a configured
// injector decides per visit whether the fault fires, drawing from a
// seeded per-site RNG so that every failure scenario is reproducible:
// the same seed and spec always produce the same fire/no-fire sequence
// at each site, independent of how other sites interleave.
//
// Sites are armed programmatically (tests, CLI) or through the
// environment:
//
//   SWRAMAN_FAULT_POINTS="sunway.dma.fail:p=0.01;sunway.cpe.death:at=1"
//   SWRAMAN_FAULT_SEED=42
//
// Spec grammar per site: `name:key=value[,key=value...]` joined by `;`.
// Keys: `p` (per-visit firing probability), `at` (fire exactly on the
// N-th visit, 1-based), `max` (cap on total fires; `at` implies max=1
// unless overridden). An unarmed injector short-circuits to a single
// relaxed atomic load, so dormant sites cost nothing on hot paths.

namespace swraman::fault {

// Canonical site names. Sites are open-ended — any string works — but the
// stack's built-in injection points live here so tests and docs agree.
inline constexpr const char* kCommSendDrop = "comm.send.drop";
inline constexpr const char* kCommRecvDelay = "comm.recv.delay";
inline constexpr const char* kCommStall = "comm.stall";
inline constexpr const char* kDmaFail = "sunway.dma.fail";
inline constexpr const char* kRmaDrop = "sunway.rma.drop";
inline constexpr const char* kCpeDeath = "sunway.cpe.death";
inline constexpr const char* kScfDiverge = "scf.diverge";
inline constexpr const char* kDfptDiverge = "dfpt.diverge";
inline constexpr const char* kRamanKill = "raman.kill";
inline constexpr const char* kBecKill = "raman.bec.kill";

struct FaultSpec {
  double probability = 0.0;  // per-visit firing probability
  long long fire_at = -1;    // fire exactly on this visit (1-based); -1 off
  long long max_fires = -1;  // total-fire cap; -1 = unlimited
};

struct SiteStats {
  std::uint64_t visits = 0;
  std::uint64_t fires = 0;
};

class FaultInjector {
 public:
  // Process-wide injector; reads the SWRAMAN_FAULT_* environment on first
  // use.
  static FaultInjector& instance();

  // Arms `site` with the given trigger. Resets the site's visit/fire
  // counters and reseeds its RNG from the current seed.
  void configure(const std::string& site, const FaultSpec& spec);

  // Parses the `name:key=value,...;name2:...` grammar described above.
  // Throws Error on malformed input.
  void configure_from_string(const std::string& config);

  // Reseeds every armed site (counters reset too): after set_seed the
  // injector replays from the beginning of each site's sequence.
  void set_seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t seed() const;

  // Disarms every site and clears all statistics.
  void clear();

  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  // Records a visit to `site`; returns true if the fault fires. Unarmed
  // injectors return false without taking the lock.
  bool should_fire(const std::string& site);

  [[nodiscard]] SiteStats stats(const std::string& site) const;

  // Throws FaultInjected with the site name (for sites that model hard,
  // unrecoverable failures).
  [[noreturn]] static void raise(const std::string& site);

 private:
  FaultInjector();

  struct Site {
    FaultSpec spec;
    SiteStats stats;
    std::mt19937_64 rng;
  };

  void reseed_locked(Site& site, const std::string& name);

  mutable std::mutex mutex_;
  std::atomic<bool> armed_{false};
  std::uint64_t seed_ = 12345;
  std::map<std::string, Site> sites_;
};

// Convenience wrappers over the process-wide injector.
inline bool should_fire(const char* site) {
  FaultInjector& inj = FaultInjector::instance();
  if (!inj.armed()) return false;
  return inj.should_fire(site);
}

inline void reset() { FaultInjector::instance().clear(); }

// RAII guard for tests: clears the injector on entry and exit so armed
// sites never leak across test cases.
class ScopedFaults {
 public:
  ScopedFaults() { reset(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
  ~ScopedFaults() { reset(); }
};

}  // namespace swraman::fault
