#include "robustness/fault.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"

namespace swraman::fault {

namespace {

// FNV-1a: mixes the site name into the global seed so each site draws an
// independent, reproducible stream regardless of cross-site interleaving.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  if (const char* seed_env = std::getenv("SWRAMAN_FAULT_SEED")) {
    seed_ = std::strtoull(seed_env, nullptr, 10);
  }
  if (const char* points = std::getenv("SWRAMAN_FAULT_POINTS")) {
    configure_from_string(points);
  }
}

void FaultInjector::reseed_locked(Site& site, const std::string& name) {
  site.rng.seed(seed_ ^ fnv1a(name));
  site.stats = SiteStats{};
}

void FaultInjector::configure(const std::string& site,
                              const FaultSpec& spec) {
  SWRAMAN_REQUIRE(!site.empty(), "fault: site name must not be empty");
  SWRAMAN_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
                  "fault: probability must lie in [0, 1]");
  const std::scoped_lock lock(mutex_);
  Site& s = sites_[site];
  s.spec = spec;
  // `at` triggers default to firing once unless the caller widened the cap.
  if (s.spec.fire_at > 0 && s.spec.max_fires < 0) s.spec.max_fires = 1;
  reseed_locked(s, site);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::configure_from_string(const std::string& config) {
  std::size_t pos = 0;
  while (pos < config.size()) {
    std::size_t end = config.find(';', pos);
    if (end == std::string::npos) end = config.size();
    const std::string entry = config.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    SWRAMAN_REQUIRE(colon != std::string::npos && colon > 0,
                    "fault: spec entry needs the form name:key=value — got '" +
                        entry + "'");
    const std::string name = entry.substr(0, colon);
    FaultSpec spec;
    std::size_t p = colon + 1;
    while (p < entry.size()) {
      std::size_t comma = entry.find(',', p);
      if (comma == std::string::npos) comma = entry.size();
      const std::string kv = entry.substr(p, comma - p);
      p = comma + 1;
      const std::size_t eq = kv.find('=');
      SWRAMAN_REQUIRE(eq != std::string::npos,
                      "fault: expected key=value in spec — got '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const std::string value = kv.substr(eq + 1);
      if (key == "p") {
        spec.probability = std::strtod(value.c_str(), nullptr);
      } else if (key == "at") {
        spec.fire_at = std::strtoll(value.c_str(), nullptr, 10);
      } else if (key == "max") {
        spec.max_fires = std::strtoll(value.c_str(), nullptr, 10);
      } else {
        SWRAMAN_REQUIRE(false, "fault: unknown spec key '" + key + "'");
      }
    }
    configure(name, spec);
  }
}

void FaultInjector::set_seed(std::uint64_t seed) {
  const std::scoped_lock lock(mutex_);
  seed_ = seed;
  for (auto& [name, site] : sites_) reseed_locked(site, name);
}

std::uint64_t FaultInjector::seed() const {
  const std::scoped_lock lock(mutex_);
  return seed_;
}

void FaultInjector::clear() {
  const std::scoped_lock lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fire(const std::string& site) {
  if (!armed()) return false;
  const std::scoped_lock lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.stats.visits;
  if (s.spec.max_fires >= 0 &&
      s.stats.fires >= static_cast<std::uint64_t>(s.spec.max_fires)) {
    return false;
  }
  bool fire = s.spec.fire_at > 0 &&
              s.stats.visits == static_cast<std::uint64_t>(s.spec.fire_at);
  if (s.spec.probability > 0.0) {
    // Always consume exactly one draw per visit so the sequence depends
    // only on the visit number, not on earlier outcomes.
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    fire = (uniform(s.rng) < s.spec.probability) || fire;
  }
  if (fire) {
    ++s.stats.fires;
    // obs never takes the fault mutex, so emitting under our lock is safe.
    obs::instant("fault.injected", "site", site);
    obs::count("fault.injected");
    obs::flight::record(("fault." + site).c_str());
    // One postmortem file per site, overwritten on repeat fires — the
    // latest context survives without unbounded output.
    obs::flight::dump("fault." + site);
  }
  return fire;
}

SiteStats FaultInjector::stats(const std::string& site) const {
  const std::scoped_lock lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? SiteStats{} : it->second.stats;
}

void FaultInjector::raise(const std::string& site) {
  throw FaultInjected("fault injected at site '" + site + "'");
}

}  // namespace swraman::fault
