#pragma once

// Local-density-approximation exchange-correlation: Slater exchange plus
// Perdew-Wang 1992 correlation (spin-unpolarized), the paper's level of
// theory ("LDA functional"). For each density n we provide
//
//   eps_xc(n) : XC energy per electron,
//   v_xc(n)   : XC potential d(n eps_xc)/dn,
//   f_xc(n)   : XC response kernel dv_xc/dn, the local kernel entering the
//               DFPT response Hamiltonian.
//
// All derivatives are analytic; tests cross-check them against finite
// differences.

namespace swraman::xc {

struct XcPoint {
  double eps = 0.0;  // energy per electron
  double v = 0.0;    // potential
  double f = 0.0;    // kernel dv/dn
};

enum class Functional {
  LdaPw92,   // Slater X + PW92 C (default, used everywhere)
  SlaterX,   // exchange only (testing / ablation)
};

// Evaluates the functional at density n >= 0. n below 1e-14 returns zeros
// (numerically empty regions of the integration grid).
XcPoint evaluate(Functional f, double n);

// Individual pieces, exposed for unit tests.
XcPoint slater_exchange(double n);
XcPoint pw92_correlation(double n);

}  // namespace swraman::xc
