#include "xc/lda.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace swraman::xc {

namespace {

constexpr double kDensityFloor = 1e-14;

// PW92 parameters for the spin-unpolarized correlation energy.
constexpr double kA = 0.0310907;
constexpr double kAlpha1 = 0.21370;
constexpr double kBeta1 = 7.5957;
constexpr double kBeta2 = 3.5876;
constexpr double kBeta3 = 1.6382;
constexpr double kBeta4 = 0.49294;

}  // namespace

XcPoint slater_exchange(double n) {
  XcPoint p;
  if (n < kDensityFloor) return p;
  const double cx = -0.75 * std::cbrt(3.0 / kPi);  // eps_x = cx n^{1/3}
  const double n13 = std::cbrt(n);
  p.eps = cx * n13;
  p.v = (4.0 / 3.0) * cx * n13;             // d(n eps)/dn
  p.f = (4.0 / 9.0) * cx / (n13 * n13);     // dv/dn
  return p;
}

XcPoint pw92_correlation(double n) {
  XcPoint p;
  if (n < kDensityFloor) return p;
  const double rs = std::cbrt(3.0 / (kFourPi * n));
  const double sq = std::sqrt(rs);

  const double q = 2.0 * kA *
                   (kBeta1 * sq + kBeta2 * rs + kBeta3 * rs * sq +
                    kBeta4 * rs * rs);
  const double dq = 2.0 * kA *
                    (0.5 * kBeta1 / sq + kBeta2 + 1.5 * kBeta3 * sq +
                     2.0 * kBeta4 * rs);
  const double d2q = 2.0 * kA *
                     (-0.25 * kBeta1 / (rs * sq) + 0.75 * kBeta3 / sq +
                      2.0 * kBeta4);

  const double lnq = std::log1p(1.0 / q);
  // L = ln(1 + 1/q); L' = -q'/(q(q+1)); L'' per quotient rule.
  const double lp = -dq / (q * (q + 1.0));
  const double lpp = -d2q / (q * (q + 1.0)) +
                     dq * dq * (2.0 * q + 1.0) / (q * q * (q + 1.0) * (q + 1.0));

  const double pre = -2.0 * kA * (1.0 + kAlpha1 * rs);
  const double ec = pre * lnq;
  const double dec = -2.0 * kA * kAlpha1 * lnq + pre * lp;
  const double d2ec = -4.0 * kA * kAlpha1 * lp + pre * lpp;

  p.eps = ec;
  // v_c = ec - (rs/3) dec/drs.
  p.v = ec - (rs / 3.0) * dec;
  // f_c = dv/dn = [(2/3) ec' - (rs/3) ec''] * drs/dn, drs/dn = -rs/(3n).
  const double dv_drs = (2.0 / 3.0) * dec - (rs / 3.0) * d2ec;
  p.f = dv_drs * (-rs / (3.0 * n));
  return p;
}

XcPoint evaluate(Functional f, double n) {
  XcPoint x = slater_exchange(n);
  if (f == Functional::SlaterX) return x;
  const XcPoint c = pw92_correlation(n);
  x.eps += c.eps;
  x.v += c.v;
  x.f += c.f;
  return x;
}

}  // namespace swraman::xc
