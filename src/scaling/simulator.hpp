#pragma once

#include <cstddef>
#include <vector>

#include "sunway/cost_model.hpp"

// Discrete-event scalability model of the paper's 3-level parallelization
// (Fig. 4) at full machine scale. A Raman job is a set of independent
// polarizability calculations (level 1: geometry sub-groups); each runs a
// DFPT cycle whose per-iteration cost is the sum of the three grid kernels
// over the batches owned by each process (level 2: Algorithm-1 batch
// distribution) executed on the CPE cluster (level 3), plus the Allreduce
// that synchronizes the response density/Hamiltonian.
//
// Efficiency losses emerge from the model rather than being scripted:
//  * geometry granularity: ceil(n_pol / n_groups) quantization,
//  * per-geometry DFPT iteration-count variance (deterministically hashed),
//    whose *maximum* over groups grows with the group count — the dominant
//    term at 300,800 processes,
//  * batch-level load imbalance within a group,
//  * collective costs growing with log(P).

namespace swraman::scaling {

struct RamanJob {
  std::size_t n_polarizabilities = 1175;  // paper's strong-scaling setup
  std::size_t n_batches = 20000;          // per geometry
  double points_per_batch = 200.0;
  double scf_iterations = 12.0;           // ground state per geometry
  double dfpt_iterations = 14.0;          // per response direction
  double response_directions = 3.0;
  // Per-geometry kernel workloads for ONE DFPT iteration over the whole
  // grid (split across the group's processes by the simulator).
  sunway::KernelWorkload n1;
  sunway::KernelWorkload v1;
  sunway::KernelWorkload h1;
  double allreduce_bytes = 8e6;           // per DFPT iteration
  double iteration_variance = 0.18;       // relative spread across geometries
  // Interconnect contention: collective bandwidth degrades as more groups
  // share the fabric (factor 1 + c * log2(n_groups)).
  double comm_contention = 0.10;
  // MPE-serial per-iteration work not offloaded to the CPEs (accelerator
  // machines only; on a CPU the same core runs it inside the kernels).
  double mpe_serial_seconds = 0.0;
  // Job-level synchronization / system overhead per DFPT cycle, growing
  // with machine size: t = global_sync_us * 1e-6 * log2(P)^2.
  double global_sync_us = 18.0;
};

struct MachineModel {
  sunway::ArchParams node;                // one process's compute unit
  sunway::Variant variant = sunway::Variant::CpeTiledDbSimd;
  bool cpu = false;                       // CPU path: modeled_cpu_time
  sunway::AllreduceModel allreduce;       // collective configuration
  std::size_t cores_per_process = 65;     // MPE + 64 CPEs (axis labels)
};

struct ScalingPoint {
  std::size_t n_processes = 0;
  std::size_t n_cores = 0;
  double time_seconds = 0.0;
  double speedup = 1.0;      // relative to the smallest run in the sweep
  double efficiency = 1.0;   // speedup / ideal
};

class ScalabilitySimulator {
 public:
  ScalabilitySimulator(RamanJob job, MachineModel machine,
                       std::size_t processes_per_group = 256);

  // Total wall time of the job on n_processes.
  [[nodiscard]] double simulate(std::size_t n_processes) const;

  // Time of one DFPT iteration of one geometry on a group of `group_size`
  // processes (the Fig. 14 quantity); n_groups models fabric contention
  // from concurrently communicating sub-groups.
  [[nodiscard]] double dfpt_iteration_time(std::size_t group_size,
                                           std::size_t n_groups = 1) const;

  // Strong scaling: fixed job, growing machine.
  [[nodiscard]] std::vector<ScalingPoint> strong_scaling(
      const std::vector<std::size_t>& process_counts) const;

  // Weak scaling: polarizability count grows proportionally with the
  // machine (the paper's Fig. 18 protocol); efficiency = t_ref / t.
  [[nodiscard]] std::vector<ScalingPoint> weak_scaling(
      const std::vector<std::size_t>& process_counts) const;

  [[nodiscard]] const RamanJob& job() const { return job_; }

 private:
  [[nodiscard]] double geometry_time(std::size_t geometry_id,
                                     std::size_t group_size,
                                     std::size_t n_groups) const;

  RamanJob job_;
  MachineModel machine_;
  std::size_t group_size_;
};

// Deterministic per-geometry jitter in [-1, 1] (splitmix-style hash).
double geometry_jitter(std::size_t geometry_id);

}  // namespace swraman::scaling
