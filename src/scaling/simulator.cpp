#include "scaling/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace swraman::scaling {

double geometry_jitter(std::size_t geometry_id) {
  std::uint64_t x = static_cast<std::uint64_t>(geometry_id) + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  // Map to [-1, 1].
  return 2.0 * (static_cast<double>(x >> 11) / 9007199254740992.0) - 1.0;
}

ScalabilitySimulator::ScalabilitySimulator(RamanJob job, MachineModel machine,
                                           std::size_t processes_per_group)
    : job_(std::move(job)),
      machine_(std::move(machine)),
      group_size_(processes_per_group) {
  SWRAMAN_REQUIRE(group_size_ >= 1, "simulator: group size >= 1");
  SWRAMAN_REQUIRE(job_.n_polarizabilities >= 1, "simulator: empty job");
}

double ScalabilitySimulator::dfpt_iteration_time(
    std::size_t group_size, std::size_t n_groups) const {
  SWRAMAN_REQUIRE(group_size >= 1, "dfpt_iteration_time: group size");
  const double p = static_cast<double>(group_size);

  // Level-2 batch distribution: Algorithm 1 keeps the point imbalance to
  // at most ~half a batch above the mean.
  const double total_points =
      static_cast<double>(job_.n_batches) * job_.points_per_batch;
  const double mean_points = total_points / p;
  const double imbalance =
      1.0 + 0.5 * job_.points_per_batch / std::max(mean_points, 1.0);

  const auto share = [&](const sunway::KernelWorkload& w) {
    sunway::KernelWorkload s = w;
    s.elements = w.elements / p * imbalance;
    return s;
  };

  double t = 0.0;
  for (const sunway::KernelWorkload* w : {&job_.n1, &job_.v1, &job_.h1}) {
    if (machine_.cpu) {
      t += modeled_cpu_time(share(*w), machine_.node);
    } else {
      t += modeled_time(share(*w), machine_.node, machine_.variant);
    }
  }
  const double contention =
      1.0 + job_.comm_contention *
                std::log2(static_cast<double>(std::max<std::size_t>(
                    n_groups, 1)) + 1.0);
  t += contention * modeled_allreduce_time(job_.allreduce_bytes, group_size,
                                           machine_.node, machine_.allreduce);
  if (!machine_.cpu) t += job_.mpe_serial_seconds;
  return t;
}

double ScalabilitySimulator::geometry_time(std::size_t geometry_id,
                                           std::size_t group_size,
                                           std::size_t n_groups) const {
  const double iter = dfpt_iteration_time(group_size, n_groups);
  const double cycles =
      job_.scf_iterations +
      job_.response_directions * job_.dfpt_iterations;
  const double jitter =
      1.0 + job_.iteration_variance * geometry_jitter(geometry_id);
  return iter * cycles * jitter;
}

double ScalabilitySimulator::simulate(std::size_t n_processes) const {
  SWRAMAN_REQUIRE(n_processes >= 1, "simulate: n_processes >= 1");
  const std::size_t group = std::min(group_size_, n_processes);
  const std::size_t n_groups = std::max<std::size_t>(1, n_processes / group);

  // Level 1: geometries dealt round-robin to groups; each group's time is
  // the sum of its geometries, the job finishes at the slowest group.
  double t_max = 0.0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    double t_group = 0.0;
    for (std::size_t j = g; j < job_.n_polarizabilities; j += n_groups) {
      t_group += geometry_time(j, group, n_groups);
    }
    t_max = std::max(t_max, t_group);
  }

  // Job-level synchronization / system overhead: charged per DFPT cycle
  // along the critical path (the slowest group's geometry chain).
  const double log2p = std::log2(static_cast<double>(n_processes) + 1.0);
  const std::size_t geoms_critical =
      (job_.n_polarizabilities + n_groups - 1) / n_groups;
  const double cycles = job_.scf_iterations +
                        job_.response_directions * job_.dfpt_iterations;
  const double sync = job_.global_sync_us * 1e-6 * log2p * log2p *
                      static_cast<double>(geoms_critical) * cycles;

  // Result collection.
  const double alpha = machine_.node.net_latency_us * 1e-6;
  const double collect =
      log2p * alpha * static_cast<double>(job_.n_polarizabilities) / 8.0;
  return t_max + sync + collect;
}

std::vector<ScalingPoint> ScalabilitySimulator::strong_scaling(
    const std::vector<std::size_t>& process_counts) const {
  SWRAMAN_REQUIRE(!process_counts.empty(), "strong_scaling: empty sweep");
  std::vector<ScalingPoint> out;
  const double t_ref = simulate(process_counts.front());
  for (std::size_t p : process_counts) {
    ScalingPoint pt;
    pt.n_processes = p;
    pt.n_cores = p * machine_.cores_per_process;
    pt.time_seconds = simulate(p);
    pt.speedup = t_ref / pt.time_seconds;
    const double ideal = static_cast<double>(p) /
                         static_cast<double>(process_counts.front());
    pt.efficiency = pt.speedup / ideal;
    out.push_back(pt);
  }
  return out;
}

std::vector<ScalingPoint> ScalabilitySimulator::weak_scaling(
    const std::vector<std::size_t>& process_counts) const {
  SWRAMAN_REQUIRE(!process_counts.empty(), "weak_scaling: empty sweep");
  std::vector<ScalingPoint> out;
  double t_ref = 0.0;
  for (std::size_t p : process_counts) {
    // Scale the polarizability count with the machine.
    RamanJob scaled = job_;
    const std::size_t groups =
        std::max<std::size_t>(1, p / std::min(group_size_, p));
    scaled.n_polarizabilities = groups * std::max<std::size_t>(
        1, job_.n_polarizabilities /
               std::max<std::size_t>(1, process_counts.front() /
                                            std::min(group_size_,
                                                     process_counts.front())));
    ScalabilitySimulator sim(scaled, machine_, group_size_);
    ScalingPoint pt;
    pt.n_processes = p;
    pt.n_cores = p * machine_.cores_per_process;
    pt.time_seconds = sim.simulate(p);
    if (t_ref == 0.0) t_ref = pt.time_seconds;
    pt.speedup = 1.0;
    pt.efficiency = t_ref / pt.time_seconds;
    out.push_back(pt);
  }
  return out;
}

}  // namespace swraman::scaling
