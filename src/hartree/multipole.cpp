#include "hartree/multipole.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "grid/ylm.hpp"
#include "obs/obs.hpp"

namespace swraman::hartree {

MultipoleSolver::MultipoleSolver(const grid::MolecularGrid& grid, int lmax)
    : grid_(grid), lmax_(lmax) {
  SWRAMAN_REQUIRE(lmax >= 0, "MultipoleSolver: lmax >= 0");
  SWRAMAN_REQUIRE(!grid.shells.empty(),
                  "MultipoleSolver: grid lacks shell structure");
  n_lm_ = grid::n_lm(lmax_);

  // Precompute Y_lm(u) for every point relative to its owning atom.
  ylm_.resize(grid_.size() * n_lm_);
  std::vector<double> y;
  for (std::size_t p = 0; p < grid_.size(); ++p) {
    const int a = grid_.owner_atom[p];
    const Vec3 u = grid_.points[p] - grid_.atoms[static_cast<std::size_t>(a)].pos;
    grid::real_ylm(u, lmax_, y);
    std::copy(y.begin(), y.end(), ylm_.begin() + static_cast<long>(p * n_lm_));
  }

  shells_of_atom_.resize(grid_.atoms.size());
  for (std::size_t s = 0; s < grid_.shells.size(); ++s) {
    shells_of_atom_[static_cast<std::size_t>(grid_.shells[s].atom)].push_back(s);
  }
  for (auto& list : shells_of_atom_) {
    std::sort(list.begin(), list.end(), [this](std::size_t a, std::size_t b) {
      return grid_.shells[a].radius < grid_.shells[b].radius;
    });
  }
}

MultipolePotential MultipoleSolver::solve(
    const std::vector<double>& density) const {
  SWRAMAN_REQUIRE(density.size() == grid_.size(),
                  "MultipoleSolver::solve: density size mismatch");
  SWRAMAN_TRACE_SPAN(span, "hartree.multipole");
  const std::size_t n_atoms = grid_.atoms.size();
  if (span.active()) {
    span.attr("atoms", static_cast<double>(n_atoms));
    span.attr("lmax", static_cast<double>(lmax_));
  }

  MultipolePotential pot;
  pot.lmax_ = lmax_;
  pot.centers_.resize(n_atoms);
  pot.outer_radius_.assign(n_atoms, 0.0);
  pot.v_lm_.resize(n_atoms);
  pot.moments_.assign(n_atoms, std::vector<double>(n_lm_, 0.0));

  for (std::size_t a = 0; a < n_atoms; ++a) {
    pot.centers_[a] = grid_.atoms[a].pos;
    const std::vector<std::size_t>& shells = shells_of_atom_[a];
    if (shells.empty()) continue;
    const std::size_t ns = shells.size();

    // Project the partitioned density onto Y_lm on each shell.
    std::vector<double> radii(ns);
    // rho[lm * ns + s]
    std::vector<double> rho(n_lm_ * ns, 0.0);
    for (std::size_t si = 0; si < ns; ++si) {
      const grid::ShellInfo& sh = grid_.shells[shells[si]];
      radii[si] = sh.radius;
      // A shell's angular rule resolves the Y_l * Y_l product only up to
      // l = order/2; projecting beyond that aliases order-one garbage into
      // the channel (pruned inner shells have low-order rules). Density is
      // nearly spherical there, so truncating is the physical choice.
      const std::size_t lm_cap =
          std::min(n_lm_, grid::n_lm(sh.angular_order / 2));
      for (std::size_t k = 0; k < sh.n_points; ++k) {
        const std::size_t p = sh.first_point + k;
        const double f =
            grid_.angular_weight[p] * grid_.partition[p] * density[p];
        if (f == 0.0) continue;
        const double* y = &ylm_[p * n_lm_];
        for (std::size_t lm = 0; lm < lm_cap; ++lm) {
          rho[lm * ns + si] += f * y[lm];
        }
      }
    }

    pot.outer_radius_[a] = radii.back();
    pot.v_lm_[a].resize(n_lm_);

    // Radial Green's-function integrals per lm channel, exact spline
    // integration over the shell radii (+ analytic inner-sphere term).
    std::vector<double> v_r(ns);
    std::vector<double> rho_ch(ns);
    for (int l = 0; l <= lmax_; ++l) {
      for (int m = -l; m <= l; ++m) {
        const std::size_t lm = grid::lm_index(l, m);
        // Physical channels vanish like s^l at the nucleus; angular
        // quadrature roundoff does not, and the s^{1-l} Green's-function
        // factor would amplify it catastrophically. Zero everything below
        // the channel's noise floor.
        double chmax = 0.0;
        for (std::size_t s = 0; s < ns; ++s) {
          chmax = std::max(chmax, std::abs(rho[lm * ns + s]));
        }
        for (std::size_t s = 0; s < ns; ++s) {
          const double v = rho[lm * ns + s];
          rho_ch[s] = (std::abs(v) < 1e-10 * chmax) ? 0.0 : v;
        }
        const double* rl = rho_ch.data();

        // I<(r_k) = integral_0^{r_k} rho s^{l+2} ds: spline integration of
        // the tabulated integrand plus the analytic inner-sphere term
        // (rho ~ const below the first shell).
        std::vector<double> f_lt(ns);
        std::vector<double> f_gt(ns);
        for (std::size_t s = 0; s < ns; ++s) {
          f_lt[s] = rl[s] * std::pow(radii[s], l + 2);
          f_gt[s] = rl[s] * std::pow(radii[s], 1 - l);
        }
        std::vector<double> ilt =
            CubicSpline(radii, f_lt).cumulative_at_knots();
        const double inner =
            rl[0] * std::pow(radii[0], l + 3) / static_cast<double>(l + 3);
        for (double& v : ilt) v += inner;
        // I>(r_k) = integral_{r_k}^{rmax} rho s^{1-l} ds.
        std::vector<double> igt =
            CubicSpline(radii, f_gt).cumulative_at_knots();
        const double igt_total = igt.back();
        for (double& v : igt) v = igt_total - v;

        const double pref = kFourPi / (2.0 * l + 1.0);
        for (std::size_t s = 0; s < ns; ++s) {
          v_r[s] = pref * (ilt[s] / std::pow(radii[s], l + 1) +
                           igt[s] * std::pow(radii[s], l));
        }
        pot.moments_[a][lm] = ilt[ns - 1];
        pot.v_lm_[a][lm] = CubicSpline(radii, v_r);
      }
    }
  }
  return pot;
}

std::vector<double> MultipoleSolver::solve_on_grid(
    const std::vector<double>& density) const {
  SWRAMAN_TRACE_SCOPE("hartree.poisson");
  const MultipolePotential pot = solve(density);
  std::vector<double> v(grid_.size());
  for (std::size_t p = 0; p < grid_.size(); ++p) {
    v[p] = pot.value(grid_.points[p]);
  }
  return v;
}

double MultipolePotential::value(const Vec3& point) const {
  // Thread-local scratch: the Y_lm basis buffer survives across calls, so
  // the per-grid-point evaluation loop performs no heap allocation (pinned
  // by Multipole.ValueDoesNotAllocatePerPoint).
  thread_local Workspace ws;
  return value(point, ws);
}

double MultipolePotential::value(const Vec3& point, Workspace& ws) const {
  // Terms accumulate into one running sum in atom order — the exact
  // floating-point chain of the original implementation, so Direct-backend
  // results are bitwise stable across the workspace refactor.
  double v = 0.0;
  for (std::size_t a = 0; a < centers_.size(); ++a) {
    accumulate_atom(a, point, ws, v);
  }
  return v;
}

double MultipolePotential::value_atom(std::size_t atom, const Vec3& point,
                                      Workspace& ws) const {
  double v = 0.0;
  accumulate_atom(atom, point, ws, v);
  return v;
}

void MultipolePotential::accumulate_atom(std::size_t atom, const Vec3& point,
                                         Workspace& ws, double& v) const {
  if (v_lm_[atom].empty()) return;
  const std::size_t n_lm = grid::n_lm(lmax_);
  const Vec3 d = point - centers_[atom];
  const double r = std::max(d.norm(), 1e-8);
  grid::real_ylm(d, lmax_, ws.ylm, ws.ylm_scratch);
  const double* y = ws.ylm.data();
  if (r <= outer_radius_[atom]) {
    for (std::size_t lm = 0; lm < n_lm; ++lm) {
      v += v_lm_[atom][lm].value(r) * y[lm];
    }
  } else {
    // Analytic multipole far field.
    double rpow = r;  // r^{l+1}
    std::size_t lm = 0;
    for (int l = 0; l <= lmax_; ++l) {
      const double pref = kFourPi / (2.0 * l + 1.0) / rpow;
      for (int m = -l; m <= l; ++m, ++lm) {
        v += pref * moments_[atom][lm] * y[lm];
      }
      rpow *= r;
    }
  }
}

double MultipolePotential::total_charge() const {
  double q = 0.0;
  for (const std::vector<double>& m : moments_) {
    if (!m.empty()) q += m[0] * std::sqrt(kFourPi);
  }
  return q;
}

double MultipolePotential::moment(std::size_t atom, std::size_t lm) const {
  SWRAMAN_REQUIRE(atom < moments_.size() && lm < moments_[atom].size(),
                  "MultipolePotential::moment: index");
  return moments_[atom][lm];
}

}  // namespace swraman::hartree
