#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

// Classical Ewald summation for periodic point-charge systems — the
// reciprocal-space part is the paper's "kernel2" (update potential in
// reciprocal space), exercised by the Fig. 12 tiling benchmark on the
// silicon-solid workload. The splitting parameter eta partitions the
// Coulomb sum into a short-ranged real-space erfc sum and a smooth
// reciprocal-space sum over G vectors:
//
//   V(r) = sum_{i,R} q_i erfc(sqrt(eta)|r - r_i - R|)/|r - r_i - R|
//        + 4pi/V sum_{G != 0} e^{-G^2/(4 eta)}/G^2
//              [cos(G.r) A(G) + sin(G.r) B(G)],
//
// with structure factors A = sum q_i cos(G.r_i), B = sum q_i sin(G.r_i).

namespace swraman::hartree {

struct EwaldSystem {
  Vec3 a1, a2, a3;                 // lattice vectors (Bohr)
  std::vector<Vec3> positions;     // fractional-free Cartesian positions
  std::vector<double> charges;     // must sum to ~0 (neutral cell)
};

class Ewald {
 public:
  // eta: splitting parameter; r_cut / g_cut: real/reciprocal cutoffs.
  Ewald(EwaldSystem system, double eta, double r_cut, double g_cut);

  [[nodiscard]] double potential(const Vec3& r) const;
  [[nodiscard]] double real_space(const Vec3& r) const;
  [[nodiscard]] double reciprocal(const Vec3& r) const;

  // Potential at ion i excluding its own charge (Madelung-type value).
  [[nodiscard]] double potential_at_ion(std::size_t i) const;

  [[nodiscard]] double cell_volume() const { return volume_; }
  [[nodiscard]] std::size_t n_g_vectors() const { return g_.size(); }

  // Raw reciprocal-space tables, the operands of the tiled CPE kernel:
  // coefficient_k = 4pi/(V G_k^2) e^{-G_k^2/(4 eta)}; structure factors
  // A_k, B_k as above.
  [[nodiscard]] const std::vector<Vec3>& g_vectors() const { return g_; }
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coef_;
  }
  [[nodiscard]] const std::vector<double>& structure_cos() const {
    return str_cos_;
  }
  [[nodiscard]] const std::vector<double>& structure_sin() const {
    return str_sin_;
  }

 private:
  EwaldSystem sys_;
  double eta_;
  double r_cut_;
  double volume_ = 0.0;
  std::vector<Vec3> real_images_;  // lattice translations within reach
  std::vector<Vec3> g_;
  std::vector<double> coef_;
  std::vector<double> str_cos_;
  std::vector<double> str_sin_;
};

// Convenience: conventional rock-salt (NaCl-type) cell with lattice constant
// a and charges +-q, 8 ions; used by tests and the Fig. 12 workload.
EwaldSystem rock_salt_cell(double a, double q = 1.0);

// Diamond/zinc-blende 8-atom conventional cell with charges q1 on the first
// sublattice and q2 = -q1 on the second (synthetic polar workload).
EwaldSystem zinc_blende_cell(double a, double q1);

}  // namespace swraman::hartree
