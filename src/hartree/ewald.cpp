#include "hartree/ewald.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::hartree {

Ewald::Ewald(EwaldSystem system, double eta, double r_cut, double g_cut)
    : sys_(std::move(system)), eta_(eta), r_cut_(r_cut) {
  SWRAMAN_REQUIRE(eta > 0.0 && r_cut > 0.0 && g_cut > 0.0,
                  "Ewald: eta, r_cut, g_cut must be positive");
  SWRAMAN_REQUIRE(sys_.positions.size() == sys_.charges.size(),
                  "Ewald: positions/charges size mismatch");
  double qtot = 0.0;
  for (double q : sys_.charges) qtot += q;
  SWRAMAN_REQUIRE(std::abs(qtot) < 1e-10, "Ewald: cell must be neutral");

  volume_ = dot(sys_.a1, cross(sys_.a2, sys_.a3));
  SWRAMAN_REQUIRE(volume_ > 0.0, "Ewald: left-handed or singular lattice");

  // Real-space images: all lattice translations with |T| <= r_cut + cell
  // diagonal (conservative box enumeration).
  const double diag =
      sys_.a1.norm() + sys_.a2.norm() + sys_.a3.norm();
  const int n1 = static_cast<int>(std::ceil((r_cut_ + diag) / sys_.a1.norm()));
  const int n2 = static_cast<int>(std::ceil((r_cut_ + diag) / sys_.a2.norm()));
  const int n3 = static_cast<int>(std::ceil((r_cut_ + diag) / sys_.a3.norm()));
  for (int i = -n1; i <= n1; ++i)
    for (int j = -n2; j <= n2; ++j)
      for (int k = -n3; k <= n3; ++k) {
        const Vec3 t = static_cast<double>(i) * sys_.a1 +
                       static_cast<double>(j) * sys_.a2 +
                       static_cast<double>(k) * sys_.a3;
        if (t.norm() <= r_cut_ + diag) real_images_.push_back(t);
      }

  // Reciprocal lattice.
  const Vec3 b1 = kTwoPi / volume_ * cross(sys_.a2, sys_.a3);
  const Vec3 b2 = kTwoPi / volume_ * cross(sys_.a3, sys_.a1);
  const Vec3 b3 = kTwoPi / volume_ * cross(sys_.a1, sys_.a2);
  const int m1 = static_cast<int>(std::ceil(g_cut / b1.norm())) + 1;
  const int m2 = static_cast<int>(std::ceil(g_cut / b2.norm())) + 1;
  const int m3 = static_cast<int>(std::ceil(g_cut / b3.norm())) + 1;
  for (int i = -m1; i <= m1; ++i)
    for (int j = -m2; j <= m2; ++j)
      for (int k = -m3; k <= m3; ++k) {
        if (i == 0 && j == 0 && k == 0) continue;
        const Vec3 g = static_cast<double>(i) * b1 +
                       static_cast<double>(j) * b2 +
                       static_cast<double>(k) * b3;
        const double g2 = g.norm2();
        if (g2 > g_cut * g_cut) continue;
        g_.push_back(g);
        coef_.push_back(kFourPi / (volume_ * g2) *
                        std::exp(-g2 / (4.0 * eta_)));
        double a = 0.0;
        double b = 0.0;
        for (std::size_t p = 0; p < sys_.positions.size(); ++p) {
          const double phase = dot(g, sys_.positions[p]);
          a += sys_.charges[p] * std::cos(phase);
          b += sys_.charges[p] * std::sin(phase);
        }
        str_cos_.push_back(a);
        str_sin_.push_back(b);
      }
}

double Ewald::real_space(const Vec3& r) const {
  const double sq_eta = std::sqrt(eta_);
  double v = 0.0;
  for (const Vec3& t : real_images_) {
    for (std::size_t p = 0; p < sys_.positions.size(); ++p) {
      const Vec3 d = r - sys_.positions[p] - t;
      const double dist = d.norm();
      if (dist > r_cut_ || dist < 1e-12) continue;
      v += sys_.charges[p] * std::erfc(sq_eta * dist) / dist;
    }
  }
  return v;
}

double Ewald::reciprocal(const Vec3& r) const {
  double v = 0.0;
  for (std::size_t k = 0; k < g_.size(); ++k) {
    const double phase = dot(g_[k], r);
    v += coef_[k] *
         (std::cos(phase) * str_cos_[k] + std::sin(phase) * str_sin_[k]);
  }
  return v;
}

double Ewald::potential(const Vec3& r) const {
  return real_space(r) + reciprocal(r);
}

double Ewald::potential_at_ion(std::size_t i) const {
  SWRAMAN_REQUIRE(i < sys_.positions.size(), "potential_at_ion: index");
  const Vec3& r = sys_.positions[i];
  // real_space already skips the zero-distance self term; the reciprocal
  // sum includes the Gaussian self interaction, removed analytically.
  const double self = 2.0 * std::sqrt(eta_ / kPi) * sys_.charges[i];
  return real_space(r) + reciprocal(r) - self;
}

EwaldSystem rock_salt_cell(double a, double q) {
  EwaldSystem s;
  s.a1 = {a, 0.0, 0.0};
  s.a2 = {0.0, a, 0.0};
  s.a3 = {0.0, 0.0, a};
  const double h = 0.5 * a;
  // Cations at FCC sites, anions offset by (h, 0, 0).
  const Vec3 fcc[4] = {{0, 0, 0}, {0, h, h}, {h, 0, h}, {h, h, 0}};
  for (const Vec3& p : fcc) {
    s.positions.push_back(p);
    s.charges.push_back(q);
  }
  for (const Vec3& p : fcc) {
    s.positions.push_back(p + Vec3{h, 0.0, 0.0});
    s.charges.push_back(-q);
  }
  return s;
}

EwaldSystem zinc_blende_cell(double a, double q1) {
  EwaldSystem s;
  s.a1 = {a, 0.0, 0.0};
  s.a2 = {0.0, a, 0.0};
  s.a3 = {0.0, 0.0, a};
  const double h = 0.5 * a;
  const double t = 0.25 * a;
  const Vec3 fcc[4] = {{0, 0, 0}, {0, h, h}, {h, 0, h}, {h, h, 0}};
  for (const Vec3& p : fcc) {
    s.positions.push_back(p);
    s.charges.push_back(q1);
  }
  for (const Vec3& p : fcc) {
    s.positions.push_back(p + Vec3{t, t, t});
    s.charges.push_back(-q1);
  }
  return s;
}

}  // namespace swraman::hartree
