#pragma once

#include <cstddef>
#include <vector>

#include "common/spline.hpp"
#include "common/vec3.hpp"
#include "grid/atom_grid.hpp"
#include "grid/ylm.hpp"

// Multipole electrostatics after Delley (J. Phys. Chem. 100, 6107 (1996)) —
// the real-space Poisson solver of the paper (Sec. 3.2, "kernel1"). The
// Becke-partitioned density is projected onto real spherical harmonics on
// each atom's radial shells,
//
//   rho^a_lm(r_s) = sum_{angular points} w_ang Y_lm(u) p_a(x) n(x),
//
// each (a, lm) channel is solved by the radial Green's function,
//
//   V_lm(r) = 4pi/(2l+1) [ r^-(l+1) I<(r) + r^l I>(r) ],
//
// the channels are cubic-splined over the shell radii (the CSI data the
// vectorized kernel of Algorithm 2 consumes), and the molecular potential is
// the sum over atoms with analytic multipole far fields.

namespace swraman::hartree {

// The solved potential: per-atom per-lm radial splines plus far-field
// multipole moments.
class MultipolePotential {
 public:
  // Reusable per-thread scratch for point evaluation: the real-Y_lm basis
  // buffer (and the recurrence tables inside real_ylm) that value() would
  // otherwise heap-allocate per call. Callers on hot loops (solve_on_grid,
  // the FMM P2P kernel) hold one per thread.
  struct Workspace {
    std::vector<double> ylm;
    grid::YlmWorkspace ylm_scratch;
  };

  // Potential value at an arbitrary point. Uses a thread-local Workspace;
  // allocation-free after the first call on each thread.
  [[nodiscard]] double value(const Vec3& point) const;

  // Same, with a caller-provided workspace (no thread-local lookup).
  [[nodiscard]] double value(const Vec3& point, Workspace& ws) const;

  // Contribution of a single atom to the potential at `point`: the radial
  // spline channels inside the atom's outer radius, the analytic multipole
  // far field beyond it. value() is exactly the atom-ordered sum of these
  // terms; the FMM near field (P2P) evaluates the same expression so that
  // near-pair arithmetic is identical between backends.
  [[nodiscard]] double value_atom(std::size_t atom, const Vec3& point,
                                  Workspace& ws) const;

  [[nodiscard]] std::size_t n_atoms() const { return centers_.size(); }

  // Total charge seen by the far field (sum of the l=0 moments); equals the
  // integrated density when the grid resolves it.
  [[nodiscard]] double total_charge() const;

  [[nodiscard]] int lmax() const { return lmax_; }

  // Multipole moment q_lm of atom a (flat lm index), defined as
  // integral rho_lm s^{l+2} ds.
  [[nodiscard]] double moment(std::size_t atom, std::size_t lm) const;

  // Raw per-atom data, used by the Sunway CSI kernel to build its
  // structure-of-arrays spline-coefficient tables.
  [[nodiscard]] const std::vector<Vec3>& centers() const { return centers_; }
  [[nodiscard]] double outer_radius(std::size_t atom) const {
    return outer_radius_[atom];
  }
  [[nodiscard]] const std::vector<CubicSpline>& channels(
      std::size_t atom) const {
    return v_lm_[atom];
  }

 private:
  friend class MultipoleSolver;
  void accumulate_atom(std::size_t atom, const Vec3& point, Workspace& ws,
                       double& v) const;
  int lmax_ = 0;
  std::vector<Vec3> centers_;
  std::vector<double> outer_radius_;             // per atom
  std::vector<std::vector<CubicSpline>> v_lm_;   // [atom][lm]
  std::vector<std::vector<double>> moments_;     // [atom][lm]
};

class MultipoleSolver {
 public:
  // The grid must retain its shell structure (grid.shells non-empty).
  MultipoleSolver(const grid::MolecularGrid& grid, int lmax = 6);

  // Solves Poisson for the density given at the grid points.
  [[nodiscard]] MultipolePotential solve(
      const std::vector<double>& density) const;

  // Convenience: potential evaluated back on every grid point.
  [[nodiscard]] std::vector<double> solve_on_grid(
      const std::vector<double>& density) const;

  [[nodiscard]] int lmax() const { return lmax_; }

 private:
  const grid::MolecularGrid& grid_;
  int lmax_;
  // Precomputed Y_lm for every grid point (n_points x n_lm, row-major).
  std::vector<double> ylm_;
  std::size_t n_lm_ = 0;
  // Shells grouped per atom, ascending radius.
  std::vector<std::vector<std::size_t>> shells_of_atom_;
};

}  // namespace swraman::hartree
