#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/vec3.hpp"

// Spherical-harmonic expansion operators for the fast-multipole Hartree far
// field (Greengard–Rokhlin lemmas, exafmm-alpha idiom). Expansions are in
// semi-normalized complex harmonics with the same Legendre convention as the
// repo's real basis (grid/ylm.cpp: no Condon–Shortley phase),
//
//   Ytil_n^m(theta,phi) = sqrt((n-|m|)!/(n+|m|)!) P_n^{|m|}(cos theta) e^{i m phi},
//
// so an atom's Delley moments convert to complex moments by a diagonal map
// (atom_moments_to_multipole) and a cell multipole reproduces exactly the
// analytic far field MultipolePotential evaluates atom by atom. Operators:
//
//   P2M   point charge -> multipole          (tests / aggregate bounds)
//   M2M   child multipole -> parent multipole (upward pass)
//   M2L   multipole -> local                  (far-field interaction)
//   L2L   parent local -> child local         (downward pass)
//   L2P   local -> potential at a point
//   M2P   multipole -> potential at a point   (validation path)

namespace swraman::fmm {

using Cplx = std::complex<double>;

// Flat index of (n, m) with n >= 0, -n <= m <= n.
[[nodiscard]] constexpr std::size_t nm_index(int n, int m) {
  return static_cast<std::size_t>(n * (n + 1) + m);
}
// Number of coefficients for expansions up to `order` inclusive.
[[nodiscard]] constexpr std::size_t nm_count(int order) {
  return static_cast<std::size_t>((order + 1) * (order + 1));
}

class FmmKernel {
 public:
  // Scratch buffers for the operator evaluations; hold one per thread (or
  // per logical CPE) so the hot loops never heap-allocate.
  struct Workspace {
    std::vector<double> leg;   // semi-normalized Legendre table
    std::vector<Cplx> harm;    // solid-harmonic buffer
  };

  // `order` is the expansion truncation p; coefficient arrays hold
  // nm_count(order) complex values. Internal tables go to 2*order (M2L
  // needs irregular harmonics of degree j+n <= 2p).
  explicit FmmKernel(int order);

  [[nodiscard]] int order() const { return order_; }

  // Regular solid harmonics R_n^m(d) = rho^n Ytil_n^m up to degree `deg`
  // into out[nm_index(n,m)] (resized to nm_count(deg)).
  void regular(const Vec3& d, int deg, std::vector<Cplx>& out,
               std::vector<double>& leg) const;
  // Irregular solid harmonics S_n^m(d) = Ytil_n^m / rho^{n+1}.
  void irregular(const Vec3& d, int deg, std::vector<Cplx>& out,
                 std::vector<double>& leg) const;

  // Point charge q at d = body - center, accumulated into M.
  void p2m(double q, const Vec3& d, Cplx* M, Workspace& ws) const;

  // Converts one atom's real Delley moments q_lm (repo flat lm order,
  // lmax <= order) into complex moments about the atom center, accumulated
  // into M. The far-field series Sum M_n^m Ytil_n^m / r^{n+1} then equals
  // MultipolePotential's analytic far field for that atom.
  void atom_moments_to_multipole(const double* q_lm, int lmax, Cplx* M) const;

  // Translates child moments (about child center) to the parent center;
  // d = child_center - parent_center. Accumulates into M_parent.
  void m2m(const Cplx* M_child, const Vec3& d, Cplx* M_parent,
           Workspace& ws) const;

  // Converts a source multipole into a local expansion about the target
  // center; d = source_center - target_center. Accumulates into L.
  void m2l(const Cplx* M, const Vec3& d, Cplx* L, Workspace& ws) const;

  // Translates a parent local expansion to a child center;
  // d = child_center - parent_center. Accumulates into L_child.
  void l2l(const Cplx* L_parent, const Vec3& d, Cplx* L_child,
           Workspace& ws) const;

  // Potential at d = point - center from a local expansion.
  [[nodiscard]] double l2p(const Cplx* L, const Vec3& d, Workspace& ws) const;

  // Potential at d = point - center directly from a multipole expansion.
  [[nodiscard]] double m2p(const Cplx* M, const Vec3& d, Workspace& ws) const;

  // Flop counts per single operator application (for CPE modeled-cycle
  // accounting): dominated by the O(p^4) translation double loops.
  [[nodiscard]] double m2l_flops() const;
  [[nodiscard]] double l2p_flops() const;

 private:
  [[nodiscard]] double A(int n, int m) const {
    return a_[nm_index(n, m)];
  }

  int order_;
  // A_n^m = (-1)^n / sqrt((n-m)!(n+m)!) up to degree 2*order.
  std::vector<double> a_;
};

// Conservative analytic bound on the potential error of one far-field
// (M2L) interaction at expansion order p, including the upstream M2M and
// downstream L2L truncation. `abs_moment` holds, per degree l, the
// aggregate absolute source-cell moment  A_l = sum_{atoms,m} |M^a_{l,m}|;
// ra/rb are the source/target cell bounding radii and dist the
// center-to-center distance. Infinite when the pair violates the MAC
// (ra + rb >= dist).
[[nodiscard]] double m2l_error_bound(const std::vector<double>& abs_moment,
                                     double ra, double rb, double dist,
                                     int order);

}  // namespace swraman::fmm
