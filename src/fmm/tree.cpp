#include "fmm/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace swraman::fmm {

namespace {

// Spreads the low 21 bits of v three apart (magic-number bit dilation).
std::uint64_t dilate3(std::uint64_t v) {
  v &= 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

}  // namespace

std::uint64_t morton_key(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return dilate3(x) | (dilate3(y) << 1) | (dilate3(z) << 2);
}

Octree::Octree(const std::vector<Vec3>& positions,
               const std::vector<double>& extent,
               const OctreeOptions& options) {
  SWRAMAN_REQUIRE(!positions.empty(), "Octree: empty point set");
  SWRAMAN_REQUIRE(extent.empty() || extent.size() == positions.size(),
                  "Octree: extent size mismatch");

  // Bounding cube: tight AABB, then the largest edge padded slightly so
  // boundary points quantize strictly inside [0, 2^21).
  Vec3 lo = positions[0];
  Vec3 hi = positions[0];
  for (const Vec3& p : positions) {
    for (int c = 0; c < 3; ++c) {
      lo[c] = std::min(lo[c], p[c]);
      hi[c] = std::max(hi[c], p[c]);
    }
  }
  box_center_ = {0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y),
                 0.5 * (lo.z + hi.z)};
  double edge = std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z});
  edge = std::max(edge, 1e-12) * (1.0 + 1e-9);
  box_half_ = 0.5 * edge;

  // Quantize to 21-bit lattice coordinates and Morton-sort.
  const std::size_t n = positions.size();
  constexpr double kScale = static_cast<double>(1u << 21);
  std::vector<std::uint64_t> raw(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t q[3];
    for (int c = 0; c < 3; ++c) {
      double t = (positions[i][c] - (box_center_[c] - box_half_)) /
                 (2.0 * box_half_);
      t = std::min(std::max(t, 0.0), 1.0 - 1e-12);
      q[c] = static_cast<std::uint32_t>(t * kScale);
    }
    raw[i] = morton_key(q[0], q[1], q[2]);
  }
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  std::stable_sort(order_.begin(), order_.end(),
                   [&raw](std::size_t a, std::size_t b) {
                     return raw[a] < raw[b];
                   });
  keys_.resize(n);
  for (std::size_t i = 0; i < n; ++i) keys_[i] = raw[order_[i]];

  Cell root;
  root.center = box_center_;
  root.half = box_half_;
  root.first_body = 0;
  root.n_bodies = n;
  root.level = 0;
  cells_.push_back(root);
  build_cell(0, 0, n, positions, extent, options);
}

void Octree::build_cell(std::size_t cell, std::size_t lo, std::size_t hi,
                        const std::vector<Vec3>& positions,
                        const std::vector<double>& extent,
                        const OctreeOptions& options) {
  // Geometric bounding radius (convergence) and extent-inflated reach
  // (far-field validity) over the member bodies, from the cube center.
  {
    Cell& c = cells_[cell];
    double r = 0.0;
    double reach = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = order_[i];
      const double d = (positions[b] - c.center).norm();
      r = std::max(r, d);
      reach = std::max(reach, d + (extent.empty() ? 0.0 : extent[b]));
    }
    c.radius = r;
    c.reach = reach;
    depth_ = std::max(depth_, c.level);
  }

  const int level = cells_[cell].level;
  if (hi - lo <= options.leaf_size || level >= options.max_depth) {
    ++n_leaves_;
    return;
  }

  // Children are the runs of equal 3-bit Morton digits at this level.
  // Digit for level L sits at bit 3*(20-L) (keys have 21 digit levels).
  const int shift = 3 * (20 - level);
  const std::size_t first_child = cells_.size();
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::size_t run = lo;
  while (run < hi) {
    const std::uint64_t digit = (keys_[run] >> shift) & 7u;
    std::size_t end = run + 1;
    while (end < hi && ((keys_[end] >> shift) & 7u) == digit) ++end;
    ranges.emplace_back(run, end);
    run = end;
  }
  cells_[cell].first_child = first_child;
  cells_[cell].n_children = static_cast<int>(ranges.size());
  const Vec3 pc = cells_[cell].center;
  const double ch = 0.5 * cells_[cell].half;
  for (const auto& [rlo, rhi] : ranges) {
    const std::uint64_t digit = (keys_[rlo] >> shift) & 7u;
    Cell child;
    child.center = {pc.x + (((digit >> 0) & 1u) ? ch : -ch),
                    pc.y + (((digit >> 1) & 1u) ? ch : -ch),
                    pc.z + (((digit >> 2) & 1u) ? ch : -ch)};
    child.half = ch;
    child.first_body = rlo;
    child.n_bodies = rhi - rlo;
    child.parent = cell;
    child.level = level + 1;
    cells_.push_back(child);
  }
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    build_cell(first_child + k, ranges[k].first, ranges[k].second, positions,
               extent, options);
  }
}

}  // namespace swraman::fmm
