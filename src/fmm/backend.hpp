#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "grid/atom_grid.hpp"
#include "hartree/multipole.hpp"

// Drop-in Hartree far-field backend (DESIGN.md S16). HartreeContext owns
// the Delley MultipoleSolver and decides how the solved potential is
// evaluated back onto the grid:
//
//   Direct — MultipoleSolver::solve_on_grid verbatim: every atom's spline
//            channels / analytic multipoles summed per grid point, bitwise
//            identical to the pre-FMM code path.
//   Fmm    — octree fast multipole: atom moments are translated up a
//            Morton octree over atom centers (P2M/M2M), exchanged between
//            well-separated cells of a second octree over grid points
//            (M2L, CPE-offloaded), pushed down to target leaves (L2L), and
//            evaluated (L2P) together with the exact near field (P2P,
//            CPE-offloaded, arithmetic identical to Direct per near atom).
//   Auto   — cost-model crossover: the geometry-static interaction lists
//            price both paths in modeled flops and the cheaper one runs.
//
// Trees and interaction lists depend only on the geometry, so they are
// built once per context and reused by every SCF / DFPT solve.

namespace swraman::sunway {
class CpeCluster;
}  // namespace swraman::sunway

namespace swraman::fmm {

enum class HartreeBackend { Direct, Fmm, Auto };

struct FmmOptions {
  int order = 8;          // expansion truncation p
  double theta = 0.55;    // multipole acceptance criterion, in (0, 1)
  std::size_t source_leaf_size = 8;    // atoms per source leaf
  std::size_t target_leaf_size = 64;   // grid points per target leaf
  bool use_cpe = true;    // run M2L / P2P on the CPE cluster model
  // Accumulate the analytic per-leaf truncation bound during evaluation
  // (tests / diagnostics; adds one bound evaluation per M2L pair).
  bool track_error_bound = false;
};

// Introspection of the last FMM evaluation / Auto decision.
struct FmmStats {
  std::size_t n_source_cells = 0;
  std::size_t n_target_cells = 0;
  std::size_t n_m2l_pairs = 0;
  std::size_t n_p2p_pairs = 0;
  double direct_flops = 0.0;  // modeled dense-evaluation cost
  double fmm_flops = 0.0;     // modeled tree-evaluation cost
  // Max over target leaves of the summed analytic M2L truncation bounds
  // (only filled under FmmOptions::track_error_bound).
  double max_error_bound = 0.0;
  HartreeBackend resolved = HartreeBackend::Direct;  // what actually ran
};

class HartreeContext {
 public:
  HartreeContext(const grid::MolecularGrid& grid, int lmax,
                 HartreeBackend backend, FmmOptions options);
  ~HartreeContext();
  HartreeContext(const HartreeContext&) = delete;
  HartreeContext& operator=(const HartreeContext&) = delete;

  // Poisson solve + evaluation on every grid point through the selected
  // backend. Direct delegates to MultipoleSolver::solve_on_grid verbatim.
  [[nodiscard]] std::vector<double> solve_on_grid(
      const std::vector<double>& density) const;

  // Tree evaluation of an already-solved potential (bench / test entry;
  // ignores the configured backend).
  [[nodiscard]] std::vector<double> fmm_on_grid(
      const hartree::MultipolePotential& potential) const;

  // The wrapped Delley solver (CSI-table construction, lmax, ...).
  [[nodiscard]] const hartree::MultipoleSolver& solver() const {
    return solver_;
  }
  [[nodiscard]] HartreeBackend backend() const { return backend_; }
  [[nodiscard]] const FmmOptions& fmm_options() const { return options_; }
  // Stats of the most recent solve_on_grid / fmm_on_grid on this context.
  [[nodiscard]] const FmmStats& stats() const { return stats_; }

 private:
  struct Geometry;
  // Builds trees + interaction lists on first use (geometry-static).
  const Geometry& geometry() const;
  [[nodiscard]] HartreeBackend resolve_backend() const;

  const grid::MolecularGrid& grid_;
  hartree::MultipoleSolver solver_;
  HartreeBackend backend_;
  FmmOptions options_;
  mutable std::unique_ptr<Geometry> geo_;
  mutable std::unique_ptr<sunway::CpeCluster> cluster_;
  mutable FmmStats stats_;
};

}  // namespace swraman::fmm
