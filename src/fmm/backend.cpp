#include "fmm/backend.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "fmm/kernel.hpp"
#include "fmm/traversal.hpp"
#include "fmm/tree.hpp"
#include "grid/ylm.hpp"
#include "obs/obs.hpp"
#include "sunway/arch.hpp"
#include "sunway/cpe_cluster.hpp"
#include "sunway/kernels.hpp"

namespace swraman::fmm {

// Per-atom / per-point evaluation cost in flops, matching what the kernel1
// CPE model charges — the common currency of the Auto cost model.
namespace {
double point_atom_flops(std::size_t n_lm) {
  return 12.0 * static_cast<double>(n_lm) + 30.0;
}
}  // namespace

struct HartreeContext::Geometry {
  FmmKernel kernel;
  std::unique_ptr<Octree> sources;  // atom centers, extent = spline radius
  std::unique_ptr<Octree> targets;  // grid points
  // M2L pairs grouped per target cell (disjoint target slices -> the CPE
  // kernel writes without conflicts).
  std::vector<std::size_t> m2l_targets;
  std::vector<std::size_t> m2l_begin;  // size m2l_targets.size() + 1
  std::vector<std::size_t> m2l_sources;
  // Every target leaf, with its (possibly empty) P2P source-leaf range.
  std::vector<std::size_t> target_leaves;
  std::vector<std::size_t> p2p_begin;  // size target_leaves.size() + 1
  std::vector<std::size_t> p2p_sources;
  std::vector<Vec3> points_sorted;  // grid points in target-tree order
  double p2p_point_atom_pairs = 0.0;
  double direct_flops = 0.0;
  double fmm_flops = 0.0;

  explicit Geometry(int order) : kernel(order) {}
};

HartreeContext::HartreeContext(const grid::MolecularGrid& grid, int lmax,
                               HartreeBackend backend, FmmOptions options)
    : grid_(grid),
      solver_(grid, lmax),
      backend_(backend),
      options_(options) {
  SWRAMAN_REQUIRE(options_.order >= lmax,
                  "HartreeContext: FMM order must cover multipole lmax");
}

HartreeContext::~HartreeContext() = default;

const HartreeContext::Geometry& HartreeContext::geometry() const {
  if (geo_) return *geo_;
  SWRAMAN_TRACE_SPAN(span, "hartree.fmm.build");
  auto g = std::make_unique<Geometry>(options_.order);

  // Source tree over atom centers; each atom's extent is its outermost
  // shell radius so MAC-accepted pairs sit strictly in the analytic far
  // field of every member atom.
  std::vector<Vec3> centers(grid_.atoms.size());
  for (std::size_t a = 0; a < grid_.atoms.size(); ++a) {
    centers[a] = grid_.atoms[a].pos;
  }
  std::vector<double> extent(grid_.atoms.size(), 0.0);
  for (const grid::ShellInfo& sh : grid_.shells) {
    std::size_t a = static_cast<std::size_t>(sh.atom);
    extent[a] = std::max(extent[a], sh.radius);
  }
  OctreeOptions src_opt;
  src_opt.leaf_size = options_.source_leaf_size;
  g->sources = std::make_unique<Octree>(centers, extent, src_opt);

  OctreeOptions tgt_opt;
  tgt_opt.leaf_size = options_.target_leaf_size;
  g->targets = std::make_unique<Octree>(grid_.points,
                                        std::vector<double>{}, tgt_opt);
  g->points_sorted.resize(grid_.points.size());
  for (std::size_t i = 0; i < grid_.points.size(); ++i) {
    g->points_sorted[i] = grid_.points[g->targets->body_order()[i]];
  }

  const InteractionLists lists =
      traverse(*g->targets, *g->sources, options_.theta);

  // Group M2L by target cell (stable bucket sort over cell index).
  {
    std::vector<std::vector<std::size_t>> by_target(g->targets->cells().size());
    for (const CellPair& pr : lists.m2l) by_target[pr.target].push_back(pr.source);
    g->m2l_begin.push_back(0);
    for (std::size_t t = 0; t < by_target.size(); ++t) {
      if (by_target[t].empty()) continue;
      g->m2l_targets.push_back(t);
      g->m2l_sources.insert(g->m2l_sources.end(), by_target[t].begin(),
                            by_target[t].end());
      g->m2l_begin.push_back(g->m2l_sources.size());
    }
  }

  // Group P2P by target leaf; keep every leaf (L2P runs regardless).
  {
    const auto& tcells = g->targets->cells();
    std::vector<std::vector<std::size_t>> by_leaf(tcells.size());
    for (const CellPair& pr : lists.p2p) by_leaf[pr.target].push_back(pr.source);
    g->p2p_begin.push_back(0);
    for (std::size_t t = 0; t < tcells.size(); ++t) {
      if (!tcells[t].is_leaf()) continue;
      g->target_leaves.push_back(t);
      g->p2p_sources.insert(g->p2p_sources.end(), by_leaf[t].begin(),
                            by_leaf[t].end());
      g->p2p_begin.push_back(g->p2p_sources.size());
      for (std::size_t s : by_leaf[t]) {
        g->p2p_point_atom_pairs +=
            static_cast<double>(tcells[t].n_bodies) *
            static_cast<double>(g->sources->cells()[s].n_bodies);
      }
    }
  }

  // Cost-model crossover estimate (flops; the Auto selector's currency).
  const std::size_t n_lm = grid::n_lm(solver_.lmax());
  const double c_pa = point_atom_flops(n_lm);
  const double n_points = static_cast<double>(grid_.points.size());
  const double n_atoms = static_cast<double>(grid_.atoms.size());
  g->direct_flops = n_points * n_atoms * c_pa;
  const double translate = g->kernel.m2l_flops();  // O(p^4), M2M/L2L alike
  g->fmm_flops =
      static_cast<double>(g->m2l_sources.size()) * translate +
      g->p2p_point_atom_pairs * c_pa +
      n_points * g->kernel.l2p_flops() +
      (n_atoms + static_cast<double>(g->sources->cells().size()) +
       static_cast<double>(g->targets->cells().size())) *
          0.5 * translate;

  if (span.active()) {
    span.attr("source_cells", static_cast<double>(g->sources->cells().size()));
    span.attr("target_cells", static_cast<double>(g->targets->cells().size()));
    span.attr("m2l_pairs", static_cast<double>(g->m2l_sources.size()));
    span.attr("p2p_pairs", static_cast<double>(g->p2p_sources.size()));
    span.attr("direct_flops", g->direct_flops);
    span.attr("fmm_flops", g->fmm_flops);
  }
  obs::count("hartree.fmm.m2l.pairs",
             static_cast<double>(g->m2l_sources.size()));
  obs::count("hartree.fmm.p2p.pairs",
             static_cast<double>(g->p2p_sources.size()));
  geo_ = std::move(g);
  return *geo_;
}

HartreeBackend HartreeContext::resolve_backend() const {
  if (backend_ != HartreeBackend::Auto) return backend_;
  const Geometry& g = geometry();
  return g.fmm_flops < g.direct_flops ? HartreeBackend::Fmm
                                      : HartreeBackend::Direct;
}

std::vector<double> HartreeContext::solve_on_grid(
    const std::vector<double>& density) const {
  const HartreeBackend resolved = resolve_backend();
  if (resolved == HartreeBackend::Direct) {
    stats_.resolved = HartreeBackend::Direct;
    if (backend_ == HartreeBackend::Auto) {
      const Geometry& g = geometry();
      stats_.direct_flops = g.direct_flops;
      stats_.fmm_flops = g.fmm_flops;
    }
    // Verbatim dense path: bitwise identical to the pre-FMM solver.
    return solver_.solve_on_grid(density);
  }
  SWRAMAN_TRACE_SCOPE("hartree.poisson");
  const hartree::MultipolePotential pot = solver_.solve(density);
  return fmm_on_grid(pot);
}

std::vector<double> HartreeContext::fmm_on_grid(
    const hartree::MultipolePotential& pot) const {
  const Geometry& g = geometry();
  const FmmKernel& K = g.kernel;
  const int p = options_.order;
  const int lmax = pot.lmax();
  const std::size_t nm = nm_count(p);
  const std::size_t n_lm = grid::n_lm(lmax);
  const auto& scells = g.sources->cells();
  const auto& tcells = g.targets->cells();
  const std::size_t n_atoms = pot.n_atoms();
  SWRAMAN_REQUIRE(n_atoms == grid_.atoms.size(),
                  "fmm_on_grid: potential/grid atom count mismatch");

  stats_ = FmmStats{};
  stats_.resolved = HartreeBackend::Fmm;
  stats_.n_source_cells = scells.size();
  stats_.n_target_cells = tcells.size();
  stats_.n_m2l_pairs = g.m2l_sources.size();
  stats_.n_p2p_pairs = g.p2p_sources.size();
  stats_.direct_flops = g.direct_flops;
  stats_.fmm_flops = g.fmm_flops;

  if (options_.use_cpe && !cluster_) {
    cluster_ = std::make_unique<sunway::CpeCluster>(sunway::sw26010pro());
  }

  // --- upward: atom moments -> leaf multipoles -> cell multipoles ---
  std::vector<Cplx> multipoles(scells.size() * nm, Cplx{});
  std::vector<Cplx> atom_m(n_atoms * nm, Cplx{});
  {
    SWRAMAN_TRACE_SPAN(span, "hartree.fmm.upward");
    FmmKernel::Workspace ws;
    std::vector<double> qlm(n_lm);
    for (std::size_t a = 0; a < n_atoms; ++a) {
      for (std::size_t lm = 0; lm < n_lm; ++lm) qlm[lm] = pot.moment(a, lm);
      K.atom_moments_to_multipole(qlm.data(), lmax, &atom_m[a * nm]);
    }
    const std::vector<std::size_t>& order = g.sources->body_order();
    for (std::size_t ci = scells.size(); ci-- > 0;) {
      const Cell& c = scells[ci];
      Cplx* M = &multipoles[ci * nm];
      if (c.is_leaf()) {
        for (std::size_t i = c.first_body; i < c.first_body + c.n_bodies;
             ++i) {
          const std::size_t a = order[i];
          K.m2m(&atom_m[a * nm], pot.centers()[a] - c.center, M, ws);
        }
      } else {
        for (int k = 0; k < c.n_children; ++k) {
          const std::size_t ch = c.first_child + static_cast<std::size_t>(k);
          K.m2m(&multipoles[ch * nm], scells[ch].center - c.center, M, ws);
        }
      }
    }
    if (span.active()) span.attr("atoms", static_cast<double>(n_atoms));
  }

  // --- traversal: M2L over the precomputed well-separated pair lists ---
  std::vector<Cplx> locals(tcells.size() * nm, Cplx{});
  {
    SWRAMAN_TRACE_SPAN(span, "hartree.fmm.traversal");
    const double pair_flops = K.m2l_flops();
    auto m2l_body = [&](sunway::CpeContext* ctx, std::size_t lo,
                        std::size_t hi) {
      FmmKernel::Workspace ws;
      for (std::size_t gi = lo; gi < hi; ++gi) {
        const std::size_t t = g.m2l_targets[gi];
        Cplx* acc = nullptr;
        Cplx* lbuf = nullptr;
        Cplx* sbuf = nullptr;
        if (ctx) {
          ctx->ldm().reset();
          lbuf = ctx->ldm().allocate<Cplx>(nm);
          sbuf = ctx->ldm().allocate<Cplx>(nm);
          std::fill(lbuf, lbuf + nm, Cplx{});
          acc = lbuf;
        } else {
          acc = &locals[t * nm];
        }
        for (std::size_t k = g.m2l_begin[gi]; k < g.m2l_begin[gi + 1]; ++k) {
          const std::size_t s = g.m2l_sources[k];
          const Cplx* M = &multipoles[s * nm];
          if (ctx) {
            ctx->dma_get(sbuf, M, nm);
            M = sbuf;
          }
          const Vec3 d = scells[s].center - tcells[t].center;
          K.m2l(M, d, acc, ws);
          if (ctx) ctx->charge_flops(pair_flops);
        }
        if (ctx) ctx->dma_put(lbuf, &locals[t * nm], nm);
      }
    };
    if (cluster_) {
      const sunway::CpeCounters before = cluster_->total();
      cluster_->run("fmmM2L", [&](sunway::CpeContext& ctx) {
        const auto [lo, hi] = ctx.my_slice(g.m2l_targets.size());
        m2l_body(&ctx, lo, hi);
      });
      sunway::attach_kernel_span_attrs(
          span, *cluster_, before,
          static_cast<double>(g.m2l_sources.size()), 0.85);
    } else {
      m2l_body(nullptr, 0, g.m2l_targets.size());
    }
  }

  // --- downward: locals to children (L2L), then L2P + exact near field ---
  const std::vector<std::size_t>& torder = g.targets->body_order();
  std::vector<double> v_sorted(grid_.points.size(), 0.0);
  {
    SWRAMAN_TRACE_SPAN(span, "hartree.fmm.downward");
    {
      FmmKernel::Workspace ws;
      for (std::size_t ci = 1; ci < tcells.size(); ++ci) {
        const Cell& c = tcells[ci];
        K.l2l(&locals[c.parent * nm], c.center - tcells[c.parent].center,
              &locals[ci * nm], ws);
      }
    }

    const double pa_flops = point_atom_flops(n_lm);
    const double lp_flops = K.l2p_flops();
    const std::vector<std::size_t>& sorder = g.sources->body_order();
    auto p2p_body = [&](sunway::CpeContext* ctx, std::size_t lo,
                        std::size_t hi) {
      FmmKernel::Workspace ws;
      hartree::MultipolePotential::Workspace mws;
      for (std::size_t li = lo; li < hi; ++li) {
        const std::size_t t = g.target_leaves[li];
        const Cell& tc = tcells[t];
        const Vec3* coords = &g.points_sorted[tc.first_body];
        double* vout = &v_sorted[tc.first_body];
        Cplx* lbuf = nullptr;
        if (ctx) {
          ctx->ldm().reset();
          Vec3* cb = ctx->ldm().allocate<Vec3>(tc.n_bodies);
          double* vb = ctx->ldm().allocate<double>(tc.n_bodies);
          lbuf = ctx->ldm().allocate<Cplx>(nm);
          ctx->dma_get(cb, coords, tc.n_bodies);
          ctx->dma_get(lbuf, &locals[t * nm], nm);
          coords = cb;
          vout = vb;
        }
        const Cplx* L = ctx ? lbuf : &locals[t * nm];
        for (std::size_t k = 0; k < tc.n_bodies; ++k) {
          double v = K.l2p(L, coords[k] - tc.center, ws);
          if (ctx) ctx->charge_flops(lp_flops);
          for (std::size_t si = g.p2p_begin[li]; si < g.p2p_begin[li + 1];
               ++si) {
            const Cell& sc = scells[g.p2p_sources[si]];
            for (std::size_t bi = sc.first_body;
                 bi < sc.first_body + sc.n_bodies; ++bi) {
              v += pot.value_atom(sorder[bi], coords[k], mws);
              if (ctx) {
                // Coefficient-block traffic + channel math per near atom,
                // modeled as in kernel1.
                ctx->counters().dma_bytes +=
                    static_cast<double>(4 * n_lm * sizeof(double));
                ctx->counters().dma_transfers += 1.0 / 16.0;
                ctx->charge_flops(pa_flops);
              }
            }
          }
          vout[k] = v;
        }
        if (ctx) ctx->dma_put(vout, &v_sorted[tc.first_body], tc.n_bodies);
      }
    };
    if (cluster_) {
      SWRAMAN_TRACE_SPAN(p2p_span, "hartree.fmm.p2p");
      const sunway::CpeCounters before = cluster_->total();
      cluster_->run("fmmP2P", [&](sunway::CpeContext& ctx) {
        const auto [lo, hi] = ctx.my_slice(g.target_leaves.size());
        p2p_body(&ctx, lo, hi);
      });
      sunway::attach_kernel_span_attrs(
          p2p_span, *cluster_, before,
          static_cast<double>(grid_.points.size()), 0.85);
    } else {
      p2p_body(nullptr, 0, g.target_leaves.size());
    }
  }

  // Analytic truncation bound, accumulated down the tree so every leaf sees
  // its own M2L pairs plus every ancestor's.
  if (options_.track_error_bound) {
    std::vector<std::vector<double>> absmom(
        scells.size(), std::vector<double>(static_cast<std::size_t>(lmax) + 1,
                                           0.0));
    const std::vector<std::size_t>& sorder = g.sources->body_order();
    for (std::size_t ci = 0; ci < scells.size(); ++ci) {
      const Cell& c = scells[ci];
      for (std::size_t i = c.first_body; i < c.first_body + c.n_bodies; ++i) {
        const Cplx* M = &atom_m[sorder[i] * nm];
        for (int l = 0; l <= lmax; ++l) {
          for (int m = -l; m <= l; ++m) {
            absmom[ci][static_cast<std::size_t>(l)] +=
                std::abs(M[nm_index(l, m)]);
          }
        }
      }
    }
    std::vector<double> cell_bound(tcells.size(), 0.0);
    for (std::size_t gi = 0; gi < g.m2l_targets.size(); ++gi) {
      const std::size_t t = g.m2l_targets[gi];
      for (std::size_t k = g.m2l_begin[gi]; k < g.m2l_begin[gi + 1]; ++k) {
        const std::size_t s = g.m2l_sources[k];
        cell_bound[t] += m2l_error_bound(
            absmom[s], scells[s].radius, tcells[t].radius,
            (scells[s].center - tcells[t].center).norm(), p);
      }
    }
    double worst = 0.0;
    for (std::size_t ci = 0; ci < tcells.size(); ++ci) {
      if (ci != 0) cell_bound[ci] += cell_bound[tcells[ci].parent];
      if (tcells[ci].is_leaf()) worst = std::max(worst, cell_bound[ci]);
    }
    stats_.max_error_bound = worst;
  }

  std::vector<double> v(grid_.points.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[torder[i]] = v_sorted[i];
  return v;
}

}  // namespace swraman::fmm
