#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/vec3.hpp"

// Morton-keyed octrees over point sets (paper hero-workload scaling work;
// exafmm-alpha idiom). Bodies — atom centers on the source side, grid
// points on the target side — are sorted by their 63-bit interleaved
// Morton key inside the bounding cube, and cells are built top-down by
// splitting key ranges on the 3-bit digit of each level. The cell array is
// laid out parent-before-children, so upward passes run the array in
// reverse and downward passes run it forward.

namespace swraman::fmm {

// Interleaves the low 21 bits of x, y, z into one 63-bit Morton key
// (x lowest). Exposed for the property-based tree tests.
[[nodiscard]] std::uint64_t morton_key(std::uint32_t x, std::uint32_t y,
                                       std::uint32_t z);

struct OctreeOptions {
  // Split a cell while it holds more than this many bodies (and the key
  // resolution is not exhausted).
  std::size_t leaf_size = 16;
  // Hard depth cap; 21 levels exhausts the Morton key resolution.
  int max_depth = 21;
};

constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

struct Cell {
  Vec3 center;            // cube center of this octant
  double half = 0.0;      // cube half-edge
  // Geometric bounding radius: the farthest body position from the cube
  // center. This is what governs multipole/local convergence (the
  // expansions see the bodies as point multipoles at their centers), so
  // the MAC's theta condition and the truncation bound use it.
  double radius = 0.0;
  // Validity reach: the farthest (body position + body extent) from the
  // cube center. Source bodies carry their spline outer radius as extent,
  // so a target farther than `reach` is outside every member atom's spline
  // sphere — exactly where the analytic far field (and hence the
  // expansion) represents the atom's potential. Equals `radius` when the
  // tree was built without extents.
  double reach = 0.0;
  std::size_t first_body = 0;  // range into body_order()
  std::size_t n_bodies = 0;
  std::size_t parent = kNoCell;
  std::size_t first_child = kNoCell;  // children are contiguous
  int n_children = 0;
  int level = 0;

  [[nodiscard]] bool is_leaf() const { return n_children == 0; }
};

class Octree {
 public:
  // Builds the tree over `positions`; `extent` (empty, or one radius per
  // body) inflates each body for the cell bounding radius.
  Octree(const std::vector<Vec3>& positions, const std::vector<double>& extent,
         const OctreeOptions& options);

  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  [[nodiscard]] std::size_t root() const { return 0; }

  // Morton-sorted permutation: body_order()[i] is the original index of the
  // i-th body in tree order. Cell body ranges index this array.
  [[nodiscard]] const std::vector<std::size_t>& body_order() const {
    return order_;
  }
  // Morton key of the i-th body in tree order (ascending).
  [[nodiscard]] const std::vector<std::uint64_t>& keys() const {
    return keys_;
  }

  [[nodiscard]] std::size_t n_bodies() const { return order_.size(); }
  [[nodiscard]] std::size_t n_leaves() const { return n_leaves_; }
  [[nodiscard]] int depth() const { return depth_; }

  // Cube enclosing all bodies (the root cell's geometry).
  [[nodiscard]] const Vec3& box_center() const { return box_center_; }
  [[nodiscard]] double box_half() const { return box_half_; }

 private:
  void build_cell(std::size_t cell, std::size_t lo, std::size_t hi,
                  const std::vector<Vec3>& positions,
                  const std::vector<double>& extent,
                  const OctreeOptions& options);

  std::vector<Cell> cells_;
  std::vector<std::size_t> order_;
  std::vector<std::uint64_t> keys_;
  Vec3 box_center_;
  double box_half_ = 0.0;
  std::size_t n_leaves_ = 0;
  int depth_ = 0;
};

}  // namespace swraman::fmm
