#include "fmm/traversal.hpp"

#include <utility>

#include "common/error.hpp"

namespace swraman::fmm {

namespace {

struct Traverser {
  const Octree& targets;
  const Octree& sources;
  double theta;
  InteractionLists out;

  void visit(std::size_t t, std::size_t s) {
    const Cell& tc = targets.cells()[t];
    const Cell& sc = sources.cells()[s];
    const double dist = (tc.center - sc.center).norm();
    // Two separate acceptance conditions (DESIGN.md S16): convergence —
    // the geometric radii satisfy the theta MAC, which controls the
    // truncation-error decay of the point-multipole expansions — and
    // validity — every target point lies beyond every source atom's
    // spline reach, where the atom's potential IS its analytic far field.
    if (tc.radius + sc.radius < theta * dist && tc.radius + sc.reach < dist) {
      out.m2l.push_back({t, s});
      return;
    }
    const bool t_leaf = tc.is_leaf();
    const bool s_leaf = sc.is_leaf();
    if (t_leaf && s_leaf) {
      out.p2p.push_back({t, s});
      return;
    }
    // Open the wider cell (both when one side is a leaf).
    const bool open_target =
        s_leaf || (!t_leaf && tc.radius >= sc.radius);
    if (open_target) {
      for (int k = 0; k < tc.n_children; ++k) {
        visit(tc.first_child + static_cast<std::size_t>(k), s);
      }
    } else {
      for (int k = 0; k < sc.n_children; ++k) {
        visit(t, sc.first_child + static_cast<std::size_t>(k));
      }
    }
  }
};

}  // namespace

InteractionLists traverse(const Octree& targets, const Octree& sources,
                          double theta) {
  SWRAMAN_REQUIRE(theta > 0.0 && theta < 1.0, "fmm: MAC theta in (0, 1)");
  Traverser tr{targets, sources, theta, {}};
  tr.visit(targets.root(), sources.root());
  return std::move(tr.out);
}

}  // namespace swraman::fmm
