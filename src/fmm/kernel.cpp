#include "fmm/kernel.hpp"

#include <cmath>
#include <limits>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman::fmm {

namespace {

// i^e as a complex unit (e may be negative; the Greengard–Rokhlin phase
// exponents are even, but the general form costs nothing).
Cplx ipow(int e) {
  switch (((e % 4) + 4) % 4) {
    case 0: return {1.0, 0.0};
    case 1: return {0.0, 1.0};
    case 2: return {-1.0, 0.0};
    default: return {0.0, -1.0};
  }
}

// Semi-normalized associated Legendre table t_n^m = sqrt((n-m)!/(n+m)!)
// P_n^m(c) for 0 <= m <= n <= deg (no Condon–Shortley phase, matching
// grid/ylm.cpp), packed triangularly: t[n(n+1)/2 + m].
void seminormal_legendre(double c, double s, int deg, std::vector<double>& t) {
  t.assign(static_cast<std::size_t>((deg + 1) * (deg + 2) / 2), 0.0);
  auto at = [&t](int n, int m) -> double& {
    return t[static_cast<std::size_t>(n * (n + 1) / 2 + m)];
  };
  at(0, 0) = 1.0;
  for (int m = 1; m <= deg; ++m) {
    at(m, m) = std::sqrt((2.0 * m - 1.0) / (2.0 * m)) * s * at(m - 1, m - 1);
  }
  for (int m = 0; m < deg; ++m) {
    at(m + 1, m) = std::sqrt(2.0 * m + 1.0) * c * at(m, m);
  }
  for (int m = 0; m <= deg; ++m) {
    for (int n = m + 2; n <= deg; ++n) {
      const double num = (2.0 * n - 1.0) * c * at(n - 1, m) -
                         std::sqrt((n - 1.0) * (n - 1.0) - m * m) * at(n - 2, m);
      at(n, m) = num / std::sqrt(static_cast<double>(n) * n - m * m);
    }
  }
}

// Shared core of regular()/irregular(): fills out[nm_index(n,m)] with
// radial_n * t_n^{|m|} * e^{i m phi}, where radial_n is rho^n (regular)
// or rho^{-(n+1)} (irregular).
void solid_harmonics(const Vec3& d, int deg, bool reg, std::vector<Cplx>& out,
                     std::vector<double>& leg) {
  out.assign(nm_count(deg), Cplx{0.0, 0.0});
  const double rho = d.norm();
  if (rho < 1e-300) {
    SWRAMAN_REQUIRE(reg, "fmm: irregular harmonics at zero distance");
    out[0] = 1.0;
    return;
  }
  const double c = d.z / rho;
  const double rho_xy = std::sqrt(d.x * d.x + d.y * d.y);
  const double s = rho_xy / rho;
  Cplx eiphi{1.0, 0.0};
  if (rho_xy > 1e-300) eiphi = {d.x / rho_xy, d.y / rho_xy};

  seminormal_legendre(c, s, deg, leg);
  auto t = [&leg](int n, int m) {
    return leg[static_cast<std::size_t>(n * (n + 1) / 2 + m)];
  };

  // e^{i m phi} built incrementally per m across all n.
  std::vector<Cplx>& y = out;
  double radial = reg ? 1.0 : 1.0 / rho;  // rho^n or rho^{-(n+1)}
  std::vector<double> rad(static_cast<std::size_t>(deg) + 1);
  for (int n = 0; n <= deg; ++n) {
    rad[static_cast<std::size_t>(n)] = radial;
    radial = reg ? radial * rho : radial / rho;
  }
  Cplx em{1.0, 0.0};
  for (int m = 0; m <= deg; ++m) {
    for (int n = m; n <= deg; ++n) {
      const Cplx v = rad[static_cast<std::size_t>(n)] * t(n, m) * em;
      y[nm_index(n, m)] = v;
      y[nm_index(n, -m)] = std::conj(v);
    }
    em *= eiphi;
  }
}

}  // namespace

FmmKernel::FmmKernel(int order) : order_(order) {
  SWRAMAN_REQUIRE(order >= 0 && order <= 20, "FmmKernel: order in [0, 20]");
  const int deg = 2 * order_;
  a_.assign(nm_count(deg), 0.0);
  // A_n^m = (-1)^n / sqrt((n-m)!(n+m)!), symmetric in the sign of m.
  std::vector<double> fact(static_cast<std::size_t>(2 * deg) + 1, 1.0);
  for (std::size_t i = 1; i < fact.size(); ++i) {
    fact[i] = fact[i - 1] * static_cast<double>(i);
  }
  for (int n = 0; n <= deg; ++n) {
    const double sgn = (n % 2 == 0) ? 1.0 : -1.0;
    for (int m = -n; m <= n; ++m) {
      const int am = std::abs(m);
      a_[nm_index(n, m)] = sgn / std::sqrt(fact[static_cast<std::size_t>(n - am)] *
                                           fact[static_cast<std::size_t>(n + am)]);
    }
  }
}

void FmmKernel::regular(const Vec3& d, int deg, std::vector<Cplx>& out,
                        std::vector<double>& leg) const {
  solid_harmonics(d, deg, true, out, leg);
}

void FmmKernel::irregular(const Vec3& d, int deg, std::vector<Cplx>& out,
                          std::vector<double>& leg) const {
  solid_harmonics(d, deg, false, out, leg);
}

void FmmKernel::p2m(double q, const Vec3& d, Cplx* M, Workspace& ws) const {
  regular(d, order_, ws.harm, ws.leg);
  for (std::size_t i = 0; i < nm_count(order_); ++i) {
    M[i] += q * std::conj(ws.harm[i]);
  }
}

void FmmKernel::atom_moments_to_multipole(const double* q_lm, int lmax,
                                          Cplx* M) const {
  SWRAMAN_REQUIRE(lmax <= order_, "fmm: atom lmax exceeds expansion order");
  for (int l = 0; l <= lmax; ++l) {
    const double pref = kFourPi / (2.0 * l + 1.0);
    M[nm_index(l, 0)] +=
        std::sqrt((2.0 * l + 1.0) / kFourPi) * pref * q_lm[nm_index(l, 0)];
    const double half_k = 0.5 * std::sqrt(2.0 * (2.0 * l + 1.0) / kFourPi);
    for (int m = 1; m <= l; ++m) {
      const double c_cos = pref * q_lm[nm_index(l, m)];
      const double c_sin = pref * q_lm[nm_index(l, -m)];
      M[nm_index(l, m)] += half_k * Cplx{c_cos, -c_sin};
      M[nm_index(l, -m)] += half_k * Cplx{c_cos, c_sin};
    }
  }
}

void FmmKernel::m2m(const Cplx* M_child, const Vec3& d, Cplx* M_parent,
                    Workspace& ws) const {
  regular(d, order_, ws.harm, ws.leg);
  const int p = order_;
  for (int j = 0; j <= p; ++j) {
    for (int k = -j; k <= j; ++k) {
      Cplx acc{0.0, 0.0};
      for (int n = 0; n <= j; ++n) {
        const int jn = j - n;
        for (int m = -n; m <= n; ++m) {
          const int km = k - m;
          if (std::abs(km) > jn) continue;
          acc += M_child[nm_index(jn, km)] *
                 ipow(std::abs(k) - std::abs(m) - std::abs(km)) * A(n, m) *
                 A(jn, km) * ws.harm[nm_index(n, -m)];
        }
      }
      M_parent[nm_index(j, k)] += acc / A(j, k);
    }
  }
}

void FmmKernel::m2l(const Cplx* M, const Vec3& d, Cplx* L,
                    Workspace& ws) const {
  irregular(d, 2 * order_, ws.harm, ws.leg);
  const int p = order_;
  for (int j = 0; j <= p; ++j) {
    for (int k = -j; k <= j; ++k) {
      Cplx acc{0.0, 0.0};
      for (int n = 0; n <= p; ++n) {
        const double nsgn = (n % 2 == 0) ? 1.0 : -1.0;
        for (int m = -n; m <= n; ++m) {
          const int mk = m - k;
          acc += M[nm_index(n, m)] *
                 ipow(std::abs(mk) - std::abs(k) - std::abs(m)) * A(n, m) *
                 nsgn * ws.harm[nm_index(j + n, mk)] / A(j + n, mk);
        }
      }
      L[nm_index(j, k)] += acc * A(j, k);
    }
  }
}

void FmmKernel::l2l(const Cplx* L_parent, const Vec3& d, Cplx* L_child,
                    Workspace& ws) const {
  // The Greengard local-shift lemma is phrased with the old center relative
  // to the new one; negate so the public convention matches m2m's.
  regular(Vec3{-d.x, -d.y, -d.z}, order_, ws.harm, ws.leg);
  const int p = order_;
  for (int j = 0; j <= p; ++j) {
    for (int k = -j; k <= j; ++k) {
      Cplx acc{0.0, 0.0};
      for (int n = j; n <= p; ++n) {
        const int nj = n - j;
        const double sgn = ((n + j) % 2 == 0) ? 1.0 : -1.0;
        for (int m = -n; m <= n; ++m) {
          const int mk = m - k;
          if (std::abs(mk) > nj) continue;
          acc += L_parent[nm_index(n, m)] *
                 ipow(std::abs(m) - std::abs(mk) - std::abs(k)) * A(nj, mk) *
                 sgn * ws.harm[nm_index(nj, mk)] / A(n, m);
        }
      }
      L_child[nm_index(j, k)] += acc * A(j, k);
    }
  }
}

double FmmKernel::l2p(const Cplx* L, const Vec3& d, Workspace& ws) const {
  regular(d, order_, ws.harm, ws.leg);
  Cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < nm_count(order_); ++i) {
    acc += L[i] * ws.harm[i];
  }
  return acc.real();
}

double FmmKernel::m2p(const Cplx* M, const Vec3& d, Workspace& ws) const {
  irregular(d, order_, ws.harm, ws.leg);
  Cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < nm_count(order_); ++i) {
    acc += M[i] * ws.harm[i];
  }
  return acc.real();
}

double FmmKernel::m2l_flops() const {
  const double nm = static_cast<double>(nm_count(order_));
  return 10.0 * nm * nm;  // complex mul-add per (jk, nm) pair
}

double FmmKernel::l2p_flops() const {
  return 10.0 * static_cast<double>(nm_count(order_));
}

double m2l_error_bound(const std::vector<double>& abs_moment, double ra,
                       double rb, double dist, int order) {
  const double gap = dist - ra - rb;
  if (gap <= 0.0) return std::numeric_limits<double>::infinity();
  const double gamma = (ra + rb) / dist;
  double bound = 0.0;
  double binom = 1.0;  // binom(order + 1, l), built iteratively
  for (std::size_t l = 0; l < abs_moment.size(); ++l) {
    if (l > 0) {
      binom *= static_cast<double>(order + 2 - static_cast<int>(l)) /
               static_cast<double>(l);
      if (binom < 0.0) binom = 0.0;  // l > order + 1: series exhausted
    }
    const int tail = std::max(order + 1 - static_cast<int>(l), 0);
    const double geo = std::pow(gamma, tail) /
                       (std::pow(gap, static_cast<double>(l) + 1.0) *
                        std::pow(1.0 - gamma, static_cast<double>(l) + 1.0));
    bound += (2.0 * static_cast<double>(l) + 1.0) * binom * abs_moment[l] * geo;
  }
  return bound;
}

}  // namespace swraman::fmm
