#pragma once

#include <cstddef>
#include <vector>

#include "fmm/tree.hpp"

// Dual-tree traversal (target tree x source tree) under the multipole
// acceptance criterion. A pair of cells is *well separated* when both
//
//   convergence:  r_target + r_source < theta * dist(centers),
//   validity:     r_target + reach_source < dist(centers),
//
// with theta in (0, 1), r the geometric bounding radii and reach the
// extent-inflated one (tree.hpp). The theta condition controls the
// truncation-error decay of the point-multipole expansions; the reach
// condition puts every target point outside every source atom's spline
// sphere, where the atom's potential is exactly its analytic far field.
// Accepted pairs get the source multipole translated into the target
// cell's local expansion (M2L), serving every target point below that
// cell via L2L. Otherwise the wider cell is opened; leaf-leaf pairs that
// still fail fall through to exact near-field evaluation (P2P).

namespace swraman::fmm {

struct CellPair {
  std::size_t target = 0;
  std::size_t source = 0;
};

struct InteractionLists {
  std::vector<CellPair> m2l;  // well-separated cell pairs
  std::vector<CellPair> p2p;  // leaf-leaf near-field pairs
};

[[nodiscard]] InteractionLists traverse(const Octree& targets,
                                        const Octree& sources, double theta);

}  // namespace swraman::fmm
