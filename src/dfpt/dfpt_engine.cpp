#include "dfpt/dfpt_engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <string>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"

namespace swraman::dfpt {

namespace {

// max_abs() cannot flag blow-ups: std::max drops NaN comparisons, so a
// poisoned matrix can masquerade as converged. Scan explicitly.
bool has_non_finite(const linalg::Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(m(i, j))) return true;
    }
  }
  return false;
}

}  // namespace

DfptEngine::DfptEngine(const scf::ScfEngine& scf,
                       const scf::GroundState& ground_state,
                       DfptOptions options)
    : scf_(scf), gs_(ground_state), options_(options) {
  SWRAMAN_REQUIRE(gs_.converged, "DfptEngine: ground state not converged");
  // Pipelined setup: axis k's cross-rank reduction runs while axis k+1's
  // local integration executes, and the ground-state density reduction
  // overlaps all three dipole waits.
  std::function<void()> wait_dipole[3];
  for (int axis = 0; axis < 3; ++axis) {
    wait_dipole[axis] = scf_.dipole_matrix_async(
        axis, &dipole_[static_cast<std::size_t>(axis)]);
  }
  std::vector<double> n;
  const std::function<void()> wait_n =
      scf_.density_on_grid_async(gs_.density, &n);
  for (auto& wait : wait_dipole) wait();
  wait_n();
  // XC response kernel at the ground-state density.
  fxc_.resize(n.size());
  for (std::size_t p = 0; p < n.size(); ++p) {
    fxc_[p] = xc::evaluate(scf_.options().functional, n[p]).f;
  }
}

ResponseResult DfptEngine::solve_response(int axis) {
  SWRAMAN_REQUIRE(axis >= 0 && axis < 3, "solve_response: axis in [0,3)");
  SWRAMAN_TRACE_SPAN(span, "dfpt.response");
  obs::count("dfpt.response.solves");
  if (span.active()) span.attr("axis", static_cast<double>(axis));
  const int attempts = std::max(1, options_.recovery_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    bool diverged = false;
    ResponseResult res = solve_response_attempt(axis, attempt, &diverged);
    if (!diverged) {
      if (span.active()) {
        span.attr("iterations", static_cast<double>(res.iterations));
        span.attr("converged", res.converged ? 1.0 : 0.0);
      }
      return res;
    }
    obs::count("dfpt.recoveries");
    if (attempt < attempts) {
      log::warn("dfpt.recovery: axis ", axis, " response diverged (attempt ",
                attempt, "/", attempts, ") — halving mixing to ",
                options_.mixing / static_cast<double>(1 << attempt),
                ", flushing DIIS history, restarting cycle");
    }
  }
  throw ConvergenceError("DfptEngine::solve_response: axis " +
                         std::to_string(axis) + " diverged in all " +
                         std::to_string(attempts) + " recovery attempts");
}

ResponseResult DfptEngine::solve_response_attempt(int axis, int attempt,
                                                  bool* diverged) {
  *diverged = false;
  const double mixing =
      options_.mixing / static_cast<double>(1 << (attempt - 1));
  const std::size_t nbf = scf_.basis().size();
  const linalg::Matrix& d = dipole_[static_cast<std::size_t>(axis)];
  const linalg::Matrix& c = gs_.coefficients;
  const std::size_t nmo = gs_.eigenvalues.size();

  // Occupied / virtual partition from the smeared occupations. States in
  // the smearing tail are treated as fully occupied or empty; the smearing
  // is small enough for gapped systems.
  std::vector<std::size_t> occ;
  std::vector<std::size_t> vir;
  for (std::size_t j = 0; j < nmo; ++j) {
    if (gs_.occupations[j] > 1.0) {
      occ.push_back(j);
    } else if (gs_.occupations[j] < 1e-6) {
      vir.push_back(j);
    }
  }
  SWRAMAN_REQUIRE(!occ.empty(), "solve_response: no occupied states");
  SWRAMAN_REQUIRE(!vir.empty(), "solve_response: no virtual states");

  ResponseResult res;
  res.p1 = linalg::Matrix(nbf, nbf);
  linalg::Matrix h1 = d;  // first cycle: bare perturbation

  // Occupied/virtual coefficient blocks are iteration-invariant.
  linalg::Matrix c_vir(nbf, vir.size());
  for (std::size_t a = 0; a < vir.size(); ++a) {
    for (std::size_t mu = 0; mu < nbf; ++mu) {
      c_vir(mu, a) = c(mu, vir[a]);
    }
  }
  linalg::Matrix c_occ(nbf, occ.size());
  for (std::size_t i = 0; i < occ.size(); ++i) {
    for (std::size_t mu = 0; mu < nbf; ++mu) {
      c_occ(mu, i) = c(mu, occ[i]);
    }
  }

  std::deque<linalg::Matrix> hist_p;
  std::deque<linalg::Matrix> hist_r;
  Timer timer;

  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    SWRAMAN_TRACE_SPAN(iter_span, "dfpt.iter");
    res.iterations = iter;
    ++times_.cycles;
    obs::count("dfpt.iterations");

    // --- Sternheimer / CPKS update in matrix form:
    //   U_ai = f_i G_ai / (eps_i - eps_a),  W = C_vir U,
    //   P1 = W C_occ^T + C_occ W^T.
    timer.reset();
    linalg::Matrix p1_new;
    {
      SWRAMAN_TRACE_SCOPE("dfpt.sternheimer");
      const linalg::Matrix g = linalg::at_b(c, h1 * c);
      const double omega = options_.frequency;
      linalg::Matrix u(vir.size(), occ.size());
      for (std::size_t a = 0; a < vir.size(); ++a) {
        for (std::size_t i = 0; i < occ.size(); ++i) {
          const double delta =
              gs_.eigenvalues[occ[i]] - gs_.eigenvalues[vir[a]];
          // Static: 1/delta. Dynamic: delta/(delta^2 - omega^2), the
          // symmetric (cos wt) response amplitude of real orbitals.
          const double denom2 = delta * delta - omega * omega;
          if (std::abs(delta) < 1e-8 || std::abs(denom2) < 1e-10) continue;
          u(a, i) =
              g(vir[a], occ[i]) * delta / denom2 * gs_.occupations[occ[i]];
        }
      }
      const linalg::Matrix w = c_vir * u;
      p1_new = linalg::a_bt(w, c_occ);
      p1_new += p1_new.transposed();
    }
    times_.sternheimer += timer.seconds();

    if (fault::should_fire(fault::kDfptDiverge)) {
      log::warn("fault ", fault::kDfptDiverge,
                ": poisoning response density at axis ", axis, " iter ",
                iter);
      p1_new(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }

    const double dp = (p1_new - res.p1).max_abs();
    if (iter_span.active()) {
      iter_span.attr("dp", dp);
      obs::observe("dfpt.sternheimer.residual", dp);
    }
    if (!std::isfinite(dp) || has_non_finite(p1_new)) {
      log::warn("dfpt: non-finite response step at axis ", axis, " iter ",
                iter, " — aborting cycle for recovery");
      *diverged = true;
      return res;
    }

    // DIIS on the response density matrix.
    hist_p.push_back(p1_new);
    {
      linalg::Matrix r = p1_new - res.p1;
      hist_r.push_back(std::move(r));
    }
    if (static_cast<int>(hist_p.size()) > options_.diis_depth) {
      hist_p.pop_front();
      hist_r.pop_front();
    }
    const std::size_t m = hist_p.size();
    bool extrapolated = false;
    if (m >= 2) {
      linalg::Matrix b(m + 1, m + 1);
      std::vector<double> rhs(m + 1, 0.0);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          b(i, j) = linalg::trace_product(hist_r[i], hist_r[j].transposed());
        }
        b(i, m) = -1.0;
        b(m, i) = -1.0;
      }
      rhs[m] = -1.0;
      const linalg::Lu lu(b);
      if (!lu.singular()) {
        linalg::Matrix mix(nbf, nbf);
        const std::vector<double> coef = lu.solve(rhs);
        for (std::size_t i = 0; i < m; ++i) {
          linalg::Matrix term = hist_p[i];
          term *= coef[i];
          mix += term;
        }
        res.p1 = std::move(mix);
        extrapolated = true;
      }
    }
    if (!extrapolated) {
      linalg::Matrix mix = res.p1;
      mix *= (1.0 - mixing);
      linalg::Matrix add = p1_new;
      add *= mixing;
      mix += add;
      res.p1 = std::move(mix);
    }

    if (dp < options_.tol) {
      res.converged = true;
      break;
    }

    // --- Kernel n1: response density on the grid.
    timer.reset();
    std::vector<double> n1;
    {
      SWRAMAN_TRACE_SCOPE("dfpt.n1");
      n1 = scf_.density_on_grid(res.p1);
    }
    times_.n1 += timer.seconds();

    // --- Kernel V1: response potential (multipole Poisson + fxc n1).
    timer.reset();
    std::vector<double> v1;
    {
      SWRAMAN_TRACE_SCOPE("dfpt.v1");
      v1 = scf_.hartree().solve_on_grid(n1);
      for (std::size_t p = 0; p < v1.size(); ++p) {
        v1[p] += fxc_[p] * n1[p];
      }
    }
    times_.v1 += timer.seconds();

    // --- Kernel H1: response Hamiltonian. The matrix-element reduction is
    // started first; rebuilding h1 from the bare perturbation overlaps it.
    timer.reset();
    {
      SWRAMAN_TRACE_SCOPE("dfpt.h1");
      linalg::Matrix m1;
      const std::function<void()> wait_m1 =
          scf_.integrate_matrix_async(v1, &m1);
      h1 = d;
      wait_m1();
      h1 += m1;
    }
    times_.h1 += timer.seconds();

    log::debug("DFPT axis ", axis, " iter ", iter, ": dP1 = ", dp);
  }
  return res;
}

linalg::Matrix DfptEngine::polarizability() {
  SWRAMAN_TRACE_SCOPE("dfpt.polarizability");
  linalg::Matrix alpha(3, 3);
  for (int j = 0; j < 3; ++j) {
    const ResponseResult res = solve_response(j);
    if (!res.converged) {
      throw ConvergenceError(
          "polarizability: DFPT did not converge for axis " +
          std::to_string(j));
    }
    for (int i = 0; i < 3; ++i) {
      alpha(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          -linalg::trace_product(res.p1,
                                 dipole_[static_cast<std::size_t>(i)]);
    }
  }
  alpha.symmetrize();
  return alpha;
}

linalg::Matrix DfptEngine::polarizability_at_frequency(double omega) {
  SWRAMAN_REQUIRE(omega >= 0.0, "polarizability_at_frequency: omega >= 0");
  const double saved = options_.frequency;
  options_.frequency = omega;
  linalg::Matrix alpha = polarizability();
  options_.frequency = saved;
  return alpha;
}

double DfptEngine::isotropic(const linalg::Matrix& alpha) {
  return alpha.trace() / 3.0;
}

linalg::Matrix DfptEngine::dielectric_tensor(const linalg::Matrix& alpha,
                                             double volume) {
  SWRAMAN_REQUIRE(volume > 0.0, "dielectric_tensor: volume > 0");
  linalg::Matrix eps = linalg::Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      eps(i, j) += kFourPi / volume * alpha(i, j);
  return eps;
}

}  // namespace swraman::dfpt
