#pragma once

#include <array>

#include "linalg/matrix.hpp"
#include "scf/scf_engine.hpp"

// Density-functional perturbation theory for homogeneous electric fields
// (paper Sec. 2.3, Fig. 2): the self-consistent Sternheimer / coupled-
// perturbed Kohn-Sham cycle
//
//   P(1) -> n(1)(r) -> v(1) = v_H[n(1)] + f_xc n(1) -> H(1) -> P(1)
//
// iterated to self-consistency with DIIS acceleration, yielding the
// polarizability tensor alpha_ij = -Tr(P(1)_j D_i) (Eq. 4) and the
// dielectric constant (Eq. 11). The three grid kernels — response density
// (n1), response potential (V1), response Hamiltonian (H1) — are exactly
// the hotspots the paper ports to the Sunway CPEs; their per-cycle times
// are tracked for the Fig. 13/14 benchmarks.

namespace swraman::dfpt {

struct DfptOptions {
  double tol = 1e-7;        // max |P1_out - P1_in|
  int max_iterations = 50;
  int diis_depth = 8;
  double mixing = 0.6;      // linear mixing before DIIS history builds
  // Perturbation frequency (Hartree). 0 = static response; omega > 0 gives
  // the dynamic polarizability alpha(omega) of adiabatic-LDA linear
  // response (denominators (eps_i - eps_a) / ((eps_i - eps_a)^2 - omega^2)).
  double frequency = 0.0;
  // Automatic divergence recovery, mirroring ScfOptions: a non-finite
  // response-density step aborts the cycle, the mixing is halved, the DIIS
  // history flushed, and the cycle restarted — up to this many attempts
  // before ConvergenceError is thrown.
  int recovery_attempts = 3;
};

struct KernelTimes {
  double n1 = 0.0;           // response density, seconds
  double v1 = 0.0;           // response potential (multipole Poisson + fxc)
  double h1 = 0.0;           // response Hamiltonian integration
  double sternheimer = 0.0;  // MO-space update (U matrix, P1 assembly)
  int cycles = 0;            // accumulated DFPT iterations

  [[nodiscard]] double total() const { return n1 + v1 + h1 + sternheimer; }
};

struct ResponseResult {
  linalg::Matrix p1;    // first-order density matrix
  bool converged = false;
  int iterations = 0;
};

class DfptEngine {
 public:
  DfptEngine(const scf::ScfEngine& scf, const scf::GroundState& ground_state,
             DfptOptions options = {});

  // Self-consistent first-order response to a unit field along `axis`
  // (perturbation v_ext(1) = +r_axis, matching ScfOptions::electric_field).
  // Divergence (non-finite response step) triggers automatic recovery per
  // DfptOptions::recovery_attempts; throws ConvergenceError when every
  // attempt diverged. Plain non-convergence still returns converged=false.
  ResponseResult solve_response(int axis);

  // Full polarizability tensor (3 response calculations, symmetrized).
  [[nodiscard]] linalg::Matrix polarizability();

  // Dynamic polarizability at the given frequency (Hartree); must stay
  // below the first KS excitation gap for the response to converge.
  [[nodiscard]] linalg::Matrix polarizability_at_frequency(double omega);

  // Isotropic polarizability 1/3 tr(alpha).
  static double isotropic(const linalg::Matrix& alpha);

  // Dielectric constant from Eq. 11 for a (cluster-equivalent) volume.
  static linalg::Matrix dielectric_tensor(const linalg::Matrix& alpha,
                                          double volume);

  [[nodiscard]] const KernelTimes& kernel_times() const { return times_; }

 private:
  // One full response cycle. `attempt` (1-based) halves the linear mixing
  // per retry; the DIIS history is local to the attempt, so a restart
  // flushes it. Sets *diverged when non-finite numbers aborted the cycle.
  ResponseResult solve_response_attempt(int axis, int attempt,
                                        bool* diverged);

  const scf::ScfEngine& scf_;
  const scf::GroundState& gs_;
  DfptOptions options_;
  std::array<linalg::Matrix, 3> dipole_;  // dipole integrals per axis
  std::vector<double> fxc_;               // XC kernel at the GS density
  KernelTimes times_;
};

}  // namespace swraman::dfpt
