#include "parallel/allreduce_select.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.hpp"
#include "sunway/cost_model.hpp"

namespace swraman::parallel {

double modeled_allreduce_seconds(AllreduceAlgorithm algorithm, double bytes,
                                 std::size_t n_ranks, std::size_t node_size,
                                 const sunway::ArchParams& arch) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "modeled_allreduce_seconds: invalid arguments");
  if (n_ranks == 1 || bytes == 0.0) return 0.0;
  // Flat algorithms put every rank on the wire at once, so the node_size
  // ranks sharing each node's injection port split its bandwidth between
  // them. The hierarchical algorithm funnels inter-node traffic through
  // one leader per node, which therefore sees the full port (its model
  // uses the uncontended arch).
  sunway::ArchParams contended = arch;
  contended.net_bw_gbs /=
      static_cast<double>(std::clamp<std::size_t>(node_size, 1, n_ranks));
  switch (algorithm) {
    case AllreduceAlgorithm::Linear:
      return sunway::modeled_linear_allreduce_time(bytes, n_ranks,
                                                   contended);
    case AllreduceAlgorithm::Ring:
      return sunway::modeled_ring_allreduce_time(bytes, n_ranks, contended);
    case AllreduceAlgorithm::RecursiveDoubling:
      return sunway::modeled_recursive_doubling_allreduce_time(
          bytes, n_ranks, contended);
    case AllreduceAlgorithm::ReduceScatterAllgather:
      return sunway::modeled_allreduce_time(
          bytes, n_ranks, contended, sunway::AllreduceModel{false, true});
    case AllreduceAlgorithm::CpePipelined:
      return sunway::modeled_allreduce_time(
          bytes, n_ranks, contended, sunway::AllreduceModel{true, true});
    case AllreduceAlgorithm::Hierarchical:
      return sunway::modeled_hierarchical_allreduce_time(
          bytes, n_ranks, arch,
          sunway::HierarchicalAllreduceModel{node_size});
    case AllreduceAlgorithm::Auto:
      return select_allreduce(bytes, n_ranks, node_size, arch)
          .modeled_seconds;
  }
  return 0.0;
}

double modeled_allreduce_cycles(AllreduceAlgorithm algorithm, double bytes,
                                std::size_t n_ranks, std::size_t node_size,
                                const sunway::ArchParams& arch) {
  return std::floor(modeled_allreduce_seconds(algorithm, bytes, n_ranks,
                                              node_size, arch) *
                        arch.mpe_freq_ghz * 1e9 +
                    0.5);
}

AllreduceChoice select_allreduce(double bytes, std::size_t n_ranks,
                                 std::size_t node_size,
                                 const sunway::ArchParams& arch) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "select_allreduce: invalid arguments");
  if (n_ranks == 1 || bytes == 0.0) {
    return AllreduceChoice{AllreduceAlgorithm::Linear, 0.0};
  }
  // Fixed evaluation order; strict < keeps the earlier entry on ties, so
  // identical inputs always produce the identical choice.
  constexpr std::array<AllreduceAlgorithm, 6> kCandidates = {
      AllreduceAlgorithm::Linear,
      AllreduceAlgorithm::Ring,
      AllreduceAlgorithm::RecursiveDoubling,
      AllreduceAlgorithm::ReduceScatterAllgather,
      AllreduceAlgorithm::CpePipelined,
      AllreduceAlgorithm::Hierarchical,
  };
  AllreduceChoice best;
  bool have = false;
  for (const AllreduceAlgorithm a : kCandidates) {
    const double t =
        modeled_allreduce_seconds(a, bytes, n_ranks, node_size, arch);
    if (!have || t < best.modeled_seconds) {
      best = AllreduceChoice{a, t};
      have = true;
    }
  }
  return best;
}

}  // namespace swraman::parallel
