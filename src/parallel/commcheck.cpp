#include "parallel/commcheck.hpp"

#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

namespace swraman::parallel::commcheck {

namespace {

std::string trim_path(const std::string& file) {
  for (const char* anchor : {"/src/", "/tests/", "/bench/", "/examples/"}) {
    const std::size_t pos = file.rfind(anchor);
    if (pos != std::string::npos) return file.substr(pos + 1);
  }
  return file;
}

std::string loc_str(const std::source_location& loc) {
  return trim_path(loc.file_name()) + ":" + std::to_string(loc.line());
}

struct Binding {
  std::size_t expect_len = 0;
  std::string name;
};

struct WaitEdge {
  std::size_t src = 0;
  int tag = 0;
  std::string site;  // waiter's recv call site
};

struct Context {
  std::size_t n_ranks = 0;
  std::map<int, Binding> bindings;
  Binding default_binding;
  bool has_default = false;
  // (src, dst, tag) -> tolerated leftover count at destruction.
  std::map<std::tuple<std::size_t, std::size_t, int>, std::size_t> abandoned;
  // waiter rank -> what it is blocked on (present only while blocked).
  std::map<std::size_t, WaitEdge> waits;
  // Cycles already noted, keyed by their rank chain — a retrying recv
  // re-registers its edge every slice and must not flood the tally.
  std::set<std::string> noted_cycles;
};

// Checker-internal state behind a plain std::mutex (the sanctioned
// exception of lint rule 6 — instrumenting the checker would recurse).
// Leaked for the same atexit reasons as the lockcheck tally.
struct State {
  std::mutex mutex;
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, Context> contexts;
};

State& state() {
  static State* s = new State;
  return *s;
}

const Binding* find_binding(const Context& c, int tag) {
  const auto it = c.bindings.find(tag);
  if (it != c.bindings.end()) return &it->second;
  if (c.has_default && tag >= 0) return &c.default_binding;
  return nullptr;
}

std::string edge_str(std::uint64_t ctx, std::size_t src, std::size_t dst,
                     int tag) {
  std::ostringstream os;
  os << "ctx#" << ctx << " rank " << src << " -> rank " << dst << " tag "
     << tag;
  return os.str();
}

}  // namespace

std::uint64_t register_context(std::size_t n_ranks) {
  if (!lockcheck::enabled()) return 0;
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  const std::uint64_t id = s.next_id++;
  s.contexts[id].n_ranks = n_ranks;
  return id;
}

void bind_tag(std::uint64_t ctx, int tag, std::size_t expect_len,
              const char* name) {
  if (ctx == 0 || !lockcheck::enabled()) return;
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  const auto it = s.contexts.find(ctx);
  if (it == s.contexts.end()) return;
  it->second.bindings[tag] = {expect_len, name};
}

void bind_default(std::uint64_t ctx, std::size_t expect_len,
                  const char* name) {
  if (ctx == 0 || !lockcheck::enabled()) return;
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  const auto it = s.contexts.find(ctx);
  if (it == s.contexts.end()) return;
  it->second.default_binding = {expect_len, name};
  it->second.has_default = true;
}

void abandon(std::uint64_t ctx, std::size_t src, std::size_t dst, int tag) {
  if (ctx == 0 || !lockcheck::enabled()) return;
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  const auto it = s.contexts.find(ctx);
  if (it == s.contexts.end()) return;
  ++it->second.abandoned[{src, dst, tag}];
}

void on_send(std::uint64_t ctx, std::size_t src, std::size_t dst, int tag,
             std::size_t len, std::source_location loc) {
  if (ctx == 0 || !lockcheck::enabled()) return;
  std::string violation;
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    const auto it = s.contexts.find(ctx);
    if (it == s.contexts.end()) return;
    const Binding* b = find_binding(it->second, tag);
    if (b == nullptr || b->expect_len == len) return;
    std::ostringstream os;
    os << "send of " << len << " doubles on " << edge_str(ctx, src, dst, tag)
       << " at " << loc_str(loc) << " but tag is bound to wire type \""
       << b->name << "\" (" << b->expect_len << " doubles)";
    violation = os.str();
  }
  lockcheck::report(lockcheck::kRuleP2pTagMismatch, violation);
}

void on_recv(std::uint64_t ctx, std::size_t src, std::size_t dst, int tag,
             std::size_t len) {
  if (ctx == 0 || !lockcheck::enabled()) return;
  std::string violation;
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    const auto it = s.contexts.find(ctx);
    if (it == s.contexts.end()) return;
    const Binding* b = find_binding(it->second, tag);
    if (b == nullptr || b->expect_len == len) return;
    std::ostringstream os;
    os << "received " << len << " doubles on "
       << edge_str(ctx, src, dst, tag) << " but tag is bound to wire type \""
       << b->name << "\" (" << b->expect_len << " doubles)";
    violation = os.str();
  }
  lockcheck::note(lockcheck::kRuleP2pTagMismatch, violation);
}

void recv_wait_begin(std::uint64_t ctx, std::size_t waiter, std::size_t src,
                     int tag, const MailProbe& probe,
                     std::source_location loc) {
  if (ctx == 0 || !lockcheck::enabled()) return;
  // Only user tags (>= 0) join the wait graph. Internal collective tags
  // (< 0) ride extra communication threads — one rank may hold several
  // concurrent waits while another of its threads makes progress for
  // the peer, so the rank-keyed graph would see cycles that are not
  // stalls. Collectives are deadlock-free by the program-order rule;
  // this rule targets the user-level p2p protocols.
  if (tag < 0) return;
  std::string violation;
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    const auto it = s.contexts.find(ctx);
    if (it == s.contexts.end()) return;
    Context& c = it->second;
    c.waits[waiter] = {src, tag, loc_str(loc)};
    // Follow the wait chain from this rank; a return to it is a cycle.
    std::vector<std::size_t> chain{waiter};
    std::size_t cur = src;
    while (true) {
      const auto w = c.waits.find(cur);
      if (w == c.waits.end()) return;  // chain ends at a running rank
      bool closes = cur == waiter;
      for (const std::size_t r : chain) closes = closes || r == cur;
      if (closes && cur != waiter) return;  // cycle not through us
      if (cur == waiter) break;
      chain.push_back(cur);
      cur = w->second.src;
    }
    // Confirm the deadlock shape: every edge of the cycle must be
    // waiting on an *empty* mailbox — a posted-but-not-yet-consumed
    // message means the apparent cycle is just scheduling lag.
    for (const std::size_t r : chain) {
      const WaitEdge& e = c.waits.at(r);
      if (probe.empty == nullptr ||
          !probe.empty(probe.self, e.src, r, e.tag)) {
        return;
      }
    }
    std::ostringstream key;
    for (const std::size_t r : chain) key << r << ",";
    if (!c.noted_cycles.insert(key.str()).second) return;
    std::ostringstream os;
    os << "ranks of ctx#" << ctx
       << " are blocked in recv() on each other with every awaited "
          "mailbox empty:";
    for (const std::size_t r : chain) {
      const WaitEdge& e = c.waits.at(r);
      os << " [rank " << r << " waits on rank " << e.src << " tag " << e.tag
         << " at " << e.site << "]";
    }
    os << "; progress only resumes via recv timeout";
    violation = os.str();
  }
  lockcheck::note(lockcheck::kRuleP2pRecvCycle, violation);
}

void recv_wait_end(std::uint64_t ctx, std::size_t waiter) {
  if (ctx == 0) return;
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  const auto it = s.contexts.find(ctx);
  if (it == s.contexts.end()) return;
  it->second.waits.erase(waiter);
}

void on_context_destroyed(std::uint64_t ctx,
                          const std::vector<Leftover>& leftovers) {
  if (ctx == 0) return;
  std::vector<std::string> violations;
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    const auto it = s.contexts.find(ctx);
    if (it == s.contexts.end()) return;
    Context& c = it->second;
    for (const Leftover& l : leftovers) {
      std::size_t tolerated = 0;
      const auto a = c.abandoned.find({l.src, l.dst, l.tag});
      if (a != c.abandoned.end()) tolerated = a->second;
      if (l.count <= tolerated) continue;
      std::ostringstream os;
      os << (l.count - tolerated) << " unconsumed message(s) on "
         << edge_str(ctx, l.src, l.dst, l.tag)
         << " at context destruction (sent, never received, never "
            "declared abandoned)";
      violations.push_back(os.str());
    }
    s.contexts.erase(it);
  }
  // note() after releasing the registry lock: it takes obs locks.
  for (const std::string& v : violations) {
    lockcheck::note(lockcheck::kRuleP2pOrphan, v);
  }
}

void reset_for_testing() {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  s.contexts.clear();
}

}  // namespace swraman::parallel::commcheck
