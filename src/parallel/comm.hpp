#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

// SPMD message-passing runtime over std::thread — the stand-in for MPI
// (DESIGN.md S4). Ranks are threads sharing a CommContext of mailboxes;
// the API mirrors the MPI subset the paper's code needs: point-to-point,
// barrier, broadcast, communicator split (the geometry-level sub-groups of
// Fig. 4), and Allreduce in five algorithm variants including the paper's
// "Reduce-Scatter followed by Allgather" (Sec. 3.4).
//
// Fault tolerance: the transport models acknowledged delivery, so a send
// whose message the injector drops (fault site comm.send.drop) is detected
// by the sender and retransmitted with exponential backoff; recv waits with
// a bounded timeout instead of blocking forever on a lost peer and throws
// TimeoutError once its retry budget is spent. All collectives are built on
// send/recv and inherit both behaviours.

namespace swraman::parallel {

// Retry/backoff policy shared by every rank of a communicator (split
// children inherit the parent's config).
struct CommConfig {
  double recv_timeout_s = 60.0;   // first recv wait; doubles per retry
  int recv_retries = 3;           // additional timed waits after the first
  int send_retries = 8;           // retransmissions after a dropped send
  double backoff_base_s = 1e-4;   // first retransmit backoff; doubles
  double backoff_max_s = 0.05;    // backoff ceiling
  double stall_s = 1e-3;          // injected delay for comm.stall / delay
};

enum class AllreduceAlgorithm {
  Linear,                  // gather to root, reduce, broadcast
  Ring,                    // ring reduce-scatter + ring allgather
  RecursiveDoubling,       // log2(P) pairwise exchanges
  ReduceScatterAllgather,  // Rabenseifner (the paper's baseline optimized)
  CpePipelined,            // same pattern, local reduce via chunked pipeline
};

class CommContext;

class Communicator {
 public:
  Communicator(std::shared_ptr<CommContext> ctx, std::size_t rank);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  void barrier();

  // Reliable send: retransmits (with exponential backoff) when the
  // transport drops the message; throws TimeoutError once the retry budget
  // of the communicator's CommConfig is exhausted.
  void send(std::size_t dest, const std::vector<double>& data, int tag = 0);

  // Timed receive: waits in bounded, doubling slices and throws
  // TimeoutError after CommConfig::recv_retries extra waits go unanswered.
  [[nodiscard]] std::vector<double> recv(std::size_t src, int tag = 0);

  [[nodiscard]] const CommConfig& config() const;

  // Root's data is copied to everyone.
  void broadcast(std::vector<double>& data, std::size_t root = 0);

  // Element-wise sum across ranks; result available on every rank.
  void allreduce(std::vector<double>& data,
                 AllreduceAlgorithm algorithm = AllreduceAlgorithm::Ring);

  // Collective: every rank calls with its color; returns a communicator
  // over the ranks sharing the color (ranks ordered by parent rank).
  [[nodiscard]] Communicator split(int color);

 private:
  std::shared_ptr<CommContext> ctx_;
  std::size_t rank_;

  void allreduce_linear(std::vector<double>& data);
  void allreduce_ring(std::vector<double>& data);
  void allreduce_recursive_doubling(std::vector<double>& data);
  void allreduce_rsag(std::vector<double>& data, bool pipelined_local);
};

// Launches fn on n_ranks threads, each receiving its Communicator. Any
// exception on a rank is rethrown on the caller after all threads join.
// The config sets the communicator's timeout/retry policy.
void run_spmd(std::size_t n_ranks,
              const std::function<void(Communicator&)>& fn,
              const CommConfig& config = {});

}  // namespace swraman::parallel
