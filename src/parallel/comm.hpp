#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

// SPMD message-passing runtime over std::thread — the stand-in for MPI
// (DESIGN.md S4). Ranks are threads sharing a CommContext of mailboxes;
// the API mirrors the MPI subset the paper's code needs: point-to-point,
// barrier, broadcast, communicator split (the geometry-level sub-groups of
// Fig. 4), and Allreduce in five algorithm variants including the paper's
// "Reduce-Scatter followed by Allgather" (Sec. 3.4).

namespace swraman::parallel {

enum class AllreduceAlgorithm {
  Linear,                  // gather to root, reduce, broadcast
  Ring,                    // ring reduce-scatter + ring allgather
  RecursiveDoubling,       // log2(P) pairwise exchanges
  ReduceScatterAllgather,  // Rabenseifner (the paper's baseline optimized)
  CpePipelined,            // same pattern, local reduce via chunked pipeline
};

class CommContext;

class Communicator {
 public:
  Communicator(std::shared_ptr<CommContext> ctx, std::size_t rank);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  void barrier();

  void send(std::size_t dest, const std::vector<double>& data, int tag = 0);
  [[nodiscard]] std::vector<double> recv(std::size_t src, int tag = 0);

  // Root's data is copied to everyone.
  void broadcast(std::vector<double>& data, std::size_t root = 0);

  // Element-wise sum across ranks; result available on every rank.
  void allreduce(std::vector<double>& data,
                 AllreduceAlgorithm algorithm = AllreduceAlgorithm::Ring);

  // Collective: every rank calls with its color; returns a communicator
  // over the ranks sharing the color (ranks ordered by parent rank).
  [[nodiscard]] Communicator split(int color);

 private:
  std::shared_ptr<CommContext> ctx_;
  std::size_t rank_;

  void allreduce_linear(std::vector<double>& data);
  void allreduce_ring(std::vector<double>& data);
  void allreduce_recursive_doubling(std::vector<double>& data);
  void allreduce_rsag(std::vector<double>& data, bool pipelined_local);
};

// Launches fn on n_ranks threads, each receiving its Communicator. Any
// exception on a rank is rethrown on the caller after all threads join.
void run_spmd(std::size_t n_ranks,
              const std::function<void(Communicator&)>& fn);

}  // namespace swraman::parallel
