#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <source_location>
#include <vector>

// SPMD message-passing runtime over std::thread — the stand-in for MPI
// (DESIGN.md S4). Ranks are threads sharing a CommContext of mailboxes;
// the API mirrors the MPI subset the paper's code needs: point-to-point,
// barrier, broadcast, communicator split (the geometry-level sub-groups of
// Fig. 4), and Allreduce in several algorithm variants including the
// paper's "Reduce-Scatter followed by Allgather" (Sec. 3.4) and the
// two-level topology-aware Hierarchical scheme (DESIGN.md S10).
//
// Fault tolerance: the transport models acknowledged delivery, so a send
// whose message the injector drops (fault site comm.send.drop) is detected
// by the sender and retransmitted with exponential backoff; recv waits with
// a bounded timeout instead of blocking forever on a lost peer and throws
// TimeoutError once its retry budget is spent. All collectives are built on
// send/recv and inherit both behaviours.
//
// Concurrency: collectives may overlap. Every collective call draws a
// per-rank operation sequence number on the calling thread and derives all
// of its internal message tags from it, so a blocking allreduce can run
// while non-blocking iallreduce operations are still in flight without tag
// collisions — as long as every rank issues its collective calls in the
// same program order (the usual MPI requirement).

namespace swraman::parallel {

// Retry/backoff policy shared by every rank of a communicator (split
// children inherit the parent's config).
struct CommConfig {
  double recv_timeout_s = 60.0;   // first recv wait; doubles per retry
  int recv_retries = 3;           // additional timed waits after the first
  int send_retries = 8;           // retransmissions after a dropped send
  double backoff_base_s = 1e-4;   // first retransmit backoff; doubles
  double backoff_max_s = 0.05;    // backoff ceiling
  // Decorrelated-jitter retransmit backoff (common/backoff.hpp) instead
  // of the plain doubling schedule: concurrent senders whose drops
  // coincide stop retrying in lockstep. Deterministic — each (rank, dest,
  // tag) derives its jitter stream from backoff_seed.
  bool backoff_jitter = false;
  std::uint64_t backoff_seed = 2026;
  double stall_s = 1e-3;          // injected delay for comm.stall / delay
  // Ranks per node group for AllreduceAlgorithm::Hierarchical: consecutive
  // ranks [k*node_size, (k+1)*node_size) share one "node" whose intra
  // reduction runs over the CPE RMA mesh (clamped to [1, size()]).
  std::size_t node_size = 4;
};

enum class AllreduceAlgorithm {
  Linear,                  // gather to root, reduce, broadcast
  Ring,                    // ring reduce-scatter + ring allgather
  RecursiveDoubling,       // log2(P) pairwise exchanges
  ReduceScatterAllgather,  // Rabenseifner (the paper's baseline optimized)
  CpePipelined,            // same pattern, local reduce via chunked pipeline
  Hierarchical,            // two-level: intra-node RMA mesh, leaders RSAG
  Auto,                    // cost-model-driven pick among the concrete ones
};

const char* allreduce_algorithm_name(AllreduceAlgorithm a);

class CommContext;
struct Hierarchy;

// Handle of a non-blocking allreduce started with Communicator::iallreduce.
// Exactly one of wait() must consume the handle; destroying a live request
// without wait() still completes the collective (so peers cannot deadlock)
// but is reported as the swcheck violation "coll.abandoned_request" and
// counted under comm.iallreduce.abandoned — the reduced data is lost.
class AllreduceRequest {
 public:
  AllreduceRequest() = default;
  AllreduceRequest(AllreduceRequest&&) noexcept = default;
  AllreduceRequest& operator=(AllreduceRequest&& other) noexcept;
  AllreduceRequest(const AllreduceRequest&) = delete;
  AllreduceRequest& operator=(const AllreduceRequest&) = delete;
  // Destroying a live handle still completes the exchange (peers block on
  // our messages) but reports check::kRuleCollAbandoned — the reduced data
  // was thrown away.
  ~AllreduceRequest();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  // Non-blocking completion probe.
  [[nodiscard]] bool test() const;

  // Blocks until the collective finished, rethrows any error raised on the
  // communication thread, and returns the reduced data. Consumes the
  // handle. Records comm.allreduce.overlap_ns (communication time that ran
  // concurrently with the caller) and comm.allreduce.wait_ns (time the
  // caller stalled here).
  std::vector<double> wait();

 private:
  friend class Communicator;
  struct State;
  explicit AllreduceRequest(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  // Joins the worker and files the abandonment violation if the handle is
  // live and un-waited. Runs on the owner thread, never the worker.
  void abandon() noexcept;
  std::shared_ptr<State> state_;
};

class Communicator {
 public:
  Communicator(std::shared_ptr<CommContext> ctx, std::size_t rank);

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  void barrier();

  // Reliable send: retransmits (with exponential backoff) when the
  // transport drops the message; throws TimeoutError once the retry budget
  // of the communicator's CommConfig is exhausted. The source_location
  // defaults carry the caller's site into the commcheck p2p verifier's
  // reports; never pass them explicitly.
  void send(std::size_t dest, const std::vector<double>& data, int tag = 0,
            std::source_location loc = std::source_location::current());

  // Timed receive: waits in bounded, doubling slices and throws
  // TimeoutError after CommConfig::recv_retries extra waits go unanswered.
  [[nodiscard]] std::vector<double> recv(
      std::size_t src, int tag = 0,
      std::source_location loc = std::source_location::current());

  // Non-throwing timed receive: waits at most timeout_s for one message;
  // false on expiry (out untouched). The polling primitive of server
  // loops that must stay responsive to shutdown (no exception churn, no
  // retry doubling).
  bool try_recv(std::size_t src, int tag, double timeout_s,
                std::vector<double>* out,
                std::source_location loc = std::source_location::current());

  // Id of the shared context in the commcheck p2p verifier (0 when
  // checking was off at construction). Lets endpoint owners like the
  // remote-cache fabric bind wire types to their tags.
  [[nodiscard]] std::uint64_t context_id() const;

  [[nodiscard]] const CommConfig& config() const;

  // Root's data is copied to everyone.
  void broadcast(std::vector<double>& data, std::size_t root = 0);

  // Element-wise sum across ranks; result available on every rank. All
  // ranks must pass the same number of elements. An empty payload is a
  // no-op on every rank (NOT a synchronization point).
  void allreduce(std::vector<double>& data,
                 AllreduceAlgorithm algorithm = AllreduceAlgorithm::Ring);

  // Non-blocking allreduce: takes ownership of the payload, runs the
  // exchange on a communication thread, and returns a handle whose wait()
  // yields the reduced vector. Collective-order rules are as for
  // allreduce(): every rank must start its iallreduce calls (and any other
  // collectives) in the same program order. Auto resolution and (for
  // Hierarchical) topology construction happen on the calling thread, so
  // the background thread never issues collective-ordering operations.
  [[nodiscard]] AllreduceRequest iallreduce(
      std::vector<double> data,
      AllreduceAlgorithm algorithm = AllreduceAlgorithm::Auto);

  // Collective: every rank calls with its color; returns a communicator
  // over the ranks sharing the color (ranks ordered by parent rank).
  [[nodiscard]] Communicator split(int color);

 private:
  std::shared_ptr<CommContext> ctx_;
  std::size_t rank_;
  // Cached two-level topology for Hierarchical (built collectively on
  // first use; shared with iallreduce communication threads).
  std::shared_ptr<Hierarchy> hierarchy_;

  // Draws this rank's next collective-operation tag base (calling thread
  // only — never from a communication thread).
  int next_tag_base();
  // Resolves Auto against the calibrated sunway cost model.
  [[nodiscard]] AllreduceAlgorithm resolve_algorithm(AllreduceAlgorithm a,
                                                     std::size_t n) const;
  // Collectively builds (or reuses) the node-group topology.
  void ensure_hierarchy();

  void allreduce_with_base(std::vector<double>& data,
                           AllreduceAlgorithm algorithm, int tag_base);
  void broadcast_with_tag(std::vector<double>& data, std::size_t root,
                          int tag);
  void allreduce_linear(std::vector<double>& data, int tag_base);
  void allreduce_ring(std::vector<double>& data, int tag_base);
  void allreduce_recursive_doubling(std::vector<double>& data, int tag_base);
  void allreduce_rsag(std::vector<double>& data, bool pipelined_local,
                      int tag_base);
  void allreduce_hierarchical(std::vector<double>& data, int tag_base);
};

// Launches fn on n_ranks threads, each receiving its Communicator. Any
// exception on a rank is rethrown on the caller after all threads join.
// The config sets the communicator's timeout/retry policy.
void run_spmd(std::size_t n_ranks,
              const std::function<void(Communicator&)>& fn,
              const CommConfig& config = {});

// Endpoints of a fresh shared context without the run_spmd thread
// harness: element k of the returned vector is rank k. The caller owns
// the threading — each endpoint must be driven by at most one thread at a
// time (the usual one-thread-per-rank rule), but different endpoints may
// live on arbitrary threads. Used by the sharded serve tier's cross-shard
// cache, where shard server threads outlive any single SPMD region.
std::vector<Communicator> make_comm_group(std::size_t n_ranks,
                                          const CommConfig& config = {});

}  // namespace swraman::parallel
