#pragma once

#include <cstddef>

#include "parallel/comm.hpp"
#include "sunway/arch.hpp"

// Cost-model-driven Allreduce algorithm selection (DESIGN.md S10). Every
// concrete AllreduceAlgorithm has an analytic time under the calibrated
// sunway cost model; AllreduceAlgorithm::Auto resolves to the argmin for
// the given payload, rank count, and node-group size. Selection is a pure
// function of its arguments — every rank evaluates the same inputs and
// lands on the same algorithm without communicating.

namespace swraman::parallel {

struct AllreduceChoice {
  AllreduceAlgorithm algorithm = AllreduceAlgorithm::Linear;
  double modeled_seconds = 0.0;
};

// Modeled time of one allreduce of `bytes` over `n_ranks` under the given
// concrete algorithm (Auto evaluates to the minimum, i.e. the time of the
// algorithm it would pick). node_size only affects Hierarchical.
double modeled_allreduce_seconds(
    AllreduceAlgorithm algorithm, double bytes, std::size_t n_ranks,
    std::size_t node_size,
    const sunway::ArchParams& arch = sunway::sw26010pro());

// Same, converted to whole MPE cycles (rounded to an integer value so
// obs counter sums of it stay exact and deterministic).
double modeled_allreduce_cycles(
    AllreduceAlgorithm algorithm, double bytes, std::size_t n_ranks,
    std::size_t node_size,
    const sunway::ArchParams& arch = sunway::sw26010pro());

// Picks the cheapest concrete algorithm. Evaluation order is fixed
// (Linear, Ring, RecursiveDoubling, ReduceScatterAllgather, CpePipelined,
// Hierarchical) and ties keep the earlier entry, so the choice is
// deterministic. Degenerate inputs (one rank or empty payload) resolve to
// Linear.
AllreduceChoice select_allreduce(
    double bytes, std::size_t n_ranks, std::size_t node_size,
    const sunway::ArchParams& arch = sunway::sw26010pro());

}  // namespace swraman::parallel
