#include "parallel/comm.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "common/backoff.hpp"
#include "common/error.hpp"
#include "common/lockcheck.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "parallel/allreduce_select.hpp"
#include "parallel/commcheck.hpp"
#include "robustness/fault.hpp"
#include "sunway/check/check.hpp"
#include "sunway/rma_reduce.hpp"

namespace swraman::parallel {

namespace {

// Tag layout of one collective operation: every collective draws a tag
// base on the calling thread and adds a small per-message offset, so
// concurrently running collectives (blocking + any number of in-flight
// iallreduce operations) never share a mailbox key. Bases stride by 2^15,
// offsets stay below it, and every derived tag is negative — user tags
// (>= 0 by convention) are untouched.
constexpr int kTagStride = 1 << 15;
constexpr int kOffBroadcast = 0;
constexpr int kOffLinearGather = 1;
constexpr int kOffRdFold = 2;
constexpr int kOffRdUnfold = 3;
constexpr int kOffGatherFallback = 4;
constexpr int kOffHierGather = 5;
constexpr int kOffHierBcast = 6;
constexpr int kOffRdMask = 200;    // + log2(mask)
constexpr int kOffRsagHalve = 300; // + log2(mask)
constexpr int kOffRsagDouble = 400;
constexpr int kOffRing = 1000;     // + step (reduce-scatter), + p-1 (gather)

int bit_index(std::size_t mask) {
  return std::countr_zero(mask);
}

void sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

// Shared state of one communicator: mailboxes keyed by (src, dst, tag),
// a generation-counting barrier, per-rank collective sequence counters,
// and scratch used by split().
class CommContext {
 public:
  explicit CommContext(std::size_t n, CommConfig config = {})
      : n_(n), config_(config), split_colors_(n, 0), op_seq_(n, 0),
        check_id_(commcheck::register_context(n)) {}

  // Orphan scan: every message still enqueued here was sent and never
  // received. The commcheck tolerance list (abandon()) explains the
  // ones a timed-out requester deliberately walked away from; the rest
  // are protocol bugs.
  ~CommContext() {
    if (check_id_ == 0) return;
    std::vector<commcheck::Leftover> leftovers;
    for (const auto& [k, q] : mail_) {
      if (q.empty()) continue;
      leftovers.push_back(
          {static_cast<std::size_t>((k >> 48) & 0xFFFF),
           static_cast<std::size_t>((k >> 32) & 0xFFFF),
           static_cast<int>(static_cast<std::uint32_t>(k & 0xFFFFFFFFu)),
           q.size()});
    }
    commcheck::on_context_destroyed(check_id_, leftovers);
  }

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const CommConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t check_id() const { return check_id_; }

  void post(std::size_t src, std::size_t dst, int tag,
            std::vector<double> data) {
    const lockcheck::CheckedLock lock(mutex_);
    mail_[key(src, dst, tag)].push(std::move(data));
    cv_.notify_all();
  }

  // Waits up to timeout_s for a message; false on expiry (out untouched).
  // `blocking` marks untimed-intent receives (Communicator::recv): those
  // register a wait-for edge in the commcheck recv-cycle detector for
  // the duration of the wait; bounded polls (try_recv) do not.
  bool take(std::size_t src, std::size_t dst, int tag, double timeout_s,
            std::vector<double>& out, bool blocking = false,
            const std::source_location& loc =
                std::source_location::current()) {
    lockcheck::CheckedLock lock(mutex_);
    const std::uint64_t k = key(src, dst, tag);
    const auto ready = [&] {
      const auto it = mail_.find(k);
      return it != mail_.end() && !it->second.empty();
    };
    const bool track =
        blocking && check_id_ != 0 && lockcheck::enabled() && !ready();
    if (track) {
      // The probe reads mail_ under mutex_, which this thread holds for
      // the whole recv_wait_begin call.
      commcheck::recv_wait_begin(check_id_, dst, src, tag,
                                 {&CommContext::mailbox_empty, this}, loc);
    }
    const bool got =
        cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), ready);
    if (track) commcheck::recv_wait_end(check_id_, dst);
    if (!got) return false;
    auto& q = mail_[k];
    out = std::move(q.front());
    q.pop();
    return true;
  }

  void barrier() {
    lockcheck::CheckedLock lock(mutex_);
    const std::size_t gen = barrier_gen_;
    if (++barrier_count_ == n_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }

  // Per-rank collective-operation counter. Called only from the rank's own
  // (calling) thread — never from iallreduce communication threads — so
  // every rank assigns the same sequence number to the same collective as
  // long as collectives are issued in identical program order.
  int next_tag_base(std::size_t rank) {
    const std::uint64_t seq = op_seq_[rank]++;
    return -static_cast<int>(1 + seq % 60000) * kTagStride;
  }

  // Collective split: every rank posts its color; the call returns the
  // shared child context plus this rank's position within its color group.
  std::pair<std::shared_ptr<CommContext>, std::size_t> split(
      std::size_t rank, int color) {
    lockcheck::CheckedLock lock(mutex_);
    split_colors_[rank] = color;
    const std::size_t gen = split_gen_;
    if (++split_count_ == n_) {
      split_children_.clear();
      for (std::size_t r = 0; r < n_; ++r) {
        split_children_[split_colors_[r]].members.push_back(r);
      }
      for (auto& [c, group] : split_children_) {
        group.ctx =
            std::make_shared<CommContext>(group.members.size(), config_);
      }
      split_count_ = 0;
      ++split_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return split_gen_ != gen; });
    }
    const auto& group = split_children_.at(color);
    const auto it =
        std::find(group.members.begin(), group.members.end(), rank);
    return {group.ctx,
            static_cast<std::size_t>(it - group.members.begin())};
  }

 private:
  // Collision-free packing for < 65536 ranks and any 32-bit tag. (The
  // previous XOR packing aliased tag bits 16..31 into the dst field, which
  // the per-operation tag bases introduced for concurrent collectives
  // would trip over.)
  static std::uint64_t key(std::size_t src, std::size_t dst, int tag) {
    return ((static_cast<std::uint64_t>(src) & 0xFFFF) << 48) |
           ((static_cast<std::uint64_t>(dst) & 0xFFFF) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  }

  struct SplitGroup {
    std::shared_ptr<CommContext> ctx;
    std::vector<std::size_t> members;
  };

  // True when the (src -> dst, tag) mailbox is absent or empty. Called
  // by the commcheck cycle detector from recv_wait_begin, on the thread
  // that already holds mutex_.
  static bool mailbox_empty(void* self, std::size_t src, std::size_t dst,
                            int tag) {
    auto* ctx = static_cast<CommContext*>(self);
    const auto it = ctx->mail_.find(key(src, dst, tag));
    return it == ctx->mail_.end() || it->second.empty();
  }

  std::size_t n_;
  CommConfig config_;
  lockcheck::CheckedMutex mutex_{"parallel.comm.ctx"};
  lockcheck::CheckedCondVar cv_;
  std::map<std::uint64_t, std::queue<std::vector<double>>> mail_;
  std::size_t barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  std::vector<int> split_colors_;
  std::size_t split_count_ = 0;
  std::size_t split_gen_ = 0;
  std::map<int, SplitGroup> split_children_;
  std::vector<std::uint64_t> op_seq_;
  std::uint64_t check_id_ = 0;  // commcheck context id (0 = unchecked)
};

// Cached two-level topology (DESIGN.md S10): the node group of
// config().node_size consecutive ranks this rank belongs to, and the
// cross-node communicator of the group leaders. Built collectively by
// ensure_hierarchy() on the calling thread; iallreduce communication
// threads only reuse it.
struct Hierarchy {
  std::size_t node_size = 1;
  std::size_t node = 0;
  bool leader = false;
  std::size_t n_groups = 1;
  Communicator intra;    // ranks of my node group (leader = intra rank 0)
  Communicator leaders;  // group leaders (meaningful only when leader)
};

Communicator::Communicator(std::shared_ptr<CommContext> ctx, std::size_t rank)
    : ctx_(std::move(ctx)), rank_(rank) {}

std::size_t Communicator::size() const { return ctx_->size(); }

const CommConfig& Communicator::config() const { return ctx_->config(); }

int Communicator::next_tag_base() { return ctx_->next_tag_base(rank_); }

void Communicator::barrier() {
  lockcheck::blocking_call("comm.barrier");
  // Injected rank stall: this rank arrives late; the others tolerate the
  // delay through their recv/barrier timeouts.
  if (fault::should_fire(fault::kCommStall)) {
    log::warn("fault ", fault::kCommStall, ": rank ", rank_, " stalled ",
              config().stall_s, " s before barrier");
    sleep_s(config().stall_s);
  }
  ctx_->barrier();
}

std::uint64_t Communicator::context_id() const { return ctx_->check_id(); }

void Communicator::send(std::size_t dest, const std::vector<double>& data,
                        int tag, std::source_location loc) {
  SWRAMAN_REQUIRE(dest < size(), "send: destination rank out of range");
  // Sends can sleep through the retransmit backoff; doing that while
  // holding a strict lock stalls every thread queued behind it.
  lockcheck::blocking_call("comm.send", nullptr, loc);
  commcheck::on_send(ctx_->check_id(), rank_, dest, tag, data.size(), loc);
  const CommConfig& cfg = config();
  BackoffOptions bo;
  bo.base_s = cfg.backoff_base_s;
  bo.cap_s = cfg.backoff_max_s;
  bo.decorrelated = cfg.backoff_jitter;
  // Deterministic per-edge jitter stream: retries of distinct (src, dst,
  // tag) edges decorrelate, yet a fixed seed replays a fixed timeline.
  bo.seed = cfg.backoff_seed ^ (static_cast<std::uint64_t>(rank_) << 40) ^
            (static_cast<std::uint64_t>(dest) << 20) ^
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
  Backoff backoff(bo);
  for (int attempt = 0;; ++attempt) {
    // The transport acknowledges delivery; a drop injected here is what a
    // lost RMA message looks like to the sender — no ack, so retransmit.
    if (!fault::should_fire(fault::kCommSendDrop)) {
      ctx_->post(rank_, dest, tag, data);
      return;
    }
    if (attempt >= cfg.send_retries) {
      throw TimeoutError("send: rank " + std::to_string(rank_) + " -> " +
                         std::to_string(dest) + " tag " +
                         std::to_string(tag) + " dropped " +
                         std::to_string(attempt + 1) +
                         " times; retry budget exhausted");
    }
    obs::count("comm.send.retransmits");
    const double delay = backoff.next();
    log::warn("fault ", fault::kCommSendDrop, ": rank ", rank_, " -> ",
              dest, " tag ", tag, " message dropped, retransmit attempt ",
              attempt + 1, "/", cfg.send_retries, " after ", delay, " s");
    sleep_s(delay);
  }
}

bool Communicator::try_recv(std::size_t src, int tag, double timeout_s,
                            std::vector<double>* out,
                            std::source_location loc) {
  SWRAMAN_REQUIRE(src < size(), "try_recv: source rank out of range");
  lockcheck::blocking_call("comm.try_recv", nullptr, loc);
  if (!ctx_->take(src, rank_, tag, timeout_s, *out, /*blocking=*/false,
                  loc)) {
    return false;
  }
  commcheck::on_recv(ctx_->check_id(), src, rank_, tag, out->size());
  return true;
}

std::vector<double> Communicator::recv(std::size_t src, int tag,
                                       std::source_location loc) {
  SWRAMAN_REQUIRE(src < size(), "recv: source rank out of range");
  lockcheck::blocking_call("comm.recv", nullptr, loc);
  const CommConfig& cfg = config();
  if (fault::should_fire(fault::kCommRecvDelay)) {
    log::warn("fault ", fault::kCommRecvDelay, ": rank ", rank_,
              " delivery delayed ", cfg.stall_s, " s");
    sleep_s(cfg.stall_s);
  }
  std::vector<double> data;
  double timeout = cfg.recv_timeout_s;
  for (int attempt = 0; attempt <= cfg.recv_retries; ++attempt) {
    if (ctx_->take(src, rank_, tag, timeout, data, /*blocking=*/true, loc)) {
      commcheck::on_recv(ctx_->check_id(), src, rank_, tag, data.size());
      return data;
    }
    obs::count("comm.recv.timeouts");
    if (attempt < cfg.recv_retries) {
      log::warn("recv: rank ", rank_, " <- ", src, " tag ", tag,
                " timed out after ", timeout, " s, retry ", attempt + 1,
                "/", cfg.recv_retries);
    }
    timeout *= 2.0;
  }
  throw TimeoutError("recv: rank " + std::to_string(rank_) + " <- " +
                     std::to_string(src) + " tag " + std::to_string(tag) +
                     " timed out after " +
                     std::to_string(cfg.recv_retries + 1) + " waits");
}

void Communicator::broadcast_with_tag(std::vector<double>& data,
                                      std::size_t root, int tag) {
  if (size() == 1) return;
  if (rank_ == root) {
    for (std::size_t r = 0; r < size(); ++r) {
      if (r != root) send(r, data, tag);
    }
  } else {
    data = recv(root, tag);
  }
}

void Communicator::broadcast(std::vector<double>& data, std::size_t root) {
  if (size() == 1) return;
  broadcast_with_tag(data, root, next_tag_base() + kOffBroadcast);
}

const char* allreduce_algorithm_name(AllreduceAlgorithm a) {
  switch (a) {
    case AllreduceAlgorithm::Linear:
      return "linear";
    case AllreduceAlgorithm::Ring:
      return "ring";
    case AllreduceAlgorithm::RecursiveDoubling:
      return "recursive_doubling";
    case AllreduceAlgorithm::ReduceScatterAllgather:
      return "rsag";
    case AllreduceAlgorithm::CpePipelined:
      return "cpe_pipelined";
    case AllreduceAlgorithm::Hierarchical:
      return "hierarchical";
    case AllreduceAlgorithm::Auto:
      return "auto";
  }
  return "?";
}

AllreduceAlgorithm Communicator::resolve_algorithm(AllreduceAlgorithm a,
                                                   std::size_t n) const {
  if (a != AllreduceAlgorithm::Auto) return a;
  // The selection inputs (payload, rank count, node_size, static arch
  // parameters) are identical on every rank, so every rank resolves Auto
  // to the same concrete algorithm without communicating.
  const AllreduceChoice choice = select_allreduce(
      static_cast<double>(n * sizeof(double)), size(), config().node_size);
  return choice.algorithm;
}

void Communicator::ensure_hierarchy() {
  const std::size_t p = size();
  const std::size_t m = std::clamp<std::size_t>(config().node_size, 1, p);
  if (hierarchy_ != nullptr && hierarchy_->node_size == m) return;
  // Collective: both split() calls must be reached by every rank.
  Communicator intra = split(static_cast<int>(rank_ / m));
  const bool leader = intra.rank() == 0;
  Communicator leaders = split(leader ? 0 : 1);
  hierarchy_ = std::make_shared<Hierarchy>(
      Hierarchy{m, rank_ / m, leader, (p + m - 1) / m, std::move(intra),
                std::move(leaders)});
}

void Communicator::allreduce(std::vector<double>& data,
                             AllreduceAlgorithm algorithm) {
  if (size() == 1 || data.empty()) return;
  const AllreduceAlgorithm chosen = resolve_algorithm(algorithm, data.size());
  if (chosen == AllreduceAlgorithm::Hierarchical) ensure_hierarchy();
  allreduce_with_base(data, chosen, next_tag_base());
}

void Communicator::allreduce_with_base(std::vector<double>& data,
                                       AllreduceAlgorithm algorithm,
                                       int tag_base) {
  SWRAMAN_TRACE_SPAN(span, "comm.allreduce");
  const double bytes = static_cast<double>(data.size() * sizeof(double));
  if (span.active()) {
    span.attr("algorithm", allreduce_algorithm_name(algorithm));
    span.attr("bytes", bytes);
    span.attr("ranks", static_cast<double>(size()));
    span.attr("rank", static_cast<double>(rank_));
    obs::count("comm.allreduce.calls");
    obs::count("comm.allreduce.bytes", bytes);
  }
  switch (algorithm) {
    case AllreduceAlgorithm::Linear:
      allreduce_linear(data, tag_base);
      break;
    case AllreduceAlgorithm::Ring:
      allreduce_ring(data, tag_base);
      break;
    case AllreduceAlgorithm::RecursiveDoubling:
      allreduce_recursive_doubling(data, tag_base);
      break;
    case AllreduceAlgorithm::ReduceScatterAllgather:
      allreduce_rsag(data, false, tag_base);
      break;
    case AllreduceAlgorithm::CpePipelined:
      allreduce_rsag(data, true, tag_base);
      break;
    case AllreduceAlgorithm::Hierarchical:
      allreduce_hierarchical(data, tag_base);
      break;
    case AllreduceAlgorithm::Auto:
      // Resolved by the caller; reaching here is a logic error.
      SWRAMAN_REQUIRE(false, "allreduce: Auto must be resolved before dispatch");
      break;
  }
  if (obs::enabled()) {
    // Machine-time accounting: what this exchange costs on the modeled
    // SW26010Pro network, in whole MPE cycles (integer-valued so counter
    // sums stay exact and run-to-run deterministic).
    const double cycles = modeled_allreduce_cycles(
        algorithm, bytes, size(), config().node_size);
    obs::count("comm.allreduce.modeled_cycles", cycles);
    if (span.active()) span.attr("modeled_cycles", cycles);
  }
}

namespace {

// Plain elementwise accumulate.
void reduce_into(std::vector<double>& acc, const std::vector<double>& in) {
  SWRAMAN_REQUIRE(acc.size() == in.size(), "allreduce: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
}

// The CPE-offloaded local reduction of paper Algorithm 3: the array is
// processed in LDM-sized blocks through a double-buffered pipeline. The
// numerics are identical; the chunked structure is what the Sunway cost
// model charges differently (see sunway/cost_model).
void reduce_into_pipelined(std::vector<double>& acc,
                           const std::vector<double>& in) {
  SWRAMAN_REQUIRE(acc.size() == in.size(), "allreduce: size mismatch");
  constexpr std::size_t kBlk = 256 * 1024 / 4 / sizeof(double);
  for (std::size_t base = 0; base < acc.size(); base += kBlk) {
    const std::size_t end = std::min(acc.size(), base + kBlk);
    for (std::size_t i = base; i < end; ++i) acc[i] += in[i];
  }
}

}  // namespace

// Reduction order: rank 0 folds contributions in ascending rank order
// (((x0 + x1) + x2) + ...), bitwise identical to a serial loop over ranks
// — the reference order the property suite pins the other algorithms to.
void Communicator::allreduce_linear(std::vector<double>& data, int tag_base) {
  const int tag = tag_base + kOffLinearGather;
  if (rank_ == 0) {
    for (std::size_t r = 1; r < size(); ++r) {
      reduce_into(data, recv(r, tag));
    }
  } else {
    send(0, data, tag);
  }
  broadcast_with_tag(data, 0, tag_base + kOffBroadcast);
}

void Communicator::allreduce_ring(std::vector<double>& data, int tag_base) {
  const std::size_t p = size();
  const std::size_t n = data.size();
  if (n == 0) return;  // empty allreduce is a no-op, not a barrier
  SWRAMAN_REQUIRE(kOffRing + 2 * p < static_cast<std::size_t>(kTagStride),
                  "allreduce_ring: rank count exceeds tag window");
  // Chunk boundaries.
  const auto lo = [&](std::size_t c) { return c * n / p; };
  const auto hi = [&](std::size_t c) { return (c + 1) * n / p; };
  const std::size_t next = (rank_ + 1) % p;
  const std::size_t prev = (rank_ + p - 1) % p;

  // Reduce-scatter: after p-1 steps, rank r owns the full sum of chunk
  // (r+1) mod p.
  for (std::size_t step = 0; step < p - 1; ++step) {
    const std::size_t send_chunk = (rank_ + p - step) % p;
    const std::size_t recv_chunk = (rank_ + p - step - 1) % p;
    const int tag = tag_base + kOffRing + static_cast<int>(step);
    std::vector<double> out(data.begin() + static_cast<long>(lo(send_chunk)),
                            data.begin() + static_cast<long>(hi(send_chunk)));
    send(next, out, tag);
    const std::vector<double> in = recv(prev, tag);
    for (std::size_t i = 0; i < in.size(); ++i) {
      data[lo(recv_chunk) + i] += in[i];
    }
  }
  // Allgather ring.
  for (std::size_t step = 0; step < p - 1; ++step) {
    const std::size_t send_chunk = (rank_ + 1 + p - step) % p;
    const std::size_t recv_chunk = (rank_ + p - step) % p;
    const int tag =
        tag_base + kOffRing + static_cast<int>(p - 1 + step);
    std::vector<double> out(data.begin() + static_cast<long>(lo(send_chunk)),
                            data.begin() + static_cast<long>(hi(send_chunk)));
    send(next, out, tag);
    const std::vector<double> in = recv(prev, tag);
    std::copy(in.begin(), in.end(),
              data.begin() + static_cast<long>(lo(recv_chunk)));
  }
}

void Communicator::allreduce_recursive_doubling(std::vector<double>& data,
                                                int tag_base) {
  const std::size_t p = size();
  // Fold the non-power-of-two remainder into the lower ranks first.
  std::size_t pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const std::size_t rem = p - pof2;

  long my_id = -1;  // id within the power-of-two group, -1 = folded out
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      send(rank_ + 1, data, tag_base + kOffRdFold);
      my_id = -1;
    } else {
      reduce_into(data, recv(rank_ - 1, tag_base + kOffRdFold));
      my_id = static_cast<long>(rank_ / 2);
    }
  } else {
    my_id = static_cast<long>(rank_ - rem);
  }

  if (my_id >= 0) {
    for (std::size_t mask = 1; mask < pof2; mask <<= 1) {
      const std::size_t partner_id =
          static_cast<std::size_t>(my_id) ^ mask;
      const std::size_t partner_rank = partner_id < rem
                                           ? 2 * partner_id + 1
                                           : partner_id + rem;
      const int tag = tag_base + kOffRdMask + bit_index(mask);
      send(partner_rank, data, tag);
      reduce_into(data, recv(partner_rank, tag));
    }
  }

  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send(rank_ - 1, data, tag_base + kOffRdUnfold);
    } else {
      data = recv(rank_ + 1, tag_base + kOffRdUnfold);
    }
  }
}

void Communicator::allreduce_rsag(std::vector<double>& data,
                                  bool pipelined_local, int tag_base) {
  const std::size_t p = size();
  const std::size_t n = data.size();
  const auto combine = pipelined_local ? reduce_into_pipelined : reduce_into;

  // Non-power-of-two: fall back to linear fold into recursive halving is
  // intricate; a ring pass keeps correctness with the same local-reduce
  // kernel. Power-of-two uses true recursive halving + doubling.
  std::size_t pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  if (pof2 != p || n < p) {
    // Same communication volume class; local reductions go through the
    // (possibly pipelined) combine.
    const int tag = tag_base + kOffGatherFallback;
    if (rank_ == 0) {
      for (std::size_t r = 1; r < p; ++r) combine(data, recv(r, tag));
    } else {
      send(0, data, tag);
    }
    broadcast_with_tag(data, 0, tag_base + kOffBroadcast);
    return;
  }

  // Recursive halving reduce-scatter: at step k my active window halves.
  std::size_t lo = 0;
  std::size_t hi = n;
  for (std::size_t mask = p / 2; mask >= 1; mask >>= 1) {
    const std::size_t partner = rank_ ^ mask;
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool keep_low = (rank_ & mask) == 0;
    const std::size_t send_lo = keep_low ? mid : lo;
    const std::size_t send_hi = keep_low ? hi : mid;
    const int tag = tag_base + kOffRsagHalve + bit_index(mask);
    std::vector<double> out(data.begin() + static_cast<long>(send_lo),
                            data.begin() + static_cast<long>(send_hi));
    send(partner, out, tag);
    const std::vector<double> in = recv(partner, tag);
    const std::size_t keep_lo = keep_low ? lo : mid;
    std::vector<double> window(data.begin() + static_cast<long>(keep_lo),
                               data.begin() +
                                   static_cast<long>(keep_lo + in.size()));
    combine(window, in);
    std::copy(window.begin(), window.end(),
              data.begin() + static_cast<long>(keep_lo));
    if (keep_low) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Recursive doubling allgather: windows merge back.
  for (std::size_t mask = 1; mask < p; mask <<= 1) {
    const std::size_t partner = rank_ ^ mask;
    const int tag = tag_base + kOffRsagDouble + bit_index(mask);
    std::vector<double> out(data.begin() + static_cast<long>(lo),
                            data.begin() + static_cast<long>(hi));
    send(partner, out, tag);
    const std::vector<double> in = recv(partner, tag);
    if ((rank_ & mask) == 0) {
      // Partner owned the upper half adjacent to ours.
      std::copy(in.begin(), in.end(), data.begin() + static_cast<long>(hi));
      hi += in.size();
    } else {
      std::copy(in.begin(), in.end(),
                data.begin() + static_cast<long>(lo - in.size()));
      lo -= in.size();
    }
  }
}

// Two-level topology-aware allreduce (paper Sec. 3.4 / Fig. 15, DESIGN.md
// S10). Stage 1: every node group reduces onto its leader through the CPE
// RMA mesh path — each member's vector becomes one mesh lane of
// (index, value) contributions, and rma_array_reduction applies them
// through its chunked LDM block-cache pipeline. Stage 2: the leaders run
// Rabenseifner reduce-scatter + allgather (CPE-pipelined local combine)
// across node groups. Stage 3: each leader broadcasts the global sum
// inside its node. Reduction order therefore differs from Linear; results
// agree within floating-point reassociation error.
void Communicator::allreduce_hierarchical(std::vector<double>& data,
                                          int tag_base) {
  SWRAMAN_REQUIRE(hierarchy_ != nullptr,
                  "allreduce_hierarchical: topology not built (Hierarchical "
                  "dispatched without ensure_hierarchy)");
  Hierarchy& h = *hierarchy_;
  const std::size_t m = h.intra.size();
  const std::size_t n = data.size();
  const double bytes = static_cast<double>(n * sizeof(double));

  // Stage 1: intra-node gather + RMA-mesh reduction onto the leader.
  if (m > 1) {
    const int tag = tag_base + kOffHierGather;
    if (h.leader) {
      std::vector<std::vector<sunway::Contribution>> lanes(m - 1);
      for (std::size_t r = 1; r < m; ++r) {
        const std::vector<double> in = h.intra.recv(r, tag);
        SWRAMAN_REQUIRE(in.size() == n, "allreduce: size mismatch");
        auto& lane = lanes[r - 1];
        lane.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          lane[i] = sunway::Contribution{i, in[i]};
        }
      }
      const sunway::RmaReduceStats stats =
          sunway::rma_array_reduction(lanes, data);
      if (obs::enabled()) {
        // Both directions of intra-node traffic are charged by the leader
        // (gather now, broadcast below) — integer byte counts, so the
        // counters stay deterministic.
        obs::count("comm.allreduce.intra.bytes",
                   2.0 * static_cast<double>(m - 1) * bytes);
        obs::count("comm.allreduce.intra.rma_messages", stats.rma_messages);
        obs::count("comm.allreduce.intra.rma_bytes", stats.rma_bytes);
      }
    } else {
      h.intra.send(0, data, tag);
    }
  }

  // Stage 2: leaders reduce across node groups (Rabenseifner with the
  // CPE-pipelined local combine — the paper's optimized inter-node path).
  if (h.leader && h.leaders.size() > 1) {
    h.leaders.allreduce_rsag(data, true, tag_base);
    if (obs::enabled()) {
      // Rabenseifner wire volume per rank: 2 (g-1)/g * payload.
      const double g = static_cast<double>(h.leaders.size());
      obs::count("comm.allreduce.inter.bytes",
                 std::floor(2.0 * (g - 1.0) / g * bytes + 0.5));
    }
  }

  // Stage 3: intra-node broadcast of the global sum.
  if (m > 1) {
    h.intra.broadcast_with_tag(data, 0, tag_base + kOffHierBcast);
  }
}

// ---------------------------------------------------------------------------
// Non-blocking allreduce.

struct AllreduceRequest::State {
  std::vector<double> data;
  AllreduceAlgorithm algorithm = AllreduceAlgorithm::Linear;
  std::thread worker;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> comm_done_ns{0};
  std::uint64_t start_ns = 0;
  std::exception_ptr error;
  bool waited = false;

  ~State() {
    // The owning handle joins before releasing its reference (wait() or
    // abandon()), so this is a backstop only — and it can never run on the
    // worker thread, because the worker's own captured reference is
    // released before join() returns.
    if (worker.joinable()) worker.join();
  }
};

void AllreduceRequest::abandon() noexcept {
  if (state_ == nullptr || state_->waited) return;
  // Always complete the exchange — peers block on our messages — then flag
  // the protocol violation: a request that was never waited on threw its
  // reduced data away. This runs on the owner thread so the violation is
  // visible as soon as the handle is gone.
  if (state_->worker.joinable()) state_->worker.join();
  state_->waited = true;
  obs::count("comm.iallreduce.abandoned");
  if (state_->error != nullptr) {
    log::warn("iallreduce: abandoned request also failed on its "
              "communication thread; error dropped");
  }
  if (sunway::check::enabled()) {
    sunway::check::note(sunway::check::kRuleCollAbandoned,
                        "iallreduce request destroyed without wait(); "
                        "algorithm=" +
                            std::string(allreduce_algorithm_name(
                                state_->algorithm)) +
                            " payload_doubles=" +
                            std::to_string(state_->data.size()));
  }
}

AllreduceRequest::~AllreduceRequest() { abandon(); }

AllreduceRequest& AllreduceRequest::operator=(
    AllreduceRequest&& other) noexcept {
  if (this != &other) {
    abandon();
    state_ = std::move(other.state_);
  }
  return *this;
}

bool AllreduceRequest::test() const {
  SWRAMAN_REQUIRE(state_ != nullptr, "AllreduceRequest::test: empty request");
  return state_->done.load(std::memory_order_acquire);
}

std::vector<double> AllreduceRequest::wait() {
  SWRAMAN_REQUIRE(state_ != nullptr, "AllreduceRequest::wait: empty request");
  const std::shared_ptr<State> st = std::move(state_);
  st->waited = true;
  const std::uint64_t wait_begin_ns = obs::now_ns();
  if (st->worker.joinable()) st->worker.join();
  if (st->error != nullptr) std::rethrow_exception(st->error);
  if (obs::enabled()) {
    // Overlap = communication time that ran while the caller was doing
    // other work; wait = time the caller stalled here. Wall-clock values,
    // hence the _ns suffix — excluded from determinism comparisons.
    const std::uint64_t done_ns =
        std::max(st->comm_done_ns.load(std::memory_order_relaxed),
                 st->start_ns);
    const std::uint64_t overlap_end = std::min(done_ns, wait_begin_ns);
    if (overlap_end > st->start_ns) {
      obs::count("comm.allreduce.overlap_ns",
                 static_cast<double>(overlap_end - st->start_ns));
    }
    if (done_ns > wait_begin_ns) {
      obs::count("comm.allreduce.wait_ns",
                 static_cast<double>(done_ns - wait_begin_ns));
    }
  }
  return std::move(st->data);
}

AllreduceRequest Communicator::iallreduce(std::vector<double> data,
                                          AllreduceAlgorithm algorithm) {
  auto st = std::make_shared<AllreduceRequest::State>();
  st->data = std::move(data);
  st->algorithm = resolve_algorithm(algorithm, st->data.size());
  st->start_ns = obs::now_ns();
  obs::count("comm.iallreduce.calls");
  if (size() == 1 || st->data.empty()) {
    st->comm_done_ns.store(st->start_ns, std::memory_order_relaxed);
    st->done.store(true, std::memory_order_release);
    return AllreduceRequest(std::move(st));
  }
  // Collective-ordering work happens here, on the calling thread: Auto is
  // already resolved, the hierarchy is built (two split()s), and the tag
  // base is drawn. The communication thread only moves messages.
  if (st->algorithm == AllreduceAlgorithm::Hierarchical) ensure_hierarchy();
  const int tag_base = next_tag_base();
  st->worker = std::thread([st, self = *this, tag_base]() mutable {
    try {
      self.allreduce_with_base(st->data, st->algorithm, tag_base);
    } catch (...) {
      st->error = std::current_exception();
    }
    st->comm_done_ns.store(obs::now_ns(), std::memory_order_relaxed);
    st->done.store(true, std::memory_order_release);
  });
  return AllreduceRequest(std::move(st));
}

Communicator Communicator::split(int color) {
  auto [child, new_rank] = ctx_->split(rank_, color);
  return Communicator(child, new_rank);
}

void run_spmd(std::size_t n_ranks,
              const std::function<void(Communicator&)>& fn,
              const CommConfig& config) {
  SWRAMAN_REQUIRE(n_ranks >= 1, "run_spmd: need at least one rank");
  auto ctx = std::make_shared<CommContext>(n_ranks, config);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n_ranks);
  threads.reserve(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Communicator comm(ctx, r);
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<Communicator> make_comm_group(std::size_t n_ranks,
                                          const CommConfig& config) {
  SWRAMAN_REQUIRE(n_ranks >= 1, "make_comm_group: need at least one rank");
  auto ctx = std::make_shared<CommContext>(n_ranks, config);
  std::vector<Communicator> group;
  group.reserve(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) group.emplace_back(ctx, r);
  return group;
}

}  // namespace swraman::parallel
