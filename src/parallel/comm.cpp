#include "parallel/comm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"

namespace swraman::parallel {

// Shared state of one communicator: mailboxes keyed by (src, dst, tag),
// a generation-counting barrier, and scratch used by split().
class CommContext {
 public:
  explicit CommContext(std::size_t n, CommConfig config = {})
      : n_(n), config_(config), split_colors_(n, 0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] const CommConfig& config() const { return config_; }

  void post(std::size_t src, std::size_t dst, int tag,
            std::vector<double> data) {
    const std::scoped_lock lock(mutex_);
    mail_[key(src, dst, tag)].push(std::move(data));
    cv_.notify_all();
  }

  // Waits up to timeout_s for a message; false on expiry (out untouched).
  bool take(std::size_t src, std::size_t dst, int tag, double timeout_s,
            std::vector<double>& out) {
    std::unique_lock lock(mutex_);
    const std::uint64_t k = key(src, dst, tag);
    const auto ready = [&] {
      const auto it = mail_.find(k);
      return it != mail_.end() && !it->second.empty();
    };
    if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                      ready)) {
      return false;
    }
    auto& q = mail_[k];
    out = std::move(q.front());
    q.pop();
    return true;
  }

  void barrier() {
    std::unique_lock lock(mutex_);
    const std::size_t gen = barrier_gen_;
    if (++barrier_count_ == n_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }

  // Collective split: every rank posts its color; the call returns the
  // shared child context plus this rank's position within its color group.
  std::pair<std::shared_ptr<CommContext>, std::size_t> split(
      std::size_t rank, int color) {
    std::unique_lock lock(mutex_);
    split_colors_[rank] = color;
    const std::size_t gen = split_gen_;
    if (++split_count_ == n_) {
      split_children_.clear();
      for (std::size_t r = 0; r < n_; ++r) {
        auto& group = split_children_[split_colors_[r]];
        if (group.ctx == nullptr) group.ctx = nullptr;  // created below
        group.members.push_back(r);
      }
      for (auto& [c, group] : split_children_) {
        group.ctx =
            std::make_shared<CommContext>(group.members.size(), config_);
      }
      split_count_ = 0;
      ++split_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return split_gen_ != gen; });
    }
    const auto& group = split_children_.at(color);
    const auto it =
        std::find(group.members.begin(), group.members.end(), rank);
    return {group.ctx,
            static_cast<std::size_t>(it - group.members.begin())};
  }

 private:
  static std::uint64_t key(std::size_t src, std::size_t dst, int tag) {
    return (static_cast<std::uint64_t>(src) << 40) ^
           (static_cast<std::uint64_t>(dst) << 16) ^
           static_cast<std::uint64_t>(static_cast<unsigned>(tag));
  }

  struct SplitGroup {
    std::shared_ptr<CommContext> ctx;
    std::vector<std::size_t> members;
  };

  std::size_t n_;
  CommConfig config_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::queue<std::vector<double>>> mail_;
  std::size_t barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
  std::vector<int> split_colors_;
  std::size_t split_count_ = 0;
  std::size_t split_gen_ = 0;
  std::map<int, SplitGroup> split_children_;
};

Communicator::Communicator(std::shared_ptr<CommContext> ctx, std::size_t rank)
    : ctx_(std::move(ctx)), rank_(rank) {}

std::size_t Communicator::size() const { return ctx_->size(); }

const CommConfig& Communicator::config() const { return ctx_->config(); }

namespace {

void sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

void Communicator::barrier() {
  // Injected rank stall: this rank arrives late; the others tolerate the
  // delay through their recv/barrier timeouts.
  if (fault::should_fire(fault::kCommStall)) {
    log::warn("fault ", fault::kCommStall, ": rank ", rank_, " stalled ",
              config().stall_s, " s before barrier");
    sleep_s(config().stall_s);
  }
  ctx_->barrier();
}

void Communicator::send(std::size_t dest, const std::vector<double>& data,
                        int tag) {
  SWRAMAN_REQUIRE(dest < size(), "send: destination rank out of range");
  const CommConfig& cfg = config();
  double backoff = cfg.backoff_base_s;
  for (int attempt = 0;; ++attempt) {
    // The transport acknowledges delivery; a drop injected here is what a
    // lost RMA message looks like to the sender — no ack, so retransmit.
    if (!fault::should_fire(fault::kCommSendDrop)) {
      ctx_->post(rank_, dest, tag, data);
      return;
    }
    if (attempt >= cfg.send_retries) {
      throw TimeoutError("send: rank " + std::to_string(rank_) + " -> " +
                         std::to_string(dest) + " tag " +
                         std::to_string(tag) + " dropped " +
                         std::to_string(attempt + 1) +
                         " times; retry budget exhausted");
    }
    obs::count("comm.send.retransmits");
    log::warn("fault ", fault::kCommSendDrop, ": rank ", rank_, " -> ",
              dest, " tag ", tag, " message dropped, retransmit attempt ",
              attempt + 1, "/", cfg.send_retries, " after ", backoff, " s");
    sleep_s(backoff);
    backoff = std::min(2.0 * backoff, cfg.backoff_max_s);
  }
}

std::vector<double> Communicator::recv(std::size_t src, int tag) {
  SWRAMAN_REQUIRE(src < size(), "recv: source rank out of range");
  const CommConfig& cfg = config();
  if (fault::should_fire(fault::kCommRecvDelay)) {
    log::warn("fault ", fault::kCommRecvDelay, ": rank ", rank_,
              " delivery delayed ", cfg.stall_s, " s");
    sleep_s(cfg.stall_s);
  }
  std::vector<double> data;
  double timeout = cfg.recv_timeout_s;
  for (int attempt = 0; attempt <= cfg.recv_retries; ++attempt) {
    if (ctx_->take(src, rank_, tag, timeout, data)) return data;
    obs::count("comm.recv.timeouts");
    if (attempt < cfg.recv_retries) {
      log::warn("recv: rank ", rank_, " <- ", src, " tag ", tag,
                " timed out after ", timeout, " s, retry ", attempt + 1,
                "/", cfg.recv_retries);
    }
    timeout *= 2.0;
  }
  throw TimeoutError("recv: rank " + std::to_string(rank_) + " <- " +
                     std::to_string(src) + " tag " + std::to_string(tag) +
                     " timed out after " +
                     std::to_string(cfg.recv_retries + 1) + " waits");
}

void Communicator::broadcast(std::vector<double>& data, std::size_t root) {
  if (size() == 1) return;
  if (rank_ == root) {
    for (std::size_t r = 0; r < size(); ++r) {
      if (r != root) send(r, data, -101);
    }
  } else {
    data = recv(root, -101);
  }
}

namespace {

const char* allreduce_algorithm_name(AllreduceAlgorithm a) {
  switch (a) {
    case AllreduceAlgorithm::Linear:
      return "linear";
    case AllreduceAlgorithm::Ring:
      return "ring";
    case AllreduceAlgorithm::RecursiveDoubling:
      return "recursive_doubling";
    case AllreduceAlgorithm::ReduceScatterAllgather:
      return "rsag";
    case AllreduceAlgorithm::CpePipelined:
      return "cpe_pipelined";
  }
  return "?";
}

}  // namespace

void Communicator::allreduce(std::vector<double>& data,
                             AllreduceAlgorithm algorithm) {
  if (size() == 1) return;
  SWRAMAN_TRACE_SPAN(span, "comm.allreduce");
  if (span.active()) {
    const double bytes = static_cast<double>(data.size() * sizeof(double));
    span.attr("algorithm", allreduce_algorithm_name(algorithm));
    span.attr("bytes", bytes);
    span.attr("ranks", static_cast<double>(size()));
    span.attr("rank", static_cast<double>(rank_));
    obs::count("comm.allreduce.calls");
    obs::count("comm.allreduce.bytes", bytes);
  }
  switch (algorithm) {
    case AllreduceAlgorithm::Linear:
      allreduce_linear(data);
      break;
    case AllreduceAlgorithm::Ring:
      allreduce_ring(data);
      break;
    case AllreduceAlgorithm::RecursiveDoubling:
      allreduce_recursive_doubling(data);
      break;
    case AllreduceAlgorithm::ReduceScatterAllgather:
      allreduce_rsag(data, false);
      break;
    case AllreduceAlgorithm::CpePipelined:
      allreduce_rsag(data, true);
      break;
  }
}

namespace {

// Plain elementwise accumulate.
void reduce_into(std::vector<double>& acc, const std::vector<double>& in) {
  SWRAMAN_REQUIRE(acc.size() == in.size(), "allreduce: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += in[i];
}

// The CPE-offloaded local reduction of paper Algorithm 3: the array is
// processed in LDM-sized blocks through a double-buffered pipeline. The
// numerics are identical; the chunked structure is what the Sunway cost
// model charges differently (see sunway/cost_model).
void reduce_into_pipelined(std::vector<double>& acc,
                           const std::vector<double>& in) {
  SWRAMAN_REQUIRE(acc.size() == in.size(), "allreduce: size mismatch");
  constexpr std::size_t kBlk = 256 * 1024 / 4 / sizeof(double);
  for (std::size_t base = 0; base < acc.size(); base += kBlk) {
    const std::size_t end = std::min(acc.size(), base + kBlk);
    for (std::size_t i = base; i < end; ++i) acc[i] += in[i];
  }
}

}  // namespace

void Communicator::allreduce_linear(std::vector<double>& data) {
  if (rank_ == 0) {
    for (std::size_t r = 1; r < size(); ++r) {
      reduce_into(data, recv(r, -201));
    }
  } else {
    send(0, data, -201);
  }
  broadcast(data, 0);
}

void Communicator::allreduce_ring(std::vector<double>& data) {
  const std::size_t p = size();
  const std::size_t n = data.size();
  if (n == 0) {
    barrier();
    return;
  }
  // Chunk boundaries.
  const auto lo = [&](std::size_t c) { return c * n / p; };
  const auto hi = [&](std::size_t c) { return (c + 1) * n / p; };
  const std::size_t next = (rank_ + 1) % p;
  const std::size_t prev = (rank_ + p - 1) % p;

  // Reduce-scatter: after p-1 steps, rank r owns the full sum of chunk
  // (r+1) mod p.
  for (std::size_t step = 0; step < p - 1; ++step) {
    const std::size_t send_chunk = (rank_ + p - step) % p;
    const std::size_t recv_chunk = (rank_ + p - step - 1) % p;
    std::vector<double> out(data.begin() + static_cast<long>(lo(send_chunk)),
                            data.begin() + static_cast<long>(hi(send_chunk)));
    send(next, out, -300 - static_cast<int>(step));
    const std::vector<double> in =
        recv(prev, -300 - static_cast<int>(step));
    for (std::size_t i = 0; i < in.size(); ++i) {
      data[lo(recv_chunk) + i] += in[i];
    }
  }
  // Allgather ring.
  for (std::size_t step = 0; step < p - 1; ++step) {
    const std::size_t send_chunk = (rank_ + 1 + p - step) % p;
    const std::size_t recv_chunk = (rank_ + p - step) % p;
    std::vector<double> out(data.begin() + static_cast<long>(lo(send_chunk)),
                            data.begin() + static_cast<long>(hi(send_chunk)));
    send(next, out, -400 - static_cast<int>(step));
    const std::vector<double> in =
        recv(prev, -400 - static_cast<int>(step));
    std::copy(in.begin(), in.end(),
              data.begin() + static_cast<long>(lo(recv_chunk)));
  }
}

void Communicator::allreduce_recursive_doubling(std::vector<double>& data) {
  const std::size_t p = size();
  // Fold the non-power-of-two remainder into the lower ranks first.
  std::size_t pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const std::size_t rem = p - pof2;

  long my_id = -1;  // id within the power-of-two group, -1 = folded out
  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 0) {
      send(rank_ + 1, data, -500);
      my_id = -1;
    } else {
      reduce_into(data, recv(rank_ - 1, -500));
      my_id = static_cast<long>(rank_ / 2);
    }
  } else {
    my_id = static_cast<long>(rank_ - rem);
  }

  if (my_id >= 0) {
    for (std::size_t mask = 1; mask < pof2; mask <<= 1) {
      const std::size_t partner_id =
          static_cast<std::size_t>(my_id) ^ mask;
      const std::size_t partner_rank = partner_id < rem
                                           ? 2 * partner_id + 1
                                           : partner_id + rem;
      send(partner_rank, data, -600 - static_cast<int>(mask));
      reduce_into(data, recv(partner_rank, -600 - static_cast<int>(mask)));
    }
  }

  if (rank_ < 2 * rem) {
    if (rank_ % 2 == 1) {
      send(rank_ - 1, data, -700);
    } else {
      data = recv(rank_ + 1, -700);
    }
  }
}

void Communicator::allreduce_rsag(std::vector<double>& data,
                                  bool pipelined_local) {
  const std::size_t p = size();
  const std::size_t n = data.size();
  const auto combine = pipelined_local ? reduce_into_pipelined : reduce_into;

  // Non-power-of-two: fall back to linear fold into recursive halving is
  // intricate; a ring pass keeps correctness with the same local-reduce
  // kernel. Power-of-two uses true recursive halving + doubling.
  std::size_t pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  if (pof2 != p || n < p) {
    // Same communication volume class; local reductions go through the
    // (possibly pipelined) combine.
    if (rank_ == 0) {
      for (std::size_t r = 1; r < p; ++r) combine(data, recv(r, -801));
    } else {
      send(0, data, -801);
    }
    broadcast(data, 0);
    return;
  }

  // Recursive halving reduce-scatter: at step k my active window halves.
  std::size_t lo = 0;
  std::size_t hi = n;
  for (std::size_t mask = p / 2; mask >= 1; mask >>= 1) {
    const std::size_t partner = rank_ ^ mask;
    const std::size_t mid = lo + (hi - lo) / 2;
    const bool keep_low = (rank_ & mask) == 0;
    const std::size_t send_lo = keep_low ? mid : lo;
    const std::size_t send_hi = keep_low ? hi : mid;
    std::vector<double> out(data.begin() + static_cast<long>(send_lo),
                            data.begin() + static_cast<long>(send_hi));
    send(partner, out, -900 - static_cast<int>(mask));
    const std::vector<double> in =
        recv(partner, -900 - static_cast<int>(mask));
    const std::size_t keep_lo = keep_low ? lo : mid;
    std::vector<double> window(data.begin() + static_cast<long>(keep_lo),
                               data.begin() +
                                   static_cast<long>(keep_lo + in.size()));
    combine(window, in);
    std::copy(window.begin(), window.end(),
              data.begin() + static_cast<long>(keep_lo));
    if (keep_low) {
      hi = mid;
    } else {
      lo = mid;
    }
  }

  // Recursive doubling allgather: windows merge back.
  for (std::size_t mask = 1; mask < p; mask <<= 1) {
    const std::size_t partner = rank_ ^ mask;
    std::vector<double> out(data.begin() + static_cast<long>(lo),
                            data.begin() + static_cast<long>(hi));
    send(partner, out, -1000 - static_cast<int>(mask));
    const std::vector<double> in =
        recv(partner, -1000 - static_cast<int>(mask));
    if ((rank_ & mask) == 0) {
      // Partner owned the upper half adjacent to ours.
      std::copy(in.begin(), in.end(), data.begin() + static_cast<long>(hi));
      hi += in.size();
    } else {
      std::copy(in.begin(), in.end(),
                data.begin() + static_cast<long>(lo - in.size()));
      lo -= in.size();
    }
  }
}

Communicator Communicator::split(int color) {
  auto [child, new_rank] = ctx_->split(rank_, color);
  return Communicator(child, new_rank);
}

void run_spmd(std::size_t n_ranks,
              const std::function<void(Communicator&)>& fn,
              const CommConfig& config) {
  SWRAMAN_REQUIRE(n_ranks >= 1, "run_spmd: need at least one rank");
  auto ctx = std::make_shared<CommContext>(n_ranks, config);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(n_ranks);
  threads.reserve(n_ranks);
  for (std::size_t r = 0; r < n_ranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Communicator comm(ctx, r);
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace swraman::parallel
