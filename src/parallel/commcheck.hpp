#pragma once

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <vector>

#include "common/lockcheck.hpp"

// commcheck — p2p protocol verifier over Communicator tags (DESIGN.md
// §14), the tag-fabric analogue of swcheck's RMA-mesh mailbox checker.
// The transport models acknowledged delivery, so three protocol bugs
// are invisible to the numerics and to TSan alike:
//
//   - p2p.orphaned_message: a message still sitting in a mailbox when
//     its CommContext is destroyed — someone sent and nobody received
//     (a stopped server loop, a response to a requester that gave up).
//     Requesters that *deliberately* give up (bounded-timeout remote
//     cache lookups) declare it with abandon(), which tolerates one
//     leftover message per call; only unexplained leftovers report.
//   - p2p.tag_mismatch: a payload whose length disagrees with the wire
//     type bound to its tag (bind_tag / bind_default). Caught at the
//     send site (throwing, with provenance); recv-side mismatches are
//     noted, since poll loops must not unwind.
//   - p2p.recv_cycle: ranks of one context blocked in recv() on each
//     other in a cycle while every awaited mailbox is empty — nobody
//     can make progress until a timeout breaks the ring. Noted (not
//     thrown): the waiting threads recover via TimeoutError, but the
//     protocol bug is real and the note carries every rank's recv site.
//
// All entry points are no-ops unless lockcheck::enabled(); violations
// share lockcheck's tally, counter sinks, and swraman-lockcheck-v1
// summary. Context ids come from register_context (0 = unchecked).

namespace swraman::parallel::commcheck {

// Registers a checked context of n_ranks endpoints; returns its id, or
// 0 when checking is disabled (every other call ignores ctx id 0).
std::uint64_t register_context(std::size_t n_ranks);

// Declares the wire type of a tag: payloads sent on it must have
// exactly expect_len doubles. bind_default covers every non-negative
// (user) tag without an explicit binding — the dynamic-response-tag
// idiom where one request tag fans out to per-call response tags of a
// single shape. Internal collective tags (< 0) are never matched by
// the default binding.
void bind_tag(std::uint64_t ctx, int tag, std::size_t expect_len,
              const char* name);
void bind_default(std::uint64_t ctx, std::size_t expect_len,
                  const char* name);

// Tolerates one in-flight message on (src -> dst, tag) at context
// destruction — the requester timed out and walked away, so either the
// unconsumed request or the too-late response may legitimately remain.
void abandon(std::uint64_t ctx, std::size_t src, std::size_t dst, int tag);

// Send-side hook: checks the payload length against the tag binding;
// throws CheckViolation(p2p.tag_mismatch) with the send site on
// disagreement.
void on_send(std::uint64_t ctx, std::size_t src, std::size_t dst, int tag,
             std::size_t len,
             std::source_location loc = std::source_location::current());

// Recv-side hook: same check, but notes instead of throwing (receive
// paths include server poll threads that must not unwind).
void on_recv(std::uint64_t ctx, std::size_t src, std::size_t dst, int tag,
             std::size_t len);

// Blocking-recv wait graph. recv_wait_begin records "waiter is blocked
// on (src, tag)" and checks whether the waiting edges of this context
// now form a cycle in which every awaited mailbox is empty; if so it
// notes p2p.recv_cycle with the full rank chain and each waiter's recv
// site. Only user tags (>= 0) are tracked: internal collective tags
// (< 0) may wait on extra communication threads, where one rank holds
// several concurrent waits and the rank-keyed graph would report
// cycles that are not stalls. The probe is called synchronously, under whatever lock the
// caller already holds that makes reading the mailbox table safe.
struct MailProbe {
  bool (*empty)(void* self, std::size_t src, std::size_t dst,
                int tag) = nullptr;
  void* self = nullptr;
};
void recv_wait_begin(std::uint64_t ctx, std::size_t waiter, std::size_t src,
                     int tag, const MailProbe& probe,
                     std::source_location loc = std::source_location::current());
void recv_wait_end(std::uint64_t ctx, std::size_t waiter);

// Context-destruction hook: leftovers are the non-empty mailboxes; any
// count beyond the abandon() tolerance notes p2p.orphaned_message.
// Releases all per-context checker state.
struct Leftover {
  std::size_t src = 0;
  std::size_t dst = 0;
  int tag = 0;
  std::size_t count = 0;
};
void on_context_destroyed(std::uint64_t ctx,
                          const std::vector<Leftover>& leftovers);

// Clears all contexts, bindings, tolerances, and wait edges (tests).
void reset_for_testing();

}  // namespace swraman::parallel::commcheck
