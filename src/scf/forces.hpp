#pragma once

#include <memory>
#include <vector>

#include "common/vec3.hpp"
#include "scf/scf_engine.hpp"

// Nuclear forces for a converged SCF state, exact for the implemented
// energy surface (basis, quadrature grid, multipole solver and all): the
// force on coordinate k is the central difference of the constrained
// Lagrangian
//
//   L(R) = E[P; R] - Tr(W S(R)),   W = C f eps C^T,
//
// with the converged state (P, W) frozen and everything explicitly
// R-dependent — basis centers, integration grid, external potential,
// Hartree solve — rebuilt at R +/- h. By the stationarity of the SCF
// solution the state response drops out (envelope theorem on the
// orthonormality-constrained Lagrangian; the -Tr(W dS) term is the Pulay
// force), so the difference converges to -dE_scf/dR at O(h^2) without a
// single additional SCF cycle. This matters doubly for the bec tier:
// pure Hellmann-Feynman forces are wrong by O(1) in an atom-centered
// basis, and on the coarse test grids even the analytic Pulay correction
// misses the quadrature-motion terms this formulation gets for free.
//
// The displaced sibling engines are field-independent (a uniform field
// never enters S, T, v_ext), so one evaluator serves every point of the
// bec field stencil; the field enters the Lagrangian only through the
// explicit +F.r electron term and the -Z_A F.R_A nuclear term.

namespace swraman::scf {

class ForceEvaluator {
 public:
  // Builds the 6N displaced sibling engines eagerly (each is a full
  // grid + basis + matrix build, no SCF). Memory is O(N) engines — the
  // same order as the displacement pipeline's transient peak.
  ForceEvaluator(std::vector<grid::AtomSite> atoms, ScfOptions options,
                 double displacement = 1e-3);

  // -dE/dR (flat 3N, Hartree/Bohr) for a state converged by an ScfEngine
  // with the same atoms and options whose ScfOptions::electric_field was
  // `field`. The state must carry coefficients/occupations/eigenvalues
  // (any GroundState returned by ScfEngine::solve does).
  [[nodiscard]] std::vector<double> forces(const GroundState& gs,
                                           const Vec3& field = {}) const;

  [[nodiscard]] double displacement() const { return displacement_; }

 private:
  // L at one displaced engine for the frozen state.
  [[nodiscard]] double lagrangian(const ScfEngine& engine,
                                  const GroundState& gs,
                                  const linalg::Matrix& w_mat,
                                  const Vec3& field) const;

  std::vector<grid::AtomSite> atoms_;
  ScfOptions options_;
  double displacement_;
  // displaced_[2 * coord + (sign < 0)] — engine with coordinate `coord`
  // moved by +/- displacement_.
  std::vector<std::unique_ptr<ScfEngine>> displaced_;
};

}  // namespace swraman::scf
