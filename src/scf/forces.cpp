#include "scf/forces.hpp"

#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "xc/lda.hpp"

namespace swraman::scf {

ForceEvaluator::ForceEvaluator(std::vector<grid::AtomSite> atoms,
                               ScfOptions options, double displacement)
    : atoms_(std::move(atoms)),
      options_(std::move(options)),
      displacement_(displacement) {
  SWRAMAN_REQUIRE(!atoms_.empty(), "ForceEvaluator: no atoms");
  SWRAMAN_REQUIRE(displacement_ > 0.0,
                  "ForceEvaluator: displacement must be positive");
  SWRAMAN_TRACE_SPAN(span, "scf.forces.build");
  // The field never enters S, T, v_ext or the grid, so the displaced
  // engines are built field-free and shared by every field evaluation.
  options_.electric_field = {};
  const std::size_t n_coords = 3 * atoms_.size();
  if (span.active()) span.attr("coords", static_cast<double>(n_coords));
  displaced_.resize(2 * n_coords);
  for (std::size_t coord = 0; coord < n_coords; ++coord) {
    for (int s = 0; s < 2; ++s) {
      std::vector<grid::AtomSite> moved = atoms_;
      moved[coord / 3].pos[static_cast<int>(coord % 3)] +=
          (s == 0 ? +displacement_ : -displacement_);
      displaced_[2 * coord + static_cast<std::size_t>(s)] =
          std::make_unique<ScfEngine>(std::move(moved), options_);
    }
  }
}

double ForceEvaluator::lagrangian(const ScfEngine& engine,
                                  const GroundState& gs,
                                  const linalg::Matrix& w_mat,
                                  const Vec3& field) const {
  const grid::MolecularGrid& g = engine.grid();
  const std::size_t nbf = engine.basis().size();
  SWRAMAN_REQUIRE(gs.density.rows() == nbf && gs.density.cols() == nbf,
                  "ForceEvaluator: state basis dimension mismatch");
  const bool has_field = field.norm2() > 0.0;

  // Matrix terms: Tr(P T') - Tr(W S').
  double e = 0.0;
  const linalg::Matrix& t = engine.kinetic();
  const linalg::Matrix& s_mat = engine.overlap();
  for (std::size_t u = 0; u < nbf; ++u) {
    for (std::size_t v = 0; v < nbf; ++v) {
      e += gs.density(u, v) * t(u, v) - w_mat(u, v) * s_mat(u, v);
    }
  }

  // Grid terms with the frozen density matrix expanded in the displaced
  // basis: external, Hartree (E_H = 1/2 integral v_H n), XC, field.
  const std::vector<double> n = engine.density_on_grid(gs.density);
  const std::vector<double> v_h = engine.hartree().solve_on_grid(n);
  const std::vector<double>& v_ext = engine.external_potential();
  const xc::Functional functional = engine.options().functional;
  for (std::size_t p = 0; p < g.size(); ++p) {
    const double wn = g.weights[p] * n[p];
    e += wn * (v_ext[p] + 0.5 * v_h[p] + xc::evaluate(functional, n[p]).eps);
    if (has_field) e += wn * dot(field, g.points[p]);
  }

  // Nuclear-nuclear repulsion and the nuclear field energy -Z_A F.R_A
  // (the sign pairs with the electron +F.r convention of solve_attempt,
  // so dL/dF reproduces -gs.dipole).
  for (std::size_t a = 0; a < g.atoms.size(); ++a) {
    const double za = engine.basis().species_of(a).z_nuclear;
    for (std::size_t b = a + 1; b < g.atoms.size(); ++b) {
      e += za * engine.basis().species_of(b).z_nuclear /
           distance(g.atoms[a].pos, g.atoms[b].pos);
    }
    if (has_field) e -= za * dot(field, g.atoms[a].pos);
  }
  return e;
}

std::vector<double> ForceEvaluator::forces(const GroundState& gs,
                                           const Vec3& field) const {
  SWRAMAN_TRACE_SPAN(span, "scf.forces");
  obs::count("scf.force_evals");
  const std::size_t n_coords = 3 * atoms_.size();
  const std::size_t nbf = gs.density.rows();

  // Energy-weighted density matrix W = sum_j f_j eps_j c_j c_j^T.
  linalg::Matrix w_mat(nbf, nbf);
  for (std::size_t j = 0; j < gs.eigenvalues.size(); ++j) {
    const double fe = gs.occupations[j] * gs.eigenvalues[j];
    if (fe == 0.0) continue;
    for (std::size_t u = 0; u < nbf; ++u) {
      const double cu = gs.coefficients(u, j);
      if (cu == 0.0) continue;
      for (std::size_t v = 0; v < nbf; ++v) {
        w_mat(u, v) += fe * cu * gs.coefficients(v, j);
      }
    }
  }

  std::vector<double> f(n_coords, 0.0);
  for (std::size_t coord = 0; coord < n_coords; ++coord) {
    const double lp = lagrangian(*displaced_[2 * coord], gs, w_mat, field);
    const double lm = lagrangian(*displaced_[2 * coord + 1], gs, w_mat, field);
    f[coord] = -(lp - lm) / (2.0 * displacement_);
  }
  return f;
}

}  // namespace swraman::scf
