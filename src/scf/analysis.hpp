#pragma once

#include <vector>

#include "scf/scf_engine.hpp"

// Post-SCF analysis utilities: Mulliken populations/charges and orbital
// character — the structural-interpretation layer a downstream user of the
// Raman pipeline reaches for first.

namespace swraman::scf {

struct MullikenAnalysis {
  // Gross electron population per atom: sum_{u on A} (P S)_uu.
  std::vector<double> populations;
  // Partial charges q_A = Z_A(valence) - population_A.
  std::vector<double> charges;
  // Total electrons (sum of populations; equals Tr(P S)).
  double total_electrons = 0.0;
};

// Mulliken population analysis of a converged ground state.
MullikenAnalysis mulliken(const ScfEngine& engine, const GroundState& gs);

// Fraction of molecular orbital `mo` living on atom `atom` (Mulliken
// decomposition of a single MO): sum_{u on A} sum_v C_u C_v S_uv.
double orbital_on_atom(const ScfEngine& engine, const GroundState& gs,
                       std::size_t mo, std::size_t atom);

}  // namespace swraman::scf
