#include "scf/scf_engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "linalg/eigen.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"

namespace swraman::scf {

namespace {

// Extracts the local block P(fn_ids, fn_ids) of a global matrix.
linalg::Matrix local_block(const linalg::Matrix& global,
                           const std::vector<std::size_t>& ids) {
  linalg::Matrix loc(ids.size(), ids.size());
  for (std::size_t a = 0; a < ids.size(); ++a)
    for (std::size_t b = 0; b < ids.size(); ++b)
      loc(a, b) = global(ids[a], ids[b]);
  return loc;
}

}  // namespace

namespace {

// Wires the real species free-atom densities into the Hirshfeld partition
// when the caller requested it without supplying a model.
ScfOptions prepare_options(ScfOptions options) {
  if (options.grid.partition == grid::PartitionScheme::Hirshfeld &&
      !options.grid.free_atom_density) {
    const basis::SpeciesOptions species_opt = options.species;
    options.grid.free_atom_density = [species_opt](int z, double r) {
      return basis::species(z, species_opt).density_value(r);
    };
  }
  return options;
}

}  // namespace

ScfEngine::ScfEngine(std::vector<grid::AtomSite> atoms, ScfOptions options)
    : ScfEngine(std::move(atoms), std::move(options), GridPartition{}) {}

ScfEngine::ScfEngine(std::vector<grid::AtomSite> atoms, ScfOptions options,
                     GridPartition partition)
    : options_(prepare_options(std::move(options))),
      grid_(grid::build_molecular_grid(atoms, options_.grid)),
      basis_(std::move(atoms), options_.species),
      batches_(grid::make_batches(grid_, options_.batching)),
      partition_(std::move(partition)),
      hartree_(grid_, options_.multipole_lmax, options_.hartree_backend,
               options_.fmm) {
  SWRAMAN_REQUIRE(!partition_.active() ||
                      static_cast<bool>(partition_.allreduce),
                  "ScfEngine: active partition needs an allreduce");
  SWRAMAN_REQUIRE(partition_.rank < std::max<std::size_t>(partition_.n_ranks, 1),
                  "ScfEngine: partition rank out of range");
  // Level-2 batch distribution (paper Algorithm 1).
  batch_owner_ =
      grid::balance_batches(batches_, std::max<std::size_t>(1, partition_.n_ranks))
          .owner;
  build_matrices();
}

void ScfEngine::reduce(double* data, std::size_t n) const {
  if (partition_.active()) partition_.allreduce(data, n);
}

void ScfEngine::reduce_matrix(linalg::Matrix& m) const {
  reduce(m.data(), m.rows() * m.cols());
}

std::function<void()> ScfEngine::reduce_async(double* data,
                                              std::size_t n) const {
  if (!partition_.active() || n == 0) return [] {};
  if (partition_.iallreduce) return partition_.iallreduce(data, n);
  // No non-blocking hook: complete the collective now so the returned
  // functor never touches partition state after the caller moved on.
  partition_.allreduce(data, n);
  return [] {};
}

std::function<void()> ScfEngine::reduce_matrix_async(linalg::Matrix& m) const {
  return reduce_async(m.data(), m.rows() * m.cols());
}

void ScfEngine::build_matrices() {
  SWRAMAN_TRACE_SPAN(span, "scf.build_matrices");
  const std::size_t nbf = basis_.size();
  if (span.active()) {
    span.attr("nbf", static_cast<double>(nbf));
    span.attr("batches", static_cast<double>(batches_.size()));
    span.attr("grid_points", static_cast<double>(grid_.size()));
  }
  s_ = linalg::Matrix(nbf, nbf);
  t_ = linalg::Matrix(nbf, nbf);
  v_ext_.assign(grid_.size(), 0.0);

  // External potential: -Z/r per atom (all-electron) or the tabulated local
  // ionic pseudopotential.
  for (std::size_t p = 0; p < grid_.size(); ++p) {
    double v = 0.0;
    for (std::size_t a = 0; a < grid_.atoms.size(); ++a) {
      const basis::Species& sp = basis_.species_of(a);
      const double r =
          std::max(distance(grid_.points[p], grid_.atoms[a].pos), 1e-10);
      v += sp.has_v_ion ? sp.v_ion_value(r) : -sp.z_nuclear / r;
    }
    v_ext_[p] = v;
  }

  // Per-batch caches + overlap and kinetic matrices.
  batch_data_.resize(batches_.size());
  std::vector<Vec3> pts;
  linalg::Matrix lap;
  for (std::size_t b = 0; b < batches_.size(); ++b) {
    if (partition_.active() && batch_owner_[b] != partition_.rank) continue;
    const grid::Batch& batch = batches_[b];
    BatchData& data = batch_data_[b];
    data.pt_ids = batch.point_ids;

    double radius = 0.0;
    pts.resize(batch.size());
    for (std::size_t k = 0; k < batch.size(); ++k) {
      pts[k] = grid_.points[batch.point_ids[k]];
      radius = std::max(radius, distance(pts[k], batch.center));
    }
    data.fn_ids = basis_.local_functions(batch.center, radius);
    basis_.evaluate(data.fn_ids, pts.data(), pts.size(), data.values, &lap);

    // S_uv += sum_p w_p chi_u chi_v ; T_uv += -1/2 sum_p w_p chi_u lap_v.
    const std::size_t nloc = data.fn_ids.size();
    for (std::size_t a = 0; a < nloc; ++a) {
      const std::size_t ga = data.fn_ids[a];
      for (std::size_t bfn = 0; bfn < nloc; ++bfn) {
        const std::size_t gb = data.fn_ids[bfn];
        double sv = 0.0;
        double tv = 0.0;
        for (std::size_t k = 0; k < batch.size(); ++k) {
          const double w = grid_.weights[batch.point_ids[k]];
          sv += w * data.values(a, k) * data.values(bfn, k);
          tv += w * data.values(a, k) * lap(bfn, k);
        }
        s_(ga, gb) += sv;
        t_(ga, gb) += -0.5 * tv;
      }
    }
  }
  // Both reductions in flight at once: T's exchange overlaps S's (and the
  // orthogonalizer below only needs S once its wait returns).
  const std::function<void()> wait_s = reduce_matrix_async(s_);
  const std::function<void()> wait_t = reduce_matrix_async(t_);
  wait_s();
  wait_t();
  s_.symmetrize();
  t_.symmetrize();

  // Canonical orthogonalizer with eigenvalue filtering: X = U s^{-1/2}
  // restricted to eigenvalues above the floor (near-linear-dependent
  // combinations of diffuse functions are projected out).
  const linalg::EigenResult se = linalg::eigh(s_);
  std::size_t kept = 0;
  for (double v : se.values) {
    if (v > options_.s_eigen_floor) ++kept;
  }
  SWRAMAN_REQUIRE(kept > 0, "ScfEngine: overlap matrix numerically singular");
  x_ = linalg::Matrix(basis_.size(), kept);
  std::size_t col = 0;
  for (std::size_t j = 0; j < se.values.size(); ++j) {
    if (se.values[j] <= options_.s_eigen_floor) continue;
    const double inv_sqrt = 1.0 / std::sqrt(se.values[j]);
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      x_(i, col) = se.vectors(i, j) * inv_sqrt;
    }
    ++col;
  }
}

std::vector<double> ScfEngine::density_on_grid(
    const linalg::Matrix& density_matrix) const {
  std::vector<double> n;
  density_on_grid_async(density_matrix, &n)();
  return n;
}

std::function<void()> ScfEngine::density_on_grid_async(
    const linalg::Matrix& density_matrix, std::vector<double>* out) const {
  SWRAMAN_REQUIRE(out != nullptr, "density_on_grid_async: null output");
  std::vector<double>& n = *out;
  n.assign(grid_.size(), 0.0);
  // The local compute runs slice-by-slice (balanced contiguous batch runs)
  // — the granularity at which communication for earlier work pipelines
  // under later slices.
  const std::vector<grid::BatchSlice> slices =
      grid::slice_batches(batches_, 4);
  for (const grid::BatchSlice& slice : slices) {
    for (std::size_t b = slice.first; b < slice.last; ++b) {
      const BatchData& data = batch_data_[b];
      const std::size_t nloc = data.fn_ids.size();
      if (nloc == 0) continue;  // also skips batches owned by other ranks
      const linalg::Matrix p_loc = local_block(density_matrix, data.fn_ids);
      // tmp = P_loc * values; n_p = sum_a values(a,p) tmp(a,p).
      const linalg::Matrix tmp = p_loc * data.values;
      for (std::size_t k = 0; k < data.pt_ids.size(); ++k) {
        double acc = 0.0;
        for (std::size_t a = 0; a < nloc; ++a) {
          acc += data.values(a, k) * tmp(a, k);
        }
        n[data.pt_ids[k]] = acc;
      }
    }
  }
  // Ranks fill disjoint point subsets; the sum assembles the full density.
  return reduce_async(n.data(), n.size());
}

linalg::Matrix ScfEngine::integrate_matrix(
    const std::vector<double>& potential_on_grid) const {
  linalg::Matrix m;
  integrate_matrix_async(potential_on_grid, &m)();
  return m;
}

std::function<void()> ScfEngine::integrate_matrix_async(
    const std::vector<double>& potential_on_grid, linalg::Matrix* out) const {
  SWRAMAN_REQUIRE(potential_on_grid.size() == grid_.size(),
                  "integrate_matrix: potential size mismatch");
  SWRAMAN_REQUIRE(out != nullptr, "integrate_matrix_async: null output");
  const std::size_t nbf = basis_.size();
  linalg::Matrix& m = *out;
  m = linalg::Matrix(nbf, nbf);
  linalg::Matrix scaled;
  for (const BatchData& data : batch_data_) {
    const std::size_t nloc = data.fn_ids.size();
    const std::size_t npts = data.pt_ids.size();
    if (nloc == 0) continue;
    scaled = data.values;
    for (std::size_t k = 0; k < npts; ++k) {
      const double wv = grid_.weights[data.pt_ids[k]] *
                        potential_on_grid[data.pt_ids[k]];
      for (std::size_t a = 0; a < nloc; ++a) scaled(a, k) *= wv;
    }
    // M_loc = values * scaled^T, scattered into the global matrix — the
    // paper's large-array reduction arr[idx] += val (Sec. 3.3).
    const linalg::Matrix m_loc = linalg::a_bt(data.values, scaled);
    for (std::size_t a = 0; a < nloc; ++a)
      for (std::size_t b = 0; b < nloc; ++b)
        m(data.fn_ids[a], data.fn_ids[b]) += 0.5 * (m_loc(a, b) + m_loc(b, a));
  }
  return reduce_matrix_async(m);
}

linalg::Matrix ScfEngine::dipole_matrix(int axis) const {
  linalg::Matrix m;
  dipole_matrix_async(axis, &m)();
  return m;
}

std::function<void()> ScfEngine::dipole_matrix_async(
    int axis, linalg::Matrix* out) const {
  SWRAMAN_REQUIRE(axis >= 0 && axis < 3, "dipole_matrix: axis in [0,3)");
  std::vector<double> coord(grid_.size());
  for (std::size_t p = 0; p < grid_.size(); ++p) {
    coord[p] = grid_.points[p][axis];
  }
  return integrate_matrix_async(coord, out);
}

std::vector<double> ScfEngine::fermi_occupations(
    const std::vector<double>& eigenvalues, double n_electrons,
    double* fermi) const {
  const double kt = std::max(options_.smearing, 1e-8);
  const auto count = [&](double mu) {
    double n = 0.0;
    for (double e : eigenvalues) {
      n += 2.0 / (1.0 + std::exp((e - mu) / kt));
    }
    return n;
  };
  double lo = eigenvalues.front() - 10.0;
  double hi = eigenvalues.back() + 10.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (count(mid) < n_electrons) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double mu = 0.5 * (lo + hi);
  if (fermi != nullptr) *fermi = mu;
  std::vector<double> occ(eigenvalues.size());
  for (std::size_t i = 0; i < occ.size(); ++i) {
    occ[i] = 2.0 / (1.0 + std::exp((eigenvalues[i] - mu) / kt));
  }
  return occ;
}

void ScfEngine::solve_eigenproblem(const linalg::Matrix& h,
                                   std::vector<double>& eigenvalues,
                                   linalg::Matrix& coefficients) const {
  // H' = X^T H X, standard eigenproblem in the filtered orthonormal basis.
  const linalg::Matrix hx = linalg::at_b(x_, h * x_);
  const linalg::EigenResult res = linalg::eigh(hx);
  eigenvalues = res.values;
  coefficients = x_ * res.vectors;
}

GroundState ScfEngine::solve(const linalg::Matrix* initial_density) {
  SWRAMAN_TRACE_SPAN(span, "scf.solve");
  obs::count("scf.solves");
  const int attempts = std::max(1, options_.recovery_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    bool diverged = false;
    GroundState gs = solve_attempt(initial_density, attempt, &diverged);
    if (!diverged) {
      if (span.active()) {
        span.attr("attempts", static_cast<double>(attempt));
        span.attr("iterations", static_cast<double>(gs.iterations));
        span.attr("converged", gs.converged ? 1.0 : 0.0);
      }
      return gs;
    }
    obs::count("scf.recoveries");
    if (attempt < attempts) {
      log::warn("scf.recovery: divergence detected (attempt ", attempt, "/",
                attempts, "): halving mixing to ",
                options_.mixing / static_cast<double>(1 << attempt),
                ", flushing DIIS history, restarting cycle");
    }
  }
  throw ConvergenceError("ScfEngine::solve: cycle diverged in all " +
                         std::to_string(attempts) + " recovery attempts");
}

GroundState ScfEngine::solve_attempt(const linalg::Matrix* initial_density,
                                     int attempt, bool* diverged) {
  *diverged = false;
  // Recovery posture: halve the linear mixing and lengthen the damped
  // warm-up on every retry. The DIIS history is per-attempt state, so a
  // restart flushes it automatically.
  const double mixing =
      options_.mixing / static_cast<double>(1 << (attempt - 1));
  const int damped_iterations = 3 * attempt;
  const std::size_t nbf = basis_.size();
  const double n_elec = basis_.n_electrons();
  GroundState gs;

  // Nuclear repulsion (ionic point charges for pseudized species).
  for (std::size_t a = 0; a < grid_.atoms.size(); ++a) {
    for (std::size_t b = a + 1; b < grid_.atoms.size(); ++b) {
      gs.nuclear_repulsion +=
          basis_.species_of(a).z_nuclear * basis_.species_of(b).z_nuclear /
          distance(grid_.atoms[a].pos, grid_.atoms[b].pos);
    }
  }

  // Initial density: superposition of free atoms, or a restart from a
  // caller-provided density matrix (nearby geometry / field).
  std::vector<double> n(grid_.size());
  if (initial_density != nullptr && initial_density->rows() == nbf &&
      initial_density->cols() == nbf) {
    n = density_on_grid(*initial_density);
  } else {
    for (std::size_t p = 0; p < grid_.size(); ++p) {
      n[p] = basis_.free_atom_density(grid_.points[p]);
    }
  }

  // Finite-field contribution to the effective potential, +F.r.
  std::vector<double> v_field(grid_.size(), 0.0);
  const bool has_field = options_.electric_field.norm2() > 0.0;
  if (has_field) {
    for (std::size_t p = 0; p < grid_.size(); ++p) {
      v_field[p] = dot(options_.electric_field, grid_.points[p]);
    }
  }

  linalg::Matrix p_old(nbf, nbf);
  std::deque<linalg::Matrix> diis_h;
  std::deque<linalg::Matrix> diis_e;
  double e_prev = 0.0;
  std::vector<double> v_eff(grid_.size());

  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    SWRAMAN_TRACE_SPAN(iter_span, "scf.iter");
    gs.iterations = iter;
    obs::count("scf.iterations");

    // Forced-divergence injection: poison the density the way a blown-up
    // mixing step or corrupted reduction would.
    if (fault::should_fire(fault::kScfDiverge)) {
      log::warn("fault ", fault::kScfDiverge,
                ": poisoning SCF density at iteration ", iter);
      n[0] = std::numeric_limits<double>::quiet_NaN();
    }

    // Effective potential from the current density.
    double e_h = 0.0;
    double e_xc = 0.0;
    double e_vxc = 0.0;
    {
      SWRAMAN_TRACE_SCOPE("scf.veff");
      const std::vector<double> v_h = hartree_.solve_on_grid(n);
      for (std::size_t p = 0; p < grid_.size(); ++p) {
        const xc::XcPoint xcp = xc::evaluate(options_.functional, n[p]);
        v_eff[p] = v_ext_[p] + v_h[p] + xcp.v + v_field[p];
        const double wn = grid_.weights[p] * n[p];
        e_h += 0.5 * wn * v_h[p];
        e_xc += wn * xcp.eps;
        e_vxc += wn * xcp.v;
      }
    }
    // Divergence check before anything reaches the eigensolver: e_h sums
    // every grid point, so any non-finite density or potential lands here.
    if (!std::isfinite(e_h) || !std::isfinite(e_xc)) {
      log::warn("scf: non-finite effective potential at iteration ", iter,
                " — aborting cycle for recovery");
      *diverged = true;
      return gs;
    }

    linalg::Matrix h(nbf, nbf);
    {
      SWRAMAN_TRACE_SCOPE("scf.hamiltonian");
      h = t_ + integrate_matrix(v_eff);
    }

    // Pulay DIIS on the Hamiltonian with commutator residuals.
    if (gs.iterations > 1) {
      linalg::Matrix e_mat = h * (p_old * s_) - s_ * (p_old * h);
      diis_h.push_back(h);
      diis_e.push_back(std::move(e_mat));
      if (static_cast<int>(diis_h.size()) > options_.diis_depth) {
        diis_h.pop_front();
        diis_e.pop_front();
      }
      const std::size_t m = diis_h.size();
      if (m >= 2) {
        linalg::Matrix b(m + 1, m + 1);
        std::vector<double> rhs(m + 1, 0.0);
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < m; ++j) {
            b(i, j) = linalg::trace_product(diis_e[i],
                                            diis_e[j].transposed());
          }
          b(i, m) = -1.0;
          b(m, i) = -1.0;
        }
        rhs[m] = -1.0;
        const linalg::Lu lu(b);
        if (!lu.singular()) {
          const std::vector<double> c = lu.solve(rhs);
          linalg::Matrix h_mix(nbf, nbf);
          for (std::size_t i = 0; i < m; ++i) {
            linalg::Matrix term = diis_h[i];
            term *= c[i];
            h_mix += term;
          }
          h = std::move(h_mix);
        }
      }
    }

    std::vector<double> eps;
    linalg::Matrix c;
    {
      SWRAMAN_TRACE_SCOPE("scf.eigensolve");
      solve_eigenproblem(h, eps, c);
    }

    double fermi = 0.0;
    const std::vector<double> occ = fermi_occupations(eps, n_elec, &fermi);

    // P = C f C^T over (significantly) occupied states.
    linalg::Matrix p_new(nbf, nbf);
    for (std::size_t j = 0; j < eps.size(); ++j) {
      if (occ[j] < 1e-12) continue;
      for (std::size_t u = 0; u < nbf; ++u) {
        const double cu = occ[j] * c(u, j);
        if (cu == 0.0) continue;
        for (std::size_t v = 0; v < nbf; ++v) {
          p_new(u, v) += cu * c(v, j);
        }
      }
    }

    const double dp = (p_new - p_old).max_abs();

    // Full step in P (the initial free-atom density already carries the
    // right electron count). The next-iteration grid density is started
    // here so its cross-rank reduction runs while the energy bookkeeping
    // below executes — the paper's communication/compute overlap applied
    // to the SCF density mixing.
    p_old = p_new;
    std::vector<double> n_new;
    std::function<void()> wait_density;
    {
      SWRAMAN_TRACE_SCOPE("scf.density");
      wait_density = density_on_grid_async(p_old, &n_new);
    }

    double band = 0.0;
    for (std::size_t j = 0; j < eps.size(); ++j) band += occ[j] * eps[j];

    // Total energy with double-counting corrections (input density).
    double e_field = 0.0;
    if (has_field) {
      for (std::size_t p = 0; p < grid_.size(); ++p) {
        e_field += grid_.weights[p] * n[p] * v_field[p];
      }
    }
    (void)e_field;  // band energy already contains the field term
    gs.band_energy = band;
    gs.total_energy = band - e_h - e_vxc + e_xc + gs.nuclear_repulsion;

    const double de = std::abs(gs.total_energy - e_prev);
    e_prev = gs.total_energy;
    if (!std::isfinite(dp) || !std::isfinite(gs.total_energy)) {
      // Every rank reaches the same verdict (all inputs are reduced
      // quantities), so everyone abandons the cycle together — but the
      // in-flight reduction must still be drained first.
      wait_density();
      log::warn("scf: non-finite energy/density step at iteration ", iter,
                " — aborting cycle for recovery");
      *diverged = true;
      return gs;
    }

    gs.eigenvalues = eps;
    gs.occupations = occ;
    gs.coefficients = c;
    gs.density = p_old;
    gs.fermi_level = fermi;

    {
      SWRAMAN_TRACE_SCOPE("scf.density.wait");
      wait_density();
    }
    const double beta = (iter <= damped_iterations) ? mixing : 1.0;
    for (std::size_t p = 0; p < grid_.size(); ++p) {
      n[p] = (1.0 - beta) * n[p] + beta * n_new[p];
    }

    log::debug("SCF iter ", iter, ": E = ", gs.total_energy, " dP = ", dp,
               " dE = ", de);
    if (iter_span.active()) {
      iter_span.attr("dp", dp);
      iter_span.attr("de", de);
      obs::observe("scf.residual.dp", dp);
    }
    if (iter > 3 && dp < options_.density_tol && de < options_.energy_tol) {
      gs.converged = true;
      break;
    }
  }

  // HOMO-LUMO gap from the smeared occupations.
  double homo = -1e30;
  double lumo = 1e30;
  for (std::size_t j = 0; j < gs.eigenvalues.size(); ++j) {
    if (gs.occupations[j] >= 1.0) homo = std::max(homo, gs.eigenvalues[j]);
    if (gs.occupations[j] < 1.0) lumo = std::min(lumo, gs.eigenvalues[j]);
  }
  gs.homo_lumo_gap = lumo - homo;

  // Dipole moment: nuclei minus electrons.
  gs.dipole = {0.0, 0.0, 0.0};
  for (std::size_t a = 0; a < grid_.atoms.size(); ++a) {
    gs.dipole += basis_.species_of(a).z_nuclear * grid_.atoms[a].pos;
  }
  for (std::size_t p = 0; p < grid_.size(); ++p) {
    gs.dipole -= grid_.weights[p] * n[p] * grid_.points[p];
  }
  return gs;
}

}  // namespace swraman::scf
