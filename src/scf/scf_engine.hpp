#pragma once

#include <cstddef>
#include <vector>

#include <functional>

#include "basis/basis_set.hpp"
#include "common/vec3.hpp"
#include "fmm/backend.hpp"
#include "grid/atom_grid.hpp"
#include "grid/batch.hpp"
#include "grid/loadbalance.hpp"
#include "hartree/multipole.hpp"
#include "linalg/matrix.hpp"
#include "xc/lda.hpp"

// Self-consistent all-electron (or pseudized) Kohn-Sham DFT on numeric
// atom-centered grids — the ground-state stage that precedes every DFPT
// calculation in the paper (Fig. 2, upper box). The implementation mirrors
// the FHI-aims structure: batch-wise grid integration for every matrix
// element (the same kernels DFPT reuses), multipole (Delley) electrostatics,
// LDA exchange-correlation, Fermi smearing, and Pulay/DIIS acceleration.

namespace swraman::scf {

struct ScfOptions {
  basis::SpeciesOptions species;
  grid::GridSettings grid;
  grid::BatchingOptions batching;
  xc::Functional functional = xc::Functional::LdaPw92;
  int multipole_lmax = 6;
  // Hartree far-field backend: Direct keeps the dense per-point atom sum
  // (bitwise-stable reference), Fmm forces the octree fast multipole, Auto
  // picks by the cost-model crossover (src/fmm/backend.hpp).
  fmm::HartreeBackend hartree_backend = fmm::HartreeBackend::Direct;
  fmm::FmmOptions fmm;
  double density_tol = 1e-6;     // max |P_new - P_old|
  double energy_tol = 1e-7;      // Hartree
  int max_iterations = 80;
  double smearing = 1e-3;        // Fermi smearing width, Hartree
  int diis_depth = 6;
  double mixing = 0.4;           // linear fallback before DIIS kicks in
  // Automatic divergence recovery: when non-finite numbers appear in the
  // cycle (blow-up, injected NaN), the mixing is halved, the DIIS history
  // flushed, and the cycle restarted — up to this many attempts total
  // before ConvergenceError is thrown.
  int recovery_attempts = 3;
  double s_eigen_floor = 1e-7;   // overlap eigenvalue filter
  Vec3 electric_field{};         // uniform finite field (adds +F.r to v_eff)
};

// Level-2 parallelization hook (paper Fig. 4): when an engine is built
// with a partition, it owns only the integration batches Algorithm 1
// assigns to `rank`, and every grid-reduced quantity (S, T, matrix
// elements, densities) is summed across ranks through `allreduce` — the
// role MPI_Allreduce plays in the paper. The DFPT engine inherits the
// distribution automatically because its three kernels go through
// density_on_grid / integrate_matrix.
struct GridPartition {
  std::size_t rank = 0;
  std::size_t n_ranks = 1;
  // Element-wise sum of the buffer across ranks (collective).
  std::function<void(double*, std::size_t)> allreduce;
  // Optional non-blocking variant: starts the collective and returns a wait
  // functor; the buffer must not be read or written until that functor has
  // run (it fills the buffer with the reduced values). When absent, the
  // engine's *_async entry points fall back to completing the blocking
  // allreduce at start time. Collective-ordering rules follow
  // Communicator::iallreduce: every rank must start its reductions in the
  // same program order.
  std::function<std::function<void()>(double*, std::size_t)> iallreduce;

  [[nodiscard]] bool active() const { return n_ranks > 1; }
};

struct GroundState {
  bool converged = false;
  int iterations = 0;
  double total_energy = 0.0;
  double band_energy = 0.0;
  double nuclear_repulsion = 0.0;
  double fermi_level = 0.0;
  double homo_lumo_gap = 0.0;
  std::vector<double> eigenvalues;
  std::vector<double> occupations;
  linalg::Matrix coefficients;  // column j = MO j (AO coefficients)
  linalg::Matrix density;       // P = C f C^T
  Vec3 dipole;                  // nuclear + electronic, atomic units
};

class ScfEngine {
 public:
  ScfEngine(std::vector<grid::AtomSite> atoms, ScfOptions options);

  // Distributed construction: this rank integrates only its Algorithm-1
  // share of the batches; collective sums go through partition.allreduce.
  ScfEngine(std::vector<grid::AtomSite> atoms, ScfOptions options,
            GridPartition partition);

  // Runs the SCF loop to self-consistency. When a previous density matrix
  // is supplied (same basis dimension — e.g. the equilibrium solution for
  // a displaced geometry in the Hessian / d(alpha)/dR loops), it seeds the
  // initial density instead of the free-atom superposition, typically
  // halving the iteration count. Divergence (non-finite energy/potential)
  // triggers automatic recovery per ScfOptions::recovery_attempts; throws
  // ConvergenceError when every attempt diverged.
  GroundState solve(const linalg::Matrix* initial_density = nullptr);

  // --- building blocks shared with the DFPT engine ---

  [[nodiscard]] const basis::BasisSet& basis() const { return basis_; }
  [[nodiscard]] const grid::MolecularGrid& grid() const { return grid_; }
  [[nodiscard]] const std::vector<grid::Batch>& batches() const {
    return batches_;
  }
  [[nodiscard]] const hartree::MultipoleSolver& poisson() const {
    return hartree_.solver();
  }
  // The backend-dispatching Hartree context (Direct / Fmm / Auto); the
  // v_eff, DFPT v1 and force paths all solve Poisson through it.
  [[nodiscard]] const fmm::HartreeContext& hartree() const {
    return hartree_;
  }
  [[nodiscard]] const linalg::Matrix& overlap() const { return s_; }
  [[nodiscard]] const linalg::Matrix& kinetic() const { return t_; }
  [[nodiscard]] const ScfOptions& options() const { return options_; }
  [[nodiscard]] const std::vector<grid::AtomSite>& atoms() const {
    return grid_.atoms;
  }

  // Electron density on the grid from a density matrix (paper kernel "n1"
  // when fed a response density matrix).
  [[nodiscard]] std::vector<double> density_on_grid(
      const linalg::Matrix& density_matrix) const;

  // Matrix elements of a multiplicative potential given on the grid
  // (paper kernel "H1"): M_uv = integral chi_u v(r) chi_v d3r.
  [[nodiscard]] linalg::Matrix integrate_matrix(
      const std::vector<double>& potential_on_grid) const;

  // Dipole integrals D^axis_uv = integral chi_u r_axis chi_v d3r.
  [[nodiscard]] linalg::Matrix dipole_matrix(int axis) const;

  // --- overlapped (non-blocking-reduction) variants ---
  //
  // Each computes this rank's local contribution into *out, starts the
  // cross-rank reduction through GridPartition::iallreduce, and returns a
  // wait functor. *out must stay alive and untouched until the functor has
  // run; after it, *out holds the same result the blocking variant returns.
  // With no partition (or no iallreduce hook) the returned functor is a
  // cheap no-op and *out is already final — callers need no special case.
  [[nodiscard]] std::function<void()> density_on_grid_async(
      const linalg::Matrix& density_matrix, std::vector<double>* out) const;
  [[nodiscard]] std::function<void()> integrate_matrix_async(
      const std::vector<double>& potential_on_grid, linalg::Matrix* out) const;
  [[nodiscard]] std::function<void()> dipole_matrix_async(
      int axis, linalg::Matrix* out) const;

  // External (nuclear / ionic) potential on the grid points.
  [[nodiscard]] const std::vector<double>& external_potential() const {
    return v_ext_;
  }

  // Nuclear forces for a converged ground state live in scf::ForceEvaluator
  // (scf/forces.hpp): the displaced-Lagrangian evaluation needs sibling
  // engines at perturbed geometries, which one engine cannot own cheaply.

  // Fermi occupations for the given spectrum; returns occupations summing
  // to n_electrons and sets fermi (chemical potential).
  [[nodiscard]] std::vector<double> fermi_occupations(
      const std::vector<double>& eigenvalues, double n_electrons,
      double* fermi) const;

  // Generalized eigensolve H C = S C eps with overlap-eigenvalue filtering
  // (canonical orthogonalization). Returns eigenvalues and AO coefficients.
  void solve_eigenproblem(const linalg::Matrix& h,
                          std::vector<double>& eigenvalues,
                          linalg::Matrix& coefficients) const;

 private:
  struct BatchData {
    std::vector<std::size_t> fn_ids;   // global basis functions touching it
    std::vector<std::size_t> pt_ids;   // global point ids
    linalg::Matrix values;             // (n_fns x n_pts)
  };

  void build_matrices();  // S, T, v_ext, batch caches
  void reduce(double* data, std::size_t n) const;
  void reduce_matrix(linalg::Matrix& m) const;
  // Starts a non-blocking reduction when the partition provides one
  // (blocking-at-start otherwise); the returned functor completes it.
  [[nodiscard]] std::function<void()> reduce_async(double* data,
                                                   std::size_t n) const;
  [[nodiscard]] std::function<void()> reduce_matrix_async(
      linalg::Matrix& m) const;

  // One full SCF cycle. `attempt` (1-based) scales the recovery response:
  // linear mixing is halved and the damped warm-up lengthened per retry.
  // Sets *diverged when non-finite numbers appeared and the cycle aborted.
  GroundState solve_attempt(const linalg::Matrix* initial_density,
                            int attempt, bool* diverged);

  ScfOptions options_;
  grid::MolecularGrid grid_;
  basis::BasisSet basis_;
  std::vector<grid::Batch> batches_;
  GridPartition partition_;
  std::vector<std::size_t> batch_owner_;
  fmm::HartreeContext hartree_;
  std::vector<BatchData> batch_data_;
  linalg::Matrix s_;
  linalg::Matrix t_;
  std::vector<double> v_ext_;
  linalg::Matrix x_;  // canonical orthogonalizer: X^T S X = I (filtered)
};

}  // namespace swraman::scf
