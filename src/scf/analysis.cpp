#include "scf/analysis.hpp"

#include "common/error.hpp"

namespace swraman::scf {

MullikenAnalysis mulliken(const ScfEngine& engine, const GroundState& gs) {
  SWRAMAN_REQUIRE(gs.converged, "mulliken: ground state not converged");
  const std::size_t n_atoms = engine.atoms().size();
  const linalg::Matrix ps = gs.density * engine.overlap();

  MullikenAnalysis out;
  out.populations.assign(n_atoms, 0.0);
  const auto& fns = engine.basis().functions();
  for (std::size_t u = 0; u < fns.size(); ++u) {
    out.populations[static_cast<std::size_t>(fns[u].atom)] += ps(u, u);
  }
  out.charges.resize(n_atoms);
  for (std::size_t a = 0; a < n_atoms; ++a) {
    out.charges[a] = engine.basis().species_of(a).z_valence -
                     out.populations[a];
    out.total_electrons += out.populations[a];
  }
  return out;
}

double orbital_on_atom(const ScfEngine& engine, const GroundState& gs,
                       std::size_t mo, std::size_t atom) {
  SWRAMAN_REQUIRE(mo < gs.eigenvalues.size(), "orbital_on_atom: MO index");
  SWRAMAN_REQUIRE(atom < engine.atoms().size(), "orbital_on_atom: atom");
  const linalg::Matrix& c = gs.coefficients;
  const linalg::Matrix& s = engine.overlap();
  const auto& fns = engine.basis().functions();
  double frac = 0.0;
  for (std::size_t u = 0; u < fns.size(); ++u) {
    if (static_cast<std::size_t>(fns[u].atom) != atom) continue;
    double sv = 0.0;
    for (std::size_t v = 0; v < fns.size(); ++v) {
      sv += c(v, mo) * s(u, v);
    }
    frac += c(u, mo) * sv;
  }
  return frac;
}

}  // namespace swraman::scf
