#include "sunway/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace swraman::sunway {

namespace {

constexpr double kGiga = 1e9;

// Number of independently streamed arrays a grid kernel tiles (coords,
// tabulated data, output — the paper's Fig. 5 layout).
constexpr double kArraysPerTile = 3.0;

double cpe_compute_time(const KernelWorkload& w, const ArchParams& a,
                        bool simd) {
  double flops_eff = w.total_flops();
  if (simd) {
    const double vec_speed =
        static_cast<double>(a.simd_lanes) * a.simd_efficiency;
    flops_eff = w.total_flops() *
                ((1.0 - w.vectorizable_fraction) +
                 w.vectorizable_fraction / vec_speed);
  }
  return flops_eff /
         (static_cast<double>(a.n_pes) * a.pe_flops_per_cycle *
          a.pe_freq_ghz * kGiga);
}

// DMA time: bytes over the aggregate engine plus per-transaction startup,
// serialized per CPE. usable_ldm shrinks to half under double buffering.
double dma_time(const KernelWorkload& w, const ArchParams& a,
                double usable_ldm_fraction) {
  const double bytes =
      w.elements * ((w.stream_bytes_per_element +
                     w.irregular_bytes_per_element) / w.cpe_reuse_factor +
                    w.ldm_refetch_bytes_per_element);
  const double bw_time = bytes / (a.dma_bw_gbs * kGiga);
  const double tile_bytes =
      std::max(1.0, static_cast<double>(a.ldm_bytes) * usable_ldm_fraction /
                        kArraysPerTile);
  const double transfers_per_pe =
      (bytes / static_cast<double>(a.n_pes)) / tile_bytes * kArraysPerTile;
  const double startup_time =
      transfers_per_pe * a.dma_startup_cycles / (a.pe_freq_ghz * kGiga);
  return bw_time + startup_time;
}

double launch_time(const ArchParams& a) {
  return a.kernel_launch_cycles / (a.pe_freq_ghz * kGiga);
}

}  // namespace

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::MpeScalar:
      return "MPE";
    case Variant::CpeTiled:
      return "Tiling";
    case Variant::CpeTiledDb:
      return "Tiling+DB";
    case Variant::CpeTiledDbSimd:
      return "Tiling+DB+SIMD";
  }
  return "?";
}

double modeled_time(const KernelWorkload& w, const ArchParams& arch,
                    Variant variant) {
  SWRAMAN_REQUIRE(w.elements >= 0.0, "modeled_time: negative element count");
  if (w.elements == 0.0) return 0.0;

  switch (variant) {
    case Variant::MpeScalar: {
      // Single management core: scalar compute plus memory traffic; the
      // gathered (irregular) accesses miss the cache part of the time.
      const double compute =
          w.total_flops() /
          (arch.mpe_flops_per_cycle * arch.mpe_freq_ghz * kGiga);
      const double mem =
          (w.elements * w.stream_bytes_per_element +
           2.0 * w.elements * w.irregular_bytes_per_element) /
          (arch.mpe_mem_bw_gbs * kGiga);
      return compute + mem;
    }
    case Variant::CpeTiled:
      // Sequential DMA-then-compute per tile (Fig. 6 top).
      return launch_time(arch) + cpe_compute_time(w, arch, false) +
             dma_time(w, arch, 0.9);
    case Variant::CpeTiledDb: {
      // Double buffering (Fig. 6 bottom): asynchronous transfers overlap
      // both the wire time and the startup latency with compute; the
      // remaining DMA cost is pure bandwidth.
      const double bw_time =
          (w.total_bytes() / w.cpe_reuse_factor +
           w.elements * w.ldm_refetch_bytes_per_element) /
          (arch.dma_bw_gbs * kGiga);
      return launch_time(arch) +
             std::max(cpe_compute_time(w, arch, false), bw_time);
    }
    case Variant::CpeTiledDbSimd: {
      const double bw_time =
          (w.total_bytes() / w.cpe_reuse_factor +
           w.elements * w.ldm_refetch_bytes_per_element) /
          (arch.dma_bw_gbs * kGiga);
      return launch_time(arch) +
             std::max(cpe_compute_time(w, arch, true), bw_time);
    }
  }
  return 0.0;
}

double modeled_cycles(const KernelWorkload& w, const ArchParams& arch,
                      Variant variant) {
  const double freq_ghz =
      variant == Variant::MpeScalar ? arch.mpe_freq_ghz : arch.pe_freq_ghz;
  return modeled_time(w, arch, variant) * freq_ghz * kGiga;
}

double modeled_cpu_time(const KernelWorkload& w, const ArchParams& arch) {
  if (w.elements == 0.0) return 0.0;
  const double vec_speed =
      static_cast<double>(arch.simd_lanes) * arch.simd_efficiency;
  const double flops_eff =
      w.total_flops() * ((1.0 - w.vectorizable_fraction) +
                         w.vectorizable_fraction / vec_speed);
  const double compute = flops_eff / (static_cast<double>(arch.n_pes) *
                                      arch.pe_flops_per_cycle *
                                      arch.pe_freq_ghz * kGiga);
  const double mem = w.total_bytes() / (arch.node_mem_bw_gbs * kGiga);
  // Cache-based cores overlap compute and memory reasonably well.
  return std::max(compute, mem);
}

namespace {

// Local reduction throughput: scalar MPE loop (two reads + one write at
// single-core stream bandwidth) vs the CPE-pipelined variant of paper
// Algorithm 3 (double-buffered LDM blocks on all CPEs at DMA bandwidth).
double mpe_reduce_bw(const ArchParams& a) {
  return a.mpe_mem_bw_gbs * kGiga / 3.0;
}
double cpe_reduce_bw(const ArchParams& a) {
  return std::min(a.dma_bw_gbs, a.node_mem_bw_gbs) * kGiga / 1.5;
}

// Synchronous MPE orchestration costs a scheduling gap per step (the
// idleness the paper calls out in Sec. 3.4).
constexpr double kMpeSched = 30e-6;

}  // namespace

double modeled_allreduce_time(double bytes, std::size_t n_ranks,
                              const ArchParams& arch,
                              const AllreduceModel& model) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "modeled_allreduce_time: invalid arguments");
  if (n_ranks == 1) return 0.0;
  const double p = static_cast<double>(n_ranks);
  const double log2p = std::log2(p);
  const double alpha = arch.net_latency_us * 1e-6;
  const double beta = arch.net_bw_gbs * kGiga;

  const double mpe_reduce_bw = sunway::mpe_reduce_bw(arch);
  const double cpe_reduce_bw = sunway::cpe_reduce_bw(arch);
  const double mpe_sched = kMpeSched;

  const double wire = 2.0 * (p - 1.0) / p * bytes / beta;
  const double reduced = (p - 1.0) / p * bytes;
  if (!model.reduce_scatter) {
    // Binary-tree reduce + broadcast: full payload and a reduction on
    // every level — the worst-case baseline kept for the ablation bench.
    return 2.0 * log2p * alpha + 2.0 * log2p * bytes / beta +
           log2p * bytes / mpe_reduce_bw + log2p * mpe_sched;
  }
  if (!model.cpe_offload) {
    // Reduce-scatter + allgather with the reduction on the MPE, serialized
    // with communication ("before MPI optimization").
    return 2.0 * log2p * alpha + wire + reduced / mpe_reduce_bw +
           log2p * mpe_sched;
  }
  // CPE-offloaded pipelined reduction overlapped with the transfers
  // ("after"): the reduction hides under the wire time.
  return 2.0 * log2p * alpha +
         std::max(wire, reduced / cpe_reduce_bw);
}

double modeled_linear_allreduce_time(double bytes, std::size_t n_ranks,
                                     const ArchParams& arch) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "modeled_linear_allreduce_time: invalid arguments");
  if (n_ranks == 1) return 0.0;
  const double p = static_cast<double>(n_ranks);
  const double alpha = arch.net_latency_us * 1e-6;
  const double beta = arch.net_bw_gbs * kGiga;
  // Root serially receives, reduces, and rebroadcasts full payloads.
  return 2.0 * (p - 1.0) * (alpha + bytes / beta) +
         (p - 1.0) * bytes / mpe_reduce_bw(arch) + (p - 1.0) * kMpeSched;
}

double modeled_ring_allreduce_time(double bytes, std::size_t n_ranks,
                                   const ArchParams& arch) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "modeled_ring_allreduce_time: invalid arguments");
  if (n_ranks == 1) return 0.0;
  const double p = static_cast<double>(n_ranks);
  const double alpha = arch.net_latency_us * 1e-6;
  const double beta = arch.net_bw_gbs * kGiga;
  // 2(p-1) latency-bound steps moving B/p chunks; bandwidth-optimal wire
  // volume but linear latency and per-step scheduling.
  return 2.0 * (p - 1.0) * alpha +
         2.0 * (p - 1.0) / p * bytes / beta +
         (p - 1.0) / p * bytes / mpe_reduce_bw(arch) +
         (p - 1.0) * kMpeSched;
}

double modeled_recursive_doubling_allreduce_time(double bytes,
                                                 std::size_t n_ranks,
                                                 const ArchParams& arch) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "modeled_recursive_doubling_allreduce_time: invalid "
                  "arguments");
  if (n_ranks == 1) return 0.0;
  const double p = static_cast<double>(n_ranks);
  const double log2p = std::log2(p);
  const double alpha = arch.net_latency_us * 1e-6;
  const double beta = arch.net_bw_gbs * kGiga;
  // log2(P) full-payload exchanges, each followed by a full local reduce.
  return log2p * (alpha + bytes / beta + bytes / mpe_reduce_bw(arch) +
                  kMpeSched);
}

double modeled_hierarchical_allreduce_time(
    double bytes, std::size_t n_ranks, const ArchParams& arch,
    const HierarchicalAllreduceModel& model) {
  SWRAMAN_REQUIRE(bytes >= 0.0 && n_ranks >= 1,
                  "modeled_hierarchical_allreduce_time: invalid arguments");
  if (n_ranks == 1) return 0.0;
  const std::size_t m =
      std::clamp<std::size_t>(model.node_size, 1, n_ranks);
  const std::size_t g = (n_ranks + m - 1) / m;
  const double members = static_cast<double>(m);
  const double rma_bw = arch.rma_bw_gbs * kGiga;
  const double rma_latency_s =
      arch.rma_latency_cycles / (arch.pe_freq_ghz * kGiga);

  double t = 0.0;
  if (m > 1) {
    // Stage 1: node members stream their vectors to the leader over the
    // CPE RMA mesh while the leader's chunked LDM pipeline folds them in;
    // wire and reduce overlap, latency is per-member.
    t += std::max((members - 1.0) * bytes / rma_bw,
                  (members - 1.0) * bytes / cpe_reduce_bw(arch)) +
         (members - 1.0) * rma_latency_s;
    // Stage 3: leader broadcasts the global sum back over the mesh.
    t += bytes / rma_bw + rma_latency_s;
  }
  // Stage 2: leaders run the CPE-offloaded Rabenseifner exchange over the
  // (much smaller) inter-node network.
  t += modeled_allreduce_time(bytes, g, arch,
                              AllreduceModel{true, true});
  // Orchestration: the MPE schedules the level transitions.
  t += 2.0 * kMpeSched;
  return t;
}

}  // namespace swraman::sunway
