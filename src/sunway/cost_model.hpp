#pragma once

#include <cstddef>
#include <string>

#include "sunway/arch.hpp"

// Analytic performance model for grid kernels on the modeled architectures.
// A kernel execution is summarized by a KernelWorkload (operation counts
// gathered from the *actual* functional execution); the model converts the
// counts into time under each optimization variant of paper Sec. 3.2:
//
//   MpeScalar      — the original single-MPE version (Fig. 12 baseline),
//   CpeTiled       — CPE port with static DMA loop tiling,
//   CpeTiledDb     — + double buffering (DMA/compute overlap, Fig. 6),
//   CpeTiledDbSimd — + 512-bit vectorization (Fig. 7).
//
// Speedups emerge from the counts and the ArchParams ratios, not from
// hard-coded factors.

namespace swraman::sunway {

struct KernelWorkload {
  std::string name;
  double elements = 0;                // independent work items
  double flops_per_element = 0;       // arithmetic per item
  double stream_bytes_per_element = 0;   // regularly streamed in+out
  double irregular_bytes_per_element = 0;  // gathered (WPxy-style) accesses
  // Extra DMA traffic on the scratchpad architecture only (LDM spills when
  // tiles exceed the 256 KB budget); cache-based machines re-hit caches.
  double ldm_refetch_bytes_per_element = 0;
  // Tile-level reuse on the scratchpad architecture: DMA traffic divides by
  // this factor (denser grids share spline-coefficient tiles; > 1 helps the
  // CPE port, the MPE's scattered access order gains nothing).
  double cpe_reuse_factor = 1.0;
  double vectorizable_fraction = 0.9;  // share of flops in SIMD-able loops

  [[nodiscard]] double total_flops() const {
    return elements * flops_per_element;
  }
  [[nodiscard]] double total_bytes() const {
    return elements * (stream_bytes_per_element + irregular_bytes_per_element);
  }
};

enum class Variant {
  MpeScalar,
  CpeTiled,
  CpeTiledDb,
  CpeTiledDbSimd,
};

const char* variant_name(Variant v);

// Modeled execution time in seconds of the workload on one core group of
// `arch` under the given optimization variant.
double modeled_time(const KernelWorkload& w, const ArchParams& arch,
                    Variant variant);

// Modeled core cycles of the same execution: modeled_time converted at the
// clock of the core that runs the kernel (MPE for MpeScalar, PE for the CPE
// variants). This is the machine-time attribute attached to kernel trace
// spans, so profiles compare runs across hosts of different speeds.
double modeled_cycles(const KernelWorkload& w, const ArchParams& arch,
                      Variant variant);

// Modeled time on a cache-based multicore CPU (all cores, vectorized) —
// the Fig. 14 Xeon baseline path.
double modeled_cpu_time(const KernelWorkload& w, const ArchParams& arch);

// Modeled time of an Allreduce of `bytes` over `n_ranks` under the given
// algorithm, with the local reduction arithmetic executed on the MPE
// (baseline) or offloaded to the CPE cluster (paper Sec. 3.4).
struct AllreduceModel {
  bool cpe_offload = false;     // pipelined CPE local reduction
  bool reduce_scatter = true;   // reduce-scatter + allgather vs binary tree
};

double modeled_allreduce_time(double bytes, std::size_t n_ranks,
                              const ArchParams& arch,
                              const AllreduceModel& model);

// Flat-algorithm companions of modeled_allreduce_time, matching the other
// Communicator algorithm variants (local reductions on the MPE). The Auto
// selector (parallel/allreduce_select) minimizes over these.
double modeled_linear_allreduce_time(double bytes, std::size_t n_ranks,
                                     const ArchParams& arch);
double modeled_ring_allreduce_time(double bytes, std::size_t n_ranks,
                                   const ArchParams& arch);
double modeled_recursive_doubling_allreduce_time(double bytes,
                                                 std::size_t n_ranks,
                                                 const ArchParams& arch);

// Two-level topology-aware Allreduce (paper Sec. 3.4 / Fig. 15): groups of
// node_size consecutive ranks reduce onto a leader over the intra-node RMA
// mesh (CPE-pipelined), leaders run the CPE-offloaded Rabenseifner
// exchange across groups, then each leader broadcasts inside its node.
struct HierarchicalAllreduceModel {
  std::size_t node_size = 4;  // ranks per node group (clamped to [1, P])
};

double modeled_hierarchical_allreduce_time(
    double bytes, std::size_t n_ranks, const ArchParams& arch,
    const HierarchicalAllreduceModel& model);

}  // namespace swraman::sunway
