#include "sunway/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "grid/ylm.hpp"
#include "obs/obs.hpp"
#include "simd/vec8d.hpp"

namespace swraman::sunway {

// The counter deltas the run produced (flops, DMA traffic, RMA traffic) and
// the modeled machine time — cycles at the executing core's clock — for the
// baseline and the fully optimized variant. Only evaluated when tracing is
// on; the cost model itself never runs on the disabled path.
void attach_kernel_span_attrs(obs::ScopedSpan& span, const CpeCluster& cluster,
                              const CpeCounters& before, double elements,
                              double vectorizable_fraction) {
  if (!span.active()) return;
  const CpeCounters after = cluster.total();
  const double flops = after.flops - before.flops;
  const double dma_bytes = after.dma_bytes - before.dma_bytes;
  const double dma_transfers = after.dma_transfers - before.dma_transfers;
  const double rma_bytes = after.rma_bytes - before.rma_bytes;
  span.attr("elements", elements);
  span.attr("flops", flops);
  span.attr("dma_bytes", dma_bytes);
  span.attr("dma_transfers", dma_transfers);
  if (rma_bytes > 0.0) span.attr("rma_bytes", rma_bytes);
  obs::count("sunway.dma.bytes", dma_bytes);
  obs::count("sunway.kernel.flops", flops);
  if (elements <= 0.0) return;
  KernelWorkload w;
  w.elements = elements;
  w.flops_per_element = flops / elements;
  w.stream_bytes_per_element = dma_bytes / elements;
  w.irregular_bytes_per_element =
      (after.direct_mem_accesses - before.direct_mem_accesses) *
      sizeof(double) / elements;
  w.vectorizable_fraction = vectorizable_fraction;
  span.attr("modeled_cycles_mpe",
            modeled_cycles(w, cluster.arch(), Variant::MpeScalar));
  span.attr("modeled_cycles_cpe",
            modeled_cycles(w, cluster.arch(), Variant::CpeTiledDbSimd));
  span.attr("modeled_time_cpe_s",
            modeled_time(w, cluster.arch(), Variant::CpeTiledDbSimd));
}

std::size_t CsiTables::coeff_bytes() const {
  std::size_t b = 0;
  for (const CsiAtomTable& a : atoms) b += a.coeff.size() * sizeof(double);
  return b;
}

CsiTables build_csi_tables(const hartree::MultipolePotential& potential) {
  CsiTables t;
  t.lmax = potential.lmax();
  t.n_lm = grid::n_lm(t.lmax);
  const std::vector<Vec3>& centers = potential.centers();
  t.atoms.resize(centers.size());
  for (std::size_t a = 0; a < centers.size(); ++a) {
    CsiAtomTable& at = t.atoms[a];
    at.center = centers[a];
    at.outer_radius = potential.outer_radius(a);
    const std::vector<CubicSpline>& ch = potential.channels(a);
    if (ch.empty()) continue;
    at.knots = ch[0].knots();
    const std::size_t n_int = at.knots.size() - 1;
    at.coeff.assign(n_int * 4 * t.n_lm, 0.0);
    double c[4];
    for (std::size_t lm = 0; lm < t.n_lm; ++lm) {
      for (std::size_t i = 0; i < n_int; ++i) {
        ch[lm].interval_coefficients(i, c);
        for (std::size_t k = 0; k < 4; ++k) {
          at.coeff[(i * 4 + k) * t.n_lm + lm] = c[k];
        }
      }
    }
    at.moments.resize(t.n_lm);
    for (std::size_t lm = 0; lm < t.n_lm; ++lm) {
      at.moments[lm] = potential.moment(a, lm);
    }
  }
  return t;
}

namespace {

// Evaluates the potential contribution of one atom at one point given its
// coefficient table. comps is scratch of size n_lm.
double csi_point_atom(const CsiTables& t, const CsiAtomTable& at,
                      const Vec3& p, ExecMode mode, std::vector<double>& ylm,
                      std::vector<double>& comps) {
  if (at.knots.empty()) return 0.0;
  const Vec3 d = p - at.center;
  const double r = std::max(d.norm(), 1e-8);
  grid::real_ylm(d, t.lmax, ylm);

  if (r > at.outer_radius) {
    // Analytic multipole far field.
    double v = 0.0;
    double rpow = r;
    std::size_t lm = 0;
    for (int l = 0; l <= t.lmax; ++l) {
      const double pref = kFourPi / (2.0 * l + 1.0) / rpow;
      for (int m = -l; m <= l; ++m, ++lm) {
        v += pref * at.moments[lm] * ylm[lm];
      }
      rpow *= r;
    }
    return v;
  }

  // Interval lookup ("i_r_log" of Algorithm 2), then the cubic evaluation
  // over all channels — the vectorizable inner loop of Fig. 7.
  const double rc = std::clamp(r, at.knots.front(), at.knots.back());
  std::size_t i =
      static_cast<std::size_t>(std::upper_bound(at.knots.begin(),
                                                at.knots.end(), rc) -
                               at.knots.begin());
  i = std::min(std::max<std::size_t>(i, 1), at.knots.size() - 1) - 1;
  const double u = rc - at.knots[i];
  const double* s0 = &at.coeff[(i * 4 + 0) * t.n_lm];
  const double* s1 = &at.coeff[(i * 4 + 1) * t.n_lm];
  const double* s2 = &at.coeff[(i * 4 + 2) * t.n_lm];
  const double* s3 = &at.coeff[(i * 4 + 3) * t.n_lm];

  if (mode == ExecMode::Simd) {
    simd::poly3_eval(s0, s1, s2, s3, u, comps.data(), t.n_lm);
    return simd::dot(comps.data(), ylm.data(), t.n_lm);
  }
  double v = 0.0;
  for (std::size_t lm = 0; lm < t.n_lm; ++lm) {
    const double comp = s0[lm] + u * (s1[lm] + u * (s2[lm] + u * s3[lm]));
    v += comp * ylm[lm];
  }
  return v;
}

}  // namespace

void real_space_potential(const CsiTables& tables, const Vec3* points,
                          std::size_t n, double* out, ExecMode mode) {
  std::vector<double> ylm;
  std::vector<double> comps(tables.n_lm);
  for (std::size_t p = 0; p < n; ++p) {
    double v = 0.0;
    for (const CsiAtomTable& at : tables.atoms) {
      v += csi_point_atom(tables, at, points[p], mode, ylm, comps);
    }
    out[p] = v;
  }
}

void real_space_potential_cpe(CpeCluster& cluster, const CsiTables& tables,
                              const Vec3* points, std::size_t n, double* out,
                              ExecMode mode) {
  SWRAMAN_TRACE_SPAN(span, "sunway.kernel1");
  const CpeCounters before = cluster.total();
  cluster.run("kernel1", [&](CpeContext& ctx) {
    const auto [lo, hi] = ctx.my_slice(n);
    if (lo >= hi) return;
    // Tile the point slice through LDM: coordinates in, potentials out.
    const std::size_t tile =
        std::max<std::size_t>(1, ctx.ldm().capacity() / 4 / sizeof(Vec3));
    std::vector<double> ylm;
    std::vector<double> comps(tables.n_lm);
    for (std::size_t base = lo; base < hi; base += tile) {
      ctx.ldm().reset();
      const std::size_t count = std::min(tile, hi - base);
      Vec3* coords = ctx.ldm().allocate<Vec3>(count);
      double* vout = ctx.ldm().allocate<double>(count);
      ctx.dma_get(coords, points + base, count);

      for (std::size_t k = 0; k < count; ++k) {
        double v = 0.0;
        for (const CsiAtomTable& at : tables.atoms) {
          v += csi_point_atom(tables, at, coords[k], mode, ylm, comps);
          // Coefficient block fetch for the interval (4 rows x n_lm) plus
          // Y_lm work: charged as DMA traffic and flops.
          ctx.counters().dma_bytes +=
              static_cast<double>(4 * tables.n_lm * sizeof(double));
          ctx.counters().dma_transfers += 1.0 / 16.0;  // blocks batch up
          ctx.charge_flops(12.0 * static_cast<double>(tables.n_lm) + 30.0);
        }
        vout[k] = v;
      }
      ctx.dma_put(vout, out + base, count);
    }
  });
  if (span.active()) {
    span.attr("variant", mode == ExecMode::Simd ? "simd" : "scalar");
    attach_kernel_span_attrs(span, cluster, before, static_cast<double>(n), 0.9);
  }
}

ReciprocalTables build_reciprocal_tables(const hartree::Ewald& ewald) {
  ReciprocalTables t;
  t.g = ewald.g_vectors();
  t.coef = ewald.coefficients();
  t.str_cos = ewald.structure_cos();
  t.str_sin = ewald.structure_sin();
  t.gather_index.resize(t.g.size());
  // The paper's k_points_es indirection: a strided permutation that breaks
  // unit-stride access from the kernel's point of view (cross-host-kernel
  // analysis recovers the contiguity).
  const std::size_t m = t.g.size();
  const std::size_t stride = std::max<std::size_t>(1, m / 7);
  for (std::size_t k = 0; k < m; ++k) {
    t.gather_index[k] = (k * stride) % m;
  }
  return t;
}

namespace {

double reciprocal_point(const ReciprocalTables& t, const Vec3& p) {
  double v = 0.0;
  for (std::size_t k = 0; k < t.g.size(); ++k) {
    const std::size_t j = t.gather_index[k];
    const double phase = dot(t.g[j], p);
    v += t.coef[j] * (std::cos(phase) * t.str_cos[j] +
                      std::sin(phase) * t.str_sin[j]);
  }
  return v;
}

}  // namespace

void reciprocal_potential(const ReciprocalTables& tables, const Vec3* points,
                          std::size_t n, double* out) {
  for (std::size_t p = 0; p < n; ++p) {
    out[p] = reciprocal_point(tables, points[p]);
  }
}

void reciprocal_potential_cpe(CpeCluster& cluster,
                              const ReciprocalTables& tables,
                              const Vec3* points, std::size_t n, double* out) {
  SWRAMAN_TRACE_SPAN(span, "sunway.kernel2");
  const CpeCounters before = cluster.total();
  const std::size_t m = tables.g.size();
  cluster.run("kernel2", [&](CpeContext& ctx) {
    const auto [lo, hi] = ctx.my_slice(n);
    if (lo >= hi) return;
    ctx.ldm().reset();
    // Static tiling (Fig. 5): 60 KB of regular tables; the remaining LDM
    // buffers the irregularly gathered structure factors.
    const std::size_t g_tile = std::min(
        m, static_cast<std::size_t>(60 * 1024) / (5 * sizeof(double)));
    Vec3* gv = ctx.ldm().allocate<Vec3>(g_tile);
    double* cf = ctx.ldm().allocate<double>(g_tile);
    double* sc = ctx.ldm().allocate<double>(g_tile);
    double* ss = ctx.ldm().allocate<double>(g_tile);

    for (std::size_t p = lo; p < hi; ++p) {
      double v = 0.0;
      for (std::size_t base = 0; base < m; base += g_tile) {
        const std::size_t count = std::min(g_tile, m - base);
        // Gathered loads resolved to contiguous tiles after the
        // cross-host-kernel analysis; charge the DMA traffic once per tile
        // pass (shared across the point loop in the real code; modeled
        // per-point/64 to reflect table reuse).
        if (p == lo) {
          for (std::size_t k = 0; k < count; ++k) {
            const std::size_t j = tables.gather_index[base + k];
            gv[k] = tables.g[j];
            cf[k] = tables.coef[j];
            sc[k] = tables.str_cos[j];
            ss[k] = tables.str_sin[j];
          }
          ctx.counters().dma_bytes +=
              static_cast<double>(count * 6 * sizeof(double));
          ctx.counters().dma_transfers += 4.0;
        }
        for (std::size_t k = 0; k < count; ++k) {
          const double phase = dot(gv[k], points[p]);
          v += cf[k] * (std::cos(phase) * sc[k] + std::sin(phase) * ss[k]);
        }
        ctx.charge_flops(40.0 * static_cast<double>(count));
      }
      out[p] = v;
    }
  });
  attach_kernel_span_attrs(span, cluster, before, static_cast<double>(n), 0.9);
}

KernelWorkload run_density_batches(CpeCluster& cluster,
                                   const std::vector<BatchShape>& batches) {
  SWRAMAN_TRACE_SPAN(span, "sunway.n1");
  const CpeCounters before = cluster.total();
  double elements = 0.0;
  cluster.run("n1", [&](CpeContext& ctx) {
    for (std::size_t b = ctx.id(); b < batches.size();
         b += static_cast<std::size_t>(ctx.n_cpes())) {
      const BatchShape& sh = batches[b];
      ctx.ldm().reset();
      // Tile the local density-matrix block and basis values through LDM.
      const std::size_t row_tile = std::max<std::size_t>(
          1, std::min(sh.n_fns, ctx.ldm().capacity() / 3 /
                                    (sh.n_points * sizeof(double) + 1)));
      for (std::size_t r0 = 0; r0 < sh.n_fns; r0 += row_tile) {
        const std::size_t rows = std::min(row_tile, sh.n_fns - r0);
        ctx.counters().dma_bytes += static_cast<double>(
            rows * sh.n_points * sizeof(double) +  // values tile
            rows * sh.n_fns * sizeof(double));     // P block rows
        ctx.counters().dma_transfers += 2.0;
        ctx.charge_flops(2.0 * static_cast<double>(rows) *
                         static_cast<double>(sh.n_fns) *
                         static_cast<double>(sh.n_points));
      }
      ctx.counters().dma_bytes +=
          static_cast<double>(sh.n_points * sizeof(double));  // n(r) out
      ctx.counters().dma_transfers += 1.0;
    }
  });
  for (const BatchShape& sh : batches) {
    elements += static_cast<double>(sh.n_points);
  }
  attach_kernel_span_attrs(span, cluster, before, elements, 0.85);
  return cluster.workload("n1", elements, 0.85);
}

KernelWorkload run_hamiltonian_batches(CpeCluster& cluster,
                                       const std::vector<BatchShape>& batches) {
  SWRAMAN_TRACE_SPAN(span, "sunway.h1");
  const CpeCounters before = cluster.total();
  double elements = 0.0;
  cluster.run("H1", [&](CpeContext& ctx) {
    for (std::size_t b = ctx.id(); b < batches.size();
         b += static_cast<std::size_t>(ctx.n_cpes())) {
      const BatchShape& sh = batches[b];
      ctx.ldm().reset();
      const std::size_t row_tile = std::max<std::size_t>(
          1, std::min(sh.n_fns, ctx.ldm().capacity() / 3 /
                                    (sh.n_points * sizeof(double) + 1)));
      for (std::size_t r0 = 0; r0 < sh.n_fns; r0 += row_tile) {
        const std::size_t rows = std::min(row_tile, sh.n_fns - r0);
        ctx.counters().dma_bytes += static_cast<double>(
            rows * sh.n_points * sizeof(double) * 2);  // values + scaled
        ctx.counters().dma_transfers += 2.0;
        // M_loc = values * scaled^T over this row stripe.
        ctx.charge_flops(2.0 * static_cast<double>(rows) *
                         static_cast<double>(sh.n_fns) *
                         static_cast<double>(sh.n_points));
      }
      // Scatter-add of the local matrix: the RMA distributed reduction.
      ctx.charge_rma(static_cast<double>(sh.n_fns * sh.n_fns) *
                     1.5 * sizeof(double));
      ctx.charge_flops(static_cast<double>(sh.n_fns * sh.n_fns));
      elements += 0.0;
    }
  });
  for (const BatchShape& sh : batches) {
    elements += static_cast<double>(sh.n_points);
  }
  attach_kernel_span_attrs(span, cluster, before, elements, 0.9);
  return cluster.workload("H1", elements, 0.9);
}

}  // namespace swraman::sunway
