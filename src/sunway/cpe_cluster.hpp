#pragma once

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "robustness/fault.hpp"
#include "sunway/arch.hpp"
#include "sunway/check/shadow.hpp"
#include "sunway/cost_model.hpp"
#include "sunway/ldm.hpp"

// Functional execution model of one core group's CPE cluster. Kernels are
// written against CpeContext — LDM allocation with the real 256 KB limit,
// DMA get/put with operation counting, explicit flop charging — and run for
// every logical CPE. The numerics are produced on the host; the counters
// feed the cost model, which converts them into modeled Sunway time per
// optimization variant.
//
// Fault tolerance: DMA transfers retry on injected engine failures
// (sunway.dma.fail, bounded, each failed attempt still charged), and a CPE
// killed by sunway.cpe.death stays dead for the cluster's lifetime — its
// logical work is adopted by the surviving CPEs through the Algorithm-1
// greedy balancer, so results are unchanged and the cost model sees the
// survivors' extra load.

namespace swraman::sunway {

struct CpeCounters {
  double flops = 0.0;
  double dma_bytes = 0.0;
  double dma_transfers = 0.0;
  double direct_mem_accesses = 0.0;
  double rma_bytes = 0.0;
  double rma_messages = 0.0;
  std::size_t ldm_peak = 0;

  CpeCounters& operator+=(const CpeCounters& o) {
    flops += o.flops;
    dma_bytes += o.dma_bytes;
    dma_transfers += o.dma_transfers;
    direct_mem_accesses += o.direct_mem_accesses;
    rma_bytes += o.rma_bytes;
    rma_messages += o.rma_messages;
    ldm_peak = ldm_peak > o.ldm_peak ? ldm_peak : o.ldm_peak;
    return *this;
  }
};

class CpeContext {
 public:
  CpeContext(int id, int n_cpes, const ArchParams& arch,
             const char* kernel_name = "kernel")
      : id_(id), n_cpes_(n_cpes), ldm_(arch.ldm_bytes) {
    if (check::enabled()) {
      shadow_ = std::make_unique<check::CpeShadow>(id, kernel_name,
                                                   ldm_.shadow());
    }
  }

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int n_cpes() const { return n_cpes_; }
  [[nodiscard]] LdmArena& ldm() { return ldm_; }
  [[nodiscard]] CpeCounters& counters() { return counters_; }

  // In-flight DMA shadow state; null unless checked mode was on at
  // construction (SWRAMAN_CHECK=1 / check::set_enabled).
  [[nodiscard]] check::CpeShadow* shadow() { return shadow_.get(); }
  [[nodiscard]] bool checked() const { return shadow_ != nullptr; }

  // Async-style DMA: copies now (functional), charges one transaction.
  // An injected engine failure (sunway.dma.fail) is retried — the failed
  // attempt still occupied the DMA engine, so it is charged too. Checked
  // mode validates the LDM range (tile bounds, use-after-reset, overlap
  // with in-flight transfers) before the copy.
  template <typename T>
  void dma_get(T* dst_ldm, const T* src_mem, std::size_t n) {
    if (shadow_) {
      shadow_->check_sync_dma(dst_ldm, n * sizeof(T), true, "dma_get");
    }
    dma_fault_check("dma_get");
    std::memcpy(dst_ldm, src_mem, n * sizeof(T));
    counters_.dma_bytes += static_cast<double>(n * sizeof(T));
    counters_.dma_transfers += 1.0;
  }

  template <typename T>
  void dma_put(const T* src_ldm, T* dst_mem, std::size_t n) {
    if (shadow_) {
      shadow_->check_sync_dma(src_ldm, n * sizeof(T), false, "dma_put");
    }
    dma_fault_check("dma_put");
    std::memcpy(dst_mem, src_ldm, n * sizeof(T));
    counters_.dma_bytes += static_cast<double>(n * sizeof(T));
    counters_.dma_transfers += 1.0;
  }

  // Charges an async DMA issue: the fault-injection retry loop plus the
  // byte/transfer counters, without the copy. Deferred (checked-mode)
  // transfers go through here exactly once — an injected sunway.dma.fail
  // retry charges the engine again but must not re-register the
  // in-flight record.
  void dma_charge_async(const char* op, std::size_t bytes) {
    dma_fault_check(op);
    counters_.dma_bytes += static_cast<double>(bytes);
    counters_.dma_transfers += 1.0;
  }

  // Compute-access annotations for LDM tiles: free in unchecked mode; in
  // checked mode they catch reads of un-waited in-flight data and tile
  // overruns from kernel loops (the combine ops of Algorithm 3 call
  // these).
  void check_ldm_read(const void* p, std::size_t bytes,
                      const char* what = "ldm read") {
    if (shadow_) shadow_->check_access(p, bytes, false, what);
  }
  void check_ldm_write(const void* p, std::size_t bytes,
                       const char* what = "ldm write") {
    if (shadow_) shadow_->check_access(p, bytes, true, what);
  }

  void charge_flops(double n) { counters_.flops += n; }
  void charge_direct_access(double n) { counters_.direct_mem_accesses += n; }
  void charge_rma(double bytes) {
    counters_.rma_bytes += bytes;
    counters_.rma_messages += 1.0;
  }

  // Static round-robin slice [begin, end) of a range for this CPE.
  [[nodiscard]] std::pair<std::size_t, std::size_t> my_slice(
      std::size_t total) const {
    const std::size_t per = (total + n_cpes_ - 1) / n_cpes_;
    const std::size_t lo = std::min(total, per * static_cast<std::size_t>(id_));
    const std::size_t hi = std::min(total, lo + per);
    return {lo, hi};
  }

  void finish() {
    // Checked mode: a transfer still in flight here means its dma_wait
    // never ran — report before the context (and its shadow) dies.
    if (shadow_) shadow_->verify_quiesced();
    counters_.ldm_peak = ldm_.peak();
  }

 private:
  static constexpr int kMaxDmaRetries = 8;

  void dma_fault_check(const char* op) {
    if (!fault::FaultInjector::instance().armed()) return;
    for (int attempt = 1; fault::should_fire(fault::kDmaFail); ++attempt) {
      counters_.dma_transfers += 1.0;  // failed attempt occupied the engine
      log::warn("fault ", fault::kDmaFail, ": CPE ", id_, " ", op,
                " transfer failed, retry ", attempt, "/", kMaxDmaRetries);
      if (attempt >= kMaxDmaRetries) {
        throw TimeoutError(std::string("CPE DMA: ") + op + " on CPE " +
                           std::to_string(id_) + " failed " +
                           std::to_string(attempt) +
                           " consecutive times; giving up");
      }
    }
  }

  int id_;
  int n_cpes_;
  LdmArena ldm_;
  CpeCounters counters_;
  std::unique_ptr<check::CpeShadow> shadow_;
};

class CpeCluster {
 public:
  explicit CpeCluster(ArchParams arch) : arch_(std::move(arch)) {}

  // Runs the kernel body once per logical CPE; counters accumulate across
  // run() calls until reset(). A CPE the injector kills (sunway.cpe.death)
  // is skipped permanently; its logical runs are adopted by survivors and
  // charged to the adopter's counters.
  // The named overload attributes checker violations to `name` (kernel1,
  // kernel2, n1, H1, ...).
  void run(const std::function<void(CpeContext&)>& kernel);
  void run(const char* name, const std::function<void(CpeContext&)>& kernel);

  void reset();

  // CPEs lost to injected deaths so far (they stay dead until reset()).
  [[nodiscard]] int n_dead() const;

  [[nodiscard]] const ArchParams& arch() const { return arch_; }
  [[nodiscard]] const std::vector<CpeCounters>& per_cpe() const {
    return counters_;
  }
  [[nodiscard]] CpeCounters total() const;

  // Summarizes the counted operations as a KernelWorkload for the cost
  // model. `elements` gives the logical work-item count; the per-element
  // byte/flop figures are derived from the counters.
  [[nodiscard]] KernelWorkload workload(const std::string& name,
                                        double elements,
                                        double vectorizable_fraction) const;

 private:
  ArchParams arch_;
  std::vector<CpeCounters> counters_;
  std::vector<char> dead_;  // sticky per-CPE death flags
};

}  // namespace swraman::sunway
