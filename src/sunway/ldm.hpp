#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sunway/check/shadow.hpp"

// Local-data-memory (scratchpad) arena of one CPE: 256 KB on SW26010Pro.
// Kernels allocate their tiles here; exceeding the capacity throws, which
// is exactly the constraint that forces the loop-tiling design of paper
// Sec. 3.2 (Fig. 5: 128 KB for kernel1 tiles, 60 KB static + remainder
// irregular for kernel2).
//
// In checked mode (SWRAMAN_CHECK=1, see check/check.hpp) the arena keeps
// a shadow tile registry — base/size/generation per allocation — so DMA
// and combine-op accesses are bounds-checked against live tiles, and a
// pointer used after reset() resolves to a retired tile (the backing
// memory is quarantined, not freed) and is reported as use-after-reset.

namespace swraman::sunway {

class LdmArena {
 public:
  explicit LdmArena(std::size_t capacity_bytes) : capacity_(capacity_bytes) {
    if (check::enabled()) {
      shadow_ = std::make_unique<check::LdmShadow>();
    }
  }

  // Allocates n elements of T; throws swraman::Error when the scratchpad
  // would overflow. Pointers stay valid until reset().
  template <typename T>
  T* allocate(std::size_t n) {
    // Checked multiply: a wrapped n * sizeof(T) would pass the capacity
    // check as a tiny allocation and let the kernel smash the heap. The
    // - 63 leaves headroom for align_up.
    SWRAMAN_REQUIRE(
        n <= (std::numeric_limits<std::size_t>::max() - 63) / sizeof(T),
        "LdmArena: allocation of " + std::to_string(n) + " x " +
            std::to_string(sizeof(T)) + " B overflows size_t");
    const std::size_t bytes = align_up(n * sizeof(T));
    SWRAMAN_REQUIRE(used_ + bytes <= capacity_,
                    "LdmArena: scratchpad overflow — tile too large");
    blocks_.emplace_back(bytes);
    used_ += bytes;
    peak_ = used_ > peak_ ? used_ : peak_;
    T* p = reinterpret_cast<T*>(blocks_.back().data());
    if (shadow_) shadow_->on_allocate(p, n * sizeof(T));
    return p;
  }

  void reset() {
    if (shadow_) {
      // Quarantine the blocks: stale pointers must keep resolving to
      // their (now retired) tiles so the checker can attribute a
      // use-after-reset instead of the program reading freed memory.
      shadow_->on_reset();
      retired_blocks_.reserve(retired_blocks_.size() + blocks_.size());
      for (auto& b : blocks_) retired_blocks_.push_back(std::move(b));
    }
    blocks_.clear();
    used_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t peak() const { return peak_; }
  [[nodiscard]] std::size_t available() const { return capacity_ - used_; }

  // Shadow tile registry; null when checked mode was off at construction.
  [[nodiscard]] const check::LdmShadow* shadow() const {
    return shadow_.get();
  }

 private:
  static std::size_t align_up(std::size_t bytes) {
    return (bytes + 63) / 64 * 64;  // 64-byte (vector) alignment granules
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::vector<std::vector<unsigned char>> blocks_;
  // Checked mode only: memory retired by reset(), kept alive for
  // use-after-reset attribution until the arena dies.
  std::vector<std::vector<unsigned char>> retired_blocks_;
  std::unique_ptr<check::LdmShadow> shadow_;
};

}  // namespace swraman::sunway
