#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

// Local-data-memory (scratchpad) arena of one CPE: 256 KB on SW26010Pro.
// Kernels allocate their tiles here; exceeding the capacity throws, which
// is exactly the constraint that forces the loop-tiling design of paper
// Sec. 3.2 (Fig. 5: 128 KB for kernel1 tiles, 60 KB static + remainder
// irregular for kernel2).

namespace swraman::sunway {

class LdmArena {
 public:
  explicit LdmArena(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  // Allocates n elements of T; throws swraman::Error when the scratchpad
  // would overflow. Pointers stay valid until reset().
  template <typename T>
  T* allocate(std::size_t n) {
    const std::size_t bytes = align_up(n * sizeof(T));
    SWRAMAN_REQUIRE(used_ + bytes <= capacity_,
                    "LdmArena: scratchpad overflow — tile too large");
    blocks_.emplace_back(bytes);
    used_ += bytes;
    peak_ = used_ > peak_ ? used_ : peak_;
    return reinterpret_cast<T*>(blocks_.back().data());
  }

  void reset() {
    blocks_.clear();
    used_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t peak() const { return peak_; }
  [[nodiscard]] std::size_t available() const { return capacity_ - used_; }

 private:
  static std::size_t align_up(std::size_t bytes) {
    return (bytes + 63) / 64 * 64;  // 64-byte (vector) alignment granules
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::vector<std::vector<unsigned char>> blocks_;
};

}  // namespace swraman::sunway
