#include "sunway/rma_reduce.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/obs.hpp"
#include "robustness/fault.hpp"
#include "sunway/check/shadow.hpp"

namespace swraman::sunway {

namespace {

std::string index_error(const char* fn, std::size_t index,
                        std::size_t size) {
  return std::string(fn) + ": Contribution::index " + std::to_string(index) +
         " out of range for target array of size " + std::to_string(size);
}

}  // namespace

void serial_array_reduction(
    const std::vector<std::vector<Contribution>>& contributions,
    std::vector<double>& arr) {
  for (const std::vector<Contribution>& list : contributions) {
    for (const Contribution& c : list) {
      SWRAMAN_REQUIRE(
          c.index < arr.size(),
          index_error("serial_array_reduction", c.index, arr.size()));
      arr[c.index] += c.value;
    }
  }
}

RmaReduceStats rma_array_reduction(
    const std::vector<std::vector<Contribution>>& contributions,
    std::vector<double>& arr, const RmaReduceOptions& options) {
  const std::size_t n_cpes = contributions.size();
  SWRAMAN_REQUIRE(n_cpes >= 1, "rma_array_reduction: no CPEs");
  SWRAMAN_REQUIRE(options.send_buffer_entries >= 1 &&
                      options.ldm_block_doubles >= 1,
                  "rma_array_reduction: invalid options");
  const std::size_t n = arr.size();
  SWRAMAN_TRACE_SPAN(span, "sunway.rma_reduce");
  if (span.active()) {
    span.attr("cpes", static_cast<double>(n_cpes));
    span.attr("array_size", static_cast<double>(n));
  }
  RmaReduceStats stats;

  // Checked mode: account every mailbox send against the owner's drain
  // so a message delivered but never consumed — silently lost updates on
  // hardware — is reported at the end.
  std::unique_ptr<check::RmaMeshChecker> mesh;
  if (check::enabled()) {
    mesh = std::make_unique<check::RmaMeshChecker>(n_cpes);
  }

  // Ownership ranges: CPE o owns [o*n/n_cpes, (o+1)*n/n_cpes).
  const auto range_lo = [&](std::size_t o) { return o * n / n_cpes; };
  const auto owner_of = [&](std::size_t idx) {
    std::size_t o =
        std::min(n_cpes - 1, idx * n_cpes / std::max<std::size_t>(n, 1));
    // Integer rounding can land one range off; nudge into place.
    while (o + 1 < n_cpes && idx >= range_lo(o + 1)) ++o;
    while (o > 0 && idx < range_lo(o)) --o;
    return o;
  };

  // Step 1+2: every CPE sorts its contributions into per-destination send
  // buffers; a full buffer becomes one RMA message. Messages are collected
  // into per-owner inboxes (the receive buffers R0..R63). Delivery is
  // acknowledged: a message the injector drops is retransmitted (bounded),
  // with every attempt charged against the mesh.
  constexpr int kMaxRmaAttempts = 8;
  std::vector<std::vector<Contribution>> inbox(n_cpes);
  const auto deliver = [&](std::size_t src, std::size_t dst,
                           std::vector<Contribution>& buf) {
    for (int attempt = 1;; ++attempt) {
      stats.rma_messages += 1.0;
      stats.rma_bytes +=
          static_cast<double>(buf.size() * sizeof(Contribution));
      if (!fault::should_fire(fault::kRmaDrop)) break;
      stats.rma_retransmits += 1.0;
      log::warn("fault ", fault::kRmaDrop, ": RMA message CPE ", src,
                " -> ", dst, " (", buf.size(),
                " entries) dropped, retransmit attempt ", attempt, "/",
                kMaxRmaAttempts - 1);
      if (attempt >= kMaxRmaAttempts) {
        fault::FaultInjector::raise(fault::kRmaDrop);
      }
    }
    if (mesh) {
      mesh->record_send(src, dst, buf.size() * sizeof(Contribution));
    }
    inbox[dst].insert(inbox[dst].end(), buf.begin(), buf.end());
    buf.clear();
  };
  std::vector<std::vector<Contribution>> send_buf(n_cpes);
  for (std::size_t src = 0; src < n_cpes; ++src) {
    for (auto& buf : send_buf) buf.clear();
    for (const Contribution& c : contributions[src]) {
      SWRAMAN_REQUIRE(c.index < n,
                      index_error("rma_array_reduction", c.index, n));
      const std::size_t dst = owner_of(c.index);
      std::vector<Contribution>& buf = send_buf[dst];
      buf.push_back(c);
      if (buf.size() >= options.send_buffer_entries) {
        deliver(src, dst, buf);
      }
    }
    // Flush remaining partial buffers at the end of the pass.
    for (std::size_t dst = 0; dst < n_cpes; ++dst) {
      if (!send_buf[dst].empty()) deliver(src, dst, send_buf[dst]);
    }
  }

  // Steps 3-5: each owner drains its inbox through an LDM block cache of
  // its range; updates outside the cached block flush it back by DMA and
  // fetch the block containing the new location.
  const std::size_t blk = options.ldm_block_doubles;
  for (std::size_t o = 0; o < n_cpes; ++o) {
    const std::size_t lo = range_lo(o);
    std::vector<double> buf;          // cached block contents
    std::size_t cached_base = n + 1;  // invalid: nothing cached
    const auto flush = [&] {
      if (cached_base > n) return;
      for (std::size_t i = 0; i < buf.size(); ++i) {
        arr[cached_base + i] = buf[i];
      }
      stats.dma_block_transfers += 1.0;
      stats.dma_bytes += static_cast<double>(buf.size() * sizeof(double));
    };
    const auto load = [&](std::size_t idx) {
      // Block-aligned within the owner's range.
      const std::size_t off = (idx - lo) / blk * blk;
      cached_base = lo + off;
      const std::size_t range_hi = (o + 1 == n_cpes) ? n : range_lo(o + 1);
      const std::size_t hi = std::min(range_hi, cached_base + blk);
      buf.assign(arr.begin() + static_cast<long>(cached_base),
                 arr.begin() + static_cast<long>(hi));
      stats.dma_block_transfers += 1.0;
      stats.dma_bytes += static_cast<double>(buf.size() * sizeof(double));
    };
    for (const Contribution& c : inbox[o]) {
      if (cached_base > n || c.index < cached_base ||
          c.index >= cached_base + buf.size()) {
        flush();
        load(c.index);
      }
      buf[c.index - cached_base] += c.value;
      stats.updates += 1.0;
    }
    flush();
    if (mesh) mesh->record_drain(o);
  }
  if (mesh) mesh->verify("rma_array_reduction");
  if (span.active()) {
    span.attr("rma_messages", stats.rma_messages);
    span.attr("rma_bytes", stats.rma_bytes);
    span.attr("rma_retransmits", stats.rma_retransmits);
    span.attr("dma_block_transfers", stats.dma_block_transfers);
    span.attr("dma_bytes", stats.dma_bytes);
    span.attr("updates", stats.updates);
    obs::count("sunway.rma.bytes", stats.rma_bytes);
    obs::count("sunway.rma.retransmits", stats.rma_retransmits);
  }
  return stats;
}

}  // namespace swraman::sunway
