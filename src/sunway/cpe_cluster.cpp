#include "sunway/cpe_cluster.hpp"

#include "common/error.hpp"

namespace swraman::sunway {

void CpeCluster::run(const std::function<void(CpeContext&)>& kernel) {
  if (counters_.empty()) {
    counters_.resize(static_cast<std::size_t>(arch_.n_pes));
  }
  for (int id = 0; id < arch_.n_pes; ++id) {
    CpeContext ctx(id, arch_.n_pes, arch_);
    kernel(ctx);
    ctx.finish();
    counters_[static_cast<std::size_t>(id)] += ctx.counters();
  }
}

void CpeCluster::reset() { counters_.clear(); }

CpeCounters CpeCluster::total() const {
  CpeCounters t;
  for (const CpeCounters& c : counters_) t += c;
  return t;
}

KernelWorkload CpeCluster::workload(const std::string& name, double elements,
                                    double vectorizable_fraction) const {
  SWRAMAN_REQUIRE(elements > 0.0, "workload: elements must be positive");
  const CpeCounters t = total();
  KernelWorkload w;
  w.name = name;
  w.elements = elements;
  w.flops_per_element = t.flops / elements;
  w.stream_bytes_per_element = t.dma_bytes / elements;
  w.irregular_bytes_per_element =
      t.direct_mem_accesses * sizeof(double) / elements;
  w.vectorizable_fraction = vectorizable_fraction;
  return w;
}

}  // namespace swraman::sunway
