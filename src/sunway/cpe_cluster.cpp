#include "sunway/cpe_cluster.hpp"

#include <numeric>

#include "common/error.hpp"
#include "grid/loadbalance.hpp"

namespace swraman::sunway {

void CpeCluster::run(const std::function<void(CpeContext&)>& kernel) {
  run("kernel", kernel);
}

void CpeCluster::run(const char* name,
                     const std::function<void(CpeContext&)>& kernel) {
  const std::size_t n = static_cast<std::size_t>(arch_.n_pes);
  if (counters_.empty()) counters_.resize(n);
  if (dead_.empty()) dead_.assign(n, 0);

  // Roll for deaths (one visit per live CPE per launch); deaths are sticky.
  std::vector<std::size_t> alive;
  std::vector<std::size_t> newly_dead;
  for (std::size_t id = 0; id < n; ++id) {
    if (!dead_[id] && fault::should_fire(fault::kCpeDeath)) {
      dead_[id] = 1;
      newly_dead.push_back(id);
    }
    if (!dead_[id]) alive.push_back(id);
  }
  if (alive.empty()) {
    fault::FaultInjector::raise(fault::kCpeDeath);
  }

  // Adopt every dead CPE's logical run through the Algorithm-1 greedy
  // balancer: each survivor already carries one slice, each dead slice
  // goes to whichever survivor carries the least.
  std::vector<std::size_t> adopter_of(n, n);
  std::vector<std::size_t> dead_ids;
  for (std::size_t id = 0; id < n; ++id) {
    if (dead_[id]) dead_ids.push_back(id);
  }
  if (!dead_ids.empty()) {
    const std::vector<std::size_t> weights(dead_ids.size(), 1);
    const std::vector<std::size_t> own_load(alive.size(), 1);
    const std::vector<std::size_t> owner =
        grid::assign_greedy(weights, alive.size(), &own_load);
    for (std::size_t k = 0; k < dead_ids.size(); ++k) {
      adopter_of[dead_ids[k]] = alive[owner[k]];
    }
    for (const std::size_t id : newly_dead) {
      log::warn("fault ", fault::kCpeDeath, ": CPE ", id,
                " died; slice adopted by CPE ", adopter_of[id],
                " (modeled cluster slowdown x",
                static_cast<double>(n) / static_cast<double>(alive.size()),
                ", ", alive.size(), "/", n, " CPEs alive)");
    }
  }

  const auto execute = [&](std::size_t logical_id, std::size_t charge_to) {
    CpeContext ctx(static_cast<int>(logical_id), arch_.n_pes, arch_, name);
    kernel(ctx);
    ctx.finish();
    counters_[charge_to] += ctx.counters();
  };
  for (const std::size_t id : alive) execute(id, id);
  for (const std::size_t id : dead_ids) execute(id, adopter_of[id]);
}

void CpeCluster::reset() {
  counters_.clear();
  dead_.clear();
}

int CpeCluster::n_dead() const {
  return static_cast<int>(
      std::accumulate(dead_.begin(), dead_.end(), std::size_t{0}));
}

CpeCounters CpeCluster::total() const {
  CpeCounters t;
  for (const CpeCounters& c : counters_) t += c;
  return t;
}

KernelWorkload CpeCluster::workload(const std::string& name, double elements,
                                    double vectorizable_fraction) const {
  SWRAMAN_REQUIRE(elements > 0.0, "workload: elements must be positive");
  const CpeCounters t = total();
  KernelWorkload w;
  w.name = name;
  w.elements = elements;
  w.flops_per_element = t.flops / elements;
  w.stream_bytes_per_element = t.dma_bytes / elements;
  w.irregular_bytes_per_element =
      t.direct_mem_accesses * sizeof(double) / elements;
  w.vectorizable_fraction = vectorizable_fraction;
  return w;
}

}  // namespace swraman::sunway
