#pragma once

#include <cstddef>
#include <string>

// Machine parameter sets for the performance model. The SW26010Pro numbers
// follow the paper's Sec. 2.2 description and published SW26010(Pro)
// characterizations; the Xeon E5-2692v2 set models the Tianhe-2 nodes of
// the paper's Fig. 14 baseline. The model is calibrated at the level of
// published bandwidth/latency/throughput ratios — the benchmarks reproduce
// the paper's speedup *shapes*, not silicon-exact timings (DESIGN.md Sec 1).

namespace swraman::sunway {

struct ArchParams {
  std::string name;

  // Accelerator cluster (CPEs) of one core group — or the cores of a CPU.
  int n_pes = 64;                  // processing elements
  double pe_freq_ghz = 2.25;       // clock
  // Effective scalar issue rate on branchy grid kernels (in-order CPE
  // pipeline, no data cache for table searches).
  double pe_flops_per_cycle = 0.35;
  int simd_lanes = 8;              // 512-bit doubles
  double simd_efficiency = 0.30;   // achieved fraction of peak vector speedup

  // Scratchpad + DMA (zero for cache-based CPUs).
  std::size_t ldm_bytes = 256 * 1024;
  double dma_bw_gbs = 51.2;        // aggregate DMA bandwidth per CG
  double dma_startup_cycles = 1500;

  // Direct (non-DMA) main-memory access from a PE: per-element cost.
  double direct_mem_cycles_per_access = 220;

  // Management element (MPE) — the pre-port baseline executes here.
  double mpe_freq_ghz = 2.1;
  double mpe_flops_per_cycle = 1.6;
  double mpe_mem_bw_gbs = 9.0;     // single-core stream

  // RMA mesh between PEs.
  double rma_bw_gbs = 45.0;
  double rma_latency_cycles = 80;

  // One-time cost of spawning a kernel on the CPE cluster.
  double kernel_launch_cycles = 60000;

  // Node-level DRAM bandwidth (all PEs streaming).
  double node_mem_bw_gbs = 51.2;

  // Interconnect (node-to-node) for the collective model.
  double net_latency_us = 1.8;
  double net_bw_gbs = 6.0;
};

// The new-generation Sunway SW26010Pro core group (1 MPE + 64 CPEs).
ArchParams sw26010pro();

// Intel Xeon E5-2692v2 (Tianhe-2): 12 cores, 256-bit AVX, cache hierarchy.
ArchParams xeon_e5_2692v2();

}  // namespace swraman::sunway
