#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sunway/check/check.hpp"

// Shadow state behind swcheck (see check.hpp): per-arena tile registries,
// per-CPE in-flight DMA transfer queues, and the RMA mesh mailbox
// accountant. None of this exists when checked mode is off — the objects
// are only constructed behind the check::enabled() gate.

namespace swraman::sunway {
struct ReplyWord;  // double_buffer.hpp (includes this header indirectly)
}  // namespace swraman::sunway

namespace swraman::sunway::check {

// --- LDM tile registry -----------------------------------------------------

// Tracks every tile an LdmArena hands out: base/size/generation. reset()
// retires the live tiles instead of forgetting them (the arena
// quarantines the backing memory), so a stale pointer still resolves to
// a retired tile and is reported as use-after-reset rather than reading
// freed memory.
class LdmShadow {
 public:
  struct Tile {
    const unsigned char* lo = nullptr;
    const unsigned char* hi = nullptr;  // lo + requested bytes (not padding)
    std::size_t index = 0;              // allocation order within generation
    std::uint64_t generation = 0;
    bool live = false;
  };

  enum class Access { Ok, OutOfBounds, UseAfterReset, Unknown };

  struct Lookup {
    Access access = Access::Unknown;
    const Tile* tile = nullptr;  // provenance when the pointer hit a tile
  };

  LdmShadow() = default;
  LdmShadow(const LdmShadow&) = delete;
  LdmShadow& operator=(const LdmShadow&) = delete;
  ~LdmShadow();

  void on_allocate(const void* ptr, std::size_t bytes);
  void on_reset();

  // Classifies a range access: inside a live tile (Ok), overruns the
  // tile it starts in (OutOfBounds), starts in a retired tile
  // (UseAfterReset), or hits no known tile at all (Unknown).
  [[nodiscard]] Lookup classify(const void* ptr, std::size_t bytes) const;

  // Human-readable provenance ("tile #2 of gen 3, 1024 B at 0x...").
  [[nodiscard]] static std::string describe(const Lookup& lookup);

  [[nodiscard]] std::uint64_t generation() const { return generation_; }
  [[nodiscard]] std::size_t live_tiles() const;

 private:
  std::uint64_t generation_ = 0;
  std::size_t next_index_ = 0;
  std::vector<Tile> tiles_;  // live and retired, in allocation order
};

// --- In-flight DMA tracker -------------------------------------------------

// One per CpeContext in checked mode. Async DMA genuinely defers here:
// dma_get_async/dma_put_async enqueue a transfer record and the copy
// materializes only when dma_wait reaches its sequence number — so a
// read of an un-waited destination, a write-write overlap between
// concurrent transfers, and a wait that can never be satisfied all
// become detectable instead of being hidden by the functional model's
// synchronous memcpy.
class CpeShadow {
 public:
  CpeShadow(int cpe_id, std::string kernel, const LdmShadow* ldm);
  CpeShadow(const CpeShadow&) = delete;
  CpeShadow& operator=(const CpeShadow&) = delete;
  ~CpeShadow();

  // The shadow of the CpeContext currently executing on this thread
  // (contexts nest LIFO); dma_wait uses it to find the pending queue
  // without widening its signature. Null when no checked context is live.
  [[nodiscard]] static CpeShadow* current();

  // Validates the LDM side of an async transfer (bounds, use-after-reset,
  // overlap against every pending transfer) and enqueues it. `copy` runs
  // when a dma_wait materializes the transfer. is_get: the transfer
  // writes [ldm_ptr, ldm_ptr+bytes); put: it reads that range.
  void enqueue(bool is_get, const void* ldm_ptr, std::size_t bytes,
               ReplyWord& reply, std::function<void()> copy);

  // Checked dma_wait: flags reply.value > expected as a protocol
  // violation, materializes this reply word's pending transfers in issue
  // order until reply.value == expected, and reports a wait that runs
  // out of transfers before reaching it (never satisfiable on hardware).
  void wait(ReplyWord& reply, int expected);

  // Validates the LDM side of a synchronous dma_get/dma_put before the
  // copy runs: tile bounds plus overlap with in-flight transfers.
  void check_sync_dma(const void* ldm_ptr, std::size_t bytes,
                      bool writes_ldm, const char* op);

  // Validates a compute access (combine op, kernel loop) to an LDM
  // range: tile bounds plus the in-flight rules — reading a range an
  // un-waited get is still filling, or touching a range a pending
  // transfer uses, is the bug class the paper's pipelines risk.
  void check_access(const void* ptr, std::size_t bytes, bool write,
                    const char* what);

  // End-of-kernel check (CpeContext::finish): every issued transfer must
  // have been waited for; leftovers are reported and discarded.
  void verify_quiesced();

  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  [[nodiscard]] int cpe_id() const { return cpe_id_; }
  [[nodiscard]] const std::string& kernel() const { return kernel_; }

 private:
  struct Transfer {
    std::uint64_t seq = 0;
    bool is_get = false;
    const unsigned char* lo = nullptr;
    const unsigned char* hi = nullptr;
    std::size_t bytes = 0;
    const ReplyWord* reply = nullptr;
    std::string label;  // "dma_get_async #3"
    std::function<void()> copy;
  };

  [[noreturn]] void violate(const char* rule, const std::string& detail);
  void validate_ldm(const void* ptr, std::size_t bytes, const char* what);
  [[nodiscard]] std::string where() const;

  int cpe_id_;
  std::string kernel_;
  const LdmShadow* ldm_;
  std::vector<Transfer> pending_;  // issue order
  std::uint64_t next_seq_ = 1;
  CpeShadow* prev_ = nullptr;  // restored by the destructor (LIFO nesting)
};

// --- RMA mesh checker ------------------------------------------------------

// Accounts matched send/receive pairs per mailbox of the 8x8 CPE mesh
// and detects the two failure modes the hardware punishes: messages
// delivered but never consumed by the owner (silently lost updates) and
// wait-for cycles between CPEs (row/column bus deadlock).
class RmaMeshChecker {
 public:
  explicit RmaMeshChecker(std::size_t n_cpes);

  void record_send(std::size_t src, std::size_t dst, std::size_t bytes);
  // Owner dst consumed everything currently in its inbox.
  void record_drain(std::size_t dst);

  // `waiter` is blocked until `holder` acts (e.g. frees a receive slot).
  void add_wait(std::size_t waiter, std::size_t holder);

  // Reports any wait-for cycle as an rma.deadlock violation, naming the
  // CPEs and their mesh rows/columns along the cycle.
  void check_deadlock() const;

  // Final accounting: every mailbox with sends not matched by a drain is
  // an rma.unconsumed violation; also runs check_deadlock().
  void verify(const char* kernel) const;

  [[nodiscard]] std::uint64_t unconsumed() const;

 private:
  struct Mailbox {
    std::uint64_t sends = 0;
    std::uint64_t bytes = 0;
    std::uint64_t consumed = 0;
  };

  [[nodiscard]] const Mailbox& box(std::size_t src, std::size_t dst) const {
    return mail_[src * n_ + dst];
  }
  [[nodiscard]] Mailbox& box(std::size_t src, std::size_t dst) {
    return mail_[src * n_ + dst];
  }

  std::size_t n_;
  std::vector<Mailbox> mail_;                 // n_ x n_
  std::vector<std::vector<std::size_t>> waits_;  // adjacency: waiter -> holders
};

}  // namespace swraman::sunway::check
