#include "sunway/check/shadow.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "sunway/double_buffer.hpp"

namespace swraman::sunway::check {

namespace {

bool ranges_overlap(const unsigned char* a_lo, const unsigned char* a_hi,
                    const unsigned char* b_lo, const unsigned char* b_hi) {
  return a_lo < b_hi && b_lo < a_hi;
}

std::string hex_ptr(const void* p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

// The thread's innermost checked CpeContext (contexts nest LIFO within a
// thread; CpeCluster::run creates and destroys them sequentially).
thread_local CpeShadow* t_current_shadow = nullptr;

}  // namespace

// --- LdmShadow -------------------------------------------------------------

LdmShadow::~LdmShadow() {
  std::size_t live = 0;
  for (const Tile& t : tiles_) live += t.live ? 1 : 0;
  detail::tiles_add(-static_cast<std::int64_t>(live));
}

void LdmShadow::on_allocate(const void* ptr, std::size_t bytes) {
  Tile t;
  t.lo = static_cast<const unsigned char*>(ptr);
  t.hi = t.lo + bytes;
  t.index = next_index_++;
  t.generation = generation_;
  t.live = true;
  tiles_.push_back(t);
  detail::tiles_add(1);
}

void LdmShadow::on_reset() {
  std::size_t retired = 0;
  for (Tile& t : tiles_) {
    if (t.live) {
      t.live = false;
      ++retired;
    }
  }
  detail::tiles_add(-static_cast<std::int64_t>(retired));
  ++generation_;
  next_index_ = 0;
}

LdmShadow::Lookup LdmShadow::classify(const void* ptr,
                                      std::size_t bytes) const {
  const auto* p = static_cast<const unsigned char*>(ptr);
  Lookup out;
  // Prefer the live tile containing the start; fall back to a retired
  // one (a later allocation never reuses quarantined addresses within
  // this arena's lifetime, so the match is unambiguous).
  const Tile* retired_hit = nullptr;
  for (const Tile& t : tiles_) {
    if (p < t.lo || p >= t.hi) continue;
    if (t.live) {
      out.tile = &t;
      out.access = (p + bytes <= t.hi) ? Access::Ok : Access::OutOfBounds;
      return out;
    }
    retired_hit = &t;
  }
  if (retired_hit != nullptr) {
    out.tile = retired_hit;
    out.access = Access::UseAfterReset;
  }
  return out;
}

std::string LdmShadow::describe(const Lookup& lookup) {
  if (lookup.tile == nullptr) return "no known LDM tile";
  const Tile& t = *lookup.tile;
  std::ostringstream os;
  os << "tile #" << t.index << " of gen " << t.generation << " ("
     << (t.hi - t.lo) << " B at " << hex_ptr(t.lo)
     << (t.live ? ", live" : ", retired by reset()") << ")";
  return os.str();
}

std::size_t LdmShadow::live_tiles() const {
  std::size_t n = 0;
  for (const Tile& t : tiles_) n += t.live ? 1 : 0;
  return n;
}

// --- CpeShadow -------------------------------------------------------------

CpeShadow::CpeShadow(int cpe_id, std::string kernel, const LdmShadow* ldm)
    : cpe_id_(cpe_id),
      kernel_(std::move(kernel)),
      ldm_(ldm),
      prev_(t_current_shadow) {
  t_current_shadow = this;
}

CpeShadow::~CpeShadow() {
  t_current_shadow = prev_;
  detail::transfers_add(-static_cast<std::int64_t>(pending_.size()));
}

CpeShadow* CpeShadow::current() { return t_current_shadow; }

std::string CpeShadow::where() const {
  std::ostringstream os;
  os << "kernel=" << (kernel_.empty() ? "?" : kernel_) << " cpe=" << cpe_id_;
  return os.str();
}

void CpeShadow::violate(const char* rule, const std::string& detail) {
  report(rule, where() + ": " + detail);
}

void CpeShadow::validate_ldm(const void* ptr, std::size_t bytes,
                             const char* what) {
  if (ldm_ == nullptr) return;
  const LdmShadow::Lookup lk = ldm_->classify(ptr, bytes);
  switch (lk.access) {
    case LdmShadow::Access::Ok:
      return;
    case LdmShadow::Access::OutOfBounds: {
      std::ostringstream os;
      os << what << " of " << bytes << " B at " << hex_ptr(ptr)
         << " overruns " << LdmShadow::describe(lk);
      violate(kRuleLdmBounds, os.str());
    }
    case LdmShadow::Access::UseAfterReset: {
      std::ostringstream os;
      os << what << " of " << bytes << " B at " << hex_ptr(ptr)
         << " touches " << LdmShadow::describe(lk)
         << " — tile generation " << lk.tile->generation
         << " is stale (arena is at gen " << ldm_->generation() << ")";
      violate(kRuleLdmUseAfterReset, os.str());
    }
    case LdmShadow::Access::Unknown: {
      std::ostringstream os;
      os << what << " of " << bytes << " B at " << hex_ptr(ptr)
         << " is not within any live LDM tile";
      violate(kRuleLdmBounds, os.str());
    }
  }
}

void CpeShadow::enqueue(bool is_get, const void* ldm_ptr, std::size_t bytes,
                        ReplyWord& reply, std::function<void()> copy) {
  const char* op = is_get ? "dma_get_async" : "dma_put_async";
  validate_ldm(ldm_ptr, bytes, op);
  const auto* lo = static_cast<const unsigned char*>(ldm_ptr);
  const unsigned char* hi = lo + bytes;
  for (const Transfer& t : pending_) {
    if (!ranges_overlap(lo, hi, t.lo, t.hi)) continue;
    // A new get writes the range; any overlap with an in-flight transfer
    // (concurrent write-write, or clobbering a range a put is still
    // reading) is unordered on hardware. A new put reading a range an
    // in-flight get is filling reads undefined bytes. Two overlapping
    // puts both read — harmless.
    if (!is_get && !t.is_get) continue;
    std::ostringstream os;
    os << op << " #" << next_seq_ << " on [" << hex_ptr(lo) << ", +"
       << bytes << ") overlaps in-flight " << t.label << " on ["
       << hex_ptr(t.lo) << ", +" << t.bytes << ")";
    violate(kRuleDmaOverlap, os.str());
  }
  Transfer t;
  t.seq = next_seq_++;
  t.is_get = is_get;
  t.lo = lo;
  t.hi = hi;
  t.bytes = bytes;
  t.reply = &reply;
  t.label = std::string(op) + " #" + std::to_string(t.seq);
  t.copy = std::move(copy);
  pending_.push_back(std::move(t));
  detail::transfers_add(1);
}

void CpeShadow::wait(ReplyWord& reply, int expected) {
  if (reply.value > expected) {
    std::ostringstream os;
    os << "dma_wait: reply word already at " << reply.value
       << ", past expected " << expected
       << " — a stale wait like this lets a subsequent read race the "
          "engine on hardware";
    violate(kRuleDmaReplyOverrun, os.str());
  }
  while (reply.value < expected) {
    // Materialize this reply word's oldest pending transfer (hardware
    // completion order is modeled as issue order).
    auto it = std::find_if(
        pending_.begin(), pending_.end(),
        [&reply](const Transfer& t) { return t.reply == &reply; });
    if (it == pending_.end()) {
      std::ostringstream os;
      os << "dma_wait: expected reply value " << expected << " but only "
         << reply.value
         << " transfers were issued on this reply word (pending on others: "
         << pending_.size() << ") — this wait never completes on hardware";
      violate(kRuleDmaWaitUnreachable, os.str());
    }
    it->copy();
    pending_.erase(it);
    detail::transfers_add(-1);
    ++reply.value;
  }
}

void CpeShadow::check_sync_dma(const void* ldm_ptr, std::size_t bytes,
                               bool writes_ldm, const char* op) {
  validate_ldm(ldm_ptr, bytes, op);
  const auto* lo = static_cast<const unsigned char*>(ldm_ptr);
  const unsigned char* hi = lo + bytes;
  for (const Transfer& t : pending_) {
    if (!ranges_overlap(lo, hi, t.lo, t.hi)) continue;
    if (!writes_ldm && !t.is_get) continue;  // both read: harmless
    std::ostringstream os;
    os << "synchronous " << op << " on [" << hex_ptr(lo) << ", +" << bytes
       << ") overlaps in-flight " << t.label << " on [" << hex_ptr(t.lo)
       << ", +" << t.bytes << ") that was never waited for";
    violate(kRuleDmaOverlap, os.str());
  }
}

void CpeShadow::check_access(const void* ptr, std::size_t bytes, bool write,
                             const char* what) {
  validate_ldm(ptr, bytes, what);
  const auto* lo = static_cast<const unsigned char*>(ptr);
  const unsigned char* hi = lo + bytes;
  for (const Transfer& t : pending_) {
    if (!ranges_overlap(lo, hi, t.lo, t.hi)) continue;
    // Reading a range an un-waited get is filling yields garbage on
    // hardware; writing a range any in-flight transfer uses races it.
    if (!write && !t.is_get) continue;
    std::ostringstream os;
    os << what << (write ? " (write)" : " (read)") << " on [" << hex_ptr(lo)
       << ", +" << bytes << ") overlaps un-waited " << t.label << " on ["
       << hex_ptr(t.lo) << ", +" << t.bytes
       << ") — missing dma_wait before touching this tile";
    violate(kRuleDmaInFlight, os.str());
  }
}

void CpeShadow::verify_quiesced() {
  if (pending_.empty()) return;
  std::ostringstream os;
  os << pending_.size() << " transfer(s) still in flight at kernel finish:";
  for (const Transfer& t : pending_) {
    os << " " << t.label << " [" << hex_ptr(t.lo) << ", +" << t.bytes << ")";
  }
  os << " — their dma_wait never ran";
  // Discard before reporting so a caught violation leaves no stale
  // shadow state behind (report() throws).
  detail::transfers_add(-static_cast<std::int64_t>(pending_.size()));
  pending_.clear();
  violate(kRuleDmaUnwaited, os.str());
}

// --- RmaMeshChecker --------------------------------------------------------

namespace {

// Mesh coordinates of a CPE on the 8x8 grid (row/column buses).
std::string mesh_pos(std::size_t cpe) {
  std::ostringstream os;
  os << "CPE " << cpe << " (row " << cpe / 8 << ", col " << cpe % 8 << ")";
  return os.str();
}

}  // namespace

RmaMeshChecker::RmaMeshChecker(std::size_t n_cpes)
    : n_(n_cpes), mail_(n_cpes * n_cpes), waits_(n_cpes) {}

void RmaMeshChecker::record_send(std::size_t src, std::size_t dst,
                                 std::size_t bytes) {
  Mailbox& m = box(src, dst);
  m.sends += 1;
  m.bytes += bytes;
}

void RmaMeshChecker::record_drain(std::size_t dst) {
  for (std::size_t src = 0; src < n_; ++src) {
    Mailbox& m = box(src, dst);
    m.consumed = m.sends;
  }
}

void RmaMeshChecker::add_wait(std::size_t waiter, std::size_t holder) {
  waits_[waiter].push_back(holder);
}

void RmaMeshChecker::check_deadlock() const {
  // Iterative DFS with colors; the first back edge closes a cycle.
  enum : unsigned char { White, Grey, Black };
  std::vector<unsigned char> color(n_, White);
  std::vector<std::size_t> parent(n_, n_);
  for (std::size_t root = 0; root < n_; ++root) {
    if (color[root] != White) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = Grey;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < waits_[u].size()) {
        const std::size_t v = waits_[u][next++];
        if (color[v] == Grey) {
          // Reconstruct u -> ... -> v -> u.
          std::ostringstream os;
          os << "wait-for cycle on the RMA mesh: " << mesh_pos(v);
          std::vector<std::size_t> chain{u};
          for (std::size_t w = u; w != v && parent[w] != n_;
               w = parent[w]) {
            chain.push_back(parent[w]);
          }
          for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            os << " <- " << mesh_pos(*it);
          }
          os << " <- " << mesh_pos(v)
             << " — every CPE in the cycle waits on the next; the mesh "
                "deadlocks";
          report(kRuleRmaDeadlock, os.str());
        }
        if (color[v] == White) {
          color[v] = Grey;
          parent[v] = u;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = Black;
        stack.pop_back();
      }
    }
  }
}

void RmaMeshChecker::verify(const char* kernel) const {
  check_deadlock();
  std::uint64_t lost_msgs = 0;
  std::uint64_t lost_bytes = 0;
  std::ostringstream detail;
  for (std::size_t src = 0; src < n_; ++src) {
    for (std::size_t dst = 0; dst < n_; ++dst) {
      const Mailbox& m = box(src, dst);
      if (m.consumed >= m.sends) continue;
      const std::uint64_t lost = m.sends - m.consumed;
      if (lost_msgs == 0) detail << " unconsumed mailboxes:";
      detail << " " << src << "->" << dst << " (" << lost << " msg)";
      lost_msgs += lost;
      lost_bytes += m.bytes;
    }
  }
  if (lost_msgs == 0) return;
  std::ostringstream os;
  os << "kernel=" << kernel << ": " << lost_msgs
     << " RMA message(s) were delivered but never consumed by their "
        "owner"
     << detail.str() << " — on hardware these updates are silently lost";
  report(kRuleRmaUnconsumed, os.str());
}

std::uint64_t RmaMeshChecker::unconsumed() const {
  std::uint64_t lost = 0;
  for (const Mailbox& m : mail_) {
    lost += m.sends > m.consumed ? m.sends - m.consumed : 0;
  }
  return lost;
}

}  // namespace swraman::sunway::check
