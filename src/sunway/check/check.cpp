#include "sunway/check/check.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "common/logging.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swraman::sunway::check {

namespace detail {
std::atomic<bool> g_check_enabled{false};
}  // namespace detail

namespace {

// Leaked singleton: the atexit summary writer may run after other
// statics are destroyed (same pattern as the obs trace buffer).
struct Tally {
  std::mutex mutex;
  std::map<std::string, std::uint64_t> by_rule;
  std::uint64_t total = 0;
};

Tally& tally() {
  static Tally* t = new Tally;
  return *t;
}

std::atomic<std::int64_t> g_live_tiles{0};
std::atomic<std::int64_t> g_live_transfers{0};

bool env_truthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "off" && s != "false" && s != "OFF" && s != "no";
}

void write_env_summary() {
  const char* path = std::getenv("SWRAMAN_CHECK_FILE");
  const std::string json = summary_json();
  if (path == nullptr || *path == '\0' || std::string(path) == "-") {
    std::cerr << json << "\n";
    return;
  }
  // Appended, not truncated: SWRAMAN_CHECK_FILE is shared with lockcheck
  // as a JSON-lines file, one line per checker; both EnvInits truncate
  // it at static init (idempotent, pre-main) and both exit hooks append.
  std::ofstream out(path, std::ios::app);
  if (!out) {
    log::error("swcheck: cannot open summary file ", path);
    return;
  }
  out << json << "\n";
}

// Reads SWRAMAN_CHECK at static-initialization time so any binary —
// bench, example, test — runs checked without touching its main(); the
// exit hook writes the machine-readable summary.
struct EnvInit {
  EnvInit() {
    tally();  // force construction before any atexit callback may run
    if (env_truthy(std::getenv("SWRAMAN_CHECK"))) {
      set_enabled(true);
      const char* path = std::getenv("SWRAMAN_CHECK_FILE");
      if (path != nullptr && *path != '\0' && std::string(path) != "-") {
        const std::ofstream trunc(path, std::ios::trunc);
      }
      std::atexit(write_env_summary);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void set_enabled(bool on) {
  detail::g_check_enabled.store(on, std::memory_order_relaxed);
}

namespace {

// Shared recording path of report()/note(): tally, counter, instant, log.
std::string record_violation(const char* rule, const std::string& context) {
  {
    Tally& t = tally();
    const std::scoped_lock lock(t.mutex);
    ++t.by_rule[rule];
    ++t.total;
  }
  // The violations counter bypasses the obs::count() tracing gate: a
  // checked run must tally violations whether or not tracing is on. The
  // instant event stays gated (it is trace data).
  obs::Registry::instance().counter("check.violations").add(1.0);
  obs::instant("check.violation", "rule", std::string(rule));
  const std::string what =
      std::string("swcheck[") + rule + "]: " + context;
  log::error(what);
  return what;
}

}  // namespace

void report(const char* rule, const std::string& context) {
  const std::string what = record_violation(rule, context);
  // A throwing violation is a crash-grade event: dump the flight rings
  // before unwinding so the postmortem shows what led up to it.
  obs::flight::dump("check.violation");
  throw CheckViolation(rule, what);
}

void note(const char* rule, const std::string& context) {
  record_violation(rule, context);
}

std::map<std::string, std::uint64_t> violation_counts() {
  Tally& t = tally();
  const std::scoped_lock lock(t.mutex);
  return t.by_rule;
}

std::uint64_t total_violations() {
  Tally& t = tally();
  const std::scoped_lock lock(t.mutex);
  return t.total;
}

std::string summary_json() {
  Tally& t = tally();
  const std::scoped_lock lock(t.mutex);
  std::ostringstream os;
  os << "{\"schema\":\"swraman-check-v1\",\"enabled\":"
     << (enabled() ? "true" : "false") << ",\"violations\":" << t.total
     << ",\"rules\":{";
  bool first = true;
  for (const auto& [rule, n] : t.by_rule) {
    if (!first) os << ",";
    first = false;
    os << "\"" << rule << "\":" << n;
  }
  os << "}}";
  return os.str();
}

bool write_summary(const std::string& path) {
  const std::string json = summary_json();
  if (path.empty() || path == "-") {
    std::cerr << json << "\n";
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    log::error("swcheck: cannot open summary file ", path);
    return false;
  }
  out << json << "\n";
  return static_cast<bool>(out);
}

void reset_for_testing() {
  Tally& t = tally();
  const std::scoped_lock lock(t.mutex);
  t.by_rule.clear();
  t.total = 0;
}

std::int64_t live_shadow_tiles() {
  return g_live_tiles.load(std::memory_order_relaxed);
}

std::int64_t live_transfers() {
  return g_live_transfers.load(std::memory_order_relaxed);
}

namespace detail {

void tiles_add(std::int64_t n) {
  g_live_tiles.fetch_add(n, std::memory_order_relaxed);
}

void transfers_add(std::int64_t n) {
  g_live_transfers.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace swraman::sunway::check
