#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/error.hpp"

// swcheck — shadow-state correctness checker for the Sunway execution
// model (DESIGN.md S9). The functional CpeCluster model completes every
// DMA synchronously, so a kernel with a broken reply-word protocol (a
// missing dma_wait, an overrunning tile, a read of a buffer whose
// transfer is still in flight) produces correct numerics here and
// garbage on the real SW26010Pro. Checked mode closes that gap: it
// maintains shadow state for every LDM tile and DMA/RMA operation and
// turns latent protocol violations into hard, attributed errors.
//
// Enabling: SWRAMAN_CHECK=1 in the environment (read at static init,
// like SWRAMAN_TRACE), or check::set_enabled(true) / ScopedChecking in
// tests. Disabled cost is a single relaxed atomic load per DMA call —
// no shadow state is allocated and no branch beyond the gate runs.
//
// Every violation is (a) recorded in a process-wide tally by rule name,
// (b) emitted through the obs layer (an instant event plus the
// "check.violations" counter), and (c) thrown as CheckViolation with
// kernel name, CPE id, and tile provenance in the message. When checked
// mode was enabled from the environment, an exit hook writes a
// machine-readable JSON summary (SWRAMAN_CHECK_FILE, default stderr).

namespace swraman::sunway::check {

namespace detail {
extern std::atomic<bool> g_check_enabled;
}  // namespace detail

// Hot-path gate: one relaxed load (the "one branch per DMA call" the
// disabled mode is allowed to cost).
inline bool enabled() {
  return detail::g_check_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

// Canonical rule names — the keys of the exit summary and of
// violation_counts(). Tests assert on these.
inline constexpr const char* kRuleLdmBounds = "ldm.bounds";
inline constexpr const char* kRuleLdmUseAfterReset = "ldm.use_after_reset";
inline constexpr const char* kRuleDmaInFlight = "dma.inflight_access";
inline constexpr const char* kRuleDmaOverlap = "dma.overlap";
inline constexpr const char* kRuleDmaWaitUnreachable = "dma.wait_unreachable";
inline constexpr const char* kRuleDmaReplyOverrun = "dma.reply_overrun";
inline constexpr const char* kRuleDmaUnwaited = "dma.unwaited_at_finish";
inline constexpr const char* kRuleRmaUnconsumed = "rma.unconsumed";
inline constexpr const char* kRuleRmaDeadlock = "rma.deadlock";
inline constexpr const char* kRuleCollAbandoned = "coll.abandoned_request";

// Records the violation (tally + obs instant + check.violations counter)
// and throws CheckViolation. `context` should already carry kernel name,
// CPE id, and tile provenance; report() prefixes the rule.
[[noreturn]] void report(const char* rule, const std::string& context);

// Same recording as report() but does not throw — for violations detected
// on paths that must not unwind (destructors, communication threads). The
// caller decides what, if anything, to do next.
void note(const char* rule, const std::string& context);

// Process-wide tally of reported violations by rule (includes thrown
// ones — recording happens before the throw).
[[nodiscard]] std::map<std::string, std::uint64_t> violation_counts();
[[nodiscard]] std::uint64_t total_violations();

// Serializes the current tally as the machine-readable summary JSON.
[[nodiscard]] std::string summary_json();

// Writes summary_json() to `path` ("-" or empty: stderr). Returns false
// when the file could not be opened.
bool write_summary(const std::string& path);

// Clears the tally (tests).
void reset_for_testing();

// Live shadow-object accounting, used by the leak tests: every
// registered tile / enqueued transfer increments, retirement or
// materialization decrements, and shadow destruction releases the rest.
// Both must return to zero once all CpeContexts are gone — including
// after sunway.cpe.death adoptions and sunway.dma.fail retries.
[[nodiscard]] std::int64_t live_shadow_tiles();
[[nodiscard]] std::int64_t live_transfers();

namespace detail {
void tiles_add(std::int64_t n);
void transfers_add(std::int64_t n);
}  // namespace detail

// RAII enable/disable for tests; restores the previous state and clears
// the tally on both ends so violations never leak across test cases.
class ScopedChecking {
 public:
  explicit ScopedChecking(bool on = true) : prev_(enabled()) {
    reset_for_testing();
    set_enabled(on);
  }
  ScopedChecking(const ScopedChecking&) = delete;
  ScopedChecking& operator=(const ScopedChecking&) = delete;
  ~ScopedChecking() {
    set_enabled(prev_);
    reset_for_testing();
  }

 private:
  bool prev_;
};

}  // namespace swraman::sunway::check
