#include "sunway/arch.hpp"

namespace swraman::sunway {

ArchParams sw26010pro() {
  ArchParams p;
  p.name = "SW26010Pro-CG";
  // Defaults in the struct are the SW26010Pro core group.
  return p;
}

ArchParams xeon_e5_2692v2() {
  ArchParams p;
  p.name = "Xeon-E5-2692v2";
  p.n_pes = 12;
  p.pe_freq_ghz = 2.2;
  p.pe_flops_per_cycle = 3.0;  // out-of-order core, cached tables
  p.simd_lanes = 4;            // 256-bit AVX doubles
  p.simd_efficiency = 0.55;
  p.ldm_bytes = 0;             // cache-based: no explicit scratchpad
  p.dma_bw_gbs = 0.0;
  p.dma_startup_cycles = 0.0;
  p.direct_mem_cycles_per_access = 25;  // cache hierarchy amortizes
  p.mpe_freq_ghz = 2.2;
  p.mpe_flops_per_cycle = 2.0;
  p.mpe_mem_bw_gbs = 12.0;
  p.rma_bw_gbs = 30.0;         // shared L3 as the on-chip exchange
  p.rma_latency_cycles = 40;
  p.node_mem_bw_gbs = 48.0;
  p.net_latency_us = 1.5;      // TH Express-2
  p.net_bw_gbs = 10.0;
  return p;
}

}  // namespace swraman::sunway
