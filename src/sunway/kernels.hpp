#pragma once

#include <cstddef>
#include <vector>

#include "common/vec3.hpp"
#include "hartree/ewald.hpp"
#include "hartree/multipole.hpp"
#include "obs/trace.hpp"
#include "sunway/cpe_cluster.hpp"

// The DFPT hotspot kernels in their Sunway form (paper Sec. 3.2):
//
//  * kernel1 — real-space response potential: cubic-spline interpolation
//    (CSI, Algorithm 2) of the per-atom multipole channels, evaluated from
//    structure-of-arrays monomial coefficient tables; scalar and genuinely
//    vectorized (8-lane poly3) execution.
//  * kernel2 — reciprocal-space potential update: the Ewald G-sum with the
//    irregular structure-factor gather (the "WPxy" pattern of Fig. 5).
//  * n1 / H1 batch kernels — response density and response Hamiltonian as
//    batch-local matrix work, executed on the CPE model for operation
//    counting (their numerics live in scf::ScfEngine).
//
// Host functions produce reference results; *_cpe variants run on the
// CpeCluster with LDM tiling + DMA counting and must match bit-for-bit
// (same arithmetic, different orchestration).

namespace swraman::sunway {

enum class ExecMode { Scalar, Simd };

// Attaches the cost model's view of a kernel execution to its trace span:
// counter deltas since `before` (flops, DMA, RMA) plus the modeled cycles
// for the MPE-scalar and CPE-tiled variants — the attributes
// scripts/hotspots.py ranks phases by. Shared by every CPE-modeled kernel
// in the repo (kernel1/kernel2/n1/H1 here, fmmM2L/fmmP2P in src/fmm).
void attach_kernel_span_attrs(obs::ScopedSpan& span, const CpeCluster& cluster,
                              const CpeCounters& before, double elements,
                              double vectorizable_fraction);

// --- kernel1: CSI real-space potential ---

struct CsiAtomTable {
  Vec3 center;
  double outer_radius = 0.0;
  std::vector<double> knots;    // shell radii (ascending)
  // coeff[(interval * 4 + c) * n_lm + lm]: monomial c of channel lm.
  std::vector<double> coeff;
  std::vector<double> moments;  // far-field q_lm
};

struct CsiTables {
  int lmax = 0;
  std::size_t n_lm = 0;
  std::vector<CsiAtomTable> atoms;

  [[nodiscard]] std::size_t coeff_bytes() const;
};

CsiTables build_csi_tables(const hartree::MultipolePotential& potential);

// Host execution; out[i] = V(points[i]). Must match
// MultipolePotential::value to rounding.
void real_space_potential(const CsiTables& tables, const Vec3* points,
                          std::size_t n, double* out, ExecMode mode);

// CPE-cluster execution: points tiled over CPEs and through LDM.
void real_space_potential_cpe(CpeCluster& cluster, const CsiTables& tables,
                              const Vec3* points, std::size_t n, double* out,
                              ExecMode mode);

// --- kernel2: reciprocal-space potential ---

struct ReciprocalTables {
  std::vector<Vec3> g;
  std::vector<double> coef;      // "electrostatic coef" of Fig. 5
  std::vector<double> str_cos;   // the irregularly gathered WPxy data
  std::vector<double> str_sin;
  std::vector<std::size_t> gather_index;  // k_points_es-style indirection
};

ReciprocalTables build_reciprocal_tables(const hartree::Ewald& ewald);

void reciprocal_potential(const ReciprocalTables& tables, const Vec3* points,
                          std::size_t n, double* out);

void reciprocal_potential_cpe(CpeCluster& cluster,
                              const ReciprocalTables& tables,
                              const Vec3* points, std::size_t n, double* out);

// --- n1 / H1 batch kernels (operation-count models on real batch shapes) --

struct BatchShape {
  std::size_t n_fns = 0;
  std::size_t n_points = 0;
};

// Executes the response-density batch contraction n(r) = sum_uv P_uv
// chi_u chi_v on synthetic data of the given shapes, tiling through LDM;
// returns the summarizing workload.
KernelWorkload run_density_batches(CpeCluster& cluster,
                                   const std::vector<BatchShape>& batches);

// Response-Hamiltonian batch integration + scatter-add (the distributed
// reduction feeds rma_reduce).
KernelWorkload run_hamiltonian_batches(CpeCluster& cluster,
                                       const std::vector<BatchShape>& batches);

}  // namespace swraman::sunway
