#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <string>

#include "sunway/cpe_cluster.hpp"

// Paper Algorithm 3: pipelined local reduction on a CPE with asynchronous
// batch transfers and a reply word. The LDM buffer is split into four
// blocks — blocks 0/1 form buffer A (destination/source), blocks 2/3 form
// buffer B — and the read of buffer B overlaps the combine of buffer A.
// The functional implementation executes the exact control flow (async
// get, reply-word waits, ping-pong swap, tail flush) while counting the
// DMA transactions the cost model charges.

namespace swraman::sunway {

// Emulated DMA "reply word": every completed transfer increments it; the
// pipeline spins until the expected count is reached (functionally a
// no-op, structurally identical to the hardware protocol).
struct ReplyWord {
  int value = 0;
};

// Asynchronous copy with reply accounting. Unchecked: completes
// immediately (functional model) but is charged as one DMA transaction.
// Checked mode (SWRAMAN_CHECK=1): the transfer is genuinely deferred —
// an in-flight record is enqueued (validated against the tile registry
// and every other pending transfer) and the copy materializes only when
// dma_wait reaches it, so a missing wait produces a hard checker error
// here instead of silent corruption on hardware.
template <typename T>
void dma_get_async(CpeContext& ctx, T* dst_ldm, const T* src_mem,
                   std::size_t n, ReplyWord& reply) {
  if (check::CpeShadow* sh = ctx.shadow()) {
    ctx.dma_charge_async("dma_get", n * sizeof(T));
    sh->enqueue(true, dst_ldm, n * sizeof(T), reply, [dst_ldm, src_mem, n] {
      std::memcpy(dst_ldm, src_mem, n * sizeof(T));
    });
    return;
  }
  ctx.dma_get(dst_ldm, src_mem, n);
  ++reply.value;
}

template <typename T>
void dma_put_async(CpeContext& ctx, const T* src_ldm, T* dst_mem,
                   std::size_t n, ReplyWord& reply) {
  if (check::CpeShadow* sh = ctx.shadow()) {
    ctx.dma_charge_async("dma_put", n * sizeof(T));
    sh->enqueue(false, src_ldm, n * sizeof(T), reply, [src_ldm, dst_mem, n] {
      std::memcpy(dst_mem, src_ldm, n * sizeof(T));
    });
    return;
  }
  ctx.dma_put(src_ldm, dst_mem, n);
  ++reply.value;
}

inline void dma_wait(ReplyWord& reply, int expected) {
  // Checked mode: materialize deferred transfers up to `expected`, flag
  // an over-incremented reply word (value > expected — a stale wait) and
  // a wait no pending transfer can ever satisfy.
  if (check::enabled()) {
    if (check::CpeShadow* sh = check::CpeShadow::current()) {
      sh->wait(reply, expected);
      return;
    }
  }
  // Hardware: spin on the reply word. Functional: transfers are already
  // complete; assert the protocol was respected.
  SWRAMAN_REQUIRE(reply.value >= expected,
                  "dma_wait: reply word behind schedule (value=" +
                      std::to_string(reply.value) + ", expected=" +
                      std::to_string(expected) + ") — pipeline bug");
}

// Element-wise combine used by the reduction (Op in Algorithm 3).
using CombineOp = std::function<void(double* dst, const double* src,
                                     std::size_t n)>;

inline void sum_op(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

// Algorithm 3 (paper Sec. 3.4): dst[i] = Op(dst[i], src[i]) for i < count,
// streamed through the CPE's LDM in double-buffered blocks. ldm_buf_doubles
// is the total scratch budget (split into 4 blocks); it must fit the
// context's arena. Returns the number of pipeline stages executed.
std::size_t reduce_local_pipelined(CpeContext& ctx, double* dst,
                                   const double* src, std::size_t count,
                                   std::size_t ldm_buf_doubles,
                                   const CombineOp& op = sum_op);

}  // namespace swraman::sunway
