#include "sunway/double_buffer.hpp"

#include <algorithm>

namespace swraman::sunway {

namespace {

// Algorithm 3's combine touches two LDM ranges; annotate them so checked
// mode catches a combine racing an un-waited transfer (the classic
// missing-dma_wait pipeline bug). Unchecked cost: one predicted branch.
void checked_combine(CpeContext& ctx, const CombineOp& op, double* dst,
                     const double* src, std::size_t n) {
  if (ctx.checked()) {
    ctx.check_ldm_write(dst, n * sizeof(double), "combine dst");
    ctx.check_ldm_read(src, n * sizeof(double), "combine src");
  }
  op(dst, src, n);
}

}  // namespace

std::size_t reduce_local_pipelined(CpeContext& ctx, double* dst,
                                   const double* src, std::size_t count,
                                   std::size_t ldm_buf_doubles,
                                   const CombineOp& op) {
  SWRAMAN_REQUIRE(ldm_buf_doubles >= 8,
                  "reduce_local_pipelined: LDM budget too small");
  // Algorithm 3 line 3: blk_sz = Ldm_buf_sz / 4.
  const std::size_t blk = ldm_buf_doubles / 4;

  ctx.ldm().reset();
  double* ldm = ctx.ldm().allocate<double>(4 * blk);
  double* buf_a = ldm;            // blocks 0 (dst) and 1 (src)
  double* buf_b = ldm + 2 * blk;  // blocks 2 and 3

  const std::size_t blks = count / blk;  // full blocks (line 4)
  ReplyWord reply;                       // line 5
  double* cur = buf_a;                   // line 6
  double* next = buf_b;                  // line 7

  std::size_t transferred = 0;
  std::size_t stages = 0;
  int i = 0;

  // Prologue (lines 9-14): prefetch the first block pair.
  if (blks > 0) {
    dma_get_async(ctx, cur, dst, blk, reply);
    dma_get_async(ctx, cur + blk, src, blk, reply);
    transferred += blk;
    ++i;
  }

  // Steady state (lines 16-28): read block i+1 into `next` while combining
  // block i in `cur`, then write the result back.
  while (transferred < blks * blk) {
    dma_wait(reply, 3 * i - 1);  // line 17: both reads of `cur` done
    double* tmpdst = dst + transferred;
    const double* tmpsrc = src + transferred;
    dma_get_async(ctx, next, tmpdst, blk, reply);           // line 21
    dma_get_async(ctx, next + blk, tmpsrc, blk, reply);     // line 22
    checked_combine(ctx, op, cur, cur + blk, blk);          // line 23
    dma_put_async(ctx, cur, dst + transferred - blk, blk, reply);  // 24
    transferred += blk;
    ++i;
    std::swap(cur, next);  // line 27 (ping-pong)
    ++stages;
  }

  // Epilogue (lines 30-37): combine and flush the last full block.
  if (blks > 0) {
    dma_wait(reply, 3 * i - 1);
    checked_combine(ctx, op, cur, cur + blk, blk);
    ctx.dma_put(cur, dst + transferred - blk, blk);
    ++stages;
  }

  // Remainder shorter than one block: single staged pass (the hardware
  // code falls back to a synchronous tail as well).
  const std::size_t tail = count - blks * blk;
  if (tail > 0) {
    ctx.dma_get(buf_a, dst + blks * blk, tail);
    ctx.dma_get(buf_a + blk, src + blks * blk, tail);
    checked_combine(ctx, op, buf_a, buf_a + blk, tail);
    ctx.dma_put(buf_a, dst + blks * blk, tail);
    ++stages;
  }
  ctx.charge_flops(static_cast<double>(count));
  return stages;
}

}  // namespace swraman::sunway
