#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sunway/cpe_cluster.hpp"

// Distributed large-array reduction over the CPE RMA mesh (paper Sec. 3.3,
// Fig. 8): the target array arr[idx] += val, with idx irregular and arr too
// large for any LDM, is partitioned into 64 ownership ranges. Each CPE
// routes its contributions to the owner through per-destination send
// buffers (flushed by RMA when full); owners apply updates through an
// LDM-resident block cache of their range, flushing dirty blocks back to
// main memory by DMA. This replaces the lock-contended direct-update
// scheme whose serialization the paper calls out.

namespace swraman::sunway {

struct Contribution {
  std::size_t index = 0;
  double value = 0.0;
};

struct RmaReduceOptions {
  std::size_t send_buffer_entries = 64;  // S0..S63 capacity (paper Step 2)
  std::size_t ldm_block_doubles = 2048;  // owner's cached block ("buf")
};

struct RmaReduceStats {
  double rma_messages = 0.0;
  double rma_bytes = 0.0;
  double dma_block_transfers = 0.0;
  double dma_bytes = 0.0;
  double updates = 0.0;
  // Messages the injector dropped (sunway.rma.drop) and the mesh resent;
  // the dropped attempts are also counted in rma_messages/rma_bytes since
  // they consumed mesh bandwidth.
  double rma_retransmits = 0.0;
};

// Reduces contributions[cpe] into arr (accumulating). Functionally exact
// (up to fp associativity); stats expose the communication the cost model
// charges. contributions.size() defines the CPE count.
RmaReduceStats rma_array_reduction(
    const std::vector<std::vector<Contribution>>& contributions,
    std::vector<double>& arr, const RmaReduceOptions& options = {});

// Reference implementation with a single lock-style serial pass — the
// baseline the paper's Fig. 8 scheme replaces; used for testing and as the
// ablation baseline.
void serial_array_reduction(
    const std::vector<std::vector<Contribution>>& contributions,
    std::vector<double>& arr);

}  // namespace swraman::sunway
