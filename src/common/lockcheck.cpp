#include "common/lockcheck.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.hpp"

namespace swraman::lockcheck {

namespace detail {
std::atomic<bool> g_lockcheck_enabled{false};
}  // namespace detail

namespace {

// One entry per checked lock the calling thread currently holds. The
// raw pointer is only ever *compared* (release matching, condvar
// exemption), never dereferenced — a stale entry left by an
// enable-toggle mid-hold cannot dangle into freed memory.
struct HeldLock {
  const CheckedMutex* mutex = nullptr;
  std::uint32_t cls = 0;
  bool allows_blocking = false;
  const char* name = "";
  const char* file = "";  // acquisition site, not construction site
  std::uint32_t line = 0;
};

thread_local std::vector<HeldLock> t_held;

// Reentrancy guard: reporting a violation bumps obs counters and dumps
// the flight recorder, both of which take migrated CheckedMutexes.
// Instrumentation is a no-op while a report is in flight on this
// thread, so the checker can never deadlock or recurse through itself.
thread_local int t_depth = 0;

struct Reentry {
  Reentry() { ++t_depth; }
  ~Reentry() { --t_depth; }
};

// Provenance of the first observation of an order edge A -> B: where A
// was held and where B was acquired. This is what makes a cycle report
// actionable long after the first-direction acquisition happened.
struct EdgeProv {
  std::string held_at;
  std::string acq_at;
};

// Leaked singleton: the atexit summary writer may run after other
// statics are destroyed (same pattern as swcheck and the obs buffers).
// Internal state is guarded by a plain std::mutex — the checker is the
// sanctioned home for one (lint rule 6); instrumenting it would
// recurse.
struct State {
  std::mutex mutex;
  std::map<std::string, std::uint32_t> site_ids;  // "file:line" -> id
  std::vector<SiteInfo> site_infos;
  // Acquisition-order graph over lock-class ids: edges[a][b] exists
  // when some thread acquired class b while holding class a.
  std::map<std::uint32_t, std::map<std::uint32_t, EdgeProv>> edges;
  std::map<std::string, std::uint64_t> by_rule;
  std::uint64_t total = 0;
  ObsSinks sinks;
};

State& state() {
  static State* s = new State;
  return *s;
}

bool env_truthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "off" && s != "false" && s != "OFF" && s != "no";
}

// Compiler __FILE__ paths are absolute on this builder; trim to the
// repo-relative tail so site ids read as src/serve/service.hpp:207.
std::string trim_path(const std::string& file) {
  for (const char* anchor : {"/src/", "/tests/", "/bench/", "/examples/"}) {
    const std::size_t pos = file.rfind(anchor);
    if (pos != std::string::npos) return file.substr(pos + 1);
  }
  return file;
}

std::string site_str(const char* name, const char* file, std::uint32_t line) {
  std::ostringstream os;
  os << "\"" << name << "\" (" << trim_path(file) << ":" << line << ")";
  return os.str();
}

std::string loc_str(const std::source_location& loc) {
  return trim_path(loc.file_name()) + ":" + std::to_string(loc.line());
}

std::string held_str(const HeldLock& h) {
  std::ostringstream os;
  os << site_str(h.name, h.file, h.line) << " class ";
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    if (h.cls >= 1 && h.cls <= s.site_infos.size()) {
      const SiteInfo& si = s.site_infos[h.cls - 1];
      os << si.name << "@" << si.file << ":" << si.line;
    } else {
      os << h.cls;
    }
  }
  return os.str();
}

// Shared recording path of report()/note(): tally, obs sinks, log. The
// Reentry guard covers the sinks — they take checked locks.
std::string record_violation(const char* rule, const std::string& context) {
  const Reentry guard;
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    ++s.by_rule[rule];
    ++s.total;
  }
  const std::string what =
      std::string("lockcheck[") + rule + "]: " + context;
  // Sinks are installed once from a static registrar before main; the
  // unlocked read is benign.
  State& s = state();
  if (s.sinks.violation != nullptr) s.sinks.violation(rule, what);
  log::error(what);
  return what;
}

void write_env_summary() {
  const char* path = std::getenv("SWRAMAN_CHECK_FILE");
  const std::string json = summary_json();
  if (path == nullptr || *path == '\0' ||
      std::string(path) == "-") {
    std::cerr << json << "\n";
    return;
  }
  // Appended, not truncated: SWRAMAN_CHECK_FILE is shared with swcheck
  // as a JSON-lines file, one line per checker; both EnvInits truncate
  // it at static init (idempotent, pre-main) and both exit hooks
  // append.
  std::ofstream out(path, std::ios::app);
  if (!out) {
    log::error("lockcheck: cannot open summary file ", path);
    return;
  }
  out << json << "\n";
}

// Reads SWRAMAN_CHECK at static-initialization time so any binary —
// bench, example, test — runs checked without touching its main().
struct EnvInit {
  EnvInit() {
    state();  // force construction before any atexit callback may run
    if (env_truthy(std::getenv("SWRAMAN_CHECK"))) {
      set_enabled(true);
      const char* path = std::getenv("SWRAMAN_CHECK_FILE");
      if (path != nullptr && *path != '\0' && std::string(path) != "-") {
        const std::ofstream trunc(path, std::ios::trunc);
      }
      std::atexit(write_env_summary);
    }
  }
};
const EnvInit g_env_init;

// DFS over the order graph: is `to` reachable from `from`? On success
// fills `path` with the class chain from -> ... -> to. Called with
// state().mutex held.
bool reachable(const State& s, std::uint32_t from, std::uint32_t to,
               std::vector<std::uint32_t>* path) {
  if (from == to) {
    path->push_back(from);
    return true;
  }
  const auto row = s.edges.find(from);
  if (row == s.edges.end()) return false;
  path->push_back(from);
  for (const auto& [next, prov] : row->second) {
    // The graph is small (dozens of classes); plain DFS with the path
    // itself as the visited set is fine and keeps the chain exact.
    bool on_path = false;
    for (const std::uint32_t c : *path) {
      if (c == next) {
        on_path = true;
        break;
      }
    }
    if (on_path) continue;
    if (reachable(s, next, to, path)) return true;
  }
  path->pop_back();
  return false;
}

std::string class_name(const State& s, std::uint32_t cls) {
  if (cls >= 1 && cls <= s.site_infos.size()) {
    const SiteInfo& si = s.site_infos[cls - 1];
    return "\"" + si.name + "\" (" + si.file + ":" +
           std::to_string(si.line) + ")";
  }
  return "class#" + std::to_string(cls);
}

}  // namespace

void set_enabled(bool on) {
  detail::g_lockcheck_enabled.store(on, std::memory_order_relaxed);
}

void report(const char* rule, const std::string& context) {
  const std::string what = record_violation(rule, context);
  {
    // A throwing violation is crash-grade: dump the flight rings before
    // unwinding so the postmortem shows what led up to it.
    const Reentry guard;
    State& s = state();
    if (s.sinks.flight_dump != nullptr) s.sinks.flight_dump("check.violation");
  }
  throw CheckViolation(rule, what);
}

void note(const char* rule, const std::string& context) {
  record_violation(rule, context);
}

std::map<std::string, std::uint64_t> violation_counts() {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.by_rule;
}

std::uint64_t total_violations() {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.total;
}

std::vector<SiteInfo> sites() {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  return s.site_infos;
}

std::string summary_json() {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  std::ostringstream os;
  os << "{\"schema\":\"swraman-lockcheck-v1\",\"enabled\":"
     << (enabled() ? "true" : "false") << ",\"violations\":" << s.total
     << ",\"rules\":{";
  bool first = true;
  for (const auto& [rule, n] : s.by_rule) {
    if (!first) os << ",";
    first = false;
    os << "\"" << rule << "\":" << n;
  }
  os << "},\"sites\":[";
  first = true;
  for (const SiteInfo& si : s.site_infos) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << si.id << ",\"name\":\"" << si.name
       << "\",\"file\":\"" << si.file << "\",\"line\":" << si.line << "}";
  }
  os << "]}";
  return os.str();
}

bool write_summary(const std::string& path) {
  const std::string json = summary_json();
  if (path.empty() || path == "-") {
    std::cerr << json << "\n";
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    log::error("lockcheck: cannot open summary file ", path);
    return false;
  }
  out << json << "\n";
  return static_cast<bool>(out);
}

void reset_for_testing() {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  s.by_rule.clear();
  s.total = 0;
  s.edges.clear();
  t_held.clear();
}

void install_obs_sinks(const ObsSinks& sinks) {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  s.sinks = sinks;
}

bool is_held(const CheckedMutex* m) {
  for (const HeldLock& h : t_held) {
    if (h.mutex == m) return true;
  }
  return false;
}

namespace detail {

std::uint32_t register_site(const char* name, const char* file,
                            std::uint32_t line) {
  State& s = state();
  const std::scoped_lock lock(s.mutex);
  // The class key includes the name: default member initializers all
  // evaluate their source_location at the owning constructor, so two
  // member mutexes of one class share file:line and only the name
  // separates them.
  std::string key =
      std::string(name) + "@" + file + ":" + std::to_string(line);
  const auto it = s.site_ids.find(key);
  if (it != s.site_ids.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(s.site_infos.size() + 1);
  s.site_ids.emplace(std::move(key), id);
  s.site_infos.push_back({id, name, trim_path(file), line});
  return id;
}

void before_acquire(CheckedMutex* m, const std::source_location& acq) {
  if (t_depth > 0) return;
  const Reentry guard;
  const std::uint32_t cls = m->site_id();
  std::string violation;
  {
    State& s = state();
    const std::scoped_lock lock(s.mutex);
    for (const HeldLock& h : t_held) {
      if (h.cls == cls) {
        // Two locks of one class nested on one thread: another thread
        // doing the same with the instances swapped deadlocks.
        std::ostringstream os;
        os << "same-class nesting of " << class_name(s, cls)
           << ": already held (acquired at " << h.file << ":" << h.line
           << "), acquiring again at " << loc_str(acq);
        violation = os.str();
        break;
      }
      auto& row = s.edges[h.cls];
      if (row.find(cls) != row.end()) continue;  // edge already known
      std::vector<std::uint32_t> path;
      if (reachable(s, cls, h.cls, &path)) {
        // Adding h.cls -> cls would close a cycle: cls already reaches
        // h.cls through recorded acquisitions. Both orders' provenance
        // goes into the report.
        const EdgeProv& rev = s.edges.at(path[0]).at(
            path.size() > 1 ? path[1] : h.cls);
        std::ostringstream os;
        os << "acquiring " << class_name(s, cls) << " at " << loc_str(acq)
           << " while holding " << class_name(s, h.cls)
           << " (acquired at " << h.file << ":" << h.line
           << "); reverse order already recorded:";
        for (std::size_t i = 0; i < path.size(); ++i) {
          os << (i == 0 ? " " : " -> ") << class_name(s, path[i]);
        }
        os << " (first link: held " << rev.held_at << ", acquired "
           << rev.acq_at << ")";
        violation = os.str();
        break;
      }
      row.emplace(cls, EdgeProv{site_str(h.name, h.file, h.line),
                                site_str(m->name(), acq.file_name(),
                                         acq.line())});
    }
  }
  if (!violation.empty()) report(kRuleOrderCycle, violation);
}

void after_acquire(CheckedMutex* m, const std::source_location& acq) {
  if (t_depth > 0) return;
  const Reentry guard;
  t_held.push_back({m, m->site_id(), m->allows_blocking(), m->name(),
                    acq.file_name(), acq.line()});
}

void on_release(CheckedMutex* m) {
  if (t_depth > 0) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mutex == m) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: acquired while checking was off or during a report.
}

void blocking_call_slow(const char* what, const CheckedMutex* exempt,
                        const std::source_location& loc) {
  if (t_depth > 0) return;
  std::string violation;
  for (const HeldLock& h : t_held) {
    if (h.mutex == exempt || h.allows_blocking) continue;
    std::ostringstream os;
    os << "blocking call \"" << what << "\" at " << loc_str(loc)
       << " while holding " << held_str(h) << " (acquired at "
       << trim_path(h.file) << ":" << h.line
       << "); mark the lock kAllowsBlocking only if holding it across "
          "blocking I/O is a deliberate control-plane choice";
    violation = os.str();
    break;
  }
  if (!violation.empty()) report(kRuleBlockingUnderLock, violation);
}

void assert_held_slow(const CheckedMutex* m, const char* what,
                      const std::source_location& loc) {
  if (t_depth > 0 || m == nullptr) return;
  if (is_held(m)) return;
  std::ostringstream os;
  os << what << " at " << loc_str(loc) << " requires "
     << site_str(m->name(), m->file(), m->line())
     << " to be held by the calling thread";
  report(kRuleGuardUnheld, os.str());
}

void condvar_no_predicate(const CheckedMutex* m,
                          const std::source_location& loc) {
  std::ostringstream os;
  os << "untimed condition-variable wait without a predicate at "
     << loc_str(loc) << " on " << site_str(m->name(), m->file(), m->line())
     << "; a spurious wakeup returns early and a missed notify parks "
        "forever — wait with a predicate or a timeout";
  report(kRuleCondvarNoPredicate, os.str());
}

}  // namespace detail

}  // namespace swraman::lockcheck
