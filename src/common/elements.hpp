#pragma once

#include <string>
#include <vector>

// Reference data for chemical elements Z = 1..54 (H through Xe): symbols,
// standard atomic masses, Bragg-Slater radii (used by the Becke partition and
// the radial-grid scale), and ground-state electron configurations (used by
// the atomic solver to seed occupations).

namespace swraman {

struct Shell {
  int n = 1;       // principal quantum number
  int l = 0;       // angular momentum
  double occ = 0;  // electrons in the shell (up to 2*(2l+1))
};

struct ElementData {
  int z = 0;
  std::string symbol;
  double mass_amu = 0.0;
  double bragg_radius_bohr = 0.0;
  std::vector<Shell> configuration;  // ground state, aufbau + exceptions
};

// Data for atomic number z in [1, 54]. Throws outside the supported range.
const ElementData& element(int z);

// Atomic number for a symbol ("H", "He", ...). Throws for unknown symbols.
int atomic_number(const std::string& symbol);

// Number of electrons in the valence (outermost n for s/p, plus open d/f)
// shells — what survives pseudization in the valence-only variant.
double valence_electron_count(int z);

}  // namespace swraman
