#pragma once

#include <algorithm>
#include <cstdint>

// Shared retry-backoff schedule (DESIGN.md S12). Two modes over one
// deterministic splitmix64 stream:
//
//   exponential    delay_k = min(cap, base * multiplier^k) — the classic
//                  doubling schedule the comm retransmit path used before
//                  this helper existed.
//   decorrelated   delay_k = min(cap, uniform(base, prev * 3)) — the
//                  "decorrelated jitter" schedule; retries of independent
//                  actors spread out instead of synchronizing into
//                  retransmit storms, while staying fully reproducible
//                  for a fixed seed.
//
// The helper owns no clock and never sleeps; callers decide what to do
// with the returned delay. Determinism contract: a fixed (options, seed)
// yields a fixed delay sequence, so fault-injection tests replay byte-
// identical retry timelines.

namespace swraman {

struct BackoffOptions {
  double base_s = 1e-4;     // first retry delay (and jitter floor)
  double cap_s = 0.05;      // delay ceiling
  double multiplier = 2.0;  // exponential growth factor
  bool decorrelated = false;  // true: decorrelated jitter mode
  std::uint64_t seed = 0;     // jitter stream seed (decorrelated only)
};

class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {})
      : options_(options), prev_s_(options.base_s), rng_(options.seed) {}

  // Delay before the next retry attempt; advances the schedule.
  double next() {
    ++attempt_;
    if (!options_.decorrelated) {
      double d = options_.base_s;
      for (int k = 1; k < attempt_; ++k) {
        d *= options_.multiplier;
        if (d >= options_.cap_s) break;
      }
      return std::min(d, options_.cap_s);
    }
    const double hi = std::max(options_.base_s, prev_s_ * 3.0);
    const double d =
        std::min(options_.cap_s,
                 options_.base_s + uniform01() * (hi - options_.base_s));
    prev_s_ = d;
    return d;
  }

  // Restarts the schedule (attempt counter, jitter state and RNG stream),
  // as after a successful probe of a recovered peer.
  void reset() {
    attempt_ = 0;
    prev_s_ = options_.base_s;
    rng_ = options_.seed;
  }

  [[nodiscard]] int attempt() const { return attempt_; }
  [[nodiscard]] const BackoffOptions& options() const { return options_; }

 private:
  // splitmix64 — same generator the modeled serve engine uses; no <random>
  // distribution so the stream is identical across standard libraries.
  double uniform01() {
    rng_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  BackoffOptions options_;
  double prev_s_ = 0.0;
  int attempt_ = 0;
  std::uint64_t rng_ = 0;
};

}  // namespace swraman
