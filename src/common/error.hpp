#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

// Error handling: SWRAMAN_REQUIRE for precondition checks on public
// interfaces (always on), SWRAMAN_ASSERT for internal invariants (on unless
// NDEBUG). Both throw swraman::Error so callers can recover and tests can
// assert on failure.

namespace swraman {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace swraman

#define SWRAMAN_REQUIRE(cond, msg)                                       \
  do {                                                                   \
    if (!(cond))                                                         \
      ::swraman::detail::fail("precondition", #cond, __FILE__, __LINE__, \
                              (msg));                                    \
  } while (false)

#ifdef NDEBUG
#define SWRAMAN_ASSERT(cond, msg) \
  do {                            \
  } while (false)
#else
#define SWRAMAN_ASSERT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond))                                                          \
      ::swraman::detail::fail("assertion", #cond, __FILE__, __LINE__,     \
                              (msg));                                     \
  } while (false)
#endif
