#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

// Error handling: SWRAMAN_REQUIRE for precondition checks on public
// interfaces (always on), SWRAMAN_ASSERT for internal invariants (on unless
// NDEBUG). Both throw swraman::Error so callers can recover and tests can
// assert on failure.

namespace swraman {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Typed-error taxonomy for the fault-tolerance layer: callers catch the
// specific class they can recover from (a timed-out collective, a diverged
// SCF cycle, a damaged checkpoint, an injected test fault) and let anything
// else propagate as a plain Error.

// A blocking operation (recv, allreduce, DMA) exhausted its bounded
// retry/backoff budget without completing.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

// An iterative solver (SCF, DFPT response) failed to reach its tolerance
// after the configured recovery attempts.
class ConvergenceError : public Error {
 public:
  explicit ConvergenceError(const std::string& what) : Error(what) {}
};

// A checkpoint file is missing required structure, carries an unsupported
// version, or does not match the run being resumed.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

// Raised by an armed fault-injection site that models a hard component
// failure (killed process, dead CPE past redistribution, poisoned data).
class FaultInjected : public Error {
 public:
  explicit FaultInjected(const std::string& what) : Error(what) {}
};

// Raised by the swcheck shadow-state checker (sunway/check) when a
// kernel violates the Sunway execution protocol it models — an LDM tile
// overrun, a read of an un-waited DMA transfer, an RMA mailbox left
// unconsumed. These are programming errors in the kernel under test,
// not recoverable runtime conditions; callers other than the checker's
// own tests should let them propagate.
class CheckViolation : public Error {
 public:
  CheckViolation(std::string rule, const std::string& what)
      : Error(what), rule_(std::move(rule)) {}

  // Canonical rule name (check::kRule*) that fired.
  [[nodiscard]] const std::string& rule() const { return rule_; }

 private:
  std::string rule_;
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace swraman

#define SWRAMAN_REQUIRE(cond, msg)                                       \
  do {                                                                   \
    if (!(cond))                                                         \
      ::swraman::detail::fail("precondition", #cond, __FILE__, __LINE__, \
                              (msg));                                    \
  } while (false)

#ifdef NDEBUG
#define SWRAMAN_ASSERT(cond, msg) \
  do {                            \
  } while (false)
#else
#define SWRAMAN_ASSERT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond))                                                          \
      ::swraman::detail::fail("assertion", #cond, __FILE__, __LINE__,     \
                              (msg));                                     \
  } while (false)
#endif
