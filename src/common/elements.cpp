#include "common/elements.hpp"

#include <array>
#include <map>
#include <mutex>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman {

namespace {

constexpr int kMaxZ = 54;

struct Raw {
  const char* symbol;
  double mass;          // amu
  double bragg_ang;     // Bragg-Slater radius, Angstrom
};

// Bragg-Slater radii after Slater (1964); hydrogen enlarged to 0.35 A as is
// conventional for Becke partitioning.
constexpr std::array<Raw, kMaxZ> kRaw{{
    {"H", 1.008, 0.35},    {"He", 4.0026, 0.31},  {"Li", 6.94, 1.45},
    {"Be", 9.0122, 1.05},  {"B", 10.81, 0.85},    {"C", 12.011, 0.70},
    {"N", 14.007, 0.65},   {"O", 15.999, 0.60},   {"F", 18.998, 0.50},
    {"Ne", 20.180, 0.38},  {"Na", 22.990, 1.80},  {"Mg", 24.305, 1.50},
    {"Al", 26.982, 1.25},  {"Si", 28.085, 1.10},  {"P", 30.974, 1.00},
    {"S", 32.06, 1.00},    {"Cl", 35.45, 1.00},   {"Ar", 39.948, 0.71},
    {"K", 39.098, 2.20},   {"Ca", 40.078, 1.80},  {"Sc", 44.956, 1.60},
    {"Ti", 47.867, 1.40},  {"V", 50.942, 1.35},   {"Cr", 51.996, 1.40},
    {"Mn", 54.938, 1.40},  {"Fe", 55.845, 1.40},  {"Co", 58.933, 1.35},
    {"Ni", 58.693, 1.35},  {"Cu", 63.546, 1.35},  {"Zn", 65.38, 1.35},
    {"Ga", 69.723, 1.30},  {"Ge", 72.630, 1.25},  {"As", 74.922, 1.15},
    {"Se", 78.971, 1.15},  {"Br", 79.904, 1.15},  {"Kr", 83.798, 0.88},
    {"Rb", 85.468, 2.35},  {"Sr", 87.62, 2.00},   {"Y", 88.906, 1.80},
    {"Zr", 91.224, 1.55},  {"Nb", 92.906, 1.45},  {"Mo", 95.95, 1.45},
    {"Tc", 98.0, 1.35},    {"Ru", 101.07, 1.30},  {"Rh", 102.91, 1.35},
    {"Pd", 106.42, 1.40},  {"Ag", 107.87, 1.60},  {"Cd", 112.41, 1.55},
    {"In", 114.82, 1.55},  {"Sn", 118.71, 1.45},  {"Sb", 121.76, 1.45},
    {"Te", 127.60, 1.40},  {"I", 126.90, 1.40},   {"Xe", 131.29, 1.08},
}};

// Aufbau filling order as (n, l) pairs.
constexpr std::array<std::array<int, 2>, 19> kAufbau{{
    {1, 0}, {2, 0}, {2, 1}, {3, 0}, {3, 1}, {4, 0}, {3, 2}, {4, 1},
    {5, 0}, {4, 2}, {5, 1}, {6, 0}, {4, 3}, {5, 2}, {6, 1}, {7, 0},
    {5, 3}, {6, 2}, {7, 1},
}};

std::vector<Shell> configuration_for(int z) {
  std::vector<Shell> shells;
  double remaining = z;
  for (const auto& [n, l] : kAufbau) {
    if (remaining <= 0.0) break;
    const double cap = 2.0 * (2 * l + 1);
    const double occ = remaining < cap ? remaining : cap;
    shells.push_back({n, l, occ});
    remaining -= occ;
  }

  // Ground-state exceptions in Z <= 54 (promote one s electron into d).
  const auto promote_s_to_d = [&shells](int ns, int nd) {
    Shell* s_shell = nullptr;
    Shell* d_shell = nullptr;
    for (Shell& sh : shells) {
      if (sh.n == ns && sh.l == 0) s_shell = &sh;
      if (sh.n == nd && sh.l == 2) d_shell = &sh;
    }
    if (s_shell != nullptr && d_shell != nullptr && s_shell->occ >= 1.0) {
      s_shell->occ -= 1.0;
      d_shell->occ += 1.0;
    }
  };
  switch (z) {
    case 24:  // Cr 3d5 4s1
    case 29:  // Cu 3d10 4s1
      promote_s_to_d(4, 3);
      break;
    case 41:  // Nb 4d4 5s1
    case 42:  // Mo 4d5 5s1
    case 44:  // Ru 4d7 5s1
    case 45:  // Rh 4d8 5s1
    case 47:  // Ag 4d10 5s1
      promote_s_to_d(5, 4);
      break;
    case 46:  // Pd 4d10 5s0
      promote_s_to_d(5, 4);
      promote_s_to_d(5, 4);
      break;
    default:
      break;
  }
  // Drop emptied shells.
  std::vector<Shell> cleaned;
  for (const Shell& sh : shells) {
    if (sh.occ > 0.0) cleaned.push_back(sh);
  }
  return cleaned;
}

const std::vector<ElementData>& table() {
  static const std::vector<ElementData> data = [] {
    std::vector<ElementData> t;
    t.reserve(kMaxZ);
    for (int z = 1; z <= kMaxZ; ++z) {
      const Raw& raw = kRaw[static_cast<std::size_t>(z - 1)];
      ElementData e;
      e.z = z;
      e.symbol = raw.symbol;
      e.mass_amu = raw.mass;
      e.bragg_radius_bohr = raw.bragg_ang * kBohrPerAngstrom;
      e.configuration = configuration_for(z);
      t.push_back(std::move(e));
    }
    return t;
  }();
  return data;
}

}  // namespace

const ElementData& element(int z) {
  SWRAMAN_REQUIRE(z >= 1 && z <= kMaxZ, "element: Z must be in [1, 54]");
  return table()[static_cast<std::size_t>(z - 1)];
}

int atomic_number(const std::string& symbol) {
  for (const ElementData& e : table()) {
    if (e.symbol == symbol) return e.z;
  }
  throw Error("atomic_number: unknown element symbol '" + symbol + "'");
}

double valence_electron_count(int z) {
  const ElementData& e = element(z);
  int n_max = 0;
  for (const Shell& sh : e.configuration) {
    if (sh.l <= 1 && sh.n > n_max) n_max = sh.n;
  }
  double count = 0.0;
  for (const Shell& sh : e.configuration) {
    const bool outer_sp = (sh.l <= 1 && sh.n == n_max);
    const bool open_d = (sh.l == 2 && sh.occ < 10.0);
    const bool open_f = (sh.l == 3 && sh.occ < 14.0);
    if (outer_sp || open_d || open_f) count += sh.occ;
  }
  return count;
}

}  // namespace swraman
