#pragma once

#include <chrono>
#include <sstream>
#include <string>

// Minimal leveled logger. Benchmarks and examples print through this so that
// output stays uniform; tests set the level to Error to keep output clean.

namespace swraman::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

Level level();
void set_level(Level level);

void write(Level level, const std::string& message);

template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}

template <typename... Args>
void debug(Args&&... args) {
  emit(Level::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  emit(Level::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  emit(Level::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  emit(Level::Error, std::forward<Args>(args)...);
}

}  // namespace swraman::log

namespace swraman {

// Wall-clock stopwatch in seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace swraman
