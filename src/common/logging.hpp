#pragma once

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>

// Minimal leveled logger. Benchmarks and examples print through this so that
// output stays uniform; tests set the level to Error to keep output clean.
//
// Two optional prefixes help attribute interleaved multi-rank output:
// ISO-8601 UTC timestamps (set_timestamps) and a rank/thread tag
// (set_rank). Both are off by default, in which case lines keep the
// original "[level] message" format byte-for-byte.
//
// SWRAMAN_LOG=debug|info|warn|error|off pins the level for the whole
// process, overriding set_level() calls (binaries default to warn);
// SWRAMAN_LOG_TIMESTAMPS=1 enables the timestamp prefix from the
// environment.

namespace swraman::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

Level level();
void set_level(Level level);

// ISO-8601 UTC timestamp prefix, e.g. "[2026-08-07T12:34:56.789Z]".
void set_timestamps(bool on);
bool timestamps();

// Rank/thread prefix "[rR/tT]": R is the rank set here, T a small stable
// per-thread index. A negative rank disables the prefix (the default).
void set_rank(int rank);
int rank();

// Thread-context prefix "[s0/w1/g17]": a free-form per-thread tag naming
// the shard / worker / job a line belongs to, so interleaved chaos-run
// logs are grep-able per job. Empty (the default) disables the prefix.
void set_thread_context(const std::string& ctx);
const std::string& thread_context();

// RAII: swaps the calling thread's context in, restores the previous one
// on destruction. Workers push "s<shard>/w<worker>" for their lifetime
// and nest "/g<gid>" around each task they execute.
class ScopedContext {
 public:
  explicit ScopedContext(const std::string& ctx);
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  std::string saved_;
};

// Current UTC wall time formatted as ISO-8601 with millisecond precision
// ("2026-08-07T12:34:56.789Z"). Exposed for tests and exporters.
std::string timestamp_utc_now();

void write(Level level, const std::string& message);

template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}

template <typename... Args>
void debug(Args&&... args) {
  emit(Level::Debug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  emit(Level::Info, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  emit(Level::Warn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  emit(Level::Error, std::forward<Args>(args)...);
}

}  // namespace swraman::log

namespace swraman {

// Wall-clock stopwatch on the monotonic clock.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  // Integer nanoseconds since construction/reset: the cheap accessor hot
  // loops and the tracer use (no floating-point duration conversion).
  [[nodiscard]] std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }
  [[nodiscard]] double seconds() const {
    return 1e-9 * static_cast<double>(nanoseconds());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace swraman
