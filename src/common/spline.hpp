#pragma once

#include <cstddef>
#include <vector>

// Cubic-spline interpolation. Two flavours are provided:
//
//  * CubicSpline: general non-uniform knots, natural boundary conditions,
//    with value / first / second derivative evaluation.
//
//  * IndexSpline: knots at integer indices 0..n-1 (the FHI-aims convention
//    for functions tabulated on a logarithmic radial mesh: the spline runs
//    in index space and the mesh maps r -> fractional index). IndexSpline
//    stores per-interval polynomial coefficients (s0, s1, s2, s3) laid out
//    contiguously, which is exactly the memory layout consumed by the
//    vectorized cubic-spline-interpolation (CSI) kernel of the paper
//    (Algorithm 2 / Fig 7).

namespace swraman {

class CubicSpline {
 public:
  CubicSpline() = default;

  // Builds a natural cubic spline through (x[i], y[i]). x must be strictly
  // increasing and contain at least 2 points.
  CubicSpline(std::vector<double> x, std::vector<double> y);

  [[nodiscard]] double value(double x) const;
  [[nodiscard]] double derivative(double x) const;
  [[nodiscard]] double second_derivative(double x) const;

  [[nodiscard]] std::size_t size() const { return x_.size(); }
  [[nodiscard]] const std::vector<double>& knots() const { return x_; }
  [[nodiscard]] const std::vector<double>& values() const { return y_; }

  // Exact integrals of the spline from the first knot to every knot
  // (piecewise-cubic antiderivative; O(h^4) accurate for smooth data, far
  // better than trapezoid on coarse nonuniform meshes).
  [[nodiscard]] std::vector<double> cumulative_at_knots() const;

  // Monomial coefficients of interval i (i = 0..size()-2):
  //   y(x) = c[0] + c[1] u + c[2] u^2 + c[3] u^3,  u = x - knot(i).
  // This is the per-interval (s0, s1, s2, s3) layout the vectorized CSI
  // kernel consumes (paper Algorithm 2).
  void interval_coefficients(std::size_t i, double c[4]) const;

  // Interval index containing x (clamped to the knot range).
  [[nodiscard]] std::size_t interval_of(double x) const { return interval(x); }

 private:
  [[nodiscard]] std::size_t interval(double x) const;

  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> y2_;  // second derivatives at knots
};

class IndexSpline {
 public:
  IndexSpline() = default;

  // Builds a natural cubic spline through (i, y[i]), i = 0..n-1.
  explicit IndexSpline(const std::vector<double>& y);

  // Evaluates at fractional index t in [0, n-1]. Out-of-range t is clamped.
  [[nodiscard]] double value(double t) const;
  // d/dt at fractional index t.
  [[nodiscard]] double derivative(double t) const;
  // d2/dt2 at fractional index t.
  [[nodiscard]] double second_derivative(double t) const;

  [[nodiscard]] std::size_t n_knots() const { return n_; }

  // Raw coefficient storage: for interval i (i = 0..n-2) the polynomial is
  //   y(t) = c[4i] + c[4i+1]*u + c[4i+2]*u^2 + c[4i+3]*u^3,  u = t - i.
  // This is the array the CSI CPE kernel DMA-prefetches.
  [[nodiscard]] const std::vector<double>& coefficients() const {
    return coeff_;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> coeff_;
};

// Solves a tridiagonal system in place: diag a (sub), b (main), c (super),
// rhs d; result returned in d. b is modified.
void solve_tridiagonal(std::vector<double>& a, std::vector<double>& b,
                       std::vector<double>& c, std::vector<double>& d);

}  // namespace swraman
