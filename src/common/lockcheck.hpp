#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <source_location>
#include <string>
#include <vector>

#include "common/error.hpp"

// lockcheck — host-concurrency contract checker (DESIGN.md §14), the
// host-tier sibling of swcheck (src/sunway/check). TSan proves the
// absence of data races on the interleavings it happens to see; it says
// nothing about lock-order deadlocks that never fired in that run,
// fsync stalls executed under a scheduler lock, or condvar waits that
// lose a wakeup. Checked mode closes that gap the lockdep way: every
// CheckedMutex belongs to a lock *class* keyed by its construction site
// (name + file:line), every acquisition records class-order edges from
// all locks the thread already holds into a global acquisition-order
// graph, and a cycle in that graph is reported as a potential deadlock
// with both orders' acquisition provenance — even when the actual
// deadlock interleaving never happened in this run.
//
// The same held-lock bookkeeping drives two more audits:
//   - blocking_call(): fsync/WAL appends/p2p send+recv/condvar waits
//     announce themselves; executing one while holding a lock that was
//     not constructed with kAllowsBlocking is lock.blocking_under_lock.
//   - assert_held(): components documented as "caller locks for us"
//     (FairShareScheduler, DisplacementCache) verify the contract,
//     reporting lock.guard_unheld instead of corrupting state silently.
//
// The p2p protocol rules (p2p.*) are detected by the Communicator-side
// verifier (src/parallel/commcheck) but share this tally and summary so
// one SWRAMAN_CHECK_FILE line covers the whole host tier.
//
// Enabling: SWRAMAN_CHECK=1 in the environment (read at static init,
// shared with swcheck), or set_enabled(true) / ScopedChecking in tests.
// Disabled cost is one relaxed atomic load per lock()/unlock() — no
// graph, no held set, no registration beyond the constructor storing
// three words.
//
// Violations are (a) tallied by rule, (b) surfaced through the obs
// layer when it is linked (check.violations counter + flight-recorder
// dump, installed via install_obs_sinks from an obs TU so this header
// stays at the bottom of the library stack), and (c) thrown as
// CheckViolation with file:line provenance. When enabled from the
// environment, an exit hook appends a swraman-lockcheck-v1 JSON line to
// SWRAMAN_CHECK_FILE (shared, line-per-checker, with swcheck).

namespace swraman::lockcheck {

namespace detail {
extern std::atomic<bool> g_lockcheck_enabled;
}  // namespace detail

// Hot-path gate: one relaxed load.
inline bool enabled() {
  return detail::g_lockcheck_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

// Canonical rule names — keys of the exit summary and of
// violation_counts(). Tests assert on these.
inline constexpr const char* kRuleOrderCycle = "lock.order_cycle";
inline constexpr const char* kRuleBlockingUnderLock =
    "lock.blocking_under_lock";
inline constexpr const char* kRuleCondvarNoPredicate =
    "lock.condvar_no_predicate";
inline constexpr const char* kRuleGuardUnheld = "lock.guard_unheld";
inline constexpr const char* kRuleP2pOrphan = "p2p.orphaned_message";
inline constexpr const char* kRuleP2pTagMismatch = "p2p.tag_mismatch";
inline constexpr const char* kRuleP2pRecvCycle = "p2p.recv_cycle";

// Records the violation (tally + obs sinks) and throws CheckViolation.
[[noreturn]] void report(const char* rule, const std::string& context);

// Same recording but non-throwing — for violations detected on paths
// that must not unwind (destructors, server/poll threads).
void note(const char* rule, const std::string& context);

[[nodiscard]] std::map<std::string, std::uint64_t> violation_counts();
[[nodiscard]] std::uint64_t total_violations();

// Registered lock classes (stable ids, append-only for the process).
struct SiteInfo {
  std::uint32_t id = 0;
  std::string name;
  std::string file;
  std::uint32_t line = 0;
};
[[nodiscard]] std::vector<SiteInfo> sites();

// swraman-lockcheck-v1 JSON: enabled flag, tally by rule, lock-class
// site table. A disabled run serializes to an empty report.
[[nodiscard]] std::string summary_json();

// Writes summary_json() to `path` ("-" or empty: stderr). Returns false
// when the file could not be opened.
bool write_summary(const std::string& path);

// Clears the tally, the acquisition-order graph, and the calling
// thread's held-lock set (tests). Lock-class ids stay stable.
void reset_for_testing();

// Obs-layer hooks. lockcheck lives in swraman_common, below the obs
// library; binaries that link obs install these from a static
// registrar (src/obs/metrics.cpp) so violations still bump the
// check.violations counter and dump the flight recorder without a
// layering inversion. Either pointer may be null.
struct ObsSinks {
  void (*violation)(const char* rule, const std::string& what) = nullptr;
  void (*flight_dump)(const char* reason) = nullptr;
};
void install_obs_sinks(const ObsSinks& sinks);

class CheckedMutex;

namespace detail {
std::uint32_t register_site(const char* name, const char* file,
                            std::uint32_t line);
void before_acquire(CheckedMutex* m, const std::source_location& acq);
void after_acquire(CheckedMutex* m, const std::source_location& acq);
void on_release(CheckedMutex* m);
void blocking_call_slow(const char* what, const CheckedMutex* exempt,
                        const std::source_location& loc);
void assert_held_slow(const CheckedMutex* m, const char* what,
                      const std::source_location& loc);
[[noreturn]] void condvar_no_predicate(const CheckedMutex* m,
                                       const std::source_location& loc);
}  // namespace detail

// Drop-in std::mutex replacement. The (name, construction file:line)
// pair is the lock *class*: every instance constructed at that site —
// one per worker deque, one per shard — shares ordering edges, which is
// what lets a run with one interleaving prove facts about the others.
// kAllowsBlocking marks the small set of control-plane locks that hold
// across fsync/join/replay by design (WAL internals, shard control
// plane, checkpoint writer); they are exempt from the blocking audit
// but still participate in order checking.
class CheckedMutex {
 public:
  static constexpr unsigned kAllowsBlocking = 1u;

  explicit CheckedMutex(
      const char* name = "mutex", unsigned flags = 0,
      std::source_location site = std::source_location::current())
      : name_(name), file_(site.file_name()), line_(site.line()),
        flags_(flags) {
    if (enabled()) static_cast<void>(site_id());  // eager registration
  }
  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock(std::source_location acq = std::source_location::current()) {
    const bool checked = enabled();
    if (checked) detail::before_acquire(this, acq);
    m_.lock();
    if (checked) detail::after_acquire(this, acq);
  }

  void unlock() {
    if (enabled()) detail::on_release(this);
    m_.unlock();
  }

  // Lock-class id, registered lazily so a mutex constructed while
  // checking was off still joins the graph once it is turned on.
  [[nodiscard]] std::uint32_t site_id() const {
    std::uint32_t id = site_.load(std::memory_order_relaxed);
    if (id == 0) {
      id = detail::register_site(name_, file_, line_);
      site_.store(id, std::memory_order_relaxed);
    }
    return id;
  }

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] const char* file() const { return file_; }
  [[nodiscard]] std::uint32_t line() const { return line_; }
  [[nodiscard]] bool allows_blocking() const {
    return (flags_ & kAllowsBlocking) != 0;
  }

 private:
  std::mutex m_;
  const char* name_;
  const char* file_;  // source_location file_name(): static storage
  std::uint32_t line_;
  mutable std::atomic<std::uint32_t> site_{0};
  unsigned flags_;
};

// RAII acquisition — the lock_guard/unique_lock replacement. Meets
// BasicLockable so CheckedCondVar (condition_variable_any) can release
// and reacquire it through the instrumented path, keeping the held-lock
// bookkeeping exact across waits.
class CheckedLock {
 public:
  explicit CheckedLock(
      CheckedMutex& m,
      std::source_location acq = std::source_location::current())
      : m_(&m) {
    m_->lock(acq);
    owned_ = true;
  }
  CheckedLock(const CheckedLock&) = delete;
  CheckedLock& operator=(const CheckedLock&) = delete;
  ~CheckedLock() {
    if (owned_) m_->unlock();
  }

  void lock(std::source_location acq = std::source_location::current()) {
    m_->lock(acq);
    owned_ = true;
  }
  void unlock() {
    owned_ = false;
    m_->unlock();
  }

  [[nodiscard]] bool owns_lock() const { return owned_; }
  [[nodiscard]] CheckedMutex* mutex() const { return m_; }

 private:
  CheckedMutex* m_;
  bool owned_ = false;
};

// Announces a blocking primitive (fsync, WAL append, p2p send/recv,
// checkpoint write). Reports lock.blocking_under_lock when the calling
// thread holds any checked lock without kAllowsBlocking, except
// `exempt` (a condvar's own mutex, released for the duration of the
// wait).
inline void blocking_call(
    const char* what, const CheckedMutex* exempt = nullptr,
    std::source_location loc = std::source_location::current()) {
  if (enabled()) detail::blocking_call_slow(what, exempt, loc);
}

// Guard-contract check for "the caller locks for us" components.
// Reports lock.guard_unheld when `m` is non-null and the calling thread
// does not hold it. A null guard (no service attached) checks nothing.
inline void assert_held(
    const CheckedMutex* m, const char* what,
    std::source_location loc = std::source_location::current()) {
  if (enabled()) detail::assert_held_slow(m, what, loc);
}

// True when the calling thread's tracked held set contains m (tests).
[[nodiscard]] bool is_held(const CheckedMutex* m);

// Condition variable over CheckedLock. An *untimed* wait without a
// predicate is itself a violation (lock.condvar_no_predicate): spurious
// wakeups make it return early and a missed notify parks it forever.
// Timed predicate-less waits (bounded idle parks) are legal; every wait
// form is audited as a blocking call with the condvar's own mutex
// exempt.
class CheckedCondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(CheckedLock& lock,
            std::source_location loc = std::source_location::current()) {
    if (enabled()) detail::condvar_no_predicate(lock.mutex(), loc);
    cv_.wait(lock);
  }

  template <class Predicate>
  void wait(CheckedLock& lock, Predicate pred,
            std::source_location loc = std::source_location::current()) {
    blocking_call("condvar.wait", lock.mutex(), loc);
    cv_.wait(lock, std::move(pred));
  }

  template <class Rep, class Period>
  std::cv_status wait_for(
      CheckedLock& lock, const std::chrono::duration<Rep, Period>& dur,
      std::source_location loc = std::source_location::current()) {
    blocking_call("condvar.wait_for", lock.mutex(), loc);
    return cv_.wait_for(lock, dur);
  }

  template <class Rep, class Period, class Predicate>
  bool wait_for(CheckedLock& lock,
                const std::chrono::duration<Rep, Period>& dur,
                Predicate pred,
                std::source_location loc = std::source_location::current()) {
    blocking_call("condvar.wait_for", lock.mutex(), loc);
    return cv_.wait_for(lock, dur, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

// RAII enable/disable for tests; restores the previous state and clears
// tally + graph on both ends so violations never leak across cases.
class ScopedChecking {
 public:
  explicit ScopedChecking(bool on = true) : prev_(enabled()) {
    reset_for_testing();
    set_enabled(on);
  }
  ScopedChecking(const ScopedChecking&) = delete;
  ScopedChecking& operator=(const ScopedChecking&) = delete;
  ~ScopedChecking() {
    set_enabled(prev_);
    reset_for_testing();
  }

 private:
  bool prev_;
};

}  // namespace swraman::lockcheck
