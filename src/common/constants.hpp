#pragma once

// Physical constants and unit conversions. Internal units are Hartree atomic
// units throughout (energy: Hartree, length: Bohr, mass: electron mass).

namespace swraman {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kFourPi = 4.0 * kPi;
inline constexpr double kSqrtPi = 1.77245385090551602730;

// Length.
inline constexpr double kBohrPerAngstrom = 1.0 / 0.529177210903;
inline constexpr double kAngstromPerBohr = 0.529177210903;

// Energy.
inline constexpr double kEvPerHartree = 27.211386245988;
inline constexpr double kHartreePerEv = 1.0 / kEvPerHartree;

// Vibrational frequency: omega [sqrt(Hartree/(me*Bohr^2))] -> wavenumber.
// 1 a.u. of angular frequency corresponds to 219474.6313632 cm^-1.
inline constexpr double kCmInvPerAu = 219474.6313632;

// Mass: unified atomic mass unit in electron masses.
inline constexpr double kMeAmu = 1822.888486209;

// Boltzmann constant in Hartree/K (for Fermi smearing).
inline constexpr double kBoltzmannHa = 3.166811563e-6;

// Polarizability volume conversion: Bohr^3 -> Angstrom^3.
inline constexpr double kAngstrom3PerBohr3 =
    kAngstromPerBohr * kAngstromPerBohr * kAngstromPerBohr;

}  // namespace swraman
