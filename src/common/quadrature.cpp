#include "common/quadrature.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace swraman {

Quadrature1D gauss_legendre(std::size_t n) {
  SWRAMAN_REQUIRE(n >= 1, "gauss_legendre: n >= 1");
  Quadrature1D q;
  q.nodes.resize(n);
  q.weights.resize(n);
  const std::size_t m = (n + 1) / 2;
  for (std::size_t i = 0; i < m; ++i) {
    // Initial guess: Chebyshev approximation to the i-th root.
    double x = std::cos(kPi * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Legendre recurrence to evaluate P_n(x) and derivative.
      double p0 = 1.0;
      double p1 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * static_cast<double>(j) + 1.0) * x * p1 -
              static_cast<double>(j) * p2) /
             (static_cast<double>(j) + 1.0);
      }
      pp = static_cast<double>(n) * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / pp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    q.nodes[i] = -x;
    q.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * pp * pp);
    q.weights[i] = w;
    q.weights[n - 1 - i] = w;
  }
  return q;
}

Quadrature1D gauss_chebyshev2(std::size_t n) {
  SWRAMAN_REQUIRE(n >= 1, "gauss_chebyshev2: n >= 1");
  Quadrature1D q;
  q.nodes.resize(n);
  q.weights.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double th =
        kPi * static_cast<double>(i + 1) / (static_cast<double>(n) + 1.0);
    const double s = std::sin(th);
    q.nodes[i] = std::cos(th);
    // weight for integral f(x) dx (includes the 1/sqrt(1-x^2)-free form):
    // integral_{-1}^{1} f(x) dx ~= sum w_i f(x_i), w_i = pi/(n+1) sin^2(th)
    // divided by sqrt(1-x^2) = sin(th).
    q.weights[i] = kPi / (static_cast<double>(n) + 1.0) * s;
  }
  return q;
}

Quadrature1D becke_radial(std::size_t n, double r_m) {
  SWRAMAN_REQUIRE(r_m > 0.0, "becke_radial: r_m > 0");
  Quadrature1D cheb = gauss_chebyshev2(n);
  Quadrature1D q;
  q.nodes.resize(n);
  q.weights.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = cheb.nodes[i];
    const double r = r_m * (1.0 + x) / (1.0 - x);
    // dr/dx = 2 r_m / (1-x)^2; include r^2 volume element.
    const double drdx = 2.0 * r_m / ((1.0 - x) * (1.0 - x));
    q.nodes[i] = r;
    q.weights[i] = cheb.weights[i] * drdx * r * r;
  }
  return q;
}

}  // namespace swraman
