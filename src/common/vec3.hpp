#pragma once

#include <array>
#include <cmath>
#include <ostream>

// Minimal 3-vector of doubles used for atomic positions, grid points, and
// electric-field directions.

namespace swraman {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y + z * z; }
};

constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
constexpr Vec3 operator/(Vec3 a, double s) { return a *= (1.0 / s); }
constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace swraman
