#include "common/radial_mesh.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace swraman {

RadialMesh::RadialMesh(double r_min, double r_max, std::size_t n) {
  SWRAMAN_REQUIRE(n >= 2, "RadialMesh: need at least 2 points");
  SWRAMAN_REQUIRE(r_min > 0.0 && r_max > r_min,
                  "RadialMesh: need 0 < r_min < r_max");
  r0_ = r_min;
  alpha_ = std::log(r_max / r_min) / static_cast<double>(n - 1);
  r_.resize(n);
  w_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r_[i] = r0_ * std::exp(alpha_ * static_cast<double>(i));
    w_[i] = alpha_ * r_[i];
  }
  w_.front() *= 0.5;
  w_.back() *= 0.5;
}

RadialMesh RadialMesh::for_nuclear_charge(double z, double r_max,
                                          std::size_t n) {
  SWRAMAN_REQUIRE(z > 0.0, "RadialMesh: nuclear charge must be positive");
  return RadialMesh(1e-5 / z, r_max, n);
}

double RadialMesh::fractional_index(double r) const {
  if (r <= r0_) return 0.0;
  const double t = std::log(r / r0_) / alpha_;
  return std::min(t, static_cast<double>(r_.size() - 1));
}

double RadialMesh::integrate(const std::vector<double>& f) const {
  SWRAMAN_REQUIRE(f.size() == r_.size(), "RadialMesh: integrand size");
  double s = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) s += f[i] * w_[i];
  return s;
}

}  // namespace swraman
