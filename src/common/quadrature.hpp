#pragma once

#include <cstddef>
#include <vector>

// 1-D quadrature rules used to assemble the radial part of atom-centered
// integration grids and for assorted numerical integrals.

namespace swraman {

struct Quadrature1D {
  std::vector<double> nodes;
  std::vector<double> weights;
};

// Gauss-Legendre rule on [-1, 1] with n nodes (exact for degree 2n-1).
Quadrature1D gauss_legendre(std::size_t n);

// Gauss-Chebyshev (second kind) rule on (-1, 1) with n nodes; closed form,
// used by the Becke radial transformation.
Quadrature1D gauss_chebyshev2(std::size_t n);

// Becke radial quadrature: maps Gauss-Chebyshev nodes x in (-1,1) onto
// r in (0, inf) via r = r_m * (1+x)/(1-x). Returns radii and weights that
// already include the r^2 volume element, i.e.
//   integral_0^inf f(r) r^2 dr ~= sum_i w_i f(r_i).
Quadrature1D becke_radial(std::size_t n, double r_m);

}  // namespace swraman
