#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace swraman::log {

namespace {
std::atomic<Level> g_level{Level::Info};
std::mutex g_mutex;

const char* prefix(Level lvl) {
  switch (lvl) {
    case Level::Debug:
      return "[debug] ";
    case Level::Info:
      return "[info ] ";
    case Level::Warn:
      return "[warn ] ";
    case Level::Error:
      return "[error] ";
    default:
      return "";
  }
}
}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  const std::scoped_lock lock(g_mutex);
  std::ostream& os = (lvl >= Level::Warn) ? std::cerr : std::cout;
  os << prefix(lvl) << message << '\n';
}

}  // namespace swraman::log
