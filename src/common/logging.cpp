#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <mutex>

namespace swraman::log {

namespace {
std::atomic<Level> g_level{Level::Info};
std::atomic<bool> g_timestamps{false};
std::atomic<int> g_rank{-1};
std::mutex g_mutex;

const char* prefix(Level lvl) {
  switch (lvl) {
    case Level::Debug:
      return "[debug] ";
    case Level::Info:
      return "[info ] ";
    case Level::Warn:
      return "[warn ] ";
    case Level::Error:
      return "[error] ";
    default:
      return "";
  }
}

// Small stable per-thread index for the rank/thread prefix.
int thread_index() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread context tag; function-local so first use from any thread
// (including atexit-era logging) constructs it safely.
std::string& thread_context_slot() {
  thread_local std::string ctx;
  return ctx;
}

bool parse_level(const char* s, Level& out) {
  if (std::strcmp(s, "debug") == 0) return out = Level::Debug, true;
  if (std::strcmp(s, "info") == 0) return out = Level::Info, true;
  if (std::strcmp(s, "warn") == 0) return out = Level::Warn, true;
  if (std::strcmp(s, "error") == 0) return out = Level::Error, true;
  if (std::strcmp(s, "off") == 0) return out = Level::Off, true;
  return false;
}

// SWRAMAN_LOG=debug|info|warn|error|off pins the level for the process
// lifetime, winning over set_level() calls in main() — so a traced run's
// phase tree can be surfaced from any binary without a rebuild.
// SWRAMAN_LOG_TIMESTAMPS=1 turns on the ISO-8601 prefix the same way.
struct EnvOverride {
  bool forced = false;
  Level value = Level::Info;
  EnvOverride() {
    if (const char* v = std::getenv("SWRAMAN_LOG")) {
      forced = parse_level(v, value);
      if (!forced) {
        std::fprintf(stderr, "[warn ] SWRAMAN_LOG=%s not recognised "
                             "(want debug|info|warn|error|off)\n", v);
      }
    }
    if (const char* v = std::getenv("SWRAMAN_LOG_TIMESTAMPS")) {
      if (v[0] != '\0' && std::strcmp(v, "0") != 0) {
        g_timestamps.store(true, std::memory_order_relaxed);
      }
    }
  }
};
const EnvOverride g_env;
}  // namespace

Level level() {
  if (g_env.forced) return g_env.value;
  return g_level.load(std::memory_order_relaxed);
}

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void set_timestamps(bool on) {
  g_timestamps.store(on, std::memory_order_relaxed);
}

bool timestamps() { return g_timestamps.load(std::memory_order_relaxed); }

void set_rank(int rank) { g_rank.store(rank, std::memory_order_relaxed); }

int rank() { return g_rank.load(std::memory_order_relaxed); }

void set_thread_context(const std::string& ctx) {
  thread_context_slot() = ctx;
}

const std::string& thread_context() { return thread_context_slot(); }

ScopedContext::ScopedContext(const std::string& ctx)
    : saved_(thread_context_slot()) {
  thread_context_slot() = ctx;
}

ScopedContext::~ScopedContext() { thread_context_slot() = saved_; }

std::string timestamp_utc_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

void write(Level lvl, const std::string& message) {
  std::string head;
  if (timestamps()) {
    head += '[';
    head += timestamp_utc_now();
    head += "] ";
  }
  const int r = rank();
  if (r >= 0) {
    head += "[r" + std::to_string(r) + "/t" +
            std::to_string(thread_index()) + "] ";
  }
  const std::string& ctx = thread_context_slot();
  if (!ctx.empty()) {
    head += '[';
    head += ctx;
    head += "] ";
  }
  const std::scoped_lock lock(g_mutex);
  std::ostream& os = (lvl >= Level::Warn) ? std::cerr : std::cout;
  os << prefix(lvl) << head << message << '\n';
}

}  // namespace swraman::log
