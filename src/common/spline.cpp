#include "common/spline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace swraman {

void solve_tridiagonal(std::vector<double>& a, std::vector<double>& b,
                       std::vector<double>& c, std::vector<double>& d) {
  const std::size_t n = d.size();
  SWRAMAN_REQUIRE(a.size() == n && b.size() == n && c.size() == n,
                  "tridiagonal bands must have equal length");
  for (std::size_t i = 1; i < n; ++i) {
    const double m = a[i] / b[i - 1];
    b[i] -= m * c[i - 1];
    d[i] -= m * d[i - 1];
  }
  d[n - 1] /= b[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    d[i] = (d[i] - c[i] * d[i + 1]) / b[i];
  }
}

namespace {

// Computes natural-spline second derivatives y2 at the knots.
std::vector<double> natural_second_derivatives(const std::vector<double>& x,
                                               const std::vector<double>& y) {
  const std::size_t n = x.size();
  std::vector<double> y2(n, 0.0);
  if (n < 3) return y2;

  std::vector<double> a(n - 2), b(n - 2), c(n - 2), d(n - 2);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double h0 = x[i] - x[i - 1];
    const double h1 = x[i + 1] - x[i];
    a[i - 1] = h0 / 6.0;
    b[i - 1] = (h0 + h1) / 3.0;
    c[i - 1] = h1 / 6.0;
    d[i - 1] = (y[i + 1] - y[i]) / h1 - (y[i] - y[i - 1]) / h0;
  }
  // Natural BC: y2[0] = y2[n-1] = 0, drop couplings to the boundary.
  a[0] = 0.0;
  c[n - 3] = 0.0;
  solve_tridiagonal(a, b, c, d);
  for (std::size_t i = 1; i + 1 < n; ++i) y2[i] = d[i - 1];
  return y2;
}

}  // namespace

CubicSpline::CubicSpline(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  SWRAMAN_REQUIRE(x_.size() == y_.size(), "spline: x/y size mismatch");
  SWRAMAN_REQUIRE(x_.size() >= 2, "spline: need at least 2 knots");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    SWRAMAN_REQUIRE(x_[i] > x_[i - 1], "spline: knots must increase");
  }
  y2_ = natural_second_derivatives(x_, y_);
}

std::size_t CubicSpline::interval(double x) const {
  if (x <= x_.front()) return 0;
  if (x >= x_.back()) return x_.size() - 2;
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  return static_cast<std::size_t>(it - x_.begin()) - 1;
}

double CubicSpline::value(double x) const {
  const std::size_t i = interval(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * y2_[i] + (b * b * b - b) * y2_[i + 1]) * (h * h) /
             6.0;
}

double CubicSpline::derivative(double x) const {
  const std::size_t i = interval(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h -
         (3.0 * a * a - 1.0) / 6.0 * h * y2_[i] +
         (3.0 * b * b - 1.0) / 6.0 * h * y2_[i + 1];
}

double CubicSpline::second_derivative(double x) const {
  const std::size_t i = interval(x);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - x) / h;
  const double b = (x - x_[i]) / h;
  return a * y2_[i] + b * y2_[i + 1];
}

std::vector<double> CubicSpline::cumulative_at_knots() const {
  std::vector<double> cum(x_.size(), 0.0);
  for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
    const double h = x_[i + 1] - x_[i];
    // integral over [x_i, x_{i+1}] of the cubic piece:
    //   h (y_i + y_{i+1})/2 - h^3 (y2_i + y2_{i+1})/24.
    cum[i + 1] = cum[i] + h * (y_[i] + y_[i + 1]) / 2.0 -
                 h * h * h * (y2_[i] + y2_[i + 1]) / 24.0;
  }
  return cum;
}

void CubicSpline::interval_coefficients(std::size_t i, double c[4]) const {
  SWRAMAN_REQUIRE(i + 1 < x_.size(), "interval_coefficients: index");
  const double h = x_[i + 1] - x_[i];
  const double y0 = y_[i];
  const double y1 = y_[i + 1];
  const double m0 = y2_[i];
  const double m1 = y2_[i + 1];
  c[0] = y0;
  c[1] = (y1 - y0) / h - h / 6.0 * (2.0 * m0 + m1);
  c[2] = m0 / 2.0;
  c[3] = (m1 - m0) / (6.0 * h);
}

IndexSpline::IndexSpline(const std::vector<double>& y) : n_(y.size()) {
  SWRAMAN_REQUIRE(n_ >= 2, "IndexSpline: need at least 2 knots");
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = static_cast<double>(i);
  const std::vector<double> y2 = natural_second_derivatives(x, y);

  // Convert the Hermite-like representation into per-interval monomial
  // coefficients in u = t - i:
  //   y(u) = y_i + u*(dy - h/6*(2*y2_i + y2_{i+1}))
  //        + u^2 * y2_i/2 + u^3 * (y2_{i+1} - y2_i)/6,   with h = 1.
  coeff_.resize(4 * (n_ - 1));
  for (std::size_t i = 0; i + 1 < n_; ++i) {
    const double dy = y[i + 1] - y[i];
    coeff_[4 * i + 0] = y[i];
    coeff_[4 * i + 1] = dy - (2.0 * y2[i] + y2[i + 1]) / 6.0;
    coeff_[4 * i + 2] = y2[i] / 2.0;
    coeff_[4 * i + 3] = (y2[i + 1] - y2[i]) / 6.0;
  }
}

double IndexSpline::value(double t) const {
  const double tmax = static_cast<double>(n_ - 1);
  t = std::clamp(t, 0.0, tmax);
  std::size_t i = static_cast<std::size_t>(t);
  if (i >= n_ - 1) i = n_ - 2;
  const double u = t - static_cast<double>(i);
  const double* c = &coeff_[4 * i];
  return c[0] + u * (c[1] + u * (c[2] + u * c[3]));
}

double IndexSpline::derivative(double t) const {
  const double tmax = static_cast<double>(n_ - 1);
  t = std::clamp(t, 0.0, tmax);
  std::size_t i = static_cast<std::size_t>(t);
  if (i >= n_ - 1) i = n_ - 2;
  const double u = t - static_cast<double>(i);
  const double* c = &coeff_[4 * i];
  return c[1] + u * (2.0 * c[2] + 3.0 * u * c[3]);
}

double IndexSpline::second_derivative(double t) const {
  const double tmax = static_cast<double>(n_ - 1);
  t = std::clamp(t, 0.0, tmax);
  std::size_t i = static_cast<std::size_t>(t);
  if (i >= n_ - 1) i = n_ - 2;
  const double u = t - static_cast<double>(i);
  const double* c = &coeff_[4 * i];
  return 2.0 * c[2] + 6.0 * u * c[3];
}

}  // namespace swraman
