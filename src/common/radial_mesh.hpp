#pragma once

#include <cstddef>
#include <vector>

// Logarithmic radial mesh r_i = r0 * exp(alpha * i), i = 0..n-1, the standard
// mesh for all-electron atomic problems: it resolves the nuclear-cusp region
// with exponentially fine spacing while reaching large radii in O(100) points.

namespace swraman {

class RadialMesh {
 public:
  RadialMesh() = default;

  // Mesh from r_min to r_max with n points (n >= 2).
  RadialMesh(double r_min, double r_max, std::size_t n);

  // Conventional all-electron mesh for nuclear charge z: starts at
  // ~1e-5/z Bohr and extends to r_max.
  static RadialMesh for_nuclear_charge(double z, double r_max = 30.0,
                                       std::size_t n = 600);

  [[nodiscard]] std::size_t size() const { return r_.size(); }
  [[nodiscard]] double r(std::size_t i) const { return r_[i]; }
  [[nodiscard]] const std::vector<double>& points() const { return r_; }
  [[nodiscard]] double r_min() const { return r_.front(); }
  [[nodiscard]] double r_max() const { return r_.back(); }
  [[nodiscard]] double alpha() const { return alpha_; }

  // Fractional mesh index of radius r (clamped to [0, n-1]); this is the
  // argument handed to IndexSpline when interpolating tabulated radial
  // functions ("i_r_log" in the paper's Algorithm 2).
  [[nodiscard]] double fractional_index(double r) const;

  // Integration weight dr_i = alpha * r_i with trapezoidal end corrections:
  // integral f(r) dr ~= sum_i f(r_i) * weight(i).
  [[nodiscard]] double weight(std::size_t i) const { return w_[i]; }
  [[nodiscard]] const std::vector<double>& weights() const { return w_; }

  // integral f(r) dr over the mesh range.
  [[nodiscard]] double integrate(const std::vector<double>& f) const;

 private:
  std::vector<double> r_;
  std::vector<double> w_;
  double r0_ = 0.0;
  double alpha_ = 0.0;
};

}  // namespace swraman
