#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/flight.hpp"

namespace swraman::obs {

namespace {
// Bottom finite bucket bound and the per-bucket growth (six buckets per
// decade). 63 finite buckets span [1e-6, ~3.16e4); the 64th saturates.
constexpr double kBucketLo = 1e-6;
constexpr double kBucketsPerDecade = 6.0;

// lockcheck lives in swraman_common, below this library, so it cannot
// reach the metrics registry or the flight recorder directly. Any binary
// linking obs installs these sinks from static init; lockcheck violations
// then bump check.violations (bypassing the obs::count tracing gate — a
// checked run tallies whether or not tracing is on, same policy as
// swcheck) and dump the flight rings before a throwing report unwinds.
struct LockcheckSinkInit {
  LockcheckSinkInit() {
    lockcheck::ObsSinks sinks;
    sinks.violation = [](const char* rule, const std::string&) {
      Registry::instance().counter("check.violations").add(1.0);
      obs::instant("check.violation", "rule", std::string(rule));
    };
    sinks.flight_dump = [](const char* reason) { flight::dump(reason); };
    lockcheck::install_obs_sinks(sinks);
  }
};
const LockcheckSinkInit g_lockcheck_sink_init;
}  // namespace

double Histogram::bucket_upper(std::size_t i) {
  if (i >= kBuckets - 1) i = kBuckets - 2;
  return kBucketLo *
         std::pow(10.0, static_cast<double>(i + 1) / kBucketsPerDecade);
}

std::size_t Histogram::bucket_index(double v) {
  if (!(v > bucket_upper(0))) return 0;  // <= bottom bound, incl. <=0 / NaN
  if (v > bucket_upper(kBuckets - 2)) return kBuckets - 1;  // saturation
  double est = std::ceil(std::log10(v / kBucketLo) * kBucketsPerDecade) - 1.0;
  std::size_t i = est < 0.0 ? 0 : static_cast<std::size_t>(est);
  if (i > kBuckets - 2) i = kBuckets - 2;
  // log10 rounding can land one off at a bucket boundary; walk to the
  // first bucket whose inclusive upper bound actually covers v.
  while (i < kBuckets - 2 && v > bucket_upper(i)) ++i;
  while (i > 0 && v <= bucket_upper(i - 1)) --i;
  return i;
}

void Histogram::observe(double v) {
  const lockcheck::CheckedLock lock(mutex_);
  if (s_.count == 0) {
    s_.min = v;
    s_.max = v;
  } else {
    if (v < s_.min) s_.min = v;
    if (v > s_.max) s_.max = v;
  }
  ++s_.count;
  s_.sum += v;
  ++s_.buckets[bucket_index(v)];
}

Histogram::Snapshot Histogram::snapshot() const {
  const lockcheck::CheckedLock lock(mutex_);
  return s_;
}

double Histogram::quantile(double q) const { return obs::quantile(snapshot(), q); }

std::uint64_t Histogram::count_below(double x) const {
  return obs::count_below(snapshot(), x);
}

double quantile(const Histogram::Snapshot& s, double q) {
  if (s.count == 0) return 0.0;
  if (s.count == 1 || q <= 0.0) return s.min;
  if (q >= 1.0) return s.max;
  // 0-based position in the sorted sample; walk the cumulative buckets.
  const double pos = q * static_cast<double>(s.count - 1);
  double cum = 0.0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const double n = static_cast<double>(s.buckets[i]);
    if (n == 0.0) continue;
    if (pos < cum + n) {
      if (i == Histogram::kBuckets - 1) return s.max;  // saturated bucket
      const double lower = i == 0 ? 0.0 : Histogram::bucket_upper(i - 1);
      const double upper = Histogram::bucket_upper(i);
      const double frac = std::clamp((pos - cum + 1.0) / n, 0.0, 1.0);
      return std::clamp(lower + frac * (upper - lower), s.min, s.max);
    }
    cum += n;
  }
  return s.max;
}

std::uint64_t count_below(const Histogram::Snapshot& s, double x) {
  if (s.count == 0 || x < s.min) return 0;
  if (x >= s.max) return s.count;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t n = s.buckets[i];
    if (n == 0) continue;
    const bool saturated = i == Histogram::kBuckets - 1;
    const double lower = i == 0 ? 0.0 : Histogram::bucket_upper(i - 1);
    const double upper = saturated ? s.max : Histogram::bucket_upper(i);
    if (x >= upper) {
      acc += n;
      continue;
    }
    if (x > lower && upper > lower) {
      const double frac = std::clamp((x - lower) / (upper - lower), 0.0, 1.0);
      acc += static_cast<std::uint64_t>(frac * static_cast<double>(n));
    }
    break;  // later buckets hold only samples above x
  }
  return std::min(acc, s.count);
}

Registry& Registry::instance() {
  // Leaked: exporters may run from atexit after other statics are gone.
  static Registry* r = new Registry;
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  const lockcheck::CheckedLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const lockcheck::CheckedLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const lockcheck::CheckedLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, double> Registry::counter_values() const {
  const lockcheck::CheckedLock lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> Registry::gauge_values() const {
  const lockcheck::CheckedLock lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, Histogram::Snapshot> Registry::histogram_values()
    const {
  const lockcheck::CheckedLock lock(mutex_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->snapshot();
  return out;
}

void Registry::reset_for_testing() {
  const lockcheck::CheckedLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace swraman::obs
