#include "obs/metrics.hpp"

namespace swraman::obs {

void Histogram::observe(double v) {
  const std::scoped_lock lock(mutex_);
  if (s_.count == 0) {
    s_.min = v;
    s_.max = v;
  } else {
    if (v < s_.min) s_.min = v;
    if (v > s_.max) s_.max = v;
  }
  ++s_.count;
  s_.sum += v;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return s_;
}

Registry& Registry::instance() {
  // Leaked: exporters may run from atexit after other statics are gone.
  static Registry* r = new Registry;
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, double> Registry::counter_values() const {
  const std::scoped_lock lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> Registry::gauge_values() const {
  const std::scoped_lock lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, Histogram::Snapshot> Registry::histogram_values()
    const {
  const std::scoped_lock lock(mutex_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->snapshot();
  return out;
}

void Registry::reset_for_testing() {
  const std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace swraman::obs
