#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

// Flight recorder (DESIGN.md S13). A fixed-size lock-free per-thread ring
// of the most recent trace events, dumped — together with counter deltas
// since the previous dump — the moment something goes wrong: a
// CheckViolation, a fault site firing, a wedged WAL, or a shard kill.
// The chaos harness gets postmortem forensics ("what were all threads
// doing in the last N events before the kill") instead of just pass/fail.
//
// Concurrency model: each thread owns one ring and is its only writer;
// records are published with a per-slot seqlock (seq odd while a write is
// in flight, payload fields are relaxed atomics) so a dumping thread can
// read every ring without locks and simply skips torn slots. Rings are
// registered in a global list and leaked when their thread exits — the
// tail of a dead worker's ring is exactly what a postmortem wants.
//
// Disabled cost: flight::record() gates on one relaxed atomic load.
// Enable programmatically (set_enabled) or with SWRAMAN_FLIGHT=1; dumps
// go to SWRAMAN_FLIGHT_DIR (default ".") as flight-<reason>.json
// ("swraman-flight-v1"), one file per distinct reason, overwritten on
// repeat so a fault site firing thousands of times keeps the latest
// context without unbounded files.

namespace swraman::obs::flight {

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

// Hot-path gate: one relaxed load.
inline bool enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

// Slots per thread ring (power of two).
inline constexpr std::size_t kRingSlots = 512;
// Tag bytes kept per event (longer tags are truncated).
inline constexpr std::size_t kTagBytes = 24;

// One decoded ring event (dump/readback form).
struct Event {
  std::uint64_t t_ns = 0;   // obs::now_ns() timebase
  std::uint32_t tid = 0;    // obs::thread_id() of the recording thread
  std::uint64_t seq = 0;    // per-thread record ordinal
  std::string tag;          // e.g. "wal.append", "fault.serve.shard.kill"
  double a = 0.0;           // two free payload values (gid, shard, ...)
  double b = 0.0;
};

// Record an event into the calling thread's ring (no-op when disabled).
void record(const char* tag, double a = 0.0, double b = 0.0);

// Snapshot of every ring's stable slots, oldest first (tests/exporters).
std::vector<Event> snapshot();

// Dump the rings + counter deltas since the previous dump to
// "<dir>/flight-<sanitized reason>.json"; returns the path ("" when
// disabled or the write failed). Thread-safe; serialized internally.
std::string dump(const std::string& reason);

// Where dumps go (overrides SWRAMAN_FLIGHT_DIR; "" = current directory).
void set_dump_dir(const std::string& dir);

// Total dumps written since process start / the last reset.
std::uint64_t dump_count();
// Path of the most recent dump ("" if none yet).
std::string last_dump_path();

// Clears rings' visible contents, dump bookkeeping, and the delta
// baseline (tests).
void reset_for_testing();

}  // namespace swraman::obs::flight
