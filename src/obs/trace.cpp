#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/lockcheck.hpp"
#include "common/logging.hpp"
#include "obs/flight.hpp"
#include "obs/report.hpp"

namespace swraman::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

// Completed spans shared by all threads. Leaked singleton: the atexit
// exporter and late-exiting threads may touch it after main returns, so it
// must never be destroyed.
struct GlobalState {
  lockcheck::CheckedMutex mutex{"obs.trace"};
  std::vector<SpanRecord> completed;
  std::uint64_t dropped = 0;
  Timer epoch;  // process trace epoch (monotonic)
};

GlobalState& state() {
  static GlobalState* s = new GlobalState;
  return *s;
}

// Buffer cap: ~4M spans (a full protein-fragment pipeline stays well
// under); beyond it new spans are counted as dropped instead of growing
// without bound.
constexpr std::size_t kMaxSpans = std::size_t{1} << 22;

struct Tls {
  std::uint32_t tid = 0;
  std::vector<SpanRecord> stack;  // active spans, index == depth
};

Tls& tls() {
  static std::atomic<std::uint32_t> next{0};
  thread_local Tls t{next.fetch_add(1, std::memory_order_relaxed), {}};
  return t;
}

void commit(SpanRecord&& rec) {
  GlobalState& s = state();
  const lockcheck::CheckedLock lock(s.mutex);
  if (s.completed.size() >= kMaxSpans) {
    ++s.dropped;
    return;
  }
  s.completed.push_back(std::move(rec));
}

SpanRecord make_record(Tls& t, const char* name, bool is_instant) {
  SpanRecord rec;
  rec.name = name;
  rec.path = t.stack.empty() ? rec.name : t.stack.back().path + "/" + rec.name;
  rec.depth = static_cast<std::uint32_t>(t.stack.size());
  rec.tid = t.tid;
  rec.start_ns = now_ns();
  rec.instant = is_instant;
  return rec;
}

// Reads SWRAMAN_TRACE at static-initialization time so any binary —
// bench, example, test — can be traced without touching its main(); the
// registered exit hook writes the configured reports.
bool env_truthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "off" && s != "false" && s != "OFF" && s != "no";
}

struct EnvInit {
  EnvInit() {
    state();  // force construction before any atexit callback may run
    if (env_truthy(std::getenv("SWRAMAN_TRACE"))) {
      set_enabled(true);
      std::atexit(write_env_reports);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void set_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() { return state().epoch.nanoseconds(); }

std::uint32_t thread_id() { return tls().tid; }

ScopedSpan::ScopedSpan(const char* name) {
  if (!enabled()) return;
  Tls& t = tls();
  index_ = t.stack.size();
  t.stack.push_back(make_record(t, name, false));
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tls& t = tls();
  if (index_ >= t.stack.size()) return;  // defensive: stack was reset
  SpanRecord rec = std::move(t.stack[index_]);
  // RAII scopes unwind LIFO; anything still above this span is a leaked
  // child whose scope outlived its parent — drop it rather than corrupt
  // the stack.
  t.stack.resize(index_);
  rec.dur_ns = now_ns() - rec.start_ns;
  commit(std::move(rec));
}

void ScopedSpan::attr(const char* key, double value) {
  if (!active_) return;
  Tls& t = tls();
  if (index_ >= t.stack.size()) return;
  t.stack[index_].attrs.push_back(Attr{key, true, value, {}});
}

void ScopedSpan::attr(const char* key, const char* value) {
  attr(key, std::string(value));
}

void ScopedSpan::attr(const char* key, const std::string& value) {
  if (!active_) return;
  Tls& t = tls();
  if (index_ >= t.stack.size()) return;
  t.stack[index_].attrs.push_back(Attr{key, false, 0.0, value});
}

void instant(const char* name) {
  // Instants are the flight recorder's bread and butter: faults, recovery
  // decisions, kills. Feed the ring even when span tracing is off.
  flight::record(name);
  if (!enabled()) return;
  commit(make_record(tls(), name, true));
}

void instant(const char* name, const char* key, double value) {
  flight::record(name, value);
  if (!enabled()) return;
  SpanRecord rec = make_record(tls(), name, true);
  rec.attrs.push_back(Attr{key, true, value, {}});
  commit(std::move(rec));
}

void instant(const char* name, const char* key, const std::string& value) {
  flight::record(name);
  if (!enabled()) return;
  SpanRecord rec = make_record(tls(), name, true);
  rec.attrs.push_back(Attr{key, false, 0.0, value});
  commit(std::move(rec));
}

std::vector<SpanRecord> snapshot() {
  GlobalState& s = state();
  std::vector<SpanRecord> out;
  {
    const lockcheck::CheckedLock lock(s.mutex);
    out = s.completed;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t dropped() {
  GlobalState& s = state();
  const lockcheck::CheckedLock lock(s.mutex);
  return s.dropped;
}

void reset_for_testing() {
  GlobalState& s = state();
  const lockcheck::CheckedLock lock(s.mutex);
  s.completed.clear();
  s.dropped = 0;
  s.epoch.reset();
}

}  // namespace swraman::obs
