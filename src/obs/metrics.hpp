#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/trace.hpp"

// Metrics registry (DESIGN.md S8): named counters, gauges, and summary
// histograms, accumulated across threads and exported into the perf
// report. Instrument names follow the span taxonomy: "scf.iterations",
// "comm.allreduce.bytes", "fault.injected", "checkpoint.bytes_written".
//
// Instrument handles returned by the registry are stable for the process
// lifetime, so hot paths look a name up once and update lock-free
// afterwards. The obs::count/gauge_set/observe helpers additionally gate
// on obs::enabled(), making dormant instrumentation a single relaxed load.

namespace swraman::obs {

class Counter {
 public:
  void add(double v = 1.0) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Summary histogram: count / sum / min / max (enough to export mean and
// extremes of residuals and payload sizes without binning policy).
class Histogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  void observe(double v);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot s_;
};

class Registry {
 public:
  static Registry& instance();

  // Find-or-create; references stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Export snapshots (copies, safe to read while instruments update).
  [[nodiscard]] std::map<std::string, double> counter_values() const;
  [[nodiscard]] std::map<std::string, double> gauge_values() const;
  [[nodiscard]] std::map<std::string, Histogram::Snapshot> histogram_values()
      const;

  // Drops every instrument (tests).
  void reset_for_testing();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// enabled()-gated conveniences for instrumentation sites.
inline void count(const char* name, double v = 1.0) {
  if (enabled()) Registry::instance().counter(name).add(v);
}
inline void gauge_set(const char* name, double v) {
  if (enabled()) Registry::instance().gauge(name).set(v);
}
inline void observe(const char* name, double v) {
  if (enabled()) Registry::instance().histogram(name).observe(v);
}

}  // namespace swraman::obs
