#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/lockcheck.hpp"
#include "obs/trace.hpp"

// Metrics registry (DESIGN.md S8): named counters, gauges, and summary
// histograms, accumulated across threads and exported into the perf
// report. Instrument names follow the span taxonomy: "scf.iterations",
// "comm.allreduce.bytes", "fault.injected", "checkpoint.bytes_written".
//
// Instrument handles returned by the registry are stable for the process
// lifetime, so hot paths look a name up once and update lock-free
// afterwards. The obs::count/gauge_set/observe helpers additionally gate
// on obs::enabled(), making dormant instrumentation a single relaxed load.

namespace swraman::obs {

class Counter {
 public:
  void add(double v = 1.0) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

// Summary histogram: count / sum / min / max plus fixed log-spaced
// buckets so quantiles and threshold counts (SLO attainment) can be
// estimated without a per-histogram binning policy. Buckets span
// [1e-6, ~3.16e4) with six per decade (~±20% quantile resolution —
// plenty for latencies and durations); values at or below the bottom
// land in bucket 0, values past the top land in the saturation bucket.
//
// Quantile edge semantics (regression-tested in tests/obs):
//   * empty histogram        -> quantile() == 0, count_below() == 0
//   * single sample          -> quantile(q) == that sample for every q
//   * q <= 0 / q >= 1        -> exact min / exact max
//   * saturated top bucket   -> clamped to the exact max (never +inf)
// Interpolated results are always clamped into [min, max].
class Histogram {
 public:
  // Bucket 0..kBuckets-2 are finite log-spaced bins; the last bucket
  // absorbs everything past the top bound (saturation).
  static constexpr std::size_t kBuckets = 64;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };

  void observe(double v);
  [[nodiscard]] Snapshot snapshot() const;

  // Inclusive upper bound of bucket i (the last bucket reports the top
  // finite bound; saturated samples are clamped to max on readout).
  static double bucket_upper(std::size_t i);
  // Bucket index a value lands in.
  static std::size_t bucket_index(double v);

  // Convenience wrappers over the free functions below.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t count_below(double x) const;

 private:
  mutable lockcheck::CheckedMutex mutex_{"obs.histogram"};
  Snapshot s_;
};

// Estimated q-quantile of a snapshot (see edge semantics above).
double quantile(const Histogram::Snapshot& s, double q);
// Estimated number of samples <= x (0 for x < min, count for x >= max).
std::uint64_t count_below(const Histogram::Snapshot& s, double x);

class Registry {
 public:
  static Registry& instance();

  // Find-or-create; references stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Export snapshots (copies, safe to read while instruments update).
  [[nodiscard]] std::map<std::string, double> counter_values() const;
  [[nodiscard]] std::map<std::string, double> gauge_values() const;
  [[nodiscard]] std::map<std::string, Histogram::Snapshot> histogram_values()
      const;

  // Drops every instrument (tests).
  void reset_for_testing();

 private:
  Registry() = default;

  mutable lockcheck::CheckedMutex mutex_{"obs.metrics"};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// enabled()-gated conveniences for instrumentation sites.
inline void count(const char* name, double v = 1.0) {
  if (enabled()) Registry::instance().counter(name).add(v);
}
inline void gauge_set(const char* name, double v) {
  if (enabled()) Registry::instance().gauge(name).set(v);
}
inline void observe(const char* name, double v) {
  if (enabled()) Registry::instance().histogram(name).observe(v);
}

}  // namespace swraman::obs
