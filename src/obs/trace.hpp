#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

// Hierarchical span tracer (DESIGN.md S8). Code brackets a phase with an
// RAII scope:
//
//   SWRAMAN_TRACE_SCOPE("scf.iter");                 // anonymous scope
//   SWRAMAN_TRACE_SPAN(span, "dfpt.response");       // named: span.attr(...)
//   span.attr("axis", axis);
//
// Spans nest per thread; every record carries its slash-joined ancestry
// path ("raman.compute/scf.solve/scf.iter"), a stable thread index, and
// optional key/value attributes (numbers or strings). Sunway kernel spans
// attach the cost model's modeled cycles and DMA bytes, so the exported
// reports attribute both wall time and modeled machine time.
//
// Tracing is off by default: a disabled ScopedSpan constructor is a single
// relaxed atomic load and no allocation, so instrumented hot paths cost a
// predicted branch. Enable programmatically (obs::set_enabled) or through
// the environment: SWRAMAN_TRACE=1 turns tracing on at process start and
// registers an exit hook that writes the Chrome trace and the perf report
// (see report.hpp for SWRAMAN_TRACE_FILE / SWRAMAN_PERF_FILE).

namespace swraman::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

// Hot-path gate: one relaxed load.
inline bool enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on);

struct Attr {
  std::string key;
  bool numeric = true;
  double num = 0.0;
  std::string str;
};

struct SpanRecord {
  std::string name;       // leaf name ("scf.iter")
  std::string path;       // slash-joined ancestry, leaf included
  std::uint64_t start_ns = 0;  // since the process trace epoch
  std::uint64_t dur_ns = 0;    // 0 for instants
  std::uint32_t tid = 0;       // stable small thread index
  std::uint32_t depth = 0;     // nesting depth at creation
  bool instant = false;        // point event (fault fired, recovery, ...)
  std::vector<Attr> attrs;
};

// Nanoseconds since the process-wide trace epoch (monotonic).
std::uint64_t now_ns();

// Stable, small id of the calling thread (assigned on first use).
std::uint32_t thread_id();

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attach a key/value attribute to this span (no-op when inactive).
  void attr(const char* key, double value);
  void attr(const char* key, const char* value);
  void attr(const char* key, const std::string& value);

  // True when tracing was enabled at construction; callers gate expensive
  // attribute computation (e.g. cost-model evaluation) on this.
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_ = false;
  std::size_t index_ = 0;  // position in the thread's active-span stack
};

// Point events at the current nesting position (fault injections, recovery
// decisions, checkpoint writes).
void instant(const char* name);
void instant(const char* name, const char* key, double value);
void instant(const char* name, const char* key, const std::string& value);

// Copy of all completed spans, sorted by (start, tid). Active (unfinished)
// spans are not included.
std::vector<SpanRecord> snapshot();

// Spans discarded because the in-memory buffer hit its cap.
std::uint64_t dropped();

// Clears completed spans, the drop counter, and the epoch (tests).
void reset_for_testing();

}  // namespace swraman::obs

#define SWRAMAN_OBS_CONCAT_(a, b) a##b
#define SWRAMAN_OBS_CONCAT(a, b) SWRAMAN_OBS_CONCAT_(a, b)

// Anonymous RAII scope: traces from here to the end of the block.
#define SWRAMAN_TRACE_SCOPE(span_name)                              \
  ::swraman::obs::ScopedSpan SWRAMAN_OBS_CONCAT(swraman_trace_scope_, \
                                                __LINE__)(span_name)

// Named RAII scope, for attaching attributes: SWRAMAN_TRACE_SPAN(s, "x");
// s.attr("k", v);
#define SWRAMAN_TRACE_SPAN(var, span_name) \
  ::swraman::obs::ScopedSpan var(span_name)
