#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

// Exporters (DESIGN.md S8). Three views of the same span/metric data:
//
//  * Chrome trace_event JSON — load in chrome://tracing or Perfetto; one
//    "X" (complete) event per span, "i" (instant) events for faults and
//    checkpoint writes, args carrying the span attributes.
//  * Flat perf-report JSON ("swraman-perf-v1") — the machine-readable
//    artifact the bench harness tracks across PRs: the aggregated phase
//    tree (count / wall / self time, summed numeric attributes such as
//    modeled CPE cycles and DMA bytes) plus every metric.
//  * Plain-text phase tree — printed through swraman::log for humans.
//
// With SWRAMAN_TRACE=1 in the environment the reports are written at
// process exit to SWRAMAN_TRACE_FILE (default "swraman_trace.json") and
// SWRAMAN_PERF_FILE (default "swraman_perf.json"); set either to "" to
// skip that file.

namespace swraman::obs {

// One aggregated node of the phase tree: all spans sharing a path.
struct PhaseNode {
  std::string path;    // "raman.compute/scf.solve/scf.iter"
  std::string name;    // "scf.iter"
  std::uint32_t depth = 0;
  std::uint64_t count = 0;     // spans aggregated (instants included)
  double wall_s = 0.0;         // summed duration
  double self_s = 0.0;         // wall minus direct children's wall
  std::uint64_t first_start_ns = 0;  // earliest occurrence (tree ordering)
  std::map<std::string, double> attr_sums;  // numeric attrs, summed
};

// Aggregates spans by path into depth-first tree order (children follow
// their parent, siblings ordered by first occurrence).
std::vector<PhaseNode> aggregate_phases(const std::vector<SpanRecord>& spans);

// Chrome trace_event JSON of the raw spans.
std::string chrome_trace_json(const std::vector<SpanRecord>& spans);

// Flat perf report ("swraman-perf-v1"): aggregated phases + all metrics.
// total_wall_s is the process elapsed time (obs::now_ns() at export).
std::string perf_report_json(const std::vector<SpanRecord>& spans,
                             double total_wall_s);

// Human-readable phase tree.
std::string phase_tree_text(const std::vector<PhaseNode>& phases);

// Prints the current phase tree through log::info (one line per node).
void log_phase_tree();

// JSON emission helpers shared by the exporters (perf report, jobtrace,
// flight dumps, health snapshots): escape a string body, format a finite
// number (non-finite values emit 0), and render an attr list as an object.
std::string json_escape(const std::string& s);
std::string json_num(double v);
std::string attrs_json(const std::vector<Attr>& attrs);

// Writes `content` to `path`; false (with a log::warn) on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

// Writes the Chrome trace and perf report to the env-configured paths.
// Registered with atexit when SWRAMAN_TRACE enables tracing; also callable
// directly by drivers that want reports mid-run.
void write_env_reports();

}  // namespace swraman::obs
