#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace swraman::obs {

namespace {

constexpr const char kLatencyPrefix[] = "serve.latency.";
constexpr const char kQueuePrefix[] = "serve.queue.depth";
constexpr const char kRatioPrefix[] = "serve.cache.hit_ratio";
constexpr const char kFsyncHist[] = "serve.wal.fsync_s";

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

SloMonitor::SloMonitor(SloOptions opts) : opts_(opts) {
  if (opts_.objective >= 1.0) opts_.objective = 0.999;
  if (opts_.objective < 0.0) opts_.objective = 0.0;
}

HealthSnapshot SloMonitor::compute_locked() {
  Registry& reg = Registry::instance();
  HealthSnapshot snap;
  snap.t_ns = now_ns();

  for (const auto& [name, v] : reg.gauge_values()) {
    if (has_prefix(name, kQueuePrefix)) snap.queue_depth += v;
  }
  double ratio_sum = 0.0;
  std::size_t ratio_n = 0;
  for (const auto& [name, v] : reg.gauge_values()) {
    if (has_prefix(name, kRatioPrefix)) {
      ratio_sum += v;
      ++ratio_n;
    }
  }
  snap.cache_hit_ratio = ratio_n == 0 ? 0.0 : ratio_sum / ratio_n;

  const auto hists = reg.histogram_values();
  if (const auto it = hists.find(kFsyncHist); it != hists.end()) {
    snap.wal_fsync_p99_s = quantile(it->second, 0.99);
    snap.wal_fsync_max_s = it->second.max;
  }

  // The full-budget burn rate: window attainment 0 burns the budget this
  // many times faster than the objective allows.
  const double budget = std::max(1.0 - opts_.objective, 1e-9);
  for (const auto& [name, h] : hists) {
    if (!has_prefix(name, kLatencyPrefix)) continue;
    TenantHealth t;
    t.tenant = name.substr(sizeof(kLatencyPrefix) - 1);
    t.finished = h.count;
    const std::uint64_t below = count_below(h, opts_.latency_slo_s);
    t.attainment =
        h.count == 0 ? 1.0
                     : static_cast<double>(below) /
                           static_cast<double>(h.count);
    auto& prev = prev_[name];
    const std::uint64_t d_count = h.count - std::min(h.count, prev.first);
    const std::uint64_t d_below = below - std::min(below, prev.second);
    t.window_finished = d_count;
    t.window_attainment =
        d_count == 0 ? 1.0
                     : static_cast<double>(std::min(d_below, d_count)) /
                           static_cast<double>(d_count);
    t.burn_rate = (1.0 - t.window_attainment) / budget;
    t.p50_s = quantile(h, 0.50);
    t.p99_s = quantile(h, 0.99);
    prev = {h.count, below};
    snap.max_burn_rate = std::max(snap.max_burn_rate, t.burn_rate);
    snap.tenants.push_back(std::move(t));
  }
  return snap;
}

HealthSnapshot SloMonitor::tick() {
  const lockcheck::CheckedLock lock(mutex_);
  HealthSnapshot snap = compute_locked();
  last_tick_ns_ = snap.t_ns;
  ever_ticked_ = true;
  // Hint ramps linearly from 0 (no burn) to 1 at the full-budget burn.
  const double full_burn = 1.0 / std::max(1.0 - opts_.objective, 1e-9);
  hint_.store(std::clamp(snap.max_burn_rate / full_burn, 0.0, 1.0),
              std::memory_order_relaxed);
  if (history_.size() >= opts_.max_snapshots) {
    history_.erase(history_.begin());
  }
  history_.push_back(snap);
  return snap;
}

void SloMonitor::maybe_tick() {
  {
    const lockcheck::CheckedLock lock(mutex_);
    const std::uint64_t now = now_ns();
    const auto period_ns =
        static_cast<std::uint64_t>(opts_.min_period_s * 1e9);
    if (ever_ticked_ && now - last_tick_ns_ < period_ns) return;
  }
  tick();
}

std::vector<HealthSnapshot> SloMonitor::history() const {
  const lockcheck::CheckedLock lock(mutex_);
  return history_;
}

std::string SloMonitor::export_json() const {
  const std::vector<HealthSnapshot> hist = history();
  std::string out;
  out.reserve(hist.size() * 256 + 512);
  out += "{\n  \"schema\": \"swraman-health-v1\",\n";
  out += "  \"generated\": \"" + json_escape(log::timestamp_utc_now()) +
         "\",\n";
  out += "  \"latency_slo_s\": " + json_num(opts_.latency_slo_s) + ",\n";
  out += "  \"objective\": " + json_num(opts_.objective) + ",\n";
  out += "  \"snapshots\": [\n";
  for (std::size_t i = 0; i < hist.size(); ++i) {
    const HealthSnapshot& s = hist[i];
    out += "    {\"t_ns\": " + std::to_string(s.t_ns) +
           ", \"queue_depth\": " + json_num(s.queue_depth) +
           ", \"cache_hit_ratio\": " + json_num(s.cache_hit_ratio) +
           ", \"wal_fsync_p99_s\": " + json_num(s.wal_fsync_p99_s) +
           ", \"wal_fsync_max_s\": " + json_num(s.wal_fsync_max_s) +
           ", \"max_burn_rate\": " + json_num(s.max_burn_rate) +
           ", \"tenants\": [";
    for (std::size_t j = 0; j < s.tenants.size(); ++j) {
      const TenantHealth& t = s.tenants[j];
      if (j != 0) out += ", ";
      out += "{\"tenant\": \"" + json_escape(t.tenant) +
             "\", \"finished\": " + std::to_string(t.finished) +
             ", \"window_finished\": " + std::to_string(t.window_finished) +
             ", \"attainment\": " + json_num(t.attainment) +
             ", \"window_attainment\": " + json_num(t.window_attainment) +
             ", \"burn_rate\": " + json_num(t.burn_rate) +
             ", \"p50_s\": " + json_num(t.p50_s) +
             ", \"p99_s\": " + json_num(t.p99_s) + '}';
    }
    out += "]}";
    out += (i + 1 < hist.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace swraman::obs
