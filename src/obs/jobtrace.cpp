#include "obs/jobtrace.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.hpp"
#include "obs/report.hpp"

namespace swraman::obs {

namespace detail {
std::atomic<bool> g_jobtrace_enabled{false};
}  // namespace detail

namespace {

// Per-job span cap: a runaway DAG must not grow the registry without
// bound; past the cap new spans are dropped and counted in the root's
// "spans_dropped" attribute on export.
constexpr std::size_t kMaxSpansPerJob = 1 << 16;

bool env_truthy(const char* v) {
  if (v == nullptr || *v == '\0') return false;
  const std::string s(v);
  return s != "0" && s != "off" && s != "false" && s != "OFF" && s != "no";
}

void write_env_jobtrace() {
  const char* v = std::getenv("SWRAMAN_JOBTRACE_FILE");
  const std::string path(v != nullptr ? v : "swraman_jobtrace.json");
  if (path.empty()) return;
  if (write_jobtrace_file(path)) {
    log::info("obs: wrote jobtrace (", JobTraceRegistry::instance().n_jobs(),
              " jobs) to ", path);
  }
}

struct EnvInit {
  EnvInit() {
    JobTraceRegistry::instance();  // construct before any atexit callback
    if (env_truthy(std::getenv("SWRAMAN_JOBTRACE"))) {
      set_jobtrace_enabled(true);
      std::atexit(write_env_jobtrace);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

void set_jobtrace_enabled(bool on) {
  detail::g_jobtrace_enabled.store(on, std::memory_order_relaxed);
}

JobTraceRegistry& JobTraceRegistry::instance() {
  // Leaked: exporters may run from atexit after other statics are gone.
  static JobTraceRegistry* r = new JobTraceRegistry;
  return *r;
}

JobSpan* JobTraceRegistry::find_locked(std::uint64_t gid,
                                       std::uint64_t span) {
  const auto it = jobs_.find(gid);
  if (it == jobs_.end() || span == 0) return nullptr;
  auto& spans = it->second.spans;
  const auto sp = std::lower_bound(
      spans.begin(), spans.end(), span,
      [](const JobSpan& s, std::uint64_t id) { return s.id < id; });
  if (sp == spans.end() || sp->id != span) return nullptr;
  return &*sp;
}

TraceContext JobTraceRegistry::root(std::uint64_t gid, const char* name) {
  if (gid == 0 || !jobtrace_enabled()) return {};
  const lockcheck::CheckedLock lock(mutex_);
  Timeline& t = jobs_[gid];
  if (t.spans.empty()) {
    JobSpan root;
    root.id = 1;
    root.name = name;
    root.start_ns = now_ns();
    t.spans.push_back(std::move(root));
    t.next_id = 2;
  }
  return {gid, t.spans.front().id};
}

TraceContext JobTraceRegistry::restore_root(std::uint64_t gid,
                                            std::uint64_t root_id,
                                            const char* name) {
  if (gid == 0 || !jobtrace_enabled()) return {};
  if (root_id == 0) root_id = 1;
  const lockcheck::CheckedLock lock(mutex_);
  Timeline& t = jobs_[gid];
  if (t.spans.empty()) {
    // Fresh process: rebuild the root from the logged id so replayed
    // spans attach to the same timeline the pre-crash process exported.
    JobSpan root;
    root.id = root_id;
    root.name = name;
    root.start_ns = now_ns();
    t.spans.push_back(std::move(root));
    t.next_id = root_id + 1;
  }
  ++t.incarnation;
  return {gid, t.spans.front().id};
}

std::uint64_t JobTraceRegistry::begin(const TraceContext& parent,
                                      const char* name, int shard) {
  if (!parent.active()) return 0;
  const lockcheck::CheckedLock lock(mutex_);
  Timeline& t = jobs_[parent.gid];
  if (t.spans.size() >= kMaxSpansPerJob) {
    if (!t.spans.empty()) {
      for (Attr& a : t.spans.front().attrs) {
        if (a.key == "spans_dropped") {
          a.num += 1.0;
          return 0;
        }
      }
      t.spans.front().attrs.push_back(Attr{"spans_dropped", true, 1.0, {}});
    }
    return 0;
  }
  JobSpan s;
  s.id = t.next_id++;
  s.parent = parent.parent_span;
  s.name = name;
  s.shard = shard;
  s.incarnation = t.incarnation;
  s.start_ns = now_ns();
  t.spans.push_back(std::move(s));
  return t.spans.back().id;
}

void JobTraceRegistry::end(std::uint64_t gid, std::uint64_t span) {
  if (gid == 0 || span == 0 || !jobtrace_enabled()) return;
  const lockcheck::CheckedLock lock(mutex_);
  if (JobSpan* s = find_locked(gid, span); s != nullptr && s->end_ns == 0) {
    s->end_ns = now_ns();
    if (s->end_ns == s->start_ns) ++s->end_ns;  // keep end > start visible
  }
}

std::uint64_t JobTraceRegistry::event(const TraceContext& parent,
                                      const char* name, int shard) {
  const std::uint64_t id = begin(parent, name, shard);
  if (id == 0) return 0;
  const lockcheck::CheckedLock lock(mutex_);
  if (JobSpan* s = find_locked(parent.gid, id); s != nullptr) {
    s->event = true;
    s->end_ns = s->start_ns;
  }
  return id;
}

void JobTraceRegistry::attr(std::uint64_t gid, std::uint64_t span,
                            const char* key, double value) {
  if (gid == 0 || span == 0 || !jobtrace_enabled()) return;
  const lockcheck::CheckedLock lock(mutex_);
  if (JobSpan* s = find_locked(gid, span); s != nullptr) {
    s->attrs.push_back(Attr{key, true, value, {}});
  }
}

void JobTraceRegistry::attr(std::uint64_t gid, std::uint64_t span,
                            const char* key, const std::string& value) {
  if (gid == 0 || span == 0 || !jobtrace_enabled()) return;
  const lockcheck::CheckedLock lock(mutex_);
  if (JobSpan* s = find_locked(gid, span); s != nullptr) {
    s->attrs.push_back(Attr{key, false, 0.0, value});
  }
}

void JobTraceRegistry::drop_job(std::uint64_t gid) {
  if (gid == 0 || !jobtrace_enabled()) return;
  const lockcheck::CheckedLock lock(mutex_);
  jobs_.erase(gid);
}

std::uint32_t JobTraceRegistry::incarnation(std::uint64_t gid) const {
  const lockcheck::CheckedLock lock(mutex_);
  const auto it = jobs_.find(gid);
  return it == jobs_.end() ? 0 : it->second.incarnation;
}

std::vector<JobSpan> JobTraceRegistry::spans(std::uint64_t gid) const {
  const lockcheck::CheckedLock lock(mutex_);
  const auto it = jobs_.find(gid);
  return it == jobs_.end() ? std::vector<JobSpan>{} : it->second.spans;
}

std::size_t JobTraceRegistry::n_jobs() const {
  const lockcheck::CheckedLock lock(mutex_);
  return jobs_.size();
}

std::vector<std::uint64_t> JobTraceRegistry::gids() const {
  const lockcheck::CheckedLock lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(jobs_.size());
  for (const auto& [gid, t] : jobs_) out.push_back(gid);
  return out;
}

std::string JobTraceRegistry::export_json() const {
  std::map<std::uint64_t, Timeline> copy;
  {
    const lockcheck::CheckedLock lock(mutex_);
    copy = jobs_;
  }
  std::string out;
  out.reserve(copy.size() * 512 + 256);
  out += "{\n  \"schema\": \"swraman-jobtrace-v1\",\n";
  out += "  \"generated\": \"" + json_escape(log::timestamp_utc_now()) +
         "\",\n";
  out += "  \"jobs\": [\n";
  bool first_job = true;
  for (const auto& [gid, t] : copy) {
    if (!first_job) out += ",\n";
    first_job = false;
    out += "    {\"gid\": " + std::to_string(gid) +
           ", \"incarnations\": " + std::to_string(t.incarnation + 1) +
           ", \"spans\": [\n";
    for (std::size_t i = 0; i < t.spans.size(); ++i) {
      const JobSpan& s = t.spans[i];
      out += "      {\"id\": " + std::to_string(s.id) +
             ", \"parent\": " + std::to_string(s.parent) + ", \"name\": \"" +
             json_escape(s.name) + "\", \"shard\": " +
             std::to_string(s.shard) + ", \"incarnation\": " +
             std::to_string(s.incarnation) + ", \"start_ns\": " +
             std::to_string(s.start_ns) + ", \"end_ns\": " +
             std::to_string(s.end_ns) + ", \"event\": " +
             (s.event ? "true" : "false") + ", \"attrs\": " +
             attrs_json(s.attrs) + '}';
      out += (i + 1 < t.spans.size()) ? ",\n" : "\n";
    }
    out += "    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void JobTraceRegistry::reset_for_testing() {
  const lockcheck::CheckedLock lock(mutex_);
  jobs_.clear();
}

bool write_jobtrace_file(const std::string& path) {
  return write_text_file(path, JobTraceRegistry::instance().export_json());
}

}  // namespace swraman::obs
