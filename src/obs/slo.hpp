#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lockcheck.hpp"
#include "common/logging.hpp"

// Live health / SLO monitor (DESIGN.md S13). A periodic snapshotter that
// computes, purely from the existing metrics registries, the health view
// an operator (or the admission controller) needs during a chaos event:
//
//   * per-tenant latency SLO attainment — the fraction of each tenant's
//     "serve.latency.<tenant>" observations at or under the latency SLO —
//     both cumulative and over the window since the previous snapshot;
//   * per-tenant burn rate — (1 - window attainment) / (1 - objective):
//     1.0 burns the error budget exactly at the objective rate, >1 burns
//     faster (a shard kill shows up as a burn spike in the kill window);
//   * queue depth (sum of "serve.queue.depth*" gauges), dedup-cache hit
//     ratio (mean of "serve.cache.hit_ratio*" gauges), and WAL fsync lag
//     (p99 / max of the "serve.wal.fsync_s" histogram).
//
// Snapshots accumulate in memory and export as one "swraman-health-v1"
// JSON. There is deliberately no monitor thread — lint rule 4 confines
// thread construction to the serve pool / comm runtime — instead the
// serve tier drives maybe_tick() from its own submit/finish/recover
// paths, throttled by min_period_s, so health keeps flowing exactly when
// the system is under load.
//
// Backpressure: the newest snapshot's worst burn rate is folded into a
// [0, 1] hint readable lock-free from any thread; admission control
// stretches its retry_after_s hints by (1 + hint) so clients back off
// harder while the error budget is burning.

namespace swraman::obs {

struct SloOptions {
  double latency_slo_s = 0.5;   // per-job latency objective threshold
  double objective = 0.95;      // target attainment (fraction within SLO)
  double min_period_s = 0.02;   // maybe_tick() throttle
  std::size_t max_snapshots = 4096;  // history cap (oldest dropped)
};

struct TenantHealth {
  std::string tenant;
  std::uint64_t finished = 0;        // cumulative latency observations
  std::uint64_t window_finished = 0; // observations since last snapshot
  double attainment = 1.0;           // cumulative fraction within SLO
  double window_attainment = 1.0;    // fraction within SLO in the window
  double burn_rate = 0.0;            // (1 - window attainment) / budget
  double p50_s = 0.0;
  double p99_s = 0.0;
};

struct HealthSnapshot {
  std::uint64_t t_ns = 0;      // monotonic time of the snapshot
  double queue_depth = 0.0;    // summed serve.queue.depth* gauges
  double cache_hit_ratio = 0.0;
  double wal_fsync_p99_s = 0.0;
  double wal_fsync_max_s = 0.0;
  double max_burn_rate = 0.0;  // worst tenant burn in this snapshot
  std::vector<TenantHealth> tenants;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloOptions opts = {});

  // Compute a snapshot now, append it to the history, refresh the
  // backpressure hint, and return it.
  HealthSnapshot tick();

  // Throttled tick: no-op unless min_period_s elapsed since the last.
  void maybe_tick();

  // Lock-free backpressure hint in [0, 1]: 0 while attainment meets the
  // objective, ramping to 1 as the worst tenant burn rate approaches the
  // full-budget burn (burn >= 1/(1-objective) pegs it at 1).
  [[nodiscard]] double backpressure_hint() const {
    return hint_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<HealthSnapshot> history() const;
  [[nodiscard]] const SloOptions& options() const { return opts_; }

  // "swraman-health-v1" JSON of the whole history.
  [[nodiscard]] std::string export_json() const;

 private:
  HealthSnapshot compute_locked();

  SloOptions opts_;
  Timer clock_;
  std::atomic<double> hint_{0.0};
  mutable lockcheck::CheckedMutex mutex_{"obs.slo"};
  std::uint64_t last_tick_ns_ = 0;
  bool ever_ticked_ = false;
  std::vector<HealthSnapshot> history_;
  // Per-tenant {count, count-below-SLO} at the previous snapshot, for
  // window attainment.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> prev_;
};

}  // namespace swraman::obs
