#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace swraman::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string attrs_json(const std::vector<Attr>& attrs) {
  std::string out;
  out += '{';
  bool first = true;
  for (const Attr& a : attrs) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(a.key);
    out += "\":";
    if (a.numeric) {
      out += json_num(a.num);
    } else {
      out += '"';
      out += json_escape(a.str);
      out += '"';
    }
  }
  out += '}';
  return out;
}

std::vector<PhaseNode> aggregate_phases(
    const std::vector<SpanRecord>& spans) {
  std::map<std::string, PhaseNode> by_path;
  for (const SpanRecord& s : spans) {
    PhaseNode& node = by_path[s.path];
    if (node.count == 0) {
      node.path = s.path;
      node.name = s.name;
      node.depth = s.depth;
      node.first_start_ns = s.start_ns;
    }
    node.first_start_ns = std::min(node.first_start_ns, s.start_ns);
    ++node.count;
    node.wall_s += 1e-9 * static_cast<double>(s.dur_ns);
    for (const Attr& a : s.attrs) {
      if (a.numeric) node.attr_sums[a.key] += a.num;
    }
  }

  // Self time: wall minus the wall of direct children.
  for (auto& [path, node] : by_path) node.self_s = node.wall_s;
  for (auto& [path, node] : by_path) {
    const std::size_t cut = path.rfind('/');
    if (cut == std::string::npos) continue;
    const auto parent = by_path.find(path.substr(0, cut));
    if (parent != by_path.end()) parent->second.self_s -= node.wall_s;
  }

  // Depth-first order: children follow their parent, siblings by first
  // occurrence — the pipeline order a reader expects (relax, SCF, DFPT...).
  std::map<std::string, std::vector<const PhaseNode*>> children;
  std::vector<const PhaseNode*> roots;
  for (const auto& [path, node] : by_path) {
    const std::size_t cut = path.rfind('/');
    const std::string parent =
        cut == std::string::npos ? std::string() : path.substr(0, cut);
    if (!parent.empty() && by_path.count(parent) != 0) {
      children[parent].push_back(&node);
    } else {
      roots.push_back(&node);
    }
  }
  const auto by_start = [](const PhaseNode* a, const PhaseNode* b) {
    return a->first_start_ns < b->first_start_ns;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [parent, list] : children) {
    std::sort(list.begin(), list.end(), by_start);
  }

  std::vector<PhaseNode> out;
  out.reserve(by_path.size());
  std::vector<const PhaseNode*> work(roots.rbegin(), roots.rend());
  while (!work.empty()) {
    const PhaseNode* node = work.back();
    work.pop_back();
    out.push_back(*node);
    const auto it = children.find(node->path);
    if (it != children.end()) {
      for (auto c = it->second.rbegin(); c != it->second.rend(); ++c) {
        work.push_back(*c);
      }
    }
  }
  return out;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
  std::string out;
  out.reserve(spans.size() * 128 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    char buf[96];
    out += "{\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"cat\":\"swraman\",\"ph\":\"";
    out += s.instant ? "i" : "X";
    out += '"';
    if (s.instant) out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", 1e-3 * static_cast<double>(s.start_ns));
    out += buf;
    if (!s.instant) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    1e-3 * static_cast<double>(s.dur_ns));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u,\"args\":",
                  s.tid);
    out += buf;
    out += attrs_json(s.attrs);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string perf_report_json(const std::vector<SpanRecord>& spans,
                             double total_wall_s) {
  const std::vector<PhaseNode> phases = aggregate_phases(spans);
  Registry& reg = Registry::instance();

  std::string out;
  out.reserve(phases.size() * 160 + 512);
  out += "{\n  \"schema\": \"swraman-perf-v1\",\n";
  out += "  \"generated\": \"" + json_escape(log::timestamp_utc_now()) +
         "\",\n";
  out += "  \"total_wall_s\": " + json_num(total_wall_s) + ",\n";
  out += "  \"spans\": " + std::to_string(spans.size()) + ",\n";
  out += "  \"spans_dropped\": " + std::to_string(dropped()) + ",\n";

  out += "  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseNode& p = phases[i];
    out += "    {\"path\": \"" + json_escape(p.path) + "\", \"name\": \"" +
           json_escape(p.name) + "\", \"depth\": " +
           std::to_string(p.depth) + ", \"count\": " +
           std::to_string(p.count) + ", \"wall_s\": " + json_num(p.wall_s) +
           ", \"self_s\": " + json_num(p.self_s) + ", \"attrs\": {";
    bool first = true;
    for (const auto& [key, v] : p.attr_sums) {
      if (!first) out += ", ";
      first = false;
      out += '"';
      out += json_escape(key);
      out += "\": ";
      out += json_num(v);
    }
    out += "}}";
    out += (i + 1 < phases.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";

  out += "  \"metrics\": {\n    \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : reg.counter_values()) {
    out += first ? "" : ", ";
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\": ";
    out += json_num(v);
  }
  out += "},\n    \"gauges\": {";
  first = true;
  for (const auto& [name, v] : reg.gauge_values()) {
    out += first ? "" : ", ";
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\": ";
    out += json_num(v);
  }
  out += "},\n    \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histogram_values()) {
    out += first ? "" : ", ";
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\": {\"count\": ";
    out += std::to_string(h.count);
    out += ", \"sum\": ";
    out += json_num(h.sum);
    out += ", \"min\": ";
    out += json_num(h.min);
    out += ", \"max\": ";
    out += json_num(h.max);
    out += ", \"mean\": ";
    out += json_num(h.mean());
    out += ", \"p50\": ";
    out += json_num(quantile(h, 0.50));
    out += ", \"p95\": ";
    out += json_num(quantile(h, 0.95));
    out += ", \"p99\": ";
    out += json_num(quantile(h, 0.99));
    out += '}';
  }
  out += "}\n  }\n}\n";
  return out;
}

std::string phase_tree_text(const std::vector<PhaseNode>& phases) {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-52s %12s %12s %10s", "phase",
                "wall (s)", "self (s)", "count");
  os << buf << '\n';
  for (const PhaseNode& p : phases) {
    std::string label(static_cast<std::size_t>(2) * p.depth, ' ');
    label += p.name;
    if (label.size() > 52) label.resize(52);
    std::snprintf(buf, sizeof(buf), "%-52s %12.4f %12.4f %10llu",
                  label.c_str(), p.wall_s, p.self_s,
                  static_cast<unsigned long long>(p.count));
    os << buf << '\n';
  }
  return os.str();
}

void log_phase_tree() {
  const std::string text = phase_tree_text(aggregate_phases(snapshot()));
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) log::info("obs: ", line);
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    log::warn("obs: cannot open ", path, " for writing");
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    log::warn("obs: write to ", path, " failed");
    return false;
  }
  return true;
}

void write_env_reports() {
  const auto path_from_env = [](const char* var, const char* fallback) {
    const char* v = std::getenv(var);
    return std::string(v != nullptr ? v : fallback);
  };
  const std::vector<SpanRecord> spans = snapshot();
  const std::string trace_path =
      path_from_env("SWRAMAN_TRACE_FILE", "swraman_trace.json");
  if (!trace_path.empty() &&
      write_text_file(trace_path, chrome_trace_json(spans))) {
    log::info("obs: wrote ", spans.size(), " spans to ", trace_path);
  }
  const std::string perf_path =
      path_from_env("SWRAMAN_PERF_FILE", "swraman_perf.json");
  if (!perf_path.empty() &&
      write_text_file(
          perf_path,
          perf_report_json(spans, 1e-9 * static_cast<double>(now_ns())))) {
    log::info("obs: wrote perf report to ", perf_path);
  }
  if (!spans.empty()) log_phase_tree();
}

}  // namespace swraman::obs
