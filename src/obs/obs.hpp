#pragma once

// Umbrella header for the observability subsystem (DESIGN.md S8, S13):
// hierarchical span tracing, metrics, report exporters, and the
// distributed observability plane (cross-shard job tracing, the flight
// recorder, and the live SLO monitor).

#include "obs/flight.hpp"
#include "obs/jobtrace.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
