#pragma once

// Umbrella header for the observability subsystem (DESIGN.md S8):
// hierarchical span tracing, metrics, and report exporters.

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
