#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lockcheck.hpp"
#include "obs/trace.hpp"

// Cross-shard job tracing (DESIGN.md S13). Where trace.hpp records what a
// *thread* did, this registry records what a *job* experienced: one causal
// timeline per global job id (gid), stitched from spans emitted on any
// thread of any shard — submit, route, dedup, displacement, Hessian,
// assemble — and surviving shard deaths. A `TraceContext{gid, parent_span}`
// is the unit of propagation: it rides `SubmitOptions` into the service,
// `JobState` onto the pool workers, the remote-cache p2p request frames
// across shards, and a WAL "trace" record through crash replay, where
// `restore_root` re-attaches the new incarnation's spans to the same
// timeline. The whole timeline exports as one `swraman-jobtrace-v1` JSON.
//
// Conventions:
//   * span ids are per-gid, allocated from 1; the root span is always 1,
//     which makes WAL replay idempotent (re-importing the logged root is
//     a no-op when the timeline already exists in-process).
//   * a span left open (end_ns == 0) is meaningful, not an error: it is
//     the footprint of work that crossed a shard death. The exporter and
//     the validator both accept open spans.
//   * every span carries the shard it ran on and the job incarnation
//     (bumped once per WAL replay), so a stitched timeline shows both
//     sides of a kill.
//
// Disabled cost: every entry point gates on one relaxed atomic load
// (jobtrace_enabled), mirroring the span tracer. Enable programmatically
// (set_jobtrace_enabled) or with SWRAMAN_JOBTRACE=1, which also registers
// an atexit export to SWRAMAN_JOBTRACE_FILE (default
// "swraman_jobtrace.json").

namespace swraman::obs {

namespace detail {
extern std::atomic<bool> g_jobtrace_enabled;
}  // namespace detail

// Hot-path gate: one relaxed load.
inline bool jobtrace_enabled() {
  return detail::g_jobtrace_enabled.load(std::memory_order_relaxed);
}

void set_jobtrace_enabled(bool on);

// The propagated unit: which job, and which span new work nests under.
// gid 0 means "no context" (untraced submission); all registry calls on
// an inactive context are no-ops returning 0.
struct TraceContext {
  std::uint64_t gid = 0;
  std::uint64_t parent_span = 0;
  [[nodiscard]] bool active() const {
    return gid != 0 && jobtrace_enabled();
  }
};

struct JobSpan {
  std::uint64_t id = 0;      // per-gid, root == 1
  std::uint64_t parent = 0;  // 0 for the root
  std::string name;
  int shard = -1;                // shard the span ran on (-1: tier level)
  std::uint32_t incarnation = 0; // bumped once per WAL replay
  std::uint64_t start_ns = 0;    // obs::now_ns() timebase
  std::uint64_t end_ns = 0;      // 0 = still open (crossed a shard death)
  bool event = false;            // point event (dedup hit, kill, ...)
  std::vector<Attr> attrs;
};

class JobTraceRegistry {
 public:
  static JobTraceRegistry& instance();

  // Create-or-get the job's root span (id 1); idempotent per gid.
  TraceContext root(std::uint64_t gid, const char* name);

  // Re-attach a timeline restored from a WAL: recreates the root with the
  // logged id when the registry has no record of the gid (fresh process)
  // and bumps the job's incarnation either way. Returns the root context.
  TraceContext restore_root(std::uint64_t gid, std::uint64_t root_id,
                            const char* name);

  // Open a span under `parent`; returns its id (0 when inactive).
  std::uint64_t begin(const TraceContext& parent, const char* name,
                      int shard = -1);
  // Close a span (no-op for id 0 or unknown spans).
  void end(std::uint64_t gid, std::uint64_t span);
  // Record a point event under `parent`; returns its id.
  std::uint64_t event(const TraceContext& parent, const char* name,
                      int shard = -1);

  // Attach attributes to an open-or-closed span.
  void attr(std::uint64_t gid, std::uint64_t span, const char* key,
            double value);
  void attr(std::uint64_t gid, std::uint64_t span, const char* key,
            const std::string& value);

  // Drop a timeline that never got acknowledged (rejected submissions —
  // their gid is reused by the next accepted job).
  void drop_job(std::uint64_t gid);

  // Current incarnation of a job (0 until the first replay).
  [[nodiscard]] std::uint32_t incarnation(std::uint64_t gid) const;

  // Copy of a job's spans in id order (tests / exporters).
  [[nodiscard]] std::vector<JobSpan> spans(std::uint64_t gid) const;
  [[nodiscard]] std::size_t n_jobs() const;
  // Gids currently tracked, ascending.
  [[nodiscard]] std::vector<std::uint64_t> gids() const;

  // swraman-jobtrace-v1 JSON of every tracked job.
  [[nodiscard]] std::string export_json() const;

  void reset_for_testing();

 private:
  JobTraceRegistry() = default;

  struct Timeline {
    std::vector<JobSpan> spans;     // id order; ids are per-gid from 1
    std::uint64_t next_id = 1;
    std::uint32_t incarnation = 0;
  };

  JobSpan* find_locked(std::uint64_t gid, std::uint64_t span);

  // Serve-level event rates (per job submit/route/task), not per-DMA:
  // one global mutex is fine and keeps cross-thread stitching trivial.
  mutable lockcheck::CheckedMutex mutex_{"obs.jobtrace"};
  std::map<std::uint64_t, Timeline> jobs_;
};

// Writes export_json() to `path` through obs::write_text_file.
bool write_jobtrace_file(const std::string& path);

}  // namespace swraman::obs
